// End-to-end integration and property tests: randomly generated (but
// always valid) FORTRAN-subset programs are pushed through the entire
// pipeline — parse, semantic analysis, locality analysis, directive
// insertion, trace generation, simulation — checking cross-cutting
// invariants that no single package can see.
package cdmm_test

import (
	"fmt"
	"strings"
	"testing"

	"cdmm/internal/core"
	"cdmm/internal/fortran"
	"cdmm/internal/mem"
	"cdmm/internal/policy"
	"cdmm/internal/trace"
	"cdmm/internal/vmsim"
	"cdmm/internal/workloads"
)

// progGen builds random valid programs: a handful of arrays and a random
// loop nest whose subscripts stay in bounds by construction.
type progGen struct {
	seed uint64
	b    strings.Builder
	vars []string
	next int
}

func (g *progGen) rng() uint64 {
	g.seed = g.seed*6364136223846793005 + 1442695040888963407
	return g.seed >> 33
}

func (g *progGen) freshVar() string {
	names := []string{"I", "J", "K", "L", "M", "N1", "I2", "J2", "K2", "L2"}
	v := names[g.next%len(names)]
	g.next++
	g.vars = append(g.vars, v)
	return v
}

// generate returns the source of a random program. Arrays: A(64,8) (8
// pages), B(128,4) (8 pages), V(256) (4 pages), W(96) (2 pages). Loop
// bounds stay within the smallest dimensions used.
func generate(seed uint64) string {
	g := &progGen{seed: seed}
	g.b.WriteString("PROGRAM RAND\nDIMENSION A(64,8), B(128,4), V(256), W(96)\n")
	n := int(g.rng()%2) + 1
	for i := 0; i < n; i++ {
		g.nest(0)
	}
	g.b.WriteString("END\n")
	return g.b.String()
}

func (g *progGen) nest(depth int) {
	v := g.freshVar()
	bound := 4 + int(g.rng()%4) // 4..7: safe for every dimension
	pad := strings.Repeat("  ", depth)
	fmt.Fprintf(&g.b, "%sDO %s = 1, %d\n", pad, v, bound)
	g.stmt(depth + 1)
	if depth < 2 && g.rng()%2 == 0 {
		g.nest(depth + 1)
		g.stmt(depth + 1)
	}
	fmt.Fprintf(&g.b, "%sEND DO\n", pad)
	g.vars = g.vars[:len(g.vars)-1]
}

// stmt emits a random in-bounds assignment using the live loop variables.
func (g *progGen) stmt(depth int) {
	pad := strings.Repeat("  ", depth)
	v1 := g.vars[int(g.rng())%len(g.vars)]
	v2 := g.vars[int(g.rng())%len(g.vars)]
	switch g.rng() % 5 {
	case 0:
		fmt.Fprintf(&g.b, "%sA(%s,%s) = A(%s,%s) + 1.0\n", pad, v1, v2, v1, v2)
	case 1:
		fmt.Fprintf(&g.b, "%sB(%s, MOD(%s, 4) + 1) = FLOAT(%s)\n", pad, v1, v2, v1)
	case 2:
		fmt.Fprintf(&g.b, "%sV(%s) = V(%s) * 0.5\n", pad, v1, v2)
	case 3:
		fmt.Fprintf(&g.b, "%sW(%s) = A(%s,1) + V(%s)\n", pad, v1, v2, v1)
	default:
		fmt.Fprintf(&g.b, "%sV(%s + 8) = W(%s) - B(%s,2)\n", pad, v1, v2, v1)
	}
}

func TestPipelineInvariantsOnRandomPrograms(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			src := generate(seed)
			prog, err := core.CompileSource("RAND", src)
			if err != nil {
				t.Fatalf("pipeline failed on generated program:\n%s\n%v", src, err)
			}

			// Invariant: the formatted AST reparses to the same formatted
			// text (printer round trip at program scale).
			out1 := fortran.Format(prog.AST)
			re, err := fortran.Parse(out1)
			if err != nil {
				t.Fatalf("formatted output does not reparse: %v\n%s", err, out1)
			}
			if out2 := fortran.Format(re); out2 != out1 {
				t.Fatalf("format not idempotent:\n%s\n---\n%s", out1, out2)
			}

			tr, err := prog.Trace()
			if err != nil {
				t.Fatalf("trace: %v\n%s", err, src)
			}
			// Invariant: every referenced page lies inside the address space.
			for _, e := range tr.Events {
				if e.Kind == trace.EvRef {
					if p := tr.Page(e); int(p) < 0 || int(p) >= prog.V() {
						t.Fatalf("page %d outside V=%d", p, prog.V())
					}
				}
			}
			if tr.Distinct > prog.V() {
				t.Fatalf("distinct pages %d exceed V %d", tr.Distinct, prog.V())
			}

			// Invariant: CD never faults less than compulsory, and honoring
			// a higher stratum never increases faults.
			prevPF := 1 << 30
			for lvl := 1; lvl <= prog.MaxPI(); lvl++ {
				res, err := prog.RunCD(core.CDOptions{Level: lvl})
				if err != nil {
					t.Fatal(err)
				}
				if res.Faults < tr.Distinct {
					t.Fatalf("level %d: faults %d below compulsory %d", lvl, res.Faults, tr.Distinct)
				}
				if res.Faults > prevPF {
					t.Fatalf("level %d faults %d exceed level %d faults %d", lvl, res.Faults, lvl-1, prevPF)
				}
				prevPF = res.Faults
			}

			// Invariant: the analytic LRU sweep matches a brute replay at
			// spot-checked allocations.
			sweep, err := prog.LRUSweep()
			if err != nil {
				t.Fatal(err)
			}
			refs := tr.StripDirectives()
			for _, m := range []int{1, 3, sweep.V} {
				brute := vmsim.Run(refs, policy.NewLRU(m))
				if sweep.Faults(m) != brute.Faults {
					t.Fatalf("m=%d: sweep %d != brute %d", m, sweep.Faults(m), brute.Faults)
				}
			}

			// Invariant: the trace round-trips through the binary format.
			var buf strings.Builder
			if _, err := tr.WriteTo(&writerAdapter{&buf}); err != nil {
				t.Fatal(err)
			}
			got, err := trace.Read(strings.NewReader(buf.String()))
			if err != nil {
				t.Fatal(err)
			}
			if got.Refs != tr.Refs || got.Distinct != tr.Distinct || len(got.Events) != len(tr.Events) {
				t.Fatalf("trace round trip mismatch")
			}
		})
	}
}

// writerAdapter adapts strings.Builder to io.Writer (Builder has Write but
// the explicit adapter keeps the binary bytes intact through string).
type writerAdapter struct{ b *strings.Builder }

func (w *writerAdapter) Write(p []byte) (int, error) { return w.b.Write(p) }

// TestWorkloadsUnderEveryPolicy runs every workload under every policy
// family member once, checking the compulsory lower bound and that the
// simulator never loses references.
func TestWorkloadsUnderEveryPolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("full policy × workload sweep")
	}
	for _, w := range workloads.All() {
		c, err := workloads.Compile(w)
		if err != nil {
			t.Fatal(err)
		}
		refs := c.Trace.StripDirectives()
		pols := []policy.Policy{
			policy.NewLRU(16),
			policy.NewFIFO(16),
			policy.NewWS(1000),
			policy.NewDWS(1000, 100),
			policy.NewSWS(1000),
			policy.NewVSWS(250, 2000, 4),
			policy.NewPFF(250),
			policy.NewCD(w.DefaultSet().Selector(), 2),
		}
		for _, p := range pols {
			var res vmsim.Result
			if _, ok := p.(*policy.CD); ok {
				res = vmsim.Run(c.Trace, p)
			} else {
				res = vmsim.Run(refs, p)
			}
			if res.Refs != c.Trace.Refs {
				t.Errorf("%s/%s: refs %d != %d", w.Name, p.Name(), res.Refs, c.Trace.Refs)
			}
			if res.Faults < c.Trace.Distinct {
				t.Errorf("%s/%s: faults %d below compulsory %d", w.Name, p.Name(), res.Faults, c.Trace.Distinct)
			}
			if res.MaxResident > c.V() {
				t.Errorf("%s/%s: resident %d exceeds V %d", w.Name, p.Name(), res.MaxResident, c.V())
			}
		}
	}
}

// TestOPTLowerBoundsEverything verifies Belady's oracle lower-bounds every
// demand policy at equal allocation on a real workload trace.
func TestOPTLowerBoundsEverything(t *testing.T) {
	w, _ := workloads.Get("HWSCRT")
	c, err := workloads.Compile(w)
	if err != nil {
		t.Fatal(err)
	}
	refs := c.Trace.StripDirectives()
	pages := c.Trace.Pages()
	for _, m := range []int{4, 8, 16, 32} {
		opt := vmsim.Run(refs, policy.NewOPT(pages, m))
		lru := vmsim.Run(refs, policy.NewLRU(m))
		fifo := vmsim.Run(refs, policy.NewFIFO(m))
		if opt.Faults > lru.Faults || opt.Faults > fifo.Faults {
			t.Errorf("m=%d: OPT %d not a lower bound (LRU %d, FIFO %d)", m, opt.Faults, lru.Faults, fifo.Faults)
		}
	}
}

// TestGeometryConsistency checks that the same program compiled at
// different page sizes preserves total bytes: V(ps) × ps is constant up
// to per-array page-alignment slack.
func TestGeometryConsistency(t *testing.T) {
	w, _ := workloads.Get("MAIN")
	var bytesLo, bytesHi int
	for _, ps := range []int{128, 1024} {
		prog, err := core.CompileSourceOpts(w.Name, w.Source, core.Options{
			Geometry: mem.Geometry{PageSize: ps, ElemSize: 4},
		})
		if err != nil {
			t.Fatal(err)
		}
		total := prog.V() * ps
		if ps == 128 {
			bytesLo = total
		} else {
			bytesHi = total
		}
	}
	// Alignment slack: at most one page per array at the large page size.
	if bytesHi < bytesLo || bytesHi > bytesLo+5*1024 {
		t.Errorf("byte totals inconsistent across page sizes: %d vs %d", bytesLo, bytesHi)
	}
}
