// Benchmark harness regenerating the paper's evaluation: one benchmark per
// table (Tables 1-4 of §5), per-policy microbenchmarks over the workload
// traces, and the ablation studies DESIGN.md calls out — the LOCK/UNLOCK
// ablation (the paper leaves LOCK's effectiveness unstudied), the gap to
// Belady's OPT oracle, and the multiprogramming extension.
//
// Run with: go test -bench=. -benchmem
//
// Each table benchmark reports the reproduced rows through -v logging on
// the first iteration, so `go test -bench=Table -benchtime=1x -v` prints
// the full reproduction alongside the timing.
package cdmm_test

import (
	"bytes"
	"fmt"
	"testing"

	"cdmm/internal/bli"

	"cdmm/internal/engine"
	"cdmm/internal/experiments"
	"cdmm/internal/obs"
	"cdmm/internal/policy"
	"cdmm/internal/sweep"
	"cdmm/internal/trace"
	"cdmm/internal/vmsim"
	"cdmm/internal/workloads"
)

// BenchmarkTable1 regenerates Table 1: the effect of executing different
// directive sets under the CD policy (MAIN x4, FDJAC x2, TQL x2).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.RenderTable1(rows))
		}
	}
}

// BenchmarkTable2 regenerates Table 2: minimal space-time cost of tuned
// LRU and tuned WS versus CD.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.RenderTable2(rows))
		}
	}
}

// BenchmarkTable3 regenerates Table 3: LRU and WS versus CD at equal
// average memory.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.RenderTable3(rows))
		}
	}
}

// BenchmarkTable4 regenerates Table 4: the memory and space-time cost of
// matching CD's fault count.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table4(nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.RenderTable4(rows))
		}
	}
}

// benchTables regenerates all four tables on a fresh engine per iteration
// (so the memoized sweeps and CD runs are recomputed every time — the
// workload compile cache alone persists, matching a cold `cdmm tables`
// invocation with warm sources).
func benchTables(b *testing.B, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		eng := engine.New(workers)
		if _, err := experiments.Table1(eng); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.Table2(eng); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.Table3(eng); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.Table4(eng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTablesSequential is the engine's overhead guard: one worker
// degenerates to an inline sequential loop, so this should match the old
// sequential pipeline within noise.
func BenchmarkTablesSequential(b *testing.B) { benchTables(b, 1) }

// BenchmarkTablesParallel regenerates all four tables with the worker
// pool at GOMAXPROCS. On a multi-core machine the table grid's row
// parallelism plus singleflight sharing of the sweeps gives near-linear
// speedup over BenchmarkTablesSequential (≥2x expected on 4+ cores).
func BenchmarkTablesParallel(b *testing.B) { benchTables(b, 0) }

// compiledTrace fetches a workload's cached trace.
func compiledTrace(b *testing.B, name string) *trace.Trace {
	b.Helper()
	w, err := workloads.Get(name)
	if err != nil {
		b.Fatal(err)
	}
	c, err := workloads.Compile(w)
	if err != nil {
		b.Fatal(err)
	}
	return c.Trace
}

// BenchmarkRun measures the vmsim.Run hot path per policy over the
// CONDUCT trace: the allocation-free dense-page loops the perf harness
// guards. ns/ref is reported explicitly; steady-state allocs/op must be 0
// (run with -benchmem). Directive-blind policies replay the shared
// directive-free view, exactly as the unobserved fast path does.
func BenchmarkRun(b *testing.B) {
	tr := compiledTrace(b, "CONDUCT")
	refs := tr.RefsOnly()
	w, _ := workloads.Get("CONDUCT")

	bench := func(name string, tr *trace.Trace, p policy.Policy) {
		b.Run(name, func(b *testing.B) {
			vmsim.Run(tr, p) // warmup sizes every buffer
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vmsim.Run(tr, p)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(tr.Refs), "ns/ref")
		})
	}
	bench("LRU", refs, policy.NewLRU(32))
	bench("FIFO", refs, policy.NewFIFO(32))
	bench("WS", refs, policy.NewWS(1000))
	bench("CD", tr, policy.NewCD(w.DefaultSet().Selector(), 2))
	bench("PFF", refs, policy.NewPFF(100))
	bench("SWS", refs, policy.NewSWS(250))
	bench("VSWS", refs, policy.NewVSWS(50, 500, 4))
	bench("DWS", refs, policy.NewDWS(1000, 100))
}

// BenchmarkPolicyReplay measures raw simulation throughput per policy over
// the CONDUCT trace (the largest workload).
func BenchmarkPolicyReplay(b *testing.B) {
	tr := compiledTrace(b, "CONDUCT")
	refs := tr.StripDirectives()
	w, _ := workloads.Get("CONDUCT")

	b.Run("LRU", func(b *testing.B) {
		p := policy.NewLRU(32)
		b.SetBytes(int64(refs.Refs))
		for i := 0; i < b.N; i++ {
			vmsim.Run(refs, p)
		}
	})
	b.Run("FIFO", func(b *testing.B) {
		p := policy.NewFIFO(32)
		b.SetBytes(int64(refs.Refs))
		for i := 0; i < b.N; i++ {
			vmsim.Run(refs, p)
		}
	})
	b.Run("WS", func(b *testing.B) {
		p := policy.NewWS(1000)
		b.SetBytes(int64(refs.Refs))
		for i := 0; i < b.N; i++ {
			vmsim.Run(refs, p)
		}
	})
	b.Run("CD", func(b *testing.B) {
		p := policy.NewCD(w.DefaultSet().Selector(), 2)
		b.SetBytes(int64(tr.Refs))
		for i := 0; i < b.N; i++ {
			vmsim.Run(tr, p)
		}
	})
	b.Run("OPT", func(b *testing.B) {
		pages := tr.Pages()
		b.SetBytes(int64(refs.Refs))
		for i := 0; i < b.N; i++ {
			vmsim.Run(refs, policy.NewOPT(pages, 32))
		}
	})
}

// BenchmarkLRUSweepAnalytic measures the one-pass all-allocations LRU
// curve against the trace size.
func BenchmarkLRUSweepAnalytic(b *testing.B) {
	tr := compiledTrace(b, "CONDUCT")
	b.SetBytes(int64(tr.Refs))
	for i := 0; i < b.N; i++ {
		if _, err := sweep.NewLRU(tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWSSweepAnalytic measures the one-pass WS histogram build.
func BenchmarkWSSweepAnalytic(b *testing.B) {
	tr := compiledTrace(b, "CONDUCT")
	b.SetBytes(int64(tr.Refs))
	for i := 0; i < b.N; i++ {
		if _, err := sweep.NewWS(tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLock quantifies the LOCK/UNLOCK directives' effect —
// the question the paper explicitly leaves open ("The effectiveness of
// LOCK and UNLOCK directives is not studied in this work"): every
// workload's canonical CD run with locks honored versus with lock events
// ignored.
func BenchmarkAblationLock(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range workloads.All() {
			c, err := workloads.Compile(w)
			if err != nil {
				b.Fatal(err)
			}
			set := w.DefaultSet()
			withLocks := vmsim.Run(c.Trace, policy.NewCD(set.Selector(), 2))
			noLocks := vmsim.Run(stripLocks(c.Trace), policy.NewCD(set.Selector(), 2))
			if i == 0 {
				b.Logf("%-8s with locks: PF=%-6d ST=%.4g | without: PF=%-6d ST=%.4g (dPF=%+d)",
					w.Name, withLocks.Faults, withLocks.ST(),
					noLocks.Faults, noLocks.ST(), noLocks.Faults-withLocks.Faults)
			}
		}
	}
}

// stripLocks removes LOCK/UNLOCK events, keeping references and ALLOCATEs.
func stripLocks(tr *trace.Trace) *trace.Trace {
	out := trace.New(tr.Name + "-nolocks")
	for _, e := range tr.Events {
		switch e.Kind {
		case trace.EvRef:
			out.AddRef(tr.Page(e))
		case trace.EvAlloc:
			d := tr.Alloc(e)
			out.Allocs = append(out.Allocs, d)
			out.Events = append(out.Events, trace.Event{Kind: trace.EvAlloc, Arg: int32(len(out.Allocs) - 1)})
		}
	}
	return out
}

// BenchmarkAblationOptGap reports how far CD sits from Belady's oracle at
// the same average memory, per workload.
func BenchmarkAblationOptGap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range workloads.All() {
			c, err := workloads.Compile(w)
			if err != nil {
				b.Fatal(err)
			}
			cd := vmsim.Run(c.Trace, policy.NewCD(w.DefaultSet().Selector(), 2))
			m := int(cd.MEM() + 0.5)
			if m < 1 {
				m = 1
			}
			refs := c.Trace.StripDirectives()
			opt := vmsim.Run(refs, policy.NewOPT(c.Trace.Pages(), m))
			if i == 0 {
				b.Logf("%-8s CD: PF=%-6d | OPT(m=%d): PF=%-6d (CD/OPT fault ratio %.2f)",
					w.Name, cd.Faults, m, opt.Faults, float64(cd.Faults)/float64(opt.Faults))
			}
		}
	}
}

// BenchmarkMultiprog measures the multiprogramming extension: a three-job
// mix under CD versus under WS over a shared 80-frame pool.
func BenchmarkMultiprog(b *testing.B) {
	mix := []string{"TQL", "HWSCRT", "MAIN"}
	var traces []*trace.Trace
	var sets []workloads.Set
	for _, name := range mix {
		w, err := workloads.Get(name)
		if err != nil {
			b.Fatal(err)
		}
		c, err := workloads.Compile(w)
		if err != nil {
			b.Fatal(err)
		}
		traces = append(traces, c.Trace)
		sets = append(sets, w.DefaultSet())
	}
	b.Run("CD", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			jobs := make([]*vmsim.Job, len(mix))
			for k, name := range mix {
				jobs[k] = &vmsim.Job{Name: name, Trace: traces[k], Policy: policy.NewCD(sets[k].Selector(), 2)}
			}
			res := vmsim.RunMulti(jobs, vmsim.MultiConfig{Frames: 80})
			if i == 0 {
				b.Logf("CD mix: makespan=%d swaps=%d", res.Makespan, res.Swaps)
			}
		}
	})
	b.Run("WS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			jobs := make([]*vmsim.Job, len(mix))
			for k, name := range mix {
				jobs[k] = &vmsim.Job{Name: name, Trace: traces[k].StripDirectives(), Policy: policy.NewWS(1000)}
			}
			res := vmsim.RunMulti(jobs, vmsim.MultiConfig{Frames: 80})
			if i == 0 {
				b.Logf("WS mix: makespan=%d swaps=%d", res.Makespan, res.Swaps)
			}
		}
	})
}

// BenchmarkCompile measures the full compiler pipeline (parse through
// directive insertion and trace generation) per workload.
func BenchmarkCompile(b *testing.B) {
	for _, w := range workloads.All() {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Bypass the cache with a per-iteration clone name.
				clone := &workloads.Program{
					Name:   fmt.Sprintf("%s-bench-%d", w.Name, i),
					Source: w.Source,
					Sets:   w.Sets,
				}
				if _, err := workloads.Compile(clone); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPolicyFamily compares CD against the whole §1 policy family —
// WS, Damped WS, Sampled WS, VSWS and PFF — at CD-matched memory scale.
func BenchmarkPolicyFamily(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PolicyFamily(nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.RenderFamily(rows))
		}
	}
}

// BenchmarkPageSizeSensitivity recompiles HWSCRT and MAIN at page sizes
// 128/256/512/1024 bytes and compares CD against the tuned-LRU minimum —
// the sensitivity study behind the paper's fixed 256-byte assumption.
func BenchmarkPageSizeSensitivity(b *testing.B) {
	sizes := []int{128, 256, 512, 1024}
	for i := 0; i < b.N; i++ {
		for _, prog := range []string{"HWSCRT", "MAIN"} {
			rows, err := experiments.PageSizeSensitivity(nil, prog, sizes)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Log("\n" + experiments.RenderPageSize(rows))
			}
		}
	}
}

// BenchmarkBLIDetect measures the Madison-Batson locality-interval
// detector over the largest trace.
func BenchmarkBLIDetect(b *testing.B) {
	tr := compiledTrace(b, "CONDUCT")
	refs := tr.Pages()
	b.SetBytes(int64(len(refs)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bli.Detect(refs, bli.Config{MaxSize: 300})
	}
}

// BenchmarkTraceEncode measures trace serialization round trips.
func BenchmarkTraceEncode(b *testing.B) {
	tr := compiledTrace(b, "MAIN")
	b.Run("Write", func(b *testing.B) {
		b.SetBytes(int64(tr.Refs))
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if _, err := tr.WriteTo(&buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.Run("Read", func(b *testing.B) {
		b.SetBytes(int64(tr.Refs))
		for i := 0; i < b.N; i++ {
			if _, err := trace.Read(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDetune runs the mis-estimation sensitivity study: every
// ALLOCATE X scaled by 0.5x to 2x, per canonical program.
func BenchmarkDetune(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.DetuneStudy(nil, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.RenderDetune(rows))
		}
	}
}

// BenchmarkObservabilityOverhead guards the telemetry layer's cost. The
// "Disabled" variant must stay within ~10% of the bare "Baseline" loop:
// with no observer installed, vmsim.Run routes to the original
// un-instrumented loop after a single nil check. "Collector" and
// "Metrics" show the enabled cost for an in-memory tracer and for
// counters+histograms alone.
func BenchmarkObservabilityOverhead(b *testing.B) {
	tr := compiledTrace(b, "CONDUCT")
	w, _ := workloads.Get("CONDUCT")
	newCD := func() policy.Policy { return policy.NewCD(w.DefaultSet().Selector(), 2) }

	b.Run("Baseline", func(b *testing.B) {
		p := newCD()
		b.SetBytes(int64(tr.Refs))
		for i := 0; i < b.N; i++ {
			vmsim.Run(tr, p)
		}
	})
	b.Run("Disabled", func(b *testing.B) {
		p := newCD()
		b.SetBytes(int64(tr.Refs))
		for i := 0; i < b.N; i++ {
			vmsim.RunObserved(tr, p, nil)
		}
	})
	b.Run("Metrics", func(b *testing.B) {
		p := newCD()
		o := &obs.Observer{Metrics: obs.NewRegistry()}
		b.SetBytes(int64(tr.Refs))
		for i := 0; i < b.N; i++ {
			vmsim.RunObserved(tr, p, o)
		}
	})
	b.Run("Collector", func(b *testing.B) {
		p := newCD()
		b.SetBytes(int64(tr.Refs))
		for i := 0; i < b.N; i++ {
			col := &obs.Collector{}
			vmsim.RunObserved(tr, p, &obs.Observer{Tracer: col})
		}
	})
}
