// Command cdmm is the command-line front end of the Compiler Directed
// Memory Management reproduction: it compiles FORTRAN-subset programs,
// shows their inserted memory directives and locality structure, runs the
// virtual memory simulator under LRU/FIFO/WS/OPT/CD, and regenerates the
// paper's Tables 1-4.
//
// Usage:
//
//	cdmm list                         # the built-in workload suite
//	cdmm compile  <prog|file.f>       # show inserted directives (Fig. 5c)
//	cdmm locality <prog|file.f>       # conceptual locality tree (Fig. 1)
//	cdmm trace    <prog|file.f>       # trace summary
//	cdmm sim      <prog|file.f> -policy cd -level 2 [-m N] [-tau N]
//	cdmm sweep    <prog|file.f>       # CD levels vs best LRU / best WS
//	cdmm table1 | table2 | table3 | table4 | tables
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"cdmm/internal/advisor"
	"cdmm/internal/bli"
	"cdmm/internal/core"
	"cdmm/internal/engine"
	"cdmm/internal/experiments"
	"cdmm/internal/policy"
	"cdmm/internal/report"
	"cdmm/internal/sweep"
	"cdmm/internal/trace"
	"cdmm/internal/vmsim"
	"cdmm/internal/workloads"
)

// registerJFlag adds the shared -j parallelism flag: the bound on
// concurrent simulations in the run-plan engine.
func registerJFlag(fs *flag.FlagSet) *int {
	return fs.Int("j", 0, "max concurrent simulations (0 = GOMAXPROCS)")
}

// newEngine builds the command's engine from -j and installs it as the
// process default so package-level conveniences share its memo store.
// When a telemetry server is live (cdmm serve, or the -serve flag) the
// engine also reports plan/run lifecycle into its tracker and logger.
func newEngine(j int) *engine.Engine {
	e := engine.New(j)
	if serveProgress != nil {
		e.WithProgress(serveProgress)
	}
	if serveLogger != nil {
		e.WithLogger(serveLogger)
	}
	engine.SetDefault(e)
	return e
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	if cmd == "help" || cmd == "-h" || cmd == "--help" {
		usage()
		return
	}
	if err := runCommand(cmd, args); err != nil {
		fmt.Fprintln(os.Stderr, "cdmm:", err)
		os.Exit(1)
	}
}

// runCommand dispatches one subcommand. It is the reentrant core of
// main: `cdmm serve -- <cmd> ...` routes the nested command through it
// with telemetry attached.
func runCommand(cmd string, args []string) error {
	var err error
	switch cmd {
	case "list":
		err = cmdList()
	case "compile":
		err = withProgram(args, func(p *core.Program, _ []string) error {
			fmt.Println(p.Summary())
			fmt.Print(p.RenderDirectives())
			return nil
		})
	case "locality":
		err = withProgram(args, func(p *core.Program, _ []string) error {
			fmt.Println(p.Summary())
			fmt.Print(p.RenderLocalityTree())
			return nil
		})
	case "trace":
		err = cmdTrace(args)
	case "replay":
		err = cmdReplay(args)
	case "convert":
		err = cmdConvert(args)
	case "bli":
		err = withProgram(args, func(p *core.Program, _ []string) error {
			tr, err := p.Trace()
			if err != nil {
				return err
			}
			fmt.Println(tr.Summary())
			refs := tr.Pages()
			ivs := bli.Detect(refs, bli.Config{MaxSize: p.V() + 4})
			fmt.Println("bounded locality intervals (Madison & Batson model):")
			fmt.Print(bli.Render(ivs, len(refs)))
			fmt.Printf("dominant runtime locality sizes (>=25%% coverage): %v\n",
				bli.DominantSizes(ivs, len(refs), 0.25))
			return nil
		})
	case "report":
		err = withProgram(args, func(p *core.Program, rest []string) error {
			fs := flag.NewFlagSet("report", flag.ContinueOnError)
			j := registerJFlag(fs)
			if perr := fs.Parse(rest); perr != nil {
				return perr
			}
			out, rerr := report.Generate(p, report.Options{Engine: newEngine(*j)})
			if rerr != nil {
				return rerr
			}
			fmt.Print(out)
			return nil
		})
	case "advise":
		err = withProgram(args, func(p *core.Program, _ []string) error {
			fmt.Println(p.Summary())
			fmt.Print(advisor.Render(advisor.Analyze(p.Analysis, advisor.Options{})))
			return nil
		})
	case "family":
		err = cmdFamily(args)
	case "detune":
		err = cmdDetune(args)
	case "pagesize":
		err = cmdPageSize(args)
	case "explain":
		err = cmdExplain(args)
	case "sim":
		err = cmdSim(args)
	case "sweep":
		err = cmdSweep(args)
	case "profile":
		err = cmdProfile(args)
	case "chaos":
		err = cmdChaos(args)
	case "kernel":
		err = cmdKernel(args)
	case "bench":
		err = cmdBench(args)
	case "serve":
		err = cmdServe(args)
	case "table1", "table2", "table3", "table4", "tables":
		err = cmdTables(cmd, args)
	default:
		fmt.Fprintf(os.Stderr, "cdmm: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	return err
}

func usage() {
	fmt.Fprint(os.Stderr, `cdmm - Compiler Directed Memory Management (Malkawi & Patel, SOSP 1985)

commands:
  list                      list the built-in workload programs
  compile  <prog|file.f>    compile and show the inserted memory directives
  locality <prog|file.f>    show the hierarchical locality structure
  trace    <prog|file.f> [-o file]   execute, summarize, optionally save the
                            trace (row CDT1/CDT2, or columnar CDT3 when the
                            file name ends in .cdt3)
  replay   <trace-file> [sim flags]  simulate a policy over a saved trace;
                            CDT3 files stream in O(chunk) memory
  convert  <trace|prog> [-o f] [-to cdt3|cdt1] [-chunk N] [-check] [-stat]
                            translate between row and columnar trace formats
      -check                       byte-identical round-trip verification
      -stat                        per-section sizes and compression ratio
                            (no input: breakdown for every built-in workload)
  bli      <prog|file.f>    detect runtime localities (Madison-Batson BLIs)
  sim      <prog|file.f> [flags]   simulate one policy over the trace
      -policy cd|lru|fifo|ws|opt   (default cd)
      -level N                     CD directive-set stratum (default 1)
      -m N                         LRU/FIFO/OPT allocation (default 8)
      -tau N                       WS window size (default 500)
  explain  <prog|file.f> [flags]   attribute every page fault to its
                            source loop, statement and directive: ranked
                            hotspot table, directive coverage, per-site
                            CD vs tuned-LRU/WS fault deltas
      -level N                     CD directive-set stratum (default 1)
      -top N                       hotspot table rows (default 12)
      -chrome f.json               Perfetto/Chrome trace-event timeline
      -folded f.txt                folded flamegraph stacks
  report   <prog|file.f>    full markdown analysis report
  advise   <prog|file.f>    compiler advisories (loop interchange, big localities)
  family   compare CD vs WS/DWS/SWS/VSWS/PFF on the suite
  pagesize [prog]           page-size sensitivity study
  detune                    CD sensitivity to mis-estimated locality sizes
  sweep    <prog|file.f>    CD at every level vs tuned LRU and WS
  profile  <prog|file.f> [-buckets N]   fault-timeline and residency
                            sparklines for CD vs tuned LRU and WS
  chaos    [flags]          fault-injection matrix: CD with directive
                            validation + degraded mode under seeded faults
      -seed N                      injector seed (default 1)
      -quick                       smoke mode (two programs, one intensity)
      -progs A,B/set               programs (optionally program/set)
      -faults a,b -intensity x,y   restrict the matrix
      -list                        list the registered fault injectors
  kernel   [flags]          sharded multi-tenant CD kernel: admission
                            control, pressure reclaim, aging, thrash
                            shedding over one overcommitted frame pool
      -tenants N -seed S           population (default 1000)
      -frames F | -overcommit X    pool size, explicit or derived (default 4x)
      -pool cd|lru|ws -level N     per-tenant policy (default cd, level 2)
      -chaos kill,oscillate,corrupt,trip|all -intensity x   fault injection
      -checked=false               skip invariant verification
      -shards N                    fix the shard split (determines results)
      -telemetry                   latency histograms + SLO burn rates
      -top N                       heavy-hitter tenant tables (implies -telemetry)
      -slo                         SLO compliance report (implies -telemetry)
      -incident-dir DIR            write flight-recorder dumps (implies -telemetry)
  bench    [flags]          measure the simulation hot path (ns/ref,
                            allocs/ref, fault anchors) as JSON baselines
      -quick                       short windows (CI smoke mode)
      -o file.json                 write the measured baseline
      -compare base.json           fail on regressions vs a baseline
      -threshold 0.25              ns/ref growth fraction that fails
  serve    [flags] [-- cmd ...]   live telemetry daemon: Prometheus
                            /metrics, /progress + /runs/{id} lifecycle,
                            /events SSE stream, /healthz
      -addr host:port              listen address (default 127.0.0.1:8377)
      -pprof                       expose /debug/pprof/
      -linger 30s                  keep serving after the nested command
      -sse-buffer N                per-subscriber event buffer (default 256)
      -- table1 -j 8               nested command to run with telemetry
  table1..table4 | tables   regenerate the paper's tables

parallelism flag (sim, replay, explain, profile, report, family, detune, pagesize, table*):
  -j N                      run up to N simulations concurrently
                            (default GOMAXPROCS); tables, reports and event
                            streams are byte-identical at any -j

observability flags (sim, replay, explain, profile, table*):
  -events f.jsonl           structured event trace (virtual-time stamped JSONL)
  -metrics f.json           metrics snapshot (counters, gauges, histograms)
  -serve host:port          expose live telemetry for this command (same
                            endpoints as the serve daemon; with -events or
                            -metrics instrumentation stays always-on and the
                            registry is shared with the JSON snapshot)
  -cpuprofile f.pprof       pprof CPU profile of the command
  -memprofile f.pprof       pprof heap profile of the command
`)
}

func cmdList() error {
	for _, p := range workloads.All() {
		sets := make([]string, len(p.Sets))
		for i, s := range p.Sets {
			sets[i] = s.Name
		}
		fmt.Printf("%-8s sets=%-32s %s\n", p.Name, strings.Join(sets, ","), p.Description)
	}
	return nil
}

// loadProgram resolves a name to a built-in workload or reads a source
// file from disk.
func loadProgram(name string) (*core.Program, error) {
	if w, err := workloads.Get(name); err == nil {
		return core.CompileSource(w.Name, w.Source)
	}
	src, err := os.ReadFile(name)
	if err != nil {
		return nil, fmt.Errorf("%q is neither a workload (%s) nor a readable file: %v",
			name, strings.Join(workloads.Names(), ", "), err)
	}
	return core.CompileSource("", string(src))
}

func withProgram(args []string, fn func(*core.Program, []string) error) error {
	if len(args) < 1 {
		return fmt.Errorf("missing program name or file")
	}
	p, err := loadProgram(args[0])
	if err != nil {
		return err
	}
	return fn(p, args[1:])
}

func cmdFamily(args []string) error {
	fs := flag.NewFlagSet("family", flag.ContinueOnError)
	j := registerJFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows, err := experiments.PolicyFamily(newEngine(*j), nil)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderFamily(rows))
	return nil
}

func cmdDetune(args []string) error {
	fs := flag.NewFlagSet("detune", flag.ContinueOnError)
	j := registerJFlag(fs)
	cell := fs.Bool("cellmode", false, "replay one full simulation per detune factor instead of the lockstep one-pass grid (the differential oracle)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows, err := experiments.DetuneStudy(newEngine(*j).WithCellMode(*cell), nil, nil)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderDetune(rows))
	return nil
}

func cmdPageSize(args []string) error {
	prog := "HWSCRT"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		prog, args = args[0], args[1:]
	}
	fs := flag.NewFlagSet("pagesize", flag.ContinueOnError)
	j := registerJFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows, err := experiments.PageSizeSensitivity(newEngine(*j), prog, []int{128, 256, 512, 1024})
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderPageSize(rows))
	return nil
}

func cmdSim(args []string) error {
	return withProgram(args, func(p *core.Program, rest []string) error {
		fs := flag.NewFlagSet("sim", flag.ContinueOnError)
		polName := fs.String("policy", "cd", "policy: cd, lru, fifo, ws, opt")
		level := fs.Int("level", 1, "CD directive-set stratum")
		frames := fs.Int("m", 8, "fixed allocation for lru/fifo/opt")
		tau := fs.Int("tau", 500, "WS window size")
		j := registerJFlag(fs)
		of := registerObsFlags(fs)
		if err := fs.Parse(rest); err != nil {
			return err
		}
		tr, err := p.Trace()
		if err != nil {
			return err
		}
		return of.withObs(func() error {
			newEngine(*j) // after activate: a -serve tracker attaches here
			var res vmsim.Result
			var err error
			switch *polName {
			case "cd":
				res, err = p.RunCD(core.CDOptions{Level: *level})
				if err != nil {
					return err
				}
			case "lru":
				res = vmsim.Run(tr.RefsOnly(), policy.NewLRU(*frames))
			case "fifo":
				res = vmsim.Run(tr.RefsOnly(), policy.NewFIFO(*frames))
			case "ws":
				res = vmsim.Run(tr.RefsOnly(), policy.NewWS(*tau))
			case "opt":
				refs := tr.Pages()
				res = vmsim.Run(tr.RefsOnly(), policy.NewOPT(refs, *frames))
			default:
				return fmt.Errorf("unknown policy %q", *polName)
			}
			fmt.Println(p.Summary())
			fmt.Println(res)
			return nil
		})
	})
}

func cmdSweep(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("missing program name, source file or trace file")
	}
	target := args[0]
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	polName := fs.String("policy", "", "curve policy: lru, ws, fifo, cd (empty: CD-levels summary)")
	grid := fs.String("grid", "", "comma-separated curve grid: allocations (lru/fifo), windows (ws), detune factors (cd)")
	level := fs.Int("level", 1, "CD directive-set stratum (policy cd)")
	asJSON := fs.Bool("json", false, "emit the curve as JSON")
	j := registerJFlag(fs)
	of := registerObsFlags(fs)
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	return of.withObs(func() error {
		newEngine(*j) // after activate: a -serve tracker attaches here
		if *polName == "" {
			return sweepSummary(target)
		}
		return sweepCurve(os.Stdout, target, *polName, *grid, *level, *asJSON)
	})
}

// sweepSummary is the original sweep report: CD at every directive
// stratum versus the tuned LRU and WS minima.
func sweepSummary(target string) error {
	p, err := loadProgram(target)
	if err != nil {
		return err
	}
	tr, err := p.Trace()
	if err != nil {
		return err
	}
	lru, err := p.LRUSweep()
	if err != nil {
		return err
	}
	ws, err := p.WSSweep()
	if err != nil {
		return err
	}
	mBest, lruST := lru.MinST()
	tauBest, wsRes, err := ws.MinST()
	if err != nil {
		return err
	}
	fmt.Printf("%s: V=%d R=%d\n", p.Name, p.V(), tr.Refs)
	fmt.Printf("best LRU: ST=%.4g at m=%d (PF=%d)\n", lruST, mBest, lru.Faults(mBest))
	fmt.Printf("best WS : ST=%.4g at tau=%d (PF=%d, MEM=%.2f)\n", wsRes.ST(), tauBest, wsRes.Faults, wsRes.MEM())
	for lvl := 1; lvl <= p.MaxPI(); lvl++ {
		res, err := p.RunCD(core.CDOptions{Level: lvl})
		if err != nil {
			return err
		}
		marker := ""
		if res.ST() < lruST && res.ST() < wsRes.ST() {
			marker = "   <- beats both"
		}
		fmt.Printf("CD level %d: PF=%-6d MEM=%-8.2f ST=%.4g%s\n", lvl, res.Faults, res.MEM(), res.ST(), marker)
	}
	return nil
}

// sweepSource resolves the sweep target: a saved trace file (CDT3 files
// stream block by block) or a workload/source program's trace.
func sweepSource(target string) (trace.Source, error) {
	if strings.HasSuffix(target, ".cdt1") || strings.HasSuffix(target, ".cdt2") || strings.HasSuffix(target, ".cdt3") {
		return trace.OpenSource(target)
	}
	p, err := loadProgram(target)
	if err != nil {
		return nil, err
	}
	return p.Trace()
}

// curvePoint is one (parameter, result) pair of a policy curve, the JSON
// row of `cdmm sweep -policy ... -json`.
type curvePoint struct {
	Policy string  `json:"policy"`
	Param  float64 `json:"param"`
	PF     int     `json:"pf"`
	MEM    float64 `json:"mem"`
	ST     float64 `json:"st"`
	MaxRes int     `json:"max_resident"`
}

// sweepCurve computes a whole policy curve from one traversal of the
// reference stream and renders it as a table or JSON.
func sweepCurve(w io.Writer, target, polName, gridSpec string, level int, asJSON bool) error {
	var points []curvePoint
	switch polName {
	case "lru", "ws", "fifo":
		src, err := sweepSource(target)
		if err != nil {
			return err
		}
		points, err = refCurve(src, polName, gridSpec)
		if err != nil {
			return err
		}
	case "cd":
		// CD needs the program's directive side-band and selector, so the
		// target must be a program; the grid detunes every granted
		// allocation by each factor.
		p, err := loadProgram(target)
		if err != nil {
			return err
		}
		tr, err := p.Trace()
		if err != nil {
			return err
		}
		factors, err := parseFloatGrid(gridSpec, []float64{0.5, 0.75, 0.9, 1.0, 1.1, 1.5, 2.0})
		if err != nil {
			return err
		}
		pols := make([]policy.Policy, len(factors))
		for i, f := range factors {
			pols[i] = policy.NewCD(experiments.Detune(policy.SelectLevel(level), f), 2)
		}
		results, err := sweep.Multi(tr, pols)
		if err != nil {
			return err
		}
		for i, r := range results {
			points = append(points, curvePoint{
				Policy: r.Policy, Param: factors[i], PF: r.Faults,
				MEM: r.MEM(), ST: r.ST(), MaxRes: r.MaxResident,
			})
		}
	default:
		return fmt.Errorf("unknown sweep policy %q (want lru, ws, fifo or cd)", polName)
	}

	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(points)
	}
	fmt.Fprintf(w, "%-16s %10s %8s %10s %14s %8s\n", "POLICY", "param", "PF", "MEM", "ST", "maxres")
	for _, pt := range points {
		fmt.Fprintf(w, "%-16s %10g %8d %10.2f %14.6g %8d\n",
			pt.Policy, pt.Param, pt.PF, pt.MEM, pt.ST, pt.MaxRes)
	}
	return nil
}

// refCurve computes the lru/ws/fifo curve over a reference stream.
func refCurve(src trace.Source, polName, gridSpec string) ([]curvePoint, error) {
	meta := src.Meta()
	var points []curvePoint
	switch polName {
	case "lru":
		curve, err := sweep.NewLRU(src)
		if err != nil {
			return nil, err
		}
		grid, err := parseIntGrid(gridSpec, capLadder(curve.V))
		if err != nil {
			return nil, err
		}
		for _, m := range grid {
			r := curve.Result(m)
			points = append(points, curvePoint{
				Policy: r.Policy, Param: float64(m), PF: r.Faults,
				MEM: r.MEM(), ST: r.ST(), MaxRes: r.MaxResident,
			})
		}
	case "ws":
		ws, err := sweep.NewWS(src)
		if err != nil {
			return nil, err
		}
		grid, err := parseIntGrid(gridSpec, vmsim.DefaultTaus(meta.Refs))
		if err != nil {
			return nil, err
		}
		results, err := ws.Curve(grid)
		if err != nil {
			return nil, err
		}
		for i, r := range results {
			points = append(points, curvePoint{
				Policy: r.Policy, Param: float64(grid[i]), PF: r.Faults,
				MEM: r.MEM(), ST: r.ST(), MaxRes: r.MaxResident,
			})
		}
	case "fifo":
		grid, err := parseIntGrid(gridSpec, capLadder(meta.Distinct))
		if err != nil {
			return nil, err
		}
		results, err := sweep.FIFOCurve(src, grid)
		if err != nil {
			return nil, err
		}
		for i, r := range results {
			points = append(points, curvePoint{
				Policy: r.Policy, Param: float64(grid[i]), PF: r.Faults,
				MEM: r.MEM(), ST: r.ST(), MaxRes: r.MaxResident,
			})
		}
	}
	return points, nil
}

// capLadder is the default capacity grid: every allocation up to 16,
// then ~12% geometric steps to v.
func capLadder(v int) []int {
	var grid []int
	for m := 1; m <= v; {
		grid = append(grid, m)
		if m < 16 {
			m++
		} else if next := m + m/8; next > m {
			m = next
		} else {
			m++
		}
	}
	if len(grid) == 0 || grid[len(grid)-1] != v {
		grid = append(grid, v)
	}
	return grid
}

// parseIntGrid parses a comma-separated integer grid, or returns def
// when the spec is empty.
func parseIntGrid(spec string, def []int) ([]int, error) {
	if spec == "" {
		return def, nil
	}
	parts := strings.Split(spec, ",")
	grid := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad grid point %q: %w", p, err)
		}
		grid = append(grid, n)
	}
	return grid, nil
}

// parseFloatGrid parses a comma-separated float grid, or returns def
// when the spec is empty.
func parseFloatGrid(spec string, def []float64) ([]float64, error) {
	if spec == "" {
		return def, nil
	}
	parts := strings.Split(spec, ",")
	grid := make([]float64, 0, len(parts))
	for _, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad grid point %q: %w", p, err)
		}
		grid = append(grid, f)
	}
	return grid, nil
}

func cmdTables(which string, args []string) error {
	fs := flag.NewFlagSet(which, flag.ContinueOnError)
	j := registerJFlag(fs)
	cell := fs.Bool("cellmode", false, "compute sweep artifacts by per-cell replay (one full simulation per curve point; the differential oracle)")
	timing := fs.Bool("timing", false, "after rendering, recompute the tables in the other sweep mode and print the wall-clock comparison")
	of := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	finish, err := of.activate()
	if err != nil {
		return err
	}
	if *timing {
		// workloads.Compile is a process-global cache, so whichever leg
		// runs first would otherwise pay FORTRAN compilation and trace
		// generation for both. Warm it up front so the timed legs
		// compare sweep work only.
		if err := warmTableCompiles(which); err != nil {
			return err
		}
	}
	start := time.Now()
	err = runTablesTo(os.Stdout, which, newEngine(*j).WithCellMode(*cell))
	if err == nil && *timing {
		// The other mode renders to the bit bucket on a fresh engine:
		// same compiled programs, but every simulation and sweep redone.
		thisDur := time.Since(start)
		otherStart := time.Now()
		err = runTablesTo(io.Discard, which, engine.New(*j).WithCellMode(!*cell))
		if err == nil {
			fmt.Println(renderTimingLine(*cell, thisDur, time.Since(otherStart)))
		}
	}
	if ferr := finish(); err == nil {
		err = ferr
	}
	return err
}

// warmTableCompiles compiles every program the selected table draws on,
// populating the shared workloads cache before `-timing` starts its
// clocks.
func warmTableCompiles(which string) error {
	var vs []experiments.Variant
	switch which {
	case "table1":
		vs = experiments.Table1Variants
	case "table2":
		vs = experiments.Table2Variants
	case "table3", "table4":
		vs = experiments.Table34Variants
	default: // tables: Table34Variants covers every program in 1 and 2
		vs = experiments.Table34Variants
	}
	seen := map[string]bool{}
	for _, v := range vs {
		if seen[v.Program] {
			continue
		}
		seen[v.Program] = true
		p, err := workloads.Get(v.Program)
		if err != nil {
			return err
		}
		if _, err := workloads.Compile(p); err != nil {
			return err
		}
	}
	return nil
}

// renderTimingLine formats the curve-vs-cell wall-clock comparison for
// `cdmm table* -timing`. thisDur is the rendered leg's duration in the
// requested mode (cell when cellMode, else curve), otherDur the silent
// recomputation in the opposite mode.
func renderTimingLine(cellMode bool, thisDur, otherDur time.Duration) string {
	curve, cell := thisDur, otherDur
	if cellMode {
		curve, cell = otherDur, thisDur
	}
	speedup := 0.0
	if curve > 0 {
		speedup = float64(cell) / float64(curve)
	}
	return fmt.Sprintf("sweep timing: curve %s vs per-cell %s (%.1fx)",
		curve.Round(time.Millisecond), cell.Round(time.Millisecond), speedup)
}

func runTables(which string, eng *engine.Engine) error {
	return runTablesTo(os.Stdout, which, eng)
}

func runTablesTo(w io.Writer, which string, eng *engine.Engine) error {
	show := func(name string, gen func() (string, error)) error {
		if which != "tables" && which != name {
			return nil
		}
		out, err := gen()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, out)
		return nil
	}
	if err := show("table1", func() (string, error) {
		rows, err := experiments.Table1(eng)
		if err != nil {
			return "", err
		}
		return experiments.RenderTable1(rows), nil
	}); err != nil {
		return err
	}
	if err := show("table2", func() (string, error) {
		rows, err := experiments.Table2(eng)
		if err != nil {
			return "", err
		}
		return experiments.RenderTable2(rows), nil
	}); err != nil {
		return err
	}
	if err := show("table3", func() (string, error) {
		rows, err := experiments.Table3(eng)
		if err != nil {
			return "", err
		}
		return experiments.RenderTable3(rows), nil
	}); err != nil {
		return err
	}
	return show("table4", func() (string, error) {
		rows, err := experiments.Table4(eng)
		if err != nil {
			return "", err
		}
		return experiments.RenderTable4(rows), nil
	})
}

func cmdTrace(args []string) error {
	return withProgram(args, func(p *core.Program, rest []string) error {
		fs := flag.NewFlagSet("trace", flag.ContinueOnError)
		out := fs.String("o", "", "write the trace to this file (row CDT1/CDT2, or columnar CDT3 for *.cdt3)")
		chunk := fs.Int("chunk", trace.DefaultChunkEvents, "CDT3 chunk size in events (for *.cdt3 outputs)")
		repeat := fs.Int("repeat", 1, "replicate the reference string N times in the CDT3 output (drops directives; for big-trace streaming tests)")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if *repeat > 1 && (*out == "" || !strings.HasSuffix(*out, ".cdt3")) {
			return fmt.Errorf("-repeat needs a *.cdt3 output (row formats materialize the whole stream)")
		}
		tr, err := p.Trace()
		if err != nil {
			return err
		}
		fmt.Println(tr.Summary())
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				return err
			}
			var n int64
			if strings.HasSuffix(*out, ".cdt3") {
				var src trace.Source = tr
				if *repeat > 1 {
					src = trace.Repeat(tr, *repeat)
				}
				n, err = trace.WriteCDT3(f, src, *chunk)
			} else {
				n, err = tr.WriteTo(f)
			}
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
			fmt.Printf("wrote %d bytes to %s\n", n, *out)
		}
		return nil
	})
}

func cmdReplay(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("missing trace file")
	}
	// CDT3 files stream block by block in O(chunk) memory; CDT1/CDT2
	// files decode fully (their row encoding has no chunk framing).
	src, err := trace.OpenSource(args[0])
	if err != nil {
		return err
	}
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	polName := fs.String("policy", "cd", "policy: cd, lru, fifo, ws, opt")
	level := fs.Int("level", 1, "CD directive-set stratum")
	frames := fs.Int("m", 8, "fixed allocation for lru/fifo/opt")
	tau := fs.Int("tau", 500, "WS window size")
	memCeil := fs.Int("memceil", 0, "fail if peak RSS exceeds this many MiB (Linux VmHWM; 0 = no check)")
	j := registerJFlag(fs)
	of := registerObsFlags(fs)
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	return of.withObs(func() error {
		newEngine(*j) // after activate: a -serve tracker attaches here
		meta := src.Meta()
		var res vmsim.Result
		var err error
		switch *polName {
		case "cd":
			res, err = vmsim.RunSource(src, policy.NewCD(policy.SelectLevel(*level), 2), nil)
		case "lru":
			// LRU/FIFO/WS ignore directives, so streaming the full event
			// stream gives the same Result as the directive-free view.
			res, err = vmsim.RunSource(src, policy.NewLRU(*frames), nil)
		case "fifo":
			res, err = vmsim.RunSource(src, policy.NewFIFO(*frames), nil)
		case "ws":
			res, err = vmsim.RunSource(src, policy.NewWS(*tau), nil)
		case "opt":
			// OPT needs the whole future reference string, so it cannot
			// stream; materialize the trace whatever the input format.
			tr, merr := materialize(src, args[0])
			if merr != nil {
				return merr
			}
			res = vmsim.Run(tr.RefsOnly(), policy.NewOPT(tr.Pages(), *frames))
		default:
			return fmt.Errorf("unknown policy %q", *polName)
		}
		if err != nil {
			return err
		}
		fmt.Printf("%s: R=%d references, V=%d distinct pages, %d directive events\n",
			meta.Name, meta.Refs, meta.Distinct, meta.Events-meta.Refs)
		fmt.Println(res)
		if *memCeil > 0 {
			kb, err := peakRSSKiB()
			if err != nil {
				return fmt.Errorf("-memceil: %w", err)
			}
			fmt.Printf("peak RSS: %.1f MiB (ceiling %d MiB)\n", float64(kb)/1024, *memCeil)
			if kb > int64(*memCeil)<<10 {
				return fmt.Errorf("peak RSS %.1f MiB exceeds the %d MiB ceiling: streamed replay is not O(chunk)",
					float64(kb)/1024, *memCeil)
			}
		}
		return nil
	})
}

// peakRSSKiB reads the process's peak resident set size from the Linux
// /proc interface. The streamed-replay CI job uses it to prove a
// multi-GB CDT3 trace replays in O(chunk) memory.
func peakRSSKiB() (int64, error) {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			break
		}
		kb, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("parsing VmHWM %q: %w", line, err)
		}
		return kb, nil
	}
	return 0, fmt.Errorf("no VmHWM in /proc/self/status")
}

// materialize turns any Source into an in-memory Trace, re-reading the
// file for streamed sources.
func materialize(src trace.Source, path string) (*trace.Trace, error) {
	if tr, ok := src.(*trace.Trace); ok {
		return tr, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Read(f)
}
