package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"cdmm/internal/kernel"
)

// cmdKernel runs the sharded multiprogrammed CD kernel: thousands of
// synthesized tenants over one overcommitted frame pool, with admission
// control, pressure-driven reclamation and aging — the paper's §4
// operating-system component at population scale.
func cmdKernel(args []string) error {
	fs := flag.NewFlagSet("kernel", flag.ExitOnError)
	tenants := fs.Int("tenants", 1000, "tenant population size")
	frames := fs.Int("frames", 0, "global frame pool (0 = derive from -overcommit)")
	overcommit := fs.Float64("overcommit", 4, "declared-estimate-to-frames ratio when -frames is 0")
	shards := fs.Int("shards", 0, "shard count (0 = ~1 per 256 tenants; fixes the result, not -j)")
	seed := fs.Uint64("seed", 1, "base seed for tenant synthesis and chaos")
	pool := fs.String("pool", "cd", "per-tenant policy: cd, lru, ws")
	level := fs.Int("level", 2, "CD directive-set stratum")
	quantum := fs.Int("quantum", 512, "scheduler quantum in references")
	chaosSel := fs.String("chaos", "", "comma-separated faults: kill, oscillate, corrupt, trip (or 'all'; trip always fails the run)")
	intensity := fs.Float64("intensity", 0.4, "chaos intensity in [0,1]")
	checked := fs.Bool("checked", true, "verify kernel-wide invariants during and after the run")
	quick := fs.Bool("quick", false, "smoke mode: quarter-length tenant workloads")
	memCeil := fs.Int("memceil", 0, "fail if peak RSS exceeds this many MiB (Linux VmHWM; 0 = no check)")
	telemetry := fs.Bool("telemetry", false, "collect the telemetry plane (implied by -top, -slo, -incident-dir or -serve)")
	topN := fs.Int("top", 0, "print the top N heavy-hitter tenants by faults, frames and displacements")
	slo := fs.Bool("slo", false, "print SLO compliance and burn rates")
	incidentDir := fs.String("incident-dir", "", "write flight-recorder incident dumps (JSONL) into this directory")
	j := registerJFlag(fs)
	of := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := kernel.Config{
		Tenants:    *tenants,
		Frames:     *frames,
		Overcommit: *overcommit,
		Shards:     *shards,
		Seed:       *seed,
		Pool:       *pool,
		Level:      *level,
		Quantum:    *quantum,
		Checked:    *checked,
	}
	if *quick {
		cfg.Scale = 0.25
	}
	if *chaosSel != "" {
		cfg.Chaos.Intensity = *intensity
		for _, name := range strings.Split(*chaosSel, ",") {
			switch strings.TrimSpace(name) {
			case "kill":
				cfg.Chaos.Kill = true
			case "oscillate":
				cfg.Chaos.Oscillate = true
			case "corrupt":
				cfg.Chaos.Corrupt = true
			case "trip":
				cfg.Chaos.Trip = true
			case "all":
				cfg.Chaos.Kill, cfg.Chaos.Oscillate, cfg.Chaos.Corrupt = true, true, true
			default:
				return fmt.Errorf("kernel: unknown chaos fault %q (want kill, oscillate, corrupt, trip or all)", name)
			}
		}
	}

	// Any telemetry consumer turns the plane on; an unwatched kernel
	// pays nothing for it.
	if *telemetry || *topN > 0 || *slo || *incidentDir != "" {
		cfg.Telemetry = true
	}

	return of.withObs(func() error {
		eng := newEngine(*j) // after activate: a -serve tracker attaches here
		cfg.Publish = of.kernelStore()
		start := time.Now()
		res, err := kernel.Run(cfg, eng)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		fmt.Println(res)
		if res.Telemetry != nil {
			fmt.Print(res.Telemetry.RenderHists())
			if *topN > 0 {
				fmt.Print(res.Telemetry.RenderTop(*topN))
			}
			if *slo {
				fmt.Print(res.Telemetry.RenderSLO())
			}
		}
		if *incidentDir != "" {
			if err := writeIncidents(*incidentDir, res); err != nil {
				return err
			}
		}
		if s := elapsed.Seconds(); s > 0 {
			fmt.Fprintf(os.Stderr, "kernel: %d refs in %.2fs (%.1fM refs/s aggregate)\n",
				res.Refs, s, float64(res.Refs)/s/1e6)
		}
		if store := of.explainStore(); store != nil {
			store.Put("kernel/"+res.Pool, res.Ledger(256))
		}
		if *memCeil > 0 {
			kb, err := peakRSSKiB()
			if err != nil {
				return fmt.Errorf("-memceil: %w", err)
			}
			fmt.Printf("peak RSS: %.1f MiB (ceiling %d MiB)\n", float64(kb)/1024, *memCeil)
			if kb > int64(*memCeil)<<10 {
				return fmt.Errorf("peak RSS %.1f MiB exceeds the %d MiB ceiling: tenant materialization is not bounded by the multiprogramming level",
					float64(kb)/1024, *memCeil)
			}
		}
		if n := len(res.Violations); n > 0 {
			return fmt.Errorf("kernel: %d invariant violations (first: %s)", n, res.Violations[0])
		}
		if res.Starved > 0 {
			return fmt.Errorf("kernel: %d starved resumes (max suspend wait %d exceeds bound %d)",
				res.Starved, res.MaxSuspendWait, res.StarveBound)
		}
		return nil
	})
}

// writeIncidents dumps each flight-recorder incident to its own JSONL
// file under dir. Filenames are deterministic — (shard, seq, trigger) —
// so a re-run with the same seed overwrites rather than accumulates.
func writeIncidents(dir string, res *kernel.Result) error {
	if len(res.Incidents) == 0 {
		fmt.Printf("incidents: none\n")
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("-incident-dir: %w", err)
	}
	for i := range res.Incidents {
		in := &res.Incidents[i]
		file, err := os.Create(filepath.Join(dir, in.Filename()))
		if err != nil {
			return fmt.Errorf("-incident-dir: %w", err)
		}
		werr := in.WriteJSONL(file)
		if cerr := file.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("-incident-dir: %w", werr)
		}
	}
	fmt.Printf("incidents: %d written to %s (%d dropped at the per-shard cap)\n",
		len(res.Incidents), dir, res.IncidentsDropped)
	return nil
}
