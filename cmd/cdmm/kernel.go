package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cdmm/internal/kernel"
)

// cmdKernel runs the sharded multiprogrammed CD kernel: thousands of
// synthesized tenants over one overcommitted frame pool, with admission
// control, pressure-driven reclamation and aging — the paper's §4
// operating-system component at population scale.
func cmdKernel(args []string) error {
	fs := flag.NewFlagSet("kernel", flag.ExitOnError)
	tenants := fs.Int("tenants", 1000, "tenant population size")
	frames := fs.Int("frames", 0, "global frame pool (0 = derive from -overcommit)")
	overcommit := fs.Float64("overcommit", 4, "declared-estimate-to-frames ratio when -frames is 0")
	shards := fs.Int("shards", 0, "shard count (0 = ~1 per 256 tenants; fixes the result, not -j)")
	seed := fs.Uint64("seed", 1, "base seed for tenant synthesis and chaos")
	pool := fs.String("pool", "cd", "per-tenant policy: cd, lru, ws")
	level := fs.Int("level", 2, "CD directive-set stratum")
	quantum := fs.Int("quantum", 512, "scheduler quantum in references")
	chaosSel := fs.String("chaos", "", "comma-separated faults: kill, oscillate, corrupt (or 'all')")
	intensity := fs.Float64("intensity", 0.4, "chaos intensity in [0,1]")
	checked := fs.Bool("checked", true, "verify kernel-wide invariants during and after the run")
	quick := fs.Bool("quick", false, "smoke mode: quarter-length tenant workloads")
	memCeil := fs.Int("memceil", 0, "fail if peak RSS exceeds this many MiB (Linux VmHWM; 0 = no check)")
	j := registerJFlag(fs)
	of := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := kernel.Config{
		Tenants:    *tenants,
		Frames:     *frames,
		Overcommit: *overcommit,
		Shards:     *shards,
		Seed:       *seed,
		Pool:       *pool,
		Level:      *level,
		Quantum:    *quantum,
		Checked:    *checked,
	}
	if *quick {
		cfg.Scale = 0.25
	}
	if *chaosSel != "" {
		cfg.Chaos.Intensity = *intensity
		for _, name := range strings.Split(*chaosSel, ",") {
			switch strings.TrimSpace(name) {
			case "kill":
				cfg.Chaos.Kill = true
			case "oscillate":
				cfg.Chaos.Oscillate = true
			case "corrupt":
				cfg.Chaos.Corrupt = true
			case "all":
				cfg.Chaos.Kill, cfg.Chaos.Oscillate, cfg.Chaos.Corrupt = true, true, true
			default:
				return fmt.Errorf("kernel: unknown chaos fault %q (want kill, oscillate, corrupt or all)", name)
			}
		}
	}

	return of.withObs(func() error {
		eng := newEngine(*j) // after activate: a -serve tracker attaches here
		start := time.Now()
		res, err := kernel.Run(cfg, eng)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		fmt.Println(res)
		if s := elapsed.Seconds(); s > 0 {
			fmt.Fprintf(os.Stderr, "kernel: %d refs in %.2fs (%.1fM refs/s aggregate)\n",
				res.Refs, s, float64(res.Refs)/s/1e6)
		}
		if store := of.explainStore(); store != nil {
			store.Put("kernel/"+res.Pool, res.Ledger(256))
		}
		if *memCeil > 0 {
			kb, err := peakRSSKiB()
			if err != nil {
				return fmt.Errorf("-memceil: %w", err)
			}
			fmt.Printf("peak RSS: %.1f MiB (ceiling %d MiB)\n", float64(kb)/1024, *memCeil)
			if kb > int64(*memCeil)<<10 {
				return fmt.Errorf("peak RSS %.1f MiB exceeds the %d MiB ceiling: tenant materialization is not bounded by the multiprogramming level",
					float64(kb)/1024, *memCeil)
			}
		}
		if n := len(res.Violations); n > 0 {
			return fmt.Errorf("kernel: %d invariant violations (first: %s)", n, res.Violations[0])
		}
		if res.Starved > 0 {
			return fmt.Errorf("kernel: %d starved resumes (max suspend wait %d exceeds bound %d)",
				res.Starved, res.MaxSuspendWait, res.StarveBound)
		}
		return nil
	})
}
