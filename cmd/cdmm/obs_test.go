package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"cdmm/internal/core"
	"cdmm/internal/obs"
)

// TestCmdSimEventsMatchResult is the acceptance check for the event
// trace: `cdmm sim HWSCRT -policy cd -events out.jsonl` must write valid
// JSONL whose replayed aggregates (fault count, mean resident set) equal
// the simulation result exactly.
func TestCmdSimEventsMatchResult(t *testing.T) {
	dir := t.TempDir()
	ev := filepath.Join(dir, "out.jsonl")
	met := filepath.Join(dir, "metrics.json")
	err := cmdSim([]string{"HWSCRT", "-policy", "cd", "-level", "2", "-events", ev, "-metrics", met})
	if err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(ev)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		t.Fatalf("event file is not valid JSONL: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("no events written")
	}
	refs, faults, memSum := obs.Replay(events)

	// Reference run of the same simulation, un-instrumented.
	p, err := loadProgram("HWSCRT")
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunCD(core.CDOptions{Level: 2})
	if err != nil {
		t.Fatal(err)
	}
	if refs != res.Refs || faults != res.Faults {
		t.Errorf("replayed refs/faults = %d/%d, result %d/%d", refs, faults, res.Refs, res.Faults)
	}
	if mean := memSum / float64(refs); mean != res.MEM() {
		t.Errorf("replayed mean resident = %v, result %v", mean, res.MEM())
	}

	raw, err := os.ReadFile(met)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics file is not valid JSON: %v", err)
	}
	if snap.Counters["faults"] != int64(res.Faults) {
		t.Errorf("metrics faults = %d, result %d", snap.Counters["faults"], res.Faults)
	}
}

func TestCmdSimProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	heap := filepath.Join(dir, "heap.pprof")
	err := cmdSim([]string{"HWSCRT", "-policy", "lru", "-m", "16", "-cpuprofile", cpu, "-memprofile", heap})
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, heap} {
		if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty: %v", path, err)
		}
	}
}

func TestCmdReplayEvents(t *testing.T) {
	dir := t.TempDir()
	trc := filepath.Join(dir, "t.trc")
	if err := cmdTrace([]string{"HWSCRT", "-o", trc}); err != nil {
		t.Fatal(err)
	}
	ev := filepath.Join(dir, "replay.jsonl")
	if err := cmdReplay([]string{trc, "-policy", "ws", "-tau", "300", "-events", ev}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(ev)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil || len(events) == 0 {
		t.Fatalf("replay wrote no usable events: %v (%d events)", err, len(events))
	}
}

func TestCmdProfile(t *testing.T) {
	if err := cmdProfile([]string{"HWSCRT", "-buckets", "32"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdProfile([]string{}); err == nil {
		t.Error("expected missing-argument error")
	}
}

func TestCmdTablesObsFlags(t *testing.T) {
	dir := t.TempDir()
	ev := filepath.Join(dir, "t1.jsonl")
	if err := cmdTables("table1", []string{"-events", ev}); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(ev); err != nil || fi.Size() == 0 {
		t.Errorf("table1 event file missing or empty: %v", err)
	}
}

// TestCmdTablesEventsDeterministicAcrossJ regenerates Table 1 with the
// JSONL event trace enabled at -j 1 and -j 8 and requires the two files
// to be byte-identical: the engine buffers per-run events and merges
// them in declaration order, so parallelism never reorders the stream.
func TestCmdTablesEventsDeterministicAcrossJ(t *testing.T) {
	dir := t.TempDir()
	seq := filepath.Join(dir, "seq.jsonl")
	par := filepath.Join(dir, "par.jsonl")
	if err := cmdTables("table1", []string{"-j", "1", "-events", seq}); err != nil {
		t.Fatal(err)
	}
	if err := cmdTables("table1", []string{"-j", "8", "-events", par}); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(par)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("no events written")
	}
	if !bytes.Equal(a, b) {
		t.Errorf("event streams differ between -j 1 (%d bytes) and -j 8 (%d bytes)", len(a), len(b))
	}
}
