package main

import (
	"flag"
	"os"
	"runtime"
	"runtime/pprof"

	"cdmm/internal/obs"
	"cdmm/internal/vmsim"
)

// obsFlags holds the observability flags shared by sim, replay, profile
// and the table commands: structured event tracing, a metrics snapshot,
// and pprof CPU/heap profiles.
type obsFlags struct {
	events     *string
	metrics    *string
	cpuprofile *string
	memprofile *string

	sink *obs.JSONLSink
	reg  *obs.Registry
	cpu  *os.File
}

// registerObsFlags adds the four flags to fs.
func registerObsFlags(fs *flag.FlagSet) *obsFlags {
	f := &obsFlags{}
	f.events = fs.String("events", "", "write a JSONL structured event trace to this file")
	f.metrics = fs.String("metrics", "", "write a JSON metrics snapshot to this file")
	f.cpuprofile = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	f.memprofile = fs.String("memprofile", "", "write a pprof heap profile to this file")
	return f
}

// activate opens the requested sinks, installs the process-wide run
// observer and starts CPU profiling. The returned finish func must be
// called exactly once after the command's work to flush and close
// everything; its error must be propagated.
func (f *obsFlags) activate() (func() error, error) {
	var o obs.Observer
	if *f.events != "" {
		file, err := os.Create(*f.events)
		if err != nil {
			return nil, err
		}
		f.sink = obs.NewJSONLSink(file)
		o.Tracer = f.sink
	}
	if *f.metrics != "" {
		f.reg = obs.NewRegistry()
		o.Metrics = f.reg
	}
	if o.Enabled() {
		vmsim.DefaultObserver = &o
	}
	if *f.cpuprofile != "" {
		file, err := os.Create(*f.cpuprofile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(file); err != nil {
			file.Close()
			return nil, err
		}
		f.cpu = file
	}
	return f.finish, nil
}

func (f *obsFlags) finish() error {
	var first error
	keep := func(err error) {
		if first == nil && err != nil {
			first = err
		}
	}
	vmsim.DefaultObserver = nil
	if f.cpu != nil {
		pprof.StopCPUProfile()
		keep(f.cpu.Close())
	}
	if *f.memprofile != "" {
		file, err := os.Create(*f.memprofile)
		if err != nil {
			keep(err)
		} else {
			runtime.GC() // materialize final live-heap state
			keep(pprof.WriteHeapProfile(file))
			keep(file.Close())
		}
	}
	if f.sink != nil {
		keep(f.sink.Close())
	}
	if f.reg != nil {
		file, err := os.Create(*f.metrics)
		if err != nil {
			keep(err)
		} else {
			keep(f.reg.WriteJSON(file))
			keep(file.Close())
		}
	}
	return first
}

// withObs parses nothing itself: it runs body between activate and
// finish, merging errors.
func (f *obsFlags) withObs(body func() error) error {
	finish, err := f.activate()
	if err != nil {
		return err
	}
	err = body()
	if ferr := finish(); err == nil {
		err = ferr
	}
	return err
}
