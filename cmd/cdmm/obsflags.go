package main

import (
	"context"
	"flag"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"cdmm/internal/attr"
	"cdmm/internal/kernel"
	"cdmm/internal/obs"
	"cdmm/internal/serve"
	"cdmm/internal/vmsim"
)

// obsFlags holds the observability flags shared by sim, replay, profile
// and the table commands: structured event tracing, a metrics snapshot,
// a live telemetry server, and pprof CPU/heap profiles.
type obsFlags struct {
	events     *string
	metrics    *string
	serveAddr  *string
	cpuprofile *string
	memprofile *string

	sink *obs.JSONLSink
	reg  *obs.Registry
	srv  *serve.Server
	cpu  *os.File
}

// registerObsFlags adds the flags to fs.
func registerObsFlags(fs *flag.FlagSet) *obsFlags {
	f := &obsFlags{}
	f.events = fs.String("events", "", "write a JSONL structured event trace to this file")
	f.metrics = fs.String("metrics", "", "write a JSON metrics snapshot to this file")
	f.serveAddr = fs.String("serve", "", "expose live telemetry (/metrics, /progress, /events) at this host:port for the command's duration")
	f.cpuprofile = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	f.memprofile = fs.String("memprofile", "", "write a pprof heap profile to this file")
	return f
}

// activate opens the requested sinks, installs the process-wide run
// observer and starts CPU profiling. Call it before newEngine: a -serve
// telemetry server attaches its progress tracker to every engine built
// afterwards. The returned finish func must be called exactly once
// after the command's work to flush and close everything; its error
// must be propagated.
func (f *obsFlags) activate() (func() error, error) {
	var o obs.Observer
	if *f.events != "" {
		file, err := os.Create(*f.events)
		if err != nil {
			return nil, err
		}
		f.sink = obs.NewJSONLSink(file)
		o.Tracer = f.sink
	}
	if *f.metrics != "" {
		f.reg = obs.NewRegistry()
		o.Metrics = f.reg
	}
	if *f.serveAddr != "" {
		logger := newServeLogger()
		// Share the -metrics registry with the scrape endpoint when both
		// are requested, so the JSON snapshot and Prometheus agree.
		f.srv = serve.New(serve.Options{Registry: f.reg, Log: logger})
		if err := f.srv.Start(*f.serveAddr); err != nil {
			if f.sink != nil {
				f.sink.Close()
			}
			return nil, err
		}
		so := f.srv.Observer()
		if o.Tracer != nil {
			o.Tracer = obs.MultiTracer{o.Tracer, so.Tracer}
		} else {
			o.Tracer = so.Tracer
		}
		o.Metrics = so.Metrics
		f.reg = so.Metrics
		if *f.events == "" && *f.metrics == "" {
			// Telemetry only: gate on actual clients so unwatched runs
			// keep the un-instrumented fast path. Explicit file sinks
			// bypass the gate — they must capture everything.
			o.Gate = f.srv
		}
		serveProgress = f.srv.Progress()
		serveLogger = logger
	}
	if o.Tracer != nil || o.Metrics != nil {
		vmsim.DefaultObserver = &o
	}
	if *f.cpuprofile != "" {
		file, err := os.Create(*f.cpuprofile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(file); err != nil {
			file.Close()
			return nil, err
		}
		f.cpu = file
	}
	return f.finish, nil
}

// explainStore returns the live -serve server's attribution store, or
// nil when no telemetry server is attached: commands that build ledgers
// publish them there so /explain and the per-site scrape series see them.
func (f *obsFlags) explainStore() *attr.Store {
	if f.srv == nil {
		return nil
	}
	return f.srv.Explain()
}

// kernelStore returns the live -serve server's kernel telemetry store,
// or nil when no telemetry server is attached: a kernel run publishes
// into it so /kernel and the cdmm_kernel_* scrape series go live.
func (f *obsFlags) kernelStore() *kernel.TelemetryStore {
	if f.srv == nil {
		return nil
	}
	return f.srv.Kernel()
}

func (f *obsFlags) finish() error {
	var first error
	keep := func(err error) {
		if first == nil && err != nil {
			first = err
		}
	}
	vmsim.DefaultObserver = nil
	if f.srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		keep(f.srv.Shutdown(ctx))
		cancel()
		serveProgress = nil
		serveLogger = nil
	}
	if f.cpu != nil {
		pprof.StopCPUProfile()
		keep(f.cpu.Close())
	}
	if *f.memprofile != "" {
		file, err := os.Create(*f.memprofile)
		if err != nil {
			keep(err)
		} else {
			runtime.GC() // materialize final live-heap state
			keep(pprof.WriteHeapProfile(file))
			keep(file.Close())
		}
	}
	if f.sink != nil {
		keep(f.sink.Close())
	}
	if *f.metrics != "" && f.reg != nil {
		file, err := os.Create(*f.metrics)
		if err != nil {
			keep(err)
		} else {
			keep(f.reg.WriteJSON(file))
			keep(file.Close())
		}
	}
	return first
}

// withObs parses nothing itself: it runs body between activate and
// finish, merging errors.
func (f *obsFlags) withObs(body func() error) error {
	finish, err := f.activate()
	if err != nil {
		return err
	}
	err = body()
	if ferr := finish(); err == nil {
		err = ferr
	}
	return err
}
