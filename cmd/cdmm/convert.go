// cdmm convert: translate traces between the row-oriented CDT1/CDT2
// encodings and the columnar streaming CDT3 format, with a byte-exact
// round-trip check and a per-section size breakdown. CDT3 is the format
// the streaming replay path (cdmm replay on a .cdt3 file) consumes in
// O(chunk) memory.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"

	"cdmm/internal/trace"
	"cdmm/internal/workloads"
)

func cmdConvert(args []string) error {
	var in string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		in, args = args[0], args[1:]
	}
	fs := flag.NewFlagSet("convert", flag.ContinueOnError)
	out := fs.String("o", "", "output trace file")
	to := fs.String("to", "cdt3", "target format: cdt3, or cdt1 (row encoding; traces with sites write CDT2)")
	chunk := fs.Int("chunk", trace.DefaultChunkEvents, "CDT3 chunk size in events")
	check := fs.Bool("check", false, "verify the output re-encodes byte-identically to the input")
	stat := fs.Bool("stat", false, "print per-section sizes and compression ratio")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if in == "" {
		if *stat {
			return convertStatAll(*chunk)
		}
		return fmt.Errorf("missing input (trace file, workload, or .f program); or -stat for the suite-wide breakdown")
	}

	tr, rowBytes, err := loadTraceInput(in)
	if err != nil {
		return err
	}

	var outBytes []byte
	var stats trace.CDT3Stats
	switch *to {
	case "cdt3":
		var buf bytes.Buffer
		if _, err := trace.WriteCDT3Stats(&buf, tr, *chunk, &stats); err != nil {
			return err
		}
		outBytes = buf.Bytes()
	case "cdt1", "cdt2":
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			return err
		}
		outBytes = buf.Bytes()
	default:
		return fmt.Errorf("unknown target format %q (want cdt3 or cdt1)", *to)
	}

	if *check {
		if err := checkRoundTrip(rowBytes, outBytes, *chunk); err != nil {
			return err
		}
		fmt.Println("round-trip check: ok (re-encode is byte-identical)")
	}
	if *stat {
		if *to == "cdt3" {
			printCDT3Stats(tr.Name, &stats, int64(len(rowBytes)))
		} else {
			fmt.Printf("%s: %d events, %d row-format bytes (%.2fx vs CDT3 input of %d bytes)\n",
				tr.Name, len(tr.Events), len(outBytes), float64(len(outBytes))/float64(len(rowBytes)), len(rowBytes))
		}
	}
	if *out != "" {
		if err := os.WriteFile(*out, outBytes, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %d bytes to %s\n", len(outBytes), *out)
	} else if !*stat && !*check {
		fmt.Printf("%s: %d events -> %d bytes (no -o given, nothing written)\n", tr.Name, len(tr.Events), len(outBytes))
	}
	return nil
}

// loadTraceInput resolves the convert input: an existing trace file (any
// CDT format) or a workload/program name compiled and traced on the fly.
// rowBytes is the trace's canonical row encoding (the file bytes for
// CDT1/CDT2 inputs, an in-memory encode otherwise) — the reference the
// round-trip check compares against and the denominator of the
// compression ratio.
func loadTraceInput(in string) (tr *trace.Trace, rowBytes []byte, err error) {
	if raw, rerr := os.ReadFile(in); rerr == nil && len(raw) >= 4 && strings.HasPrefix(string(raw[:4]), "CDT") {
		tr, err = trace.Read(bytes.NewReader(raw))
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", in, err)
		}
		if string(raw[:4]) == "CDT3" {
			var buf bytes.Buffer
			if _, err = tr.WriteTo(&buf); err != nil {
				return nil, nil, err
			}
			return tr, buf.Bytes(), nil
		}
		return tr, raw, nil
	}
	p, err := loadProgram(in)
	if err != nil {
		return nil, nil, err
	}
	tr, err = p.Trace()
	if err != nil {
		return nil, nil, err
	}
	var buf bytes.Buffer
	if _, err = tr.WriteTo(&buf); err != nil {
		return nil, nil, err
	}
	return tr, buf.Bytes(), nil
}

// checkRoundTrip decodes the freshly produced output and verifies both
// re-encodings are byte-exact: back to the row format against the
// canonical row bytes, and (for CDT3 outputs) back to CDT3 against the
// bytes just written. For CDT3 *inputs* the row comparison still holds —
// the row encoding of a decoded trace is canonical — so every
// CDT1/CDT2 ↔ CDT3 direction is covered.
func checkRoundTrip(rowBytes, outBytes []byte, chunk int) error {
	tr2, err := trace.Read(bytes.NewReader(outBytes))
	if err != nil {
		return fmt.Errorf("round-trip: decoding the converted output failed: %w", err)
	}
	var row2 bytes.Buffer
	if _, err := tr2.WriteTo(&row2); err != nil {
		return err
	}
	if !bytes.Equal(row2.Bytes(), rowBytes) {
		return fmt.Errorf("round-trip: row re-encode differs (%d bytes vs %d canonical)", row2.Len(), len(rowBytes))
	}
	if len(outBytes) >= 4 && string(outBytes[:4]) == "CDT3" {
		var col2 bytes.Buffer
		if _, err := trace.WriteCDT3(&col2, tr2, chunk); err != nil {
			return err
		}
		if !bytes.Equal(col2.Bytes(), outBytes) {
			return fmt.Errorf("round-trip: CDT3 re-encode differs (%d bytes vs %d written)", col2.Len(), len(outBytes))
		}
	}
	return nil
}

// convertStatAll prints the CDT3 section breakdown and compression ratio
// for every built-in workload.
func convertStatAll(chunk int) error {
	fmt.Printf("%-8s %9s %9s %9s %8s %8s %8s %8s %7s\n",
		"program", "row(B)", "cdt3(B)", "pages", "dirs", "sites", "tables", "frame", "ratio")
	for _, w := range workloads.All() {
		tr, rowBytes, err := loadTraceInput(w.Name)
		if err != nil {
			return err
		}
		var buf bytes.Buffer
		var st trace.CDT3Stats
		if _, err := trace.WriteCDT3Stats(&buf, tr, chunk, &st); err != nil {
			return err
		}
		fmt.Printf("%-8s %9d %9d %9d %8d %8d %8d %8d %6.2fx\n",
			tr.Name, len(rowBytes), st.TotalBytes, st.PageBytes, st.DirBytes, st.SiteBytes,
			st.HeaderBytes+st.TableBytes, st.FrameBytes, float64(len(rowBytes))/float64(st.TotalBytes))
	}
	return nil
}

func printCDT3Stats(name string, st *trace.CDT3Stats, rowLen int64) {
	fmt.Printf("%s: CDT3 %d bytes in %d chunks (%d events, %d refs)\n",
		name, st.TotalBytes, st.Chunks, st.Events, st.Refs)
	fmt.Printf("  header  %9d B\n", st.HeaderBytes)
	fmt.Printf("  tables  %9d B\n", st.TableBytes)
	fmt.Printf("  pages   %9d B  (delta+varint column)\n", st.PageBytes)
	fmt.Printf("  dirs    %9d B  (directive side-band)\n", st.DirBytes)
	fmt.Printf("  sites   %9d B  (RLE site runs)\n", st.SiteBytes)
	fmt.Printf("  framing %9d B\n", st.FrameBytes)
	if rowLen > 0 {
		fmt.Printf("  row encoding %d B -> %.2fx compression\n", rowLen, float64(rowLen)/float64(st.TotalBytes))
	}
}
