package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cdmm/internal/engine"
	"cdmm/internal/experiments"
)

func TestRenderTimingLine(t *testing.T) {
	want := "sweep timing: curve 100ms vs per-cell 1s (10.0x)"
	if got := renderTimingLine(false, 100*time.Millisecond, time.Second); got != want {
		t.Errorf("curve mode: %q, want %q", got, want)
	}
	// In cell mode the rendered leg is the per-cell one; the line reads
	// the same either way round.
	if got := renderTimingLine(true, time.Second, 100*time.Millisecond); got != want {
		t.Errorf("cell mode: %q, want %q", got, want)
	}
	if got := renderTimingLine(false, 0, time.Second); !strings.Contains(got, "(0.0x)") {
		t.Errorf("zero curve duration: %q, want 0.0x guard", got)
	}
}

// TestTable2CurveCellByteIdentical renders Table 2 — the table whose LRU
// and WS columns the sweep plane computes in one traversal each — in
// curve mode and in per-cell mode, sequentially and in parallel, and
// requires all four renderings to be byte-identical: the one-pass
// curves must be indistinguishable from per-cell simulation at the
// output layer, at any -j.
func TestTable2CurveCellByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("cell mode replays every curve point; skipped under -short")
	}
	render := func(cell bool, j int) string {
		var buf bytes.Buffer
		if err := runTablesTo(&buf, "table2", engine.New(j).WithCellMode(cell)); err != nil {
			t.Fatalf("cell=%v -j %d: %v", cell, j, err)
		}
		return buf.String()
	}
	curve := render(false, 1)
	if curve == "" {
		t.Fatal("empty table2 rendering")
	}
	for _, c := range []struct {
		cell bool
		j    int
	}{{false, 8}, {true, 1}, {true, 8}} {
		if got := render(c.cell, c.j); got != curve {
			t.Errorf("cell=%v -j %d rendering differs from curve -j 1:\n%s\nvs\n%s", c.cell, c.j, got, curve)
		}
	}
}

// TestDetuneCurveCellByteIdentical: the detune study's lockstep one-pass
// factor grid must render identically to one replay per factor.
func TestDetuneCurveCellByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("cell mode replays every factor; skipped under -short")
	}
	render := func(cell bool) string {
		rows, err := experiments.DetuneStudy(engine.New(2).WithCellMode(cell), nil, nil)
		if err != nil {
			t.Fatalf("cell=%v: %v", cell, err)
		}
		return experiments.RenderDetune(rows)
	}
	curve, cellR := render(false), render(true)
	if curve == "" || curve != cellR {
		t.Errorf("detune renderings differ:\n%s\nvs\n%s", curve, cellR)
	}
}

func TestCmdTablesTimingFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("-timing recomputes the tables in cell mode; skipped under -short")
	}
	if err := cmdTables("table2", []string{"-timing"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdSweepCurveModes(t *testing.T) {
	for _, args := range [][]string{
		{"HWSCRT", "-policy", "lru", "-grid", "1,2,4,8"},
		{"HWSCRT", "-policy", "ws", "-grid", "1,10,100", "-json"},
		{"HWSCRT", "-policy", "fifo", "-grid", "2,4"},
		{"HWSCRT", "-policy", "cd", "-level", "2", "-grid", "0.5,1.0,2.0"},
	} {
		if err := cmdSweep(args); err != nil {
			t.Errorf("sweep %v: %v", args, err)
		}
	}
	if err := cmdSweep([]string{"HWSCRT", "-policy", "bogus"}); err == nil {
		t.Error("expected unknown-policy error")
	}
}

func TestCmdSweepStreamedTrace(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "t.cdt3")
	if err := cmdTrace([]string{"HWSCRT", "-o", out}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSweep([]string{out, "-policy", "lru", "-grid", "1,4,16"}); err != nil {
		t.Errorf("lru curve on streamed trace: %v", err)
	}
	if err := cmdSweep([]string{out, "-policy", "ws"}); err != nil {
		t.Errorf("ws curve on streamed trace: %v", err)
	}
	// CD needs the program's selector; a bare trace file cannot supply it.
	if err := cmdSweep([]string{out, "-policy", "cd"}); err == nil {
		t.Error("expected error for cd curve on a trace file")
	}
}
