package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"

	"cdmm/internal/serve"
)

// captureStdout runs fn with os.Stdout redirected into a buffer and
// returns everything the command printed. Command output is the
// determinism contract under test: a run with a telemetry server
// attached must print exactly what a serverless run prints.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	var buf bytes.Buffer
	done := make(chan struct{})
	go func() {
		io.Copy(&buf, r)
		close(done)
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	<-done
	if ferr != nil {
		t.Fatal(ferr)
	}
	return buf.String()
}

// httpGetBody fetches a URL and returns the body.
func httpGetBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s read: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d, body %s", url, resp.StatusCode, b)
	}
	return string(b)
}

// TestServeOutputByteIdenticalToServerless is the acceptance check that
// attaching the telemetry daemon changes nothing about results: the
// nested command's stdout under `cdmm serve -- ...` (at a different -j)
// is byte-identical to a plain serverless run.
func TestServeOutputByteIdenticalToServerless(t *testing.T) {
	plain := captureStdout(t, func() error {
		return runCommand("table1", []string{"-j", "1"})
	})
	served := captureStdout(t, func() error {
		return runCommand("serve", []string{"-addr", "127.0.0.1:0", "--", "table1", "-j", "8"})
	})
	if plain != served {
		t.Errorf("served table1 output differs from serverless run:\n--- serverless ---\n%s\n--- served ---\n%s", plain, served)
	}
	if !strings.Contains(plain, "MAIN") {
		t.Fatalf("table1 output looks empty:\n%s", plain)
	}
}

// TestServeEndpointsAfterNestedRun runs a nested table1 under the serve
// command and, via serveTestHook (which fires after the nested command
// but before shutdown), checks that the live endpoints saw the run.
func TestServeEndpointsAfterNestedRun(t *testing.T) {
	var hookRan bool
	serveTestHook = func(srv *serve.Server) {
		hookRan = true
		base := srv.URL()

		health := httpGetBody(t, base+"/healthz")
		if !strings.Contains(health, `"status": "ok"`) {
			t.Errorf("healthz missing ok status: %s", health)
		}

		var snap struct {
			Idle   bool           `json:"idle"`
			Counts map[string]int `json:"counts"`
			Plans  []struct {
				Label    string `json:"label"`
				Finished bool   `json:"finished"`
			} `json:"plans"`
			Runs []struct {
				ID     int    `json:"id"`
				State  string `json:"state"`
				Label  string `json:"label"`
				Policy string `json:"policy"`
				Faults int    `json:"pf"`
			} `json:"runs"`
		}
		if err := json.Unmarshal([]byte(httpGetBody(t, base+"/progress")), &snap); err != nil {
			t.Fatalf("progress decode: %v", err)
		}
		if !snap.Idle {
			t.Error("progress not idle after nested command finished")
		}
		var sawTable1 bool
		for _, p := range snap.Plans {
			if p.Label == "table1" {
				sawTable1 = true
				if !p.Finished {
					t.Error("table1 plan not marked finished")
				}
			}
		}
		if !sawTable1 {
			t.Errorf("no table1 plan in progress snapshot: %+v", snap.Plans)
		}
		if len(snap.Runs) == 0 {
			t.Fatal("no runs tracked")
		}
		var sawLabeled bool
		for _, r := range snap.Runs {
			if r.State != "done" {
				t.Errorf("run %d state = %q, want done", r.ID, r.State)
			}
			if r.Label == "MAIN/MAIN" && r.Policy == "CD" && r.Faults > 0 {
				sawLabeled = true
			}
		}
		if !sawLabeled {
			t.Error("no run described as MAIN/MAIN CD with a fault count")
		}
		if snap.Counts["done"] != len(snap.Runs) {
			t.Errorf("counts = %v, want all %d done", snap.Counts, len(snap.Runs))
		}

		run0 := httpGetBody(t, base+"/runs/0")
		if !strings.Contains(run0, `"state": "done"`) {
			t.Errorf("runs/0 not done: %s", run0)
		}

		metrics := httpGetBody(t, base+"/metrics")
		if !strings.Contains(metrics, "cdmm_serve_runs{state=\"done\"}") {
			t.Errorf("metrics missing run-state gauge:\n%s", metrics)
		}
	}
	defer func() { serveTestHook = nil }()

	out := captureStdout(t, func() error {
		return runCommand("serve", []string{"-addr", "127.0.0.1:0", "--", "table1", "-j", "4"})
	})
	if !hookRan {
		t.Fatal("serveTestHook did not run")
	}
	if !strings.Contains(out, "MAIN") {
		t.Fatalf("nested table1 printed nothing:\n%s", out)
	}
}
