package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cdmm/internal/engine"
	"cdmm/internal/serve"
	"cdmm/internal/vmsim"
)

// serveProgress and serveLogger, when non-nil, are picked up by every
// engine newEngine builds, so a telemetry server started by `cdmm
// serve` (or the -serve flag) tracks the plans of whatever command runs
// under it. They are process-wide because commands construct engines at
// several layers; only the serve paths write them.
var (
	serveProgress *engine.Progress
	serveLogger   *slog.Logger
)

// serveTestHook, when non-nil, replaces the wait-for-SIGINT loop of a
// bare `cdmm serve` and runs after a nested command completes; tests
// use it to talk to the live server.
var serveTestHook func(*serve.Server)

// newServeLogger builds the structured logger the serve paths share.
func newServeLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelInfo}))
}

// cmdServe starts the live telemetry daemon. With a nested command
// after `--` it runs that command with telemetry attached and keeps
// serving for -linger afterwards; without one it serves until SIGINT.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8377", "telemetry listen address (host:port; port 0 picks one)")
	withPprof := fs.Bool("pprof", false, "expose /debug/pprof/ handlers")
	linger := fs.Duration("linger", 0, "keep serving this long after the nested command finishes")
	sseBuffer := fs.Int("sse-buffer", 256, "per-subscriber SSE frame buffer (slow clients drop the newest frames)")
	j := registerJFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	nested := fs.Args() // everything after --

	logger := newServeLogger()
	srv := serve.New(serve.Options{Log: logger, Pprof: *withPprof, EventBuffer: *sseBuffer})
	if err := srv.Start(*addr); err != nil {
		return err
	}
	serveProgress = srv.Progress()
	serveLogger = logger
	vmsim.DefaultObserver = srv.Observer()
	defer func() {
		vmsim.DefaultObserver = nil
		serveProgress = nil
		serveLogger = nil
	}()
	newEngine(*j)

	var cmdErr error
	if len(nested) > 0 {
		if nested[0] == "serve" {
			cmdErr = fmt.Errorf("serve cannot nest another serve")
		} else {
			cmdErr = runCommand(nested[0], nested[1:])
		}
		if *linger > 0 {
			logger.Info("nested command finished, lingering", "linger", *linger, "url", srv.URL())
			time.Sleep(*linger)
		}
		if serveTestHook != nil {
			serveTestHook(srv)
		}
	} else if serveTestHook != nil {
		serveTestHook(srv)
	} else {
		fmt.Fprintf(os.Stderr, "cdmm serve: listening on %s (Ctrl-C to stop)\n", srv.URL())
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		signal.Stop(sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); cmdErr == nil {
		cmdErr = err
	}
	return cmdErr
}
