package main

import (
	"flag"
	"fmt"

	"cdmm/internal/core"
	"cdmm/internal/report"
)

// cmdProfile runs the policy sweep and renders side-by-side fault-timeline
// and residency sparklines for CD versus the tuned LRU and WS baselines —
// the time-resolved view of where the faults and the memory go.
func cmdProfile(args []string) error {
	return withProgram(args, func(p *core.Program, rest []string) error {
		fs := flag.NewFlagSet("profile", flag.ContinueOnError)
		buckets := fs.Int("buckets", 64, "virtual-time buckets per timeline strip")
		j := registerJFlag(fs)
		of := registerObsFlags(fs)
		if err := fs.Parse(rest); err != nil {
			return err
		}
		return of.withObs(func() error {
			eng := newEngine(*j) // after activate: a -serve tracker attaches here
			fmt.Println(p.Summary())
			out, err := report.TimelineReport(eng, p, *buckets)
			if err != nil {
				return err
			}
			fmt.Print(out)
			return nil
		})
	})
}
