package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"cdmm/internal/chaos"
	"cdmm/internal/experiments"
)

// cmdChaos runs the fault-injection matrix: program × fault class ×
// intensity, each cell a checked simulation of CD with directive
// validation enabled over a seeded perturbation of the trace (or of the
// machine under it).
func cmdChaos(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "base seed for the fault injectors")
	quick := fs.Bool("quick", false, "smoke mode: two programs, one intensity")
	progs := fs.String("progs", "", "comma-separated program[/set] list (default: the study's four)")
	intensities := fs.String("intensity", "", "comma-separated fault intensities in [0,1] (default 0.1,0.4)")
	faults := fs.String("faults", "", "comma-separated fault names (default: all; see -list)")
	list := fs.Bool("list", false, "list the registered fault injectors and exit")
	j := registerJFlag(fs)
	of := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, f := range chaos.Faults() {
			fmt.Printf("%-20s %-10s %s\n", f.Name, f.Class, f.Desc)
		}
		return nil
	}

	cfg := experiments.ChaosConfig{Seed: *seed}
	if *quick {
		cfg.Variants = []experiments.Variant{{Program: "MAIN", Set: "MAIN"}, {Program: "TQL", Set: "TQL1"}}
		cfg.Intensities = []float64{0.4}
	}
	if *progs != "" {
		cfg.Variants = nil
		for _, p := range strings.Split(*progs, ",") {
			prog, set, _ := strings.Cut(strings.TrimSpace(p), "/")
			if set == "" {
				set = prog
			}
			cfg.Variants = append(cfg.Variants, experiments.Variant{Program: prog, Set: set})
		}
	}
	if *intensities != "" {
		cfg.Intensities = nil
		for _, s := range strings.Split(*intensities, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil || v < 0 || v > 1 {
				return fmt.Errorf("chaos: bad intensity %q (want a number in [0,1])", s)
			}
			cfg.Intensities = append(cfg.Intensities, v)
		}
	}
	if *faults != "" {
		cfg.Faults = nil
		for _, name := range strings.Split(*faults, ",") {
			name = strings.TrimSpace(name)
			if _, err := chaos.Get(name); err != nil {
				return err
			}
			cfg.Faults = append(cfg.Faults, name)
		}
	}

	finish, err := of.activate()
	if err != nil {
		return err
	}
	eng := newEngine(*j)
	rows, err := experiments.ChaosMatrix(eng, cfg)
	if err != nil {
		finish()
		return err
	}
	fmt.Print(experiments.RenderChaos(rows))

	broken := 0
	for _, r := range rows {
		if r.Err != "" {
			broken++
		}
	}
	if err := finish(); err != nil {
		return err
	}
	if broken > 0 {
		return fmt.Errorf("chaos: %d of %d cells broke the simulator (see STATUS column)", broken, len(rows))
	}
	return nil
}
