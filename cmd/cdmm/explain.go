package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cdmm/internal/attr"
	"cdmm/internal/core"
	"cdmm/internal/explain"
	"cdmm/internal/policy"
)

// cmdExplain attributes every page fault of a program to its source
// loop, statement and directive: the ranked hotspot table, directive
// coverage, and per-site CD-vs-LRU/WS deltas, with optional Perfetto
// (Chrome trace-event) and flamegraph (folded stacks) exports.
func cmdExplain(args []string) error {
	return withProgram(args, func(p *core.Program, rest []string) error {
		fs := flag.NewFlagSet("explain", flag.ContinueOnError)
		level := fs.Int("level", 1, "CD directive-set stratum")
		top := fs.Int("top", 12, "rows in the hotspot table")
		chrome := fs.String("chrome", "", "write a Chrome trace-event JSON (Perfetto) fault timeline to this file")
		folded := fs.String("folded", "", "write folded flamegraph stacks (site;...;expr faults) to this file")
		j := registerJFlag(fs)
		of := registerObsFlags(fs)
		if err := fs.Parse(rest); err != nil {
			return err
		}
		tr, err := p.Trace()
		if err != nil {
			return err
		}
		return of.withObs(func() error {
			newEngine(*j) // after activate: a -serve tracker attaches here
			rep, err := explain.Analyze(tr, explain.Options{Selector: policy.SelectLevel(*level)})
			if err != nil {
				return err
			}
			fmt.Print(explain.Render(rep, *top))
			if store := of.explainStore(); store != nil {
				store.Put(p.Name+"/CD", rep.CD)
				store.Put(p.Name+"/LRU", rep.LRU)
				store.Put(p.Name+"/WS", rep.WS)
			}
			if *chrome != "" {
				if err := writeExport(*chrome, rep.CD, attr.WriteChromeTrace); err != nil {
					return err
				}
				fmt.Printf("wrote Chrome trace-event timeline to %s\n", *chrome)
			}
			if *folded != "" {
				if err := writeExport(*folded, rep.CD, attr.WriteFolded); err != nil {
					return err
				}
				fmt.Printf("wrote folded flamegraph stacks to %s\n", *folded)
			}
			return nil
		})
	})
}

// writeExport streams one ledger exporter into a freshly created file.
func writeExport(path string, led *attr.Ledger, write func(w io.Writer, l *attr.Ledger) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f, led)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
