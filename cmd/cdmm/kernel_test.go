package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCmdKernelTelemetryFlags(t *testing.T) {
	if err := cmdKernel([]string{"-tenants", "48", "-quick", "-top", "3", "-slo"}); err != nil {
		t.Fatalf("kernel -top -slo: %v", err)
	}
}

// TestCmdKernelTripWritesIncidents drives the incident path through the
// CLI: the trip fault must fail the run (it injects violations by
// design) and leave one deterministic JSONL dump per shard.
func TestCmdKernelTripWritesIncidents(t *testing.T) {
	dir := t.TempDir()
	err := cmdKernel([]string{"-tenants", "48", "-quick", "-shards", "2", "-chaos", "trip", "-incident-dir", dir})
	if err == nil || !strings.Contains(err.Error(), "invariant violations") {
		t.Fatalf("trip chaos returned %v, want an invariant-violation failure", err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "incident-*.jsonl"))
	if err != nil || len(names) != 2 {
		t.Fatalf("incident dumps = %v (err %v), want one per shard", names, err)
	}
	for _, name := range names {
		f, err := os.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		lines := 0
		for sc.Scan() {
			var v map[string]any
			if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
				t.Errorf("%s line %d not JSON: %v", name, lines+1, err)
			}
			lines++
		}
		f.Close()
		if lines < 2 {
			t.Errorf("%s has %d lines, want header + events", name, lines)
		}
	}
}

func TestCmdKernelRejectsUnknownChaos(t *testing.T) {
	if err := cmdKernel([]string{"-tenants", "8", "-quick", "-chaos", "sparks"}); err == nil {
		t.Fatal("unknown chaos fault accepted")
	}
}
