package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadProgramWorkload(t *testing.T) {
	p, err := loadProgram("MAIN")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "MAIN" {
		t.Errorf("name = %q", p.Name)
	}
}

func TestLoadProgramFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "toy.f")
	src := "PROGRAM TOY\nDIMENSION V(64)\nDO I = 1, 64\nV(I) = 1.0\nEND DO\nEND\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := loadProgram(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "TOY" {
		t.Errorf("name = %q, want TOY", p.Name)
	}
	if p.V() != 1 {
		t.Errorf("V = %d, want 1", p.V())
	}
}

func TestLoadProgramMissing(t *testing.T) {
	if _, err := loadProgram("definitely-not-a-thing"); err == nil {
		t.Error("expected error")
	}
}

func TestWithProgramRequiresArg(t *testing.T) {
	err := withProgram(nil, nil)
	if err == nil {
		t.Error("expected missing-argument error")
	}
}

func TestCmdSimPolicies(t *testing.T) {
	for _, pol := range []string{"cd", "lru", "fifo", "ws", "opt"} {
		if err := cmdSim([]string{"HWSCRT", "-policy", pol, "-m", "16", "-tau", "300", "-level", "2"}); err != nil {
			t.Errorf("sim %s: %v", pol, err)
		}
	}
	if err := cmdSim([]string{"HWSCRT", "-policy", "bogus"}); err == nil {
		t.Error("expected unknown-policy error")
	}
}

func TestCmdTraceAndReplay(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "t.trc")
	if err := cmdTrace([]string{"HWSCRT", "-o", out}); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file missing or empty: %v", err)
	}
	if err := cmdReplay([]string{out, "-policy", "cd", "-level", "2"}); err != nil {
		t.Errorf("replay: %v", err)
	}
	if err := cmdReplay([]string{out, "-policy", "ws", "-tau", "200"}); err != nil {
		t.Errorf("replay ws: %v", err)
	}
	if err := cmdReplay([]string{filepath.Join(dir, "missing.trc")}); err == nil {
		t.Error("expected error for missing trace file")
	}
}

func TestCmdList(t *testing.T) {
	if err := cmdList(); err != nil {
		t.Fatal(err)
	}
}

func TestCmdSweepRuns(t *testing.T) {
	if err := cmdSweep([]string{"HWSCRT"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdExplain(t *testing.T) {
	dir := t.TempDir()
	chrome := filepath.Join(dir, "tl.json")
	folded := filepath.Join(dir, "fl.txt")
	if err := cmdExplain([]string{"HWSCRT", "-top", "4", "-chrome", chrome, "-folded", folded}); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{chrome, folded} {
		if fi, err := os.Stat(f); err != nil || fi.Size() == 0 {
			t.Errorf("export %s missing or empty: %v", f, err)
		}
	}
	if err := cmdExplain(nil); err == nil {
		t.Error("expected missing-argument error")
	}
}
