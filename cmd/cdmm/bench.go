package main

import (
	"flag"
	"fmt"

	"cdmm/internal/perf"
)

// cmdBench measures the simulation hot path and emits/compares
// machine-readable baselines (the CI perf-smoke job runs
// `cdmm bench -quick -compare BENCH_baseline.json`).
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "short measurement windows (CI smoke mode)")
	out := fs.String("o", "", "write the measured baseline JSON to this file")
	compare := fs.String("compare", "", "compare against a baseline JSON file")
	threshold := fs.Float64("threshold", 0.25, "ns/ref regression fraction that fails the comparison")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cur, err := perf.Collect(*quick)
	if err != nil {
		return err
	}
	for _, c := range cur.Cases {
		fmt.Printf("%-14s %-8s refs=%-7d %8.2f ns/ref  %.3f allocs/ref  PF=%d\n",
			c.Name, c.Workload, c.Refs, c.NsPerRef, c.AllocsPerRef, c.Faults)
	}
	fmt.Printf("serve overhead (no client attached): %+.2f%%\n", 100*cur.ServeOverhead)
	fmt.Printf("kernel telemetry overhead (unwatched): %+.2f%%\n", 100*cur.TelemetryOverhead)
	if *out != "" {
		if err := perf.Save(*out, cur); err != nil {
			return err
		}
		fmt.Printf("baseline written to %s\n", *out)
	}
	if *compare != "" {
		base, err := perf.Load(*compare)
		if err != nil {
			return err
		}
		report, regressions := perf.Compare(base, cur, *threshold)
		fmt.Print(report)
		if len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Println("REGRESSION:", r)
			}
			return fmt.Errorf("%d perf regression(s) vs %s", len(regressions), *compare)
		}
		fmt.Printf("no regressions vs %s (threshold +%.0f%%)\n", *compare, 100**threshold)
	}
	return nil
}
