module cdmm

go 1.22
