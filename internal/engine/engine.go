// Package engine is the concurrent run-plan executor sitting between the
// simulator core (vmsim, policy, workloads) and everything that drives
// whole experiment grids (experiments, report, the CLI). Callers declare
// a set of independent runs — Map over a slice of run descriptors — and
// the engine executes them on a bounded worker pool, memoizing shared
// prerequisites (compiled workloads, LRU/WS sweeps, CD policy runs) with
// singleflight semantics so each expensive artifact is computed exactly
// once per engine however many runs request it.
//
// Determinism is the engine's contract: results are gathered in
// declaration order, memo keys are composite (program, set, policy,
// parameters), and observability events are buffered per run and merged
// in declaration order — so tables, reports and JSONL event streams are
// byte-identical at any parallelism level, including Workers == 1, which
// degenerates to a plain sequential loop with no goroutines at all.
package engine

import (
	"context"
	"runtime"
	"sync"
	"time"

	"cdmm/internal/obs"
	"cdmm/internal/vmsim"
)

// Engine executes declared runs on a bounded worker pool and memoizes
// their shared prerequisites. The zero value is not usable; construct
// with New. An Engine is safe for concurrent use, but interleaving two
// simultaneous Map calls with an event tracer attached interleaves their
// merged streams in completion order; run plans one at a time when the
// byte layout of the JSONL output matters.
type Engine struct {
	workers int
	// obs, when non-nil, overrides vmsim.DefaultObserver as the base
	// observer for every run the engine executes.
	obs *obs.Observer

	memo memo

	// flushMu serializes merged event emission into the base tracer.
	flushMu sync.Mutex

	// ctx cancels in-flight plans (nil means context.Background()).
	ctx context.Context
	// retries and backoff bound the retry loop for transient run
	// failures (see Transient); zero retries disables it.
	retries int
	backoff time.Duration
}

// New returns an engine running at most workers simulations at once.
// workers <= 0 means GOMAXPROCS.
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{workers: workers, memo: memo{m: map[Key]*memoEntry{}}}
}

// WithObserver sets the engine's base observer (overriding
// vmsim.DefaultObserver) and returns the engine. Call before Map.
func (e *Engine) WithObserver(o *obs.Observer) *Engine {
	e.obs = o
	return e
}

// WithContext attaches a cancellation context to the engine: once ctx is
// done, runs not yet started fail immediately with ctx.Err() and run
// bodies can observe the cancellation through RunCtx.Ctx. Call before
// Map.
func (e *Engine) WithContext(ctx context.Context) *Engine {
	e.ctx = ctx
	return e
}

// WithRetry makes Map retry a run that fails with a Transient error up
// to retries additional attempts, sleeping backoff, 2×backoff, 4×backoff…
// between attempts (exponential backoff; backoff 0 retries immediately).
// Each attempt runs with a fresh RunCtx, so a failed attempt leaves no
// events or memo-request records behind. Non-transient errors are never
// retried. Call before Map.
func (e *Engine) WithRetry(retries int, backoff time.Duration) *Engine {
	if retries < 0 {
		retries = 0
	}
	e.retries = retries
	e.backoff = backoff
	return e
}

// context returns the engine's cancellation context.
func (e *Engine) context() context.Context {
	if e.ctx != nil {
		return e.ctx
	}
	return context.Background()
}

// Workers returns the worker-pool bound.
func (e *Engine) Workers() int { return e.workers }

var (
	defaultMu  sync.Mutex
	defaultEng *Engine
)

// Default returns the process-wide engine, creating it with GOMAXPROCS
// workers on first use. Package-level conveniences (experiments.CDRun,
// the tables with a nil engine) run through it, sharing one memo store —
// the moral successor of the old global bundle cache, minus the global
// mutex serialization.
func Default() *Engine {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultEng == nil {
		defaultEng = New(0)
	}
	return defaultEng
}

// SetDefault installs e as the process-wide engine (nil resets to a
// fresh GOMAXPROCS engine on next use). The CLI calls this after parsing
// -j so nested helpers pick up the requested parallelism.
func SetDefault(e *Engine) {
	defaultMu.Lock()
	defaultEng = e
	defaultMu.Unlock()
}

// Or returns e, or the default engine when e is nil.
func Or(e *Engine) *Engine {
	if e == nil {
		return Default()
	}
	return e
}

// RunCtx is handed to every run a Map executes. It carries the run's
// observer (nil when the engine observes nothing) and records which memo
// keys the run requested, so the engine can merge memoized runs' event
// buffers deterministically.
type RunCtx struct {
	// Index is the run's position in the declared plan.
	Index int
	// Obs is the run's private observer: a per-run event buffer plus the
	// shared (atomic) metrics registry. Pass it to vmsim.RunObserved and
	// friends; never write to a shared sink directly from inside a run.
	Obs *obs.Observer
	// Ctx is the engine's cancellation context (never nil inside a Map
	// run). Long run bodies should poll it between expensive steps.
	Ctx context.Context

	eng  *Engine
	buf  *obs.Collector
	keys []Key
}

// baseObserver resolves the observer the engine ultimately feeds:
// the explicit engine observer, else the process-wide default.
func (e *Engine) baseObserver() *obs.Observer {
	if e.obs != nil {
		return e.obs
	}
	return vmsim.DefaultObserver
}

// newRunCtx builds the per-run context. When the base observer has a
// tracer, the run gets a private buffer so parallel runs never contend
// on (or nondeterministically interleave into) the shared sink.
func (e *Engine) newRunCtx(index int, base *obs.Observer) *RunCtx {
	rc := &RunCtx{Index: index, Ctx: e.context(), eng: e}
	if !base.Enabled() {
		return rc
	}
	o := &obs.Observer{Metrics: base.Metrics}
	if base.Tracer != nil {
		rc.buf = &obs.Collector{}
		o.Tracer = rc.buf
	}
	rc.Obs = o
	return rc
}

// Map executes fn over every item on the engine's worker pool and
// returns the results in declaration order. Every item is attempted —
// an error in one run never skips another, so the failure set is a
// function of the plan alone — and all failures are aggregated into a
// *PlanError ordered by declaration index: the identical error value at
// any parallelism level. Transient failures are retried per WithRetry
// before being recorded; a done engine context fails not-yet-started
// runs with ctx.Err(). With Workers() == 1 the plan runs inline, in
// order, with no goroutines — the overhead-guard path.
func Map[T, R any](e *Engine, items []T, fn func(*RunCtx, T) (R, error)) ([]R, error) {
	e = Or(e)
	base := e.baseObserver()
	n := len(items)
	results := make([]R, n)
	errs := make([]error, n)
	ctxs := make([]*RunCtx, n)

	if e.workers <= 1 || n <= 1 {
		for i, item := range items {
			results[i], ctxs[i], errs[i] = runOne(e, base, i, item, fn)
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, e.workers)
		for i := range items {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer func() {
					<-sem
					wg.Done()
				}()
				results[i], ctxs[i], errs[i] = runOne(e, base, i, items[i], fn)
			}(i)
		}
		wg.Wait()
	}
	e.mergeEvents(base, ctxs)

	var failed []*RunError
	for i, err := range errs {
		if err != nil {
			failed = append(failed, &RunError{Index: i, Err: err})
		}
	}
	if len(failed) > 0 {
		return nil, &PlanError{Runs: failed}
	}
	return results, nil
}

// runOne executes one run, retrying transient failures with exponential
// backoff up to the engine's retry budget. Every attempt gets a fresh
// RunCtx so a failed attempt's buffered events and memo-request records
// are discarded; the returned RunCtx is the final attempt's.
func runOne[T, R any](e *Engine, base *obs.Observer, i int, item T, fn func(*RunCtx, T) (R, error)) (R, *RunCtx, error) {
	ctx := e.context()
	for attempt := 0; ; attempt++ {
		rc := e.newRunCtx(i, base)
		if err := ctx.Err(); err != nil {
			var zero R
			return zero, rc, err
		}
		res, err := fn(rc, item)
		if err == nil || attempt >= e.retries || !IsTransient(err) {
			return res, rc, err
		}
		if e.backoff > 0 {
			t := time.NewTimer(e.backoff << attempt)
			select {
			case <-ctx.Done():
				t.Stop()
			case <-t.C:
			}
		}
	}
}

// mergeEvents flushes buffered events into the base tracer in
// declaration order: for each run, first the buffers of the memoized
// computations it was the earliest-declared requester of (in request
// order — deterministic because run bodies are sequential), then the
// run's own events. At any parallelism this yields the same stream.
func (e *Engine) mergeEvents(base *obs.Observer, ctxs []*RunCtx) {
	if base == nil || base.Tracer == nil {
		return
	}
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	for _, rc := range ctxs {
		if rc == nil {
			continue
		}
		for _, k := range rc.keys {
			e.memo.flush(k, base.Tracer)
		}
		if rc.buf != nil {
			for _, ev := range rc.buf.Events {
				base.Tracer.Emit(ev)
			}
		}
	}
}
