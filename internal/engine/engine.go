// Package engine is the concurrent run-plan executor sitting between the
// simulator core (vmsim, policy, workloads) and everything that drives
// whole experiment grids (experiments, report, the CLI). Callers declare
// a set of independent runs — Map over a slice of run descriptors — and
// the engine executes them on a bounded worker pool, memoizing shared
// prerequisites (compiled workloads, LRU/WS sweeps, CD policy runs) with
// singleflight semantics so each expensive artifact is computed exactly
// once per engine however many runs request it.
//
// Determinism is the engine's contract: results are gathered in
// declaration order, memo keys are composite (program, set, policy,
// parameters), and observability events are buffered per run and merged
// in declaration order — so tables, reports and JSONL event streams are
// byte-identical at any parallelism level, including Workers == 1, which
// degenerates to a plain sequential loop with no goroutines at all.
package engine

import (
	"context"
	"log/slog"
	"runtime"
	"sync"
	"time"

	"cdmm/internal/obs"
	"cdmm/internal/vmsim"
)

// Engine executes declared runs on a bounded worker pool and memoizes
// their shared prerequisites. The zero value is not usable; construct
// with New. An Engine is safe for concurrent use; when an event tracer
// is attached, whole Map plans are additionally serialized (planMu) so
// two simultaneous plans can never interleave their merged streams or
// race over which plan a shared memoized computation's events flush
// into — the stream layout is a function of the plans alone. The cost
// is that a run body must not call Map on its own engine (it would
// self-deadlock); nest through Memo instead.
type Engine struct {
	workers int
	// obs, when non-nil, overrides vmsim.DefaultObserver as the base
	// observer for every run the engine executes.
	obs *obs.Observer

	memo memo

	// flushMu serializes merged event emission into the base tracer.
	flushMu sync.Mutex
	// planMu serializes entire Map plans while a tracer is attached,
	// keeping each plan's merged stream contiguous and memo flushes
	// deterministic (see the type comment).
	planMu sync.Mutex

	// progress, when non-nil, tracks plan and run lifecycle for live
	// status endpoints (/progress); it costs one lock-free callback per
	// progressChunk simulated events while runs are in flight.
	progress *Progress
	// log, when non-nil, receives structured lifecycle records (plan
	// start/end, retries, failures).
	log *slog.Logger

	// cellMode forces the per-cell replay path for sweep artifacts: every
	// curve point is an independent full-trace simulation instead of a
	// point on a one-pass curve. The differential oracle and the slow leg
	// of `cdmm table* -timing`.
	cellMode bool

	// ctx cancels in-flight plans (nil means context.Background()).
	ctx context.Context
	// retries and backoff bound the retry loop for transient run
	// failures (see Transient); zero retries disables it.
	retries int
	backoff time.Duration
}

// New returns an engine running at most workers simulations at once.
// workers <= 0 means GOMAXPROCS.
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{workers: workers, memo: memo{m: map[Key]*memoEntry{}}}
}

// WithObserver sets the engine's base observer (overriding
// vmsim.DefaultObserver) and returns the engine. Call before Map.
func (e *Engine) WithObserver(o *obs.Observer) *Engine {
	e.obs = o
	return e
}

// WithContext attaches a cancellation context to the engine: once ctx is
// done, runs not yet started fail immediately with ctx.Err() and run
// bodies can observe the cancellation through RunCtx.Ctx. Call before
// Map.
func (e *Engine) WithContext(ctx context.Context) *Engine {
	e.ctx = ctx
	return e
}

// WithProgress attaches a lifecycle tracker: every Map plan and run the
// engine executes is registered with p, including live in-run trace
// position via the simulator's chunked progress callbacks. One tracker
// may be shared by several engines. Call before Map.
func (e *Engine) WithProgress(p *Progress) *Engine {
	e.progress = p
	return e
}

// Progress returns the attached lifecycle tracker (nil when none).
func (e *Engine) Progress() *Progress { return e.progress }

// WithLogger attaches a structured logger for plan/run lifecycle
// records; nil (the default) logs nothing. Call before Map.
func (e *Engine) WithLogger(l *slog.Logger) *Engine {
	e.log = l
	return e
}

// WithRetry makes Map retry a run that fails with a Transient error up
// to retries additional attempts, sleeping backoff, 2×backoff, 4×backoff…
// between attempts (exponential backoff; backoff 0 retries immediately).
// Each attempt runs with a fresh RunCtx, so a failed attempt leaves no
// events or memo-request records behind. Non-transient errors are never
// retried. Call before Map.
func (e *Engine) WithRetry(retries int, backoff time.Duration) *Engine {
	if retries < 0 {
		retries = 0
	}
	e.retries = retries
	e.backoff = backoff
	return e
}

// WithCellMode selects how sweep artifacts (LRU curves, WS runs and
// minima, CD detune grids) are computed: false (the default) uses the
// one-pass curve engines in internal/sweep, true replays the trace per
// curve point through vmsim — the differential oracle. Memo keys carry
// the mode, so one engine can hold both modes' artifacts without
// collision (the -timing comparison does exactly that). Call before Map.
func (e *Engine) WithCellMode(cell bool) *Engine {
	e.cellMode = cell
	return e
}

// CellMode reports whether the engine replays per cell (see WithCellMode).
func (e *Engine) CellMode() bool { return e.cellMode }

// context returns the engine's cancellation context.
func (e *Engine) context() context.Context {
	if e.ctx != nil {
		return e.ctx
	}
	return context.Background()
}

// Workers returns the worker-pool bound.
func (e *Engine) Workers() int { return e.workers }

var (
	defaultMu  sync.Mutex
	defaultEng *Engine
)

// Default returns the process-wide engine, creating it with GOMAXPROCS
// workers on first use. Package-level conveniences (experiments.CDRun,
// the tables with a nil engine) run through it, sharing one memo store —
// the moral successor of the old global bundle cache, minus the global
// mutex serialization.
func Default() *Engine {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultEng == nil {
		defaultEng = New(0)
	}
	return defaultEng
}

// SetDefault installs e as the process-wide engine (nil resets to a
// fresh GOMAXPROCS engine on next use). The CLI calls this after parsing
// -j so nested helpers pick up the requested parallelism.
func SetDefault(e *Engine) {
	defaultMu.Lock()
	defaultEng = e
	defaultMu.Unlock()
}

// Or returns e, or the default engine when e is nil.
func Or(e *Engine) *Engine {
	if e == nil {
		return Default()
	}
	return e
}

// RunCtx is handed to every run a Map executes. It carries the run's
// observer (nil when the engine observes nothing) and records which memo
// keys the run requested, so the engine can merge memoized runs' event
// buffers deterministically.
type RunCtx struct {
	// Index is the run's position in the declared plan.
	Index int
	// Obs is the run's private observer: a per-run event buffer plus the
	// shared (atomic) metrics registry. Pass it to vmsim.RunObserved and
	// friends; never write to a shared sink directly from inside a run.
	Obs *obs.Observer
	// Ctx is the engine's cancellation context (never nil inside a Map
	// run). Long run bodies should poll it between expensive steps.
	Ctx context.Context

	eng *Engine
	buf *obs.Collector
	// progressID is the run's id in the engine's Progress tracker, -1
	// when untracked (no tracker attached, or a Memo computation ctx).
	progressID int
	keys       []Key
}

// Describe attaches a human-readable label and policy name to the run's
// entry in the engine's Progress tracker, so live status endpoints show
// "table1/CONDUCT CD" rather than a bare plan index. No-op when the
// engine tracks nothing.
func (rc *RunCtx) Describe(label, policyName string) {
	if rc == nil || rc.eng == nil || rc.eng.progress == nil || rc.progressID < 0 {
		return
	}
	rc.eng.progress.describe(rc.progressID, label, policyName)
}

// Report stores a simulation result on the run's Progress entry ahead of
// plan completion. Run bodies whose return type is not vmsim.Result
// (table cells, comparison rows) call this so drill-down endpoints still
// see PF/MEM/ST. No-op when the engine tracks nothing.
func (rc *RunCtx) Report(res vmsim.Result) {
	if rc == nil || rc.eng == nil || rc.eng.progress == nil || rc.progressID < 0 {
		return
	}
	rc.eng.progress.report(rc.progressID, res)
}

// baseObserver resolves the observer the engine ultimately feeds:
// the explicit engine observer, else the process-wide default.
func (e *Engine) baseObserver() *obs.Observer {
	if e.obs != nil {
		return e.obs
	}
	return vmsim.DefaultObserver
}

// newRunCtx builds the per-run context. When the base observer has a
// tracer, the run gets a private buffer so parallel runs never contend
// on (or nondeterministically interleave into) the shared sink. runID is
// the run's Progress id (-1 when untracked); a tracked run always
// carries a progress callback, even when the base observer is disabled —
// that combination is the gated fast path with live position updates.
func (e *Engine) newRunCtx(index int, base *obs.Observer, runID int) *RunCtx {
	rc := &RunCtx{Index: index, Ctx: e.context(), eng: e, progressID: -1}
	var prog obs.ProgressFunc
	if e.progress != nil && runID >= 0 {
		prog = e.progress.runProgressFn(runID)
		rc.progressID = runID
	}
	if !base.Enabled() {
		if prog != nil {
			rc.Obs = &obs.Observer{Progress: prog}
		}
		return rc
	}
	o := &obs.Observer{Metrics: base.Metrics, Progress: prog}
	if base.Tracer != nil {
		rc.buf = &obs.Collector{}
		o.Tracer = rc.buf
	}
	rc.Obs = o
	return rc
}

// Map executes fn over every item on the engine's worker pool and
// returns the results in declaration order. Every item is attempted —
// an error in one run never skips another, so the failure set is a
// function of the plan alone — and all failures are aggregated into a
// *PlanError ordered by declaration index: the identical error value at
// any parallelism level. Transient failures are retried per WithRetry
// before being recorded; a done engine context fails not-yet-started
// runs with ctx.Err(). With Workers() == 1 the plan runs inline, in
// order, with no goroutines — the overhead-guard path.
//
// Map is MapNamed with an auto-generated plan label.
func Map[T, R any](e *Engine, items []T, fn func(*RunCtx, T) (R, error)) ([]R, error) {
	return MapNamed(e, "", items, fn)
}

// MapNamed is Map with an explicit plan label for the engine's Progress
// tracker and logs ("table1", "chaos", ...). While an event tracer is
// attached the whole plan additionally holds the engine's plan lock, so
// simultaneous plans produce contiguous, deterministically ordered
// merged streams (and must not nest — see the Engine doc).
func MapNamed[T, R any](e *Engine, label string, items []T, fn func(*RunCtx, T) (R, error)) ([]R, error) {
	e = Or(e)
	base := e.baseObserver()
	if base != nil && base.Tracer != nil {
		e.planMu.Lock()
		defer e.planMu.Unlock()
	}
	n := len(items)

	baseRunID := -1
	if e.progress != nil {
		var planID int
		planID, baseRunID = e.progress.startPlan(label, n)
		defer e.progress.finishPlan(planID)
	}
	if e.log != nil {
		e.log.Info("plan start", "plan", label, "runs", n, "workers", e.workers)
		start := time.Now()
		defer func() {
			e.log.Info("plan done", "plan", label, "runs", n, "wall", time.Since(start))
		}()
	}
	runID := func(i int) int {
		if baseRunID < 0 {
			return -1
		}
		return baseRunID + i
	}

	results := make([]R, n)
	errs := make([]error, n)
	ctxs := make([]*RunCtx, n)

	if e.workers <= 1 || n <= 1 {
		for i, item := range items {
			results[i], ctxs[i], errs[i] = runOne(e, base, i, runID(i), item, fn)
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, e.workers)
		for i := range items {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer func() {
					<-sem
					wg.Done()
				}()
				results[i], ctxs[i], errs[i] = runOne(e, base, i, runID(i), items[i], fn)
			}(i)
		}
		wg.Wait()
	}
	e.mergeEvents(base, ctxs)

	var failed []*RunError
	for i, err := range errs {
		if err != nil {
			failed = append(failed, &RunError{Index: i, Err: err})
		}
	}
	if len(failed) > 0 {
		if e.log != nil {
			e.log.Error("plan failed", "plan", label, "failed", len(failed), "of", n)
		}
		return nil, &PlanError{Runs: failed}
	}
	return results, nil
}

// runOne executes one run, retrying transient failures with exponential
// backoff up to the engine's retry budget. Every attempt gets a fresh
// RunCtx so a failed attempt's buffered events and memo-request records
// are discarded; the returned RunCtx is the final attempt's. Lifecycle
// transitions (running/retrying/terminal) are mirrored into the
// engine's Progress tracker under runID when one is attached.
func runOne[T, R any](e *Engine, base *obs.Observer, i, runID int, item T, fn func(*RunCtx, T) (R, error)) (R, *RunCtx, error) {
	ctx := e.context()
	p := e.progress
	if runID < 0 {
		p = nil
	}
	for attempt := 0; ; attempt++ {
		rc := e.newRunCtx(i, base, runID)
		if err := ctx.Err(); err != nil {
			if p != nil {
				p.runFinish(runID, nil, err)
			}
			var zero R
			return zero, rc, err
		}
		if p != nil {
			p.runStart(runID)
		}
		res, err := fn(rc, item)
		if err == nil || attempt >= e.retries || !IsTransient(err) {
			if p != nil {
				p.runFinish(runID, any(res), err)
			}
			if err != nil && e.log != nil {
				e.log.Error("run failed", "run", i, "attempts", attempt+1, "err", err)
			}
			return res, rc, err
		}
		if p != nil {
			p.runRetrying(runID, err)
		}
		if e.log != nil {
			e.log.Warn("transient run failure, retrying",
				"run", i, "attempt", attempt+1, "retries", e.retries, "err", err)
		}
		if e.backoff > 0 {
			t := time.NewTimer(e.backoff << attempt)
			select {
			case <-ctx.Done():
				t.Stop()
			case <-t.C:
			}
		}
	}
}

// mergeEvents flushes buffered events into the base tracer in
// declaration order: for each run, first the buffers of the memoized
// computations it was the earliest-declared requester of (in request
// order — deterministic because run bodies are sequential), then the
// run's own events. At any parallelism this yields the same stream.
func (e *Engine) mergeEvents(base *obs.Observer, ctxs []*RunCtx) {
	if base == nil || base.Tracer == nil {
		return
	}
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	for _, rc := range ctxs {
		if rc == nil {
			continue
		}
		for _, k := range rc.keys {
			e.memo.flush(k, base.Tracer)
		}
		if rc.buf != nil {
			for _, ev := range rc.buf.Events {
				base.Tracer.Emit(ev)
			}
		}
	}
}
