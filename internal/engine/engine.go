// Package engine is the concurrent run-plan executor sitting between the
// simulator core (vmsim, policy, workloads) and everything that drives
// whole experiment grids (experiments, report, the CLI). Callers declare
// a set of independent runs — Map over a slice of run descriptors — and
// the engine executes them on a bounded worker pool, memoizing shared
// prerequisites (compiled workloads, LRU/WS sweeps, CD policy runs) with
// singleflight semantics so each expensive artifact is computed exactly
// once per engine however many runs request it.
//
// Determinism is the engine's contract: results are gathered in
// declaration order, memo keys are composite (program, set, policy,
// parameters), and observability events are buffered per run and merged
// in declaration order — so tables, reports and JSONL event streams are
// byte-identical at any parallelism level, including Workers == 1, which
// degenerates to a plain sequential loop with no goroutines at all.
package engine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"cdmm/internal/obs"
	"cdmm/internal/vmsim"
)

// Engine executes declared runs on a bounded worker pool and memoizes
// their shared prerequisites. The zero value is not usable; construct
// with New. An Engine is safe for concurrent use, but interleaving two
// simultaneous Map calls with an event tracer attached interleaves their
// merged streams in completion order; run plans one at a time when the
// byte layout of the JSONL output matters.
type Engine struct {
	workers int
	// obs, when non-nil, overrides vmsim.DefaultObserver as the base
	// observer for every run the engine executes.
	obs *obs.Observer

	memo memo

	// flushMu serializes merged event emission into the base tracer.
	flushMu sync.Mutex
}

// New returns an engine running at most workers simulations at once.
// workers <= 0 means GOMAXPROCS.
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{workers: workers, memo: memo{m: map[Key]*memoEntry{}}}
}

// WithObserver sets the engine's base observer (overriding
// vmsim.DefaultObserver) and returns the engine. Call before Map.
func (e *Engine) WithObserver(o *obs.Observer) *Engine {
	e.obs = o
	return e
}

// Workers returns the worker-pool bound.
func (e *Engine) Workers() int { return e.workers }

var (
	defaultMu  sync.Mutex
	defaultEng *Engine
)

// Default returns the process-wide engine, creating it with GOMAXPROCS
// workers on first use. Package-level conveniences (experiments.CDRun,
// the tables with a nil engine) run through it, sharing one memo store —
// the moral successor of the old global bundle cache, minus the global
// mutex serialization.
func Default() *Engine {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultEng == nil {
		defaultEng = New(0)
	}
	return defaultEng
}

// SetDefault installs e as the process-wide engine (nil resets to a
// fresh GOMAXPROCS engine on next use). The CLI calls this after parsing
// -j so nested helpers pick up the requested parallelism.
func SetDefault(e *Engine) {
	defaultMu.Lock()
	defaultEng = e
	defaultMu.Unlock()
}

// Or returns e, or the default engine when e is nil.
func Or(e *Engine) *Engine {
	if e == nil {
		return Default()
	}
	return e
}

// RunCtx is handed to every run a Map executes. It carries the run's
// observer (nil when the engine observes nothing) and records which memo
// keys the run requested, so the engine can merge memoized runs' event
// buffers deterministically.
type RunCtx struct {
	// Index is the run's position in the declared plan.
	Index int
	// Obs is the run's private observer: a per-run event buffer plus the
	// shared (atomic) metrics registry. Pass it to vmsim.RunObserved and
	// friends; never write to a shared sink directly from inside a run.
	Obs *obs.Observer

	eng  *Engine
	buf  *obs.Collector
	keys []Key
}

// baseObserver resolves the observer the engine ultimately feeds:
// the explicit engine observer, else the process-wide default.
func (e *Engine) baseObserver() *obs.Observer {
	if e.obs != nil {
		return e.obs
	}
	return vmsim.DefaultObserver
}

// newRunCtx builds the per-run context. When the base observer has a
// tracer, the run gets a private buffer so parallel runs never contend
// on (or nondeterministically interleave into) the shared sink.
func (e *Engine) newRunCtx(index int, base *obs.Observer) *RunCtx {
	rc := &RunCtx{Index: index, eng: e}
	if !base.Enabled() {
		return rc
	}
	o := &obs.Observer{Metrics: base.Metrics}
	if base.Tracer != nil {
		rc.buf = &obs.Collector{}
		o.Tracer = rc.buf
	}
	rc.Obs = o
	return rc
}

// Map executes fn over every item on the engine's worker pool and
// returns the results in declaration order. The first error (by
// declaration order) is returned; items declared after an observed
// error may be skipped. With Workers() == 1 the plan runs inline, in
// order, with no goroutines — the overhead-guard path.
func Map[T, R any](e *Engine, items []T, fn func(*RunCtx, T) (R, error)) ([]R, error) {
	e = Or(e)
	base := e.baseObserver()
	n := len(items)
	results := make([]R, n)
	errs := make([]error, n)
	ctxs := make([]*RunCtx, n)

	if e.workers <= 1 || n <= 1 {
		for i, item := range items {
			ctxs[i] = e.newRunCtx(i, base)
			results[i], errs[i] = fn(ctxs[i], item)
			if errs[i] != nil {
				e.mergeEvents(base, ctxs[:i+1])
				return nil, errs[i]
			}
		}
		e.mergeEvents(base, ctxs)
		return results, nil
	}

	var (
		wg     sync.WaitGroup
		sem    = make(chan struct{}, e.workers)
		failed atomic.Bool
	)
	for i := range items {
		if failed.Load() {
			break
		}
		ctxs[i] = e.newRunCtx(i, base)
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer func() {
				<-sem
				wg.Done()
			}()
			results[i], errs[i] = fn(ctxs[i], items[i])
			if errs[i] != nil {
				failed.Store(true)
			}
		}(i)
	}
	wg.Wait()
	e.mergeEvents(base, ctxs)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// mergeEvents flushes buffered events into the base tracer in
// declaration order: for each run, first the buffers of the memoized
// computations it was the earliest-declared requester of (in request
// order — deterministic because run bodies are sequential), then the
// run's own events. At any parallelism this yields the same stream.
func (e *Engine) mergeEvents(base *obs.Observer, ctxs []*RunCtx) {
	if base == nil || base.Tracer == nil {
		return
	}
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	for _, rc := range ctxs {
		if rc == nil {
			continue
		}
		for _, k := range rc.keys {
			e.memo.flush(k, base.Tracer)
		}
		if rc.buf != nil {
			for _, ev := range rc.buf.Events {
				base.Tracer.Emit(ev)
			}
		}
	}
}
