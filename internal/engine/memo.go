package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"cdmm/internal/explain"
	"cdmm/internal/obs"
	"cdmm/internal/policy"
	"cdmm/internal/sweep"
	"cdmm/internal/vmsim"
	"cdmm/internal/workloads"
)

// Key identifies one memoized computation. Keys are explicit composites —
// program, directive set, policy, and the full parameterization — so two
// runs that differ only in a selector or a tuning knob can never collide,
// unlike the old per-set-name bundle cache (which returned stale results
// when a different Set selector reused a name mid-process).
type Key struct {
	// Kind discriminates the artifact: "compile", "lru-sweep", "ws-sweep",
	// "cd-run", "ws-run", "ws-min", ...
	Kind string
	// Program is the workload name.
	Program string
	// Set is the directive-set name ("" for set-independent artifacts).
	Set string
	// Policy names the policy ("" for policy-independent artifacts).
	Policy string
	// Params serializes every remaining parameter of the computation.
	Params string
}

// memoEntry is one singleflight slot. done is closed when val, err,
// events and keys are final.
type memoEntry struct {
	done chan struct{}
	val  any
	err  error
	// events buffers what the computation emitted; flushed once into the
	// plan's merged stream at the earliest-declared requester's position.
	events []obs.Event
	// keys are the nested memo keys the computation itself requested,
	// replayed into every requester so key traces are identical whether a
	// requester computed or waited.
	keys    []Key
	flushed bool
}

type memo struct {
	mu sync.Mutex
	m  map[Key]*memoEntry
}

// flush emits the entry's buffered events once. Entries still computing
// (possible only for keys requested by a different, concurrent plan) are
// left for their own plan's merge.
func (m *memo) flush(k Key, t obs.Tracer) {
	m.mu.Lock()
	ent := m.m[k]
	m.mu.Unlock()
	if ent == nil {
		return
	}
	select {
	case <-ent.done:
	default:
		return
	}
	m.mu.Lock()
	if ent.flushed {
		m.mu.Unlock()
		return
	}
	ent.flushed = true
	m.mu.Unlock()
	for _, ev := range ent.events {
		t.Emit(ev)
	}
}

// Memo computes the value for k exactly once per engine: the first
// requester runs fn while every concurrent requester blocks until the
// result is ready (singleflight). fn receives a computation context for
// nested memo requests and a private observer whose events are buffered
// with the entry and merged into the plan's event stream at the position
// of the earliest-declared requester. rc may be nil for standalone
// (non-Map) use, in which case events are flushed to the base tracer
// immediately after computation.
func (e *Engine) Memo(rc *RunCtx, k Key, fn func(comp *RunCtx, o *obs.Observer) (any, error)) (any, error) {
	e.memo.mu.Lock()
	ent, ok := e.memo.m[k]
	if !ok {
		ent = &memoEntry{done: make(chan struct{})}
		e.memo.m[k] = ent
	}
	e.memo.mu.Unlock()

	if ok {
		<-ent.done
	} else {
		base := e.baseObserver()
		comp := &RunCtx{eng: e, progressID: -1}
		// The computing requester's live-position callback rides along so
		// a long memoized prerequisite still moves that run's /progress
		// entry (concurrent waiters just see the furthest position).
		var prog obs.ProgressFunc
		if rc != nil {
			prog = obs.ProgressOf(rc.Obs)
		}
		var o *obs.Observer
		if base.Enabled() {
			o = &obs.Observer{Metrics: base.Metrics, Progress: prog}
			if base.Tracer != nil {
				comp.buf = &obs.Collector{}
				o.Tracer = comp.buf
			}
			comp.Obs = o
		} else if prog != nil {
			o = &obs.Observer{Progress: prog}
			comp.Obs = o
		}
		ent.val, ent.err = fn(comp, o)
		if comp.buf != nil {
			ent.events = comp.buf.Events
		}
		ent.keys = comp.keys
		close(ent.done)
	}

	if rc != nil {
		// Record this key and the computation's nested keys so the merge
		// order is identical whether this requester computed or waited.
		rc.keys = append(rc.keys, k)
		rc.keys = append(rc.keys, ent.keys...)
	} else if base := e.baseObserver(); base != nil && base.Tracer != nil {
		e.flushMu.Lock()
		for _, nk := range ent.keys {
			e.memo.flush(nk, base.Tracer)
		}
		e.memo.flush(k, base.Tracer)
		e.flushMu.Unlock()
	}
	return ent.val, ent.err
}

// Forget drops the memoized value for k, if any. Tests use it to force
// recomputation; production plans never need it because keys are fully
// parameterized.
func (e *Engine) Forget(k Key) {
	e.memo.mu.Lock()
	delete(e.memo.m, k)
	e.memo.mu.Unlock()
}

// setParams serializes a directive set's full parameterization (not just
// its name) plus the CD minimum allocation: the composite-key fix for
// the stale-cache bug.
func setParams(set workloads.Set, minAlloc int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "level=%d,min=%d", set.Level, minAlloc)
	if len(set.Overrides) > 0 {
		keys := make([]string, 0, len(set.Overrides))
		for k := range set.Overrides {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, ",%s=%d", k, set.Overrides[k])
		}
	}
	return b.String()
}

// Compiled returns the program's compiled workload (AST, layout,
// directive plan, trace), computed once per engine.
func (e *Engine) Compiled(rc *RunCtx, program string) (*workloads.Compiled, error) {
	v, err := e.Memo(rc, Key{Kind: "compile", Program: program}, func(*RunCtx, *obs.Observer) (any, error) {
		p, err := workloads.Get(program)
		if err != nil {
			return nil, err
		}
		return workloads.Compile(p)
	})
	if err != nil {
		return nil, err
	}
	return v.(*workloads.Compiled), nil
}

// modeParams appends the engine's sweep mode to a memo-key Params
// string, so curve-mode and cell-mode artifacts coexist in one memo
// store (the -timing comparison computes both in one process).
func (e *Engine) modeParams(base string) string {
	if !e.cellMode {
		return base
	}
	if base == "" {
		return "mode=cell"
	}
	return base + ",mode=cell"
}

// LRUSweep returns the program's all-allocations LRU curve, computed
// once per engine: one Mattson stack-distance pass over the trace in
// curve mode, or V independent replays (one per allocation) in cell
// mode.
func (e *Engine) LRUSweep(rc *RunCtx, program string) (*sweep.LRUCurve, error) {
	k := Key{Kind: "lru-sweep", Program: program, Policy: "LRU", Params: e.modeParams("")}
	v, err := e.Memo(rc, k, func(comp *RunCtx, _ *obs.Observer) (any, error) {
		c, err := e.Compiled(comp, program)
		if err != nil {
			return nil, err
		}
		if e.cellMode {
			return sweep.FromLRUCells(vmsim.SweepLRU(c.Trace, c.V())), nil
		}
		return sweep.NewLRU(c.Trace)
	})
	if err != nil {
		return nil, err
	}
	return v.(*sweep.LRUCurve), nil
}

// WSSweep returns the program's working-set curve index (the backward
// and forward interval histograms: PF(τ) and MemSum(τ) for every τ from
// one pass), computed once per engine. The index is mode-independent —
// cell mode diverges at the full-replay artifacts (WSRun, WSMinST), not
// at the histograms, which predate the curve engines.
func (e *Engine) WSSweep(rc *RunCtx, program string) (*sweep.WS, error) {
	v, err := e.Memo(rc, Key{Kind: "ws-sweep", Program: program, Policy: "WS"}, func(comp *RunCtx, _ *obs.Observer) (any, error) {
		c, err := e.Compiled(comp, program)
		if err != nil {
			return nil, err
		}
		return sweep.NewWS(c.Trace)
	})
	if err != nil {
		return nil, err
	}
	return v.(*sweep.WS), nil
}

// CDRun runs (once per engine and full parameterization) the CD policy
// over the program's trace under the given directive set.
func (e *Engine) CDRun(rc *RunCtx, program string, set workloads.Set, minAlloc int) (vmsim.Result, error) {
	k := Key{Kind: "cd-run", Program: program, Set: set.Name, Policy: "CD", Params: setParams(set, minAlloc)}
	v, err := e.Memo(rc, k, func(comp *RunCtx, o *obs.Observer) (any, error) {
		c, err := e.Compiled(comp, program)
		if err != nil {
			return nil, err
		}
		cd := policy.NewCD(set.Selector(), minAlloc)
		return vmsim.RunObserved(c.Trace, cd, o), nil
	})
	if err != nil {
		return vmsim.Result{}, err
	}
	return v.(vmsim.Result), nil
}

// WSRun returns the WS(tau) result for the program, once per engine and
// window. With an enabled observer the full trace is replayed
// instrumented (per-reference events, exactly as before the curve
// plane); otherwise curve mode reads the point off the one-pass grid
// engine and cell mode replays the directive-stripped trace solo.
func (e *Engine) WSRun(rc *RunCtx, program string, tau int) (vmsim.Result, error) {
	k := Key{Kind: "ws-run", Program: program, Policy: "WS", Params: e.modeParams(fmt.Sprintf("tau=%d", tau))}
	v, err := e.Memo(rc, k, func(comp *RunCtx, o *obs.Observer) (any, error) {
		s, err := e.WSSweep(comp, program)
		if err != nil {
			return nil, err
		}
		if o.Enabled() {
			c, err := e.Compiled(comp, program)
			if err != nil {
				return nil, err
			}
			return vmsim.RunObserved(c.Trace, policy.NewWS(tau), o), nil
		}
		if e.cellMode {
			c, err := e.Compiled(comp, program)
			if err != nil {
				return nil, err
			}
			return vmsim.Run(c.Trace.RefsOnly(), policy.NewWS(tau)), nil
		}
		return s.Run(tau)
	})
	if err != nil {
		return vmsim.Result{}, err
	}
	return v.(vmsim.Result), nil
}

// wsMin pairs the minimizing window with its result.
type wsMin struct {
	tau int
	res vmsim.Result
}

// WSMinST returns the working-set window minimizing space-time cost and
// its full result, computed once per engine. In curve mode the whole τ
// ladder falls out of one grid-engine traversal; cell mode replays the
// trace at every ladder point (formerly the most expensive per-program
// artifact); an enabled observer keeps the historical instrumented
// search — histogram-pruned ladder replays — so event streams are
// unchanged.
func (e *Engine) WSMinST(rc *RunCtx, program string) (int, vmsim.Result, error) {
	k := Key{Kind: "ws-min", Program: program, Policy: "WS", Params: e.modeParams("")}
	v, err := e.Memo(rc, k, func(comp *RunCtx, o *obs.Observer) (any, error) {
		s, err := e.WSSweep(comp, program)
		if err != nil {
			return nil, err
		}
		if o.Enabled() {
			c, err := e.Compiled(comp, program)
			if err != nil {
				return nil, err
			}
			taus := vmsim.DefaultTaus(c.Trace.Refs)
			bestTau := taus[0]
			best := vmsim.RunObserved(c.Trace, policy.NewWS(bestTau), o)
			for _, tau := range taus[1:] {
				// Histogram lower bound: ST >= MemSum + FaultService·faults;
				// skip τ whose bound already exceeds the best (cheap pruning,
				// winner identical to the unpruned strict-< scan).
				lower := s.MemSum(tau) + float64(policy.FaultService)*float64(s.Faults(tau))
				if lower >= best.SpaceTime {
					continue
				}
				if r := vmsim.RunObserved(c.Trace, policy.NewWS(tau), o); r.SpaceTime < best.SpaceTime {
					bestTau, best = tau, r
				}
			}
			return wsMin{bestTau, best}, nil
		}
		if e.cellMode {
			c, err := e.Compiled(comp, program)
			if err != nil {
				return nil, err
			}
			refs := c.Trace.RefsOnly()
			taus := vmsim.DefaultTaus(c.Trace.Refs)
			bestTau := taus[0]
			best := vmsim.Run(refs, policy.NewWS(bestTau))
			for _, tau := range taus[1:] {
				if r := vmsim.Run(refs, policy.NewWS(tau)); r.SpaceTime < best.SpaceTime {
					bestTau, best = tau, r
				}
			}
			return wsMin{bestTau, best}, nil
		}
		tau, res, err := s.MinST()
		if err != nil {
			return nil, err
		}
		return wsMin{tau, res}, nil
	})
	if err != nil {
		return 0, vmsim.Result{}, err
	}
	m := v.(wsMin)
	return m.tau, m.res, nil
}

// CDDetune runs the CD policy with every granted allocation scaled by
// each factor — the whole detune grid as one memoized artifact. Curve
// mode steps the entire grid in lockstep through one trace traversal
// (sweep.Multi); cell mode and the instrumented path replay per factor,
// in factor order. detune wraps the set's selector with the caller's
// scaling rule. Results are in factors order.
func (e *Engine) CDDetune(rc *RunCtx, program string, set workloads.Set, minAlloc int, factors []float64,
	detune func(policy.ArmSelector, float64) policy.ArmSelector) ([]vmsim.Result, error) {
	params := setParams(set, minAlloc) + ",factors=" + fmtFactors(factors)
	k := Key{Kind: "cd-detune", Program: program, Set: set.Name, Policy: "CD", Params: e.modeParams(params)}
	v, err := e.Memo(rc, k, func(comp *RunCtx, o *obs.Observer) (any, error) {
		c, err := e.Compiled(comp, program)
		if err != nil {
			return nil, err
		}
		if o.Enabled() || e.cellMode {
			out := make([]vmsim.Result, len(factors))
			for i, f := range factors {
				cd := policy.NewCD(detune(set.Selector(), f), minAlloc)
				out[i] = vmsim.RunObserved(c.Trace, cd, o)
			}
			return out, nil
		}
		pols := make([]policy.Policy, len(factors))
		for i, f := range factors {
			pols[i] = policy.NewCD(detune(set.Selector(), f), minAlloc)
		}
		return sweep.Multi(c.Trace, pols)
	})
	if err != nil {
		return nil, err
	}
	return v.([]vmsim.Result), nil
}

// fmtFactors serializes a factor grid for a memo key.
func fmtFactors(factors []float64) string {
	var b strings.Builder
	for i, f := range factors {
		if i > 0 {
			b.WriteByte(':')
		}
		fmt.Fprintf(&b, "%g", f)
	}
	return b.String()
}

// ExplainRun builds (once per engine and full parameterization) the
// fault-attribution report for a variant: CD under the directive set
// plus tuned LRU and WS, each attributed site by site. The ledgers are
// immutable after construction, so sharing the memoized pointer is safe.
func (e *Engine) ExplainRun(rc *RunCtx, program string, set workloads.Set, minAlloc int) (*explain.Report, error) {
	k := Key{Kind: "explain", Program: program, Set: set.Name, Policy: "CD", Params: setParams(set, minAlloc)}
	v, err := e.Memo(rc, k, func(comp *RunCtx, _ *obs.Observer) (any, error) {
		c, err := e.Compiled(comp, program)
		if err != nil {
			return nil, err
		}
		return explain.Analyze(c.Trace, explain.Options{Selector: set.Selector(), MinAlloc: minAlloc})
	})
	if err != nil {
		return nil, err
	}
	return v.(*explain.Report), nil
}
