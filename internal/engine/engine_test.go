package engine_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"cdmm/internal/engine"
	"cdmm/internal/obs"
	"cdmm/internal/workloads"
)

func TestMapDeclarationOrder(t *testing.T) {
	items := make([]int, 16)
	for i := range items {
		items[i] = i
	}
	run := func(workers int) []int {
		eng := engine.New(workers)
		out, err := engine.Map(eng, items, func(_ *engine.RunCtx, i int) (int, error) {
			// Finish in roughly reverse declaration order to catch any
			// completion-order gathering.
			time.Sleep(time.Duration(len(items)-i) * time.Millisecond)
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq := run(1)
	par := run(8)
	for i := range items {
		if seq[i] != i*i {
			t.Fatalf("sequential result[%d] = %d, want %d", i, seq[i], i*i)
		}
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel results out of declaration order: %v vs %v", par, seq)
	}
}

func TestMapRunCtxIndex(t *testing.T) {
	eng := engine.New(4)
	idx, err := engine.Map(eng, []string{"a", "b", "c"}, func(rc *engine.RunCtx, _ string) (int, error) {
		return rc.Index, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(idx, []int{0, 1, 2}) {
		t.Errorf("RunCtx indexes = %v", idx)
	}
}

func TestMemoSingleflight(t *testing.T) {
	eng := engine.New(8)
	var computed atomic.Int32
	k := engine.Key{Kind: "test", Program: "X"}
	out, err := engine.Map(eng, make([]struct{}, 32), func(rc *engine.RunCtx, _ struct{}) (int, error) {
		v, err := eng.Memo(rc, k, func(*engine.RunCtx, *obs.Observer) (any, error) {
			computed.Add(1)
			time.Sleep(5 * time.Millisecond) // widen the race window
			return 42, nil
		})
		if err != nil {
			return 0, err
		}
		return v.(int), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := computed.Load(); n != 1 {
		t.Errorf("memoized computation ran %d times, want 1", n)
	}
	for i, v := range out {
		if v != 42 {
			t.Errorf("requester %d got %d, want 42", i, v)
		}
	}
	// Forget forces a recomputation.
	eng.Forget(k)
	if _, err := eng.Memo(nil, k, func(*engine.RunCtx, *obs.Observer) (any, error) {
		computed.Add(1)
		return 42, nil
	}); err != nil {
		t.Fatal(err)
	}
	if n := computed.Load(); n != 2 {
		t.Errorf("computation count after Forget = %d, want 2", n)
	}
}

func TestMemoErrorShared(t *testing.T) {
	eng := engine.New(4)
	boom := errors.New("boom")
	k := engine.Key{Kind: "test", Program: "ERR"}
	_, err := engine.Map(eng, make([]struct{}, 8), func(rc *engine.RunCtx, _ struct{}) (int, error) {
		_, err := eng.Memo(rc, k, func(*engine.RunCtx, *obs.Observer) (any, error) {
			return nil, boom
		})
		return 0, err
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want the memoized error", err)
	}
}

func TestMapErrorAggregationDeterministic(t *testing.T) {
	items := make([]int, 12)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 8} {
		eng := engine.New(workers)
		_, err := engine.Map(eng, items, func(_ *engine.RunCtx, i int) (int, error) {
			switch i {
			case 2:
				time.Sleep(20 * time.Millisecond) // let a later error finish first
				return 0, fmt.Errorf("err-%d", i)
			case 5:
				return 0, fmt.Errorf("err-%d", i)
			}
			return i, nil
		})
		var plan *engine.PlanError
		if !errors.As(err, &plan) {
			t.Fatalf("workers=%d: err = %v (%T), want *engine.PlanError", workers, err, err)
		}
		if len(plan.Runs) != 2 || plan.Runs[0].Index != 2 || plan.Runs[1].Index != 5 {
			t.Errorf("workers=%d: failed runs = %v, want indexes [2 5]", workers, plan.Runs)
		}
		if want := "run 2: err-2 (and 1 more failed)"; err.Error() != want {
			t.Errorf("workers=%d: err = %q, want %q", workers, err, want)
		}
	}
}

func TestMapContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already done: every run must fail with ctx.Err()
	eng := engine.New(4).WithContext(ctx)
	var ran atomic.Int32
	_, err := engine.Map(eng, make([]int, 8), func(rc *engine.RunCtx, _ int) (int, error) {
		ran.Add(1)
		return 0, rc.Ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n != 0 {
		t.Errorf("%d runs executed under a done context, want 0", n)
	}
	var plan *engine.PlanError
	if !errors.As(err, &plan) || len(plan.Runs) != 8 {
		t.Errorf("want a PlanError covering all 8 runs, got %v", err)
	}
}

func TestMapRetryTransient(t *testing.T) {
	var attempts atomic.Int32
	eng := engine.New(1).WithRetry(3, time.Microsecond)
	out, err := engine.Map(eng, []int{7}, func(_ *engine.RunCtx, v int) (int, error) {
		if attempts.Add(1) < 3 {
			return 0, engine.Transient(fmt.Errorf("flaky"))
		}
		return v, nil
	})
	if err != nil {
		t.Fatalf("err = %v, want success after retries", err)
	}
	if out[0] != 7 || attempts.Load() != 3 {
		t.Errorf("out=%v attempts=%d, want [7] after 3 attempts", out, attempts.Load())
	}

	// Non-transient errors must not be retried.
	attempts.Store(0)
	_, err = engine.Map(eng, []int{1}, func(_ *engine.RunCtx, _ int) (int, error) {
		attempts.Add(1)
		return 0, fmt.Errorf("fatal")
	})
	if err == nil || attempts.Load() != 1 {
		t.Errorf("non-transient error retried: attempts=%d err=%v", attempts.Load(), err)
	}

	// A transient error that never clears exhausts the budget.
	attempts.Store(0)
	_, err = engine.Map(eng, []int{1}, func(_ *engine.RunCtx, _ int) (int, error) {
		attempts.Add(1)
		return 0, engine.Transient(fmt.Errorf("always"))
	})
	if err == nil || attempts.Load() != 4 {
		t.Errorf("want 4 attempts (1 + 3 retries) then failure, got attempts=%d err=%v", attempts.Load(), err)
	}
	if !engine.IsTransient(err) {
		t.Errorf("aggregated error should still unwrap to the transient cause: %v", err)
	}
}

func TestMapRetryDiscardsFailedAttemptEvents(t *testing.T) {
	col := &obs.Collector{}
	eng := engine.New(1).WithObserver(&obs.Observer{Tracer: col}).WithRetry(2, 0)
	attempt := 0
	_, err := engine.Map(eng, []int{0}, func(rc *engine.RunCtx, _ int) (int, error) {
		attempt++
		rc.Obs.Emit(obs.Event{Kind: "test", Label: fmt.Sprintf("attempt-%d", attempt)})
		if attempt < 2 {
			return 0, engine.Transient(fmt.Errorf("flaky"))
		}
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Events) != 1 || col.Events[0].Label != "attempt-2" {
		t.Errorf("merged events = %v, want only the final attempt's", col.Events)
	}
}

// planEvents executes a fixed run plan with an event collector attached
// and returns the merged stream. The plan mixes memoized CD runs (with a
// deliberate duplicate) and a compile prerequisite.
func planEvents(t *testing.T, workers int) []obs.Event {
	t.Helper()
	col := &obs.Collector{}
	eng := engine.New(workers).WithObserver(&obs.Observer{Tracer: col})
	type job struct {
		prog  string
		level int
	}
	jobs := []job{
		{"MAIN", 1}, {"MAIN", 2}, {"FDJAC", 1}, {"TQL", 1},
		{"MAIN", 2}, // duplicate: its events must flush exactly once
		{"FDJAC", 2},
	}
	_, err := engine.Map(eng, jobs, func(rc *engine.RunCtx, j job) (int, error) {
		set := workloads.Set{Name: fmt.Sprintf("L%d", j.level), Level: j.level}
		r, err := eng.CDRun(rc, j.prog, set, 2)
		if err != nil {
			return 0, err
		}
		return r.Faults, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return col.Events
}

func TestEventMergeDeterministic(t *testing.T) {
	want := planEvents(t, 1)
	if len(want) == 0 {
		t.Fatal("sequential plan emitted no events")
	}
	for try := 0; try < 3; try++ {
		got := planEvents(t, 8)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("try %d: parallel event stream differs from sequential (%d vs %d events)",
				try, len(got), len(want))
		}
	}
}

func TestCompiledSharedAcrossRuns(t *testing.T) {
	eng := engine.New(4)
	out, err := engine.Map(eng, make([]struct{}, 8), func(rc *engine.RunCtx, _ struct{}) (*workloads.Compiled, error) {
		return eng.Compiled(rc, "MAIN")
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(out); i++ {
		if out[i] != out[0] {
			t.Fatal("Compiled returned different pointers for the same program")
		}
	}
}

func TestWorkersDefault(t *testing.T) {
	if w := engine.New(0).Workers(); w < 1 {
		t.Errorf("New(0).Workers() = %d", w)
	}
	if w := engine.New(3).Workers(); w != 3 {
		t.Errorf("New(3).Workers() = %d", w)
	}
}
