package engine_test

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"cdmm/internal/engine"
	"cdmm/internal/obs"
	"cdmm/internal/workloads"
)

func TestMapDeclarationOrder(t *testing.T) {
	items := make([]int, 16)
	for i := range items {
		items[i] = i
	}
	run := func(workers int) []int {
		eng := engine.New(workers)
		out, err := engine.Map(eng, items, func(_ *engine.RunCtx, i int) (int, error) {
			// Finish in roughly reverse declaration order to catch any
			// completion-order gathering.
			time.Sleep(time.Duration(len(items)-i) * time.Millisecond)
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq := run(1)
	par := run(8)
	for i := range items {
		if seq[i] != i*i {
			t.Fatalf("sequential result[%d] = %d, want %d", i, seq[i], i*i)
		}
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel results out of declaration order: %v vs %v", par, seq)
	}
}

func TestMapRunCtxIndex(t *testing.T) {
	eng := engine.New(4)
	idx, err := engine.Map(eng, []string{"a", "b", "c"}, func(rc *engine.RunCtx, _ string) (int, error) {
		return rc.Index, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(idx, []int{0, 1, 2}) {
		t.Errorf("RunCtx indexes = %v", idx)
	}
}

func TestMemoSingleflight(t *testing.T) {
	eng := engine.New(8)
	var computed atomic.Int32
	k := engine.Key{Kind: "test", Program: "X"}
	out, err := engine.Map(eng, make([]struct{}, 32), func(rc *engine.RunCtx, _ struct{}) (int, error) {
		v, err := eng.Memo(rc, k, func(*engine.RunCtx, *obs.Observer) (any, error) {
			computed.Add(1)
			time.Sleep(5 * time.Millisecond) // widen the race window
			return 42, nil
		})
		if err != nil {
			return 0, err
		}
		return v.(int), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := computed.Load(); n != 1 {
		t.Errorf("memoized computation ran %d times, want 1", n)
	}
	for i, v := range out {
		if v != 42 {
			t.Errorf("requester %d got %d, want 42", i, v)
		}
	}
	// Forget forces a recomputation.
	eng.Forget(k)
	if _, err := eng.Memo(nil, k, func(*engine.RunCtx, *obs.Observer) (any, error) {
		computed.Add(1)
		return 42, nil
	}); err != nil {
		t.Fatal(err)
	}
	if n := computed.Load(); n != 2 {
		t.Errorf("computation count after Forget = %d, want 2", n)
	}
}

func TestMemoErrorShared(t *testing.T) {
	eng := engine.New(4)
	boom := errors.New("boom")
	k := engine.Key{Kind: "test", Program: "ERR"}
	_, err := engine.Map(eng, make([]struct{}, 8), func(rc *engine.RunCtx, _ struct{}) (int, error) {
		_, err := eng.Memo(rc, k, func(*engine.RunCtx, *obs.Observer) (any, error) {
			return nil, boom
		})
		return 0, err
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want the memoized error", err)
	}
}

func TestMapFirstErrorDeterministic(t *testing.T) {
	items := make([]int, 12)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 8} {
		eng := engine.New(workers)
		_, err := engine.Map(eng, items, func(_ *engine.RunCtx, i int) (int, error) {
			switch i {
			case 2:
				time.Sleep(20 * time.Millisecond) // let a later error finish first
				return 0, fmt.Errorf("err-%d", i)
			case 5:
				return 0, fmt.Errorf("err-%d", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "err-2" {
			t.Errorf("workers=%d: err = %v, want err-2 (first by declaration order)", workers, err)
		}
	}
}

// planEvents executes a fixed run plan with an event collector attached
// and returns the merged stream. The plan mixes memoized CD runs (with a
// deliberate duplicate) and a compile prerequisite.
func planEvents(t *testing.T, workers int) []obs.Event {
	t.Helper()
	col := &obs.Collector{}
	eng := engine.New(workers).WithObserver(&obs.Observer{Tracer: col})
	type job struct {
		prog  string
		level int
	}
	jobs := []job{
		{"MAIN", 1}, {"MAIN", 2}, {"FDJAC", 1}, {"TQL", 1},
		{"MAIN", 2}, // duplicate: its events must flush exactly once
		{"FDJAC", 2},
	}
	_, err := engine.Map(eng, jobs, func(rc *engine.RunCtx, j job) (int, error) {
		set := workloads.Set{Name: fmt.Sprintf("L%d", j.level), Level: j.level}
		r, err := eng.CDRun(rc, j.prog, set, 2)
		if err != nil {
			return 0, err
		}
		return r.Faults, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return col.Events
}

func TestEventMergeDeterministic(t *testing.T) {
	want := planEvents(t, 1)
	if len(want) == 0 {
		t.Fatal("sequential plan emitted no events")
	}
	for try := 0; try < 3; try++ {
		got := planEvents(t, 8)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("try %d: parallel event stream differs from sequential (%d vs %d events)",
				try, len(got), len(want))
		}
	}
}

func TestCompiledSharedAcrossRuns(t *testing.T) {
	eng := engine.New(4)
	out, err := engine.Map(eng, make([]struct{}, 8), func(rc *engine.RunCtx, _ struct{}) (*workloads.Compiled, error) {
		return eng.Compiled(rc, "MAIN")
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(out); i++ {
		if out[i] != out[0] {
			t.Fatal("Compiled returned different pointers for the same program")
		}
	}
}

func TestWorkersDefault(t *testing.T) {
	if w := engine.New(0).Workers(); w < 1 {
		t.Errorf("New(0).Workers() = %d", w)
	}
	if w := engine.New(3).Workers(); w != 3 {
		t.Errorf("New(3).Workers() = %d", w)
	}
}
