package engine_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"cdmm/internal/engine"
	"cdmm/internal/obs"
	"cdmm/internal/policy"
	"cdmm/internal/vmsim"
)

// snapshotRun finds one run's snapshot by id.
func snapshotRun(t *testing.T, p *engine.Progress, id int) engine.RunSnapshot {
	t.Helper()
	rs, ok := p.Run(id)
	if !ok {
		t.Fatalf("progress has no run %d", id)
	}
	return rs
}

func TestProgressPlanLifecycle(t *testing.T) {
	p := engine.NewProgress()
	eng := engine.New(4).WithProgress(p)

	items := []string{"CONDUCT", "MAIN", "TQL"}
	_, err := engine.MapNamed(eng, "table-test", items, func(rc *engine.RunCtx, prog string) (vmsim.Result, error) {
		c, err := eng.Compiled(rc, prog)
		if err != nil {
			return vmsim.Result{}, err
		}
		rc.Describe(prog, "LRU")
		res := vmsim.RunObserved(c.Trace.RefsOnly(), policy.NewLRU(16), rc.Obs)
		rc.Report(res)
		return res, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	s := p.Snapshot()
	if len(s.Plans) != 1 || s.Plans[0].Label != "table-test" || s.Plans[0].Total != 3 {
		t.Fatalf("plan snapshot = %+v", s.Plans)
	}
	if !s.Plans[0].Finished {
		t.Error("plan not marked finished")
	}
	if !s.Idle {
		t.Error("tracker not idle after plan completion")
	}
	if s.Counts["done"] != 3 {
		t.Errorf("counts = %v, want 3 done", s.Counts)
	}
	for i, prog := range items {
		rs := snapshotRun(t, p, i)
		if rs.State != "done" {
			t.Errorf("run %d state = %s", i, rs.State)
		}
		if rs.Label != prog || rs.Policy != "LRU" {
			t.Errorf("run %d described as %q/%q, want %q/LRU", i, rs.Label, rs.Policy, prog)
		}
		if rs.Faults <= 0 || rs.Refs <= 0 || rs.Mem <= 0 {
			t.Errorf("run %d missing reported aggregates: %+v", i, rs)
		}
		if rs.Done == 0 || rs.Done != rs.Total {
			t.Errorf("run %d live position %d/%d, want terminal done==total", i, rs.Done, rs.Total)
		}
		if rs.VirtualTime <= 0 {
			t.Errorf("run %d virtual time = %d", i, rs.VirtualTime)
		}
		if rs.Attempts != 1 {
			t.Errorf("run %d attempts = %d", i, rs.Attempts)
		}
	}
	if s.Seq <= 0 {
		t.Error("seq never advanced")
	}
}

func TestProgressDefaultPlanLabelAndResultDetection(t *testing.T) {
	p := engine.NewProgress()
	eng := engine.New(1).WithProgress(p)
	// Run bodies returning vmsim.Result are picked up without Report.
	_, err := engine.Map(eng, []int{0}, func(rc *engine.RunCtx, _ int) (vmsim.Result, error) {
		return vmsim.Result{Policy: "CD", Refs: 10, Faults: 2, MemSum: 40, Degraded: true, DegradedReason: "test"}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := p.Snapshot()
	if len(s.Plans) != 1 || !strings.HasPrefix(s.Plans[0].Label, "plan-") {
		t.Fatalf("unnamed plan label = %+v", s.Plans)
	}
	rs := snapshotRun(t, p, 0)
	if rs.State != "degraded" {
		t.Errorf("degraded result tracked as %q, want degraded", rs.State)
	}
	if rs.DegradedReason != "test" || rs.Policy != "CD" || rs.Faults != 2 {
		t.Errorf("run snapshot = %+v", rs)
	}
	if s.Counts["degraded"] != 1 {
		t.Errorf("counts = %v", s.Counts)
	}
}

func TestProgressRetryAndFailure(t *testing.T) {
	p := engine.NewProgress()
	eng := engine.New(2).WithProgress(p).WithRetry(2, 0)

	attempts := 0
	_, err := engine.MapNamed(eng, "flaky", []int{0, 1}, func(rc *engine.RunCtx, i int) (int, error) {
		if i == 0 {
			attempts++
			if attempts < 3 {
				return 0, engine.Transient(errors.New("blip"))
			}
			return i, nil
		}
		return 0, errors.New("hard failure")
	})
	if err == nil {
		t.Fatal("want plan error from run 1")
	}

	rs0 := snapshotRun(t, p, 0)
	if rs0.State != "done" || rs0.Attempts != 3 {
		t.Errorf("flaky run = %s after %d attempts, want done after 3", rs0.State, rs0.Attempts)
	}
	rs1 := snapshotRun(t, p, 1)
	if rs1.State != "failed" || !strings.Contains(rs1.Err, "hard failure") {
		t.Errorf("failed run = %s err=%q", rs1.State, rs1.Err)
	}
	s := p.Snapshot()
	if !s.Idle || s.Counts["failed"] != 1 || s.Counts["done"] != 1 {
		t.Errorf("snapshot = idle=%v counts=%v", s.Idle, s.Counts)
	}
}

// TestProgressBehindDisabledObserver checks the no-client telemetry
// stance: the engine's base observer is gated closed, runs take the
// un-instrumented fast path, and live position still flows into the
// tracker through the chunked progress callback.
type closedGate struct{}

func (closedGate) Open() bool { return false }

func TestProgressBehindDisabledObserver(t *testing.T) {
	p := engine.NewProgress()
	col := &obs.Collector{}
	eng := engine.New(1).
		WithObserver(&obs.Observer{Tracer: col, Metrics: obs.NewRegistry(), Gate: closedGate{}}).
		WithProgress(p)

	results, err := engine.MapNamed(eng, "gated", []string{"CONDUCT"}, func(rc *engine.RunCtx, prog string) (vmsim.Result, error) {
		c, err := eng.Compiled(rc, prog)
		if err != nil {
			return vmsim.Result{}, err
		}
		return vmsim.RunObserved(c.Trace.RefsOnly(), policy.NewLRU(32), rc.Obs), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Events) != 0 {
		t.Errorf("closed gate leaked %d events", len(col.Events))
	}
	rs := snapshotRun(t, p, 0)
	if rs.Done == 0 || rs.Done != rs.Total {
		t.Errorf("gated run position %d/%d, want terminal done==total", rs.Done, rs.Total)
	}
	if rs.VirtualTime != results[0].VirtualTime {
		t.Errorf("tracked vt %d != result vt %d", rs.VirtualTime, results[0].VirtualTime)
	}
}

// TestConcurrentPlansKeepMemoEventsWithComputingPlan is the regression
// test for the concurrent-Map stream hazard: before plan serialization,
// a plan that merely *waited* on a memoized computation could merge
// first and steal the computation's buffered events into its own
// stream, so the byte layout depended on cross-plan timing. Now a plan
// holds the plan lock end-to-end while a tracer is attached: plan B
// cannot even start until plan A (which computed the shared artifact)
// has merged, so the shared events deterministically sit in A's block
// and each plan's block is contiguous.
func TestConcurrentPlansKeepMemoEventsWithComputingPlan(t *testing.T) {
	col := &obs.Collector{}
	eng := engine.New(2).WithObserver(&obs.Observer{Tracer: col})
	key := engine.Key{Kind: "test-shared"}

	computed := make(chan struct{})
	done := make(chan error, 1)

	go func() {
		_, err := engine.MapNamed(eng, "A", []int{0}, func(rc *engine.RunCtx, _ int) (int, error) {
			_, merr := eng.Memo(rc, key, func(_ *engine.RunCtx, o *obs.Observer) (any, error) {
				o.Emit(obs.Event{Kind: obs.KindRun, Label: "shared"})
				return 1, nil
			})
			close(computed)
			// Keep plan A in flight long enough for plan B to request the
			// (already computed) artifact and try to finish first.
			time.Sleep(50 * time.Millisecond)
			rc.Obs.Emit(obs.Event{Kind: obs.KindRun, Label: "A"})
			return 0, merr
		})
		done <- err
	}()

	<-computed
	_, err := engine.MapNamed(eng, "B", []int{0}, func(rc *engine.RunCtx, _ int) (int, error) {
		if _, merr := eng.Memo(rc, key, func(_ *engine.RunCtx, o *obs.Observer) (any, error) {
			t.Error("memoized computation ran twice")
			return nil, nil
		}); merr != nil {
			return 0, merr
		}
		rc.Obs.Emit(obs.Event{Kind: obs.KindRun, Label: "B"})
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if aerr := <-done; aerr != nil {
		t.Fatal(aerr)
	}

	var labels []string
	for _, ev := range col.Events {
		labels = append(labels, ev.Label)
	}
	want := []string{"shared", "A", "B"}
	if len(labels) != len(want) {
		t.Fatalf("stream = %v, want %v", labels, want)
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("stream = %v, want %v (shared memo events must stay with the computing plan)", labels, want)
		}
	}
}
