package engine

import (
	"errors"
	"fmt"
)

// transientError marks an error as retryable.
type transientError struct{ err error }

func (t *transientError) Error() string { return t.err.Error() }
func (t *transientError) Unwrap() error { return t.err }

// Transient marks err as transient: a Map run failing with a transient
// error is retried (with backoff) up to the engine's WithRetry budget
// before the failure is recorded. A nil err stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is (or wraps) a transient error.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// RunError ties one failed run to its position in the declared plan.
type RunError struct {
	// Index is the run's declaration-order position.
	Index int
	// Err is the run's final error (after any retries).
	Err error
}

// Error implements error.
func (e *RunError) Error() string { return fmt.Sprintf("run %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *RunError) Unwrap() error { return e.Err }

// PlanError aggregates every failed run of a Map plan, in declaration
// order — the same error value at any parallelism level, because the
// engine executes the whole plan rather than aborting at the first
// failure observed.
type PlanError struct {
	// Runs holds one entry per failed run, ordered by Index.
	Runs []*RunError
}

// Error implements error. It leads with the first failure by declaration
// order (the deterministic "first error" of the old contract) and counts
// the rest.
func (e *PlanError) Error() string {
	if len(e.Runs) == 1 {
		return e.Runs[0].Error()
	}
	return fmt.Sprintf("%s (and %d more failed)", e.Runs[0].Error(), len(e.Runs)-1)
}

// Unwrap exposes every failed run to errors.Is/As.
func (e *PlanError) Unwrap() []error {
	out := make([]error, len(e.Runs))
	for i, r := range e.Runs {
		out[i] = r
	}
	return out
}
