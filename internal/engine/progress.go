package engine

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cdmm/internal/obs"
	"cdmm/internal/vmsim"
)

// RunState is the lifecycle state of one declared run.
type RunState int32

const (
	// RunQueued: declared in a plan, not started yet.
	RunQueued RunState = iota
	// RunRunning: a worker is executing the run body.
	RunRunning
	// RunRetrying: the last attempt failed with a transient error; the
	// run is sleeping out its backoff before the next attempt.
	RunRetrying
	// RunDone: finished without error.
	RunDone
	// RunFailed: finished with an error (after exhausting retries).
	RunFailed
	// RunDegraded: finished without error, but the simulation tripped the
	// CD directive-contract and served part of the run from its WS
	// fallback (vmsim.Result.Degraded).
	RunDegraded
)

// String returns the state's wire name (used in /progress JSON).
func (s RunState) String() string {
	switch s {
	case RunQueued:
		return "queued"
	case RunRunning:
		return "running"
	case RunRetrying:
		return "retrying"
	case RunDone:
		return "done"
	case RunFailed:
		return "failed"
	case RunDegraded:
		return "degraded"
	}
	return "unknown"
}

// Terminal reports whether the state is final.
func (s RunState) Terminal() bool {
	return s == RunDone || s == RunFailed || s == RunDegraded
}

// Progress tracks every plan and run an engine executes: lifecycle
// states, wall-clock attribution, live in-run position (trace offset and
// virtual time, updated lock-free from the simulation loop's periodic
// callbacks) and the PF/MEM/ST aggregates of finished runs. One Progress
// may be shared by several engines (the CLI attaches a single tracker to
// every engine a command builds); all methods are safe for concurrent
// use. Snapshots are cheap enough to serve on every HTTP poll.
type Progress struct {
	mu    sync.Mutex
	seq   atomic.Int64
	plans []*planEntry
	runs  []*runEntry
}

// NewProgress returns an empty tracker.
func NewProgress() *Progress {
	return &Progress{}
}

type planEntry struct {
	id       int
	label    string
	total    int
	started  time.Time
	finished time.Time // zero while in flight
}

type runEntry struct {
	id    int
	plan  int
	index int

	// live in-run position, stored lock-free by the progress callback.
	done  atomic.Int64
	total atomic.Int64
	vt    atomic.Int64

	// everything below is guarded by Progress.mu.
	label    string
	policy   string
	state    RunState
	attempts int
	started  time.Time
	finished time.Time
	err      string

	hasResult bool
	result    vmsim.Result
}

// startPlan registers a plan of n queued runs and returns the plan id
// and the id of its first run (run ids are global and contiguous).
func (p *Progress) startPlan(label string, n int) (planID, baseRunID int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	planID = len(p.plans)
	if label == "" {
		label = "plan-" + strconv.Itoa(planID)
	}
	p.plans = append(p.plans, &planEntry{id: planID, label: label, total: n, started: time.Now()})
	baseRunID = len(p.runs)
	for i := 0; i < n; i++ {
		p.runs = append(p.runs, &runEntry{id: baseRunID + i, plan: planID, index: i, state: RunQueued})
	}
	p.seq.Add(1)
	return planID, baseRunID
}

// finishPlan stamps the plan's wall-clock end.
func (p *Progress) finishPlan(planID int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if planID >= 0 && planID < len(p.plans) {
		p.plans[planID].finished = time.Now()
	}
	p.seq.Add(1)
}

// runStart marks one attempt of the run as executing.
func (p *Progress) runStart(id int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	r := p.run(id)
	if r == nil {
		return
	}
	r.state = RunRunning
	r.attempts++
	if r.attempts == 1 {
		r.started = time.Now()
	}
	p.seq.Add(1)
}

// runRetrying marks the run as sleeping out its retry backoff.
func (p *Progress) runRetrying(id int, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	r := p.run(id)
	if r == nil {
		return
	}
	r.state = RunRetrying
	if err != nil {
		r.err = err.Error()
	}
	p.seq.Add(1)
}

// runFinish records the run's terminal state. res is the run body's
// result value; when it is (or wraps into) a vmsim.Result the tracker
// keeps the PF/MEM/ST aggregates and flips to RunDegraded if the
// simulation fell back.
func (p *Progress) runFinish(id int, res any, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	r := p.run(id)
	if r == nil {
		return
	}
	r.finished = time.Now()
	if vr, ok := res.(vmsim.Result); ok {
		r.setResult(vr)
	}
	switch {
	case err != nil:
		r.state = RunFailed
		r.err = err.Error()
	case r.hasResult && r.result.Degraded:
		r.state = RunDegraded
	default:
		r.state = RunDone
		r.err = ""
	}
	p.seq.Add(1)
}

// describe attaches a human label and policy name to the run.
func (p *Progress) describe(id int, label, policyName string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	r := p.run(id)
	if r == nil {
		return
	}
	if label != "" {
		r.label = label
	}
	if policyName != "" {
		r.policy = policyName
	}
	p.seq.Add(1)
}

// report stores the run's simulation result ahead of runFinish (run
// bodies whose return type is not vmsim.Result call this through
// RunCtx.Report so /runs/{id} still shows PF/MEM/ST).
func (p *Progress) report(id int, res vmsim.Result) {
	p.mu.Lock()
	defer p.mu.Unlock()
	r := p.run(id)
	if r == nil {
		return
	}
	r.setResult(res)
	p.seq.Add(1)
}

func (r *runEntry) setResult(res vmsim.Result) {
	r.hasResult = true
	r.result = res
	if r.policy == "" {
		r.policy = res.Policy
	}
}

// runProgressFn builds the lock-free in-run callback for one run; the
// simulation loop invokes it every few tens of thousands of events.
func (p *Progress) runProgressFn(id int) obs.ProgressFunc {
	p.mu.Lock()
	r := p.run(id)
	p.mu.Unlock()
	if r == nil {
		return nil
	}
	return func(done, total int, vt int64) {
		// Nested simulations (memoized prerequisites) reuse the same
		// callback; keep the furthest position rather than jumping back
		// when an inner, shorter run reports.
		if int64(total) >= r.total.Load() {
			r.done.Store(int64(done))
			r.total.Store(int64(total))
		}
		if vt > r.vt.Load() {
			r.vt.Store(vt)
		}
	}
}

// run returns the entry for id; callers hold p.mu.
func (p *Progress) run(id int) *runEntry {
	if id < 0 || id >= len(p.runs) {
		return nil
	}
	return p.runs[id]
}

// PlanSnapshot is one plan's status in a Snapshot.
type PlanSnapshot struct {
	ID       int     `json:"id"`
	Label    string  `json:"label"`
	Total    int     `json:"total"`
	Finished bool    `json:"finished"`
	WallMs   float64 `json:"wall_ms"`
}

// RunSnapshot is one run's status in a Snapshot.
type RunSnapshot struct {
	ID       int    `json:"id"`
	Plan     int    `json:"plan"`
	Index    int    `json:"index"`
	Label    string `json:"label,omitempty"`
	Policy   string `json:"policy,omitempty"`
	State    string `json:"state"`
	Attempts int    `json:"attempts"`
	// WallMs is wall-clock time attributed to the run: start of the
	// first attempt to finish (or to now while still running).
	WallMs float64 `json:"wall_ms"`
	// Done/Total are the live trace position (events or references,
	// path-dependent — consume the ratio); VirtualTime is the simulated
	// clock reached.
	Done        int64 `json:"done"`
	Total       int64 `json:"total"`
	VirtualTime int64 `json:"virtual_time"`
	// Aggregates of the (possibly still accumulating) result.
	Refs           int     `json:"refs,omitempty"`
	Faults         int     `json:"pf,omitempty"`
	Mem            float64 `json:"mem,omitempty"`
	ST             float64 `json:"st,omitempty"`
	Degraded       bool    `json:"degraded,omitempty"`
	DegradedReason string  `json:"degraded_reason,omitempty"`
	Err            string  `json:"error,omitempty"`
}

// Snapshot is the full tracker state at one instant.
type Snapshot struct {
	// Seq increases on every state change; pollers can cheaply detect
	// "nothing new".
	Seq int64 `json:"seq"`
	// Idle reports that no run is queued, running or retrying.
	Idle bool `json:"idle"`
	// Counts maps run state names to how many runs are in each.
	Counts map[string]int `json:"counts"`
	Plans  []PlanSnapshot `json:"plans"`
	Runs   []RunSnapshot  `json:"runs"`
}

// Snapshot copies the tracker state. Runs' live positions are read from
// their atomics, so a snapshot taken mid-plan shows in-flight trace
// offsets without stopping any worker.
func (p *Progress) Snapshot() Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := Snapshot{
		Seq:    p.seq.Load(),
		Idle:   true,
		Counts: make(map[string]int, 6),
		Plans:  make([]PlanSnapshot, 0, len(p.plans)),
		Runs:   make([]RunSnapshot, 0, len(p.runs)),
	}
	now := time.Now()
	for _, pl := range p.plans {
		ps := PlanSnapshot{ID: pl.id, Label: pl.label, Total: pl.total, Finished: !pl.finished.IsZero()}
		end := pl.finished
		if end.IsZero() {
			end = now
		}
		ps.WallMs = float64(end.Sub(pl.started)) / float64(time.Millisecond)
		s.Plans = append(s.Plans, ps)
	}
	for _, r := range p.runs {
		s.Counts[r.state.String()]++
		if !r.state.Terminal() {
			s.Idle = false
		}
		s.Runs = append(s.Runs, p.runSnapshotLocked(r, now))
	}
	return s
}

// Run returns one run's snapshot by id.
func (p *Progress) Run(id int) (RunSnapshot, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	r := p.run(id)
	if r == nil {
		return RunSnapshot{}, false
	}
	return p.runSnapshotLocked(r, time.Now()), true
}

func (p *Progress) runSnapshotLocked(r *runEntry, now time.Time) RunSnapshot {
	rs := RunSnapshot{
		ID:          r.id,
		Plan:        r.plan,
		Index:       r.index,
		Label:       r.label,
		Policy:      r.policy,
		State:       r.state.String(),
		Attempts:    r.attempts,
		Done:        r.done.Load(),
		Total:       r.total.Load(),
		VirtualTime: r.vt.Load(),
		Err:         r.err,
	}
	if !r.started.IsZero() {
		end := r.finished
		if end.IsZero() {
			end = now
		}
		rs.WallMs = float64(end.Sub(r.started)) / float64(time.Millisecond)
	}
	if r.hasResult {
		rs.Refs = r.result.Refs
		rs.Faults = r.result.Faults
		rs.Mem = r.result.MEM()
		rs.ST = r.result.ST()
		rs.Degraded = r.result.Degraded
		rs.DegradedReason = r.result.DegradedReason
		if rs.VirtualTime < r.result.VirtualTime {
			rs.VirtualTime = r.result.VirtualTime
		}
		if rs.Total == 0 {
			rs.Done, rs.Total = int64(r.result.Refs), int64(r.result.Refs)
		}
	}
	return rs
}
