package bli

import (
	"testing"

	"cdmm/internal/mem"
	"cdmm/internal/workloads"
)

// phaseTrace builds a trace with two phases: pages {0,1} cycled for n1
// refs, then pages {10..13} cycled for n2 refs.
func phaseTrace(n1, n2 int) []mem.Page {
	var out []mem.Page
	for i := 0; i < n1; i++ {
		out = append(out, mem.Page(i%2))
	}
	for i := 0; i < n2; i++ {
		out = append(out, mem.Page(10+i%4))
	}
	return out
}

func TestDetectTwoPhases(t *testing.T) {
	refs := phaseTrace(400, 400)
	ivs := Detect(refs, Config{})
	// A size-2 interval must cover (nearly) the whole first phase and a
	// size-4 interval the second.
	var got2, got4 bool
	for _, iv := range ivs {
		if iv.Size == 2 && iv.Start <= 2 && iv.End >= 398 {
			got2 = true
		}
		if iv.Size == 4 && iv.Start >= 400 && iv.End == 800 && iv.Duration() >= 390 {
			got4 = true
		}
	}
	if !got2 {
		t.Errorf("missing the size-2 phase interval; got %d intervals", len(ivs))
	}
	if !got4 {
		t.Errorf("missing the size-4 phase interval")
	}
}

func TestHierarchicalNesting(t *testing.T) {
	// Inner locality {0,1} re-visited repeatedly; page 5 touched between
	// visits forms an outer level-3 locality {0,1,5}.
	var refs []mem.Page
	for outer := 0; outer < 20; outer++ {
		for i := 0; i < 100; i++ {
			refs = append(refs, mem.Page(i%2))
		}
		refs = append(refs, 5)
	}
	ivs := Detect(refs, Config{})
	stats := Stats(ivs)
	var cover2, cover3 int
	for _, s := range stats {
		switch s.Size {
		case 2:
			cover2 = s.Coverage
		case 3:
			cover3 = s.Coverage
		}
	}
	if cover2 < len(refs)/2 {
		t.Errorf("size-2 coverage %d too small (inner locality)", cover2)
	}
	if cover3 < len(refs)*9/10 {
		t.Errorf("size-3 coverage %d too small (outer locality)", cover3)
	}
}

func TestMinDurationFilters(t *testing.T) {
	refs := phaseTrace(40, 40)
	strict := Detect(refs, Config{MinDuration: func(s int) int { return 1000 }})
	if len(strict) != 0 {
		t.Errorf("intervals survived an impossible duration floor: %d", len(strict))
	}
}

func TestIntervalInvariants(t *testing.T) {
	refs := phaseTrace(300, 500)
	ivs := Detect(refs, Config{})
	for _, iv := range ivs {
		if iv.Start < 0 || iv.End > len(refs) || iv.Start >= iv.End {
			t.Fatalf("malformed interval %+v", iv)
		}
		if iv.Size < 1 {
			t.Fatalf("interval with size %d", iv.Size)
		}
		if iv.Duration() < 8*iv.Size {
			t.Fatalf("interval below the default duration floor: %+v", iv)
		}
	}
}

func TestMaxSizeCap(t *testing.T) {
	refs := phaseTrace(200, 200)
	ivs := Detect(refs, Config{MaxSize: 2})
	for _, iv := range ivs {
		if iv.Size > 2 {
			t.Fatalf("interval above MaxSize: %+v", iv)
		}
	}
}

func TestDominantSizes(t *testing.T) {
	refs := phaseTrace(1000, 0)
	sizes := DominantSizes(Detect(refs, Config{}), len(refs), 0.9)
	found := false
	for _, s := range sizes {
		if s == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("size 2 should dominate a pure two-page cycle; got %v", sizes)
	}
}

// TestCompileTimePredictionsMatchRuntime is the validation experiment the
// BLI model enables: the compile-time locality sizes the directive
// machinery computes (the ALLOCATE X values) should appear among the
// dominant runtime locality sizes of the actual trace, give or take the
// MinResident floor. This ties §2's source-level analysis to Madison &
// Batson's trace-level model — the paper's core premise.
func TestCompileTimePredictionsMatchRuntime(t *testing.T) {
	for _, name := range []string{"MAIN", "HWSCRT"} {
		w, err := workloads.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		c, err := workloads.Compile(w)
		if err != nil {
			t.Fatal(err)
		}
		refs := c.Trace.Pages()
		ivs := Detect(refs, Config{MaxSize: c.V() + 4})
		dominant := DominantSizes(ivs, len(refs), 0.5)
		if len(dominant) == 0 {
			t.Fatalf("%s: no dominant runtime localities", name)
		}

		// Collect the compile-time X of the loops where the program spends
		// its references (every loop with a directive).
		predicted := map[int]bool{}
		for _, l := range c.Info.Loops {
			predicted[c.Analysis.ActiveSize(l)] = true
		}
		// At least one predicted size must be within ±2 pages of a
		// dominant runtime size.
		matched := false
		for _, d := range dominant {
			for x := range predicted {
				if d >= x-2 && d <= x+2 {
					matched = true
				}
			}
		}
		if !matched {
			t.Errorf("%s: no compile-time locality size (%v) near any dominant runtime size (%v)",
				name, keys(predicted), dominant)
		}
	}
}

func keys(m map[int]bool) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestRender(t *testing.T) {
	refs := phaseTrace(200, 200)
	out := Render(Detect(refs, Config{}), len(refs))
	if out == "" || len(out) < 40 {
		t.Errorf("rendering too small:\n%s", out)
	}
}
