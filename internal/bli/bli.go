// Package bli implements the Bounded Locality Interval model of Madison &
// Batson (CACM 1976), the empirical foundation the paper builds on: the
// observation that a program's reference string decomposes into a
// hierarchy of intervals during which a fixed set of pages is
// re-referenced. The paper's central premise is that these runtime
// localities correspond to the source program's loop structures
// ([MaBa76], [Abus81], [Malk82]); this package detects them from traces so
// that the correspondence — compile-time predicted locality sizes versus
// runtime-observed interval sizes — can be checked directly
// (TestCompileTimePredictionsMatchRuntime).
//
// Detection uses the classic LRU-stack formulation: a locality of size s
// exists over a maximal interval during which the set of pages in the top
// s positions of the LRU stack does not change. A reference to the page
// at stack depth d leaves the top-s sets unchanged for all s ≥ d (the set
// is merely reordered) and changes them for every s < d, so interval
// boundaries fall out of a single pass over the trace.
package bli

import (
	"fmt"
	"sort"
	"strings"

	"cdmm/internal/mem"
)

// Interval is one bounded locality interval: the top-Size LRU stack set
// was invariant over [Start, End) (0-based reference indexes).
type Interval struct {
	Size  int
	Start int
	End   int
}

// Duration returns the interval length in references.
func (iv Interval) Duration() int { return iv.End - iv.Start }

// Config controls detection.
type Config struct {
	// MaxSize bounds the locality sizes tracked (stack levels above it
	// are ignored). 0 means 512.
	MaxSize int
	// MinDuration drops intervals shorter than this many references;
	// Madison & Batson's "bounded" qualifier requires an interval to
	// persist long enough to be meaningful. 0 means 8×size.
	MinDuration func(size int) int
}

func (c Config) withDefaults() Config {
	if c.MaxSize == 0 {
		c.MaxSize = 512
	}
	if c.MinDuration == nil {
		c.MinDuration = func(size int) int { return 8 * size }
	}
	return c
}

// Detect scans the reference string and returns all bounded locality
// intervals up to cfg.MaxSize, ordered by start time then size.
func Detect(refs []mem.Page, cfg Config) []Interval {
	cfg = cfg.withDefaults()
	var out []Interval

	// LRU stack as a slice (top at index 0); depth lookups via map.
	stack := make([]mem.Page, 0, cfg.MaxSize+1)
	pos := map[mem.Page]int{} // page -> stack index
	// lastChange[s] is the time the top-(s+1) set last changed.
	lastChange := make([]int, cfg.MaxSize)

	emit := func(size, start, end int) {
		if end-start >= cfg.MinDuration(size) {
			out = append(out, Interval{Size: size, Start: start, End: end})
		}
	}

	for t, pg := range refs {
		d, seen := pos[pg]
		if !seen {
			d = len(stack)
			stack = append(stack, pg)
		}
		// Move to top: stack positions [0, d) shift down one.
		for i := d; i > 0; i-- {
			stack[i] = stack[i-1]
			pos[stack[i]] = i
		}
		stack[0] = pg
		pos[pg] = 0

		// Top-s sets changed for every s < d (s is 1-based size).
		limit := d
		if !seen {
			limit = len(stack) // a brand-new page changes every level
		}
		if limit > cfg.MaxSize {
			limit = cfg.MaxSize
		}
		for s := 1; s <= limit; s++ {
			emit(s, lastChange[s-1], t)
			lastChange[s-1] = t
		}
	}
	// Close intervals still open at trace end.
	n := len(refs)
	limit := len(stack)
	if limit > cfg.MaxSize {
		limit = cfg.MaxSize
	}
	for s := 1; s <= limit; s++ {
		emit(s, lastChange[s-1], n)
	}

	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Size < out[j].Size
	})
	return out
}

// SizeStats aggregates the intervals of one locality size.
type SizeStats struct {
	Size     int
	Count    int
	Coverage int // total references covered by intervals of this size
	MaxDur   int
	MeanDur  float64
}

// Stats groups intervals by size, sorted by descending coverage.
func Stats(intervals []Interval) []SizeStats {
	bySize := map[int]*SizeStats{}
	for _, iv := range intervals {
		s := bySize[iv.Size]
		if s == nil {
			s = &SizeStats{Size: iv.Size}
			bySize[iv.Size] = s
		}
		s.Count++
		s.Coverage += iv.Duration()
		if iv.Duration() > s.MaxDur {
			s.MaxDur = iv.Duration()
		}
	}
	out := make([]SizeStats, 0, len(bySize))
	for _, s := range bySize {
		s.MeanDur = float64(s.Coverage) / float64(s.Count)
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Coverage != out[j].Coverage {
			return out[i].Coverage > out[j].Coverage
		}
		return out[i].Size < out[j].Size
	})
	return out
}

// DominantSizes returns the locality sizes whose intervals cover at least
// frac of the trace, sorted ascending — the runtime view of the program's
// locality hierarchy.
func DominantSizes(intervals []Interval, refLen int, frac float64) []int {
	var out []int
	for _, s := range Stats(intervals) {
		if float64(s.Coverage) >= frac*float64(refLen) {
			out = append(out, s.Size)
		}
	}
	sort.Ints(out)
	return out
}

// Render prints the per-size statistics table.
func Render(intervals []Interval, refLen int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %8s %10s %10s %10s %9s\n", "size", "count", "coverage", "cover%", "mean-dur", "max-dur")
	for i, s := range Stats(intervals) {
		if i >= 20 {
			fmt.Fprintf(&b, "... (%d more sizes)\n", len(Stats(intervals))-20)
			break
		}
		fmt.Fprintf(&b, "%6d %8d %10d %9.1f%% %10.0f %9d\n",
			s.Size, s.Count, s.Coverage, 100*float64(s.Coverage)/float64(refLen), s.MeanDur, s.MaxDur)
	}
	return b.String()
}
