package mem

import (
	"testing"
	"testing/quick"

	"cdmm/internal/fortran"
)

func layoutFor(t *testing.T, src string) *Layout {
	t.Helper()
	prog, err := fortran.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLayout(prog, DefaultGeometry)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestGeometryDefaults(t *testing.T) {
	g := DefaultGeometry
	if g.ElemsPerPage() != 64 {
		t.Errorf("elems/page = %d, want 64", g.ElemsPerPage())
	}
	if g.PagesFor(64) != 1 || g.PagesFor(65) != 2 || g.PagesFor(1) != 1 || g.PagesFor(0) != 0 {
		t.Errorf("PagesFor wrong: %d %d %d %d", g.PagesFor(64), g.PagesFor(65), g.PagesFor(1), g.PagesFor(0))
	}
}

func TestGeometryValidate(t *testing.T) {
	if err := (Geometry{PageSize: 256, ElemSize: 4}).Validate(); err != nil {
		t.Errorf("valid geometry rejected: %v", err)
	}
	if err := (Geometry{PageSize: 0, ElemSize: 4}).Validate(); err == nil {
		t.Error("zero page size accepted")
	}
	if err := (Geometry{PageSize: 250, ElemSize: 4}).Validate(); err == nil {
		t.Error("non-multiple page size accepted")
	}
}

func TestLayoutSegments(t *testing.T) {
	l := layoutFor(t, "PROGRAM P\nDIMENSION A(64,2), V(65)\nEND\n")
	a, ok := l.Segment("A")
	if !ok {
		t.Fatal("A missing")
	}
	if a.Base != 0 || a.Pages != 2 {
		t.Errorf("A = %+v, want base 0 pages 2", a)
	}
	v, ok := l.Segment("V")
	if !ok {
		t.Fatal("V missing")
	}
	if v.Base != 2 || v.Pages != 2 {
		t.Errorf("V = %+v, want base 2 pages 2", v)
	}
	if l.TotalPages() != 4 {
		t.Errorf("V total = %d, want 4", l.TotalPages())
	}
}

func TestColumnMajorPageOf(t *testing.T) {
	// A(128, 3): each column = 128 elements = 2 pages.
	l := layoutFor(t, "PROGRAM P\nDIMENSION A(128,3)\nEND\n")
	cases := []struct {
		row, col int
		want     Page
	}{
		{1, 1, 0},   // first element
		{64, 1, 0},  // last element of page 0
		{65, 1, 1},  // first of page 1
		{128, 1, 1}, // end of column 1
		{1, 2, 2},   // column 2 starts on page 2
		{128, 3, 5}, // last element
	}
	for _, c := range cases {
		got, err := l.PageOf("A", c.row, c.col)
		if err != nil {
			t.Fatalf("PageOf(A,%d,%d): %v", c.row, c.col, err)
		}
		if got != c.want {
			t.Errorf("PageOf(A,%d,%d) = %d, want %d", c.row, c.col, got, c.want)
		}
	}
}

func TestPageOfBounds(t *testing.T) {
	l := layoutFor(t, "PROGRAM P\nDIMENSION A(10,10)\nEND\n")
	for _, rc := range [][2]int{{0, 1}, {1, 0}, {11, 1}, {1, 11}} {
		if _, err := l.PageOf("A", rc[0], rc[1]); err == nil {
			t.Errorf("PageOf(A,%d,%d) should fail", rc[0], rc[1])
		}
	}
	if _, err := l.PageOf("NOPE", 1, 1); err == nil {
		t.Error("unknown array should fail")
	}
}

func TestColumnPages(t *testing.T) {
	l := layoutFor(t, "PROGRAM P\nDIMENSION A(128,3)\nEND\n")
	pages, err := l.ColumnPages("A", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 2 || pages[0] != 2 || pages[1] != 3 {
		t.Errorf("column 2 pages = %v, want [2 3]", pages)
	}
	if _, err := l.ColumnPages("A", 4); err == nil {
		t.Error("column 4 should be out of bounds")
	}
}

func TestAVSAndCVS(t *testing.T) {
	// The paper's formulas: AVS = M*N/P, CVS = M/P (pages).
	l := layoutFor(t, "PROGRAM P\nDIMENSION A(200,100), V(500)\nEND\n")
	if got := l.AVS("A"); got != 313 { // ceil(20000/64)
		t.Errorf("AVS(A) = %d, want 313", got)
	}
	if got := l.CVS("A"); got != 4 { // ceil(200/64)
		t.Errorf("CVS(A) = %d, want 4", got)
	}
	if got := l.AVS("V"); got != 8 { // ceil(500/64)
		t.Errorf("AVS(V) = %d, want 8", got)
	}
	if got := l.AVS("MISSING"); got != 0 {
		t.Errorf("AVS of unknown = %d, want 0", got)
	}
}

func TestArrayOf(t *testing.T) {
	l := layoutFor(t, "PROGRAM P\nDIMENSION A(64,2), V(65)\nEND\n")
	cases := map[Page]string{0: "A", 1: "A", 2: "V", 3: "V", 4: "", 99: ""}
	for p, want := range cases {
		if got := l.ArrayOf(p); got != want {
			t.Errorf("ArrayOf(%d) = %q, want %q", p, got, want)
		}
	}
}

// Property: every valid (row, col) maps into the array's own segment, and
// consecutive rows within a column map to non-decreasing pages.
func TestPageOfProperties(t *testing.T) {
	l := layoutFor(t, "PROGRAM P\nDIMENSION A(100,7), B(311)\nEND\n")
	segA, _ := l.Segment("A")
	f := func(row, col uint8) bool {
		r := int(row)%100 + 1
		c := int(col)%7 + 1
		p, err := l.PageOf("A", r, c)
		if err != nil {
			return false
		}
		if p < segA.Base || p >= segA.End() {
			return false
		}
		if r < 100 {
			p2, err := l.PageOf("A", r+1, c)
			if err != nil || p2 < p {
				return false
			}
		}
		return l.ArrayOf(p) == "A"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: the page sequence of a full column scan covers exactly
// ColumnPages, in order.
func TestColumnScanMatchesColumnPages(t *testing.T) {
	l := layoutFor(t, "PROGRAM P\nDIMENSION A(150,4)\nEND\n")
	for col := 1; col <= 4; col++ {
		want, err := l.ColumnPages("A", col)
		if err != nil {
			t.Fatal(err)
		}
		var got []Page
		for row := 1; row <= 150; row++ {
			p, err := l.PageOf("A", row, col)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) == 0 || got[len(got)-1] != p {
				got = append(got, p)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("col %d: scan pages %v != ColumnPages %v", col, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("col %d page %d: %d != %d", col, i, got[i], want[i])
			}
		}
	}
}
