// Package mem models the paged virtual address space that the paper's
// simulator assumes: a byte-addressed space with 256-byte pages (the §5
// configuration), column-major FORTRAN arrays laid out page-aligned so
// that an array's virtual size in pages is exactly AVS = ⌈M·N/P⌉ as the
// paper computes it, and 4-byte REAL elements.
package mem

import (
	"fmt"
	"sort"

	"cdmm/internal/fortran"
)

// Geometry describes the paging parameters of the simulated machine.
type Geometry struct {
	PageSize int // bytes per page; the paper uses 256
	ElemSize int // bytes per array element; FORTRAN REAL*4
}

// DefaultGeometry is the paper's configuration: 256-byte pages of 4-byte
// reals, 64 elements per page.
var DefaultGeometry = Geometry{PageSize: 256, ElemSize: 4}

// ElemsPerPage returns how many array elements fit in one page.
func (g Geometry) ElemsPerPage() int { return g.PageSize / g.ElemSize }

// PagesFor returns the number of pages needed to hold n elements
// (the paper's AVS for n = M·N, CVS for n = M).
func (g Geometry) PagesFor(n int) int {
	per := g.ElemsPerPage()
	return (n + per - 1) / per
}

// Validate checks that the geometry is usable.
func (g Geometry) Validate() error {
	if g.PageSize <= 0 || g.ElemSize <= 0 {
		return fmt.Errorf("mem: page size %d and element size %d must be positive", g.PageSize, g.ElemSize)
	}
	if g.PageSize%g.ElemSize != 0 {
		return fmt.Errorf("mem: page size %d not a multiple of element size %d", g.PageSize, g.ElemSize)
	}
	return nil
}

// Page is a virtual page number within a program's address space.
type Page int32

// Segment is the page range occupied by one array.
type Segment struct {
	Name  string
	Base  Page // first page
	Pages int  // AVS
	Rows  int  // M
	Cols  int  // N (1 for vectors)
}

// End returns one past the last page of the segment.
func (s Segment) End() Page { return s.Base + Page(s.Pages) }

// Layout maps each declared array to a page-aligned segment of the virtual
// space, in declaration order.
type Layout struct {
	Geo      Geometry
	Segments []Segment
	byName   map[string]int
	total    int
}

// NewLayout builds the address-space layout for a program's arrays.
func NewLayout(prog *fortran.Program, geo Geometry) (*Layout, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	l := &Layout{Geo: geo, byName: make(map[string]int, len(prog.Arrays))}
	next := Page(0)
	for _, a := range prog.Arrays {
		seg := Segment{
			Name:  a.Name,
			Base:  next,
			Pages: geo.PagesFor(a.Elems()),
			Rows:  a.Rows(),
			Cols:  a.Cols(),
		}
		l.byName[a.Name] = len(l.Segments)
		l.Segments = append(l.Segments, seg)
		next = seg.End()
	}
	l.total = int(next)
	return l, nil
}

// TotalPages returns V, the virtual size of the program's data space in
// pages (the paper's upper bound on memory requirement).
func (l *Layout) TotalPages() int { return l.total }

// Segment returns the segment for the named array.
func (l *Layout) Segment(name string) (Segment, bool) {
	i, ok := l.byName[name]
	if !ok {
		return Segment{}, false
	}
	return l.Segments[i], true
}

// PageOf maps a 1-based (row, col) element reference of the named array to
// its virtual page, using column-major order. col is 1 for vectors.
// Out-of-bounds subscripts are an error (FORTRAN programs in the workload
// suite are expected to stay in bounds; the simulator checks).
func (l *Layout) PageOf(name string, row, col int) (Page, error) {
	i, ok := l.byName[name]
	if !ok {
		return 0, fmt.Errorf("mem: array %s not in layout", name)
	}
	s := l.Segments[i]
	if row < 1 || row > s.Rows || col < 1 || col > s.Cols {
		return 0, fmt.Errorf("mem: %s(%d,%d) out of bounds (%dx%d)", name, row, col, s.Rows, s.Cols)
	}
	elem := (col-1)*s.Rows + (row - 1) // column-major linear index
	return s.Base + Page(elem/l.Geo.ElemsPerPage()), nil
}

// ColumnPages returns the pages spanned by one column of the named array
// (the paper's CVS-sized unit that LOCK directives pin).
func (l *Layout) ColumnPages(name string, col int) ([]Page, error) {
	i, ok := l.byName[name]
	if !ok {
		return nil, fmt.Errorf("mem: array %s not in layout", name)
	}
	s := l.Segments[i]
	if col < 1 || col > s.Cols {
		return nil, fmt.Errorf("mem: %s column %d out of bounds (N=%d)", name, col, s.Cols)
	}
	first, err := l.PageOf(name, 1, col)
	if err != nil {
		return nil, err
	}
	last, err := l.PageOf(name, s.Rows, col)
	if err != nil {
		return nil, err
	}
	pages := make([]Page, 0, last-first+1)
	for p := first; p <= last; p++ {
		pages = append(pages, p)
	}
	return pages, nil
}

// ArrayOf returns the name of the array owning page p, or "" if the page
// is outside every segment.
func (l *Layout) ArrayOf(p Page) string {
	// Segments are sorted by base; binary search.
	i := sort.Search(len(l.Segments), func(i int) bool { return l.Segments[i].End() > p })
	if i < len(l.Segments) && p >= l.Segments[i].Base {
		return l.Segments[i].Name
	}
	return ""
}

// AVS returns the array virtual size in pages for the named array, per the
// paper's AVS = (M×N)/P definition (rounded up to whole pages).
func (l *Layout) AVS(name string) int {
	if s, ok := l.Segment(name); ok {
		return s.Pages
	}
	return 0
}

// CVS returns the column virtual size in pages, CVS = M/P rounded up.
func (l *Layout) CVS(name string) int {
	s, ok := l.Segment(name)
	if !ok {
		return 0
	}
	return l.Geo.PagesFor(s.Rows)
}
