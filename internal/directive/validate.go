package directive

import "fmt"

// ContractError describes a violation of the §3 directive contract — the
// shape the compiler promises for every emitted ALLOCATE/LOCK directive.
// The operating-system side of the policy (policy.CD with a CheckConfig)
// validates incoming directives against this contract and degrades to a
// directive-blind fallback when a violation is detected, rather than
// trusting a corrupted stream.
type ContractError struct {
	Directive string // "ALLOCATE", "LOCK" or "UNLOCK"
	Msg       string
}

// Error implements error.
func (e *ContractError) Error() string {
	return fmt.Sprintf("directive contract: %s: %s", e.Directive, e.Msg)
}

// ValidateArms checks the ALLOCATE else-chain contract: at least one arm,
// every priority index and request positive, priority indexes strictly
// decreasing outermost→innermost, request sizes non-increasing along the
// chain (outer localities contain inner ones), and — when maxPages > 0 —
// no request exceeding the program's addressable size (a request for
// pages the program cannot reference marks a stale or corrupted
// estimate).
func ValidateArms(arms []Arm, maxPages int) error {
	if len(arms) == 0 {
		return &ContractError{Directive: "ALLOCATE", Msg: "empty else-chain"}
	}
	for i, a := range arms {
		if a.PI < 1 {
			return &ContractError{Directive: "ALLOCATE",
				Msg: fmt.Sprintf("arm %d has priority index %d (must be >= 1)", i, a.PI)}
		}
		if a.X < 1 {
			return &ContractError{Directive: "ALLOCATE",
				Msg: fmt.Sprintf("arm %d requests %d pages (must be >= 1)", i, a.X)}
		}
		if maxPages > 0 && a.X > maxPages {
			return &ContractError{Directive: "ALLOCATE",
				Msg: fmt.Sprintf("arm %d requests %d pages but the program addresses only %d", i, a.X, maxPages)}
		}
		if i > 0 {
			if a.PI >= arms[i-1].PI {
				return &ContractError{Directive: "ALLOCATE",
					Msg: fmt.Sprintf("arm %d priority index %d does not decrease (previous %d)", i, a.PI, arms[i-1].PI)}
			}
			if a.X > arms[i-1].X {
				return &ContractError{Directive: "ALLOCATE",
					Msg: fmt.Sprintf("arm %d requests %d pages, more than the enclosing arm's %d", i, a.X, arms[i-1].X)}
			}
		}
	}
	return nil
}

// ValidateLockSet checks one resolved LOCK execution: a positive lock
// priority, a non-negative site id, and — when maxPages > 0 — every page
// within the program's address space ("references to unknown segments"
// are the signature of a corrupted or mistargeted directive stream).
func ValidateLockSet(pj, site int, pages []int, maxPages int) error {
	if pj < 1 {
		return &ContractError{Directive: "LOCK",
			Msg: fmt.Sprintf("lock priority %d (must be >= 1)", pj)}
	}
	if site < 0 {
		return &ContractError{Directive: "LOCK",
			Msg: fmt.Sprintf("negative site id %d", site)}
	}
	for _, pg := range pages {
		if pg < 0 || (maxPages > 0 && pg >= maxPages) {
			return &ContractError{Directive: "LOCK",
				Msg: fmt.Sprintf("site %d references unknown page %d (program has %d pages)", site, pg, maxPages)}
		}
	}
	return nil
}

// ValidateUnlockSet checks one resolved UNLOCK execution's page set
// against the program's address space (maxPages <= 0 skips the range
// check).
func ValidateUnlockSet(pages []int, maxPages int) error {
	for _, pg := range pages {
		if pg < 0 || (maxPages > 0 && pg >= maxPages) {
			return &ContractError{Directive: "UNLOCK",
				Msg: fmt.Sprintf("references unknown page %d (program has %d pages)", pg, maxPages)}
		}
	}
	return nil
}
