// Package directive implements the paper's §3 memory directives and their
// automatic insertion:
//
//   - Procedure 1 (Figure 2): bottom-up priority-index assignment — the
//     innermost loop of every chain gets PI = 1 and merging paths take the
//     maximum, so PI(L) is the height of L in the loop forest.
//   - Algorithm 1 (Figure 3): a single top-down parse that inserts an
//     ALLOCATE((PI₁,X₁) else (PI₂,X₂) else …) directive before every loop,
//     carrying the (PI, X) pairs of all enclosing loops so outer requests
//     are retried at every inner level.
//   - Algorithm 2 (Figure 4): LOCK(PJ, Y₁, Y₂, …) insertion before each
//     inner loop for the arrays referenced between the enclosing loop's
//     header and that inner loop, plus a closing UNLOCK after the
//     outermost loop.
package directive

import (
	"fmt"
	"strings"

	"cdmm/internal/fortran"
	"cdmm/internal/locality"
	"cdmm/internal/sem"
)

// Arm is one (PI, X) alternative of an ALLOCATE directive.
type Arm struct {
	PI int // priority index; larger = outer loop = tried first
	X  int // requested pages (the virtual size of that level's locality)
}

// Allocate is an ALLOCATE((PI₁,X₁) else (PI₂,X₂) else …) directive. Arms
// are ordered as Algorithm 1 appends them: outermost enclosing loop first,
// the loop the directive precedes last. PI values decrease and X values
// are non-increasing along the list for well-formed nests.
type Allocate struct {
	Arms []Arm
	For  *sem.Loop // the loop this directive immediately precedes
}

// String renders the directive in the paper's notation.
func (a *Allocate) String() string {
	parts := make([]string, len(a.Arms))
	for i, arm := range a.Arms {
		parts[i] = fmt.Sprintf("(%d,%d)", arm.PI, arm.X)
	}
	return "ALLOCATE " + strings.Join(parts, " else ")
}

// Lock is a LOCK(PJ, Y…) directive. The particular pages Y are resolved at
// execution time from the reference sites: the directive names the arrays
// referenced in the enclosing loop's body segment before the next inner
// loop, and the interpreter locks the pages those references touch under
// the current loop indices.
type Lock struct {
	PJ     int
	Arrays []string        // in order of first appearance
	Refs   []*sem.ArrayRef // the reference sites whose pages get locked
	Site   *sem.Loop       // the scanning (outer) loop
	Before *sem.Loop       // the inner loop this LOCK immediately precedes
	ID     int             // unique site id; re-execution replaces this site's locks
}

// String renders the directive in the paper's notation.
func (l *Lock) String() string {
	return fmt.Sprintf("LOCK (%d,%s)", l.PJ, strings.Join(l.Arrays, ","))
}

// Unlock is an UNLOCK(Y…) directive releasing every page locked within the
// outermost loop it closes.
type Unlock struct {
	Arrays []string
	After  *sem.Loop // the outermost loop this UNLOCK follows
}

// String renders the directive in the paper's notation.
func (u *Unlock) String() string {
	return fmt.Sprintf("UNLOCK (%s)", strings.Join(u.Arrays, ","))
}

// Plan is the complete set of directives inserted into one program.
type Plan struct {
	Analysis *locality.Analysis
	// PI is Procedure 1's priority index per loop.
	PI map[*sem.Loop]int
	// MaxPI is Δ in the paper's terms: the largest priority index, carried
	// by the outermost loop of the deepest nest.
	MaxPI int
	// PreLoop lists the directives textually preceding each loop, in
	// execution order (LOCKs before the ALLOCATE, matching Figure 5c where
	// LOCK (3,A,B) precedes the ALLOCATE of loop 2).
	PreLoop map[*sem.Loop][]any
	// PostLoop lists directives following each outermost loop (UNLOCKs).
	PostLoop map[*sem.Loop][]any
	// Locks lists all LOCK directives in insertion order.
	Locks []*Lock
}

// AllocateFor returns the ALLOCATE directive preceding the loop, or nil.
func (p *Plan) AllocateFor(l *sem.Loop) *Allocate {
	for _, d := range p.PreLoop[l] {
		if a, ok := d.(*Allocate); ok {
			return a
		}
	}
	return nil
}

// LockFor returns the LOCK directive preceding the loop, or nil.
func (p *Plan) LockFor(l *sem.Loop) *Lock {
	for _, d := range p.PreLoop[l] {
		if lk, ok := d.(*Lock); ok {
			return lk
		}
	}
	return nil
}

// Build runs Procedure 1, Algorithm 1 and Algorithm 2 over the analyzed
// program and returns the directive plan.
func Build(a *locality.Analysis) *Plan {
	p := &Plan{
		Analysis: a,
		PI:       AssignPriorities(a.Info),
		PreLoop:  map[*sem.Loop][]any{},
		PostLoop: map[*sem.Loop][]any{},
	}
	for _, pi := range p.PI {
		if pi > p.MaxPI {
			p.MaxPI = pi
		}
	}
	p.insertLocks(a.Info)   // LOCKs first so they precede ALLOCATEs (Figure 5c)
	p.insertAllocates(a)    // Algorithm 1
	p.insertUnlocks(a.Info) // closing UNLOCK per outermost loop
	return p
}

// AssignPriorities implements Procedure 1 (Figure 2): walk every chain
// bottom-up assigning PI = 1 to innermost loops and incrementing outward,
// taking the maximum where chains merge. The result equals the height of
// each loop in the loop forest.
func AssignPriorities(info *sem.Info) map[*sem.Loop]int {
	pi := map[*sem.Loop]int{}
	// Collect innermost loops, then walk outward from each, exactly as the
	// procedure is stated ("With every inner loop ... REPEAT Next Outer
	// Loop ... PI = maximum(PI+1, old PI)").
	var leaves []*sem.Loop
	for _, l := range info.Loops {
		if l.IsLeaf() {
			leaves = append(leaves, l)
		}
	}
	for _, leaf := range leaves {
		cur := 1
		if pi[leaf] < cur {
			pi[leaf] = cur
		}
		for l := leaf.Parent; l != nil && l.Stmt != nil; l = l.Parent {
			cur++ // "PI = maximum(PI+1, old PI)"
			if old := pi[l]; old > cur {
				cur = old
			}
			pi[l] = cur
		}
	}
	return pi
}

// insertAllocates implements Algorithm 1 (Figure 3): a top-down walk
// maintaining the (PI, X) argument list as a stack — push on loop entry,
// insert the directive before the loop, pop on exit.
func (p *Plan) insertAllocates(a *locality.Analysis) {
	var stack []Arm
	var walk func(l *sem.Loop)
	walk = func(l *sem.Loop) {
		for _, c := range l.Children {
			arm := Arm{PI: p.PI[c], X: a.ActiveSize(c)}
			stack = append(stack, arm)
			dir := &Allocate{Arms: append([]Arm(nil), stack...), For: c}
			p.PreLoop[c] = append(p.PreLoop[c], dir)
			walk(c)
			stack = stack[:len(stack)-1] // DELETE last elements on loop exit
		}
	}
	walk(a.Info.Root)
}

// insertLocks implements Algorithm 2 (Figure 4): inside every loop body,
// arrays referenced before the next inner loop get locked with PJ equal to
// the enclosing loop's priority index; an EXIT in the scanned segment
// suppresses the insertion.
func (p *Plan) insertLocks(info *sem.Info) {
	var walk func(l *sem.Loop)
	walk = func(l *sem.Loop) {
		if l.Stmt != nil {
			p.scanBody(l, l.Stmt.Body)
		}
		for _, c := range l.Children {
			walk(c)
		}
	}
	for _, top := range info.Root.Children {
		walk(top)
	}
}

// scanBody scans the direct statements of loop l, collecting array
// references between inner loops and attaching LOCK directives.
func (p *Plan) scanBody(l *sem.Loop, body []fortran.Stmt) {
	var arrays []string
	var refs []*sem.ArrayRef
	seen := map[string]bool{}
	exitFound := false

	collectStmt := func(s fortran.Stmt) {
		fortran.WalkExprs(s, func(e fortran.Expr) {
			r, ok := e.(*fortran.RefExpr)
			if !ok || r.IsScalar() {
				return
			}
			for _, ar := range l.Refs {
				if ar.Ref == r {
					if !seen[ar.Array.Name] {
						seen[ar.Array.Name] = true
						arrays = append(arrays, ar.Array.Name)
					}
					refs = append(refs, ar)
				}
			}
		})
	}

	var scan func(stmts []fortran.Stmt)
	scan = func(stmts []fortran.Stmt) {
		for _, s := range stmts {
			switch st := s.(type) {
			case *fortran.DoStmt:
				// Next inner loop discovered: insert the pending LOCK.
				inner := p.loopFor(st)
				if len(arrays) > 0 && !exitFound && inner != nil {
					lk := &Lock{
						PJ:     p.PI[l],
						Arrays: arrays,
						Refs:   refs,
						Site:   l,
						Before: inner,
						ID:     len(p.Locks),
					}
					p.PreLoop[inner] = append(p.PreLoop[inner], lk)
					p.Locks = append(p.Locks, lk)
				}
				arrays, refs, seen = nil, nil, map[string]bool{}
				exitFound = false
			case *fortran.ExitStmt:
				exitFound = true
			case *fortran.IfStmt:
				collectStmt(st)
				// EXITs nested in IF branches also suppress locking; array
				// refs inside branches still count as part of the segment.
				scanBranches(st, &exitFound)
				scan(st.Then)
				scan(st.Else)
			default:
				collectStmt(s)
			}
		}
	}
	scan(body)
}

// scanBranches marks exitFound if any EXIT occurs in the IF's branches
// outside nested loops.
func scanBranches(ifs *fortran.IfStmt, exitFound *bool) {
	var rec func(stmts []fortran.Stmt)
	rec = func(stmts []fortran.Stmt) {
		for _, s := range stmts {
			switch st := s.(type) {
			case *fortran.ExitStmt:
				*exitFound = true
			case *fortran.IfStmt:
				rec(st.Then)
				rec(st.Else)
			}
		}
	}
	rec(ifs.Then)
	rec(ifs.Else)
}

// loopFor finds the sem.Loop for a DoStmt.
func (p *Plan) loopFor(st *fortran.DoStmt) *sem.Loop {
	for _, l := range p.Analysis.Info.Loops {
		if l.Stmt == st {
			return l
		}
	}
	return nil
}

// insertUnlocks attaches an UNLOCK after each outermost loop releasing all
// arrays locked anywhere within it.
func (p *Plan) insertUnlocks(info *sem.Info) {
	for _, top := range info.Root.Children {
		var arrays []string
		seen := map[string]bool{}
		for _, lk := range p.Locks {
			if !top.Encloses(lk.Site) {
				continue
			}
			for _, a := range lk.Arrays {
				if !seen[a] {
					seen[a] = true
					arrays = append(arrays, a)
				}
			}
		}
		if len(arrays) > 0 {
			p.PostLoop[top] = append(p.PostLoop[top], &Unlock{Arrays: arrays, After: top})
		}
	}
}

// Render prints the program's loop skeleton with the inserted directives,
// in the style of Figure 5c.
func (p *Plan) Render() string {
	var b strings.Builder
	var rec func(l *sem.Loop, depth int)
	rec = func(l *sem.Loop, depth int) {
		var pad string
		if depth > 0 {
			pad = strings.Repeat("  ", depth)
		}
		if l.Stmt != nil {
			for _, d := range p.PreLoop[l] {
				fmt.Fprintf(&b, "%s%s\n", pad, d)
			}
			fmt.Fprintf(&b, "%s%s (PI=%d)\n", pad, l.Label(), p.PI[l])
		}
		for _, c := range l.Children {
			rec(c, depth+1)
		}
		if l.Stmt != nil {
			for _, d := range p.PostLoop[l] {
				fmt.Fprintf(&b, "%s%s\n", pad, d)
			}
		}
	}
	rec(p.Analysis.Info.Root, -1)
	return b.String()
}
