package directive

import (
	"strings"
	"testing"
	"testing/quick"

	"cdmm/internal/fortran"
	"cdmm/internal/locality"
	"cdmm/internal/mem"
	"cdmm/internal/sem"
)

// figure5Src reconstructs the paper's Figure 5a loop structure (see the
// locality package tests for the array-contribution calibration).
const figure5Src = `
PROGRAM FIG5
PARAMETER (N = 100)
DIMENSION A(N), B(N), C(N), D(N), E(N), F(N), CC(N,N), DD(N,N)
DO 4 I = 1, N
  A(I) = B(I) + 1.0
  DO 2 J = 1, N
    C(J) = D(J) + CC(I,J) + DD(J,I)
2 CONTINUE
  DO 3 K = 1, N
    E(K) = F(K) * 2.0
    DO 1 M = 1, N
      E(K) = E(K) + F(M)
1   CONTINUE
3 CONTINUE
4 CONTINUE
END
`

func planFor(t *testing.T, src string) *Plan {
	t.Helper()
	prog, err := fortran.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	layout, err := mem.NewLayout(prog, mem.DefaultGeometry)
	if err != nil {
		t.Fatalf("layout: %v", err)
	}
	return Build(locality.Analyze(info, layout, locality.DefaultParams))
}

// TestFigure2PriorityAssignment reproduces the Figure 2 example: a nest
// where the outermost loop encloses a depth-3 chain and a depth-1 leaf;
// merging paths take the maximum.
func TestFigure2PriorityAssignment(t *testing.T) {
	p := planFor(t, `
PROGRAM FIG2
DIMENSION V(10)
DO 40 I = 1, 10
  DO 20 J = 1, 10
    DO 10 K = 1, 10
      V(K) = 1.0
10  CONTINUE
20 CONTINUE
  DO 30 L = 1, 10
    V(L) = 2.0
30 CONTINUE
40 CONTINUE
END
`)
	loops := p.Analysis.Info.Loops
	byLabel := map[string]*sem.Loop{}
	for _, l := range loops {
		byLabel[l.Stmt.Label] = l
	}
	want := map[string]int{"40": 3, "20": 2, "10": 1, "30": 1}
	for label, pi := range want {
		if got := p.PI[byLabel[label]]; got != pi {
			t.Errorf("PI(DO %s) = %d, want %d", label, got, pi)
		}
	}
	if p.MaxPI != 3 {
		t.Errorf("MaxPI = %d, want 3", p.MaxPI)
	}
}

// TestFigure5AllocateChains verifies the exact ALLOCATE argument lists of
// Figure 5c: (3,x1) everywhere first; (1,x2) for loop 2; (2,x3) for loop 3
// carried into loop 1's (3,x1) else (2,x3) else (1,x4).
func TestFigure5AllocateChains(t *testing.T) {
	p := planFor(t, figure5Src)
	byLabel := map[string]*sem.Loop{}
	for _, l := range p.Analysis.Info.Loops {
		byLabel[l.Stmt.Label] = l
	}
	loop4, loop2, loop3, loop1 := byLabel["4"], byLabel["2"], byLabel["3"], byLabel["1"]

	x1 := p.Analysis.ActiveSize(loop4)
	x2 := p.Analysis.ActiveSize(loop2)
	x3 := p.Analysis.ActiveSize(loop3)
	x4 := p.Analysis.ActiveSize(loop1)

	check := func(l *sem.Loop, want []Arm) {
		t.Helper()
		a := p.AllocateFor(l)
		if a == nil {
			t.Fatalf("no ALLOCATE for %s", l.Label())
		}
		if len(a.Arms) != len(want) {
			t.Fatalf("%s: %d arms %v, want %d", l.Label(), len(a.Arms), a.Arms, len(want))
		}
		for i := range want {
			if a.Arms[i] != want[i] {
				t.Errorf("%s arm %d = %+v, want %+v", l.Label(), i, a.Arms[i], want[i])
			}
		}
	}
	check(loop4, []Arm{{3, x1}})
	check(loop2, []Arm{{3, x1}, {1, x2}})
	check(loop3, []Arm{{3, x1}, {2, x3}})
	check(loop1, []Arm{{3, x1}, {2, x3}, {1, x4}})
}

// TestFigure5Locks verifies LOCK (3,A,B) precedes loop 2 and LOCK (2,E,F)
// precedes loop 1, and the closing UNLOCK covers A,B,E,F.
func TestFigure5Locks(t *testing.T) {
	p := planFor(t, figure5Src)
	byLabel := map[string]*sem.Loop{}
	for _, l := range p.Analysis.Info.Loops {
		byLabel[l.Stmt.Label] = l
	}
	lk2 := p.LockFor(byLabel["2"])
	if lk2 == nil {
		t.Fatal("no LOCK before loop 2")
	}
	if lk2.PJ != 3 {
		t.Errorf("LOCK before loop 2: PJ = %d, want 3", lk2.PJ)
	}
	if got := strings.Join(lk2.Arrays, ","); got != "A,B" {
		t.Errorf("LOCK before loop 2 arrays = %s, want A,B", got)
	}

	lk1 := p.LockFor(byLabel["1"])
	if lk1 == nil {
		t.Fatal("no LOCK before loop 1")
	}
	if lk1.PJ != 2 {
		t.Errorf("LOCK before loop 1: PJ = %d, want 2", lk1.PJ)
	}
	if got := strings.Join(lk1.Arrays, ","); got != "E,F" {
		t.Errorf("LOCK before loop 1 arrays = %s, want E,F", got)
	}

	// No LOCK between loop 2 and loop 3 (no array statements in between).
	if lk3 := p.LockFor(byLabel["3"]); lk3 != nil {
		t.Errorf("unexpected LOCK before loop 3: %v", lk3)
	}

	post := p.PostLoop[byLabel["4"]]
	if len(post) != 1 {
		t.Fatalf("post-loop directives = %d, want 1 UNLOCK", len(post))
	}
	ul := post[0].(*Unlock)
	if got := strings.Join(ul.Arrays, ","); got != "A,B,E,F" {
		t.Errorf("UNLOCK arrays = %s, want A,B,E,F", got)
	}
}

// TestFigure5Render is the golden rendering of Figure 5c's shape.
func TestFigure5Render(t *testing.T) {
	p := planFor(t, figure5Src)
	out := p.Render()
	for _, want := range []string{
		"LOCK (3,A,B)",
		"LOCK (2,E,F)",
		"UNLOCK (A,B,E,F)",
		"else",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
	// LOCK must precede the ALLOCATE of the loop it guards, as in Figure 5c.
	li := strings.Index(out, "LOCK (3,A,B)")
	ai := strings.Index(out, "ALLOCATE (3,")
	ai2 := strings.Index(out[li:], "ALLOCATE")
	if li < 0 || ai < 0 || ai2 < 0 {
		t.Fatalf("missing directives in rendering:\n%s", out)
	}
}

func TestAllocateString(t *testing.T) {
	a := &Allocate{Arms: []Arm{{3, 111}, {1, 4}}}
	if got, want := a.String(), "ALLOCATE (3,111) else (1,4)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestExitSuppressesLock(t *testing.T) {
	p := planFor(t, `
PROGRAM P
DIMENSION A(100), B(100)
DO I = 1, 100
  A(I) = 1.0
  IF (A(I) .GT. 50.0) EXIT
  DO J = 1, 100
    B(J) = A(I)
  END DO
END DO
END
`)
	inner := p.Analysis.Info.Root.Children[0].Children[0]
	if lk := p.LockFor(inner); lk != nil {
		t.Errorf("EXIT in scanned segment should suppress LOCK, got %v", lk)
	}
}

func TestLockArraysBetweenLoops(t *testing.T) {
	p := planFor(t, `
PROGRAM P
DIMENSION A(100), B(100), C(100)
DO I = 1, 100
  DO J = 1, 100
    A(J) = 1.0
  END DO
  B(I) = 2.0
  C(I) = 3.0
  DO K = 1, 100
    A(K) = B(I)
  END DO
END DO
END
`)
	outer := p.Analysis.Info.Root.Children[0]
	loopJ, loopK := outer.Children[0], outer.Children[1]
	if lk := p.LockFor(loopJ); lk != nil {
		t.Errorf("no arrays before first inner loop; got LOCK %v", lk)
	}
	lk := p.LockFor(loopK)
	if lk == nil {
		t.Fatal("expected LOCK before second inner loop")
	}
	if got := strings.Join(lk.Arrays, ","); got != "B,C" {
		t.Errorf("locked arrays = %s, want B,C", got)
	}
}

// Property tests over random loop shapes: PI(leaf) == 1, PI(parent) >
// PI(child) along every chain, PI(outermost of deepest chain) == chain
// height, and ALLOCATE chains mirror the ancestor path.
func TestPriorityProperties(t *testing.T) {
	f := func(shape uint16) bool {
		src := randomNestSource(uint64(shape))
		prog, err := fortran.Parse(src)
		if err != nil {
			return false
		}
		info, err := sem.Analyze(prog)
		if err != nil {
			return false
		}
		layout, err := mem.NewLayout(prog, mem.DefaultGeometry)
		if err != nil {
			return false
		}
		p := Build(locality.Analyze(info, layout, locality.DefaultParams))
		for _, l := range info.Loops {
			if l.IsLeaf() && p.PI[l] != 1 {
				return false
			}
			if l.Parent.Stmt != nil && p.PI[l.Parent] <= p.PI[l] {
				return false
			}
			if p.PI[l] != l.Height() {
				return false
			}
			// ALLOCATE arm count equals the nest depth of the loop.
			a := p.AllocateFor(l)
			if a == nil || len(a.Arms) != l.Depth {
				return false
			}
			// Arms are strictly decreasing in PI and non-increasing in X.
			for i := 1; i < len(a.Arms); i++ {
				if a.Arms[i].PI >= a.Arms[i-1].PI {
					return false
				}
				if a.Arms[i].X > a.Arms[i-1].X {
					return false
				}
			}
			// Last arm is the loop's own (PI, X).
			last := a.Arms[len(a.Arms)-1]
			if last.PI != p.PI[l] || last.X != p.Analysis.ActiveSize(l) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// randomNestSource builds a random loop nest over a handful of arrays.
func randomNestSource(seed uint64) string {
	rng := func() uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed >> 33
	}
	var b strings.Builder
	b.WriteString("PROGRAM R\nDIMENSION A(64,8), V(256), W(100)\n")
	varNames := []string{"I", "J", "K", "L", "M", "N2", "I2", "J2"}
	vi := 0
	var gen func(depth int)
	gen = func(depth int) {
		v := varNames[vi%len(varNames)]
		vi++
		b.WriteString(strings.Repeat(" ", depth))
		b.WriteString("DO " + v + " = 1, 8\n")
		switch rng() % 3 {
		case 0:
			b.WriteString(strings.Repeat(" ", depth+1) + "V(" + v + ") = 1.0\n")
		case 1:
			b.WriteString(strings.Repeat(" ", depth+1) + "A(" + v + ",1) = 2.0\n")
		default:
			b.WriteString(strings.Repeat(" ", depth+1) + "W(" + v + ") = V(" + v + ")\n")
		}
		if depth < 3 {
			kids := int(rng() % 3) // 0..2 nested loops
			for i := 0; i < kids && vi < 8; i++ {
				gen(depth + 1)
			}
		}
		b.WriteString(strings.Repeat(" ", depth))
		b.WriteString("END DO\n")
	}
	n := int(rng()%2) + 1
	for i := 0; i < n && vi < 6; i++ {
		gen(0)
	}
	b.WriteString("END\n")
	return b.String()
}
