package sem

import (
	"testing"

	"cdmm/internal/fortran"
)

const figure1Src = `
PROGRAM FIG1
DIMENSION E(200,100), F(200,100), G(200,10), H(200,10)
DO 10 I = 1, 10
  DO 20 K = 1, 100
    E(I,K) = F(I,K) + 1.0
20  CONTINUE
  DO 30 K = 1, 200
    G(K,I) = H(K,I)
30  CONTINUE
10 CONTINUE
END
`

func analyze(t *testing.T, src string) *Info {
	t.Helper()
	prog, err := fortran.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := Analyze(prog)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return info
}

func TestLoopTreeFigure1(t *testing.T) {
	info := analyze(t, figure1Src)
	if len(info.Loops) != 3 {
		t.Fatalf("loops = %d, want 3", len(info.Loops))
	}
	outer := info.Root.Children[0]
	if outer.Depth != 1 {
		t.Errorf("outer depth = %d, want 1", outer.Depth)
	}
	if len(outer.Children) != 2 {
		t.Fatalf("outer children = %d, want 2", len(outer.Children))
	}
	for _, c := range outer.Children {
		if c.Depth != 2 {
			t.Errorf("inner loop depth = %d, want 2", c.Depth)
		}
		if c.Parent != outer {
			t.Errorf("inner loop parent wrong")
		}
	}
	if outer.MaxDepth() != 2 {
		t.Errorf("Δ = %d, want 2", outer.MaxDepth())
	}
	if outer.Height() != 2 {
		t.Errorf("height = %d, want 2", outer.Height())
	}
}

func TestRefOrderClassification(t *testing.T) {
	info := analyze(t, figure1Src)
	outer := info.Root.Children[0]
	loop20, loop30 := outer.Children[0], outer.Children[1]

	// E(I,K) inside loop 20 (K inner): column subscript K varies with the
	// deeper loop -> row-wise.
	for _, r := range loop20.Refs {
		if got := r.Order(); got != OrderRowWise {
			t.Errorf("%s in loop 20: order = %v, want row-wise", r.Array.Name, got)
		}
	}
	// G(K,I) inside loop 30 (K inner): row subscript varies with the deeper
	// loop -> column-wise.
	for _, r := range loop30.Refs {
		if got := r.Order(); got != OrderColumnWise {
			t.Errorf("%s in loop 30: order = %v, want column-wise", r.Array.Name, got)
		}
	}
}

func TestVectorAndDiagonalOrders(t *testing.T) {
	info := analyze(t, `
PROGRAM P
DIMENSION V(100), A(50,50)
DO I = 1, 50
  V(I) = A(I,I) + A(I,3) + A(3,I)
END DO
END
`)
	loop := info.Root.Children[0]
	byName := func(i int) *ArrayRef { return loop.Refs[i] }
	if got := byName(0).Order(); got != OrderVector {
		t.Errorf("V(I): %v, want vector", got)
	}
	if got := byName(1).Order(); got != OrderDiagonal {
		t.Errorf("A(I,I): %v, want diagonal", got)
	}
	if got := byName(2).Order(); got != OrderColumnWise {
		t.Errorf("A(I,3): %v, want column-wise", got)
	}
	if got := byName(3).Order(); got != OrderRowWise {
		t.Errorf("A(3,I): %v, want row-wise", got)
	}
}

func TestInvariantRef(t *testing.T) {
	info := analyze(t, `
PROGRAM P
DIMENSION V(10)
DO I = 1, 5
  X = V(3)
END DO
END
`)
	r := info.Root.Children[0].Refs[0]
	if got := r.Order(); got != OrderNone {
		t.Errorf("V(3): %v, want invariant", got)
	}
	if r.RowDriver != nil {
		t.Errorf("V(3) should have no row driver")
	}
}

func TestDriversAcrossLevels(t *testing.T) {
	info := analyze(t, `
PROGRAM P
DIMENSION A(64,64)
DO J = 1, 64
  DO I = 1, 64
    A(I,J) = 1.0
  END DO
END DO
END
`)
	outer := info.Root.Children[0]
	inner := outer.Children[0]
	r := inner.Refs[0]
	if r.RowDriver != inner {
		t.Errorf("row driver should be inner loop, got %v", r.RowDriver.Label())
	}
	if r.ColDriver != outer {
		t.Errorf("col driver should be outer loop, got %v", r.ColDriver.Label())
	}
	if r.Order() != OrderColumnWise {
		t.Errorf("A(I,J) I-inner should be column-wise, got %v", r.Order())
	}
}

func TestDistinctKeyCounting(t *testing.T) {
	// The paper's example: W = V(I) + V(I+1) + V(J) has three distinct
	// indexed variables.
	info := analyze(t, `
PROGRAM P
DIMENSION V(600)
DO I = 1, 100
  DO J = 1, 100
    W = V(I) + V(I+1) + V(J) + V(I)
  END DO
END DO
END
`)
	inner := info.Root.Children[0].Children[0]
	if got := DistinctKeys(inner.Refs); got != 3 {
		t.Errorf("X = %d, want 3 (V(I), V(I+1), V(J); duplicate V(I) merges)", got)
	}
}

func TestXrXcCounting(t *testing.T) {
	// The paper's example: A(I,J)+A(I+1,J)+A(I,J+1)+A(I+1,J+1):
	// Xr = 2 (I, I+1), Xc = 2 (J, J+1).
	info := analyze(t, `
PROGRAM P
DIMENSION A(200,200)
DO J = 1, 199
  DO I = 1, 199
    W = A(I,J) + A(I+1,J) + A(I,J+1) + A(I+1,J+1)
  END DO
END DO
END
`)
	inner := info.Root.Children[0].Children[0]
	if got := DistinctRowKeys(inner.Refs); got != 2 {
		t.Errorf("Xr = %d, want 2", got)
	}
	if got := DistinctColKeys(inner.Refs); got != 2 {
		t.Errorf("Xc = %d, want 2", got)
	}
	if got := DistinctKeys(inner.Refs); got != 4 {
		t.Errorf("X = %d, want 4", got)
	}
}

func TestSemanticErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"undeclared array", "PROGRAM P\nA(1) = 0.0\nEND\n"},
		{"wrong arity", "PROGRAM P\nDIMENSION A(5,5)\nA(1) = 0.0\nEND\n"},
		{"array without subscripts", "PROGRAM P\nDIMENSION A(5)\nX = A\nEND\n"},
		{"real loop variable", "PROGRAM P\nDO X = 1, 5\nY = 1.0\nEND DO\nEND\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			prog, err := fortran.Parse(c.src)
			if err != nil {
				t.Fatalf("parse should succeed, sem should fail: %v", err)
			}
			if _, err := Analyze(prog); err == nil {
				t.Errorf("expected semantic error")
			}
		})
	}
}

func TestEnclosesAndSubtreeRefs(t *testing.T) {
	info := analyze(t, figure1Src)
	outer := info.Root.Children[0]
	loop20 := outer.Children[0]
	if !outer.Encloses(loop20) {
		t.Error("outer should enclose loop 20")
	}
	if loop20.Encloses(outer) {
		t.Error("loop 20 should not enclose outer")
	}
	if !outer.Encloses(outer) {
		t.Error("a loop encloses itself")
	}
	refs := outer.SubtreeRefs()
	if len(refs) != 4 {
		t.Errorf("subtree refs = %d, want 4 (E,F,G,H)", len(refs))
	}
	names := ArraysReferenced(outer)
	want := []string{"E", "F", "G", "H"}
	if len(names) != len(want) {
		t.Fatalf("arrays = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("arrays[%d] = %s, want %s", i, names[i], want[i])
		}
	}
}

func TestDeepNestDepths(t *testing.T) {
	info := analyze(t, `
PROGRAM P
DIMENSION A(10,10)
DO I = 1, 2
  DO J = 1, 2
    DO K = 1, 2
      A(K,J) = FLOAT(I)
    END DO
  END DO
END DO
END
`)
	if len(info.Loops) != 3 {
		t.Fatalf("loops = %d", len(info.Loops))
	}
	depths := []int{1, 2, 3}
	for i, l := range info.Loops {
		if l.Depth != depths[i] {
			t.Errorf("loop %d depth = %d, want %d", i, l.Depth, depths[i])
		}
	}
	if got := info.Root.Children[0].MaxDepth(); got != 3 {
		t.Errorf("Δ = %d, want 3", got)
	}
	if got := info.Root.Children[0].Height(); got != 3 {
		t.Errorf("height = %d, want 3", got)
	}
}

func TestRefsOutsideLoops(t *testing.T) {
	info := analyze(t, "PROGRAM P\nDIMENSION V(5)\nV(1) = 2.0\nEND\n")
	if len(info.Root.Refs) != 1 {
		t.Fatalf("root refs = %d, want 1", len(info.Root.Refs))
	}
	if info.Root.Refs[0].Order() != OrderNone {
		t.Errorf("ref outside loops should be invariant")
	}
}
