// Package sem performs semantic analysis over the FORTRAN subset:
// it checks declarations against uses, builds the loop-nest tree, and
// classifies every array reference by which enclosing loop drives each
// subscript. This classification is the raw material for the paper's §2
// locality parameters: Δ (nest depth), Λ (reference level), X (distinct
// index expressions) and Θ (order of reference).
package sem

import (
	"fmt"
	"sort"
	"strings"

	"cdmm/internal/fortran"
)

// Info is the result of analyzing a program.
type Info struct {
	Prog  *fortran.Program
	Root  *Loop   // synthetic depth-0 loop covering the whole program body
	Loops []*Loop // all real loops in preorder (Root excluded)
}

// Loop is a node in the loop-nest tree. The synthetic root has Stmt == nil
// and Depth == 0; real loops have Depth Λ ≥ 1 with Λ = 1 the outermost.
type Loop struct {
	ID       int // preorder index; 0 for the root
	Stmt     *fortran.DoStmt
	Parent   *Loop
	Children []*Loop
	Depth    int         // the paper's Λ
	Refs     []*ArrayRef // array refs directly in this loop's body (not in nested loops)
}

// Var returns the loop control variable, or "" for the root.
func (l *Loop) Var() string {
	if l.Stmt == nil {
		return ""
	}
	return l.Stmt.Var
}

// Key returns a stable identifier for the loop usable as a directive-set
// override key: the FORTRAN statement label when present, else "L<line>".
func (l *Loop) Key() string {
	if l.Stmt == nil {
		return ""
	}
	if l.Stmt.Label != "" {
		return l.Stmt.Label
	}
	return fmt.Sprintf("L%d", l.Stmt.Line)
}

// Label returns a display name for the loop.
func (l *Loop) Label() string {
	if l.Stmt == nil {
		return "<program>"
	}
	if l.Stmt.Label != "" {
		return "DO " + l.Stmt.Label
	}
	return fmt.Sprintf("DO(%s)@%d", l.Stmt.Var, l.Stmt.Line)
}

// Path returns the loop-nest chain from the outermost loop down to l,
// " / "-joined (e.g. "DO 40 / DO 30"); "" for the root. It is the nest
// identity the trace site side-band and fault-attribution ledger report.
func (l *Loop) Path() string {
	if l.Stmt == nil {
		return ""
	}
	var labels []string
	for n := l; n != nil && n.Stmt != nil; n = n.Parent {
		labels = append(labels, n.Label())
	}
	var b strings.Builder
	for i := len(labels) - 1; i >= 0; i-- {
		b.WriteString(labels[i])
		if i > 0 {
			b.WriteString(" / ")
		}
	}
	return b.String()
}

// Encloses reports whether l encloses other (or l == other).
func (l *Loop) Encloses(other *Loop) bool {
	for n := other; n != nil; n = n.Parent {
		if n == l {
			return true
		}
	}
	return false
}

// IsLeaf reports whether the loop contains no nested loops.
func (l *Loop) IsLeaf() bool { return len(l.Children) == 0 }

// MaxDepth returns Δ, the maximum nest depth within this loop's subtree
// measured from the outermost level (a single un-nested loop has Δ = 1).
func (l *Loop) MaxDepth() int {
	d := l.Depth
	for _, c := range l.Children {
		if m := c.MaxDepth(); m > d {
			d = m
		}
	}
	return d
}

// Height returns the paper's priority index quantity: 1 for leaves, and
// 1 + max(child height) otherwise (Procedure 1, Figure 2).
func (l *Loop) Height() int {
	h := 0
	for _, c := range l.Children {
		if ch := c.Height(); ch > h {
			h = ch
		}
	}
	return h + 1
}

// SubtreeRefs returns all array references in l's body including nested
// loops, in source order.
func (l *Loop) SubtreeRefs() []*ArrayRef {
	var out []*ArrayRef
	var walk func(n *Loop)
	walk = func(n *Loop) {
		out = append(out, n.Refs...)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(l)
	return out
}

// RefOrder is the paper's Θ, the order of reference of an array.
type RefOrder int

const (
	// OrderNone: no subscript varies with any enclosing loop (constant ref).
	OrderNone RefOrder = iota
	// OrderVector: one-dimensional array reference.
	OrderVector
	// OrderColumnWise: the row subscript varies with a deeper loop than the
	// column subscript — the reference walks down columns (fast stride 1 in
	// column-major storage).
	OrderColumnWise
	// OrderRowWise: the column subscript varies with a deeper loop — the
	// reference walks along rows (stride M).
	OrderRowWise
	// OrderDiagonal: both subscripts vary with the same loop.
	OrderDiagonal
)

// String returns the Θ name used in reports.
func (o RefOrder) String() string {
	switch o {
	case OrderVector:
		return "vector"
	case OrderColumnWise:
		return "column-wise"
	case OrderRowWise:
		return "row-wise"
	case OrderDiagonal:
		return "diagonal"
	default:
		return "invariant"
	}
}

// ArrayRef is one source-level array reference with its loop context.
type ArrayRef struct {
	Array *fortran.ArrayDecl
	Ref   *fortran.RefExpr
	Loop  *Loop // innermost enclosing loop (possibly the root)

	// RowDriver is the deepest enclosing loop whose control variable
	// appears in the first (row) subscript; nil if the subscript is
	// loop-invariant. ColDriver is the same for the second subscript
	// (nil for vectors).
	RowDriver *Loop
	ColDriver *Loop

	// Key is the canonical text of the subscript tuple, used to count the
	// paper's X parameter (number of distinct indexed variables).
	Key string
}

// Order classifies the reference's Θ.
func (r *ArrayRef) Order() RefOrder {
	if r.Array.IsVector() {
		if r.RowDriver == nil {
			return OrderNone
		}
		return OrderVector
	}
	rd, cd := r.RowDriver, r.ColDriver
	switch {
	case rd == nil && cd == nil:
		return OrderNone
	case rd != nil && cd == nil:
		return OrderColumnWise // walks down a fixed column
	case rd == nil && cd != nil:
		return OrderRowWise // walks along a fixed row
	case rd == cd:
		return OrderDiagonal
	case rd.Depth > cd.Depth:
		return OrderColumnWise
	default:
		return OrderRowWise
	}
}

// Analyze builds the loop tree and reference classification for prog.
func Analyze(prog *fortran.Program) (*Info, error) {
	info := &Info{
		Prog: prog,
		Root: &Loop{ID: 0, Depth: 0},
	}
	a := &analyzer{info: info, prog: prog}
	if err := a.stmts(prog.Body, info.Root); err != nil {
		return nil, err
	}
	return info, nil
}

type analyzer struct {
	info   *Info
	prog   *fortran.Program
	nextID int
}

func (a *analyzer) stmts(stmts []fortran.Stmt, cur *Loop) error {
	for _, s := range stmts {
		switch st := s.(type) {
		case *fortran.DoStmt:
			a.nextID++
			loop := &Loop{
				ID:     a.nextID,
				Stmt:   st,
				Parent: cur,
				Depth:  cur.Depth + 1,
			}
			cur.Children = append(cur.Children, loop)
			a.info.Loops = append(a.info.Loops, loop)
			if !fortran.ImplicitInteger(st.Var) {
				return fmt.Errorf("line %d: loop variable %s must be integer (I-N)", st.Line, st.Var)
			}
			if a.prog.Array(st.Var) != nil {
				return fmt.Errorf("line %d: loop variable %s collides with an array name", st.Line, st.Var)
			}
			// Loop bounds may reference arrays too (rare but legal).
			if err := a.exprRefs(st.From, cur); err != nil {
				return err
			}
			if err := a.exprRefs(st.To, cur); err != nil {
				return err
			}
			if st.Step != nil {
				if err := a.exprRefs(st.Step, cur); err != nil {
					return err
				}
			}
			if err := a.stmts(st.Body, loop); err != nil {
				return err
			}
		case *fortran.AssignStmt:
			if err := a.exprRefs(st.LHS, cur); err != nil {
				return err
			}
			if err := a.exprRefs(st.RHS, cur); err != nil {
				return err
			}
		case *fortran.IfStmt:
			if err := a.exprRefs(st.Cond, cur); err != nil {
				return err
			}
			if err := a.stmts(st.Then, cur); err != nil {
				return err
			}
			if err := a.stmts(st.Else, cur); err != nil {
				return err
			}
		case *fortran.ExitStmt, *fortran.CycleStmt:
			if cur.Stmt == nil {
				return fmt.Errorf("line %d: EXIT/CYCLE outside of a DO loop", s.Pos())
			}
		}
	}
	return nil
}

// exprRefs records array references in e against loop cur, validating
// subscript arity, and recursing into subscripts.
func (a *analyzer) exprRefs(e fortran.Expr, cur *Loop) error {
	switch x := e.(type) {
	case *fortran.RefExpr:
		decl := a.prog.Array(x.Name)
		if len(x.Subs) > 0 {
			if decl == nil {
				return fmt.Errorf("line %d: %s referenced with subscripts but not declared", x.Line, x.Name)
			}
			if len(x.Subs) != len(decl.Dims) {
				return fmt.Errorf("line %d: %s has %d dimensions but %d subscripts", x.Line, x.Name, len(decl.Dims), len(x.Subs))
			}
			ref := &ArrayRef{
				Array: decl,
				Ref:   x,
				Loop:  cur,
				Key:   subscriptKey(x.Subs),
			}
			ref.RowDriver = deepestDriver(x.Subs[0], cur)
			if len(x.Subs) == 2 {
				ref.ColDriver = deepestDriver(x.Subs[1], cur)
			}
			cur.Refs = append(cur.Refs, ref)
			for _, sub := range x.Subs {
				if err := a.exprRefs(sub, cur); err != nil {
					return err
				}
			}
		} else if decl != nil {
			return fmt.Errorf("line %d: array %s referenced without subscripts", x.Line, x.Name)
		}
	case *fortran.CallExpr:
		for _, arg := range x.Args {
			if err := a.exprRefs(arg, cur); err != nil {
				return err
			}
		}
	case *fortran.BinExpr:
		if err := a.exprRefs(x.L, cur); err != nil {
			return err
		}
		return a.exprRefs(x.R, cur)
	case *fortran.UnExpr:
		return a.exprRefs(x.X, cur)
	}
	return nil
}

// deepestDriver finds the deepest loop (starting from cur and walking out)
// whose control variable occurs in the subscript expression.
func deepestDriver(sub fortran.Expr, cur *Loop) *Loop {
	vars := map[string]bool{}
	collectVars(sub, vars)
	for l := cur; l != nil && l.Stmt != nil; l = l.Parent {
		if vars[l.Var()] {
			return l
		}
	}
	return nil
}

func collectVars(e fortran.Expr, out map[string]bool) {
	switch x := e.(type) {
	case *fortran.RefExpr:
		if x.IsScalar() {
			out[x.Name] = true
		}
		for _, s := range x.Subs {
			collectVars(s, out)
		}
	case *fortran.CallExpr:
		for _, a := range x.Args {
			collectVars(a, out)
		}
	case *fortran.BinExpr:
		collectVars(x.L, out)
		collectVars(x.R, out)
	case *fortran.UnExpr:
		collectVars(x.X, out)
	}
}

// subscriptKey canonicalizes a subscript tuple for distinct-index counting.
func subscriptKey(subs []fortran.Expr) string {
	parts := make([]string, len(subs))
	for i, s := range subs {
		parts[i] = fortran.FormatExpr(s)
	}
	return strings.Join(parts, ",")
}

// DistinctKeys returns the number of distinct subscript tuples among refs
// (the paper's X counting: "W = V(I) + V(I+1) + V(J)" has three).
func DistinctKeys(refs []*ArrayRef) int {
	seen := map[string]bool{}
	for _, r := range refs {
		seen[r.Key] = true
	}
	return len(seen)
}

// DistinctRowKeys counts distinct first-subscript expressions (the paper's
// Xr); DistinctColKeys counts distinct second-subscript expressions (Xc).
func DistinctRowKeys(refs []*ArrayRef) int {
	seen := map[string]bool{}
	for _, r := range refs {
		seen[fortran.FormatExpr(r.Ref.Subs[0])] = true
	}
	return len(seen)
}

// DistinctColKeys counts distinct second-subscript expressions (Xc).
// Vector references count as one column.
func DistinctColKeys(refs []*ArrayRef) int {
	seen := map[string]bool{}
	for _, r := range refs {
		if len(r.Ref.Subs) < 2 {
			seen[""] = true
			continue
		}
		seen[fortran.FormatExpr(r.Ref.Subs[1])] = true
	}
	return len(seen)
}

// ArraysReferenced returns the names of all arrays referenced anywhere in
// the loop subtree, sorted.
func ArraysReferenced(l *Loop) []string {
	set := map[string]bool{}
	for _, r := range l.SubtreeRefs() {
		set[r.Array.Name] = true
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
