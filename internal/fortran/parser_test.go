package fortran

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// mustParse parses known-good test source, failing the test on error
// (the library itself no longer offers a panicking parse).
func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

const figure1Src = `
PROGRAM FIG1
DIMENSION E(200,100), F(200,100), G(200,10), H(200,10)
DO 10 I = 1, 10
  DO 20 K = 1, 100
    E(I,K) = F(I,K) + 1.0
20  CONTINUE
  DO 30 K = 1, 200
    G(K,I) = H(K,I)
30  CONTINUE
10 CONTINUE
END
`

func TestParseFigure1(t *testing.T) {
	prog, err := Parse(figure1Src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "FIG1" {
		t.Errorf("name = %q, want FIG1", prog.Name)
	}
	if len(prog.Arrays) != 4 {
		t.Fatalf("arrays = %d, want 4", len(prog.Arrays))
	}
	e := prog.Array("E")
	if e == nil || e.Rows() != 200 || e.Cols() != 100 {
		t.Fatalf("array E wrong: %+v", e)
	}
	if len(prog.Body) != 1 {
		t.Fatalf("body = %d stmts, want 1", len(prog.Body))
	}
	outer, ok := prog.Body[0].(*DoStmt)
	if !ok {
		t.Fatalf("body[0] is %T, want *DoStmt", prog.Body[0])
	}
	if outer.Var != "I" || outer.Label != "10" {
		t.Errorf("outer loop: var=%q label=%q", outer.Var, outer.Label)
	}
	if len(outer.Body) != 2 {
		t.Fatalf("outer body = %d stmts, want 2 inner loops", len(outer.Body))
	}
	for i, want := range []string{"20", "30"} {
		inner, ok := outer.Body[i].(*DoStmt)
		if !ok {
			t.Fatalf("outer.Body[%d] is %T", i, outer.Body[i])
		}
		if inner.Label != want {
			t.Errorf("inner loop %d label = %q, want %q", i, inner.Label, want)
		}
	}
}

func TestParseEndDoForm(t *testing.T) {
	src := `
PROGRAM P
DIMENSION A(10)
DO I = 1, 10
  A(I) = 0.0
END DO
DO J = 1, 5
  A(J) = 1.0
ENDDO
END
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Body) != 2 {
		t.Fatalf("body = %d, want 2 loops", len(prog.Body))
	}
}

func TestParseDoWithStep(t *testing.T) {
	prog := mustParse(t, "PROGRAM P\nDIMENSION A(100)\nDO 1 I = 1, 99, 2\nA(I) = 0.0\n1 CONTINUE\nEND\n")
	do := prog.Body[0].(*DoStmt)
	if do.Step == nil {
		t.Fatal("step is nil")
	}
	if n, ok := do.Step.(*NumExpr); !ok || n.Value != 2 {
		t.Errorf("step = %v, want 2", do.Step)
	}
}

func TestParseBlockIfElse(t *testing.T) {
	src := `
PROGRAM P
DIMENSION A(10)
DO I = 1, 10
  IF (A(I) .GT. 0.0) THEN
    A(I) = 1.0
  ELSE
    A(I) = -1.0
  ENDIF
END DO
END
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	do := prog.Body[0].(*DoStmt)
	ifs, ok := do.Body[0].(*IfStmt)
	if !ok {
		t.Fatalf("expected IfStmt, got %T", do.Body[0])
	}
	if len(ifs.Then) != 1 || len(ifs.Else) != 1 {
		t.Errorf("then=%d else=%d, want 1/1", len(ifs.Then), len(ifs.Else))
	}
}

func TestParseElseIfChain(t *testing.T) {
	src := `
PROGRAM P
X = 1.0
IF (X .GT. 2.0) THEN
  X = 2.0
ELSE IF (X .GT. 1.0) THEN
  X = 1.5
ELSE
  X = 0.0
ENDIF
END
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ifs := prog.Body[1].(*IfStmt)
	nested, ok := ifs.Else[0].(*IfStmt)
	if !ok {
		t.Fatalf("else-if should nest an IfStmt, got %T", ifs.Else[0])
	}
	if len(nested.Else) != 1 {
		t.Errorf("nested else = %d stmts, want 1", len(nested.Else))
	}
}

func TestParseLogicalIf(t *testing.T) {
	src := "PROGRAM P\nDIMENSION A(10)\nDO I = 1, 10\nIF (A(I) .LT. 0.0) EXIT\nEND DO\nEND\n"
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	do := prog.Body[0].(*DoStmt)
	ifs := do.Body[0].(*IfStmt)
	if _, ok := ifs.Then[0].(*ExitStmt); !ok {
		t.Errorf("logical IF body should be ExitStmt, got %T", ifs.Then[0])
	}
	if ifs.Else != nil {
		t.Errorf("logical IF should have no else")
	}
}

func TestParseParameterFolding(t *testing.T) {
	src := `
PROGRAM P
PARAMETER (N = 50)
DIMENSION A(N, N)
DO I = 1, N
  A(I,1) = 0.0
END DO
END
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a := prog.Array("A")
	if a.Rows() != 50 || a.Cols() != 50 {
		t.Errorf("A dims = %v, want 50x50", a.Dims)
	}
	do := prog.Body[0].(*DoStmt)
	if n, ok := do.To.(*NumExpr); !ok || n.Value != 50 {
		t.Errorf("loop bound should fold to 50, got %v", do.To)
	}
}

func TestParseIntrinsicVsArray(t *testing.T) {
	src := "PROGRAM P\nDIMENSION V(10)\nX = SQRT(V(3)) + ABS(-2.0)\nEND\n"
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	asn := prog.Body[0].(*AssignStmt)
	bin := asn.RHS.(*BinExpr)
	if _, ok := bin.L.(*CallExpr); !ok {
		t.Errorf("SQRT should parse as CallExpr, got %T", bin.L)
	}
}

func TestParsePrecedence(t *testing.T) {
	src := "PROGRAM P\nX = 1.0 + 2.0 * 3.0 ** 2\nEND\n"
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rhs := prog.Body[0].(*AssignStmt).RHS
	top, ok := rhs.(*BinExpr)
	if !ok || top.Op != "+" {
		t.Fatalf("top op should be +, got %v", rhs)
	}
	mul, ok := top.R.(*BinExpr)
	if !ok || mul.Op != "*" {
		t.Fatalf("right of + should be *, got %v", top.R)
	}
	if pow, ok := mul.R.(*BinExpr); !ok || pow.Op != "**" {
		t.Fatalf("right of * should be **, got %v", mul.R)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"missing END", "PROGRAM P\nX = 1.0\n"},
		{"unterminated DO", "PROGRAM P\nDO 10 I = 1, 5\nX = 1.0\nEND\n"},
		{"three subscripts", "PROGRAM P\nDIMENSION A(2,2)\nA(1,1,1) = 0.0\nEND\n"},
		{"three dims", "PROGRAM P\nDIMENSION A(2,2,2)\nEND\n"},
		{"zero dim", "PROGRAM P\nDIMENSION A(0)\nEND\n"},
		{"double decl", "PROGRAM P\nDIMENSION A(2), A(3)\nEND\n"},
		{"garbage stmt", "PROGRAM P\n= 1.0\nEND\n"},
		{"missing then-endif", "PROGRAM P\nIF (1 .LT. 2) THEN\nX = 1.0\nEND\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Parse(c.src); err == nil {
				t.Errorf("expected error for %q", c.src)
			}
		})
	}
}

func TestFormatRoundTrip(t *testing.T) {
	srcs := []string{
		figure1Src,
		"PROGRAM P\nDIMENSION A(10,10), V(20)\nDO I = 1, 10\nIF (V(I) .GT. 0.0 .AND. I .LT. 5) THEN\nA(I,I) = SQRT(V(I)) ** 2 - 1.0\nELSE\nA(I,1) = -V(I) / 2.0\nENDIF\nEND DO\nEND\n",
	}
	for _, src := range srcs {
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("first parse: %v", err)
		}
		out1 := Format(p1)
		p2, err := Parse(out1)
		if err != nil {
			t.Fatalf("reparse of formatted output failed: %v\n%s", err, out1)
		}
		out2 := Format(p2)
		if out1 != out2 {
			t.Errorf("format not stable:\n--- first\n%s\n--- second\n%s", out1, out2)
		}
	}
}

// TestFormatExprParsesBack property-tests that formatting a random
// expression tree and reparsing yields a tree that formats identically
// (i.e. parenthesization preserves structure).
func TestFormatExprParsesBack(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	gen := func(seed int64) bool {
		e := randomExpr(seed, 0)
		src := "PROGRAM P\nX = " + FormatExpr(e) + "\nEND\n"
		prog, err := Parse(src)
		if err != nil {
			t.Logf("expr %s failed to parse: %v", FormatExpr(e), err)
			return false
		}
		got := FormatExpr(prog.Body[0].(*AssignStmt).RHS)
		want := FormatExpr(e)
		if got != want {
			t.Logf("round trip mismatch: %s -> %s", want, got)
			return false
		}
		return true
	}
	if err := quick.Check(gen, cfg); err != nil {
		t.Error(err)
	}
}

// randomExpr builds a deterministic pseudo-random arithmetic expression.
func randomExpr(seed int64, depth int) Expr {
	next := func() int64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed
	}
	var build func(d int) Expr
	build = func(d int) Expr {
		r := next()
		if r < 0 {
			r = -r
		}
		if d > 3 || r%5 == 0 {
			v := float64(r%97) / 4
			return &NumExpr{Value: math.Abs(v) + 0.5}
		}
		switch r % 5 {
		case 1:
			return &BinExpr{Op: "+", L: build(d + 1), R: build(d + 1)}
		case 2:
			return &BinExpr{Op: "-", L: build(d + 1), R: build(d + 1)}
		case 3:
			return &BinExpr{Op: "*", L: build(d + 1), R: build(d + 1)}
		default:
			return &BinExpr{Op: "/", L: build(d + 1), R: build(d + 1)}
		}
	}
	return build(depth)
}

func TestWalkVisitsAll(t *testing.T) {
	prog := mustParse(t, figure1Src)
	var loops, assigns int
	Walk(prog.Body, func(s Stmt) bool {
		switch s.(type) {
		case *DoStmt:
			loops++
		case *AssignStmt:
			assigns++
		}
		return true
	})
	if loops != 3 {
		t.Errorf("loops = %d, want 3", loops)
	}
	if assigns != 2 {
		t.Errorf("assigns = %d, want 2", assigns)
	}
}

func TestWalkEarlyStop(t *testing.T) {
	prog := mustParse(t, figure1Src)
	count := 0
	Walk(prog.Body, func(s Stmt) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("walk did not stop early: count = %d", count)
	}
}

func TestWalkExprsFindsRefs(t *testing.T) {
	prog := mustParse(t, "PROGRAM P\nDIMENSION A(5,5), V(9)\nA(1,2) = V(3) * (V(4) + 2.0)\nEND\n")
	var refs []string
	WalkExprs(prog.Body[0], func(e Expr) {
		if r, ok := e.(*RefExpr); ok && !r.IsScalar() {
			refs = append(refs, r.Name)
		}
	})
	want := "A V V"
	if got := strings.Join(refs, " "); got != want {
		t.Errorf("refs = %q, want %q", got, want)
	}
}

func TestImplicitInteger(t *testing.T) {
	for name, want := range map[string]bool{"I": true, "N": true, "J2": true, "X": false, "A": false, "H": false, "O": false} {
		if got := ImplicitInteger(name); got != want {
			t.Errorf("ImplicitInteger(%q) = %v, want %v", name, got, want)
		}
	}
}
