package fortran

import (
	"fmt"
	"strings"
)

// LexError describes a lexical error with its source position.
type LexError struct {
	Line, Col int
	Msg       string
}

func (e *LexError) Error() string {
	return fmt.Sprintf("%d:%d: lex error: %s", e.Line, e.Col, e.Msg)
}

// Lexer tokenizes a source text of the FORTRAN subset. Create one with
// NewLexer and pull tokens with Next, or tokenize everything with Tokens.
type Lexer struct {
	src       string
	pos       int
	line      int
	col       int
	lineStart bool // true when no token has been emitted on this line yet
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1, lineStart: true}
}

// Tokens tokenizes the entire input, returning the token stream terminated
// by a TokEOF token.
func Tokens(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) peek() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *Lexer) peekAt(off int) byte {
	if lx.pos+off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+off]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isLetter(c byte) bool { return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' }
func isAlnum(c byte) bool  { return isDigit(c) || isLetter(c) }

// Next returns the next token. Newlines are significant (statements are
// line-oriented) and are returned as TokNewline; consecutive blank lines
// collapse into a single newline token.
func (lx *Lexer) Next() (Token, error) {
	for {
		c := lx.peek()
		if c == 0 {
			return Token{Kind: TokEOF, Line: lx.line, Col: lx.col}, nil
		}
		// Comment: '!' anywhere, or 'C'/'c'/'*' in column one followed by
		// space or end of line (classic fixed-form comment card).
		if c == '!' || (lx.col == 1 && (c == 'C' || c == 'c' || c == '*') && lx.isCommentCard()) {
			for lx.peek() != 0 && lx.peek() != '\n' {
				lx.advance()
			}
			continue
		}
		if c == ' ' || c == '\t' || c == '\r' {
			lx.advance()
			continue
		}
		if c == '\n' {
			tok := Token{Kind: TokNewline, Line: lx.line, Col: lx.col}
			lx.advance()
			lx.lineStart = true
			// Collapse runs of blank/comment lines into one newline.
			return tok, nil
		}
		break
	}

	line, col := lx.line, lx.col
	c := lx.peek()

	// Numeric statement label: digits at the start of a line followed by
	// whitespace and more statement text.
	if lx.lineStart && isDigit(c) {
		start := lx.pos
		for isDigit(lx.peek()) {
			lx.advance()
		}
		// A label must be followed by something other than '.', ')' or an
		// operator — i.e. it is a standalone number before a statement.
		if lx.peek() != '.' && !isLetter(lx.peek()) {
			lx.lineStart = false
			return Token{Kind: TokLabel, Text: lx.src[start:lx.pos], Line: line, Col: col}, nil
		}
		// Not a label after all (e.g. "10CONTINUE" — allow fused label).
		if isLetter(lx.peek()) {
			lx.lineStart = false
			return Token{Kind: TokLabel, Text: lx.src[start:lx.pos], Line: line, Col: col}, nil
		}
	}
	lx.lineStart = false

	switch {
	case isDigit(c) || (c == '.' && isDigit(lx.peekAt(1))):
		return lx.lexNumber(line, col)
	case isLetter(c):
		start := lx.pos
		for isAlnum(lx.peek()) {
			lx.advance()
		}
		word := strings.ToUpper(lx.src[start:lx.pos])
		kind := TokIdent
		if IsKeyword(word) {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: word, Line: line, Col: col}, nil
	case c == '.':
		return lx.lexDotOperator(line, col)
	}

	lx.advance()
	switch c {
	case '(':
		return Token{Kind: TokLParen, Text: "(", Line: line, Col: col}, nil
	case ')':
		return Token{Kind: TokRParen, Text: ")", Line: line, Col: col}, nil
	case ',':
		return Token{Kind: TokComma, Text: ",", Line: line, Col: col}, nil
	case ':':
		return Token{Kind: TokColon, Text: ":", Line: line, Col: col}, nil
	case '+':
		return Token{Kind: TokPlus, Text: "+", Line: line, Col: col}, nil
	case '-':
		return Token{Kind: TokMinus, Text: "-", Line: line, Col: col}, nil
	case '*':
		if lx.peek() == '*' {
			lx.advance()
			return Token{Kind: TokPow, Text: "**", Line: line, Col: col}, nil
		}
		return Token{Kind: TokStar, Text: "*", Line: line, Col: col}, nil
	case '/':
		if lx.peek() == '=' {
			lx.advance()
			return Token{Kind: TokRelop, Text: ".NE.", Line: line, Col: col}, nil
		}
		return Token{Kind: TokSlash, Text: "/", Line: line, Col: col}, nil
	case '=':
		if lx.peek() == '=' {
			lx.advance()
			return Token{Kind: TokRelop, Text: ".EQ.", Line: line, Col: col}, nil
		}
		return Token{Kind: TokAssign, Text: "=", Line: line, Col: col}, nil
	case '<':
		if lx.peek() == '=' {
			lx.advance()
			return Token{Kind: TokRelop, Text: ".LE.", Line: line, Col: col}, nil
		}
		return Token{Kind: TokRelop, Text: ".LT.", Line: line, Col: col}, nil
	case '>':
		if lx.peek() == '=' {
			lx.advance()
			return Token{Kind: TokRelop, Text: ".GE.", Line: line, Col: col}, nil
		}
		return Token{Kind: TokRelop, Text: ".GT.", Line: line, Col: col}, nil
	}
	return Token{}, &LexError{Line: line, Col: col, Msg: fmt.Sprintf("unexpected character %q", c)}
}

// isCommentCard reports whether the current column-one C/c/* starts a
// classic comment card rather than an identifier.
func (lx *Lexer) isCommentCard() bool {
	n := lx.peekAt(1)
	return n == ' ' || n == '\t' || n == '\n' || n == 0
}

func (lx *Lexer) lexNumber(line, col int) (Token, error) {
	start := lx.pos
	isReal := false
	for isDigit(lx.peek()) {
		lx.advance()
	}
	if lx.peek() == '.' {
		// Don't swallow ".AND." style operators: a '.' followed by a letter
		// sequence and another '.' is an operator, except E/D exponents like
		// "1.E5" — those have digits or sign after the letter run's first char.
		if !lx.dotStartsOperator() {
			isReal = true
			lx.advance()
			for isDigit(lx.peek()) {
				lx.advance()
			}
		}
	}
	if c := lx.peek(); c == 'e' || c == 'E' || c == 'd' || c == 'D' {
		save, saveLine, saveCol := lx.pos, lx.line, lx.col
		lx.advance()
		if lx.peek() == '+' || lx.peek() == '-' {
			lx.advance()
		}
		if isDigit(lx.peek()) {
			isReal = true
			for isDigit(lx.peek()) {
				lx.advance()
			}
		} else {
			lx.pos, lx.line, lx.col = save, saveLine, saveCol
		}
	}
	kind := TokInt
	if isReal {
		kind = TokReal
	}
	text := lx.src[start:lx.pos]
	// Normalize FORTRAN D exponents to E for Go parsing.
	text = strings.Map(func(r rune) rune {
		if r == 'd' || r == 'D' {
			return 'E'
		}
		return r
	}, text)
	return Token{Kind: kind, Text: text, Line: line, Col: col}, nil
}

// dotStartsOperator reports whether the '.' at the current position begins
// a .OP. style operator such as .LT. or .AND. rather than a decimal point.
func (lx *Lexer) dotStartsOperator() bool {
	i := lx.pos + 1
	for i < len(lx.src) && isLetter(lx.src[i]) {
		i++
	}
	return i > lx.pos+1 && i < len(lx.src) && lx.src[i] == '.'
}

var dotOps = map[string]TokenKind{
	"LT": TokRelop, "LE": TokRelop, "GT": TokRelop, "GE": TokRelop,
	"EQ": TokRelop, "NE": TokRelop,
	"AND": TokLogop, "OR": TokLogop,
	"NOT": TokNot,
}

func (lx *Lexer) lexDotOperator(line, col int) (Token, error) {
	lx.advance() // consume '.'
	start := lx.pos
	for isLetter(lx.peek()) {
		lx.advance()
	}
	word := strings.ToUpper(lx.src[start:lx.pos])
	if lx.peek() != '.' {
		return Token{}, &LexError{Line: line, Col: col, Msg: fmt.Sprintf("malformed operator .%s", word)}
	}
	lx.advance() // consume trailing '.'
	kind, ok := dotOps[word]
	if !ok {
		return Token{}, &LexError{Line: line, Col: col, Msg: fmt.Sprintf("unknown operator .%s.", word)}
	}
	text := "." + word + "."
	if word == "TRUE" || word == "FALSE" {
		text = word
	}
	return Token{Kind: kind, Text: text, Line: line, Col: col}, nil
}
