package fortran

import (
	"strings"
	"testing"
)

func TestFormatGolden(t *testing.T) {
	src := `
PROGRAM G
DIMENSION A(8,4), V(16)
DO 10 I = 1, 8
  DO J = 1, 4, 2
    A(I,J) = V(I) * 2.0 + 1.5
  END DO
10 CONTINUE
IF (A(1,1) .GT. 0.0 .AND. V(2) .LT. 3.0) THEN
  V(1) = -A(1,1)
ELSE
  V(1) = ABS(V(3))
ENDIF
END
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	want := `PROGRAM G
DIMENSION A(8,4), V(16)
DO 10 I = 1, 8
  DO J = 1, 4, 2
    A(I,J) = V(I) * 2.0 + 1.5
  END DO
10 CONTINUE
IF (A(1,1) .GT. 0.0 .AND. V(2) .LT. 3.0) THEN
  V(1) = -A(1,1)
ELSE
  V(1) = ABS(V(3))
ENDIF
END
`
	if got := Format(prog); got != want {
		t.Errorf("golden mismatch:\n--- got\n%s--- want\n%s", got, want)
	}
}

func TestFormatExprParenthesization(t *testing.T) {
	cases := map[string]string{
		"(1.0 + 2.0) * 3.0":  "(1.0 + 2.0) * 3.0",
		"1.0 - (2.0 - 3.0)":  "1.0 - (2.0 - 3.0)",
		"1.0 / (2.0 * 3.0)":  "1.0 / (2.0 * 3.0)",
		"1.0 + 2.0 + 3.0":    "1.0 + 2.0 + 3.0",
		"-(1.0 + 2.0)":       "-(1.0 + 2.0)",
		"2.0 ** (1.0 + 1.0)": "2.0**(1.0 + 1.0)",
		"(1.0 + X) ** 2":     "(1.0 + X)**2",
	}
	for in, want := range cases {
		prog, err := Parse("PROGRAM P\nY = " + in + "\nEND\n")
		if err != nil {
			t.Fatalf("parse %q: %v", in, err)
		}
		got := FormatExpr(prog.Body[0].(*AssignStmt).RHS)
		if got != want {
			t.Errorf("FormatExpr(%q) = %q, want %q", in, got, want)
		}
		// And the printed form must evaluate to the same tree.
		re, err := Parse("PROGRAM P\nY = " + got + "\nEND\n")
		if err != nil {
			t.Fatalf("reparse %q: %v", got, err)
		}
		if FormatExpr(re.Body[0].(*AssignStmt).RHS) != got {
			t.Errorf("%q not stable under reparse", got)
		}
	}
}

func TestFormatLogicalOps(t *testing.T) {
	prog, err := Parse("PROGRAM P\nIF (A .LT. 1.0 .OR. B .GT. 2.0 .AND. .NOT. C .EQ. 0.0) X = 1.0\nEND\n")
	if err != nil {
		t.Fatal(err)
	}
	out := Format(prog)
	for _, want := range []string{".OR.", ".AND.", ".NOT."} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %s:\n%s", want, out)
		}
	}
	if _, err := Parse(out); err != nil {
		t.Errorf("formatted logical expression does not reparse: %v\n%s", err, out)
	}
}

func TestFormatNegativeStepLoop(t *testing.T) {
	prog, err := Parse("PROGRAM P\nDIMENSION V(10)\nDO I = 10, 1, -1\nV(I) = 0.0\nEND DO\nEND\n")
	if err != nil {
		t.Fatal(err)
	}
	out := Format(prog)
	if !strings.Contains(out, "DO I = 10, 1, -1") {
		t.Errorf("negative step lost:\n%s", out)
	}
	if _, err := Parse(out); err != nil {
		t.Errorf("reparse failed: %v", err)
	}
}
