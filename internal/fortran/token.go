// Package fortran implements a lexer, parser, AST, and printer for the
// FORTRAN-77-like subset used throughout this reproduction of Malkawi &
// Patel's "Compiler Directed Memory Management Policy For Numerical
// Programs" (SOSP 1985).
//
// The subset is deliberately small but sufficient to express the loop-nest
// and array-reference structure that the CD policy's compiler analysis
// consumes: DIMENSION declarations, (optionally labeled) DO loops with
// CONTINUE or END DO terminators, assignments over real arithmetic with
// one- and two-dimensional array references, structured IF/ELSE blocks,
// and EXIT/CYCLE for convergence-style loops.
//
// Source form is line-oriented free form: one statement per line, an
// optional numeric statement label at the start of a line, and '!' or 'C '
// (in column one) comments.
package fortran

import "fmt"

// TokenKind identifies the lexical class of a token.
type TokenKind int

// Token kinds. Keywords are recognized case-insensitively by the lexer.
const (
	TokEOF TokenKind = iota
	TokNewline
	TokLabel   // numeric statement label at start of line
	TokIdent   // identifier: names of variables, arrays, intrinsics
	TokInt     // integer literal
	TokReal    // real literal (1.5, 1E-3, .5, 2.)
	TokLParen  // (
	TokRParen  // )
	TokComma   // ,
	TokAssign  // =
	TokPlus    // +
	TokMinus   // -
	TokStar    // *
	TokSlash   // /
	TokPow     // **
	TokColon   // :
	TokRelop   // .LT. .LE. .GT. .GE. .EQ. .NE. and < <= > >= == /=
	TokLogop   // .AND. .OR.
	TokNot     // .NOT.
	TokKeyword // PROGRAM, DIMENSION, DO, CONTINUE, IF, THEN, ELSE, ENDIF, END, EXIT, CYCLE, GOTO, REAL, INTEGER, PARAMETER
)

var tokenKindNames = map[TokenKind]string{
	TokEOF:     "EOF",
	TokNewline: "newline",
	TokLabel:   "label",
	TokIdent:   "identifier",
	TokInt:     "integer",
	TokReal:    "real",
	TokLParen:  "'('",
	TokRParen:  "')'",
	TokComma:   "','",
	TokAssign:  "'='",
	TokPlus:    "'+'",
	TokMinus:   "'-'",
	TokStar:    "'*'",
	TokSlash:   "'/'",
	TokPow:     "'**'",
	TokColon:   "':'",
	TokRelop:   "relational operator",
	TokLogop:   "logical operator",
	TokNot:     ".NOT.",
	TokKeyword: "keyword",
}

// String returns a human-readable name for the token kind.
func (k TokenKind) String() string {
	if s, ok := tokenKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

// Token is a single lexical token with its source position.
type Token struct {
	Kind TokenKind
	Text string // uppercased for identifiers and keywords
	Line int    // 1-based source line
	Col  int    // 1-based source column
}

// String renders the token for error messages.
func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokNewline:
		return "end of line"
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// keywords is the set of reserved words of the subset. DO is handled
// specially by the parser (a "DO" identifier followed by an identifier and
// '=' begins a loop).
var keywords = map[string]bool{
	"PROGRAM":   true,
	"DIMENSION": true,
	"DO":        true,
	"ENDDO":     true,
	"CONTINUE":  true,
	"IF":        true,
	"THEN":      true,
	"ELSE":      true,
	"ELSEIF":    true,
	"ENDIF":     true,
	"END":       true,
	"EXIT":      true,
	"CYCLE":     true,
	"REAL":      true,
	"INTEGER":   true,
	"PARAMETER": true,
}

// IsKeyword reports whether the (already uppercased) word is reserved.
func IsKeyword(word string) bool { return keywords[word] }
