package fortran

import (
	"strings"
	"testing"
)

func kindsOf(t *testing.T, src string) []TokenKind {
	t.Helper()
	toks, err := Tokens(src)
	if err != nil {
		t.Fatalf("Tokens(%q): %v", src, err)
	}
	kinds := make([]TokenKind, len(toks))
	for i, tok := range toks {
		kinds[i] = tok.Kind
	}
	return kinds
}

func textsOf(t *testing.T, src string) []string {
	t.Helper()
	toks, err := Tokens(src)
	if err != nil {
		t.Fatalf("Tokens(%q): %v", src, err)
	}
	var texts []string
	for _, tok := range toks {
		if tok.Kind == TokEOF || tok.Kind == TokNewline {
			continue
		}
		texts = append(texts, tok.Text)
	}
	return texts
}

func TestLexSimpleAssignment(t *testing.T) {
	got := kindsOf(t, "X = A(I,J) + 1.5")
	want := []TokenKind{TokIdent, TokAssign, TokIdent, TokLParen, TokIdent, TokComma, TokIdent, TokRParen, TokPlus, TokReal, TokEOF}
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexLabelAtLineStart(t *testing.T) {
	toks, err := Tokens("10 CONTINUE\n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokLabel || toks[0].Text != "10" {
		t.Errorf("expected label 10, got %v %q", toks[0].Kind, toks[0].Text)
	}
	if toks[1].Kind != TokKeyword || toks[1].Text != "CONTINUE" {
		t.Errorf("expected CONTINUE keyword, got %v %q", toks[1].Kind, toks[1].Text)
	}
}

func TestLexNumberNotLabelMidLine(t *testing.T) {
	toks, err := Tokens("X = 10")
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != TokInt {
		t.Errorf("mid-line 10 should be integer, got %v", toks[2].Kind)
	}
}

func TestLexRealForms(t *testing.T) {
	cases := map[string]TokenKind{
		"1.5":    TokReal,
		"1.":     TokReal,
		".5":     TokReal,
		"1E5":    TokReal,
		"1.5E-3": TokReal,
		"2D0":    TokReal,
		"100":    TokInt,
	}
	for src, want := range cases {
		toks, err := Tokens("X = " + src)
		if err != nil {
			t.Fatalf("Tokens(%q): %v", src, err)
		}
		if toks[2].Kind != want {
			t.Errorf("%q: got %v, want %v", src, toks[2].Kind, want)
		}
	}
}

func TestLexDExponentNormalized(t *testing.T) {
	toks, err := Tokens("X = 2.5D-3")
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Text != "2.5E-3" {
		t.Errorf("D exponent should normalize to E: got %q", toks[2].Text)
	}
}

func TestLexDotOperators(t *testing.T) {
	got := textsOf(t, "IF (A .LT. B .AND. C .GE. 1.0) THEN")
	want := []string{"IF", "(", "A", ".LT.", "B", ".AND.", "C", ".GE.", "1.0", ")", "THEN"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestLexModernRelops(t *testing.T) {
	got := textsOf(t, "IF (A < B) X = 1")
	if got[3] != ".LT." {
		t.Errorf("'<' should lex as .LT., got %q", got[3])
	}
	got = textsOf(t, "IF (A /= B) X = 1")
	if got[3] != ".NE." {
		t.Errorf("'/=' should lex as .NE., got %q", got[3])
	}
	got = textsOf(t, "IF (A == B) X = 1")
	if got[3] != ".EQ." {
		t.Errorf("'==' should lex as .EQ., got %q", got[3])
	}
}

func TestLexPower(t *testing.T) {
	got := kindsOf(t, "X = Y**2")
	want := []TokenKind{TokIdent, TokAssign, TokIdent, TokPow, TokInt, TokEOF}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v want %v (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestLexComments(t *testing.T) {
	src := "C this is a comment card\n! bang comment\nX = 1 ! trailing\n"
	got := textsOf(t, src)
	want := []string{"X", "=", "1"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestLexCommentCardVsIdentifier(t *testing.T) {
	// 'C' at column one followed by '(' is an identifier, not a comment.
	got := textsOf(t, "C(1) = 2.0")
	if len(got) == 0 || got[0] != "C" {
		t.Errorf("C(1) should lex as identifier C, got %v", got)
	}
}

func TestLexCaseInsensitiveKeywords(t *testing.T) {
	toks, err := Tokens("do 10 i = 1, 5")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokKeyword || toks[0].Text != "DO" {
		t.Errorf("'do' should be DO keyword, got %v %q", toks[0].Kind, toks[0].Text)
	}
	if toks[2].Kind != TokIdent || toks[2].Text != "I" {
		t.Errorf("'i' should uppercase to I, got %q", toks[2].Text)
	}
}

func TestLexErrorBadChar(t *testing.T) {
	_, err := Tokens("X = 1 @ 2")
	if err == nil {
		t.Fatal("expected error for '@'")
	}
	var lexErr *LexError
	if !asErr(err, &lexErr) {
		t.Fatalf("expected *LexError, got %T", err)
	}
}

func asErr[T error](err error, target *T) bool {
	if e, ok := err.(T); ok {
		*target = e
		return true
	}
	return false
}

func TestLexPositions(t *testing.T) {
	toks, err := Tokens("X = 1\nY = 2\n")
	if err != nil {
		t.Fatal(err)
	}
	// The Y token should be on line 2 column 1.
	var y Token
	for _, tok := range toks {
		if tok.Text == "Y" {
			y = tok
		}
	}
	if y.Line != 2 || y.Col != 1 {
		t.Errorf("Y at %d:%d, want 2:1", y.Line, y.Col)
	}
}

func TestLexNewlineCollapsing(t *testing.T) {
	toks, err := Tokens("X = 1\nY = 2")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, tok := range toks {
		if tok.Kind == TokNewline {
			n++
		}
	}
	if n != 1 {
		t.Errorf("expected exactly 1 newline token, got %d", n)
	}
}
