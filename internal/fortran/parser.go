package fortran

import (
	"fmt"
	"strconv"
)

// Parse parses a complete program unit from source text.
func Parse(src string) (*Program, error) {
	toks, err := Tokens(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, params: map[string]*ParamDecl{}}
	return p.parseProgram()
}

type parser struct {
	toks   []Token
	pos    int
	prog   *Program
	params map[string]*ParamDecl
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) skipNewlines() {
	for p.cur().Kind == TokNewline {
		p.pos++
	}
}

// atEndOfStmt reports whether the current token terminates a statement.
func (p *parser) atEndOfStmt() bool {
	k := p.cur().Kind
	return k == TokNewline || k == TokEOF
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Line: p.cur().Line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(kind TokenKind) (Token, error) {
	if p.cur().Kind != kind {
		return Token{}, p.errf("expected %s, found %s", kind, p.cur())
	}
	return p.next(), nil
}

func (p *parser) expectKeyword(word string) error {
	if p.cur().Kind != TokKeyword || p.cur().Text != word {
		return p.errf("expected %s, found %s", word, p.cur())
	}
	p.next()
	return nil
}

func (p *parser) endStatement() error {
	if !p.atEndOfStmt() {
		return p.errf("unexpected %s at end of statement", p.cur())
	}
	if p.cur().Kind == TokNewline {
		p.next()
	}
	return nil
}

func (p *parser) parseProgram() (*Program, error) {
	p.prog = &Program{Name: "MAIN"}
	p.skipNewlines()

	// Optional PROGRAM name.
	if p.cur().Kind == TokKeyword && p.cur().Text == "PROGRAM" {
		p.next()
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		p.prog.Name = name.Text
		if err := p.endStatement(); err != nil {
			return nil, err
		}
	}

	// Declarations: DIMENSION, REAL/INTEGER with dims, PARAMETER.
	for {
		p.skipNewlines()
		t := p.cur()
		if t.Kind != TokKeyword {
			break
		}
		switch t.Text {
		case "DIMENSION", "REAL", "INTEGER":
			p.next()
			if err := p.parseDeclList(t.Line); err != nil {
				return nil, err
			}
		case "PARAMETER":
			p.next()
			if err := p.parseParameter(t.Line); err != nil {
				return nil, err
			}
		default:
			goto body
		}
		if err := p.endStatement(); err != nil {
			return nil, err
		}
	}

body:
	stmts, err := p.parseStmts(stopAtEnd)
	if err != nil {
		return nil, err
	}
	p.prog.Body = stmts
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return p.prog, nil
}

// parseDeclList parses "A(100,100), V(500), X" after DIMENSION/REAL/INTEGER.
// Undimensioned names in type statements are scalars and are ignored (the
// subset types scalars implicitly).
func (p *parser) parseDeclList(line int) error {
	for {
		name, err := p.expect(TokIdent)
		if err != nil {
			return err
		}
		if p.cur().Kind == TokLParen {
			p.next()
			var dims []int
			for {
				d, err := p.parseConstInt()
				if err != nil {
					return err
				}
				if d <= 0 {
					return &ParseError{Line: line, Msg: fmt.Sprintf("array %s: dimension must be positive, got %d", name.Text, d)}
				}
				dims = append(dims, d)
				if p.cur().Kind != TokComma {
					break
				}
				p.next()
			}
			if _, err := p.expect(TokRParen); err != nil {
				return err
			}
			if len(dims) > 2 {
				return &ParseError{Line: line, Msg: fmt.Sprintf("array %s: only up to two dimensions are supported (got %d)", name.Text, len(dims))}
			}
			if p.prog.Array(name.Text) != nil {
				return &ParseError{Line: line, Msg: fmt.Sprintf("array %s declared twice", name.Text)}
			}
			p.prog.Arrays = append(p.prog.Arrays, &ArrayDecl{Name: name.Text, Dims: dims, Line: line})
		}
		if p.cur().Kind != TokComma {
			return nil
		}
		p.next()
	}
}

// parseParameter parses "PARAMETER (N = 100, EPS = 1.0E-6)".
func (p *parser) parseParameter(line int) error {
	if _, err := p.expect(TokLParen); err != nil {
		return err
	}
	for {
		name, err := p.expect(TokIdent)
		if err != nil {
			return err
		}
		if _, err := p.expect(TokAssign); err != nil {
			return err
		}
		neg := false
		if p.cur().Kind == TokMinus {
			neg = true
			p.next()
		}
		t := p.cur()
		var decl *ParamDecl
		switch t.Kind {
		case TokInt:
			v, _ := strconv.ParseFloat(t.Text, 64)
			decl = &ParamDecl{Name: name.Text, Value: v, IsInt: true, Line: line}
		case TokReal:
			v, _ := strconv.ParseFloat(t.Text, 64)
			decl = &ParamDecl{Name: name.Text, Value: v, Line: line}
		default:
			return p.errf("PARAMETER value must be a literal, found %s", t)
		}
		p.next()
		if neg {
			decl.Value = -decl.Value
		}
		p.prog.Params = append(p.prog.Params, decl)
		p.params[decl.Name] = decl
		if p.cur().Kind != TokComma {
			break
		}
		p.next()
	}
	_, err := p.expect(TokRParen)
	return err
}

// parseConstInt parses an integer literal or integer PARAMETER name.
func (p *parser) parseConstInt() (int, error) {
	t := p.cur()
	switch t.Kind {
	case TokInt:
		p.next()
		v, err := strconv.Atoi(t.Text)
		if err != nil {
			return 0, p.errf("bad integer %q", t.Text)
		}
		return v, nil
	case TokIdent:
		if d, ok := p.params[t.Text]; ok && d.IsInt {
			p.next()
			return int(d.Value), nil
		}
	}
	return 0, p.errf("expected integer constant, found %s", t)
}

// stop predicates for statement-list parsing.
type stopFunc func(p *parser) bool

func stopAtEnd(p *parser) bool {
	t := p.cur()
	return t.Kind == TokEOF || (t.Kind == TokKeyword && t.Text == "END")
}

func stopAtEndDo(p *parser) bool {
	t := p.cur()
	if t.Kind != TokKeyword {
		return false
	}
	if t.Text == "ENDDO" {
		return true
	}
	// "END DO" splits into END + DO keywords on one line.
	if t.Text == "END" && p.pos+1 < len(p.toks) {
		n := p.toks[p.pos+1]
		return n.Kind == TokKeyword && n.Text == "DO"
	}
	return false
}

func stopAtLabel(label string) stopFunc {
	return func(p *parser) bool {
		t := p.cur()
		return t.Kind == TokLabel && t.Text == label
	}
}

func stopAtElseOrEndif(p *parser) bool {
	t := p.cur()
	return t.Kind == TokKeyword && (t.Text == "ELSE" || t.Text == "ELSEIF" || t.Text == "ENDIF")
}

// parseStmts parses statements until the stop predicate matches (the
// stopping token is not consumed).
func (p *parser) parseStmts(stop stopFunc) ([]Stmt, error) {
	var stmts []Stmt
	for {
		p.skipNewlines()
		if stop(p) {
			return stmts, nil
		}
		if p.cur().Kind == TokEOF {
			return nil, p.errf("unexpected end of input")
		}
		s, err := p.parseStmt(stop)
		if err != nil {
			return nil, err
		}
		if s != nil {
			stmts = append(stmts, s)
		}
	}
}

// parseStmt parses one statement. It may return a nil statement for
// labeled CONTINUEs consumed as loop terminators (handled by the DO logic).
func (p *parser) parseStmt(stop stopFunc) (Stmt, error) {
	// Optional statement label on a plain statement (e.g. "5 X = 1.0").
	if p.cur().Kind == TokLabel {
		// Labels are only meaningful as DO terminators, which parseDo
		// consumes itself; a label reaching here is attached to an ordinary
		// statement and is ignored.
		p.next()
	}
	t := p.cur()
	switch {
	case t.Kind == TokKeyword && t.Text == "DO":
		return p.parseDo()
	case t.Kind == TokKeyword && t.Text == "IF":
		return p.parseIf()
	case t.Kind == TokKeyword && t.Text == "CONTINUE":
		p.next()
		if err := p.endStatement(); err != nil {
			return nil, err
		}
		return &ContinueStmt{Line: t.Line}, nil
	case t.Kind == TokKeyword && t.Text == "EXIT":
		p.next()
		if err := p.endStatement(); err != nil {
			return nil, err
		}
		return &ExitStmt{Line: t.Line}, nil
	case t.Kind == TokKeyword && t.Text == "CYCLE":
		p.next()
		if err := p.endStatement(); err != nil {
			return nil, err
		}
		return &CycleStmt{Line: t.Line}, nil
	case t.Kind == TokIdent:
		return p.parseAssign()
	}
	return nil, p.errf("unexpected %s at start of statement", t)
}

func (p *parser) parseDo() (Stmt, error) {
	doTok := p.next() // DO
	label := ""
	if p.cur().Kind == TokLabel || p.cur().Kind == TokInt {
		label = p.next().Text
	}
	varTok, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	from, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokComma); err != nil {
		return nil, err
	}
	to, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	var step Expr
	if p.cur().Kind == TokComma {
		p.next()
		step, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if err := p.endStatement(); err != nil {
		return nil, err
	}

	do := &DoStmt{Label: label, Var: varTok.Text, From: from, To: to, Step: step, Line: doTok.Line}
	if label != "" {
		body, err := p.parseStmts(stopAtLabel(label))
		if err != nil {
			return nil, err
		}
		do.Body = body
		p.next() // the label token
		// The labeled terminator must be CONTINUE (shared terminators for
		// multiple loops are not supported; each loop has its own label).
		if err := p.expectKeyword("CONTINUE"); err != nil {
			return nil, err
		}
		if err := p.endStatement(); err != nil {
			return nil, err
		}
	} else {
		body, err := p.parseStmts(stopAtEndDo)
		if err != nil {
			return nil, err
		}
		do.Body = body
		if p.cur().Text == "ENDDO" {
			p.next()
		} else { // END DO
			p.next() // END
			p.next() // DO
		}
		if err := p.endStatement(); err != nil {
			return nil, err
		}
	}
	return do, nil
}

func (p *parser) parseIf() (Stmt, error) {
	ifTok := p.next() // IF
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}

	st := &IfStmt{Cond: cond, Line: ifTok.Line}

	// Block IF: "IF (c) THEN".
	if p.cur().Kind == TokKeyword && p.cur().Text == "THEN" {
		p.next()
		if err := p.endStatement(); err != nil {
			return nil, err
		}
		thenStmts, err := p.parseStmts(stopAtElseOrEndif)
		if err != nil {
			return nil, err
		}
		st.Then = thenStmts
		for {
			t := p.cur()
			switch t.Text {
			case "ENDIF":
				p.next()
				return st, p.endStatement()
			case "ELSEIF":
				p.next()
				nested, err := p.parseElseIfChain()
				if err != nil {
					return nil, err
				}
				st.Else = []Stmt{nested}
				return st, nil
			case "ELSE":
				p.next()
				// "ELSE IF (c) THEN" appears as ELSE followed by IF.
				if p.cur().Kind == TokKeyword && p.cur().Text == "IF" {
					p.next()
					nested, err := p.parseElseIfChain()
					if err != nil {
						return nil, err
					}
					st.Else = []Stmt{nested}
					return st, nil
				}
				if err := p.endStatement(); err != nil {
					return nil, err
				}
				elseStmts, err := p.parseStmts(stopAtElseOrEndif)
				if err != nil {
					return nil, err
				}
				st.Else = elseStmts
			default:
				return nil, p.errf("expected ELSE or ENDIF, found %s", t)
			}
		}
	}

	// Logical IF: "IF (c) stmt" with a single simple statement.
	inner, err := p.parseSimpleStmtForLogicalIf()
	if err != nil {
		return nil, err
	}
	st.Then = []Stmt{inner}
	return st, nil
}

// parseElseIfChain parses the IF following an ELSE IF / ELSEIF, reusing the
// block-IF machinery by synthesizing the condition parse here.
func (p *parser) parseElseIfChain() (Stmt, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("THEN"); err != nil {
		return nil, err
	}
	if err := p.endStatement(); err != nil {
		return nil, err
	}
	st := &IfStmt{Cond: cond, Line: p.cur().Line}
	thenStmts, err := p.parseStmts(stopAtElseOrEndif)
	if err != nil {
		return nil, err
	}
	st.Then = thenStmts
	t := p.cur()
	switch t.Text {
	case "ENDIF":
		p.next()
		return st, p.endStatement()
	case "ELSEIF":
		p.next()
		nested, err := p.parseElseIfChain()
		if err != nil {
			return nil, err
		}
		st.Else = []Stmt{nested}
		return st, nil
	case "ELSE":
		p.next()
		if p.cur().Kind == TokKeyword && p.cur().Text == "IF" {
			p.next()
			nested, err := p.parseElseIfChain()
			if err != nil {
				return nil, err
			}
			st.Else = []Stmt{nested}
			return st, nil
		}
		if err := p.endStatement(); err != nil {
			return nil, err
		}
		elseStmts, err := p.parseStmts(stopAtElseOrEndif)
		if err != nil {
			return nil, err
		}
		st.Else = elseStmts
		if err := p.expectKeyword("ENDIF"); err != nil {
			return nil, err
		}
		return st, p.endStatement()
	}
	return nil, p.errf("expected ELSE or ENDIF, found %s", t)
}

// parseSimpleStmtForLogicalIf parses the single statement allowed after a
// logical IF: assignment, EXIT, CYCLE, or CONTINUE.
func (p *parser) parseSimpleStmtForLogicalIf() (Stmt, error) {
	t := p.cur()
	switch {
	case t.Kind == TokKeyword && t.Text == "EXIT":
		p.next()
		return &ExitStmt{Line: t.Line}, p.endStatement()
	case t.Kind == TokKeyword && t.Text == "CYCLE":
		p.next()
		return &CycleStmt{Line: t.Line}, p.endStatement()
	case t.Kind == TokKeyword && t.Text == "CONTINUE":
		p.next()
		return &ContinueStmt{Line: t.Line}, p.endStatement()
	case t.Kind == TokIdent:
		return p.parseAssign()
	}
	return nil, p.errf("statement not allowed after logical IF: %s", t)
}

func (p *parser) parseAssign() (Stmt, error) {
	lhs, err := p.parseRef()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.endStatement(); err != nil {
		return nil, err
	}
	return &AssignStmt{LHS: lhs, RHS: rhs, Line: lhs.Line}, nil
}

// parseRef parses an lvalue: NAME or NAME(sub[,sub]).
func (p *parser) parseRef() (*RefExpr, error) {
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	ref := &RefExpr{Name: name.Text, Line: name.Line}
	if p.cur().Kind == TokLParen {
		p.next()
		for {
			sub, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			ref.Subs = append(ref.Subs, sub)
			if p.cur().Kind != TokComma {
				break
			}
			p.next()
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		if len(ref.Subs) > 2 {
			return nil, &ParseError{Line: name.Line, Msg: fmt.Sprintf("%s: more than two subscripts", name.Text)}
		}
	}
	return ref, nil
}

// Expression grammar (loosest to tightest):
//
//	expr    := orTerm { .OR. orTerm }
//	orTerm  := relTerm { .AND. relTerm }
//	relTerm := [.NOT.] arith [relop arith]
//	arith   := term { (+|-) term }
//	term    := factor { (*|/) factor }
//	factor  := [-] power
//	power   := primary [** factor]
//	primary := number | ref | call | ( expr )
func (p *parser) parseExpr() (Expr, error) {
	l, err := p.parseOrTerm()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokLogop && p.cur().Text == ".OR." {
		p.next()
		r, err := p.parseOrTerm()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: ".OR.", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseOrTerm() (Expr, error) {
	l, err := p.parseRelTerm()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokLogop && p.cur().Text == ".AND." {
		p.next()
		r, err := p.parseRelTerm()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: ".AND.", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseRelTerm() (Expr, error) {
	if p.cur().Kind == TokNot {
		p.next()
		x, err := p.parseRelTerm()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: ".NOT.", X: x}, nil
	}
	l, err := p.parseArith()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == TokRelop {
		op := p.next().Text
		r, err := p.parseArith()
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: op, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseArith() (Expr, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case TokPlus:
			p.next()
			r, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: "+", L: l, R: r}
		case TokMinus:
			p.next()
			r, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: "-", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseTerm() (Expr, error) {
	l, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case TokStar:
			p.next()
			r, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: "*", L: l, R: r}
		case TokSlash:
			p.next()
			r, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: "/", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseFactor() (Expr, error) {
	if p.cur().Kind == TokMinus {
		p.next()
		x, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: "-", X: x}, nil
	}
	if p.cur().Kind == TokPlus {
		p.next()
		return p.parseFactor()
	}
	return p.parsePower()
}

func (p *parser) parsePower() (Expr, error) {
	base, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == TokPow {
		p.next()
		// ** is right-associative.
		exp, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: "**", L: base, R: exp}, nil
	}
	return base, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokInt:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.Text)
		}
		return &NumExpr{Value: v, IsInt: true}, nil
	case TokReal:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.Text)
		}
		return &NumExpr{Value: v}, nil
	case TokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokIdent:
		name := p.next().Text
		// PARAMETER constants fold to literals.
		if d, ok := p.params[name]; ok && p.cur().Kind != TokLParen {
			return &NumExpr{Value: d.Value, IsInt: d.IsInt}, nil
		}
		if p.cur().Kind != TokLParen {
			return &RefExpr{Name: name, Line: t.Line}, nil
		}
		p.next() // (
		var args []Expr
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.cur().Kind != TokComma {
				break
			}
			p.next()
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		if Intrinsics[name] && p.prog.Array(name) == nil {
			return &CallExpr{Name: name, Args: args}, nil
		}
		if len(args) > 2 {
			return nil, &ParseError{Line: t.Line, Msg: fmt.Sprintf("%s: more than two subscripts", name)}
		}
		return &RefExpr{Name: name, Subs: args, Line: t.Line}, nil
	}
	return nil, p.errf("unexpected %s in expression", t)
}
