package fortran

import (
	"fmt"
	"strconv"
	"strings"
)

// Format renders the program back to source text in a canonical layout.
// The output is itself parseable, so Parse(Format(p)) reproduces p (up to
// folded PARAMETER constants, which print as literals).
func Format(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "PROGRAM %s\n", p.Name)
	if len(p.Arrays) > 0 {
		parts := make([]string, len(p.Arrays))
		for i, a := range p.Arrays {
			dims := make([]string, len(a.Dims))
			for j, d := range a.Dims {
				dims[j] = strconv.Itoa(d)
			}
			parts[i] = fmt.Sprintf("%s(%s)", a.Name, strings.Join(dims, ","))
		}
		fmt.Fprintf(&b, "DIMENSION %s\n", strings.Join(parts, ", "))
	}
	printStmts(&b, p.Body, 0)
	b.WriteString("END\n")
	return b.String()
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func printStmts(b *strings.Builder, stmts []Stmt, depth int) {
	for _, s := range stmts {
		printStmt(b, s, depth)
	}
}

func printStmt(b *strings.Builder, s Stmt, depth int) {
	switch st := s.(type) {
	case *DoStmt:
		indent(b, depth)
		if st.Label != "" {
			fmt.Fprintf(b, "DO %s %s = %s, %s", st.Label, st.Var, FormatExpr(st.From), FormatExpr(st.To))
		} else {
			fmt.Fprintf(b, "DO %s = %s, %s", st.Var, FormatExpr(st.From), FormatExpr(st.To))
		}
		if st.Step != nil {
			fmt.Fprintf(b, ", %s", FormatExpr(st.Step))
		}
		b.WriteByte('\n')
		printStmts(b, st.Body, depth+1)
		indent(b, depth)
		if st.Label != "" {
			fmt.Fprintf(b, "%s CONTINUE\n", st.Label)
		} else {
			b.WriteString("END DO\n")
		}
	case *AssignStmt:
		indent(b, depth)
		fmt.Fprintf(b, "%s = %s\n", FormatExpr(st.LHS), FormatExpr(st.RHS))
	case *IfStmt:
		indent(b, depth)
		fmt.Fprintf(b, "IF (%s) THEN\n", FormatExpr(st.Cond))
		printStmts(b, st.Then, depth+1)
		if len(st.Else) > 0 {
			indent(b, depth)
			b.WriteString("ELSE\n")
			printStmts(b, st.Else, depth+1)
		}
		indent(b, depth)
		b.WriteString("ENDIF\n")
	case *ExitStmt:
		indent(b, depth)
		b.WriteString("EXIT\n")
	case *CycleStmt:
		indent(b, depth)
		b.WriteString("CYCLE\n")
	case *ContinueStmt:
		indent(b, depth)
		b.WriteString("CONTINUE\n")
	}
}

// FormatExpr renders an expression in FORTRAN syntax.
func FormatExpr(e Expr) string {
	switch x := e.(type) {
	case *NumExpr:
		if x.IsInt {
			return strconv.Itoa(int(x.Value))
		}
		s := strconv.FormatFloat(x.Value, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case *RefExpr:
		if x.IsScalar() {
			return x.Name
		}
		subs := make([]string, len(x.Subs))
		for i, sub := range x.Subs {
			subs[i] = FormatExpr(sub)
		}
		return fmt.Sprintf("%s(%s)", x.Name, strings.Join(subs, ","))
	case *CallExpr:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = FormatExpr(a)
		}
		return fmt.Sprintf("%s(%s)", x.Name, strings.Join(args, ","))
	case *BinExpr:
		op := x.Op
		if op[0] != '.' { // arithmetic ops get no padding only for **
			if op == "**" {
				return fmt.Sprintf("%s**%s", formatOperand(x.L, precOf(op), false), formatOperand(x.R, precOf(op), true))
			}
			return fmt.Sprintf("%s %s %s", formatOperand(x.L, precOf(op), false), op, formatOperand(x.R, precOf(op), true))
		}
		return fmt.Sprintf("%s %s %s", formatOperand(x.L, precOf(op), false), op, formatOperand(x.R, precOf(op), true))
	case *UnExpr:
		if x.Op == ".NOT." {
			return fmt.Sprintf(".NOT. %s", formatOperand(x.X, 90, true))
		}
		return fmt.Sprintf("-%s", formatOperand(x.X, 90, true))
	}
	return "?"
}

// precOf gives relative binding strength for parenthesization decisions.
func precOf(op string) int {
	switch op {
	case ".OR.":
		return 10
	case ".AND.":
		return 20
	case ".LT.", ".LE.", ".GT.", ".GE.", ".EQ.", ".NE.":
		return 30
	case "+", "-":
		return 40
	case "*", "/":
		return 50
	case "**":
		return 60
	}
	return 100
}

// formatOperand parenthesizes an operand when its operator binds more
// loosely than the parent, or equally on the right-hand side (to preserve
// left associativity of -, /).
func formatOperand(e Expr, parentPrec int, right bool) string {
	s := FormatExpr(e)
	var prec int
	switch x := e.(type) {
	case *BinExpr:
		prec = precOf(x.Op)
	case *UnExpr:
		prec = 45
	default:
		return s
	}
	if prec < parentPrec || (right && prec == parentPrec) {
		return "(" + s + ")"
	}
	return s
}
