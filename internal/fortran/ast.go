package fortran

import "fmt"

// Program is the root of a parsed program unit.
type Program struct {
	Name   string       // from the PROGRAM statement, or "MAIN" if absent
	Arrays []*ArrayDecl // DIMENSION / typed array declarations, in order
	Params []*ParamDecl // PARAMETER constants, in order
	Body   []Stmt       // executable statements
}

// Array returns the declaration of the named array, or nil.
func (p *Program) Array(name string) *ArrayDecl {
	for _, a := range p.Arrays {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// ArrayDecl declares a one- or two-dimensional array. Only up to two
// dimensions are supported, matching the paper's analysis ("Only up to two
// dimensional arrays are considered in this paper").
type ArrayDecl struct {
	Name string
	Dims []int // 1 or 2 entries: rows M, columns N (N omitted for vectors)
	Line int
}

// Rows returns M, the number of rows (vector length for 1-D arrays).
func (a *ArrayDecl) Rows() int { return a.Dims[0] }

// Cols returns N, the number of columns (1 for vectors).
func (a *ArrayDecl) Cols() int {
	if len(a.Dims) == 2 {
		return a.Dims[1]
	}
	return 1
}

// Elems returns the total number of elements M*N.
func (a *ArrayDecl) Elems() int { return a.Rows() * a.Cols() }

// IsVector reports whether the array is one-dimensional.
func (a *ArrayDecl) IsVector() bool { return len(a.Dims) == 1 }

// ParamDecl is a named compile-time constant (PARAMETER (N = 100)).
type ParamDecl struct {
	Name  string
	Value float64
	IsInt bool
	Line  int
}

// Stmt is an executable statement.
type Stmt interface {
	stmtNode()
	// Pos returns the source line of the statement.
	Pos() int
}

// DoStmt is a DO loop:
//
//	DO 10 I = 1, N, 2      ...  10 CONTINUE
//	DO I = 1, N            ...  END DO
type DoStmt struct {
	Label string // terminating label, "" for END DO form
	Var   string
	From  Expr
	To    Expr
	Step  Expr // nil means 1
	Body  []Stmt
	Line  int
}

// AssignStmt is an assignment to a scalar or array element.
type AssignStmt struct {
	LHS  *RefExpr // scalar (no subscripts) or array element
	RHS  Expr
	Line int
}

// IfStmt is a structured IF. A logical IF ("IF (c) stmt") parses as an
// IfStmt with a single-statement Then and no Else.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt // may be nil; ELSE IF chains nest here
	Line int
}

// ExitStmt leaves the innermost enclosing DO loop.
type ExitStmt struct{ Line int }

// CycleStmt continues with the next iteration of the innermost DO loop.
type CycleStmt struct{ Line int }

// ContinueStmt is a CONTINUE used as a plain no-op statement (loop
// terminators are absorbed into DoStmt during parsing).
type ContinueStmt struct{ Line int }

func (*DoStmt) stmtNode()       {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*ExitStmt) stmtNode()     {}
func (*CycleStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

func (s *DoStmt) Pos() int       { return s.Line }
func (s *AssignStmt) Pos() int   { return s.Line }
func (s *IfStmt) Pos() int       { return s.Line }
func (s *ExitStmt) Pos() int     { return s.Line }
func (s *CycleStmt) Pos() int    { return s.Line }
func (s *ContinueStmt) Pos() int { return s.Line }

// Expr is an expression node.
type Expr interface {
	exprNode()
}

// NumExpr is a numeric literal.
type NumExpr struct {
	Value float64
	IsInt bool
}

// RefExpr is a variable reference or array element reference. A scalar
// variable has no subscripts. Whether a parenthesized name is an array
// reference or an intrinsic call is resolved by the parser against the
// declaration table and the intrinsic set.
type RefExpr struct {
	Name string
	Subs []Expr // nil for scalars
	Line int
}

// IsScalar reports whether the reference has no subscripts.
func (r *RefExpr) IsScalar() bool { return len(r.Subs) == 0 }

// CallExpr is an intrinsic function call (ABS, SQRT, MAX, MIN, MOD, SIGN,
// EXP, LOG, SIN, COS, FLOAT, REAL, INT, DBLE).
type CallExpr struct {
	Name string
	Args []Expr
}

// BinExpr is a binary operation. Op is one of + - * / ** and the dot
// operators .LT. .LE. .GT. .GE. .EQ. .NE. .AND. .OR.
type BinExpr struct {
	Op   string
	L, R Expr
}

// UnExpr is unary minus or .NOT.
type UnExpr struct {
	Op string // "-" or ".NOT."
	X  Expr
}

func (*NumExpr) exprNode()  {}
func (*RefExpr) exprNode()  {}
func (*CallExpr) exprNode() {}
func (*BinExpr) exprNode()  {}
func (*UnExpr) exprNode()   {}

// Intrinsics is the set of supported intrinsic function names.
var Intrinsics = map[string]bool{
	"ABS": true, "SQRT": true, "MAX": true, "MIN": true, "MOD": true,
	"SIGN": true, "EXP": true, "LOG": true, "SIN": true, "COS": true,
	"FLOAT": true, "REAL": true, "INT": true, "DBLE": true, "ATAN": true,
	"MAX0": true, "MIN0": true, "AMAX1": true, "AMIN1": true, "IABS": true,
}

// Walk calls fn for every statement in the subtree rooted at the given
// statements, in source order, recursing into loop and branch bodies.
// If fn returns false the walk stops.
func Walk(stmts []Stmt, fn func(Stmt) bool) bool {
	for _, s := range stmts {
		if !fn(s) {
			return false
		}
		switch st := s.(type) {
		case *DoStmt:
			if !Walk(st.Body, fn) {
				return false
			}
		case *IfStmt:
			if !Walk(st.Then, fn) {
				return false
			}
			if !Walk(st.Else, fn) {
				return false
			}
		}
	}
	return true
}

// WalkExprs calls fn for every expression appearing in the statement,
// including nested subexpressions and subscripts.
func WalkExprs(s Stmt, fn func(Expr)) {
	var walkExpr func(Expr)
	walkExpr = func(e Expr) {
		if e == nil {
			return
		}
		fn(e)
		switch x := e.(type) {
		case *RefExpr:
			for _, sub := range x.Subs {
				walkExpr(sub)
			}
		case *CallExpr:
			for _, a := range x.Args {
				walkExpr(a)
			}
		case *BinExpr:
			walkExpr(x.L)
			walkExpr(x.R)
		case *UnExpr:
			walkExpr(x.X)
		}
	}
	switch st := s.(type) {
	case *DoStmt:
		walkExpr(st.From)
		walkExpr(st.To)
		if st.Step != nil {
			walkExpr(st.Step)
		}
	case *AssignStmt:
		walkExpr(st.LHS)
		walkExpr(st.RHS)
	case *IfStmt:
		walkExpr(st.Cond)
	}
}

// ImplicitInteger reports whether a scalar name is integer-typed under the
// classic FORTRAN implicit rule (first letter I-N).
func ImplicitInteger(name string) bool {
	if name == "" {
		return false
	}
	c := name[0]
	return c >= 'I' && c <= 'N'
}

// ParseError describes a parse error with its source position.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("line %d: parse error: %s", e.Line, e.Msg)
}
