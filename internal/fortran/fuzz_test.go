package fortran

import "testing"

// FuzzParse throws arbitrary source text at the parser. The contract:
// Parse never panics, and a nil error always comes with a non-nil
// program. The seed corpus runs as ordinary unit tests during plain
// `go test`.
func FuzzParse(f *testing.F) {
	f.Add("PROGRAM P\nEND\n")
	f.Add("PROGRAM P\nDIMENSION A(128,16)\nDO I = 1, 128\n  DO J = 1, 16\n    A(I,J) = 0.0\n  END DO\nEND DO\nEND\n")
	f.Add("PROGRAM P\nDIMENSION A(10)\nDO 10 I = 1, 10\nA(I) = FLOAT(I)\n10 CONTINUE\nEND\n")
	f.Add("")
	f.Add("DO I = 1")
	f.Add("PROGRAM\n")
	f.Add("PROGRAM P\nDIMENSION A(0)\nEND\n")
	f.Add("PROGRAM P\nA(1,2,3,4,5) = 1\nEND\n")
	f.Add("PROGRAM P\nIF (A .GT. 1) THEN\nEND\n")

	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err == nil && prog == nil {
			t.Fatal("Parse returned nil program with nil error")
		}
	})
}
