package report

import (
	"strings"
	"testing"

	"cdmm/internal/core"
	"cdmm/internal/workloads"
)

func TestTimelineReport(t *testing.T) {
	w, err := workloads.Get("HWSCRT")
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.CompileSource(w.Name, w.Source)
	if err != nil {
		t.Fatal(err)
	}
	out, err := TimelineReport(nil, p, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"## Fault timeline (32 virtual-time buckets per policy)",
		"CD L", "LRU m=", "WS tau=",
		"PF=", "MEM=", "peak=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline report missing %q\n%s", want, out)
		}
	}
	// Three rows in each of the two strips.
	if n := strings.Count(out, "PF="); n != 3 {
		t.Errorf("fault strip has %d rows, want 3", n)
	}
	if n := strings.Count(out, "MEM="); n != 3 {
		t.Errorf("residency strip has %d rows, want 3", n)
	}
}
