package report

import (
	"fmt"
	"strings"

	"cdmm/internal/core"
	"cdmm/internal/engine"
	"cdmm/internal/obs"
	"cdmm/internal/policy"
	"cdmm/internal/vmsim"
)

// timelineRow is one policy's bucketed run for the timeline view.
type timelineRow struct {
	name string
	tl   *obs.Timeline
	res  vmsim.Result
}

// runCDLevels runs CD at every directive stratum 1..Δ on the engine's
// pool, returning the results indexed by level-1 (declaration order, so
// the report rows and the best-level choice are deterministic).
func runCDLevels(eng *engine.Engine, p *core.Program) ([]vmsim.Result, error) {
	levels := make([]int, p.MaxPI())
	for i := range levels {
		levels[i] = i + 1
	}
	return engine.MapNamed(eng, "cd-levels", levels, func(rc *engine.RunCtx, lvl int) (vmsim.Result, error) {
		rc.Describe(fmt.Sprintf("%s level %d", p.Name, lvl), "CD")
		res, err := p.RunCDObserved(core.CDOptions{Level: lvl}, rc.Obs)
		if err == nil {
			rc.Report(res)
		}
		return res, err
	})
}

// TimelineReport runs the program under CD (full directive set), the
// best-space-time LRU and the best-space-time WS, and renders side-by-side
// fault-timeline and residency sparklines over `buckets` virtual-time
// buckets — the time-resolved view behind the paper's end-of-run PF/MEM/ST
// aggregates. Each row is normalized to its own virtual-time span, so the
// strips show each policy's phase structure rather than a shared clock.
// The three rows are independent simulations and run in parallel on the
// engine's pool (nil means engine.Default()); the rendered text is
// byte-identical at any parallelism level.
func TimelineReport(eng *engine.Engine, p *core.Program, buckets int) (string, error) {
	if buckets < 1 {
		buckets = 64
	}
	eng = engine.Or(eng)
	tr, err := p.Trace()
	if err != nil {
		return "", err
	}
	lru, err := p.LRUSweep()
	if err != nil {
		return "", err
	}
	ws, err := p.WSSweep()
	if err != nil {
		return "", err
	}
	m, _ := lru.MinST()
	tau, _, err := ws.MinST()
	if err != nil {
		return "", err
	}

	// The CD row runs the directive stratum with the least space-time
	// cost — the level the sweep command would crown. Ties break toward
	// the shallower level (strict-less scan in declaration order).
	levelRes, err := runCDLevels(eng, p)
	if err != nil {
		return "", err
	}
	cdLevel, bestST := 1, 0.0
	for i, r := range levelRes {
		if i == 0 || r.ST() < bestST {
			cdLevel, bestST = i+1, r.ST()
		}
	}

	refs := tr.RefsOnly()
	type rowSpec struct {
		label string
		run   func(o *obs.Observer) (vmsim.Result, error)
	}
	specs := []rowSpec{
		{fmt.Sprintf("CD L%d", cdLevel), func(o *obs.Observer) (vmsim.Result, error) {
			return p.RunCDObserved(core.CDOptions{Level: cdLevel}, o)
		}},
		{fmt.Sprintf("LRU m=%d", m), func(o *obs.Observer) (vmsim.Result, error) {
			return vmsim.RunObserved(refs, policy.NewLRU(m), o), nil
		}},
		{fmt.Sprintf("WS tau=%d", tau), func(o *obs.Observer) (vmsim.Result, error) {
			return vmsim.RunObserved(refs, policy.NewWS(tau), o), nil
		}},
	}
	// Each row collects its own timeline events, forwarding to the run's
	// engine-provided observer so -events files still see these runs (in
	// deterministic declaration order, via the engine's merge).
	rows, err := engine.MapNamed(eng, "timeline", specs, func(rc *engine.RunCtx, s rowSpec) (timelineRow, error) {
		rc.Describe(s.label, "")
		col := &obs.Collector{}
		o := &obs.Observer{Tracer: col}
		if amb := rc.Obs; amb != nil {
			if amb.Tracer != nil {
				o.Tracer = obs.MultiTracer{col, amb.Tracer}
			}
			o.Metrics = amb.Metrics
		}
		res, err := s.run(o)
		if err != nil {
			return timelineRow{}, err
		}
		label := s.label
		if res.Degraded {
			// A CD run that tripped directive validation finished on its WS
			// fallback; the row no longer shows pure CD behavior.
			label += " (degraded)"
		}
		return timelineRow{name: label, tl: obs.NewTimeline(col.Events, buckets), res: res}, nil
	})
	if err != nil {
		return "", err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "\n## Fault timeline (%d virtual-time buckets per policy)\n\n", buckets)
	b.WriteString("Faults per bucket:\n\n```\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %s  PF=%d\n", r.name, obs.Sparkline(r.tl.FaultsF()), r.res.Faults)
	}
	b.WriteString("```\n\nResident set (time-weighted mean pages per bucket):\n\n```\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %s  MEM=%.2f peak=%d\n",
			r.name, obs.Sparkline(r.tl.Resident), r.res.MEM(), r.res.MaxResident)
	}
	b.WriteString("```\n")
	return b.String(), nil
}
