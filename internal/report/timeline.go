package report

import (
	"fmt"
	"strings"

	"cdmm/internal/core"
	"cdmm/internal/obs"
	"cdmm/internal/policy"
	"cdmm/internal/vmsim"
)

// timelineRow is one policy's bucketed run for the timeline view.
type timelineRow struct {
	name string
	tl   *obs.Timeline
	res  vmsim.Result
}

// TimelineReport runs the program under CD (full directive set), the
// best-space-time LRU and the best-space-time WS, and renders side-by-side
// fault-timeline and residency sparklines over `buckets` virtual-time
// buckets — the time-resolved view behind the paper's end-of-run PF/MEM/ST
// aggregates. Each row is normalized to its own virtual-time span, so the
// strips show each policy's phase structure rather than a shared clock.
func TimelineReport(p *core.Program, buckets int) (string, error) {
	if buckets < 1 {
		buckets = 64
	}
	tr, err := p.Trace()
	if err != nil {
		return "", err
	}
	lru, err := p.LRUSweep()
	if err != nil {
		return "", err
	}
	ws, err := p.WSSweep()
	if err != nil {
		return "", err
	}
	m, _ := lru.MinST()
	tau, _ := ws.MinST()

	// collect runs one policy with an in-memory collector (forwarding to
	// any ambient observer so -events files still see these runs).
	collect := func(label string, run func(o *obs.Observer) (vmsim.Result, error)) (timelineRow, error) {
		col := &obs.Collector{}
		o := &obs.Observer{Tracer: col}
		if d := vmsim.DefaultObserver; d != nil {
			if d.Tracer != nil {
				o.Tracer = obs.MultiTracer{col, d.Tracer}
			}
			o.Metrics = d.Metrics
		}
		res, err := run(o)
		if err != nil {
			return timelineRow{}, err
		}
		return timelineRow{name: label, tl: obs.NewTimeline(col.Events, buckets), res: res}, nil
	}

	// The CD row runs the directive stratum with the least space-time
	// cost — the level the sweep command would crown.
	cdLevel := 1
	bestST := 0.0
	for lvl := 1; lvl <= p.MaxPI(); lvl++ {
		r, err := p.RunCD(core.CDOptions{Level: lvl})
		if err != nil {
			return "", err
		}
		if lvl == 1 || r.ST() < bestST {
			cdLevel, bestST = lvl, r.ST()
		}
	}

	refs := tr.StripDirectives()
	rows := make([]timelineRow, 0, 3)
	row, err := collect(fmt.Sprintf("CD L%d", cdLevel), func(o *obs.Observer) (vmsim.Result, error) {
		return p.RunCDObserved(core.CDOptions{Level: cdLevel}, o)
	})
	if err != nil {
		return "", err
	}
	rows = append(rows, row)
	row, err = collect(fmt.Sprintf("LRU m=%d", m), func(o *obs.Observer) (vmsim.Result, error) {
		return vmsim.RunObserved(refs, policy.NewLRU(m), o), nil
	})
	if err != nil {
		return "", err
	}
	rows = append(rows, row)
	row, err = collect(fmt.Sprintf("WS tau=%d", tau), func(o *obs.Observer) (vmsim.Result, error) {
		return vmsim.RunObserved(refs, policy.NewWS(tau), o), nil
	})
	if err != nil {
		return "", err
	}
	rows = append(rows, row)

	var b strings.Builder
	fmt.Fprintf(&b, "\n## Fault timeline (%d virtual-time buckets per policy)\n\n", buckets)
	b.WriteString("Faults per bucket:\n\n```\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %s  PF=%d\n", r.name, obs.Sparkline(r.tl.FaultsF()), r.res.Faults)
	}
	b.WriteString("```\n\nResident set (time-weighted mean pages per bucket):\n\n```\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %s  MEM=%.2f peak=%d\n",
			r.name, obs.Sparkline(r.tl.Resident), r.res.MEM(), r.res.MaxResident)
	}
	b.WriteString("```\n")
	return b.String(), nil
}
