package report

import (
	"runtime"
	"strings"
	"testing"

	"cdmm/internal/engine"

	"cdmm/internal/core"
	"cdmm/internal/workloads"
)

func TestGenerateFullReport(t *testing.T) {
	w, err := workloads.Get("HWSCRT")
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.CompileSource(w.Name, w.Source)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Generate(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# HWSCRT",
		"## Arrays",
		"| F | 64×64 | 64 | 1 |",
		"## Loop nest",
		"## Locality structure",
		"## Inserted memory directives",
		"ALLOCATE",
		"## Compiler advisories",
		"## Execution trace",
		"## Runtime localities",
		"## Policy comparison",
		"best LRU",
		"best WS",
		"## Fault timeline",
		"Resident set",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestGenerateSkips(t *testing.T) {
	p, err := core.CompileSource("T", `
PROGRAM T
DIMENSION V(128)
DO I = 1, 128
  V(I) = 1.0
END DO
END
`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Generate(p, Options{SkipBLI: true, SkipSimulation: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "Runtime localities") {
		t.Error("BLI section present despite SkipBLI")
	}
	if strings.Contains(out, "Policy comparison") {
		t.Error("simulation section present despite SkipSimulation")
	}
	if !strings.Contains(out, "## Arrays") {
		t.Error("static sections missing")
	}
}

func TestReferenceOrdersColumn(t *testing.T) {
	p, err := core.CompileSource("T", `
PROGRAM T
DIMENSION A(64,8)
DO I = 1, 64
  DO J = 1, 8
    A(I,J) = 0.0
  END DO
END DO
END
`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Generate(p, Options{SkipBLI: true, SkipSimulation: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "A:row-wise") {
		t.Errorf("loop table missing the row-wise classification:\n%s", out)
	}
	if !strings.Contains(out, "interchange") {
		t.Error("advisories missing the interchange finding")
	}
}

// TestReportDeterministicAcrossParallelism checks the report satellite of
// the engine's determinism contract: the full markdown report (policy
// comparison table, timeline strips) is byte-identical whether its runs
// execute sequentially or on a saturated worker pool.
func TestReportDeterministicAcrossParallelism(t *testing.T) {
	w, err := workloads.Get("HWSCRT")
	if err != nil {
		t.Fatal(err)
	}
	// A fresh Program per generation: Summary() mentions the trace length
	// once the lazy trace exists, so reusing one Program would differ on
	// the second render independent of parallelism.
	gen := func(workers int) string {
		p, err := core.CompileSource(w.Name, w.Source)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Generate(p, Options{SkipBLI: true, Engine: engine.New(workers)})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := gen(1)
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		if got := gen(workers); got != want {
			t.Errorf("report differs between 1 and %d workers", workers)
		}
	}
}
