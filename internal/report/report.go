// Package report generates a complete per-program analysis document: the
// compiler's view (arrays, loop nest, reference orders, locality sizes,
// inserted directives), the runtime view (trace statistics, detected
// Madison-Batson locality intervals), the policy comparison (CD at every
// stratum versus tuned LRU and WS), and the advisor's findings — the
// full story the paper tells, for any program.
package report

import (
	"fmt"
	"sort"
	"strings"

	"cdmm/internal/advisor"
	"cdmm/internal/bli"
	"cdmm/internal/core"
	"cdmm/internal/engine"
	"cdmm/internal/explain"
	"cdmm/internal/locality"
	"cdmm/internal/sem"
	"cdmm/internal/trace"
)

// Options controls report contents.
type Options struct {
	// SkipBLI disables the (relatively expensive) runtime locality
	// interval detection.
	SkipBLI bool
	// SkipSimulation disables the policy comparison section.
	SkipSimulation bool
	// TimelineBuckets sets the virtual-time bucket count of the fault
	// timeline section; 0 means 64.
	TimelineBuckets int
	// Engine executes the simulation sections' runs; nil means
	// engine.Default(). The report text is byte-identical at any
	// parallelism level.
	Engine *engine.Engine
}

// Generate renders the markdown report for a compiled program.
func Generate(p *core.Program, opts Options) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n\n%s\n", p.Name, p.Summary())

	writeArrays(&b, p)
	writeLoops(&b, p)

	b.WriteString("\n## Locality structure (Figure 1 view)\n\n```\n")
	b.WriteString(p.RenderLocalityTree())
	b.WriteString("```\n")

	b.WriteString("\n## Inserted memory directives (Figure 5c view)\n\n```\n")
	b.WriteString(p.RenderDirectives())
	b.WriteString("```\n")

	writeAdvisories(&b, p)

	tr, err := p.Trace()
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "\n## Execution trace\n\n%s\n", tr.Summary())

	if !opts.SkipBLI {
		refs := tr.Pages()
		ivs := bli.Detect(refs, bli.Config{MaxSize: p.V() + 4})
		b.WriteString("\n## Runtime localities (Madison-Batson intervals)\n\n```\n")
		b.WriteString(bli.Render(ivs, len(refs)))
		b.WriteString("```\n")
		fmt.Fprintf(&b, "\nDominant runtime locality sizes (≥25%% coverage): %v\n",
			bli.DominantSizes(ivs, len(refs), 0.25))
	}

	if !opts.SkipSimulation {
		eng := engine.Or(opts.Engine)
		if err := writeSimulation(&b, p, eng); err != nil {
			return "", err
		}
		if err := writeAttribution(&b, tr); err != nil {
			return "", err
		}
		buckets := opts.TimelineBuckets
		if buckets == 0 {
			buckets = 64
		}
		tl, err := TimelineReport(eng, p, buckets)
		if err != nil {
			return "", err
		}
		b.WriteString(tl)
	}
	return b.String(), nil
}

func writeArrays(b *strings.Builder, p *core.Program) {
	b.WriteString("\n## Arrays\n\n")
	fmt.Fprintf(b, "| array | shape | AVS (pages) | CVS (pages) |\n|---|---|---|---|\n")
	for _, a := range p.AST.Arrays {
		shape := fmt.Sprintf("%d", a.Rows())
		if !a.IsVector() {
			shape = fmt.Sprintf("%d×%d", a.Rows(), a.Cols())
		}
		fmt.Fprintf(b, "| %s | %s | %d | %d |\n", a.Name, shape, p.Layout.AVS(a.Name), p.Layout.CVS(a.Name))
	}
}

func writeLoops(b *strings.Builder, p *core.Program) {
	b.WriteString("\n## Loop nest\n\n")
	fmt.Fprintf(b, "| loop | level Λ | PI | locality X (pages) | reference orders |\n|---|---|---|---|---|\n")
	for _, l := range p.Info.Loops {
		fmt.Fprintf(b, "| %s | %d | %d | %d | %s |\n",
			l.Label(), l.Depth, p.Plan.PI[l], p.Analysis.ActiveSize(l), orders(p.Analysis, l))
	}
}

// orders summarizes the Θ of the arrays referenced directly in the loop.
func orders(a *locality.Analysis, l *sem.Loop) string {
	set := map[string]bool{}
	for _, g := range a.Groups {
		if g.Loop == l {
			set[fmt.Sprintf("%s:%s", g.Array, g.Order)] = true
		}
	}
	if len(set) == 0 {
		return "—"
	}
	parts := make([]string, 0, len(set))
	for s := range set {
		parts = append(parts, s)
	}
	sort.Strings(parts)
	return strings.Join(parts, ", ")
}

func writeAdvisories(b *strings.Builder, p *core.Program) {
	findings := advisor.Analyze(p.Analysis, advisor.Options{})
	b.WriteString("\n## Compiler advisories\n\n```\n")
	b.WriteString(advisor.Render(findings))
	b.WriteString("```\n")
}

// writeAttribution explains the CD run's faults site by site: the
// hotspot table and directive coverage from the attribution ledger. A
// trace without the site side-band (possible for externally built
// traces) simply skips the section.
func writeAttribution(b *strings.Builder, tr *trace.Trace) error {
	if !tr.HasSites() {
		return nil
	}
	rep, err := explain.Analyze(tr, explain.Options{})
	if err != nil {
		return err
	}
	b.WriteString("\n## Fault attribution (CD level 1)\n\n")
	ranked := rep.CD.Rank()
	fmt.Fprintf(b, "| rank | site | refs | PF | IO | MEM | share |\n|---|---|---|---|---|---|---|\n")
	shown := 0
	for _, s := range ranked {
		if shown == 8 {
			break
		}
		if s.Faults == 0 {
			continue
		}
		shown++
		fmt.Fprintf(b, "| %d | %s | %d | %d | %d | %.2f | %.1f%% |\n",
			shown, s.Name(), s.Refs, s.Faults, s.IO(), s.MEM(),
			float64(s.Faults)/float64(rep.CD.Faults)*100)
	}
	if hs := rep.CD.Hotspot(); hs != nil {
		fmt.Fprintf(b, "\nHotspot: **%s** takes %d of %d faults.\n",
			hs.Name(), hs.Faults, rep.CD.Faults)
	}
	if dirs := rep.CD.DirectiveSites(); len(dirs) > 0 {
		fmt.Fprintf(b, "\n| directive site | allocs | locks | unlocks | locked hits | shrink PF | release PF | lock releases |\n|---|---|---|---|---|---|---|---|\n")
		for _, s := range dirs {
			fmt.Fprintf(b, "| %s | %d | %d | %d | %d | %d | %d | %d |\n",
				s.Name(), s.Allocs, s.Locks, s.Unlocks,
				s.LockedHits, s.ShrinkFaults, s.ReleaseFaults, s.LockReleases)
		}
	}
	return nil
}

func writeSimulation(b *strings.Builder, p *core.Program, eng *engine.Engine) error {
	b.WriteString("\n## Policy comparison\n\n")
	fmt.Fprintf(b, "| policy | PF | MEM | ST |\n|---|---|---|---|\n")
	results, err := runCDLevels(eng, p)
	if err != nil {
		return err
	}
	for i, res := range results {
		fmt.Fprintf(b, "| CD level %d | %d | %.2f | %.4g |\n", i+1, res.Faults, res.MEM(), res.ST())
	}
	lru, err := p.LRUSweep()
	if err != nil {
		return err
	}
	m, st := lru.MinST()
	fmt.Fprintf(b, "| best LRU (m=%d) | %d | %.2f | %.4g |\n", m, lru.Faults(m), lru.MEM(m), st)
	ws, err := p.WSSweep()
	if err != nil {
		return err
	}
	tau, res, err := ws.MinST()
	if err != nil {
		return err
	}
	fmt.Fprintf(b, "| best WS (τ=%d) | %d | %.2f | %.4g |\n", tau, res.Faults, res.MEM(), res.ST())
	return nil
}
