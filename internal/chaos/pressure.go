package chaos

import (
	"cdmm/internal/mem"
	"cdmm/internal/policy"
)

// Spike is one capacity excursion: during references [From, To) the
// machine can give the program at most Cap frames.
type Spike struct {
	From, To int
	Cap      int
}

// Schedule is a deterministic capacity timeline for a machine-class
// fault: Total frames normally, overridden by any covering spike. It
// models multiprogramming pressure — other jobs arriving and departing —
// without simulating the other jobs.
type Schedule struct {
	Total  int
	Spikes []Spike
}

// Cap returns the capacity in frames at reference index i.
func (s *Schedule) Cap(i int) int {
	for _, sp := range s.Spikes {
		if i >= sp.From && i < sp.To {
			return sp.Cap
		}
	}
	return s.Total
}

// memPressure builds the mem-pressure fault's schedule: 1-4 spikes (more
// with higher intensity) of refs/8 references each, during which other
// jobs leave the program only a handful of frames — 1-4 at full
// intensity, up to ~15 at low intensity. Spike caps are absolute (not a
// fraction of the address space) because CD resident sets are a few
// pages; fractional shrinks would never bite.
func memPressure(v, refs int, rng *Rand, intensity float64) *Schedule {
	if v < 1 {
		v = 1
	}
	s := &Schedule{Total: v}
	if refs <= 0 || intensity <= 0 {
		return s
	}
	n := 1 + int(intensity*3)
	width := refs / 8
	if width < 1 {
		width = 1
	}
	for i := 0; i < n; i++ {
		from := rng.Intn(refs)
		cap := 1 + rng.Intn(4+int((1-intensity)*12))
		if cap > v {
			cap = v
		}
		s.Spikes = append(s.Spikes, Spike{From: from, To: from + width, Cap: cap})
	}
	return s
}

// Pressured drives a policy under a capacity schedule: before each
// reference the schedule's current capacity is imposed on the wrapped
// policy — CD sees it through its Avail hook (so ALLOCATE grants shrink)
// and through immediate frame reclamation when the resident set
// overshoots a shrink. Directive-blind policies only feel the Avail-less
// part, i.e. nothing: machine faults are a CD-specific stressor, exactly
// like the multiprogramming driver that Avail exists for.
type Pressured struct {
	policy.Policy
	sched *Schedule
	cd    *policy.CD
	clock int
}

// NewPressured wraps p with the capacity schedule. When p is (a wrapper
// around) CD, its Avail hook is pointed at the schedule.
func NewPressured(p policy.Policy, sched *Schedule) *Pressured {
	pr := &Pressured{Policy: p, sched: sched, cd: policy.AsCD(p)}
	if pr.cd != nil {
		pr.cd.Avail = func() int {
			free := pr.sched.Cap(pr.clock) - pr.cd.Resident()
			if free < 0 {
				return 0
			}
			return free
		}
	}
	return pr
}

// Unwrap exposes the wrapped policy (policy.AsCD sees through it).
func (p *Pressured) Unwrap() policy.Policy { return p.Policy }

// Charged keeps the wrapped policy's space-time charging rule.
func (p *Pressured) Charged() int { return policy.Charge(p.Policy) }

// Ref implements Policy: advance the pressure clock, reclaim frames if a
// spike shrank capacity below the resident set, then pass the reference
// through.
func (p *Pressured) Ref(pg mem.Page) bool {
	p.clock++
	if p.cd != nil {
		if over := p.cd.Resident() - p.sched.Cap(p.clock); over > 0 {
			p.cd.Reclaim(over)
		}
	}
	return p.Policy.Ref(pg)
}

// Reset implements Policy.
func (p *Pressured) Reset() {
	p.clock = 0
	p.Policy.Reset()
}

var _ policy.Policy = (*Pressured)(nil)
var _ policy.Charger = (*Pressured)(nil)

// pressureOscillate builds a square wave over capacity: alternating
// full-capacity and floor-capacity half-periods for the whole run,
// modeling a periodic co-tenant (a cron job, a compaction cycle) rather
// than mem-pressure's isolated spikes. The floor is 1-3 frames at full
// intensity, up to ~11 at low intensity; the period is drawn so the run
// sees 3-8 full cycles.
func pressureOscillate(v, refs int, rng *Rand, intensity float64) *Schedule {
	if v < 1 {
		v = 1
	}
	s := &Schedule{Total: v}
	if refs <= 0 || intensity <= 0 {
		return s
	}
	period := refs / (6 + rng.Intn(10))
	if period < 1 {
		period = 1
	}
	floor := 1 + rng.Intn(3+int((1-intensity)*8))
	if floor > v {
		floor = v
	}
	for from := period; from < refs; from += 2 * period {
		s.Spikes = append(s.Spikes, Spike{From: from, To: from + period, Cap: floor})
	}
	return s
}
