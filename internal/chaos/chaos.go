// Package chaos is the deterministic fault-injection harness for the CD
// policy's robustness study. The paper's §4 policy assumes the compiler-
// emitted directive stream is correct; chaos perturbs that assumption
// three ways — corrupting the directive stream, corrupting the page-
// reference trace itself, and shrinking the machine under the program
// mid-run — so the degraded-mode contract (policy.CheckConfig) and the
// checked simulator (vmsim.RunChecked) can be exercised over every
// workload. All injectors are pure functions of (trace, seeded PRNG,
// intensity): the same seed reproduces the same perturbation bit for bit
// at any parallelism level.
package chaos

import (
	"fmt"

	"cdmm/internal/trace"
)

// Class discriminates what a fault perturbs.
type Class string

const (
	// ClassDirective faults corrupt the compiler's ALLOCATE/LOCK/UNLOCK
	// stream while leaving the reference string intact.
	ClassDirective Class = "directive"
	// ClassTrace faults corrupt the page-reference string itself.
	ClassTrace Class = "trace"
	// ClassMachine faults leave the trace alone and instead shrink the
	// memory available to the program mid-run.
	ClassMachine Class = "machine"
)

// Fault is one registered injector. Directive- and trace-class faults
// implement Perturb; machine-class faults implement Pressure. Intensity
// is a dial in [0, 1]: 0 injects nothing, 1 is the heaviest perturbation
// the fault models.
type Fault struct {
	Name  string
	Class Class
	Desc  string

	// Perturb returns a perturbed copy of the trace (the input is never
	// mutated — compiled traces are shared and memoized). Nil for
	// machine-class faults.
	Perturb func(tr *trace.Trace, rng *Rand, intensity float64) *trace.Trace

	// Pressure builds the capacity schedule for a machine-class fault,
	// given the program's virtual size v (pages) and reference count.
	// Nil for directive- and trace-class faults.
	Pressure func(v, refs int, rng *Rand, intensity float64) *Schedule
}

// faults is the registry, in the fixed order the fault matrix iterates.
var faults = []Fault{
	{Name: "drop-directives", Class: ClassDirective,
		Desc:    "each directive event is dropped with probability = intensity",
		Perturb: dropDirectives},
	{Name: "dup-directives", Class: ClassDirective,
		Desc:    "each directive event is duplicated with probability = intensity",
		Perturb: dupDirectives},
	{Name: "reorder-directives", Class: ClassDirective,
		Desc:    "each directive event slides up to 64 events later with probability = intensity",
		Perturb: reorderDirectives},
	{Name: "corrupt-priorities", Class: ClassDirective,
		Desc:    "ALLOCATE arm PIs and LOCK PJs are randomized with probability = intensity",
		Perturb: corruptPriorities},
	{Name: "lock-no-unlock", Class: ClassDirective,
		Desc:    "each UNLOCK is dropped with probability = intensity, leaving locks to pile up",
		Perturb: lockNoUnlock},
	{Name: "unknown-segment", Class: ClassDirective,
		Desc:    "LOCK page sets are redirected past the program's address space with probability = intensity",
		Perturb: unknownSegment},
	{Name: "stale-directives", Class: ClassDirective,
		Desc:    "ALLOCATE requests are rescaled by 1/4x-8x with probability = intensity (post-detune staleness)",
		Perturb: staleDirectives},
	{Name: "bitflip-pages", Class: ClassTrace,
		Desc:    "one low page-number bit flips per reference with probability = intensity/100",
		Perturb: bitflipPages},
	{Name: "truncate", Class: ClassTrace,
		Desc:    "the trace is cut to its first (1 - intensity) fraction of events",
		Perturb: truncateTrace},
	{Name: "wild-pages", Class: ClassTrace,
		Desc:    "references are redirected far out of the address space with probability = intensity/100",
		Perturb: wildPages},
	{Name: "mem-pressure", Class: ClassMachine,
		Desc:     "mid-run capacity spikes shrink available memory by up to intensity",
		Pressure: memPressure},
	// New faults append here: the matrix derives per-cell seeds from the
	// fault name, but rows render in registry order, so appending keeps
	// every existing cell byte-identical.
	{Name: "tenant-kill", Class: ClassTrace,
		Desc:    "the program is killed mid-run 1-3 times and restarted from the beginning, replaying all directives",
		Perturb: tenantKill},
	{Name: "pressure-oscillate", Class: ClassMachine,
		Desc:     "capacity square-waves between full and a few frames for the whole run (periodic co-tenant)",
		Pressure: pressureOscillate},
}

// Faults returns the registry in its fixed matrix order. The returned
// slice is shared; do not mutate it.
func Faults() []Fault { return faults }

// Get returns the named fault.
func Get(name string) (Fault, error) {
	for _, f := range faults {
		if f.Name == name {
			return f, nil
		}
	}
	return Fault{}, fmt.Errorf("chaos: unknown fault %q", name)
}

// Names returns the fault names in matrix order.
func Names() []string {
	out := make([]string, len(faults))
	for i, f := range faults {
		out[i] = f.Name
	}
	return out
}
