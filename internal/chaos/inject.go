package chaos

import (
	"cdmm/internal/directive"
	"cdmm/internal/mem"
	"cdmm/internal/trace"
)

// clone returns a copy of tr with private event and side-table slices.
// Side-table *entries* are still shared with the original (compiled
// traces are memoized and must never be mutated); injectors that edit an
// entry must replace it with their own copy.
func clone(tr *trace.Trace, suffix string) *trace.Trace {
	return &trace.Trace{
		Name:       tr.Name + "+" + suffix,
		Events:     append([]trace.Event(nil), tr.Events...),
		Allocs:     append([]trace.AllocDirective(nil), tr.Allocs...),
		LockSets:   append([]trace.LockSet(nil), tr.LockSets...),
		UnlockSets: append([][]mem.Page(nil), tr.UnlockSets...),
		Refs:       tr.Refs,
		Distinct:   tr.Distinct,
	}
}

// rebuild recomputes the reference statistics (Refs, Distinct) of a
// perturbed trace from its event list.
func rebuild(t *trace.Trace) *trace.Trace {
	t.Refs = 0
	seen := map[mem.Page]bool{}
	for _, e := range t.Events {
		if e.Kind == trace.EvRef {
			t.Refs++
			seen[mem.Page(e.Arg)] = true
		}
	}
	t.Distinct = len(seen)
	return t
}

// maxRefPage returns the largest page number the trace references (-1
// for an empty reference string).
func maxRefPage(tr *trace.Trace) int {
	max := -1
	for _, e := range tr.Events {
		if e.Kind == trace.EvRef && int(e.Arg) > max {
			max = int(e.Arg)
		}
	}
	return max
}

// dropDirectives removes each directive event with probability intensity
// — the "compiler forgot to emit it" fault. The reference string is
// untouched, so only CD sees a difference.
func dropDirectives(tr *trace.Trace, rng *Rand, intensity float64) *trace.Trace {
	out := clone(tr, "drop")
	kept := out.Events[:0]
	for _, e := range out.Events {
		if e.Kind != trace.EvRef && rng.Bool(intensity) {
			continue
		}
		kept = append(kept, e)
	}
	out.Events = kept
	return rebuild(out)
}

// dupDirectives emits each directive event twice with probability
// intensity — re-executed directives must be idempotent for CD.
func dupDirectives(tr *trace.Trace, rng *Rand, intensity float64) *trace.Trace {
	out := clone(tr, "dup")
	events := make([]trace.Event, 0, len(out.Events))
	for _, e := range out.Events {
		events = append(events, e)
		if e.Kind != trace.EvRef && rng.Bool(intensity) {
			events = append(events, e)
		}
	}
	out.Events = events
	return rebuild(out)
}

// reorderDirectives slides each directive event 1-64 positions later
// with probability intensity, modeling directives arriving after the
// loop they were meant to precede.
func reorderDirectives(tr *trace.Trace, rng *Rand, intensity float64) *trace.Trace {
	out := clone(tr, "reorder")
	for i := 0; i < len(out.Events); i++ {
		e := out.Events[i]
		if e.Kind == trace.EvRef || !rng.Bool(intensity) {
			continue
		}
		to := i + 1 + rng.Intn(64)
		if to >= len(out.Events) {
			to = len(out.Events) - 1
		}
		copy(out.Events[i:to], out.Events[i+1:to+1])
		out.Events[to] = e
		// The slid event is re-visited at its new position; skipping past
		// it keeps one slide per original event.
		i = to
	}
	return rebuild(out)
}

// corruptPriorities randomizes ALLOCATE arm priority indexes and LOCK
// priorities with probability intensity per side-table entry — breaking
// the strictly-decreasing-PI contract (and sometimes the PJ >= 1 one)
// that the CD validator checks.
func corruptPriorities(tr *trace.Trace, rng *Rand, intensity float64) *trace.Trace {
	out := clone(tr, "badpri")
	for i, d := range out.Allocs {
		if !rng.Bool(intensity) {
			continue
		}
		arms := append([]directive.Arm(nil), d.Arms...)
		arms[rng.Intn(len(arms))].PI = rng.Intn(10) // 0 is an outright violation
		out.Allocs[i] = trace.AllocDirective{Label: d.Label, Arms: arms}
	}
	for i, ls := range out.LockSets {
		if !rng.Bool(intensity) {
			continue
		}
		out.LockSets[i] = trace.LockSet{PJ: rng.Intn(10), Site: ls.Site, Pages: ls.Pages}
	}
	return out
}

// lockNoUnlock drops each UNLOCK with probability intensity, so locks
// accumulate until memory pressure forces their release (the §3.2
// pressure valve) — a liveness fault rather than a contract violation.
func lockNoUnlock(tr *trace.Trace, rng *Rand, intensity float64) *trace.Trace {
	out := clone(tr, "nounlock")
	kept := out.Events[:0]
	for _, e := range out.Events {
		if e.Kind == trace.EvUnlock && rng.Bool(intensity) {
			continue
		}
		kept = append(kept, e)
	}
	out.Events = kept
	return rebuild(out)
}

// unknownSegment redirects LOCK page sets past the program's address
// space with probability intensity per lock set — the mistargeted-
// directive fault the validator's range check exists for.
func unknownSegment(tr *trace.Trace, rng *Rand, intensity float64) *trace.Trace {
	out := clone(tr, "unkseg")
	v := maxRefPage(tr) + 1
	for i, ls := range out.LockSets {
		if len(ls.Pages) == 0 || !rng.Bool(intensity) {
			continue
		}
		pages := append([]mem.Page(nil), ls.Pages...)
		pages[rng.Intn(len(pages))] = mem.Page(v + 1 + rng.Intn(1024))
		out.LockSets[i] = trace.LockSet{PJ: ls.PJ, Site: ls.Site, Pages: pages}
	}
	return out
}

// staleDirectives rescales ALLOCATE requests by a power-of-two factor in
// [1/4, 8] with probability intensity per directive — locality estimates
// left stale after the program was re-tuned. Scaling a whole else-chain
// uniformly preserves the monotonicity contract, so moderate staleness
// degrades performance silently; a large scale-up can push a request
// past the address space and trip the validator instead.
func staleDirectives(tr *trace.Trace, rng *Rand, intensity float64) *trace.Trace {
	out := clone(tr, "stale")
	factors := []struct{ num, den int }{{1, 4}, {1, 2}, {2, 1}, {4, 1}, {8, 1}}
	for i, d := range out.Allocs {
		if !rng.Bool(intensity) {
			continue
		}
		f := factors[rng.Intn(len(factors))]
		arms := append([]directive.Arm(nil), d.Arms...)
		for j := range arms {
			x := arms[j].X * f.num / f.den
			if x < 1 {
				x = 1
			}
			arms[j].X = x
		}
		out.Allocs[i] = trace.AllocDirective{Label: d.Label, Arms: arms}
	}
	return out
}

// bitflipPages flips one of the low 12 page-number bits per reference
// with probability intensity/100, modeling soft memory errors in the
// address path. Flipped pages may land outside the program's real
// footprint; a robust simulator must treat them as cold pages, not
// crash.
func bitflipPages(tr *trace.Trace, rng *Rand, intensity float64) *trace.Trace {
	out := clone(tr, "bitflip")
	p := intensity / 100
	for i, e := range out.Events {
		if e.Kind == trace.EvRef && rng.Bool(p) {
			out.Events[i].Arg = e.Arg ^ (1 << rng.Intn(12))
		}
	}
	return rebuild(out)
}

// truncateTrace cuts the trace to its first (1 - intensity) fraction of
// events — the program crashed or the trace file was cut short. Every
// accounting identity must still hold over the prefix.
func truncateTrace(tr *trace.Trace, _ *Rand, intensity float64) *trace.Trace {
	out := clone(tr, "trunc")
	keep := int(float64(len(out.Events)) * (1 - intensity))
	if keep < 0 {
		keep = 0
	}
	out.Events = out.Events[:keep]
	return rebuild(out)
}

// wildPages redirects references far outside the address space with
// probability intensity/100 per reference — wild pointers rather than
// single bit flips.
func wildPages(tr *trace.Trace, rng *Rand, intensity float64) *trace.Trace {
	out := clone(tr, "wild")
	v := maxRefPage(tr) + 1
	p := intensity / 100
	for i, e := range out.Events {
		if e.Kind == trace.EvRef && rng.Bool(p) {
			out.Events[i].Arg = int32(v + 1 + rng.Intn(1<<16))
		}
	}
	return rebuild(out)
}

// tenantKill models a program killed mid-run and restarted from the
// beginning: the trace becomes 1-3 partial attempts (random prefixes,
// more and longer with higher intensity) followed by the complete run.
// Every directive in a killed attempt replays on restart, so allocation
// and locking must be idempotent across re-execution — the same contract
// the kernel's chaos kill exercises at the scheduler level.
func tenantKill(tr *trace.Trace, rng *Rand, intensity float64) *trace.Trace {
	out := clone(tr, "kill")
	if len(out.Events) == 0 || intensity <= 0 {
		return out
	}
	attempts := 1 + int(intensity*2)
	events := make([]trace.Event, 0, (attempts+1)*len(out.Events))
	for i := 0; i < attempts; i++ {
		cut := rng.Intn(len(out.Events))
		events = append(events, out.Events[:cut]...)
	}
	events = append(events, out.Events...)
	out.Events = events
	return rebuild(out)
}
