package chaos

import (
	"reflect"
	"testing"

	"cdmm/internal/directive"
	"cdmm/internal/mem"
	"cdmm/internal/policy"
	"cdmm/internal/trace"
)

// testTrace builds a trace with every event kind so each injector has
// something to perturb.
func testTrace() *trace.Trace {
	tr := trace.New("T")
	tr.AddAlloc(&directive.Allocate{Arms: []directive.Arm{{PI: 3, X: 12}, {PI: 2, X: 6}, {PI: 1, X: 2}}})
	for i := 0; i < 200; i++ {
		tr.AddRef(mem.Page(i % 12))
	}
	tr.AddLock(2, 0, []mem.Page{0, 1, 2})
	tr.AddAlloc(&directive.Allocate{Arms: []directive.Arm{{PI: 1, X: 4}}})
	for i := 0; i < 200; i++ {
		tr.AddRef(mem.Page(i % 4))
	}
	tr.AddUnlock([]mem.Page{0, 1, 2})
	tr.AddAlloc(&directive.Allocate{Arms: []directive.Arm{{PI: 2, X: 8}, {PI: 1, X: 3}}})
	for i := 0; i < 100; i++ {
		tr.AddRef(mem.Page(i % 8))
	}
	return tr
}

// TestDeriveSeedIndependence: distinct cell identities must give distinct
// streams, identical identities identical ones, and part boundaries must
// matter.
func TestDeriveSeedIndependence(t *testing.T) {
	a := DeriveSeed(1, "MAIN", "drop-directives", "0.4")
	b := DeriveSeed(1, "MAIN", "drop-directives", "0.4")
	if a != b {
		t.Error("same identity, different seeds")
	}
	if a == DeriveSeed(2, "MAIN", "drop-directives", "0.4") {
		t.Error("base seed ignored")
	}
	if a == DeriveSeed(1, "MAIN", "drop-directives", "0.1") {
		t.Error("intensity part ignored")
	}
	if DeriveSeed(1, "ab", "c") == DeriveSeed(1, "a", "bc") {
		t.Error("part boundaries not separated")
	}
}

// TestInjectorsDeterministic runs every perturbing fault twice with the
// same seed and requires bit-identical output, plus a different seed to
// actually produce a different perturbation at full intensity.
func TestInjectorsDeterministic(t *testing.T) {
	base := testTrace()
	for _, f := range Faults() {
		if f.Perturb == nil {
			continue
		}
		t.Run(f.Name, func(t *testing.T) {
			a := f.Perturb(base, NewRand(42), 0.7)
			b := f.Perturb(base, NewRand(42), 0.7)
			if !reflect.DeepEqual(a, b) {
				t.Fatal("same seed produced different perturbations")
			}
		})
	}
}

// TestInjectorsPreserveInput verifies injectors never mutate the shared
// compiled trace — the memoization contract.
func TestInjectorsPreserveInput(t *testing.T) {
	base := testTrace()
	want := testTrace() // independent twin for comparison
	for _, f := range Faults() {
		if f.Perturb == nil {
			continue
		}
		f.Perturb(base, NewRand(7), 1.0)
	}
	if !reflect.DeepEqual(base.Events, want.Events) {
		t.Error("an injector mutated the input trace's events")
	}
	if !reflect.DeepEqual(base.Allocs, want.Allocs) {
		t.Error("an injector mutated the input trace's alloc table")
	}
	if !reflect.DeepEqual(base.LockSets, want.LockSets) {
		t.Error("an injector mutated the input trace's lock table")
	}
	if !reflect.DeepEqual(base.UnlockSets, want.UnlockSets) {
		t.Error("an injector mutated the input trace's unlock table")
	}
}

// TestZeroIntensityIsIdentity: at intensity 0 every injector must return
// the input stream unchanged (modulo the name suffix) — the guarantee
// that lets chaos-instrumented paths stay byte-identical when disabled.
func TestZeroIntensityIsIdentity(t *testing.T) {
	base := testTrace()
	for _, f := range Faults() {
		if f.Perturb == nil {
			continue
		}
		t.Run(f.Name, func(t *testing.T) {
			got := f.Perturb(base, NewRand(9), 0)
			if !reflect.DeepEqual(got.Events, base.Events) {
				t.Error("intensity 0 changed the event stream")
			}
			if got.Refs != base.Refs || got.Distinct != base.Distinct {
				t.Errorf("intensity 0 changed counters: %d/%d vs %d/%d",
					got.Refs, got.Distinct, base.Refs, base.Distinct)
			}
		})
	}
}

// TestTruncate checks the one deterministic injector precisely.
func TestTruncate(t *testing.T) {
	base := testTrace()
	half := truncateTrace(base, nil, 0.5)
	if want := len(base.Events) / 2; len(half.Events) != want {
		t.Errorf("events after 0.5 truncation = %d, want %d", len(half.Events), want)
	}
	all := truncateTrace(base, nil, 1)
	if len(all.Events) != 0 || all.Refs != 0 || all.Distinct != 0 {
		t.Errorf("full truncation left %d events, refs=%d", len(all.Events), all.Refs)
	}
}

// TestScheduleCap checks spike windows override the total.
func TestScheduleCap(t *testing.T) {
	s := &Schedule{Total: 50, Spikes: []Spike{{From: 10, To: 20, Cap: 3}}}
	if got := s.Cap(5); got != 50 {
		t.Errorf("Cap(5) = %d, want 50", got)
	}
	if got := s.Cap(10); got != 3 {
		t.Errorf("Cap(10) = %d, want 3", got)
	}
	if got := s.Cap(20); got != 50 {
		t.Errorf("Cap(20) = %d, want 50", got)
	}
}

// TestPressuredReclaims drives a CD policy into a capacity spike and
// checks the wrapper actually claws frames back.
func TestPressuredReclaims(t *testing.T) {
	cd := policy.NewCD(policy.SelectLevel(3), 2)
	sched := &Schedule{Total: 64, Spikes: []Spike{{From: 31, To: 60, Cap: 2}}}
	p := NewPressured(cd, sched)

	p.Alloc(trace.AllocDirective{Arms: []directive.Arm{{PI: 1, X: 10}}})
	for i := 0; i < 30; i++ {
		p.Ref(mem.Page(i % 10))
	}
	if cd.Resident() != 10 {
		t.Fatalf("setup: resident = %d, want 10", cd.Resident())
	}
	p.Ref(mem.Page(0)) // clock enters the spike: reclaim to 2, then the ref faults in
	if cd.Resident() > 3 {
		t.Errorf("resident during spike = %d, want <= 3", cd.Resident())
	}
	// Alloc during the spike cannot be granted above the cap; the PI=1
	// request is ungrantable, raising the swap signal.
	p.Alloc(trace.AllocDirective{Arms: []directive.Arm{{PI: 1, X: 10}}})
	if cd.SwapSignals == 0 {
		t.Error("ungrantable PI=1 request under pressure did not raise the swap signal")
	}
}

// TestMemPressureSchedulesBite verifies generated schedules always carry
// at least one spike with a cap small enough to press a real CD resident
// set at every intensity.
func TestMemPressureSchedulesBite(t *testing.T) {
	for _, intensity := range []float64{0.1, 0.4, 0.9} {
		s := memPressure(80, 10000, NewRand(3), intensity)
		if len(s.Spikes) == 0 {
			t.Fatalf("intensity %g: no spikes", intensity)
		}
		for _, sp := range s.Spikes {
			if sp.Cap < 1 || sp.Cap > 16 {
				t.Errorf("intensity %g: spike cap %d outside the biting range [1,16]", intensity, sp.Cap)
			}
			if sp.To <= sp.From {
				t.Errorf("intensity %g: empty spike window [%d,%d)", intensity, sp.From, sp.To)
			}
		}
	}
}

// TestRegistryOrderStable pins the registry: the original eleven faults
// in their matrix order, with later additions strictly appended, so
// every historical cell seed keeps its meaning.
func TestRegistryOrderStable(t *testing.T) {
	want := []string{
		"drop-directives", "dup-directives", "reorder-directives",
		"corrupt-priorities", "lock-no-unlock", "unknown-segment",
		"stale-directives", "bitflip-pages", "truncate", "wild-pages",
		"mem-pressure",
		"tenant-kill", "pressure-oscillate",
	}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("registry order changed:\n got %v\nwant %v", got, want)
	}
}

// TestTenantKill: the perturbed trace must end with one complete replay
// (the successful attempt), preceded by prefix-shaped partial attempts.
func TestTenantKill(t *testing.T) {
	base := testTrace()
	out := tenantKill(base, NewRand(11), 1.0)
	n := len(base.Events)
	if len(out.Events) < n {
		t.Fatalf("perturbed trace shorter than the original: %d < %d", len(out.Events), n)
	}
	if !reflect.DeepEqual(out.Events[len(out.Events)-n:], base.Events) {
		t.Error("perturbed trace does not end with a complete replay")
	}
	// The partial attempts are prefixes, so the whole output replays only
	// pages (and directives) the original trace contains.
	if out.Refs < base.Refs {
		t.Errorf("refs = %d, want >= %d", out.Refs, base.Refs)
	}
	if out.Distinct != base.Distinct {
		t.Errorf("distinct = %d, want %d (prefixes introduce no new pages)", out.Distinct, base.Distinct)
	}
}

// TestPressureOscillate: the schedule must be a biting square wave —
// alternating full/floor half-periods spanning the run.
func TestPressureOscillate(t *testing.T) {
	for _, intensity := range []float64{0.2, 0.6, 1.0} {
		s := pressureOscillate(80, 12000, NewRand(5), intensity)
		if len(s.Spikes) < 2 {
			t.Fatalf("intensity %g: only %d low half-periods", intensity, len(s.Spikes))
		}
		floor := s.Spikes[0].Cap
		if floor < 1 || floor > 11 {
			t.Errorf("intensity %g: floor %d outside [1,11]", intensity, floor)
		}
		var prev Spike
		for i, sp := range s.Spikes {
			if sp.Cap != floor {
				t.Errorf("intensity %g: spike %d cap %d != floor %d (square wave must be uniform)", intensity, i, sp.Cap, floor)
			}
			if sp.To-sp.From != s.Spikes[0].To-s.Spikes[0].From {
				t.Errorf("intensity %g: uneven half-period at spike %d", intensity, i)
			}
			if i > 0 && sp.From-prev.To != sp.To-sp.From {
				t.Errorf("intensity %g: high half-period between spikes %d and %d is not one period", intensity, i-1, i)
			}
			prev = sp
		}
		if last := s.Spikes[len(s.Spikes)-1]; last.From >= 12000 {
			t.Errorf("intensity %g: last spike starts past the run", intensity)
		}
	}
}
