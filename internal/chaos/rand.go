package chaos

// Rand is a small deterministic PRNG (splitmix64). Every injector gets
// its own Rand derived from (seed, cell identity) via DeriveSeed, so the
// fault matrix is reproducible cell by cell and independent of the order
// or parallelism in which cells execute.
type Rand struct{ state uint64 }

// NewRand returns a generator seeded with s.
func NewRand(s uint64) *Rand { return &Rand{state: s} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("chaos: Intn on non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float in [0, 1).
func (r *Rand) Float64() float64 { return float64(r.Uint64()>>11) / (1 << 53) }

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// DeriveSeed mixes a base seed with identifying strings (FNV-1a over the
// seed bytes then each part) to give every (program, fault, intensity)
// cell its own independent, reproducible stream.
func DeriveSeed(seed uint64, parts ...string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= (seed >> (8 * i)) & 0xff
		h *= prime
	}
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= prime
		}
		h ^= 0xff // part separator so ("ab","c") != ("a","bc")
		h *= prime
	}
	return h
}
