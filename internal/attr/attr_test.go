package attr

import (
	"strings"
	"testing"

	"cdmm/internal/trace"
)

// testSites is a small site table shared by the unit tests.
func testSites() []trace.Site {
	return []trace.Site{
		{Nest: "DO 40 / DO 30", Line: 12, Array: "A", Expr: "A(I,J)"},
		{Nest: "DO 40", Line: 10, Expr: "ALLOCATE"},
		{Nest: "", Line: 3, Array: "B", Expr: "B(K)"},
	}
}

func TestSlotMapsOutOfRangeToUnattributed(t *testing.T) {
	l := NewLedger("prog", "CD", testSites())
	if got := l.Slot(trace.NoSite); got != &l.Stats[3] {
		t.Error("NoSite did not map to the trailing bucket")
	}
	if got := l.Slot(99); got != &l.Stats[3] {
		t.Error("out-of-range id did not map to the trailing bucket")
	}
	if got := l.Slot(1); got != &l.Stats[1] {
		t.Error("in-range id did not map to its slot")
	}
}

func TestConservationCatchesDrift(t *testing.T) {
	l := NewLedger("prog", "CD", testSites())
	l.Stats[0].Refs, l.Stats[0].Faults = 10, 2
	l.Stats[2].Refs, l.Stats[2].Faults = 5, 1
	l.Refs, l.Faults = 15, 3
	if err := l.Conservation(); err != nil {
		t.Fatalf("balanced ledger failed conservation: %v", err)
	}
	l.Faults = 4 // one fault went missing
	err := l.Conservation()
	if err == nil {
		t.Fatal("unbalanced ledger passed conservation")
	}
	if !strings.Contains(err.Error(), "sum to 3") || !strings.Contains(err.Error(), "took 4") {
		t.Errorf("error does not state both sides: %v", err)
	}
}

func TestRankOrdersByFaultsThenRefs(t *testing.T) {
	l := NewLedger("prog", "CD", testSites())
	l.Stats[0].Refs, l.Stats[0].Faults = 100, 5
	l.Stats[1].Refs, l.Stats[1].Faults = 900, 5 // same faults, more refs
	l.Stats[2].Refs, l.Stats[2].Faults = 50, 9
	ranked := l.Rank()
	if len(ranked) != 3 {
		t.Fatalf("ranked %d sites, want 3 (idle sites dropped)", len(ranked))
	}
	if ranked[0].ID != 2 || ranked[1].ID != 1 || ranked[2].ID != 0 {
		t.Errorf("rank order = %d,%d,%d; want 2,1,0", ranked[0].ID, ranked[1].ID, ranked[2].ID)
	}
	if hs := l.Hotspot(); hs == nil || hs.ID != 2 {
		t.Errorf("hotspot = %+v, want site 2", hs)
	}
}

func TestDiffOrdersByMagnitude(t *testing.T) {
	sites := testSites()
	a := NewLedger("prog", "CD", sites)
	b := NewLedger("prog", "LRU", sites)
	a.Stats[0].Faults, b.Stats[0].Faults = 2, 12 // CD saves 10
	a.Stats[1].Faults, b.Stats[1].Faults = 7, 4  // CD costs 3
	a.Stats[2].Faults, b.Stats[2].Faults = 5, 5  // identical: omitted
	d := Diff(a, b)
	if len(d) != 2 {
		t.Fatalf("diff has %d rows, want 2", len(d))
	}
	if d[0].ID != 0 || d[0].Delta != -10 {
		t.Errorf("top diff = %+v, want site 0 delta -10", d[0])
	}
	if d[1].ID != 1 || d[1].Delta != 3 {
		t.Errorf("second diff = %+v, want site 1 delta 3", d[1])
	}
}

func TestSiteStatsName(t *testing.T) {
	l := NewLedger("prog", "CD", testSites())
	if got := l.Stats[0].Name(); got != "DO 40 / DO 30 · A(I,J)" {
		t.Errorf("Name() = %q", got)
	}
	if got := l.Stats[2].Name(); got != "<program> · B(K)" {
		t.Errorf("loopless Name() = %q", got)
	}
	if got := l.Stats[3].Name(); got != "<unattributed>" {
		t.Errorf("unattributed Name() = %q", got)
	}
}

func TestStoreOrderAndSnapshot(t *testing.T) {
	s := NewStore()
	if s.Len() != 0 {
		t.Fatal("new store not empty")
	}
	l1 := NewLedger("p1", "CD", nil)
	l2 := NewLedger("p2", "LRU", nil)
	s.Put("b", l1)
	s.Put("a", l2)
	s.Put("b", l1) // replace keeps insertion order
	if got := s.Keys(); len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Errorf("Keys() = %v, want [b a]", got)
	}
	if got := s.SortedKeys(); got[0] != "a" || got[1] != "b" {
		t.Errorf("SortedKeys() = %v, want [a b]", got)
	}
	if s.Get("a") != l2 || s.Get("missing") != nil {
		t.Error("Get misbehaved")
	}
	var nilStore *Store
	nilStore.Put("x", l1) // must not panic
	if nilStore.Len() != 0 || nilStore.Get("x") != nil || nilStore.Keys() != nil {
		t.Error("nil store not inert")
	}
}
