// Package attr is the fault-attribution ledger: per-source-site
// aggregates of a simulation run, built by vmsim.RunAttributed from the
// trace's site side-band (trace.Site). Where the simulator's Result says
// *how many* faults a run took, the ledger says *which loop nest,
// statement and array* took them, and what each compiler directive did —
// hits held by LOCK covers, faults caused by early frees and forced lock
// releases — turning the paper's aggregate Tables 2–4 into per-construct
// explanations.
package attr

import (
	"fmt"
	"sort"

	"cdmm/internal/trace"
)

// SiteStats are one site's aggregates over a run. The zero value is
// ready to accumulate into.
type SiteStats struct {
	// ID is the trace site id; trace.NoSite for the unattributed bucket.
	ID int32 `json:"id"`
	// Site is the source identity (zero for the unattributed bucket).
	Site trace.Site `json:"site"`

	// Refs is the number of page references executed at this site.
	Refs int64 `json:"refs"`
	// Faults is the number of those references that faulted (per-site PF).
	Faults int `json:"pf"`
	// Evictions counts pages pushed out while this site was executing.
	Evictions int `json:"evictions,omitempty"`
	// MemSum is Σ space-time charge sampled after each of this site's
	// references, so MemSum/Refs is the site's MEM index.
	MemSum float64 `json:"memSum,omitempty"`
	// VTime is the virtual time consumed by this site's references
	// (1 per reference + FaultService per fault).
	VTime int64 `json:"vtime,omitempty"`

	// Directive-site effectiveness counters.
	Allocs  int `json:"allocs,omitempty"`  // ALLOCATE executions at this site
	Locks   int `json:"locks,omitempty"`   // LOCK executions at this site
	Unlocks int `json:"unlocks,omitempty"` // UNLOCK executions at this site
	// LockedHits counts reference hits on pages held under this site's
	// LOCK cover — the faults the directive is visibly saving.
	LockedHits int64 `json:"lockedHits,omitempty"`
	// ShrinkFaults counts faults on pages this site's ALLOCATE shrink
	// evicted — refaults caused by freeing memory too early.
	ShrinkFaults int `json:"shrinkFaults,omitempty"`
	// ReleaseFaults counts faults on pages the OS force-released from
	// this site's locks — refaults caused by releasing locks early.
	ReleaseFaults int `json:"releaseFaults,omitempty"`
	// LockReleases counts this site's locked pages force-released by the
	// OS under memory pressure.
	LockReleases int `json:"lockReleases,omitempty"`
}

// MEM returns the site's average space-time charge per reference.
func (s *SiteStats) MEM() float64 {
	if s.Refs == 0 {
		return 0
	}
	return s.MemSum / float64(s.Refs)
}

// IO returns the site's paging I/O operation count: page-ins (faults)
// plus page-outs (evictions).
func (s *SiteStats) IO() int { return s.Faults + s.Evictions }

// Name renders the site for reports: the nest path plus the statement
// expression, or "<unattributed>" for the catch-all bucket.
func (s *SiteStats) Name() string {
	if s.ID == trace.NoSite {
		return "<unattributed>"
	}
	nest := s.Site.Nest
	if nest == "" {
		nest = "<program>"
	}
	if s.Site.Expr == "" {
		return nest
	}
	return nest + " · " + s.Site.Expr
}

// FaultPoint is one fault instant for the timeline exporters.
type FaultPoint struct {
	// VT is the virtual time at which the faulting reference completed.
	VT int64 `json:"vt"`
	// Site is the site id executing when the fault hit.
	Site int32 `json:"site"`
	// Page is the faulting page.
	Page int32 `json:"page"`
}

// Ledger is the complete attribution record of one run.
type Ledger struct {
	// Program is the trace name, Policy the policy name.
	Program string `json:"program"`
	Policy  string `json:"policy"`

	// Sites is the trace's site table (shared, read-only).
	Sites []trace.Site `json:"sites"`
	// Stats holds one entry per site id plus a trailing unattributed
	// bucket: Stats[id] for 0 ≤ id < len(Sites), Stats[len(Sites)] for
	// trace.NoSite. Every reference and fault lands in exactly one slot,
	// so the per-site sums equal the run totals by construction (see
	// Conservation).
	Stats []SiteStats `json:"stats"`

	// Run totals, matching the vmsim Result the run returned.
	Refs        int     `json:"refs"`
	Faults      int     `json:"pf"`
	MemSum      float64 `json:"memSum"`
	VirtualTime int64   `json:"vtime"`

	// FaultLog records every fault instant in order (bounded by the
	// fault count, not the trace length).
	FaultLog []FaultPoint `json:"-"`
}

// NewLedger returns a ledger with a stats slot per site plus the
// unattributed bucket.
func NewLedger(program, policy string, sites []trace.Site) *Ledger {
	l := &Ledger{
		Program: program,
		Policy:  policy,
		Sites:   sites,
		Stats:   make([]SiteStats, len(sites)+1),
	}
	for i := range sites {
		l.Stats[i].ID = int32(i)
		l.Stats[i].Site = sites[i]
	}
	l.Stats[len(sites)].ID = trace.NoSite
	return l
}

// Slot returns the stats bucket for a site id, mapping trace.NoSite and
// out-of-range ids to the unattributed bucket.
func (l *Ledger) Slot(site int32) *SiteStats {
	if site < 0 || int(site) >= len(l.Sites) {
		return &l.Stats[len(l.Sites)]
	}
	return &l.Stats[site]
}

// Conservation verifies the attribution identity: the per-site sums of
// references, faults and memory must exactly equal the run totals. A
// non-nil error means the side-band and the simulation disagreed — an
// attribution-pipeline bug, never a rounding artifact.
func (l *Ledger) Conservation() error {
	var refs int64
	var faults int
	var memSum float64
	var vtime int64
	for i := range l.Stats {
		refs += l.Stats[i].Refs
		faults += l.Stats[i].Faults
		memSum += l.Stats[i].MemSum
		vtime += l.Stats[i].VTime
	}
	if refs != int64(l.Refs) {
		return fmt.Errorf("attr: per-site refs sum to %d, run executed %d", refs, l.Refs)
	}
	if faults != l.Faults {
		return fmt.Errorf("attr: per-site faults sum to %d, run took %d", faults, l.Faults)
	}
	if memSum != l.MemSum {
		return fmt.Errorf("attr: per-site memory sums to %g, run accumulated %g", memSum, l.MemSum)
	}
	if vtime != l.VirtualTime {
		return fmt.Errorf("attr: per-site vtime sums to %d, run spent %d", vtime, l.VirtualTime)
	}
	return nil
}

// Rank returns the sites ordered by fault count (descending; ties by
// references, then id), dropping sites that saw no activity at all.
func (l *Ledger) Rank() []*SiteStats {
	out := make([]*SiteStats, 0, len(l.Stats))
	for i := range l.Stats {
		s := &l.Stats[i]
		if s.Refs == 0 && s.Faults == 0 && s.Allocs == 0 && s.Locks == 0 && s.Unlocks == 0 {
			continue
		}
		out = append(out, s)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Faults != out[j].Faults {
			return out[i].Faults > out[j].Faults
		}
		if out[i].Refs != out[j].Refs {
			return out[i].Refs > out[j].Refs
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Hotspot returns the highest-fault site, or nil for a fault-free run.
func (l *Ledger) Hotspot() *SiteStats {
	ranked := l.Rank()
	for _, s := range ranked {
		if s.Faults > 0 {
			return s
		}
	}
	return nil
}

// DirectiveSites returns the stats of directive insertion points
// (ALLOCATE/LOCK/UNLOCK sites) in site-id order.
func (l *Ledger) DirectiveSites() []*SiteStats {
	var out []*SiteStats
	for i := range l.Stats {
		s := &l.Stats[i]
		if s.Allocs > 0 || s.Locks > 0 || s.Unlocks > 0 ||
			s.LockedHits > 0 || s.ShrinkFaults > 0 || s.ReleaseFaults > 0 || s.LockReleases > 0 {
			out = append(out, s)
		}
	}
	return out
}

// SiteDiff is one site's fault count under two policies.
type SiteDiff struct {
	ID    int32      `json:"id"`
	Site  trace.Site `json:"site"`
	A     int        `json:"a"`     // faults under the first ledger's policy
	B     int        `json:"b"`     // faults under the second ledger's policy
	Delta int        `json:"delta"` // A - B: negative means the first policy saved faults here
}

// Diff compares per-site fault counts of two ledgers over the same site
// table (e.g. CD vs LRU on one workload), ordered by |Delta| descending
// (ties by id). Sites with identical counts are omitted; the
// unattributed buckets are compared under id trace.NoSite.
func Diff(a, b *Ledger) []SiteDiff {
	n := len(a.Stats)
	if len(b.Stats) > n {
		n = len(b.Stats)
	}
	var out []SiteDiff
	for i := 0; i < n; i++ {
		var sa, sb *SiteStats
		if i < len(a.Stats) {
			sa = &a.Stats[i]
		}
		if i < len(b.Stats) {
			sb = &b.Stats[i]
		}
		d := SiteDiff{ID: trace.NoSite}
		switch {
		case sa != nil:
			d.ID, d.Site = sa.ID, sa.Site
		case sb != nil:
			d.ID, d.Site = sb.ID, sb.Site
		}
		if sa != nil {
			d.A = sa.Faults
		}
		if sb != nil {
			d.B = sb.Faults
		}
		d.Delta = d.A - d.B
		if d.Delta != 0 {
			out = append(out, d)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		di, dj := out[i].Delta, out[j].Delta
		if di < 0 {
			di = -di
		}
		if dj < 0 {
			dj = -dj
		}
		if di != dj {
			return di > dj
		}
		return out[i].ID < out[j].ID
	})
	return out
}
