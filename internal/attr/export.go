// Exporters rendering a ledger for external profiling tooling: Chrome
// trace-event JSON (load in Perfetto / chrome://tracing) and folded
// stacks (pipe to flamegraph.pl / inferno). Both outputs are
// deterministic functions of the ledger, so they are golden-file tested.
package attr

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"cdmm/internal/trace"
)

// siteFrames renders a site as a stack of frames: the nest path split
// into one frame per loop, then the statement expression.
func siteFrames(id int32, s trace.Site) []string {
	if id == trace.NoSite {
		return []string{"<unattributed>"}
	}
	var frames []string
	if s.Nest == "" {
		frames = append(frames, "<program>")
	} else {
		frames = append(frames, strings.Split(s.Nest, " / ")...)
	}
	if s.Expr != "" {
		frames = append(frames, s.Expr)
	}
	return frames
}

// WriteChromeTrace renders the ledger's fault log as Chrome trace-event
// JSON: one instant event per fault at its virtual-time instant (ts is
// in virtual time units, displayed as microseconds), named by the
// faulting site's loop nest, plus counter events tracking the cumulative
// fault total. The run is one process named "program · policy".
func WriteChromeTrace(w io.Writer, l *Ledger) error {
	var b []byte
	b = append(b, `{"displayTimeUnit":"ms","traceEvents":[`...)
	b = append(b, `{"ph":"M","pid":1,"name":"process_name","args":{"name":`...)
	b = strconv.AppendQuote(b, l.Program+" · "+l.Policy)
	b = append(b, `}}`...)
	total := 0
	for _, fp := range l.FaultLog {
		site := l.Slot(fp.Site)
		name := "<unattributed>"
		if site.ID != trace.NoSite {
			name = strings.Join(siteFrames(site.ID, site.Site), ";")
		}
		total++
		b = append(b, `,{"ph":"i","pid":1,"tid":1,"s":"t","ts":`...)
		b = strconv.AppendInt(b, fp.VT, 10)
		b = append(b, `,"name":`...)
		b = strconv.AppendQuote(b, name)
		b = append(b, `,"args":{"page":`...)
		b = strconv.AppendInt(b, int64(fp.Page), 10)
		b = append(b, `,"site":`...)
		b = strconv.AppendInt(b, int64(fp.Site), 10)
		b = append(b, `}}`...)
		b = append(b, `,{"ph":"C","pid":1,"tid":1,"ts":`...)
		b = strconv.AppendInt(b, fp.VT, 10)
		b = append(b, `,"name":"faults","args":{"pf":`...)
		b = strconv.AppendInt(b, int64(total), 10)
		b = append(b, `}}`...)
	}
	b = append(b, "]}\n"...)
	_, err := w.Write(b)
	return err
}

// WriteFolded renders per-site fault counts as folded flamegraph stacks:
// one "policy;nest;…;expr count" line per faulting site, sorted lexically
// so equal ledgers produce byte-equal output.
func WriteFolded(w io.Writer, l *Ledger) error {
	var lines []string
	for i := range l.Stats {
		s := &l.Stats[i]
		if s.Faults == 0 {
			continue
		}
		stack := append([]string{l.Policy}, siteFrames(s.ID, s.Site)...)
		lines = append(lines, fmt.Sprintf("%s %d", strings.Join(stack, ";"), s.Faults))
	}
	sort.Strings(lines)
	for _, ln := range lines {
		if _, err := io.WriteString(w, ln+"\n"); err != nil {
			return err
		}
	}
	return nil
}
