package attr

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cdmm/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// exportLedger builds the deterministic ledger the golden files pin.
func exportLedger() *Ledger {
	sites := []trace.Site{
		{Nest: "DO 40 / DO 30", Line: 12, Array: "A", Expr: "A(I,J)"},
		{Nest: "DO 40", Line: 10, Expr: "ALLOCATE"},
		{Nest: "", Line: 3, Array: "B", Expr: `B("K\)`}, // hostile label
	}
	l := NewLedger("CONDUCT", "CD", sites)
	l.Stats[0].Refs, l.Stats[0].Faults = 1000, 3
	l.Stats[1].Refs, l.Stats[1].Faults = 10, 1
	l.Stats[2].Refs, l.Stats[2].Faults = 200, 2
	l.Stats[3].Refs, l.Stats[3].Faults = 7, 1 // unattributed bucket
	l.Refs, l.Faults = 1217, 7
	l.FaultLog = []FaultPoint{
		{VT: 2001, Site: 0, Page: 4},
		{VT: 4002, Site: 0, Page: 5},
		{VT: 6003, Site: 2, Page: 9},
		{VT: 8004, Site: 1, Page: 1},
		{VT: 10005, Site: trace.NoSite, Page: 3},
		{VT: 12006, Site: 0, Page: 6},
		{VT: 14007, Site: 2, Page: 10},
	}
	return l
}

// checkGolden compares got with the named golden file, rewriting it
// under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run go test -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, exportLedger()); err != nil {
		t.Fatal(err)
	}
	// The output must be valid JSON before it is compared byte-for-byte.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	// 1 metadata + per fault (1 instant + 1 counter).
	if want := 1 + 2*7; len(doc.TraceEvents) != want {
		t.Errorf("chrome trace has %d events, want %d", len(doc.TraceEvents), want)
	}
	checkGolden(t, "chrome_trace.json", buf.Bytes())
}

func TestFoldedGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFolded(&buf, exportLedger()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "folded.txt", buf.Bytes())
}

// TestExportsDeterministic renders twice and requires byte equality —
// the property that makes golden files trustworthy.
func TestExportsDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	l := exportLedger()
	if err := WriteChromeTrace(&a, l); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, l); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("chrome trace output is not deterministic")
	}
	a.Reset()
	b.Reset()
	if err := WriteFolded(&a, l); err != nil {
		t.Fatal(err)
	}
	if err := WriteFolded(&b, l); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("folded output is not deterministic")
	}
}
