package attr

import (
	"sort"
	"sync"
)

// Store is a concurrency-safe collection of ledgers keyed by run name,
// the publication point between attributed runs and the serve layer's
// /explain endpoint and per-site metrics. An empty store exports
// nothing, so a server whose runs never attribute pays no metric or
// encoding cost.
type Store struct {
	mu      sync.Mutex
	ledgers map[string]*Ledger
	order   []string // insertion order for stable listings
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{ledgers: map[string]*Ledger{}}
}

// Put publishes a ledger under the given run key, replacing any previous
// ledger with that key.
func (s *Store) Put(key string, l *Ledger) {
	if s == nil || l == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.ledgers[key]; !ok {
		s.order = append(s.order, key)
	}
	s.ledgers[key] = l
}

// Get returns the ledger published under key, or nil.
func (s *Store) Get(key string) *Ledger {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ledgers[key]
}

// Keys returns the published run keys in insertion order.
func (s *Store) Keys() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.order...)
}

// Len returns the number of published ledgers.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ledgers)
}

// Snapshot returns the ledgers keyed and sorted by run key. The ledgers
// themselves are shared (immutable once published).
func (s *Store) Snapshot() map[string]*Ledger {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]*Ledger, len(s.ledgers))
	for k, l := range s.ledgers {
		out[k] = l
	}
	return out
}

// SortedKeys returns the published run keys sorted lexically (for
// deterministic exports regardless of publication order).
func (s *Store) SortedKeys() []string {
	keys := s.Keys()
	sort.Strings(keys)
	return keys
}
