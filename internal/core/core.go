// Package core is the front door of the CDMM library: it ties the
// compiler pipeline (parse → semantic analysis → address-space layout →
// locality analysis → directive insertion), the trace-generating
// interpreter, and the virtual memory simulator into one API.
//
// The typical flow mirrors the paper end to end:
//
//	p, err := core.CompileSource("MYPROG", src)   // compiler + directives
//	fmt.Println(p.RenderDirectives())              // Figure 5c-style view
//	fmt.Println(p.RenderLocalityTree())            // Figure 1-style view
//	res := p.RunCD(core.CDOptions{Level: 2})       // CD policy simulation
//	lru := p.Simulate(policy.NewLRU(10))           // baselines on the
//	ws := p.Simulate(policy.NewWS(500))            // same reference string
package core

import (
	"fmt"
	"sync"

	"cdmm/internal/directive"
	"cdmm/internal/fortran"
	"cdmm/internal/interp"
	"cdmm/internal/locality"
	"cdmm/internal/mem"
	"cdmm/internal/obs"
	"cdmm/internal/policy"
	"cdmm/internal/sem"
	"cdmm/internal/sweep"
	"cdmm/internal/trace"
	"cdmm/internal/vmsim"
)

// Options configures compilation.
type Options struct {
	// Geometry of the paged machine; zero value means the paper's
	// 256-byte pages of 4-byte reals.
	Geometry mem.Geometry
	// MinResident is the system-default minimum allocation (pages) used
	// when a loop forms no locality. Zero means the default of 2.
	MinResident int
	// MaxRefs caps trace generation; zero means the interpreter default.
	MaxRefs int
}

func (o Options) withDefaults() Options {
	if o.Geometry == (mem.Geometry{}) {
		o.Geometry = mem.DefaultGeometry
	}
	if o.MinResident == 0 {
		o.MinResident = locality.DefaultParams.MinResident
	}
	return o
}

// Program is a fully compiled program: source, analyses, directive plan,
// and (lazily) its execution trace.
type Program struct {
	Name     string
	AST      *fortran.Program
	Info     *sem.Info
	Layout   *mem.Layout
	Analysis *locality.Analysis
	Plan     *directive.Plan

	opts      Options
	traceOnce sync.Once
	tr        *trace.Trace
	traceErr  error
}

// CompileSource compiles FORTRAN-subset source text with default options.
func CompileSource(name, src string) (*Program, error) {
	return CompileSourceOpts(name, src, Options{})
}

// CompileSourceOpts compiles with explicit options.
func CompileSourceOpts(name, src string, opts Options) (*Program, error) {
	opts = opts.withDefaults()
	ast, err := fortran.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", name, err)
	}
	if name == "" {
		name = ast.Name
	}
	info, err := sem.Analyze(ast)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", name, err)
	}
	layout, err := mem.NewLayout(ast, opts.Geometry)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", name, err)
	}
	analysis := locality.Analyze(info, layout, locality.Params{MinResident: opts.MinResident})
	plan := directive.Build(analysis)
	return &Program{
		Name:     name,
		AST:      ast,
		Info:     info,
		Layout:   layout,
		Analysis: analysis,
		Plan:     plan,
		opts:     opts,
	}, nil
}

// V returns the virtual size of the program's data space in pages.
func (p *Program) V() int { return p.Layout.TotalPages() }

// MaxPI returns Δ, the deepest priority index of the directive plan.
func (p *Program) MaxPI() int { return p.Plan.MaxPI }

// Trace executes the program and returns its page-reference trace with
// directive events. The trace is generated exactly once and cached;
// concurrent callers (parallel report sections, engine runs sharing one
// Program) block on the single generation instead of racing.
func (p *Program) Trace() (*trace.Trace, error) {
	p.traceOnce.Do(func() {
		tr, err := interp.Run(p.Info, interp.Config{
			Layout:  p.Layout,
			Plan:    p.Plan,
			MaxRefs: p.opts.MaxRefs,
			// The provenance side-band costs nothing on the simulation
			// fast path and lets explain/report attribute every fault.
			Sites: true,
		})
		if err != nil {
			p.traceErr = fmt.Errorf("core: %s: %w", p.Name, err)
			return
		}
		p.tr = tr
	})
	return p.tr, p.traceErr
}

// Simulate replays the program's trace under any policy.
func (p *Program) Simulate(pol policy.Policy) (vmsim.Result, error) {
	return p.SimulateObserved(pol, nil)
}

// SimulateObserved replays the program's trace under any policy with an
// observer attached (nil observes nothing beyond vmsim.DefaultObserver).
func (p *Program) SimulateObserved(pol policy.Policy, o *obs.Observer) (vmsim.Result, error) {
	tr, err := p.Trace()
	if err != nil {
		return vmsim.Result{}, err
	}
	return vmsim.RunObserved(tr, pol, o), nil
}

// CDOptions selects the directive set for a CD run.
type CDOptions struct {
	// Level is the honored directive stratum (1 = innermost loops only).
	// Zero means 1.
	Level int
	// Overrides gives per-loop stratum overrides keyed by loop key
	// (statement label or "L<line>").
	Overrides map[string]int
	// MinAlloc is the system-default minimum allocation; zero means 2.
	MinAlloc int
}

// RunCD simulates the program under the Compiler Directed policy.
func (p *Program) RunCD(opts CDOptions) (vmsim.Result, error) {
	return p.RunCDObserved(opts, nil)
}

// RunCDObserved is RunCD with an observer attached.
func (p *Program) RunCDObserved(opts CDOptions, o *obs.Observer) (vmsim.Result, error) {
	if opts.Level == 0 {
		opts.Level = 1
	}
	if opts.MinAlloc == 0 {
		opts.MinAlloc = 2
	}
	var sel policy.ArmSelector
	if len(opts.Overrides) > 0 {
		sel = policy.SelectLevels(opts.Level, opts.Overrides)
	} else {
		sel = policy.SelectLevel(opts.Level)
	}
	return p.SimulateObserved(policy.NewCD(sel, opts.MinAlloc), o)
}

// LRUSweep returns the one-pass all-allocations LRU curve of the trace.
func (p *Program) LRUSweep() (*sweep.LRUCurve, error) {
	tr, err := p.Trace()
	if err != nil {
		return nil, err
	}
	return sweep.NewLRU(tr)
}

// WSSweep returns the one-pass all-windows WS curve of the trace.
func (p *Program) WSSweep() (*sweep.WS, error) {
	tr, err := p.Trace()
	if err != nil {
		return nil, err
	}
	return sweep.NewWS(tr)
}

// RenderDirectives renders the directive plan in Figure 5c style.
func (p *Program) RenderDirectives() string { return p.Plan.Render() }

// RenderLocalityTree renders the conceptual locality tree (Figure 1 style).
func (p *Program) RenderLocalityTree() string {
	return locality.RenderTree(p.Analysis.Tree())
}

// Summary returns a one-paragraph description of the compiled program.
func (p *Program) Summary() string {
	s := fmt.Sprintf("%s: %d arrays, V=%d pages, %d loops, Δ=%d",
		p.Name, len(p.AST.Arrays), p.V(), len(p.Info.Loops), p.MaxPI())
	if p.tr != nil {
		s += fmt.Sprintf(", R=%d references", p.tr.Refs)
	}
	return s
}
