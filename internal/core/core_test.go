package core

import (
	"strings"
	"testing"

	"cdmm/internal/mem"
	"cdmm/internal/policy"
)

const demoSrc = `
PROGRAM DEMO
DIMENSION A(128,8), V(256)
DO 20 J = 1, 8
  DO 10 I = 1, 128
    A(I,J) = FLOAT(I + J)
10 CONTINUE
20 CONTINUE
DO 40 K = 1, 4
  DO 30 L = 1, 256
    V(L) = V(L) * 0.5 + A(MOD(L, 128) + 1, 1)
30 CONTINUE
40 CONTINUE
END
`

func compile(t *testing.T) *Program {
	t.Helper()
	p, err := CompileSource("", demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompileSourceDefaults(t *testing.T) {
	p := compile(t)
	if p.Name != "DEMO" {
		t.Errorf("name = %q, want DEMO (from PROGRAM statement)", p.Name)
	}
	// A: 1024 elems = 16 pages; V: 256 elems = 4 pages.
	if p.V() != 20 {
		t.Errorf("V = %d, want 20", p.V())
	}
	if p.MaxPI() != 2 {
		t.Errorf("Δ = %d, want 2", p.MaxPI())
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := CompileSource("X", "PROGRAM P\n=\nEND\n"); err == nil {
		t.Error("parse error not surfaced")
	}
	if _, err := CompileSource("X", "PROGRAM P\nA(1) = 2.0\nEND\n"); err == nil {
		t.Error("semantic error not surfaced")
	}
	if _, err := CompileSourceOpts("X", demoSrc, Options{Geometry: mem.Geometry{PageSize: 7, ElemSize: 4}}); err == nil {
		t.Error("bad geometry not surfaced")
	}
}

func TestTraceCachedAndSimulate(t *testing.T) {
	p := compile(t)
	tr1, err := p.Trace()
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := p.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if tr1 != tr2 {
		t.Error("trace not cached")
	}
	res, err := p.Simulate(policy.NewLRU(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Refs != tr1.Refs {
		t.Errorf("refs = %d, want %d", res.Refs, tr1.Refs)
	}
	if res.Faults < p.V() {
		t.Errorf("faults %d below compulsory minimum %d", res.Faults, p.V())
	}
}

func TestRunCDLevels(t *testing.T) {
	p := compile(t)
	inner, err := p.RunCD(CDOptions{Level: 1})
	if err != nil {
		t.Fatal(err)
	}
	outer, err := p.RunCD(CDOptions{Level: 2})
	if err != nil {
		t.Fatal(err)
	}
	if outer.MEM() < inner.MEM() {
		t.Errorf("outer-level MEM %v < inner-level MEM %v", outer.MEM(), inner.MEM())
	}
	if outer.Faults > inner.Faults {
		t.Errorf("outer-level faults %d > inner-level %d", outer.Faults, inner.Faults)
	}
	// Overrides apply.
	ov, err := p.RunCD(CDOptions{Level: 1, Overrides: map[string]int{"10": 2, "20": 2}})
	if err != nil {
		t.Fatal(err)
	}
	if ov.MEM() < inner.MEM() {
		t.Errorf("override run should not shrink MEM below the base level")
	}
}

func TestSweepAccessors(t *testing.T) {
	p := compile(t)
	lru, err := p.LRUSweep()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := p.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if lru.V != tr.Distinct {
		t.Errorf("sweep V = %d, want %d", lru.V, tr.Distinct)
	}
	ws, err := p.WSSweep()
	if err != nil {
		t.Fatal(err)
	}
	if ws.Faults(1) < lru.Faults(lru.V) {
		t.Error("WS(1) cannot fault less than compulsory")
	}
}

func TestRenderers(t *testing.T) {
	p := compile(t)
	d := p.RenderDirectives()
	if !strings.Contains(d, "ALLOCATE") {
		t.Errorf("directives rendering missing ALLOCATE:\n%s", d)
	}
	l := p.RenderLocalityTree()
	if !strings.Contains(l, "DO 20") {
		t.Errorf("locality tree missing DO 20:\n%s", l)
	}
	s := p.Summary()
	for _, want := range []string{"DEMO", "V=20", "Δ=2"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q: %s", want, s)
		}
	}
}

func TestMaxRefsOption(t *testing.T) {
	p, err := CompileSourceOpts("X", demoSrc, Options{MaxRefs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Trace(); err == nil {
		t.Error("expected max-refs error")
	}
}
