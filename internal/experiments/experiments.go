// Package experiments reproduces the paper's §5 evaluation: the effect of
// directive-set choice on CD (Table 1), minimum space-time cost of LRU and
// WS versus CD (Table 2), equal-memory comparison (Table 3), and
// equal-fault comparison (Table 4), with the paper's metrics —
//
//	%MEM = (MEM(other) − MEM(CD)) / MEM(CD) × 100
//	%ST  = (ST(other)  − ST(CD))  / ST(CD)  × 100
//	ΔPF  = PF(other) − PF(CD)
//
// — over the nine-workload suite and its directive-set variants.
package experiments

import (
	"fmt"
	"sync"

	"cdmm/internal/policy"
	"cdmm/internal/vmsim"
	"cdmm/internal/workloads"
)

// Variant names one run: a program plus one of its directive sets.
type Variant struct {
	Program string
	Set     string
}

// Table1Variants are the rows of Table 1: the directive-set study.
var Table1Variants = []Variant{
	{"MAIN", "MAIN"}, {"MAIN", "MAIN1"}, {"MAIN", "MAIN2"}, {"MAIN", "MAIN3"},
	{"FDJAC", "FDJAC"}, {"FDJAC", "FDJAC1"},
	{"TQL", "TQL1"}, {"TQL", "TQL2"},
}

// Table2Variants are the rows of Table 2: one canonical set per program
// (the paper's Table 2 lists its own best-ST sets, e.g. MAIN3; our
// canonical sets play that role — see EXPERIMENTS.md for the mapping).
var Table2Variants = []Variant{
	{"MAIN", "MAIN"}, {"FDJAC", "FDJAC"}, {"FIELD", "FIELD"},
	{"INIT", "INIT"}, {"APPROX", "APPROX"}, {"HYBRJ", "HYBRJ"},
	{"CONDUCT", "CONDUCT"}, {"TQL", "TQL1"},
}

// Table34Variants are the rows of Tables 3 and 4: every variant.
var Table34Variants = []Variant{
	{"MAIN", "MAIN"}, {"MAIN", "MAIN1"}, {"MAIN", "MAIN2"}, {"MAIN", "MAIN3"},
	{"FDJAC", "FDJAC"}, {"FDJAC", "FDJAC1"},
	{"FIELD", "FIELD"}, {"INIT", "INIT"}, {"APPROX", "APPROX"},
	{"HYBRJ", "HYBRJ"}, {"CONDUCT", "CONDUCT"},
	{"TQL", "TQL1"}, {"TQL", "TQL2"}, {"HWSCRT", "HWSCRT"},
}

// bundle caches everything expensive per program: the compiled trace and
// the LRU/WS sweeps (which are independent of the directive set).
type bundle struct {
	compiled *workloads.Compiled
	lru      *vmsim.LRUSweep
	ws       *vmsim.WSSweep
	cd       map[string]vmsim.Result // per set name
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*bundle{}
)

func getBundle(program string) (*bundle, error) {
	cacheMu.Lock()
	b, ok := cache[program]
	cacheMu.Unlock()
	if ok {
		return b, nil
	}
	p, err := workloads.Get(program)
	if err != nil {
		return nil, err
	}
	c, err := workloads.Compile(p)
	if err != nil {
		return nil, err
	}
	b = &bundle{
		compiled: c,
		lru:      vmsim.NewLRUSweep(c.Trace),
		ws:       vmsim.NewWSSweep(c.Trace),
		cd:       map[string]vmsim.Result{},
	}
	cacheMu.Lock()
	cache[program] = b
	cacheMu.Unlock()
	return b, nil
}

// CDRun runs (and caches) the CD policy for one variant.
func CDRun(v Variant) (vmsim.Result, error) {
	b, err := getBundle(v.Program)
	if err != nil {
		return vmsim.Result{}, err
	}
	cacheMu.Lock()
	if r, ok := b.cd[v.Set]; ok {
		cacheMu.Unlock()
		return r, nil
	}
	cacheMu.Unlock()
	set, ok := b.compiled.Program.Set(v.Set)
	if !ok {
		return vmsim.Result{}, fmt.Errorf("experiments: program %s has no set %q", v.Program, v.Set)
	}
	cd := policy.NewCD(set.Selector(), 2)
	r := vmsim.Run(b.compiled.Trace, cd)
	cacheMu.Lock()
	b.cd[v.Set] = r
	cacheMu.Unlock()
	return r, nil
}

func pct(other, cd float64) float64 {
	if cd == 0 {
		return 0
	}
	return (other - cd) / cd * 100
}

// Row1 is one Table 1 row: CD under one directive set.
type Row1 struct {
	Variant Variant
	MEM     float64
	PF      int
	ST      float64
}

// Table1 reproduces Table 1: the effect of executing different directive
// sets under the CD policy.
func Table1() ([]Row1, error) {
	rows := make([]Row1, 0, len(Table1Variants))
	for _, v := range Table1Variants {
		r, err := CDRun(v)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row1{Variant: v, MEM: r.MEM(), PF: r.Faults, ST: r.ST()})
	}
	return rows, nil
}

// Row2 is one Table 2 row: excess minimum space-time cost of LRU and WS
// over CD.
type Row2 struct {
	Variant  Variant
	CDST     float64
	LRUMinST float64
	WSMinST  float64
	// PctSTLRU and PctSTWS are the paper's %ST columns.
	PctSTLRU float64
	PctSTWS  float64
	// LRUAt and WSAt record the allocation / window achieving the minimum.
	LRUAt int
	WSAt  int
}

// Table2 reproduces Table 2: minimal space-time cost of LRU and WS versus
// CD. The LRU minimum is over every allocation 1..V; the WS minimum is
// over the τ ladder.
func Table2() ([]Row2, error) {
	rows := make([]Row2, 0, len(Table2Variants))
	for _, v := range Table2Variants {
		b, err := getBundle(v.Program)
		if err != nil {
			return nil, err
		}
		cd, err := CDRun(v)
		if err != nil {
			return nil, err
		}
		mLRU, stLRU := b.lru.MinST()
		tauWS, wsRes := b.ws.MinST()
		rows = append(rows, Row2{
			Variant:  v,
			CDST:     cd.ST(),
			LRUMinST: stLRU,
			WSMinST:  wsRes.ST(),
			PctSTLRU: pct(stLRU, cd.ST()),
			PctSTWS:  pct(wsRes.ST(), cd.ST()),
			LRUAt:    mLRU,
			WSAt:     tauWS,
		})
	}
	return rows, nil
}

// Row3 is one Table 3 row: LRU and WS versus CD at equal average memory.
type Row3 struct {
	Variant Variant
	CDMEM   float64
	CDPF    int
	CDST    float64

	LRUAlloc   int
	DeltaPFLRU int
	PctSTLRU   float64

	WSTau     int
	WSMEM     float64
	DeltaPFWS int
	PctSTWS   float64
}

// Table3 reproduces Table 3: allocate LRU and WS the same average memory
// CD used (LRU gets the rounded allocation, WS the window whose mean
// working-set size is closest) and compare faults and space-time cost.
func Table3() ([]Row3, error) {
	rows := make([]Row3, 0, len(Table34Variants))
	for _, v := range Table34Variants {
		b, err := getBundle(v.Program)
		if err != nil {
			return nil, err
		}
		cd, err := CDRun(v)
		if err != nil {
			return nil, err
		}
		m := int(cd.MEM() + 0.5)
		if m < 1 {
			m = 1
		}
		lru := b.lru.Result(m)

		tau := b.ws.TauForMEM(cd.MEM())
		ws := b.ws.Run(tau)

		rows = append(rows, Row3{
			Variant:    v,
			CDMEM:      cd.MEM(),
			CDPF:       cd.Faults,
			CDST:       cd.ST(),
			LRUAlloc:   m,
			DeltaPFLRU: lru.Faults - cd.Faults,
			PctSTLRU:   pct(lru.ST(), cd.ST()),
			WSTau:      tau,
			WSMEM:      ws.MEM(),
			DeltaPFWS:  ws.Faults - cd.Faults,
			PctSTWS:    pct(ws.ST(), cd.ST()),
		})
	}
	return rows, nil
}

// Row4 is one Table 4 row: the memory and space-time cost LRU and WS need
// to generate at most as many faults as CD.
type Row4 struct {
	Variant Variant
	CDMEM   float64
	CDPF    int
	CDST    float64

	LRUAlloc  int
	LRUOK     bool // false if no allocation achieves the fault target
	PctMEMLRU float64
	PctSTLRU  float64

	WSTau    int
	WSOK     bool
	PctMEMWS float64
	PctSTWS  float64
}

// Table4 reproduces Table 4: the cost of generating at most CD's fault
// count — the smallest LRU allocation and WS window that do so, compared
// on memory and space-time cost.
func Table4() ([]Row4, error) {
	rows := make([]Row4, 0, len(Table34Variants))
	for _, v := range Table34Variants {
		b, err := getBundle(v.Program)
		if err != nil {
			return nil, err
		}
		cd, err := CDRun(v)
		if err != nil {
			return nil, err
		}
		m, okLRU := b.lru.MinAllocationForFaults(cd.Faults)
		lru := b.lru.Result(m)
		tau, okWS := b.ws.MinTauForFaults(cd.Faults)
		ws := b.ws.Run(tau)

		rows = append(rows, Row4{
			Variant:   v,
			CDMEM:     cd.MEM(),
			CDPF:      cd.Faults,
			CDST:      cd.ST(),
			LRUAlloc:  m,
			LRUOK:     okLRU,
			PctMEMLRU: pct(lru.MEM(), cd.MEM()),
			PctSTLRU:  pct(lru.ST(), cd.ST()),
			WSTau:     tau,
			WSOK:      okWS,
			PctMEMWS:  pct(ws.MEM(), cd.MEM()),
			PctSTWS:   pct(ws.ST(), cd.ST()),
		})
	}
	return rows, nil
}
