// Package experiments reproduces the paper's §5 evaluation: the effect of
// directive-set choice on CD (Table 1), minimum space-time cost of LRU and
// WS versus CD (Table 2), equal-memory comparison (Table 3), and
// equal-fault comparison (Table 4), with the paper's metrics —
//
//	%MEM = (MEM(other) − MEM(CD)) / MEM(CD) × 100
//	%ST  = (ST(other)  − ST(CD))  / ST(CD)  × 100
//	ΔPF  = PF(other) − PF(CD)
//
// — over the nine-workload suite and its directive-set variants.
//
// Every table is an embarrassingly parallel grid of independent strata,
// so each generator declares its rows as a run plan and executes it
// through the engine package: rows run concurrently on a bounded worker
// pool, shared prerequisites (compiled traces, LRU/WS sweeps, CD runs)
// are memoized with singleflight semantics, and results are gathered in
// declaration order — the rendered tables are byte-identical at any
// parallelism level. Passing a nil *engine.Engine uses engine.Default().
package experiments

import (
	"fmt"

	"cdmm/internal/engine"
	"cdmm/internal/vmsim"
	"cdmm/internal/workloads"
)

// Variant names one run: a program plus one of its directive sets.
type Variant struct {
	Program string
	Set     string
}

// Table1Variants are the rows of Table 1: the directive-set study.
var Table1Variants = []Variant{
	{"MAIN", "MAIN"}, {"MAIN", "MAIN1"}, {"MAIN", "MAIN2"}, {"MAIN", "MAIN3"},
	{"FDJAC", "FDJAC"}, {"FDJAC", "FDJAC1"},
	{"TQL", "TQL1"}, {"TQL", "TQL2"},
}

// Table2Variants are the rows of Table 2: one canonical set per program
// (the paper's Table 2 lists its own best-ST sets, e.g. MAIN3; our
// canonical sets play that role — see EXPERIMENTS.md for the mapping).
var Table2Variants = []Variant{
	{"MAIN", "MAIN"}, {"FDJAC", "FDJAC"}, {"FIELD", "FIELD"},
	{"INIT", "INIT"}, {"APPROX", "APPROX"}, {"HYBRJ", "HYBRJ"},
	{"CONDUCT", "CONDUCT"}, {"TQL", "TQL1"},
}

// Table34Variants are the rows of Tables 3 and 4: every variant.
var Table34Variants = []Variant{
	{"MAIN", "MAIN"}, {"MAIN", "MAIN1"}, {"MAIN", "MAIN2"}, {"MAIN", "MAIN3"},
	{"FDJAC", "FDJAC"}, {"FDJAC", "FDJAC1"},
	{"FIELD", "FIELD"}, {"INIT", "INIT"}, {"APPROX", "APPROX"},
	{"HYBRJ", "HYBRJ"}, {"CONDUCT", "CONDUCT"},
	{"TQL", "TQL1"}, {"TQL", "TQL2"}, {"HWSCRT", "HWSCRT"},
}

// cdMinAlloc is the system-default minimum allocation the §5 runs use.
const cdMinAlloc = 2

// variantSet resolves a variant's directive set from its compiled
// program.
func variantSet(eng *engine.Engine, rc *engine.RunCtx, v Variant) (workloads.Set, error) {
	c, err := eng.Compiled(rc, v.Program)
	if err != nil {
		return workloads.Set{}, err
	}
	set, ok := c.Program.Set(v.Set)
	if !ok {
		return workloads.Set{}, fmt.Errorf("experiments: program %s has no set %q", v.Program, v.Set)
	}
	return set, nil
}

// cdRun runs (memoized in eng) the CD policy for one variant.
func cdRun(eng *engine.Engine, rc *engine.RunCtx, v Variant) (vmsim.Result, error) {
	set, err := variantSet(eng, rc, v)
	if err != nil {
		return vmsim.Result{}, err
	}
	return eng.CDRun(rc, v.Program, set, cdMinAlloc)
}

// CDRun runs (and memoizes in the default engine) the CD policy for one
// variant.
func CDRun(v Variant) (vmsim.Result, error) {
	return cdRun(engine.Default(), nil, v)
}

func pct(other, cd float64) float64 {
	if cd == 0 {
		return 0
	}
	return (other - cd) / cd * 100
}

// Row1 is one Table 1 row: CD under one directive set.
type Row1 struct {
	Variant Variant
	MEM     float64
	PF      int
	ST      float64
}

// Table1 reproduces Table 1: the effect of executing different directive
// sets under the CD policy. A nil engine uses engine.Default().
func Table1(eng *engine.Engine) ([]Row1, error) {
	eng = engine.Or(eng)
	return engine.MapNamed(eng, "table1", Table1Variants, func(rc *engine.RunCtx, v Variant) (Row1, error) {
		rc.Describe(v.Program+"/"+v.Set, "CD")
		r, err := cdRun(eng, rc, v)
		if err != nil {
			return Row1{}, err
		}
		rc.Report(r)
		return Row1{Variant: v, MEM: r.MEM(), PF: r.Faults, ST: r.ST()}, nil
	})
}

// Row2 is one Table 2 row: excess minimum space-time cost of LRU and WS
// over CD.
type Row2 struct {
	Variant  Variant
	CDST     float64
	LRUMinST float64
	WSMinST  float64
	// PctSTLRU and PctSTWS are the paper's %ST columns.
	PctSTLRU float64
	PctSTWS  float64
	// LRUAt and WSAt record the allocation / window achieving the minimum.
	LRUAt int
	WSAt  int
}

// Table2 reproduces Table 2: minimal space-time cost of LRU and WS versus
// CD. The LRU minimum is over every allocation 1..V; the WS minimum is
// over the τ ladder.
func Table2(eng *engine.Engine) ([]Row2, error) {
	eng = engine.Or(eng)
	return engine.MapNamed(eng, "table2", Table2Variants, func(rc *engine.RunCtx, v Variant) (Row2, error) {
		rc.Describe(v.Program+"/"+v.Set, "CD vs LRU/WS minima")
		cd, err := cdRun(eng, rc, v)
		if err != nil {
			return Row2{}, err
		}
		rc.Report(cd)
		lru, err := eng.LRUSweep(rc, v.Program)
		if err != nil {
			return Row2{}, err
		}
		mLRU, stLRU := lru.MinST()
		tauWS, wsRes, err := eng.WSMinST(rc, v.Program)
		if err != nil {
			return Row2{}, err
		}
		return Row2{
			Variant:  v,
			CDST:     cd.ST(),
			LRUMinST: stLRU,
			WSMinST:  wsRes.ST(),
			PctSTLRU: pct(stLRU, cd.ST()),
			PctSTWS:  pct(wsRes.ST(), cd.ST()),
			LRUAt:    mLRU,
			WSAt:     tauWS,
		}, nil
	})
}

// Row3 is one Table 3 row: LRU and WS versus CD at equal average memory.
type Row3 struct {
	Variant Variant
	CDMEM   float64
	CDPF    int
	CDST    float64

	LRUAlloc   int
	DeltaPFLRU int
	PctSTLRU   float64

	WSTau     int
	WSMEM     float64
	DeltaPFWS int
	PctSTWS   float64
}

// Table3 reproduces Table 3: allocate LRU and WS the same average memory
// CD used (LRU gets the rounded allocation, WS the window whose mean
// working-set size is closest) and compare faults and space-time cost.
func Table3(eng *engine.Engine) ([]Row3, error) {
	eng = engine.Or(eng)
	return engine.MapNamed(eng, "table3", Table34Variants, func(rc *engine.RunCtx, v Variant) (Row3, error) {
		rc.Describe(v.Program+"/"+v.Set, "CD vs equal-MEM LRU/WS")
		cd, err := cdRun(eng, rc, v)
		if err != nil {
			return Row3{}, err
		}
		rc.Report(cd)
		lruSweep, err := eng.LRUSweep(rc, v.Program)
		if err != nil {
			return Row3{}, err
		}
		m := int(cd.MEM() + 0.5)
		if m < 1 {
			m = 1
		}
		lru := lruSweep.Result(m)

		wsSweep, err := eng.WSSweep(rc, v.Program)
		if err != nil {
			return Row3{}, err
		}
		tau := wsSweep.TauForMEM(cd.MEM())
		ws, err := eng.WSRun(rc, v.Program, tau)
		if err != nil {
			return Row3{}, err
		}

		return Row3{
			Variant:    v,
			CDMEM:      cd.MEM(),
			CDPF:       cd.Faults,
			CDST:       cd.ST(),
			LRUAlloc:   m,
			DeltaPFLRU: lru.Faults - cd.Faults,
			PctSTLRU:   pct(lru.ST(), cd.ST()),
			WSTau:      tau,
			WSMEM:      ws.MEM(),
			DeltaPFWS:  ws.Faults - cd.Faults,
			PctSTWS:    pct(ws.ST(), cd.ST()),
		}, nil
	})
}

// Row4 is one Table 4 row: the memory and space-time cost LRU and WS need
// to generate at most as many faults as CD.
type Row4 struct {
	Variant Variant
	CDMEM   float64
	CDPF    int
	CDST    float64

	LRUAlloc  int
	LRUOK     bool // false if no allocation achieves the fault target
	PctMEMLRU float64
	PctSTLRU  float64

	WSTau    int
	WSOK     bool
	PctMEMWS float64
	PctSTWS  float64
}

// Table4 reproduces Table 4: the cost of generating at most CD's fault
// count — the smallest LRU allocation and WS window that do so, compared
// on memory and space-time cost.
func Table4(eng *engine.Engine) ([]Row4, error) {
	eng = engine.Or(eng)
	return engine.MapNamed(eng, "table4", Table34Variants, func(rc *engine.RunCtx, v Variant) (Row4, error) {
		rc.Describe(v.Program+"/"+v.Set, "CD vs equal-PF LRU/WS")
		cd, err := cdRun(eng, rc, v)
		if err != nil {
			return Row4{}, err
		}
		rc.Report(cd)
		lruSweep, err := eng.LRUSweep(rc, v.Program)
		if err != nil {
			return Row4{}, err
		}
		m, okLRU := lruSweep.MinAllocationForFaults(cd.Faults)
		lru := lruSweep.Result(m)

		wsSweep, err := eng.WSSweep(rc, v.Program)
		if err != nil {
			return Row4{}, err
		}
		tau, okWS := wsSweep.MinTauForFaults(cd.Faults)
		ws, err := eng.WSRun(rc, v.Program, tau)
		if err != nil {
			return Row4{}, err
		}

		return Row4{
			Variant:   v,
			CDMEM:     cd.MEM(),
			CDPF:      cd.Faults,
			CDST:      cd.ST(),
			LRUAlloc:  m,
			LRUOK:     okLRU,
			PctMEMLRU: pct(lru.MEM(), cd.MEM()),
			PctSTLRU:  pct(lru.ST(), cd.ST()),
			WSTau:     tau,
			WSOK:      okWS,
			PctMEMWS:  pct(ws.MEM(), cd.MEM()),
			PctSTWS:   pct(ws.ST(), cd.ST()),
		}, nil
	})
}
