// Chaos study: the fault matrix (program × fault class × intensity)
// exercising the CD policy's degraded-mode contract. Each cell perturbs
// a compiled trace (or the machine under it) with a seeded injector from
// internal/chaos, replays it through vmsim.RunChecked with directive
// validation enabled, and reports the damage relative to two anchors:
// the clean CD run (how much of CD's §5 advantage the fault destroys)
// and the WS fallback floor (the directive-blind policy a degraded run
// converges to). With a fixed seed the matrix is deterministic at any
// engine parallelism.
package experiments

import (
	"fmt"
	"strings"

	"cdmm/internal/chaos"
	"cdmm/internal/engine"
	"cdmm/internal/policy"
	"cdmm/internal/trace"
	"cdmm/internal/vmsim"
)

// ChaosCell identifies one fault-matrix run.
type ChaosCell struct {
	Variant   Variant
	Fault     string
	Intensity float64
}

// ChaosRow is one completed cell.
type ChaosRow struct {
	Cell ChaosCell
	// Res is the checked run under injection.
	Res vmsim.Result
	// Clean is the unperturbed CD baseline for the same variant.
	Clean vmsim.Result
	// Floor is WS at the degraded-mode fallback window over the clean
	// trace — where a degraded run is headed.
	Floor vmsim.Result
	// Err records a simulator invariant violation or panic surfaced by
	// the checked run ("" when the cell completed cleanly). Any non-empty
	// value is a harness finding: no fault class is allowed to break the
	// simulator's own accounting.
	Err string
}

// ChaosConfig parameterizes the matrix. The zero value (after defaults)
// reproduces the documented study.
type ChaosConfig struct {
	// Seed drives every injector; each cell derives its own stream from
	// (Seed, program, set, fault, intensity).
	Seed uint64
	// Variants are the programs under test (default: the canonical sets
	// of MAIN, FDJAC, TQL and CONDUCT).
	Variants []Variant
	// Faults are the injector names to run (default: all registered).
	Faults []string
	// Intensities are the fault dials to sweep (default: 0.1 and 0.4).
	Intensities []float64
	// MinAlloc is CD's system minimum allocation (default cdMinAlloc).
	MinAlloc int
	// FallbackTau is the degraded-mode WS window (default
	// policy.DefaultFallbackTau).
	FallbackTau int
}

// defaults fills unset fields.
func (c *ChaosConfig) defaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Variants) == 0 {
		c.Variants = []Variant{{"MAIN", "MAIN"}, {"FDJAC", "FDJAC"}, {"TQL", "TQL1"}, {"CONDUCT", "CONDUCT"}}
	}
	if len(c.Faults) == 0 {
		c.Faults = chaos.Names()
	}
	if len(c.Intensities) == 0 {
		c.Intensities = []float64{0.1, 0.4}
	}
	if c.MinAlloc < 1 {
		c.MinAlloc = cdMinAlloc
	}
	if c.FallbackTau < 1 {
		c.FallbackTau = policy.DefaultFallbackTau
	}
}

// Cells expands the config into the matrix's cell list in its fixed
// iteration order (variant-major, then fault, then intensity).
func (c *ChaosConfig) Cells() []ChaosCell {
	c.defaults()
	var cells []ChaosCell
	for _, v := range c.Variants {
		for _, f := range c.Faults {
			for _, in := range c.Intensities {
				cells = append(cells, ChaosCell{Variant: v, Fault: f, Intensity: in})
			}
		}
	}
	return cells
}

// ChaosMatrix runs the fault matrix through the engine. A nil engine
// uses engine.Default(). Simulator breakage (invariant violations,
// panics) is reported in the rows, not as an error: the matrix's job is
// to complete and show the damage.
func ChaosMatrix(eng *engine.Engine, cfg ChaosConfig) ([]ChaosRow, error) {
	eng = engine.Or(eng)
	cells := cfg.Cells()
	return engine.MapNamed(eng, "chaos", cells, func(rc *engine.RunCtx, cell ChaosCell) (ChaosRow, error) {
		row := ChaosRow{Cell: cell}
		rc.Describe(fmt.Sprintf("%s/%s %s@%g", cell.Variant.Program, cell.Variant.Set, cell.Fault, cell.Intensity), "CD+faults")

		comp, err := eng.Compiled(rc, cell.Variant.Program)
		if err != nil {
			return row, err
		}
		set, ok := comp.Program.Set(cell.Variant.Set)
		if !ok {
			return row, fmt.Errorf("chaos: program %s has no set %q", cell.Variant.Program, cell.Variant.Set)
		}
		fault, err := chaos.Get(cell.Fault)
		if err != nil {
			return row, err
		}

		// Anchors first (memoized across cells).
		if row.Clean, err = eng.CDRun(rc, cell.Variant.Program, set, cfg.MinAlloc); err != nil {
			return row, err
		}
		if row.Floor, err = eng.WSRun(rc, cell.Variant.Program, cfg.FallbackTau); err != nil {
			return row, err
		}

		rng := chaos.NewRand(chaos.DeriveSeed(cfg.Seed,
			cell.Variant.Program, cell.Variant.Set, cell.Fault, fmt.Sprintf("%g", cell.Intensity)))

		tr := comp.Trace
		if fault.Perturb != nil {
			tr = fault.Perturb(tr, rng, cell.Intensity)
		}
		cd := policy.NewCD(set.Selector(), cfg.MinAlloc)
		cd.Check = &policy.CheckConfig{MaxPage: comp.V(), FallbackTau: cfg.FallbackTau}
		var pol policy.Policy = cd
		if fault.Pressure != nil {
			pol = chaos.NewPressured(cd, fault.Pressure(comp.V(), tr.Refs, rng, cell.Intensity))
		}

		row.Res, row.Err = runChaosCell(tr, pol, rc)
		rc.Report(row.Res)
		return row, nil
	})
}

// runChaosCell executes one checked run, converting panics and invariant
// violations into the row's Err field — a perturbed trace must never
// take the matrix down.
func runChaosCell(tr *trace.Trace, pol policy.Policy, rc *engine.RunCtx) (res vmsim.Result, errStr string) {
	defer func() {
		if r := recover(); r != nil {
			errStr = fmt.Sprintf("panic: %v", r)
		}
	}()
	res, err := vmsim.RunChecked(tr, pol, rc.Obs)
	if err != nil {
		errStr = err.Error()
	}
	return res, errStr
}

// RenderChaos prints the fault matrix: per cell the checked run's PF /
// MEM / ST, the ST inflation versus clean CD (how much of the paper's §5
// advantage the fault burned) and versus the WS fallback floor (negative
// means the run still beats plain WS), and the degradation status.
func RenderChaos(rows []ChaosRow) string {
	var b strings.Builder
	b.WriteString("Chaos Matrix: CD Under Injected Faults (checked runs)\n")
	fmt.Fprintf(&b, "%-10s %-20s %5s | %8s %8s %11s | %9s %9s | %s\n",
		"PROGRAM", "FAULT", "INT", "PF", "MEM", "ST", "%ST/CD", "%ST/WS", "STATUS")
	for _, r := range rows {
		status := "ok"
		switch {
		case r.Err != "":
			status = "BROKEN: " + r.Err
		case r.Res.Degraded:
			status = "degraded: " + r.Res.DegradedReason
		}
		fmt.Fprintf(&b, "%-10s %-20s %5.2f | %8d %8.2f %11.4g | %+9.0f %+9.0f | %s\n",
			r.Cell.Variant.Set, r.Cell.Fault, r.Cell.Intensity,
			r.Res.Faults, r.Res.MEM(), r.Res.ST(),
			pct(r.Res.ST(), r.Clean.ST()), pct(r.Res.ST(), r.Floor.ST()),
			status)
	}
	return b.String()
}
