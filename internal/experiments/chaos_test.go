package experiments

import (
	"strings"
	"testing"

	"cdmm/internal/chaos"
	"cdmm/internal/engine"
	"cdmm/internal/obs"
)

// quickChaosConfig is a small but representative slice of the matrix:
// one directive fault that trips the validator, one trace fault, the
// machine fault, and the deterministic truncation.
func quickChaosConfig() ChaosConfig {
	return ChaosConfig{
		Seed:        1,
		Variants:    []Variant{{"MAIN", "MAIN"}, {"TQL", "TQL1"}},
		Faults:      []string{"corrupt-priorities", "wild-pages", "truncate", "mem-pressure"},
		Intensities: []float64{0.4},
	}
}

// TestChaosMatrixCompletes is the harness's core promise: no fault class
// breaks the simulator. Every cell must complete with valid accounting
// (empty Err), and perturbed runs must never beat their own clean CD
// baseline by more than float noise.
func TestChaosMatrixCompletes(t *testing.T) {
	cfg := ChaosConfig{Seed: 1, Intensities: []float64{0.4},
		Variants: []Variant{{"MAIN", "MAIN"}}} // all faults on one program
	rows, err := ChaosMatrix(engine.New(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(chaos.Faults()); len(rows) != want {
		t.Fatalf("rows = %d, want %d (one per registered fault)", len(rows), want)
	}
	for _, r := range rows {
		if r.Err != "" {
			t.Errorf("%s@%g broke the simulator: %s", r.Cell.Fault, r.Cell.Intensity, r.Err)
		}
		if r.Res.Refs == 0 && r.Cell.Fault != "truncate" {
			t.Errorf("%s executed no references", r.Cell.Fault)
		}
	}
}

// TestChaosMatrixDeterministicAcrossParallelism renders the same seeded
// matrix at -j 1 and -j 8 and requires byte identity — the acceptance
// criterion for the seeded-injection design.
func TestChaosMatrixDeterministicAcrossParallelism(t *testing.T) {
	render := func(workers int) string {
		rows, err := ChaosMatrix(engine.New(workers), quickChaosConfig())
		if err != nil {
			t.Fatal(err)
		}
		return RenderChaos(rows)
	}
	want := render(1)
	if got := render(8); got != want {
		t.Errorf("matrix differs between -j 1 and -j 8:\n--- j=1\n%s\n--- j=8\n%s", want, got)
	}
}

// TestChaosDegradedRowsHaveEvents verifies every degraded row's
// observation stream carries the degrade event — the audit trail the
// degraded-mode contract promises.
func TestChaosDegradedRowsHaveEvents(t *testing.T) {
	col := &obs.Collector{}
	eng := engine.New(1).WithObserver(&obs.Observer{Tracer: col})
	cfg := ChaosConfig{Seed: 1, Intensities: []float64{0.9},
		Variants: []Variant{{"MAIN", "MAIN"}},
		Faults:   []string{"corrupt-priorities"}}
	rows, err := ChaosMatrix(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	degraded := 0
	for _, r := range rows {
		if r.Res.Degraded {
			degraded++
			if r.Res.DegradedReason == "" {
				t.Error("degraded row with empty reason")
			}
		}
	}
	if degraded == 0 {
		t.Skip("seed produced no degradation in this slice; covered by the full matrix")
	}
	found := 0
	for _, e := range col.Events {
		if e.Kind == obs.KindDegrade {
			found++
			if !strings.Contains(e.Why, "directive contract") {
				t.Errorf("degrade event Why = %q", e.Why)
			}
		}
	}
	if found < degraded {
		t.Errorf("%d degraded rows but only %d degrade events observed", degraded, found)
	}
}
