package experiments

import (
	"fmt"
	"strings"
)

// RenderTable1 prints Table 1 in the paper's layout.
func RenderTable1(rows []Row1) string {
	var b strings.Builder
	b.WriteString("Table 1: The Effect of Executing Different Sets of Directives Under CD Policy\n")
	fmt.Fprintf(&b, "%-10s %10s %8s %14s\n", "Program", "MEM", "PF", "ST")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %10.2f %8d %14.4g\n", r.Variant.Set, r.MEM, r.PF, r.ST)
	}
	return b.String()
}

// RenderTable2 prints Table 2 in the paper's layout.
func RenderTable2(rows []Row2) string {
	var b strings.Builder
	b.WriteString("Table 2: Comparing Minimal Space Time Cost Values of LRU and WS versus CD (%ST)\n")
	fmt.Fprintf(&b, "%-10s %12s %12s %10s %12s\n", "PROGRAM", "LRU vs. CD", "WS vs. CD", "LRU@m", "WS@tau")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %12.0f %12.0f %10d %12d\n", r.Variant.Set, r.PctSTLRU, r.PctSTWS, r.LRUAt, r.WSAt)
	}
	return b.String()
}

// RenderTable3 prints Table 3 in the paper's layout.
func RenderTable3(rows []Row3) string {
	var b strings.Builder
	b.WriteString("Table 3: Comparing LRU and WS versus CD When Similar Average Memory is Allocated\n")
	fmt.Fprintf(&b, "%-10s %8s | %8s %8s | %8s %8s\n", "PROGRAM", "MEM(CD)", "dPF-LRU", "%ST-LRU", "dPF-WS", "%ST-WS")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8.2f | %8d %8.1f | %8d %8.1f\n",
			r.Variant.Set, r.CDMEM, r.DeltaPFLRU, r.PctSTLRU, r.DeltaPFWS, r.PctSTWS)
	}
	return b.String()
}

// RenderTable4 prints Table 4 in the paper's layout.
func RenderTable4(rows []Row4) string {
	var b strings.Builder
	b.WriteString("Table 4: The Cost of Generating The Same Number of Page Faults as CD by LRU and WS\n")
	fmt.Fprintf(&b, "%-10s %8s | %9s %8s | %9s %8s\n", "PROGRAM", "PF(CD)", "%MEM-LRU", "%ST-LRU", "%MEM-WS", "%ST-WS")
	for _, r := range rows {
		lru := fmt.Sprintf("%9.1f %8.1f", r.PctMEMLRU, r.PctSTLRU)
		if !r.LRUOK {
			lru = fmt.Sprintf("%9s %8s", "n/a", "n/a")
		}
		ws := fmt.Sprintf("%9.1f %8.1f", r.PctMEMWS, r.PctSTWS)
		if !r.WSOK {
			ws = fmt.Sprintf("%9s %8s", "n/a", "n/a")
		}
		fmt.Fprintf(&b, "%-10s %8d | %s | %s\n", r.Variant.Set, r.CDPF, lru, ws)
	}
	return b.String()
}
