package experiments

import (
	"fmt"
	"strings"

	"cdmm/internal/directive"
	"cdmm/internal/engine"
	"cdmm/internal/policy"
	"cdmm/internal/vmsim"
)

// Detune scales every granted ALLOCATE request by factor, modeling a
// compiler that systematically over- or under-estimates locality sizes.
// The paper's §1 cites the "10% de-tuned policy" controllability
// discussion ([GrDe78], [Denn80]) and the authors' finding that it is "too
// optimistic" for numerical programs; this study asks the analogous
// question of CD itself: how sensitive is the policy to errors in the
// compile-time X values?
func Detune(sel policy.ArmSelector, factor float64) policy.ArmSelector {
	return func(label string, arms []directive.Arm) (directive.Arm, bool) {
		a, ok := sel(label, arms)
		if !ok {
			return a, false
		}
		x := int(float64(a.X)*factor + 0.5)
		if x < 1 {
			x = 1
		}
		return directive.Arm{PI: a.PI, X: x}, true
	}
}

// DetuneRow is one (program, factor) measurement.
type DetuneRow struct {
	Variant Variant
	Factor  float64
	PF      int
	MEM     float64
	ST      float64
}

// detuneJob is one (variant, factor) cell of the study grid.
type detuneJob struct {
	v Variant
	f float64
}

// DetuneStudy runs each variant's canonical CD set with every X scaled by
// each factor. The grid is flattened so every (variant, factor) cell is
// an independent engine run; a nil engine uses engine.Default().
func DetuneStudy(eng *engine.Engine, variants []Variant, factors []float64) ([]DetuneRow, error) {
	if variants == nil {
		variants = Table2Variants
	}
	if factors == nil {
		factors = []float64{0.5, 0.75, 0.9, 1.0, 1.1, 1.5, 2.0}
	}
	eng = engine.Or(eng)
	jobs := make([]detuneJob, 0, len(variants)*len(factors))
	for _, v := range variants {
		for _, f := range factors {
			jobs = append(jobs, detuneJob{v, f})
		}
	}
	return engine.MapNamed(eng, "detune", jobs, func(rc *engine.RunCtx, j detuneJob) (DetuneRow, error) {
		rc.Describe(fmt.Sprintf("%s/%s x%g", j.v.Program, j.v.Set, j.f), "CD detuned")
		set, err := variantSet(eng, rc, j.v)
		if err != nil {
			return DetuneRow{}, err
		}
		c, err := eng.Compiled(rc, j.v.Program)
		if err != nil {
			return DetuneRow{}, err
		}
		cd := policy.NewCD(Detune(set.Selector(), j.f), cdMinAlloc)
		r := vmsim.RunObserved(c.Trace, cd, rc.Obs)
		rc.Report(r)
		return DetuneRow{
			Variant: j.v, Factor: j.f, PF: r.Faults, MEM: r.MEM(), ST: r.ST(),
		}, nil
	})
}

// RenderDetune formats the study with one line per (program, factor).
func RenderDetune(rows []DetuneRow) string {
	var b strings.Builder
	b.WriteString("CD sensitivity to mis-estimated locality sizes (X scaled by factor)\n")
	fmt.Fprintf(&b, "%-8s %7s %8s %8s %12s %10s\n", "PROGRAM", "factor", "PF", "MEM", "ST", "ST/ST(1.0)")
	base := map[string]float64{}
	for _, r := range rows {
		if r.Factor == 1.0 {
			base[r.Variant.Set] = r.ST
		}
	}
	for _, r := range rows {
		rel := 0.0
		if b0 := base[r.Variant.Set]; b0 > 0 {
			rel = r.ST / b0
		}
		fmt.Fprintf(&b, "%-8s %7.2f %8d %8.2f %12.4g %10.2f\n",
			r.Variant.Set, r.Factor, r.PF, r.MEM, r.ST, rel)
	}
	return b.String()
}
