package experiments

import (
	"fmt"
	"strings"

	"cdmm/internal/directive"
	"cdmm/internal/engine"
	"cdmm/internal/policy"
)

// Detune scales every granted ALLOCATE request by factor, modeling a
// compiler that systematically over- or under-estimates locality sizes.
// The paper's §1 cites the "10% de-tuned policy" controllability
// discussion ([GrDe78], [Denn80]) and the authors' finding that it is "too
// optimistic" for numerical programs; this study asks the analogous
// question of CD itself: how sensitive is the policy to errors in the
// compile-time X values?
func Detune(sel policy.ArmSelector, factor float64) policy.ArmSelector {
	return func(label string, arms []directive.Arm) (directive.Arm, bool) {
		a, ok := sel(label, arms)
		if !ok {
			return a, false
		}
		x := int(float64(a.X)*factor + 0.5)
		if x < 1 {
			x = 1
		}
		return directive.Arm{PI: a.PI, X: x}, true
	}
}

// DetuneRow is one (program, factor) measurement.
type DetuneRow struct {
	Variant Variant
	Factor  float64
	PF      int
	MEM     float64
	ST      float64
}

// DetuneStudy runs each variant's canonical CD set with every X scaled by
// each factor. Each variant's whole factor grid is one engine run — in
// curve mode the grid replays in lockstep through a single trace
// traversal (sweep.Multi via the engine's CDDetune artifact), in cell
// mode one replay per factor — and rows come back variant-major,
// factor-minor, identical in either mode. A nil engine uses
// engine.Default().
func DetuneStudy(eng *engine.Engine, variants []Variant, factors []float64) ([]DetuneRow, error) {
	if variants == nil {
		variants = Table2Variants
	}
	if factors == nil {
		factors = []float64{0.5, 0.75, 0.9, 1.0, 1.1, 1.5, 2.0}
	}
	eng = engine.Or(eng)
	grids, err := engine.MapNamed(eng, "detune", variants, func(rc *engine.RunCtx, v Variant) ([]DetuneRow, error) {
		rc.Describe(fmt.Sprintf("%s/%s x%d factors", v.Program, v.Set, len(factors)), "CD detuned")
		set, err := variantSet(eng, rc, v)
		if err != nil {
			return nil, err
		}
		results, err := eng.CDDetune(rc, v.Program, set, cdMinAlloc, factors, Detune)
		if err != nil {
			return nil, err
		}
		rows := make([]DetuneRow, len(factors))
		report := len(factors) - 1
		for i, f := range factors {
			rows[i] = DetuneRow{Variant: v, Factor: f, PF: results[i].Faults, MEM: results[i].MEM(), ST: results[i].ST()}
			if f == 1.0 {
				report = i // the /progress drill-down shows the baseline run
			}
		}
		rc.Report(results[report])
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]DetuneRow, 0, len(variants)*len(factors))
	for _, g := range grids {
		out = append(out, g...)
	}
	return out, nil
}

// RenderDetune formats the study with one line per (program, factor).
func RenderDetune(rows []DetuneRow) string {
	var b strings.Builder
	b.WriteString("CD sensitivity to mis-estimated locality sizes (X scaled by factor)\n")
	fmt.Fprintf(&b, "%-8s %7s %8s %8s %12s %10s\n", "PROGRAM", "factor", "PF", "MEM", "ST", "ST/ST(1.0)")
	base := map[string]float64{}
	for _, r := range rows {
		if r.Factor == 1.0 {
			base[r.Variant.Set] = r.ST
		}
	}
	for _, r := range rows {
		rel := 0.0
		if b0 := base[r.Variant.Set]; b0 > 0 {
			rel = r.ST / b0
		}
		fmt.Fprintf(&b, "%-8s %7.2f %8d %8.2f %12.4g %10.2f\n",
			r.Variant.Set, r.Factor, r.PF, r.MEM, r.ST, rel)
	}
	return b.String()
}
