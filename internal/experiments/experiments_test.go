package experiments

import (
	"runtime"
	"strings"
	"testing"

	"cdmm/internal/engine"
	"cdmm/internal/workloads"
)

func TestTable1ShapeMatchesPaper(t *testing.T) {
	rows, err := Table1(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	byName := map[string]Row1{}
	for _, r := range rows {
		byName[r.Variant.Set] = r
	}
	// The paper's Table 1 ordering properties:
	// MAIN1 (outermost) has the most memory and fewest faults; MAIN3
	// (innermost) the least memory and most faults; MAIN in between.
	main, main1, main2, main3 := byName["MAIN"], byName["MAIN1"], byName["MAIN2"], byName["MAIN3"]
	if !(main1.MEM > main2.MEM && main2.MEM > main.MEM && main.MEM > main3.MEM) {
		t.Errorf("MAIN MEM ordering wrong: %v %v %v %v", main1.MEM, main2.MEM, main.MEM, main3.MEM)
	}
	if !(main1.PF < main2.PF && main2.PF < main.PF && main.PF < main3.PF) {
		t.Errorf("MAIN PF ordering wrong: %v %v %v %v", main1.PF, main2.PF, main.PF, main3.PF)
	}
	// "Directives at outer levels consume more memory and generate fewer
	// page faults" also holds for the FDJAC and TQL pairs.
	if byName["FDJAC"].MEM <= byName["FDJAC1"].MEM {
		t.Errorf("FDJAC (level 3) should use more memory than FDJAC1 (level 2)")
	}
	if byName["FDJAC"].PF >= byName["FDJAC1"].PF {
		t.Errorf("FDJAC should fault less than FDJAC1")
	}
	if byName["TQL1"].MEM <= byName["TQL2"].MEM {
		t.Errorf("TQL1 should use more memory than TQL2")
	}
	if byName["TQL1"].PF >= byName["TQL2"].PF {
		t.Errorf("TQL1 should fault less than TQL2")
	}
}

func TestTable2CDWins(t *testing.T) {
	rows, err := Table2(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	lruWins, wsWins := 0, 0
	for _, r := range rows {
		if r.PctSTLRU > 0 {
			lruWins++
		}
		if r.PctSTWS >= 0 {
			wsWins++
		}
	}
	// The headline result: CD's space-time cost beats the best tuned LRU
	// on every program and beats or ties the best tuned WS on almost all
	// (the paper reports CD ahead of both across the board; we document
	// the one WS exception in EXPERIMENTS.md).
	if lruWins != len(rows) {
		t.Errorf("CD beats min-ST LRU on %d/%d programs, want all", lruWins, len(rows))
	}
	if wsWins < len(rows)-1 {
		t.Errorf("CD beats/ties min-ST WS on %d/%d programs, want at least %d", wsWins, len(rows), len(rows)-1)
	}
}

func TestTable3EqualMemory(t *testing.T) {
	rows, err := Table3(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("rows = %d, want 14", len(rows))
	}
	var lruSTWins, wsSTWins int
	for _, r := range rows {
		// The matched WS window must land near CD's MEM.
		if r.CDMEM > 3 {
			rel := (r.WSMEM - r.CDMEM) / r.CDMEM
			if rel > 0.35 || rel < -0.35 {
				t.Errorf("%s: WS MEM %v too far from CD MEM %v", r.Variant.Set, r.WSMEM, r.CDMEM)
			}
		}
		// WS may edge out CD by a handful of faults on some rows (the
		// paper's own Table 3 has a -4.7%ST entry); large wins for WS or
		// LRU would signal a regression.
		if r.DeltaPFWS < -50 {
			t.Errorf("%s: WS beats CD by %d faults at equal memory", r.Variant.Set, -r.DeltaPFWS)
		}
		if r.PctSTLRU > 0 {
			lruSTWins++
		}
		if r.PctSTWS > 0 {
			wsSTWins++
		}
	}
	// At equal memory CD's space-time cost beats LRU on every row and WS
	// on nearly every row (the paper's Table 3 shape).
	if lruSTWins < 13 {
		t.Errorf("CD's ST ahead of LRU on only %d/14 rows at equal memory", lruSTWins)
	}
	if wsSTWins < 12 {
		t.Errorf("CD's ST ahead of WS on only %d/14 rows at equal memory", wsSTWins)
	}
}

func TestTable4EqualFaults(t *testing.T) {
	rows, err := Table4(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("rows = %d, want 14", len(rows))
	}
	var lruMore int
	for _, r := range rows {
		if !r.LRUOK || !r.WSOK {
			t.Errorf("%s: fault target unachievable (LRU %v, WS %v)", r.Variant.Set, r.LRUOK, r.WSOK)
			continue
		}
		if r.PctMEMLRU >= 0 {
			lruMore++
		}
	}
	// LRU needs at least as much memory as CD to match CD's fault count on
	// every row (the paper's Table 4 %MEM column is all positive).
	if lruMore < 13 {
		t.Errorf("LRU needs more memory than CD on only %d/14 rows", lruMore)
	}
}

func TestCDRunCaches(t *testing.T) {
	v := Variant{"MAIN", "MAIN"}
	r1, err := CDRun(v)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := CDRun(v)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Faults != r2.Faults || r1.SpaceTime != r2.SpaceTime {
		t.Error("cached CD run differs")
	}
}

func TestCDRunUnknown(t *testing.T) {
	if _, err := CDRun(Variant{"MAIN", "NOPE"}); err == nil {
		t.Error("expected error for unknown set")
	}
	if _, err := CDRun(Variant{"NOPE", "X"}); err == nil {
		t.Error("expected error for unknown program")
	}
}

// renderAll regenerates and renders all four tables on a fresh engine
// with the given worker count.
func renderAll(t *testing.T, workers int) string {
	t.Helper()
	eng := engine.New(workers)
	var b strings.Builder
	r1, err := Table1(eng)
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(RenderTable1(r1))
	r2, err := Table2(eng)
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(RenderTable2(r2))
	r3, err := Table3(eng)
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(RenderTable3(r3))
	r4, err := Table4(eng)
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(RenderTable4(r4))
	return b.String()
}

// TestTablesDeterministicAcrossParallelism is the engine's central
// guarantee: the rendered tables are byte-identical whether the run plan
// executes sequentially or on a saturated worker pool.
func TestTablesDeterministicAcrossParallelism(t *testing.T) {
	want := renderAll(t, 1)
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		if got := renderAll(t, workers); got != want {
			t.Errorf("tables differ between -j 1 and -j %d:\n--- j=1\n%s\n--- j=%d\n%s",
				workers, want, workers, got)
		}
	}
}

// TestMemoCompositeKeys is the regression test for the stale-cache bug
// the old per-set-name bundle cache had: two Set values sharing a name
// but selecting different strata must not collide in the memo store.
func TestMemoCompositeKeys(t *testing.T) {
	eng := engine.New(1)
	a := workloads.Set{Name: "SAME", Level: 1}
	b := workloads.Set{Name: "SAME", Level: 3}
	ra, err := eng.CDRun(nil, "MAIN", a, 2)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := eng.CDRun(nil, "MAIN", b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Faults == rb.Faults && ra.SpaceTime == rb.SpaceTime {
		t.Errorf("level-1 and level-3 runs under one set name returned the same result (PF=%d ST=%g): memo key ignores the selector",
			ra.Faults, ra.SpaceTime)
	}
	// Same name, same level, different minimum allocation must also miss.
	rc, err := eng.CDRun(nil, "MAIN", a, 12)
	if err != nil {
		t.Fatal(err)
	}
	if rc.MemSum == ra.MemSum && rc.Faults == ra.Faults {
		t.Errorf("min-alloc 2 and 12 runs collided in the memo store (PF=%d)", rc.Faults)
	}
	// Same parameterization under a different name keys separately but
	// must reproduce the identical result (simulations are deterministic).
	e := workloads.Set{Name: "OTHER", Level: 3}
	re, err := eng.CDRun(nil, "MAIN", e, 2)
	if err != nil {
		t.Fatal(err)
	}
	if re.Faults != rb.Faults || re.SpaceTime != rb.SpaceTime {
		t.Errorf("identical level-3 runs diverged across set names: PF %d vs %d", re.Faults, rb.Faults)
	}
}

func TestRendering(t *testing.T) {
	r1, err := Table1(nil)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTable1(r1)
	for _, want := range []string{"Table 1", "MAIN1", "TQL2", "MEM", "PF", "ST"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 rendering missing %q", want)
		}
	}
	r2, _ := Table2(nil)
	if out := RenderTable2(r2); !strings.Contains(out, "LRU vs. CD") {
		t.Error("Table 2 rendering missing header")
	}
	r3, _ := Table3(nil)
	if out := RenderTable3(r3); !strings.Contains(out, "HWSCRT") {
		t.Error("Table 3 rendering missing HWSCRT row")
	}
	r4, _ := Table4(nil)
	if out := RenderTable4(r4); !strings.Contains(out, "%MEM-LRU") {
		t.Error("Table 4 rendering missing header")
	}
}
