package experiments

import (
	"strings"
	"testing"

	"cdmm/internal/engine"
)

func TestPolicyFamilySubset(t *testing.T) {
	rows, err := PolicyFamily(nil, []Variant{{"MAIN", "MAIN"}, {"TQL", "TQL1"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Every policy must at least take the compulsory faults.
		v := cacheVFor(t, r.Variant.Program)
		for name, res := range map[string]int{
			"CD": r.CD.Faults, "WS": r.WS.Faults, "DWS": r.DWS.Faults,
			"SWS": r.SWS.Faults, "VSWS": r.VSWS.Faults, "PFF": r.PFF.Faults,
		} {
			if res < v {
				t.Errorf("%s/%s: %d faults below compulsory %d", r.Variant.Set, name, res, v)
			}
		}
		// DWS retains pages longer than WS: never more faults.
		if r.DWS.Faults > r.WS.Faults {
			t.Errorf("%s: DWS faults %d exceed WS faults %d", r.Variant.Set, r.DWS.Faults, r.WS.Faults)
		}
		// SWS approximates WS at the same scale: within a loose factor.
		if r.SWS.Faults > 6*r.WS.Faults+100 {
			t.Errorf("%s: SWS faults %d too far above WS %d", r.Variant.Set, r.SWS.Faults, r.WS.Faults)
		}
	}
	out := RenderFamily(rows)
	for _, want := range []string{"CD", "VSWS", "PFF", "MAIN"} {
		if !strings.Contains(out, want) {
			t.Errorf("family rendering missing %q", want)
		}
	}
}

func cacheVFor(t *testing.T, program string) int {
	t.Helper()
	c, err := engine.Default().Compiled(nil, program)
	if err != nil {
		t.Fatal(err)
	}
	return c.Trace.Distinct
}

func TestPageSizeSensitivity(t *testing.T) {
	rows, err := PageSizeSensitivity(nil, "HWSCRT", []int{128, 256, 512})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Smaller pages mean more pages in the virtual space.
	if !(rows[0].V > rows[1].V && rows[1].V > rows[2].V) {
		t.Errorf("V not decreasing with page size: %d %d %d", rows[0].V, rows[1].V, rows[2].V)
	}
	// CD should stay ahead of tuned LRU at the paper's 256-byte point.
	if rows[1].PctSTLRU <= 0 {
		t.Errorf("CD behind tuned LRU at 256-byte pages: %v%%", rows[1].PctSTLRU)
	}
	out := RenderPageSize(rows)
	if !strings.Contains(out, "HWSCRT") || !strings.Contains(out, "256") {
		t.Errorf("rendering incomplete:\n%s", out)
	}
}

func TestPageSizeSensitivityUnknown(t *testing.T) {
	if _, err := PageSizeSensitivity(nil, "NOPE", []int{256}); err == nil {
		t.Error("expected error for unknown program")
	}
}
