package experiments

import (
	"fmt"
	"strings"

	"cdmm/internal/core"
	"cdmm/internal/engine"
	"cdmm/internal/mem"
	"cdmm/internal/policy"
	"cdmm/internal/vmsim"
	"cdmm/internal/workloads"
)

// FamilyRow compares the whole §1 policy family against CD on one program:
// WS and its cheaper realizations (SWS, VSWS), the damped variant (DWS),
// and PFF. Parameters are scale-matched to CD's average memory through
// the WS window that reproduces it (τ*), rather than oracle-tuned:
// SWS samples at σ = τ*, VSWS uses (τ*/4, 2τ*, Q=4), DWS damps at τ*/8,
// and PFF thresholds at τ*/4 — the natural correspondences from the
// policies' own papers.
type FamilyRow struct {
	Variant Variant
	Tau     int
	CD      vmsim.Result
	WS      vmsim.Result
	DWS     vmsim.Result
	SWS     vmsim.Result
	VSWS    vmsim.Result
	PFF     vmsim.Result
}

// PolicyFamily runs the comparison for the given variants (nil means the
// Table 2 canonical set), one engine run per variant. A nil engine uses
// engine.Default().
func PolicyFamily(eng *engine.Engine, variants []Variant) ([]FamilyRow, error) {
	if variants == nil {
		variants = Table2Variants
	}
	eng = engine.Or(eng)
	return engine.MapNamed(eng, "family", variants, func(rc *engine.RunCtx, v Variant) (FamilyRow, error) {
		rc.Describe(v.Program+"/"+v.Set, "CD vs WS family")
		cd, err := cdRun(eng, rc, v)
		if err != nil {
			return FamilyRow{}, err
		}
		ws, err := eng.WSSweep(rc, v.Program)
		if err != nil {
			return FamilyRow{}, err
		}
		tau := ws.TauForMEM(cd.MEM())
		if tau < 4 {
			tau = 4
		}
		c, err := eng.Compiled(rc, v.Program)
		if err != nil {
			return FamilyRow{}, err
		}
		refs := c.Trace.RefsOnly()
		o := rc.Obs
		return FamilyRow{
			Variant: v,
			Tau:     tau,
			CD:      cd,
			WS:      vmsim.RunObserved(refs, policy.NewWS(tau), o),
			DWS:     vmsim.RunObserved(refs, policy.NewDWS(tau, max(1, tau/8)), o),
			SWS:     vmsim.RunObserved(refs, policy.NewSWS(tau), o),
			VSWS:    vmsim.RunObserved(refs, policy.NewVSWS(max(1, tau/4), 2*tau, 4), o),
			PFF:     vmsim.RunObserved(refs, policy.NewPFF(max(1, tau/4)), o),
		}, nil
	})
}

// RenderFamily formats the policy-family comparison.
func RenderFamily(rows []FamilyRow) string {
	var b strings.Builder
	b.WriteString("Policy family at CD-matched memory scale (PF | MEM | ST)\n")
	fmt.Fprintf(&b, "%-8s %6s | %26s | %26s | %26s | %26s | %26s | %26s\n",
		"PROGRAM", "tau*", "CD", "WS", "DWS", "SWS", "VSWS", "PFF")
	cell := func(r vmsim.Result) string {
		return fmt.Sprintf("%7d %7.1f %10.3g", r.Faults, r.MEM(), r.ST())
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %6d | %s | %s | %s | %s | %s | %s\n",
			r.Variant.Set, r.Tau, cell(r.CD), cell(r.WS), cell(r.DWS), cell(r.SWS), cell(r.VSWS), cell(r.PFF))
	}
	return b.String()
}

// PageSizeRow reports one program's CD-versus-best-LRU comparison at one
// page size — the sensitivity study the paper's fixed 256-byte assumption
// invites.
type PageSizeRow struct {
	Program  string
	PageSize int
	V        int
	CDPF     int
	CDMEM    float64
	CDST     float64
	LRUMinST float64
	PctSTLRU float64
}

// PageSizeSensitivity recompiles the named workload at each page size and
// compares CD (canonical set) against the tuned-LRU minimum. Page size
// changes everything downstream — AVS/CVS, the directive X values, the
// trace itself — so the whole pipeline reruns per point; the points are
// fully independent and run in parallel on the engine's pool.
func PageSizeSensitivity(eng *engine.Engine, program string, pageSizes []int) ([]PageSizeRow, error) {
	w, err := workloads.Get(program)
	if err != nil {
		return nil, err
	}
	set := w.DefaultSet()
	eng = engine.Or(eng)
	return engine.MapNamed(eng, "pagesize", pageSizes, func(rc *engine.RunCtx, ps int) (PageSizeRow, error) {
		rc.Describe(fmt.Sprintf("%s ps=%d", program, ps), "CD")
		prog, err := core.CompileSourceOpts(w.Name, w.Source, core.Options{
			Geometry: mem.Geometry{PageSize: ps, ElemSize: 4},
		})
		if err != nil {
			return PageSizeRow{}, err
		}
		cd, err := prog.RunCDObserved(core.CDOptions{Level: set.Level, Overrides: set.Overrides}, rc.Obs)
		if err != nil {
			return PageSizeRow{}, err
		}
		rc.Report(cd)
		lru, err := prog.LRUSweep()
		if err != nil {
			return PageSizeRow{}, err
		}
		_, stLRU := lru.MinST()
		return PageSizeRow{
			Program:  program,
			PageSize: ps,
			V:        prog.V(),
			CDPF:     cd.Faults,
			CDMEM:    cd.MEM(),
			CDST:     cd.ST(),
			LRUMinST: stLRU,
			PctSTLRU: pct(stLRU, cd.ST()),
		}, nil
	})
}

// RenderPageSize formats the sensitivity rows.
func RenderPageSize(rows []PageSizeRow) string {
	var b strings.Builder
	b.WriteString("Page-size sensitivity: CD (canonical set) vs tuned-LRU minimum\n")
	fmt.Fprintf(&b, "%-8s %9s %6s %8s %8s %12s %12s %10s\n",
		"PROGRAM", "page", "V", "CD-PF", "CD-MEM", "CD-ST", "LRUmin-ST", "%ST-LRU")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %9d %6d %8d %8.2f %12.4g %12.4g %9.0f%%\n",
			r.Program, r.PageSize, r.V, r.CDPF, r.CDMEM, r.CDST, r.LRUMinST, r.PctSTLRU)
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
