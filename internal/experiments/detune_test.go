package experiments

import (
	"strings"
	"testing"

	"cdmm/internal/directive"
	"cdmm/internal/policy"
)

func TestDetuneScalesGrants(t *testing.T) {
	base := policy.SelectLevel(2)
	arms := []directive.Arm{{PI: 2, X: 40}, {PI: 1, X: 10}}
	for _, c := range []struct {
		factor float64
		want   int
	}{
		{1.0, 40}, {0.5, 20}, {2.0, 80}, {0.01, 1}, // floors at 1
	} {
		a, ok := Detune(base, c.factor)("", arms)
		if !ok {
			t.Fatalf("factor %v: directive skipped", c.factor)
		}
		if a.X != c.want {
			t.Errorf("factor %v: X = %d, want %d", c.factor, a.X, c.want)
		}
	}
	// Skipped directives remain skipped.
	if _, ok := Detune(policy.SelectLevel(1), 1.0)("", []directive.Arm{{PI: 3, X: 9}, {PI: 2, X: 5}}); ok {
		t.Error("detune must preserve the skip decision")
	}
}

func TestDetuneStudyMonotoneFaults(t *testing.T) {
	rows, err := DetuneStudy(
		nil,
		[]Variant{{"MAIN", "MAIN"}, {"TQL", "TQL1"}},
		[]float64{0.5, 1.0, 2.0},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Grouped per program: larger grants never increase faults.
	byProg := map[string][]DetuneRow{}
	for _, r := range rows {
		byProg[r.Variant.Set] = append(byProg[r.Variant.Set], r)
	}
	for name, rs := range byProg {
		for i := 1; i < len(rs); i++ {
			if rs[i].Factor > rs[i-1].Factor && rs[i].PF > rs[i-1].PF {
				t.Errorf("%s: faults increased with a larger grant: %v", name, rs)
			}
		}
	}
	out := RenderDetune(rows)
	if !strings.Contains(out, "ST/ST(1.0)") || !strings.Contains(out, "MAIN") {
		t.Errorf("rendering incomplete:\n%s", out)
	}
}
