// Package perf is the machine-readable performance-regression harness:
// it measures the simulation hot path (vmsim.Run) per policy over the
// largest workload trace, emits a JSON baseline (ns/ref, allocs/ref, and
// the fault count as a machine-independent sanity anchor), and compares a
// fresh measurement against a checked-in baseline, failing on timing
// regressions beyond a threshold or on any fault-count drift.
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"cdmm/internal/engine"
	"cdmm/internal/kernel"
	"cdmm/internal/obs"
	"cdmm/internal/policy"
	"cdmm/internal/sweep"
	"cdmm/internal/trace"
	"cdmm/internal/vmsim"
	"cdmm/internal/workloads"
)

// Case is one measured configuration.
type Case struct {
	// Name identifies the policy configuration (stable across runs).
	Name string `json:"name"`
	// Workload and Refs describe the trace measured.
	Workload string `json:"workload"`
	Refs     int    `json:"refs"`
	// NsPerRef is wall-clock nanoseconds per reference (machine-local).
	NsPerRef float64 `json:"ns_per_ref"`
	// AllocsPerRef is steady-state heap allocations per reference; the
	// dense hot path pins this to 0.
	AllocsPerRef float64 `json:"allocs_per_ref"`
	// Faults anchors correctness: it must match the baseline exactly on
	// any machine.
	Faults int `json:"faults"`
}

// Baseline is the serialized result set of one Collect run.
type Baseline struct {
	Schema int    `json:"schema"`
	Quick  bool   `json:"quick"`
	GoOS   string `json:"goos"`
	GoArch string `json:"goarch"`
	Cases  []Case `json:"cases"`
	// ServeOverhead is the fractional ns/ref cost of attaching an
	// unwatched telemetry observer (gated tracer+metrics with no client
	// connected, plus the chunked progress callback) to the CD hot path:
	// (served - plain) / plain, each the min over alternating windows.
	ServeOverhead float64 `json:"serve_overhead"`
	// AttrOverhead is the fractional ns/ref cost the un-instrumented
	// fast path pays for a trace that merely *carries* the site
	// side-band (attribution disabled): (site-carrying - siteless) /
	// siteless, median of interleaved pair ratios. vmsim.Run never reads
	// the side-band, so this must stay near zero.
	AttrOverhead float64 `json:"attr_overhead"`
	// TelemetryOverhead is the fractional cost the kernel pays for the
	// full telemetry plane (histograms, heavy-hitter sketches, SLO
	// counters, flight recorder) when nobody is watching: (telemetry-on -
	// plain) / plain over full kernel runs, median of interleaved pair
	// ratios. The plane is shard-local integer state, so this must stay
	// small.
	TelemetryOverhead float64 `json:"telemetry_overhead"`
	// SweepSpeedupLRU and SweepSpeedupWS are the wall-clock ratios of
	// the per-cell Table 2 capacity columns (one vmsim replay per LRU
	// allocation 1..V; one per τ of the default ladder) to the one-pass
	// sweep curves that replace them, min-of-k timed on CONDUCT. The
	// sweep plane's reason to exist is this ratio; Compare fails when it
	// drops under SweepSpeedupMin.
	SweepSpeedupLRU float64 `json:"sweep_speedup_lru"`
	SweepSpeedupWS  float64 `json:"sweep_speedup_ws"`
}

// Schema is the current baseline file schema version.
const Schema = 1

// ServeOverheadMax is the acceptance ceiling for ServeOverhead: an
// attached-but-unwatched telemetry server may cost at most this
// fraction of the plain hot path.
const ServeOverheadMax = 0.02

// AttrOverheadMax is the acceptance ceiling for AttrOverhead: a trace
// carrying the provenance side-band may slow the un-instrumented fast
// path by at most this fraction.
const AttrOverheadMax = 0.03

// TelemetryOverheadMax is the acceptance ceiling for TelemetryOverhead:
// an unwatched kernel may pay at most this fraction for collecting its
// telemetry plane.
const TelemetryOverheadMax = 0.03

// SweepSpeedupMin is the acceptance floor for SweepSpeedupLRU and
// SweepSpeedupWS: the one-pass sweep curve must beat replaying the
// Table 2 capacity column cell by cell by at least this factor.
const SweepSpeedupMin = 5.0

// caseSpec defines the measured policy matrix. The CONDUCT trace is the
// suite's largest (the hot path the tables and sweeps spend their time
// in); directive-blind policies replay its directive-free view exactly
// like vmsim's unobserved fast path does.
type caseSpec struct {
	name       string
	workload   string
	directives bool
	newPolicy  func(w *workloads.Program) policy.Policy
}

func specs() []caseSpec {
	return []caseSpec{
		{"LRU/m=32", "CONDUCT", false, func(*workloads.Program) policy.Policy { return policy.NewLRU(32) }},
		{"FIFO/m=32", "CONDUCT", false, func(*workloads.Program) policy.Policy { return policy.NewFIFO(32) }},
		{"WS/tau=1000", "CONDUCT", false, func(*workloads.Program) policy.Policy { return policy.NewWS(1000) }},
		{"CD/default", "CONDUCT", true, func(w *workloads.Program) policy.Policy {
			return policy.NewCD(w.DefaultSet().Selector(), 2)
		}},
	}
}

// Collect measures every case and returns a fresh baseline. Quick mode
// shortens the per-case measurement window (for CI smoke jobs); the
// fault anchors are identical either way.
func Collect(quick bool) (*Baseline, error) {
	target := time.Second
	if quick {
		target = 250 * time.Millisecond
	}
	b := &Baseline{Schema: Schema, Quick: quick, GoOS: runtime.GOOS, GoArch: runtime.GOARCH}
	for _, sp := range specs() {
		w, err := workloads.Get(sp.workload)
		if err != nil {
			return nil, err
		}
		c, err := workloads.Compile(w)
		if err != nil {
			return nil, err
		}
		tr := c.Trace
		if !sp.directives {
			tr = tr.RefsOnly()
		}
		pol := sp.newPolicy(w)
		res := vmsim.Run(tr, pol) // warmup: sizes every buffer, anchors PF
		cs := measure(target, tr.Refs, func() { vmsim.Run(tr, pol) })
		cs.Name = sp.name
		cs.Workload = sp.workload
		cs.Refs = tr.Refs
		cs.Faults = res.Faults
		b.Cases = append(b.Cases, cs)
	}
	if err := collectBlockStep(b, target); err != nil {
		return nil, err
	}
	if err := collectSweepCurves(b, target); err != nil {
		return nil, err
	}
	if err := collectStreamDecode(b, target); err != nil {
		return nil, err
	}
	if err := collectServeOverhead(b, target); err != nil {
		return nil, err
	}
	if err := collectAttrOverhead(b, target); err != nil {
		return nil, err
	}
	if err := collectKernelStep(b, target); err != nil {
		return nil, err
	}
	if err := collectTelemetryOverhead(b, target); err != nil {
		return nil, err
	}
	return b, nil
}

// collectBlockStep measures StepBlock throughput with the whole CONDUCT
// reference string handed over in one call — the ceiling of the block-
// stepped hot path, with zero cursor or dispatch overhead. The paired
// per-reference Step measurement pins down the speedup block stepping
// buys; the fault anchors tie both to the simulated behavior.
func collectBlockStep(b *Baseline, target time.Duration) error {
	w, err := workloads.Get("CONDUCT")
	if err != nil {
		return err
	}
	c, err := workloads.Compile(w)
	if err != nil {
		return err
	}
	pages := c.Trace.RefsOnly().Pages()
	pol := policy.NewLRU(32)
	pol.Reset()
	var warm policy.BlockResult
	pol.StepBlock(pages, &warm)

	cs := measure(target, len(pages), func() {
		pol.Reset()
		var out policy.BlockResult
		pol.StepBlock(pages, &out)
	})
	cs.Name = "block_step/LRU"
	cs.Workload = "CONDUCT"
	cs.Refs = len(pages)
	cs.Faults = warm.Faults
	b.Cases = append(b.Cases, cs)

	cs = measure(target, len(pages), func() {
		pol.Reset()
		for _, pg := range pages {
			pol.Step(pg)
		}
	})
	cs.Name = "single_step/LRU"
	cs.Workload = "CONDUCT"
	cs.Refs = len(pages)
	cs.Faults = warm.Faults
	b.Cases = append(b.Cases, cs)
	return nil
}

// collectSweepCurves measures the one-pass sweep plane against the
// per-cell replays it replaced. The LRU side builds the whole Mattson
// miss-ratio curve (every allocation 1..V) in one traversal and is
// timed against one vmsim replay per allocation; the WS side builds the
// interval histograms plus the full default-τ-ladder curve against one
// replay per τ. Fault anchors tie each curve to the corresponding
// single-policy case (LRU/m=32, WS/tau=1000), and a differential check
// pins curve results to per-cell results before anything is timed.
func collectSweepCurves(b *Baseline, target time.Duration) error {
	w, err := workloads.Get("CONDUCT")
	if err != nil {
		return err
	}
	c, err := workloads.Compile(w)
	if err != nil {
		return err
	}
	tr := c.Trace
	v := c.V()
	taus := vmsim.DefaultTaus(tr.Refs)

	lru, err := sweep.NewLRU(tr)
	if err != nil {
		return err
	}
	ws, err := sweep.NewWS(tr)
	if err != nil {
		return err
	}
	// Differential anchors: the curves must agree with the cells they
	// summarize, on this machine, before their timings mean anything.
	if got, want := lru.Result(32), vmsim.Run(tr.RefsOnly(), policy.NewLRU(32)); got != want {
		return fmt.Errorf("perf: LRU curve drifted from per-cell replay at m=32: %+v vs %+v", got, want)
	}
	wsCell := vmsim.Run(tr.RefsOnly(), policy.NewWS(1000))
	wsCurve, err := ws.Run(1000)
	if err != nil {
		return err
	}
	if wsCurve != wsCell {
		return fmt.Errorf("perf: WS curve drifted from per-cell replay at tau=1000: %+v vs %+v", wsCurve, wsCell)
	}

	cs := measure(target, tr.Refs, func() {
		if _, err := sweep.NewLRU(tr); err != nil {
			panic(err)
		}
	})
	cs.Name = "sweep_lru_curve"
	cs.Workload = "CONDUCT"
	cs.Refs = tr.Refs
	cs.Faults = lru.Faults(32)
	b.Cases = append(b.Cases, cs)

	cs = measure(target, tr.Refs, func() {
		s, err := sweep.NewWS(tr)
		if err != nil {
			panic(err)
		}
		if _, err := s.Curve(taus); err != nil {
			panic(err)
		}
	})
	cs.Name = "sweep_ws_curve"
	cs.Workload = "CONDUCT"
	cs.Refs = tr.Refs
	cs.Faults = ws.Faults(1000)
	b.Cases = append(b.Cases, cs)

	// Speedups: min-of-k wall clock of the per-cell column over the
	// curve, k small because the cell side replays the trace V (or
	// len(taus)) times per sample.
	curveLRU := minTime(3, func() {
		if _, err := sweep.NewLRU(tr); err != nil {
			panic(err)
		}
	})
	cellLRU := minTime(2, func() { vmsim.SweepLRU(tr, v) })
	curveWS := minTime(3, func() {
		s, err := sweep.NewWS(tr)
		if err != nil {
			panic(err)
		}
		if _, err := s.Curve(taus); err != nil {
			panic(err)
		}
	})
	cellWS := minTime(2, func() { vmsim.SweepWS(tr, taus) })
	b.SweepSpeedupLRU = float64(cellLRU.Nanoseconds()) / float64(curveLRU.Nanoseconds())
	b.SweepSpeedupWS = float64(cellWS.Nanoseconds()) / float64(curveWS.Nanoseconds())
	return nil
}

// minTime returns the fastest of k timed runs of fn.
func minTime(k int, fn func()) time.Duration {
	var best time.Duration
	for i := 0; i < k; i++ {
		t0 := time.Now()
		fn()
		if d := time.Since(t0); i == 0 || d < best {
			best = d
		}
	}
	return best
}

// collectStreamDecode measures the chunked CDT3 decode path: a cursor
// walk over an on-disk encoding of the CONDUCT trace, the cost a
// streamed replay pays on top of the policy loop. The per-iteration
// cursor setup (open, header seek, chunk buffers) amortizes over the
// trace, so allocs/ref still rounds to zero.
func collectStreamDecode(b *Baseline, target time.Duration) error {
	w, err := workloads.Get("CONDUCT")
	if err != nil {
		return err
	}
	c, err := workloads.Compile(w)
	if err != nil {
		return err
	}
	f, err := os.CreateTemp("", "cdmm-perf-*.cdt3")
	if err != nil {
		return err
	}
	defer os.Remove(f.Name())
	if _, err := trace.WriteCDT3(f, c.Trace, 0); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	src, err := trace.OpenCDT3(f.Name())
	if err != nil {
		return err
	}
	meta := src.Meta()
	walk := func() int {
		cur := src.Blocks(trace.CursorOpts{})
		defer cur.Close()
		refs := 0
		var blk trace.Block
		for cur.Next(&blk) {
			refs += len(blk.Pages)
		}
		return refs
	}
	if got := walk(); got != meta.Refs {
		return fmt.Errorf("perf: stream decode replayed %d refs, header declares %d", got, meta.Refs)
	}
	// Fault anchor: a streamed replay must fault exactly like the
	// in-memory one (representation independence, checked here so the
	// baseline pins it on every machine).
	memRes := vmsim.Run(c.Trace, policy.NewCD(w.DefaultSet().Selector(), 2))
	streamRes, err := vmsim.RunSource(src, policy.NewCD(w.DefaultSet().Selector(), 2), nil)
	if err != nil {
		return err
	}
	if streamRes != memRes {
		return fmt.Errorf("perf: streamed CD replay drifted: %+v vs %+v", streamRes, memRes)
	}
	cs := measure(target, meta.Refs, func() { walk() })
	cs.Name = "stream_decode"
	cs.Workload = "CONDUCT"
	cs.Refs = meta.Refs
	cs.Faults = streamRes.Faults
	b.Cases = append(b.Cases, cs)
	return nil
}

// gateClosed is the telemetry daemon's gate state when no client is
// connected: never open, so observed runs take the fast path.
type gateClosed struct{}

func (gateClosed) Open() bool { return false }

// servedObserver mirrors serve.Server.Observer() plus the progress
// callback the engine tracker installs: tracer and metrics present but
// gated off, progress stored with lock-free atomics.
func servedObserver() *obs.Observer {
	var done, vt atomic.Int64
	return &obs.Observer{
		Tracer:  &obs.Collector{},
		Metrics: obs.NewRegistry(),
		Gate:    gateClosed{},
		Progress: func(d, t int, v int64) {
			done.Store(int64(d))
			vt.Store(v)
		},
	}
}

// collectServeOverhead measures the CD hot path plain and with an
// unwatched telemetry observer attached, alternating min-of-k windows
// so scheduler noise cancels, and anchors that the served run's fault
// count is identical (attaching a server must not change results).
func collectServeOverhead(b *Baseline, target time.Duration) error {
	w, err := workloads.Get("CONDUCT")
	if err != nil {
		return err
	}
	c, err := workloads.Compile(w)
	if err != nil {
		return err
	}
	tr := c.Trace
	pol := policy.NewCD(w.DefaultSet().Selector(), 2)
	o := servedObserver()
	plainRes := vmsim.Run(tr, pol)
	servedRes := vmsim.RunObserved(tr, pol, o)
	if servedRes.Faults != plainRes.Faults {
		return fmt.Errorf("perf: serve-attached CD run drifted: PF %d, want %d",
			servedRes.Faults, plainRes.Faults)
	}
	// Alternate single plain/served runs and take the median of the
	// per-pair time ratios: the two runs of a pair are adjacent in time,
	// so frequency scaling and scheduler drift cancel within each pair,
	// and the median discards the pairs a descheduling corrupted.
	var ratios []float64
	deadline := time.Now().Add(2 * target)
	for len(ratios) < 8 || time.Now().Before(deadline) {
		t0 := time.Now()
		vmsim.Run(tr, pol)
		plain := time.Since(t0)
		t0 = time.Now()
		vmsim.RunObserved(tr, pol, o)
		served := time.Since(t0)
		ratios = append(ratios, float64(served.Nanoseconds())/float64(plain.Nanoseconds()))
	}
	sort.Float64s(ratios)
	mid := len(ratios) / 2
	median := ratios[mid]
	if len(ratios)%2 == 0 {
		median = (ratios[mid-1] + ratios[mid]) / 2
	}
	b.ServeOverhead = median - 1
	return nil
}

// collectAttrOverhead measures the CD hot path on the site-carrying
// CONDUCT trace against its siteless projection, interleaving pairs and
// taking the median ratio (like collectServeOverhead). It also anchors
// that the attributed loop reproduces the fast path's Result exactly —
// the attribution plane must explain the run, never change it.
func collectAttrOverhead(b *Baseline, target time.Duration) error {
	w, err := workloads.Get("CONDUCT")
	if err != nil {
		return err
	}
	c, err := workloads.Compile(w)
	if err != nil {
		return err
	}
	sited := c.Trace
	if !sited.HasSites() {
		return fmt.Errorf("perf: CONDUCT trace lost its site side-band")
	}
	siteless := sited.WithoutSites()
	pol := policy.NewCD(w.DefaultSet().Selector(), 2)
	plainRes := vmsim.Run(siteless, pol)
	sitedRes := vmsim.Run(sited, pol)
	if sitedRes != plainRes {
		return fmt.Errorf("perf: site-carrying trace changed the fast path: %+v vs %+v", sitedRes, plainRes)
	}
	attrRes, led := vmsim.RunAttributed(sited, pol, nil)
	if attrRes != plainRes {
		return fmt.Errorf("perf: attributed run drifted from fast path: %+v vs %+v", attrRes, plainRes)
	}
	if err := led.Conservation(); err != nil {
		return err
	}
	var ratios []float64
	deadline := time.Now().Add(2 * target)
	for len(ratios) < 8 || time.Now().Before(deadline) {
		t0 := time.Now()
		vmsim.Run(siteless, pol)
		plain := time.Since(t0)
		t0 = time.Now()
		vmsim.Run(sited, pol)
		carrying := time.Since(t0)
		ratios = append(ratios, float64(carrying.Nanoseconds())/float64(plain.Nanoseconds()))
	}
	sort.Float64s(ratios)
	mid := len(ratios) / 2
	median := ratios[mid]
	if len(ratios)%2 == 0 {
		median = (ratios[mid-1] + ratios[mid]) / 2
	}
	b.AttrOverhead = median - 1
	return nil
}

// collectKernelStep measures the multi-tenant kernel end to end: a
// fixed 96-tenant population over two shards on one worker, so the
// number covers tenant synthesis, the admission/reclaim scheduler loop
// and block-stepped replay together. Per-ref allocations are nonzero
// here by design (each iteration materializes the population); the
// anchor is the aggregate fault count, which is deterministic for a
// fixed config on any machine.
func collectKernelStep(b *Baseline, target time.Duration) error {
	cfg := kernel.Config{Tenants: 96, Shards: 2, Seed: 1, Scale: 0.25}
	eng := engine.New(1)
	warm, err := kernel.Run(cfg, eng)
	if err != nil {
		return err
	}
	if len(warm.Violations) > 0 {
		return fmt.Errorf("perf: kernel warmup violated invariants: %s", warm.Violations[0])
	}
	cs := measure(target, int(warm.Refs), func() {
		if _, err := kernel.Run(cfg, eng); err != nil {
			panic(err)
		}
	})
	cs.Name = "kernel_step"
	cs.Workload = "synthetic/96"
	cs.Refs = int(warm.Refs)
	cs.Faults = int(warm.Faults)
	b.Cases = append(b.Cases, cs)
	return nil
}

// collectTelemetryOverhead measures the kernel plain and with the full
// telemetry plane on (no store attached — the unwatched configuration),
// interleaving pairs and taking the median ratio like the other
// overhead gates. It also anchors that telemetry does not perturb the
// run: the instrumented kernel's fault count must match the plain one.
// Full-length workloads, unlike kernel_step's quarter-scale ones: the
// plane's cost is dominated by the fixed end-of-run merge and snapshot,
// so a short scaled run would overstate the ratio a real population
// pays.
func collectTelemetryOverhead(b *Baseline, target time.Duration) error {
	plain := kernel.Config{Tenants: 96, Shards: 2, Seed: 1}
	instr := plain
	instr.Telemetry = true
	eng := engine.New(1)
	plainRes, err := kernel.Run(plain, eng)
	if err != nil {
		return err
	}
	instrRes, err := kernel.Run(instr, eng)
	if err != nil {
		return err
	}
	if instrRes.Faults != plainRes.Faults || instrRes.Refs != plainRes.Refs {
		return fmt.Errorf("perf: telemetry perturbed the kernel: pf %d refs %d, want pf %d refs %d",
			instrRes.Faults, instrRes.Refs, plainRes.Faults, plainRes.Refs)
	}
	if instrRes.Telemetry == nil {
		return fmt.Errorf("perf: telemetry on but no snapshot collected")
	}
	// Unrecorded warm-up pairs grow the heap to its steady state before
	// anything is timed — the first instrumented runs otherwise pay the
	// one-time heap growth for the plane's buffers and bias the ratio.
	for i := 0; i < 2; i++ {
		if _, err := kernel.Run(plain, eng); err != nil {
			return err
		}
		if _, err := kernel.Run(instr, eng); err != nil {
			return err
		}
	}
	runtime.GC()
	// Alternate plain and instrumented runs and compare the *minimum*
	// time of each: both workloads are deterministic, so the minimum over
	// many runs converges on the true cost, and scheduler or GC noise —
	// which only ever adds time — cannot bias the ratio the way it smears
	// a median of pair ratios on a loaded machine.
	// The window is longer than the other collectors': each sample is a
	// whole kernel run, and the min needs enough draws on both sides to
	// land in an uncontended scheduling slot.
	minOff, minOn := time.Duration(1<<62), time.Duration(1<<62)
	pairs := 0
	deadline := time.Now().Add(6 * target)
	for pairs < 32 || time.Now().Before(deadline) {
		t0 := time.Now()
		if _, err := kernel.Run(plain, eng); err != nil {
			return err
		}
		if d := time.Since(t0); d < minOff {
			minOff = d
		}
		t0 = time.Now()
		if _, err := kernel.Run(instr, eng); err != nil {
			return err
		}
		if d := time.Since(t0); d < minOn {
			minOn = d
		}
		pairs++
	}
	b.TelemetryOverhead = float64(minOn.Nanoseconds())/float64(minOff.Nanoseconds()) - 1
	return nil
}

// measure times fn over a wall-clock window and reports per-ref cost and
// steady-state allocation rate.
func measure(target time.Duration, refs int, fn func()) Case {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	iters := 0
	for elapsed := time.Duration(0); elapsed < target || iters < 3; {
		fn()
		iters++
		elapsed = time.Since(start)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	perIter := float64(elapsed.Nanoseconds()) / float64(iters)
	allocs := float64(after.Mallocs-before.Mallocs) / float64(iters)
	return Case{
		NsPerRef:     perIter / float64(refs),
		AllocsPerRef: allocs / float64(refs),
	}
}

// Save writes a baseline as indented JSON.
func Save(path string, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a baseline file.
func Load(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if b.Schema != Schema {
		return nil, fmt.Errorf("%s: baseline schema %d, want %d", path, b.Schema, Schema)
	}
	return &b, nil
}

// Compare renders a benchstat-style old/new table and returns the list of
// regressions: cases whose ns/ref grew more than threshold (a fraction,
// e.g. 0.25 for +25%), whose allocs/ref became nonzero, or whose fault
// anchor drifted. Cases present on only one side are reported but never
// fail the comparison (the matrix may grow).
func Compare(baseline, current *Baseline, threshold float64) (string, []string) {
	var sb strings.Builder
	var regressions []string
	base := map[string]Case{}
	for _, c := range baseline.Cases {
		base[c.Name] = c
	}
	fmt.Fprintf(&sb, "%-14s %12s %12s %8s  %s\n", "case", "old ns/ref", "new ns/ref", "delta", "allocs/ref")
	seen := map[string]bool{}
	for _, c := range current.Cases {
		seen[c.Name] = true
	}
	for _, c := range current.Cases {
		old, ok := base[c.Name]
		if !ok {
			fmt.Fprintf(&sb, "%-14s %12s %12.2f %8s  %.3f (new case)\n", c.Name, "-", c.NsPerRef, "-", c.AllocsPerRef)
			continue
		}
		delta := (c.NsPerRef - old.NsPerRef) / old.NsPerRef
		fmt.Fprintf(&sb, "%-14s %12.2f %12.2f %+7.1f%%  %.3f\n",
			c.Name, old.NsPerRef, c.NsPerRef, 100*delta, c.AllocsPerRef)
		if delta > threshold {
			regressions = append(regressions,
				fmt.Sprintf("%s: ns/ref %.2f -> %.2f (%+.1f%% > +%.0f%%)",
					c.Name, old.NsPerRef, c.NsPerRef, 100*delta, 100*threshold))
		}
		if old.AllocsPerRef == 0 && c.AllocsPerRef > 0.001 {
			regressions = append(regressions,
				fmt.Sprintf("%s: allocs/ref %.4f, want 0", c.Name, c.AllocsPerRef))
		}
		if c.Faults != old.Faults {
			regressions = append(regressions,
				fmt.Sprintf("%s: fault anchor drifted %d -> %d (simulation behavior changed)",
					c.Name, old.Faults, c.Faults))
		}
	}
	var missing []string
	for name := range base {
		if !seen[name] {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Fprintf(&sb, "%-14s (missing from current run)\n", name)
	}
	fmt.Fprintf(&sb, "serve overhead (no client attached): %+.2f%% (ceiling +%.0f%%)\n",
		100*current.ServeOverhead, 100*ServeOverheadMax)
	if current.ServeOverhead > ServeOverheadMax {
		regressions = append(regressions,
			fmt.Sprintf("serve-attached overhead %+.2f%% > +%.0f%% (unwatched telemetry is no longer near-free)",
				100*current.ServeOverhead, 100*ServeOverheadMax))
	}
	fmt.Fprintf(&sb, "attr side-band overhead (attribution off): %+.2f%% (ceiling +%.0f%%)\n",
		100*current.AttrOverhead, 100*AttrOverheadMax)
	if current.AttrOverhead > AttrOverheadMax {
		regressions = append(regressions,
			fmt.Sprintf("site side-band overhead %+.2f%% > +%.0f%% (carrying provenance is no longer free on the fast path)",
				100*current.AttrOverhead, 100*AttrOverheadMax))
	}
	fmt.Fprintf(&sb, "kernel telemetry overhead (unwatched): %+.2f%% (ceiling +%.0f%%)\n",
		100*current.TelemetryOverhead, 100*TelemetryOverheadMax)
	if current.TelemetryOverhead > TelemetryOverheadMax {
		regressions = append(regressions,
			fmt.Sprintf("kernel telemetry overhead %+.2f%% > +%.0f%% (the unwatched telemetry plane is no longer near-free)",
				100*current.TelemetryOverhead, 100*TelemetryOverheadMax))
	}
	// The speedup gates only arm once a baseline records them (older
	// baselines carry zero), so growing the matrix never fails retroactively.
	sweeps := []struct {
		name      string
		base, cur float64
	}{
		{"LRU", baseline.SweepSpeedupLRU, current.SweepSpeedupLRU},
		{"WS", baseline.SweepSpeedupWS, current.SweepSpeedupWS},
	}
	for _, s := range sweeps {
		if s.base == 0 && s.cur == 0 {
			continue
		}
		fmt.Fprintf(&sb, "sweep %s curve vs per-cell column: %.1fx (floor %.0fx)\n",
			s.name, s.cur, SweepSpeedupMin)
		if s.base > 0 && s.cur < SweepSpeedupMin {
			regressions = append(regressions,
				fmt.Sprintf("sweep %s curve speedup %.1fx < %.0fx (one-pass sweep no longer pays for itself)",
					s.name, s.cur, SweepSpeedupMin))
		}
	}
	return sb.String(), regressions
}
