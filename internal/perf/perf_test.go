package perf

import (
	"path/filepath"
	"strings"
	"testing"
)

func mkBaseline(cases ...Case) *Baseline {
	return &Baseline{Schema: Schema, GoOS: "linux", GoArch: "amd64", Cases: cases}
}

func TestCompareDetectsRegressions(t *testing.T) {
	old := mkBaseline(
		Case{Name: "LRU", NsPerRef: 10, AllocsPerRef: 0, Faults: 100},
		Case{Name: "WS", NsPerRef: 20, AllocsPerRef: 0, Faults: 200},
		Case{Name: "GONE", NsPerRef: 5, Faults: 7},
	)
	cur := mkBaseline(
		Case{Name: "LRU", NsPerRef: 14, AllocsPerRef: 0, Faults: 100},  // +40% time
		Case{Name: "WS", NsPerRef: 21, AllocsPerRef: 0.5, Faults: 201}, // allocs + PF drift
		Case{Name: "NEW", NsPerRef: 3, Faults: 1},
	)
	report, regs := Compare(old, cur, 0.25)
	if len(regs) != 3 {
		t.Fatalf("want 3 regressions, got %d: %v", len(regs), regs)
	}
	wantFrags := []string{"LRU: ns/ref", "WS: allocs/ref", "WS: fault anchor drifted 200 -> 201"}
	for i, frag := range wantFrags {
		if !strings.Contains(regs[i], frag) {
			t.Fatalf("regression %d = %q, want fragment %q", i, regs[i], frag)
		}
	}
	for _, frag := range []string{"new case", "missing from current run", "delta"} {
		if !strings.Contains(report, frag) {
			t.Fatalf("report missing %q:\n%s", frag, report)
		}
	}
}

func TestCompareCleanRun(t *testing.T) {
	old := mkBaseline(Case{Name: "LRU", NsPerRef: 10, AllocsPerRef: 0, Faults: 100})
	cur := mkBaseline(Case{Name: "LRU", NsPerRef: 11, AllocsPerRef: 0, Faults: 100})
	if _, regs := Compare(old, cur, 0.25); len(regs) != 0 {
		t.Fatalf("clean +10%% run flagged: %v", regs)
	}
}

func TestCompareFlagsServeOverhead(t *testing.T) {
	old := mkBaseline(Case{Name: "LRU", NsPerRef: 10, AllocsPerRef: 0, Faults: 100})
	cur := mkBaseline(Case{Name: "LRU", NsPerRef: 10, AllocsPerRef: 0, Faults: 100})
	cur.ServeOverhead = ServeOverheadMax * 2
	report, regs := Compare(old, cur, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "serve-attached overhead") {
		t.Fatalf("want one serve-overhead regression, got %v", regs)
	}
	if !strings.Contains(report, "serve overhead") {
		t.Fatalf("report missing serve-overhead line:\n%s", report)
	}
	cur.ServeOverhead = ServeOverheadMax / 2
	if _, regs := Compare(old, cur, 0.25); len(regs) != 0 {
		t.Fatalf("in-budget overhead flagged: %v", regs)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	b := mkBaseline(Case{Name: "LRU", Workload: "CONDUCT", Refs: 42, NsPerRef: 9.5, Faults: 3})
	if err := Save(path, b); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cases) != 1 || got.Cases[0] != b.Cases[0] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestLoadRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	b := mkBaseline()
	b.Schema = Schema + 1
	if err := Save(path, b); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

// TestCollectQuick measures the real matrix once; it anchors that the
// hot path stays allocation-free and the fault counts are reproducible.
func TestCollectQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement windows are slow; skipped under -short")
	}
	b, err := Collect(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Cases) == 0 {
		t.Fatal("no cases measured")
	}
	for _, c := range b.Cases {
		if c.NsPerRef <= 0 || c.Refs <= 0 || c.Faults <= 0 {
			t.Fatalf("%s: implausible measurement %+v", c.Name, c)
		}
		if strings.HasPrefix(c.Name, "sweep_") {
			// Curve construction materializes its whole result (Fenwick
			// tree, interval histograms, per-allocation suffix sums), so it
			// allocates by design; the bound keeps it amortized per ref.
			if c.AllocsPerRef > 0.05 {
				t.Fatalf("%s: curve build allocates %.4f allocs/ref, want amortized < 0.05", c.Name, c.AllocsPerRef)
			}
			continue
		}
		if c.Name == "kernel_step" {
			// End-to-end case: each iteration synthesizes and materializes
			// the tenant population, so it allocates by design — but the
			// amortized rate must stay far below one allocation per
			// simulated reference.
			if c.AllocsPerRef > 0.5 {
				t.Fatalf("%s: kernel run allocates %.4f allocs/ref, want amortized < 0.5", c.Name, c.AllocsPerRef)
			}
			continue
		}
		if c.AllocsPerRef > 0.001 {
			t.Fatalf("%s: hot path allocates %.4f allocs/ref, want 0", c.Name, c.AllocsPerRef)
		}
	}
	if raceEnabled {
		// The race detector multiplies the cost of the observer callbacks
		// and the side-band cursor far more than the plain hot loop, so
		// the instrumented-vs-plain *ratios* are meaningless in this
		// build. Keep the structural, allocation and anchor checks; drop
		// only the overhead ceilings.
		t.Logf("race build: skipping overhead ceilings (measured serve %+.2f%%, attr %+.2f%%, telemetry %+.2f%%)",
			100*b.ServeOverhead, 100*b.AttrOverhead, 100*b.TelemetryOverhead)
		b.ServeOverhead, b.AttrOverhead, b.TelemetryOverhead = 0, 0, 0
	}
	if b.ServeOverhead > ServeOverheadMax {
		t.Errorf("unwatched serve observer costs %+.2f%% ns/ref, ceiling +%.0f%%",
			100*b.ServeOverhead, 100*ServeOverheadMax)
	}
	if b.AttrOverhead > AttrOverheadMax {
		t.Errorf("site side-band costs %+.2f%% ns/ref on the fast path, ceiling +%.0f%%",
			100*b.AttrOverhead, 100*AttrOverheadMax)
	}
	if b.TelemetryOverhead > TelemetryOverheadMax {
		t.Errorf("unwatched kernel telemetry costs %+.2f%%, ceiling +%.0f%%",
			100*b.TelemetryOverhead, 100*TelemetryOverheadMax)
	}
	// A second collection must reproduce the fault anchors exactly.
	b2, err := Collect(true)
	if err != nil {
		t.Fatal(err)
	}
	if raceEnabled {
		b2.ServeOverhead, b2.AttrOverhead, b2.TelemetryOverhead = 0, 0, 0
	}
	if _, regs := Compare(b, b2, 10); len(regs) != 0 { // huge threshold: only anchors can fail
		t.Fatalf("fault anchors unstable: %v", regs)
	}
}

func TestCompareFlagsTelemetryOverhead(t *testing.T) {
	old := mkBaseline(Case{Name: "LRU", NsPerRef: 10, AllocsPerRef: 0, Faults: 100})
	cur := mkBaseline(Case{Name: "LRU", NsPerRef: 10, AllocsPerRef: 0, Faults: 100})
	cur.TelemetryOverhead = TelemetryOverheadMax * 2
	report, regs := Compare(old, cur, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "telemetry overhead") {
		t.Fatalf("want one telemetry-overhead regression, got %v", regs)
	}
	if !strings.Contains(report, "kernel telemetry overhead") {
		t.Fatalf("report missing telemetry-overhead line:\n%s", report)
	}
	cur.TelemetryOverhead = TelemetryOverheadMax / 2
	if _, regs := Compare(old, cur, 0.25); len(regs) != 0 {
		t.Fatalf("in-budget telemetry overhead flagged: %v", regs)
	}
}

func TestCompareFlagsAttrOverhead(t *testing.T) {
	old := mkBaseline(Case{Name: "LRU", NsPerRef: 10, AllocsPerRef: 0, Faults: 100})
	cur := mkBaseline(Case{Name: "LRU", NsPerRef: 10, AllocsPerRef: 0, Faults: 100})
	cur.AttrOverhead = AttrOverheadMax * 2
	report, regs := Compare(old, cur, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "side-band overhead") {
		t.Fatalf("want one attr-overhead regression, got %v", regs)
	}
	if !strings.Contains(report, "attr side-band overhead") {
		t.Fatalf("report missing attr-overhead line:\n%s", report)
	}
	cur.AttrOverhead = AttrOverheadMax / 2
	if _, regs := Compare(old, cur, 0.25); len(regs) != 0 {
		t.Fatalf("in-budget side-band overhead flagged: %v", regs)
	}
}
