//go:build race

package perf

// raceEnabled reports that this build carries race-detector
// instrumentation, which distorts the relative-overhead measurements
// (the instrumented-vs-plain ratio, not just absolute speed).
const raceEnabled = true
