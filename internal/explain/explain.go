// Package explain turns a site-carrying trace into a per-construct
// explanation of its paging behavior: which loop nest, statement and
// array took the faults, what each inserted directive saved or cost, and
// where the compiler-directed policy wins or loses memory against tuned
// LRU and WS. It is the presentation layer over vmsim.RunAttributed —
// the numbers come from attr.Ledger aggregates whose per-site sums equal
// the run totals by construction.
package explain

import (
	"fmt"
	"strings"

	"cdmm/internal/attr"
	"cdmm/internal/policy"
	"cdmm/internal/sweep"
	"cdmm/internal/trace"
	"cdmm/internal/vmsim"
)

// Options parameterizes an attribution analysis.
type Options struct {
	// Selector picks the honored directive arms for the CD run; nil
	// means policy.SelectLevel(1).
	Selector policy.ArmSelector
	// MinAlloc is the CD system-default minimum allocation; zero means 2.
	MinAlloc int
}

// Report bundles the attribution ledgers of one workload: CD under the
// directive set, plus tuned LRU and tuned WS over the same reference
// string for per-site comparison.
type Report struct {
	Program string
	// CD, LRU and WS are the three runs' ledgers; LRU and WS ran at
	// their space-time-minimizing parameter.
	CD, LRU, WS *attr.Ledger
	// CDRes, LRURes and WSRes are the matching simulator results.
	CDRes, LRURes, WSRes vmsim.Result
	// LRUFrames and WSTau record the tuned parameters.
	LRUFrames int
	WSTau     int
}

// Analyze runs the three attributed simulations over tr. The trace must
// carry the site side-band (interp.Config.Sites); without it every fault
// would land in the unattributed bucket and the explanation would be
// vacuous, so that is an error rather than a silent degradation.
func Analyze(tr *trace.Trace, opts Options) (*Report, error) {
	if !tr.HasSites() {
		return nil, fmt.Errorf("explain: trace %q carries no site side-band; recompile with sites enabled", tr.Name)
	}
	sel := opts.Selector
	if sel == nil {
		sel = policy.SelectLevel(1)
	}
	minAlloc := opts.MinAlloc
	if minAlloc == 0 {
		minAlloc = 2
	}
	r := &Report{Program: tr.Name}
	r.CDRes, r.CD = vmsim.RunAttributed(tr, policy.NewCD(sel, minAlloc), nil)

	refs := tr.RefsOnly()
	lru, err := sweep.NewLRU(tr)
	if err != nil {
		return nil, err // unreachable: in-memory cursors cannot fail
	}
	r.LRUFrames, _ = lru.MinST()
	r.LRURes, r.LRU = vmsim.RunAttributed(refs, policy.NewLRU(r.LRUFrames), nil)

	ws, err := sweep.NewWS(tr)
	if err != nil {
		return nil, err
	}
	r.WSTau, _, err = ws.MinST()
	if err != nil {
		return nil, err
	}
	r.WSRes, r.WS = vmsim.RunAttributed(refs, policy.NewWS(r.WSTau), nil)

	for _, led := range []*attr.Ledger{r.CD, r.LRU, r.WS} {
		if err := led.Conservation(); err != nil {
			return nil, fmt.Errorf("explain: %s under %s: %w", tr.Name, led.Policy, err)
		}
	}
	return r, nil
}

// Render formats the report: the ranked fault-hotspot table for the CD
// run, the directive-coverage table, and the per-site CD-vs-LRU and
// CD-vs-WS fault deltas. top bounds the hotspot table (0 means 12).
func Render(r *Report, top int) string {
	if top <= 0 {
		top = 12
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: fault attribution (CD vs LRU m=%d vs WS tau=%d)\n",
		r.Program, r.LRUFrames, r.WSTau)
	fmt.Fprintf(&b, "  CD : PF=%-6d MEM=%-8.2f ST=%.4g\n", r.CDRes.Faults, r.CDRes.MEM(), r.CDRes.ST())
	fmt.Fprintf(&b, "  LRU: PF=%-6d MEM=%-8.2f ST=%.4g\n", r.LRURes.Faults, r.LRURes.MEM(), r.LRURes.ST())
	fmt.Fprintf(&b, "  WS : PF=%-6d MEM=%-8.2f ST=%.4g\n", r.WSRes.Faults, r.WSRes.MEM(), r.WSRes.ST())

	b.WriteString("\nfault hotspots (CD):\n")
	b.WriteString(renderHotspots(r.CD, top))

	if dirs := r.CD.DirectiveSites(); len(dirs) > 0 {
		b.WriteString("\ndirective coverage (CD):\n")
		b.WriteString(renderDirectives(dirs))
	}

	b.WriteString("\nCD vs tuned LRU, per-site fault delta (negative: CD saves faults):\n")
	b.WriteString(renderDiff(attr.Diff(r.CD, r.LRU), "LRU"))
	b.WriteString("\nCD vs tuned WS, per-site fault delta (negative: CD saves faults):\n")
	b.WriteString(renderDiff(attr.Diff(r.CD, r.WS), "WS"))
	return b.String()
}

// renderHotspots is the ranked per-site fault table. The share column is
// each site's fraction of the run's total faults.
func renderHotspots(led *attr.Ledger, top int) string {
	ranked := led.Rank()
	if len(ranked) > top {
		ranked = ranked[:top]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "  %-4s %-44s %9s %7s %7s %8s %6s\n",
		"rank", "site (nest · statement)", "refs", "PF", "IO", "MEM", "share")
	for i, s := range ranked {
		share := 0.0
		if led.Faults > 0 {
			share = float64(s.Faults) / float64(led.Faults) * 100
		}
		fmt.Fprintf(&b, "  %-4d %-44s %9d %7d %7d %8.2f %5.1f%%\n",
			i+1, clip(s.Name(), 44), s.Refs, s.Faults, s.IO(), s.MEM(), share)
	}
	return b.String()
}

// renderDirectives is the directive-effectiveness table: what each
// ALLOCATE/LOCK/UNLOCK insertion point executed, saved, and cost.
func renderDirectives(dirs []*attr.SiteStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  %-44s %6s %6s %6s %10s %9s %9s %9s\n",
		"site", "allocs", "locks", "unlcks", "lockedHits", "shrinkPF", "releasePF", "lockRels")
	for _, s := range dirs {
		fmt.Fprintf(&b, "  %-44s %6d %6d %6d %10d %9d %9d %9d\n",
			clip(s.Name(), 44), s.Allocs, s.Locks, s.Unlocks,
			s.LockedHits, s.ShrinkFaults, s.ReleaseFaults, s.LockReleases)
	}
	return b.String()
}

// renderDiff shows where the two policies' faults land differently.
func renderDiff(diffs []attr.SiteDiff, other string) string {
	if len(diffs) == 0 {
		return "  (identical per-site fault counts)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "  %-44s %7s %7s %7s\n", "site", "CD", other, "delta")
	for _, d := range diffs {
		name := "<unattributed>"
		if d.ID != trace.NoSite {
			name = d.Site.Nest
			if d.Site.Expr != "" {
				name += " · " + d.Site.Expr
			}
		}
		fmt.Fprintf(&b, "  %-44s %7d %7d %+7d\n", clip(name, 44), d.A, d.B, d.Delta)
	}
	return b.String()
}

// clip shortens s to at most n runes with a trailing ellipsis.
func clip(s string, n int) string {
	r := []rune(s)
	if len(r) <= n {
		return s
	}
	return string(r[:n-1]) + "…"
}
