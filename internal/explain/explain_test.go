package explain_test

import (
	"strings"
	"testing"

	"cdmm/internal/engine"
	"cdmm/internal/experiments"
	"cdmm/internal/explain"
	"cdmm/internal/trace"
	"cdmm/internal/workloads"
)

// TestTable2HotspotRanking is the acceptance check for the attribution
// plane: on every Table 2 workload, explain must rank a real source loop
// nest first — the hotspot is a named DO-nest statement site, never the
// unattributed bucket and never a directive insertion point — and the
// rendered table must lead with it.
func TestTable2HotspotRanking(t *testing.T) {
	eng := engine.New(0)
	for _, v := range experiments.Table2Variants {
		v := v
		t.Run(v.Program+"/"+v.Set, func(t *testing.T) {
			t.Parallel()
			p, err := workloads.Get(v.Program)
			if err != nil {
				t.Fatal(err)
			}
			set, ok := p.Set(v.Set)
			if !ok {
				t.Fatalf("no set %q", v.Set)
			}
			rep, err := eng.ExplainRun(nil, v.Program, set, 2)
			if err != nil {
				t.Fatal(err)
			}
			hs := rep.CD.Hotspot()
			if hs == nil {
				t.Fatal("no hotspot on a faulting run")
			}
			if hs.ID == trace.NoSite {
				t.Fatal("hotspot is the unattributed bucket")
			}
			if !strings.Contains(hs.Site.Nest, "DO") {
				t.Errorf("hotspot nest %q is not a DO loop", hs.Site.Nest)
			}
			if hs.Site.Expr == "" || strings.Contains(hs.Site.Expr, "ALLOCATE") ||
				strings.Contains(hs.Site.Expr, "LOCK") {
				t.Errorf("hotspot %q is not an array-reference statement", hs.Name())
			}

			// The ranking must be a proper fault ordering with the hotspot
			// first.
			ranked := rep.CD.Rank()
			if len(ranked) == 0 || ranked[0] != hs {
				t.Fatal("Rank()[0] is not the hotspot")
			}
			for i := 1; i < len(ranked); i++ {
				if ranked[i].Faults > ranked[i-1].Faults {
					t.Fatalf("ranking not ordered at %d: %d > %d",
						i, ranked[i].Faults, ranked[i-1].Faults)
				}
			}

			// The rendered table's first row names the hotspot.
			out := explain.Render(rep, 5)
			first := ""
			lines := strings.Split(out, "\n")
			for i, l := range lines {
				if strings.Contains(l, "fault hotspots") && i+2 < len(lines) {
					first = lines[i+2]
					break
				}
			}
			if first == "" {
				t.Fatalf("no hotspot table in output:\n%s", out)
			}
			name := hs.Name()
			if len(name) > 20 {
				name = name[:20]
			}
			if !strings.Contains(first, name) {
				t.Errorf("first hotspot row %q does not name %q", first, hs.Name())
			}
		})
	}
}

// TestAnalyzeRequiresSites pins the contract: a trace without the
// side-band is rejected rather than silently unattributed.
func TestAnalyzeRequiresSites(t *testing.T) {
	w, err := workloads.Get("MAIN")
	if err != nil {
		t.Fatal(err)
	}
	c := workloads.MustCompile(w)
	if _, err := explain.Analyze(c.Trace.WithoutSites(), explain.Options{}); err == nil {
		t.Fatal("siteless trace accepted")
	}
	rep, err := explain.Analyze(c.Trace, explain.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CDRes.Faults != rep.CD.Faults {
		t.Errorf("result/ledger fault mismatch: %d vs %d", rep.CDRes.Faults, rep.CD.Faults)
	}
}

// TestExplainRunMemoizes pins the engine integration: the second call
// returns the identical report pointer from the memo store.
func TestExplainRunMemoizes(t *testing.T) {
	eng := engine.New(0)
	p, err := workloads.Get("FDJAC")
	if err != nil {
		t.Fatal(err)
	}
	set, _ := p.Set("FDJAC")
	a, err := eng.ExplainRun(nil, "FDJAC", set, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.ExplainRun(nil, "FDJAC", set, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("ExplainRun not memoized")
	}
}
