package policy

import (
	"strings"
	"sync"
	"testing"

	"cdmm/internal/directive"
	"cdmm/internal/mem"
	"cdmm/internal/trace"
)

// TestCDReclaimSerializedWithStepBlock is the documented way to share a
// CD instance between a stepping thread and a pressure thread: an
// external mutex. Run under -race this doubles as the proof that the
// serialized pattern is data-race-free.
func TestCDReclaimSerializedWithStepBlock(t *testing.T) {
	cd := NewCD(SelectLevel(1), 2)
	cd.Alloc(trace.AllocDirective{Arms: []directive.Arm{{PI: 1, X: 8}}})

	var mu sync.Mutex
	var wg sync.WaitGroup
	pages := make([]mem.Page, 256)
	for i := range pages {
		pages[i] = mem.Page(i % 16)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		var out BlockResult
		for i := 0; i < 200; i++ {
			mu.Lock()
			cd.StepBlock(pages, &out)
			mu.Unlock()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			mu.Lock()
			cd.Reclaim(3)
			mu.Unlock()
		}
	}()
	wg.Wait()
	if r := cd.Resident(); r > 8 {
		t.Errorf("resident %d exceeds allocation 8 after interleaved reclaim", r)
	}
}

// TestCDReentrantReclaimPanics pins the guard: reentering the policy
// from inside a StepBlock (here via the eviction hook) must fail loudly
// with the contract message, not corrupt the LRU list.
func TestCDReentrantReclaimPanics(t *testing.T) {
	cd := NewCD(SelectLevel(1), 2)
	cd.Alloc(trace.AllocDirective{Arms: []directive.Arm{{PI: 1, X: 2}}})
	cd.SetEvictHook(func(mem.Page) {
		cd.Reclaim(1) // caller bug: reentrant mutation
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("reentrant Reclaim inside StepBlock did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "CD.Reclaim") || !strings.Contains(msg, "not safe for concurrent use") {
			t.Fatalf("panic message does not state the contract: %v", r)
		}
	}()
	var out BlockResult
	// Three distinct pages under a 2-frame allocation force a replacement
	// eviction, which fires the hook.
	cd.StepBlock([]mem.Page{0, 1, 2}, &out)
}
