package policy

import (
	"fmt"

	"cdmm/internal/mem"
)

// LRU is the classic fixed-allocation least-recently-used policy: the
// program owns a fixed partition of Frames page frames and the least
// recently used page is replaced on a fault.
type LRU struct {
	noDirectives
	frames  int
	name    string
	list    *lruList
	onEvict func(mem.Page)
}

// NewLRU returns an LRU policy with the given fixed allocation.
func NewLRU(frames int) *LRU {
	if frames < 1 {
		frames = 1
	}
	return &LRU{frames: frames, name: fmt.Sprintf("LRU(m=%d)", frames), list: newLRUList()}
}

// Name implements Policy.
func (p *LRU) Name() string { return p.name }

// Frames returns the fixed allocation.
func (p *LRU) Frames() int { return p.frames }

// HintPages implements PageHinter.
func (p *LRU) HintPages(maxPage mem.Page, distinct int) { p.list.hint(maxPage, distinct) }

// SetEvictHook implements EvictObserver.
func (p *LRU) SetEvictHook(fn func(mem.Page)) { p.onEvict = fn }

// Ref implements Policy.
func (p *LRU) Ref(pg mem.Page) bool {
	if s := p.list.lookupResident(pg); s >= 0 {
		p.list.touchSlot(s)
		return false
	}
	p.refMiss(pg)
	return true
}

// refMiss faults pg in, evicting at capacity. Shared by Ref and
// StepBlock so the two paths cannot drift.
func (p *LRU) refMiss(pg mem.Page) {
	if p.list.len() >= p.frames {
		if v, ok := p.list.evictLRU(); ok && p.onEvict != nil {
			p.onEvict(v)
		}
	}
	p.list.insert(pg)
}

// Resident implements Policy.
func (p *LRU) Resident() int { return p.list.len() }

// Charged implements Charger: the whole fixed partition is allocated for
// the program's entire run.
func (p *LRU) Charged() int { return p.frames }

// Reset implements Policy.
func (p *LRU) Reset() { p.list.reset() }

// FIFO is fixed-allocation first-in-first-out replacement, an extra
// baseline (the paper cites FIFO as the other classic static policy).
// The arrival queue is a ring buffer over dense page slots, so a full
// partition replaces its oldest page without shifting or reallocating.
type FIFO struct {
	noDirectives
	frames  int
	name    string
	idx     pageIndex
	in      []bool  // per slot: currently resident
	queue   []int32 // ring of slots in arrival order; len is a power of two
	qhead   int     // index of the oldest entry
	qlen    int     // occupied entries
	onEvict func(mem.Page)
}

// NewFIFO returns a FIFO policy with the given fixed allocation.
func NewFIFO(frames int) *FIFO {
	if frames < 1 {
		frames = 1
	}
	return &FIFO{frames: frames, name: fmt.Sprintf("FIFO(m=%d)", frames)}
}

// Name implements Policy.
func (p *FIFO) Name() string { return p.name }

// HintPages implements PageHinter.
func (p *FIFO) HintPages(maxPage mem.Page, distinct int) { p.idx.hint(maxPage, distinct) }

// SetEvictHook implements EvictObserver.
func (p *FIFO) SetEvictHook(fn func(mem.Page)) { p.onEvict = fn }

// slotOf returns pg's dense slot, growing the residency array in step
// with the index.
func (p *FIFO) slotOf(pg mem.Page) int32 {
	s := p.idx.slot(pg)
	if int(s) >= len(p.in) {
		p.in = append(p.in, false)
	}
	return s
}

// push appends a slot at the ring's tail, doubling the buffer when full.
func (p *FIFO) push(s int32) {
	if p.qlen == len(p.queue) {
		grown := make([]int32, max(2*len(p.queue), 64))
		for i := 0; i < p.qlen; i++ {
			grown[i] = p.queue[(p.qhead+i)&(len(p.queue)-1)]
		}
		p.queue = grown
		p.qhead = 0
	}
	p.queue[(p.qhead+p.qlen)&(len(p.queue)-1)] = s
	p.qlen++
}

// Ref implements Policy.
func (p *FIFO) Ref(pg mem.Page) bool {
	s := p.slotOf(pg)
	if p.in[s] {
		return false
	}
	p.refMiss(s)
	return true
}

// refMiss faults slot s in, replacing the oldest arrival at capacity.
// Shared by Ref and StepBlock so the two paths cannot drift.
func (p *FIFO) refMiss(s int32) {
	if p.qlen >= p.frames {
		old := p.queue[p.qhead]
		p.qhead = (p.qhead + 1) & (len(p.queue) - 1)
		p.qlen--
		p.in[old] = false
		if p.onEvict != nil {
			p.onEvict(p.idx.pageOf(old))
		}
	}
	p.push(s)
	p.in[s] = true
}

// Resident implements Policy.
func (p *FIFO) Resident() int { return p.qlen }

// Charged implements Charger: the whole fixed partition is allocated.
func (p *FIFO) Charged() int { return p.frames }

// Reset implements Policy.
func (p *FIFO) Reset() {
	for i := range p.in {
		p.in[i] = false
	}
	p.qhead, p.qlen = 0, 0
}
