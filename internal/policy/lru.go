package policy

import (
	"fmt"

	"cdmm/internal/mem"
)

// LRU is the classic fixed-allocation least-recently-used policy: the
// program owns a fixed partition of Frames page frames and the least
// recently used page is replaced on a fault.
type LRU struct {
	noDirectives
	frames int
	list   *lruList
}

// NewLRU returns an LRU policy with the given fixed allocation.
func NewLRU(frames int) *LRU {
	if frames < 1 {
		frames = 1
	}
	return &LRU{frames: frames, list: newLRUList()}
}

// Name implements Policy.
func (p *LRU) Name() string { return fmt.Sprintf("LRU(m=%d)", p.frames) }

// Frames returns the fixed allocation.
func (p *LRU) Frames() int { return p.frames }

// Ref implements Policy.
func (p *LRU) Ref(pg mem.Page) bool {
	if p.list.contains(pg) {
		p.list.touch(pg)
		return false
	}
	if p.list.len() >= p.frames {
		p.list.evictLRU()
	}
	p.list.touch(pg)
	return true
}

// Resident implements Policy.
func (p *LRU) Resident() int { return p.list.len() }

// Charged implements Charger: the whole fixed partition is allocated for
// the program's entire run.
func (p *LRU) Charged() int { return p.frames }

// Reset implements Policy.
func (p *LRU) Reset() { p.list.reset() }

// FIFO is fixed-allocation first-in-first-out replacement, an extra
// baseline (the paper cites FIFO as the other classic static policy).
type FIFO struct {
	noDirectives
	frames int
	queue  []mem.Page
	in     map[mem.Page]bool
}

// NewFIFO returns a FIFO policy with the given fixed allocation.
func NewFIFO(frames int) *FIFO {
	if frames < 1 {
		frames = 1
	}
	return &FIFO{frames: frames, in: map[mem.Page]bool{}}
}

// Name implements Policy.
func (p *FIFO) Name() string { return fmt.Sprintf("FIFO(m=%d)", p.frames) }

// Ref implements Policy.
func (p *FIFO) Ref(pg mem.Page) bool {
	if p.in[pg] {
		return false
	}
	if len(p.queue) >= p.frames {
		old := p.queue[0]
		p.queue = p.queue[1:]
		delete(p.in, old)
	}
	p.queue = append(p.queue, pg)
	p.in[pg] = true
	return true
}

// Resident implements Policy.
func (p *FIFO) Resident() int { return len(p.queue) }

// Charged implements Charger: the whole fixed partition is allocated.
func (p *FIFO) Charged() int { return p.frames }

// Reset implements Policy.
func (p *FIFO) Reset() {
	p.queue = nil
	p.in = map[mem.Page]bool{}
}
