package policy

import (
	"fmt"

	"cdmm/internal/mem"
	"cdmm/internal/trace"
)

// This file keeps the pre-overhaul map-based policy implementations as
// oracles and drives them in lockstep with the dense slot-array rewrites
// over randomized operation streams: every reference must produce the
// same fault decision, Resident count and Charge, and every directive the
// same lock bookkeeping, including across Reset reuse and wild sparse
// page numbers.

// oracleList is the old lruList: a map of heap-allocated nodes.
type oracleList struct {
	nodes map[mem.Page]*oracleNode
	head  *oracleNode
	tail  *oracleNode
}

type oracleNode struct {
	page       mem.Page
	prev, next *oracleNode
	locked     bool
	pj         int
	site       int
}

func newOracleList() *oracleList { return &oracleList{nodes: map[mem.Page]*oracleNode{}} }

func (l *oracleList) len() int { return len(l.nodes) }

func (l *oracleList) contains(p mem.Page) bool { _, ok := l.nodes[p]; return ok }

func (l *oracleList) get(p mem.Page) *oracleNode { return l.nodes[p] }

func (l *oracleList) touch(p mem.Page) *oracleNode {
	n, ok := l.nodes[p]
	if ok {
		l.unlink(n)
	} else {
		n = &oracleNode{page: p}
		l.nodes[p] = n
	}
	l.pushFront(n)
	return n
}

func (l *oracleList) pushFront(n *oracleNode) {
	n.prev = nil
	n.next = l.head
	if l.head != nil {
		l.head.prev = n
	}
	l.head = n
	if l.tail == nil {
		l.tail = n
	}
}

func (l *oracleList) unlink(n *oracleNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (l *oracleList) remove(p mem.Page) {
	if n, ok := l.nodes[p]; ok {
		l.unlink(n)
		delete(l.nodes, p)
	}
}

func (l *oracleList) evictLRU() (mem.Page, bool) {
	for n := l.tail; n != nil; n = n.prev {
		if !n.locked {
			l.unlink(n)
			delete(l.nodes, n.page)
			return n.page, true
		}
	}
	return 0, false
}

func (l *oracleList) lowestPriorityLocked() *oracleNode {
	var best *oracleNode
	for n := l.tail; n != nil; n = n.prev {
		if n.locked && (best == nil || n.pj > best.pj) {
			best = n
		}
	}
	return best
}

func (l *oracleList) reset() {
	l.nodes = map[mem.Page]*oracleNode{}
	l.head, l.tail = nil, nil
}

// oracleLRU is the old map-based LRU.
type oracleLRU struct {
	noDirectives
	frames int
	list   *oracleList
}

func newOracleLRU(frames int) *oracleLRU {
	if frames < 1 {
		frames = 1
	}
	return &oracleLRU{frames: frames, list: newOracleList()}
}

func (p *oracleLRU) Name() string { return fmt.Sprintf("LRU(m=%d)", p.frames) }

func (p *oracleLRU) Ref(pg mem.Page) bool {
	if p.list.contains(pg) {
		p.list.touch(pg)
		return false
	}
	if p.list.len() >= p.frames {
		p.list.evictLRU()
	}
	p.list.touch(pg)
	return true
}

func (p *oracleLRU) Resident() int { return p.list.len() }
func (p *oracleLRU) Charged() int  { return p.frames }
func (p *oracleLRU) Reset()        { p.list.reset() }

// oracleFIFO is the old slice-drift FIFO.
type oracleFIFO struct {
	noDirectives
	frames int
	queue  []mem.Page
	in     map[mem.Page]bool
}

func newOracleFIFO(frames int) *oracleFIFO {
	if frames < 1 {
		frames = 1
	}
	return &oracleFIFO{frames: frames, in: map[mem.Page]bool{}}
}

func (p *oracleFIFO) Name() string { return fmt.Sprintf("FIFO(m=%d)", p.frames) }

func (p *oracleFIFO) Ref(pg mem.Page) bool {
	if p.in[pg] {
		return false
	}
	if len(p.queue) >= p.frames {
		old := p.queue[0]
		p.queue = p.queue[1:]
		delete(p.in, old)
	}
	p.queue = append(p.queue, pg)
	p.in[pg] = true
	return true
}

func (p *oracleFIFO) Resident() int { return len(p.queue) }
func (p *oracleFIFO) Charged() int  { return p.frames }

func (p *oracleFIFO) Reset() {
	p.queue = nil
	p.in = map[mem.Page]bool{}
}

// oracleWS is the old map-based Working Set with the slice-drift window.
type oracleWS struct {
	noDirectives
	tau      int64
	now      int64
	lastRef  map[mem.Page]int64
	window   []oracleWSRecord
	resident int
	onExpire func(mem.Page)
}

type oracleWSRecord struct {
	t    int64
	page mem.Page
}

func newOracleWS(tau int) *oracleWS {
	if tau < 1 {
		tau = 1
	}
	return &oracleWS{tau: int64(tau), lastRef: map[mem.Page]int64{}}
}

func (p *oracleWS) Name() string { return fmt.Sprintf("WS(tau=%d)", p.tau) }

func (p *oracleWS) Ref(pg mem.Page) bool {
	p.now++
	p.expireTo(p.now - 1)
	_, resident := p.lastRef[pg]
	if !resident {
		p.resident++
	}
	p.lastRef[pg] = p.now
	p.window = append(p.window, oracleWSRecord{t: p.now, page: pg})
	p.expireTo(p.now)
	return !resident
}

func (p *oracleWS) Warm(pages []mem.Page) {
	for _, pg := range pages {
		last, ok := p.lastRef[pg]
		if ok && last == p.now {
			continue
		}
		if !ok {
			p.resident++
		}
		p.lastRef[pg] = p.now
		p.window = append(p.window, oracleWSRecord{t: p.now, page: pg})
	}
}

func (p *oracleWS) expireTo(x int64) {
	cutoff := x - p.tau
	for len(p.window) > 0 && p.window[0].t <= cutoff {
		rec := p.window[0]
		p.window = p.window[1:]
		if p.lastRef[rec.page] == rec.t {
			delete(p.lastRef, rec.page)
			p.resident--
			if p.onExpire != nil {
				p.onExpire(rec.page)
			}
		}
	}
}

func (p *oracleWS) Resident() int { return p.resident }

func (p *oracleWS) Reset() {
	p.now = 0
	p.lastRef = map[mem.Page]int64{}
	p.window = nil
	p.resident = 0
}

// oraclePFF is the old map-based PFF.
type oraclePFF struct {
	noDirectives
	threshold int64
	now       int64
	lastFault int64
	resident  map[mem.Page]bool
	usedSince map[mem.Page]bool
}

func newOraclePFF(threshold int) *oraclePFF {
	if threshold < 1 {
		threshold = 1
	}
	return &oraclePFF{
		threshold: int64(threshold),
		resident:  map[mem.Page]bool{},
		usedSince: map[mem.Page]bool{},
	}
}

func (p *oraclePFF) Name() string { return fmt.Sprintf("PFF(T=%d)", p.threshold) }

func (p *oraclePFF) Ref(pg mem.Page) bool {
	p.now++
	if p.resident[pg] {
		p.usedSince[pg] = true
		return false
	}
	if p.now-p.lastFault >= p.threshold {
		for q := range p.resident {
			if !p.usedSince[q] {
				delete(p.resident, q)
			}
		}
	}
	p.resident[pg] = true
	p.usedSince = map[mem.Page]bool{pg: true}
	p.lastFault = p.now
	return true
}

func (p *oraclePFF) Resident() int { return len(p.resident) }

func (p *oraclePFF) Reset() {
	p.now = 0
	p.lastFault = 0
	p.resident = map[mem.Page]bool{}
	p.usedSince = map[mem.Page]bool{}
}

// oracleSWS is the old map-based Sampled Working Set.
type oracleSWS struct {
	noDirectives
	sigma    int64
	now      int64
	nextSamp int64
	resident map[mem.Page]bool
	useBit   map[mem.Page]bool
}

func newOracleSWS(sigma int) *oracleSWS {
	if sigma < 1 {
		sigma = 1
	}
	s := &oracleSWS{sigma: int64(sigma)}
	s.Reset()
	return s
}

func (p *oracleSWS) Name() string { return fmt.Sprintf("SWS(sigma=%d)", p.sigma) }

func (p *oracleSWS) Ref(pg mem.Page) bool {
	p.now++
	if p.now >= p.nextSamp {
		p.sample()
		p.nextSamp = p.now + p.sigma
	}
	if p.resident[pg] {
		p.useBit[pg] = true
		return false
	}
	p.resident[pg] = true
	p.useBit[pg] = true
	return true
}

func (p *oracleSWS) sample() {
	for q := range p.resident {
		if !p.useBit[q] {
			delete(p.resident, q)
		}
	}
	p.useBit = map[mem.Page]bool{}
}

func (p *oracleSWS) Resident() int { return len(p.resident) }

func (p *oracleSWS) Reset() {
	p.now = 0
	p.nextSamp = p.sigma
	p.resident = map[mem.Page]bool{}
	p.useBit = map[mem.Page]bool{}
}

// oracleVSWS is the old map-based Variable-Interval Sampled Working Set.
type oracleVSWS struct {
	noDirectives
	minIS, maxIS int64
	q            int
	now          int64
	lastSample   int64
	faultsSince  int
	resident     map[mem.Page]bool
	useBit       map[mem.Page]bool
}

func newOracleVSWS(minIS, maxIS, q int) *oracleVSWS {
	if minIS < 1 {
		minIS = 1
	}
	if maxIS < minIS {
		maxIS = minIS
	}
	if q < 1 {
		q = 1
	}
	v := &oracleVSWS{minIS: int64(minIS), maxIS: int64(maxIS), q: q}
	v.Reset()
	return v
}

func (p *oracleVSWS) Name() string {
	return fmt.Sprintf("VSWS(min=%d,max=%d,Q=%d)", p.minIS, p.maxIS, p.q)
}

func (p *oracleVSWS) Ref(pg mem.Page) bool {
	p.now++
	elapsed := p.now - p.lastSample
	if (p.faultsSince >= p.q && elapsed >= p.minIS) || elapsed >= p.maxIS {
		p.sample()
	}
	if p.resident[pg] {
		p.useBit[pg] = true
		return false
	}
	p.resident[pg] = true
	p.useBit[pg] = true
	p.faultsSince++
	return true
}

func (p *oracleVSWS) sample() {
	for q := range p.resident {
		if !p.useBit[q] {
			delete(p.resident, q)
		}
	}
	p.useBit = map[mem.Page]bool{}
	p.lastSample = p.now
	p.faultsSince = 0
}

func (p *oracleVSWS) Resident() int { return len(p.resident) }

func (p *oracleVSWS) Reset() {
	p.now = 0
	p.lastSample = 0
	p.faultsSince = 0
	p.resident = map[mem.Page]bool{}
	p.useBit = map[mem.Page]bool{}
}

// oracleDWS is the old map-based Damped Working Set.
type oracleDWS struct {
	noDirectives
	ws       *oracleWS
	damping  int64
	lastDrop int64
	now      int64
	held     []mem.Page
	heldSet  map[mem.Page]bool
}

func newOracleDWS(tau, damping int) *oracleDWS {
	if damping < 1 {
		damping = 1
	}
	p := &oracleDWS{ws: newOracleWS(tau), damping: int64(damping), heldSet: map[mem.Page]bool{}}
	p.ws.onExpire = p.hold
	return p
}

func (p *oracleDWS) Name() string {
	return fmt.Sprintf("DWS(tau=%d,d=%d)", p.ws.tau, p.damping)
}

func (p *oracleDWS) hold(pg mem.Page) {
	if !p.heldSet[pg] {
		p.held = append(p.held, pg)
		p.heldSet[pg] = true
	}
}

func (p *oracleDWS) Ref(pg mem.Page) bool {
	p.now++
	fault := p.ws.Ref(pg)
	if p.heldSet[pg] {
		p.removeHeld(pg)
		fault = false
	}
	if len(p.held) > 0 && p.now-p.lastDrop >= p.damping {
		drop := p.held[0]
		p.held = p.held[1:]
		delete(p.heldSet, drop)
		p.lastDrop = p.now
	}
	return fault
}

func (p *oracleDWS) removeHeld(pg mem.Page) {
	delete(p.heldSet, pg)
	for i, q := range p.held {
		if q == pg {
			p.held = append(p.held[:i], p.held[i+1:]...)
			break
		}
	}
}

func (p *oracleDWS) Resident() int { return p.ws.Resident() + len(p.held) }

func (p *oracleDWS) Reset() {
	p.ws.Reset()
	p.now = 0
	p.lastDrop = 0
	p.held = nil
	p.heldSet = map[mem.Page]bool{}
}

// oracleCD is the old map/node-based CD (trusting, Check-free paths only).
type oracleCD struct {
	selector ArmSelector
	minAlloc int

	alloc        int
	list         *oracleList
	locked       int
	locksBySite  map[int][]mem.Page
	SwapSignals  int
	LockReleases int
}

func newOracleCD(selector ArmSelector, minAlloc int) *oracleCD {
	if selector == nil {
		selector = SelectLevel(1)
	}
	if minAlloc < 1 {
		minAlloc = 1
	}
	return &oracleCD{
		selector:    selector,
		minAlloc:    minAlloc,
		alloc:       minAlloc,
		list:        newOracleList(),
		locksBySite: map[int][]mem.Page{},
	}
}

func (p *oracleCD) Name() string { return "CD" }

func (p *oracleCD) Alloc(d trace.AllocDirective) {
	arms := d.Arms
	if len(arms) == 0 {
		return
	}
	chosen, ok := p.selector(d.Label, arms)
	if !ok {
		return
	}
	x := chosen.X
	if x < p.minAlloc {
		x = p.minAlloc
	}
	p.alloc = x
	for p.list.len()-p.locked > p.alloc {
		if _, ok := p.list.evictLRU(); !ok {
			return
		}
	}
}

func (p *oracleCD) Ref(pg mem.Page) bool {
	if p.list.contains(pg) {
		p.list.touch(pg)
		return false
	}
	if p.list.len()-p.locked >= p.alloc {
		if _, ok := p.list.evictLRU(); !ok {
			if n := p.list.lowestPriorityLocked(); n != nil {
				p.releaseLock(n)
				p.list.remove(n.page)
				p.LockReleases++
			}
		}
	}
	p.list.touch(pg)
	return true
}

func (p *oracleCD) releaseLock(n *oracleNode) {
	pages := p.locksBySite[n.site]
	for i, q := range pages {
		if q == n.page {
			p.locksBySite[n.site] = append(pages[:i], pages[i+1:]...)
			break
		}
	}
	n.locked = false
	p.locked--
}

func (p *oracleCD) Lock(ls trace.LockSet) {
	for _, old := range p.locksBySite[ls.Site] {
		if n := p.list.get(old); n != nil && n.locked && n.site == ls.Site {
			n.locked = false
			p.locked--
		}
	}
	p.locksBySite[ls.Site] = nil
	for _, pg := range ls.Pages {
		n := p.list.get(pg)
		if n == nil {
			continue
		}
		if !n.locked {
			p.locked++
		}
		n.locked = true
		n.pj = ls.PJ
		n.site = ls.Site
		p.locksBySite[ls.Site] = append(p.locksBySite[ls.Site], pg)
	}
}

func (p *oracleCD) Unlock(pages []mem.Page) {
	for _, pg := range pages {
		if n := p.list.get(pg); n != nil && n.locked {
			p.releaseLock(n)
		}
	}
	for site, ps := range p.locksBySite {
		if len(ps) == 0 {
			delete(p.locksBySite, site)
		}
	}
}

func (p *oracleCD) Resident() int { return p.list.len() }

func (p *oracleCD) Reset() {
	p.alloc = p.minAlloc
	p.list.reset()
	p.locked = 0
	p.locksBySite = map[int][]mem.Page{}
	p.SwapSignals = 0
	p.LockReleases = 0
}

var (
	_ Policy = (*oracleLRU)(nil)
	_ Policy = (*oracleFIFO)(nil)
	_ Policy = (*oracleWS)(nil)
	_ Policy = (*oraclePFF)(nil)
	_ Policy = (*oracleSWS)(nil)
	_ Policy = (*oracleVSWS)(nil)
	_ Policy = (*oracleDWS)(nil)
	_ Policy = (*oracleCD)(nil)
)
