package policy

import "cdmm/internal/mem"

// BlockResult accumulates the per-reference indexes of block-stepped
// simulation. StepBlock *adds* into it (and max-merges MaxResident), so
// one zeroed BlockResult threads through a whole replay.
type BlockResult struct {
	// Faults is the number of faulting references.
	Faults int
	// MaxResident is the peak resident-set size observed.
	MaxResident int
	// VTime is Σ dt: one unit per reference plus FaultService per fault.
	VTime int64
	// MemSum is Σ charged, sampled after every reference.
	MemSum int64
	// SpaceTime is Σ charged × dt.
	SpaceTime int64
}

// BlockStepper is the batched hot-path interface: StepBlock replays a
// run of consecutive page references — a directive-free block of the
// trace — and accumulates the indexes into out. It must be exactly
// equivalent to calling Step for each page and accumulating the results:
// same faults, same eviction sequence, same MemSum/SpaceTime/VTime, same
// running MaxResident. Batching exists so a policy can hoist loop-
// invariant work (interface dispatch, constant charges, degraded checks)
// out of the per-reference path.
type BlockStepper interface {
	StepBlock(pages []mem.Page, out *BlockResult)
}

// fixedCharge folds a block's accumulation for fixed-partition policies
// (LRU, FIFO): the charge is the whole partition for every reference, so
// MemSum and SpaceTime are block-level products rather than per-ref sums.
func fixedCharge(out *BlockResult, frames, refs, faults, endResident int) {
	vt := int64(refs) + int64(faults)*FaultService
	out.Faults += faults
	out.VTime += vt
	out.MemSum += int64(frames) * int64(refs)
	out.SpaceTime += int64(frames) * vt
	if endResident > out.MaxResident {
		out.MaxResident = endResident
	}
}

// StepBlock implements BlockStepper. Within a directive-free block LRU's
// resident count never shrinks (a fault at capacity evicts one page and
// inserts one), so the end-of-block count is the block's maximum and the
// fixed charge folds into two multiplications.
func (p *LRU) StepBlock(pages []mem.Page, out *BlockResult) {
	l := p.list
	faults := 0
	for _, pg := range pages {
		if s := l.lookupResident(pg); s >= 0 {
			l.touchSlot(s)
			continue
		}
		p.refMiss(pg)
		faults++
	}
	fixedCharge(out, p.frames, len(pages), faults, l.n)
}

// StepBlock implements BlockStepper. Like LRU, FIFO's resident count is
// nondecreasing within a block and the charge is the fixed partition.
func (p *FIFO) StepBlock(pages []mem.Page, out *BlockResult) {
	faults := 0
	for _, pg := range pages {
		s := p.slotOf(pg)
		if p.in[s] {
			continue
		}
		p.refMiss(s)
		faults++
	}
	fixedCharge(out, p.frames, len(pages), faults, p.qlen)
}

// StepBlock implements BlockStepper. WS's resident set both grows and
// shrinks per reference, so the indexes accumulate per reference; the
// batching fuses Ref's callees (slot lookup, window push, expiry) into
// one loop with the clock, resident count and ring geometry held in
// locals, keeping the per-step order — membership test, stamp, push,
// expire — exactly as Ref produces it. Only the dense-table slot hit is
// inlined; sparse or unseen pages take the shared slotOf path (reloading
// the possibly-regrown slot state), and a full ring syncs the locals and
// defers to pushWin to grow. Expiry or eviction observers fall back to
// the per-reference loop so hooks fire mid-step in Ref's exact order and
// may safely touch the policy.
func (p *WS) StepBlock(pages []mem.Page, out *BlockResult) {
	if p.onExpire != nil || p.onEvict != nil {
		p.stepBlockObserved(pages, out)
		return
	}
	var faults int
	var vt, memSum, spaceTime int64
	maxRes := out.MaxResident
	seenAt := p.seenAt
	dense := p.idx.dense
	win := p.win
	mask := len(win) - 1
	winHead, winLen := p.winHead, p.winLen
	now, resident, tau := p.now, p.resident, p.tau
	for _, pg := range pages {
		now++
		s := int32(-1)
		if uint64(pg) < uint64(len(dense)) {
			s = dense[pg] - 1
		}
		if s < 0 {
			s = p.slotOf(pg)
			seenAt = p.seenAt // slotOf grows the slot state
			dense = p.idx.dense
		}
		dt := int64(1)
		if seenAt[s] == 0 {
			resident++
			faults++
			dt += FaultService
		}
		seenAt[s] = now + 1
		if winLen == len(win) {
			p.winHead, p.winLen = winHead, winLen
			p.pushWin(now, s)
			win, winHead, winLen = p.win, p.winHead, p.winLen
			mask = len(win) - 1
		} else {
			win[(winHead+winLen)&mask] = wsRecord{t: now, slot: s}
			winLen++
		}
		cutoff := now - tau
		for winLen > 0 {
			rec := win[winHead]
			if rec.t > cutoff {
				break
			}
			winHead = (winHead + 1) & mask
			winLen--
			if seenAt[rec.slot] == rec.t+1 {
				seenAt[rec.slot] = 0
				resident--
			}
		}
		if resident > maxRes {
			maxRes = resident
		}
		r := int64(resident)
		vt += dt
		spaceTime += r * dt
		memSum += r
	}
	p.now, p.resident = now, resident
	p.winHead, p.winLen = winHead, winLen
	out.Faults += faults
	out.VTime += vt
	out.MemSum += memSum
	out.SpaceTime += spaceTime
	out.MaxResident = maxRes
}

// stepBlockObserved is WS block stepping with expiry/eviction hooks
// installed: per-reference Ref calls, so hooks observe every state
// transition exactly as single stepping would produce it.
func (p *WS) stepBlockObserved(pages []mem.Page, out *BlockResult) {
	var faults int
	var vt, memSum, spaceTime int64
	maxRes := out.MaxResident
	for _, pg := range pages {
		dt := int64(1)
		if p.Ref(pg) {
			faults++
			dt += FaultService
		}
		r := int64(p.resident)
		if p.resident > maxRes {
			maxRes = p.resident
		}
		vt += dt
		spaceTime += r * dt
		memSum += r
	}
	out.Faults += faults
	out.VTime += vt
	out.MemSum += memSum
	out.SpaceTime += spaceTime
	out.MaxResident = maxRes
}

// StepBlock implements BlockStepper.
func (p *DWS) StepBlock(pages []mem.Page, out *BlockResult) {
	var faults int
	var vt, memSum, spaceTime int64
	maxRes := out.MaxResident
	for _, pg := range pages {
		dt := int64(1)
		if p.Ref(pg) {
			faults++
			dt += FaultService
		}
		res := p.ws.resident + p.heldCount
		if res > maxRes {
			maxRes = res
		}
		r := int64(res)
		vt += dt
		spaceTime += r * dt
		memSum += r
	}
	out.Faults += faults
	out.VTime += vt
	out.MemSum += memSum
	out.SpaceTime += spaceTime
	out.MaxResident = maxRes
}

// StepBlock implements BlockStepper. CD degrades only on directive
// events, never inside a reference run, so the degraded check hoists out
// of the loop: a degraded policy hands the whole block to its WS
// fallback, and a healthy one runs the local-LRU path with the check
// paid once per block. The charge is the local resident count, which
// changes only on misses, so hits accumulate as flat segments — one
// multiply per fault-to-fault run instead of three per reference — and
// the nondecreasing count makes the end-of-block value the block max.
func (p *CD) StepBlock(pages []mem.Page, out *BlockResult) {
	p.acquire("StepBlock")
	defer p.release()
	if p.degraded {
		p.fallback.StepBlock(pages, out)
		return
	}
	if len(pages) == 0 {
		return
	}
	l := p.list
	var faults int
	var vt, memSum, spaceTime int64
	n := int64(l.n) // resident count of the current flat segment
	var hits int64  // references accumulated at count n
	for _, pg := range pages {
		if s := l.lookupResident(pg); s >= 0 {
			l.touchSlot(s)
			hits++
			continue
		}
		vt += hits
		spaceTime += n * hits
		memSum += n * hits
		hits = 0
		p.refMiss(pg)
		faults++
		n = int64(l.n)
		dt := int64(1 + FaultService)
		vt += dt
		spaceTime += n * dt
		memSum += n
	}
	vt += hits
	spaceTime += n * hits
	memSum += n * hits
	out.Faults += faults
	out.VTime += vt
	out.MemSum += memSum
	out.SpaceTime += spaceTime
	if l.n > out.MaxResident {
		out.MaxResident = l.n
	}
}

var (
	_ BlockStepper = (*LRU)(nil)
	_ BlockStepper = (*FIFO)(nil)
	_ BlockStepper = (*WS)(nil)
	_ BlockStepper = (*DWS)(nil)
	_ BlockStepper = (*CD)(nil)
)
