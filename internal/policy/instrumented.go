package policy

import (
	"strings"

	"cdmm/internal/mem"
	"cdmm/internal/obs"
	"cdmm/internal/trace"
)

// Instrumented decorates any Policy with per-call counters in an obs
// registry, without touching the concrete policies. The counters are
// named policy_<name>_<call> (e.g. policy_cd_refs, policy_cd_faults);
// space-time charging and the simulator's CD-specific handling are
// preserved — Charged delegates to the wrapped policy's charging rule and
// AsCD sees through the wrapper via Unwrap.
type Instrumented struct {
	inner Policy

	RefCalls    *obs.Counter
	FaultCount  *obs.Counter
	AllocCalls  *obs.Counter
	LockCalls   *obs.Counter
	UnlockCalls *obs.Counter
	ResetCalls  *obs.Counter
}

// Instrument wraps p with per-call counters registered in reg.
func Instrument(p Policy, reg *obs.Registry) *Instrumented {
	prefix := "policy_" + metricName(p.Name()) + "_"
	return &Instrumented{
		inner:       p,
		RefCalls:    reg.Counter(prefix + "refs"),
		FaultCount:  reg.Counter(prefix + "faults"),
		AllocCalls:  reg.Counter(prefix + "allocs"),
		LockCalls:   reg.Counter(prefix + "locks"),
		UnlockCalls: reg.Counter(prefix + "unlocks"),
		ResetCalls:  reg.Counter(prefix + "resets"),
	}
}

// metricName lowercases a policy name like "WS(tau=500)" into a metric
// identifier like "ws_tau_500".
func metricName(name string) string {
	var b strings.Builder
	lastUnderscore := true
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
			lastUnderscore = false
		default:
			if !lastUnderscore {
				b.WriteByte('_')
				lastUnderscore = true
			}
		}
	}
	return strings.TrimSuffix(b.String(), "_")
}

// Unwrap returns the wrapped policy.
func (i *Instrumented) Unwrap() Policy { return i.inner }

// Name implements Policy.
func (i *Instrumented) Name() string { return i.inner.Name() }

// Ref implements Policy.
func (i *Instrumented) Ref(p mem.Page) bool {
	i.RefCalls.Inc()
	fault := i.inner.Ref(p)
	if fault {
		i.FaultCount.Inc()
	}
	return fault
}

// Resident implements Policy.
func (i *Instrumented) Resident() int { return i.inner.Resident() }

// Charged implements Charger by delegating to the wrapped policy's
// charging rule, so wrapping never changes space-time accounting.
func (i *Instrumented) Charged() int { return Charge(i.inner) }

// Alloc implements Policy.
func (i *Instrumented) Alloc(d trace.AllocDirective) {
	i.AllocCalls.Inc()
	i.inner.Alloc(d)
}

// Lock implements Policy.
func (i *Instrumented) Lock(ls trace.LockSet) {
	i.LockCalls.Inc()
	i.inner.Lock(ls)
}

// Unlock implements Policy.
func (i *Instrumented) Unlock(pages []mem.Page) {
	i.UnlockCalls.Inc()
	i.inner.Unlock(pages)
}

// Reset implements Policy. The counters are cumulative across runs; only
// the wrapped policy's state is reset.
func (i *Instrumented) Reset() {
	i.ResetCalls.Inc()
	i.inner.Reset()
}

var _ Policy = (*Instrumented)(nil)
var _ Charger = (*Instrumented)(nil)
