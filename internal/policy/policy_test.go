package policy

import (
	"testing"
	"testing/quick"

	"cdmm/internal/directive"
	"cdmm/internal/mem"
	"cdmm/internal/trace"
)

// replay runs a page string through a policy and returns total faults.
func replay(p Policy, refs []mem.Page) int {
	faults := 0
	for _, pg := range refs {
		if p.Ref(pg) {
			faults++
		}
	}
	return faults
}

// cyclic builds the classic sequential cyclic reference string
// 1..n, 1..n, ... for rounds rounds.
func cyclic(n, rounds int) []mem.Page {
	var out []mem.Page
	for r := 0; r < rounds; r++ {
		for i := 1; i <= n; i++ {
			out = append(out, mem.Page(i))
		}
	}
	return out
}

func TestLRUBasics(t *testing.T) {
	p := NewLRU(2)
	refs := []mem.Page{1, 2, 1, 3, 2}
	// 1:F 2:F 1:H 3:F(evict 2) 2:F(evict 1)
	wantFaults := []bool{true, true, false, true, true}
	for i, pg := range refs {
		if got := p.Ref(pg); got != wantFaults[i] {
			t.Errorf("ref %d (page %d): fault = %v, want %v", i, pg, got, wantFaults[i])
		}
	}
	if p.Resident() != 2 {
		t.Errorf("resident = %d, want 2", p.Resident())
	}
}

func TestLRUCyclicThrash(t *testing.T) {
	// Sequential cyclic string over n pages with m < n frames: LRU faults
	// on every reference (the classic worst case).
	p := NewLRU(3)
	faults := replay(p, cyclic(4, 5))
	if faults != 20 {
		t.Errorf("faults = %d, want 20 (every reference)", faults)
	}
	// With m >= n only the first round faults.
	p2 := NewLRU(4)
	faults = replay(p2, cyclic(4, 5))
	if faults != 4 {
		t.Errorf("faults = %d, want 4", faults)
	}
}

// TestLRUInclusionProperty property-tests LRU's stack property: for any
// reference string, faults are non-increasing in the allocation.
func TestLRUInclusionProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		refs := make([]mem.Page, len(raw))
		for i, b := range raw {
			refs[i] = mem.Page(b % 16)
		}
		prev := -1
		for m := 1; m <= 17; m++ {
			faults := replay(NewLRU(m), refs)
			if prev >= 0 && faults > prev {
				return false
			}
			prev = faults
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFIFOBeladyAnomalyString(t *testing.T) {
	// The canonical Belady anomaly string faults more with 4 frames than 3
	// under FIFO — demonstrating FIFO is not a stack algorithm.
	s := []mem.Page{1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5}
	f3 := replay(NewFIFO(3), s)
	f4 := replay(NewFIFO(4), s)
	if f3 != 9 || f4 != 10 {
		t.Errorf("FIFO faults = %d/%d, want 9/10 (Belady anomaly)", f3, f4)
	}
}

func TestWSWindowSemantics(t *testing.T) {
	p := NewWS(2)
	// t=1: ref 1 -> fault, W={1}
	// t=2: ref 2 -> fault, W={1,2}
	// t=3: ref 3 -> fault; 1 expired (last ref t=1 <= 3-2), W={2,3}
	// t=4: ref 1 -> fault again (left the window)
	faults := []bool{true, true, true, true}
	for i, pg := range []mem.Page{1, 2, 3, 1} {
		if got := p.Ref(pg); got != faults[i] {
			t.Errorf("ref %d: fault = %v, want %v", i, got, faults[i])
		}
	}
	if p.Resident() != 2 { // W = {3, 1}
		t.Errorf("resident = %d, want 2", p.Resident())
	}
}

func TestWSRepeatedPageStaysResident(t *testing.T) {
	p := NewWS(3)
	faults := replay(p, []mem.Page{7, 7, 7, 7, 7, 7})
	if faults != 1 {
		t.Errorf("faults = %d, want 1", faults)
	}
	if p.Resident() != 1 {
		t.Errorf("resident = %d, want 1", p.Resident())
	}
}

// TestWSMonotoneInTau property-tests that WS faults are non-increasing
// and average WS size non-decreasing in τ.
func TestWSMonotoneInTau(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 4 {
			return true
		}
		refs := make([]mem.Page, len(raw))
		for i, b := range raw {
			refs[i] = mem.Page(b % 8)
		}
		prevFaults := -1
		prevSize := -1.0
		for _, tau := range []int{1, 2, 4, 8, 16, 32, 64} {
			p := NewWS(tau)
			faults := 0
			sizeSum := 0.0
			for _, pg := range refs {
				if p.Ref(pg) {
					faults++
				}
				sizeSum += float64(p.Resident())
			}
			if prevFaults >= 0 && faults > prevFaults {
				return false
			}
			if prevSize >= 0 && sizeSum < prevSize-1e-9 {
				return false
			}
			prevFaults = faults
			prevSize = sizeSum
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOPTOptimality(t *testing.T) {
	// OPT never faults more than LRU or FIFO for any string/allocation.
	f := func(raw []uint8, mRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		refs := make([]mem.Page, len(raw))
		for i, b := range raw {
			refs[i] = mem.Page(b % 12)
		}
		m := int(mRaw)%8 + 1
		fOpt := replay(NewOPT(refs, m), refs)
		fLRU := replay(NewLRU(m), refs)
		fFIFO := replay(NewFIFO(m), refs)
		return fOpt <= fLRU && fOpt <= fFIFO
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOPTKnownString(t *testing.T) {
	// Classic example: 7 0 1 2 0 3 0 4 2 3 0 3 2 with 3 frames -> 9 faults
	// under OPT (textbook result).
	s := []mem.Page{7, 0, 1, 2, 0, 3, 0, 4, 2, 3, 0, 3, 2}
	if f := replay(NewOPT(s, 3), s); f != 7 {
		// 7,0,1 fault; 2 evicts 7; 0 hit; 3 evicts 1; 0 hit; 4 evicts 0;
		// 2 hit; 3 hit; 0 faults (evicts 4); 3 hit; 2 hit => 7 faults.
		t.Errorf("OPT faults = %d, want 7", f)
	}
}

func TestOPTOutOfOrderPanics(t *testing.T) {
	s := []mem.Page{1, 2, 3}
	p := NewOPT(s, 2)
	p.Ref(1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-order replay")
		}
	}()
	p.Ref(3) // should be 2
}

func TestCDAllocGrowAndShrink(t *testing.T) {
	cd := NewCD(SelectLevel(1), 1)
	cd.Alloc(trace.AllocDirective{Arms: []directive.Arm{{PI: 1, X: 3}}})
	if cd.Allocation() != 3 {
		t.Fatalf("alloc = %d, want 3", cd.Allocation())
	}
	// Fill 3 pages.
	for _, pg := range []mem.Page{1, 2, 3} {
		if !cd.Ref(pg) {
			t.Errorf("page %d should fault", pg)
		}
	}
	if cd.Resident() != 3 {
		t.Fatalf("resident = %d", cd.Resident())
	}
	// Shrink to 1: evicts LRU pages 1 and 2.
	cd.Alloc(trace.AllocDirective{Arms: []directive.Arm{{PI: 1, X: 1}}})
	if cd.Resident() != 1 {
		t.Errorf("resident after shrink = %d, want 1", cd.Resident())
	}
	if cd.Ref(3) {
		t.Error("page 3 (MRU) should have survived the shrink")
	}
	if !cd.Ref(1) {
		t.Error("page 1 should have been evicted")
	}
}

func TestCDLocalLRUWithinAllocation(t *testing.T) {
	cd := NewCD(SelectLevel(1), 1)
	cd.Alloc(trace.AllocDirective{Arms: []directive.Arm{{PI: 1, X: 2}}})
	cd.Ref(1)
	cd.Ref(2)
	cd.Ref(1) // 1 is MRU
	cd.Ref(3) // evicts 2
	if cd.Ref(1) {
		t.Error("1 should be resident")
	}
	if !cd.Ref(2) {
		t.Error("2 should have been evicted")
	}
}

func TestCDSelectLevel(t *testing.T) {
	arms := []directive.Arm{{PI: 3, X: 100}, {PI: 2, X: 40}, {PI: 1, X: 5}}
	cases := []struct{ level, want int }{
		{1, 5},   // innermost stratum: the loop's own locality
		{2, 40},  // middle
		{3, 100}, // outermost
		{4, 100}, // above Δ: the outermost arm still has PI <= level
	}
	for _, c := range cases {
		got, ok := SelectLevel(c.level)("", arms)
		if !ok {
			t.Fatalf("SelectLevel(%d): directive skipped, want granted", c.level)
		}
		if got.X != c.want {
			t.Errorf("SelectLevel(%d) = %d, want %d", c.level, got.X, c.want)
		}
	}
	// A directive whose own loop sits above the honored stratum does not
	// execute: honoring level 2 skips a directive of an outer PI=3 loop.
	if _, ok := SelectLevel(2)("", []directive.Arm{{PI: 4, X: 90}, {PI: 3, X: 80}}); ok {
		t.Error("directive of a PI=3 loop should not execute in the level-2 set")
	}
}

func TestCDLocksPreventEviction(t *testing.T) {
	cd := NewCD(SelectLevel(1), 1)
	cd.Alloc(trace.AllocDirective{Arms: []directive.Arm{{PI: 1, X: 1}}})
	cd.Ref(1)
	cd.Lock(trace.LockSet{PJ: 2, Site: 0, Pages: []mem.Page{1}})
	cd.Ref(2) // locked 1 rides above the allocation; 2 fills the one frame
	cd.Ref(3) // must evict 2, not locked 1
	if cd.Ref(1) {
		t.Error("locked page 1 was evicted")
	}
	if !cd.Ref(2) {
		t.Error("page 2 should have been evicted instead of locked 1")
	}
}

func TestCDLockedPagesRideAboveAllocation(t *testing.T) {
	// ALLOCATE X sizes the loop's own locality; LOCK pins outer-loop
	// pages on top of it. With X = 2 and one locked page, the two-page
	// alternating pattern must not thrash.
	cd := NewCD(SelectLevel(1), 1)
	cd.Alloc(trace.AllocDirective{Arms: []directive.Arm{{PI: 1, X: 2}}})
	cd.Ref(10)
	cd.Lock(trace.LockSet{PJ: 2, Site: 0, Pages: []mem.Page{10}})
	cd.Ref(1)
	cd.Ref(2)
	faults := 0
	for i := 0; i < 10; i++ {
		if cd.Ref(1) {
			faults++
		}
		if cd.Ref(2) {
			faults++
		}
	}
	if faults != 0 {
		t.Errorf("alternating pattern faulted %d times with a locked page above the allocation", faults)
	}
	if cd.Resident() != 3 {
		t.Errorf("resident = %d, want 3 (2 allocated + 1 locked)", cd.Resident())
	}
}

func TestCDForceReleaseOrder(t *testing.T) {
	cd := NewCD(SelectLevel(1), 1)
	cd.Alloc(trace.AllocDirective{Arms: []directive.Arm{{PI: 1, X: 2}}})
	cd.Ref(1)
	cd.Ref(2)
	// Lock both resident pages with different priorities.
	cd.Lock(trace.LockSet{PJ: 2, Site: 0, Pages: []mem.Page{1}})
	cd.Lock(trace.LockSet{PJ: 3, Site: 1, Pages: []mem.Page{2}})
	// The OS reclaims one page: the lowest-priority lock (largest PJ).
	if n := cd.ForceRelease(1); n != 1 {
		t.Fatalf("released = %d, want 1", n)
	}
	if cd.LockReleases != 1 {
		t.Errorf("lock releases = %d, want 1", cd.LockReleases)
	}
	if cd.Ref(1) {
		t.Error("higher-priority locked page 1 was released")
	}
	if !cd.Ref(2) {
		t.Error("page 2 should have been the released one")
	}
	// Releasing more than exists stops at the lock count.
	cd.Lock(trace.LockSet{PJ: 4, Site: 2, Pages: []mem.Page{1}})
	if n := cd.ForceRelease(5); n != 1 {
		t.Errorf("released = %d, want 1", n)
	}
}

func TestCDSiteRelockReplacesOldLocks(t *testing.T) {
	cd := NewCD(SelectLevel(1), 1)
	cd.Alloc(trace.AllocDirective{Arms: []directive.Arm{{PI: 1, X: 2}}})
	cd.Ref(1)
	cd.Lock(trace.LockSet{PJ: 2, Site: 5, Pages: []mem.Page{1}})
	if cd.LockedPages() != 1 {
		t.Fatalf("locked = %d, want 1", cd.LockedPages())
	}
	cd.Ref(2)
	// Same site locks page 2 now: page 1's lock must drop.
	cd.Lock(trace.LockSet{PJ: 2, Site: 5, Pages: []mem.Page{2}})
	if cd.LockedPages() != 1 {
		t.Errorf("locked = %d, want 1 after site relock", cd.LockedPages())
	}
	cd.Ref(3)
	cd.Ref(4) // unlocked {1,3} at the allocation: evicts LRU unlocked page 1
	if !cd.Ref(1) {
		t.Error("page 1 should be evictable after its site relocked elsewhere")
	}
}

func TestCDUnlock(t *testing.T) {
	cd := NewCD(SelectLevel(1), 1)
	cd.Alloc(trace.AllocDirective{Arms: []directive.Arm{{PI: 1, X: 2}}})
	cd.Ref(1)
	cd.Lock(trace.LockSet{PJ: 2, Site: 0, Pages: []mem.Page{1}})
	cd.Unlock([]mem.Page{1})
	cd.Ref(2)
	cd.Ref(3) // evicts 1 (now unlocked, LRU)
	if !cd.Ref(1) {
		t.Error("page 1 should have been evicted after UNLOCK")
	}
	if cd.LockedPages() != 0 {
		t.Errorf("locked = %d, want 0", cd.LockedPages())
	}
}

func TestCDAvailableFigure6(t *testing.T) {
	avail := 10
	cd := NewCD(SelectLevel(3), 1)
	cd.Avail = func() int { return avail }

	// Chain (3,100) else (2,40) else (1,5): only the innermost fits.
	cd.Alloc(trace.AllocDirective{Arms: []directive.Arm{{PI: 3, X: 100}, {PI: 2, X: 40}, {PI: 1, X: 5}}})
	if cd.Allocation() != 5 {
		t.Errorf("alloc = %d, want 5 (fall through the else-chain)", cd.Allocation())
	}
	if cd.SwapSignals != 0 {
		t.Errorf("swap signals = %d, want 0", cd.SwapSignals)
	}

	// Nothing fits and innermost PI is 1: swap signal, allocation holds.
	avail = 2
	cd.Alloc(trace.AllocDirective{Arms: []directive.Arm{{PI: 2, X: 40}, {PI: 1, X: 5}}})
	if cd.SwapSignals != 1 {
		t.Errorf("swap signals = %d, want 1", cd.SwapSignals)
	}
	if cd.Allocation() != 5 {
		t.Errorf("alloc = %d, want unchanged 5", cd.Allocation())
	}

	// Nothing fits but innermost PI > 1: continue, no swap.
	cd.Alloc(trace.AllocDirective{Arms: []directive.Arm{{PI: 3, X: 40}, {PI: 2, X: 30}}})
	if cd.SwapSignals != 1 {
		t.Errorf("swap signals = %d, want still 1", cd.SwapSignals)
	}
}

func TestCDReset(t *testing.T) {
	cd := NewCD(SelectLevel(1), 2)
	cd.Alloc(trace.AllocDirective{Arms: []directive.Arm{{PI: 1, X: 7}}})
	cd.Ref(1)
	cd.Lock(trace.LockSet{PJ: 2, Site: 0, Pages: []mem.Page{1}})
	cd.Reset()
	if cd.Resident() != 0 || cd.Allocation() != 2 || cd.LockedPages() != 0 {
		t.Errorf("reset incomplete: resident=%d alloc=%d locked=%d", cd.Resident(), cd.Allocation(), cd.LockedPages())
	}
}

func TestResetAllPolicies(t *testing.T) {
	refs := cyclic(5, 2)
	pols := []Policy{NewLRU(3), NewFIFO(3), NewWS(4), NewOPT(refs, 3), NewCD(nil, 2)}
	for _, p := range pols {
		f1 := replay(p, refs)
		p.Reset()
		f2 := replay(p, refs)
		if f1 != f2 {
			t.Errorf("%s: faults differ after reset: %d vs %d", p.Name(), f1, f2)
		}
	}
}
