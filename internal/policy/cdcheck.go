package policy

import (
	"fmt"

	"cdmm/internal/directive"
	"cdmm/internal/mem"
	"cdmm/internal/trace"
)

// DefaultFallbackTau is the WS window (in references) a degraded CD policy
// falls back to when the CheckConfig does not choose one. It sits in the
// middle of the paper's §5 WS sweep range, a directive-blind setting that
// needs no information from the (now distrusted) compiler.
const DefaultFallbackTau = 500

// CheckConfig enables directive validation on a CD policy. When CD.Check
// is non-nil, every incoming ALLOCATE/LOCK/UNLOCK execution is validated
// against the §3 directive contract before it is trusted; the first
// violation degrades the policy for the remainder of the run (see
// CD.Degraded). A nil Check reproduces the historical trusting behavior
// bit for bit.
type CheckConfig struct {
	// MaxPage, when > 0, is the program's addressable page count V: any
	// directive that requests more than MaxPage pages or locks a page
	// outside [0, MaxPage) violates the contract. Zero disables the
	// address-space checks (priority-shape checks still apply).
	MaxPage int
	// FallbackTau is the WS window used after degradation; zero selects
	// DefaultFallbackTau.
	FallbackTau int
}

// tau returns the effective fallback window.
func (c *CheckConfig) tau() int {
	if c != nil && c.FallbackTau > 0 {
		return c.FallbackTau
	}
	return DefaultFallbackTau
}

// Degraded reports whether a directive-contract violation has switched
// the policy to its WS fallback for the remainder of the run.
func (p *CD) Degraded() bool { return p.degraded }

// DegradedReason returns the first contract violation observed, or ""
// when the policy is not degraded.
func (p *CD) DegradedReason() string { return p.degradedReason }

// validateAlloc checks an ALLOCATE execution against the contract.
func (p *CD) validateAlloc(d trace.AllocDirective) error {
	return directive.ValidateArms(d.Arms, p.Check.MaxPage)
}

// validateLock checks a LOCK execution against the contract.
func (p *CD) validateLock(ls trace.LockSet) error {
	return directive.ValidateLockSet(ls.PJ, ls.Site, pageInts(ls.Pages), p.Check.MaxPage)
}

// validateUnlock checks an UNLOCK execution against the contract.
func (p *CD) validateUnlock(pages []mem.Page) error {
	return directive.ValidateUnlockSet(pageInts(pages), p.Check.MaxPage)
}

// pageInts widens a page list for the directive-level validators.
func pageInts(pages []mem.Page) []int {
	if len(pages) == 0 {
		return nil
	}
	out := make([]int, len(pages))
	for i, pg := range pages {
		out[i] = int(pg)
	}
	return out
}

// degrade switches the policy into graceful degradation: every lock is
// released (a policy that no longer trusts its directive stream must not
// keep pages pinned on its say-so), the current resident set is carried
// into a fresh WS fallback so no refault storm is charged to the
// transition, and all further directives become no-ops. Idempotent: only
// the first violation is recorded.
func (p *CD) degrade(reason string) {
	if p.degraded {
		return
	}
	p.degraded = true
	p.degradedReason = reason
	resident := make([]mem.Page, 0, p.list.len())
	for s := p.list.tail; s >= 0; s = p.list.prev[s] { // LRU→MRU for a stable seed order
		p.list.locked[s] = false
		resident = append(resident, p.list.idx.pageOf(s))
	}
	p.locked = 0
	for site, ps := range p.locksBySite {
		p.locksBySite[site] = ps[:0]
	}
	ws := NewWS(p.Check.tau())
	ws.Warm(resident)
	ws.SetEvictHook(p.onEvict)
	p.fallback = ws
	if p.Hooks != nil && p.Hooks.Degrade != nil {
		p.Hooks.Degrade(reason)
	}
}

// AuditLocks verifies CD's internal lock bookkeeping: the locked counter
// must equal the number of locked resident nodes, and every locked node
// must be recorded under its own site. (A site's recorded list may hold
// extra pages whose lock has since been taken over by another site; that
// is expected bookkeeping slack, not corruption.) The checked simulator
// runs this after every directive event.
func (p *CD) AuditLocks() error {
	locked := 0
	for s := p.list.head; s >= 0; s = p.list.next[s] {
		if !p.list.locked[s] {
			continue
		}
		locked++
		page := p.list.idx.pageOf(s)
		found := false
		for _, pg := range p.locksBySite[int(p.list.site[s])] {
			if pg == page {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("locked page %d not recorded under site %d", page, int(p.list.site[s]))
		}
	}
	if locked != p.locked {
		return fmt.Errorf("locked counter %d but %d locked resident pages", p.locked, locked)
	}
	return nil
}
