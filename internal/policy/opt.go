package policy

import (
	"container/heap"
	"fmt"

	"cdmm/internal/mem"
)

// OPT is Belady's optimal fixed-allocation replacement policy: on a fault
// with a full partition, it evicts the resident page whose next use lies
// farthest in the future. It requires the full reference string up front
// and serves as an oracle lower bound in the ablation experiments.
type OPT struct {
	noDirectives
	frames int
	// next[i] is the position of the next reference to the same page
	// after position i (len(refs) if none).
	refs []mem.Page
	next []int
	pos  int

	resident map[mem.Page]int // page -> its current next-use position
	h        optHeap          // max-heap on next-use with lazy deletion
}

type optEntry struct {
	page mem.Page
	next int
}

type optHeap []optEntry

func (h optHeap) Len() int           { return len(h) }
func (h optHeap) Less(i, j int) bool { return h[i].next > h[j].next }
func (h optHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *optHeap) Push(x any)        { *h = append(*h, x.(optEntry)) }
func (h *optHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// NewOPT builds the oracle for the given reference string and allocation.
func NewOPT(refs []mem.Page, frames int) *OPT {
	if frames < 1 {
		frames = 1
	}
	p := &OPT{frames: frames, refs: refs}
	p.precompute()
	p.resident = map[mem.Page]int{}
	return p
}

func (p *OPT) precompute() {
	n := len(p.refs)
	p.next = make([]int, n)
	last := map[mem.Page]int{}
	for i := n - 1; i >= 0; i-- {
		pg := p.refs[i]
		if j, ok := last[pg]; ok {
			p.next[i] = j
		} else {
			p.next[i] = n
		}
		last[pg] = i
	}
}

// Name implements Policy.
func (p *OPT) Name() string { return fmt.Sprintf("OPT(m=%d)", p.frames) }

// Ref implements Policy. The supplied page must match the precomputed
// reference string position by position.
func (p *OPT) Ref(pg mem.Page) bool {
	if p.pos >= len(p.refs) || p.refs[p.pos] != pg {
		panic(fmt.Sprintf("policy: OPT replayed out of order at position %d", p.pos))
	}
	nxt := p.next[p.pos]
	p.pos++

	if _, ok := p.resident[pg]; ok {
		p.resident[pg] = nxt
		heap.Push(&p.h, optEntry{page: pg, next: nxt})
		return false
	}
	if len(p.resident) >= p.frames {
		p.evict()
	}
	p.resident[pg] = nxt
	heap.Push(&p.h, optEntry{page: pg, next: nxt})
	return true
}

// evict removes the resident page with the farthest next use, skipping
// stale heap entries.
func (p *OPT) evict() {
	for p.h.Len() > 0 {
		e := heap.Pop(&p.h).(optEntry)
		if cur, ok := p.resident[e.page]; ok && cur == e.next {
			delete(p.resident, e.page)
			return
		}
	}
	// Heap exhausted without finding a victim: evict any resident page.
	for pg := range p.resident {
		delete(p.resident, pg)
		return
	}
}

// Resident implements Policy.
func (p *OPT) Resident() int { return len(p.resident) }

// Charged implements Charger: the whole fixed partition is allocated.
func (p *OPT) Charged() int { return p.frames }

// Reset implements Policy.
func (p *OPT) Reset() {
	p.pos = 0
	p.resident = map[mem.Page]int{}
	p.h = nil
}
