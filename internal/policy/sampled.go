package policy

import (
	"fmt"

	"cdmm/internal/mem"
)

// SWS is the Sampled Working Set policy (Rodriguez-Rosell & Dupuy, 1973),
// the cheaper realization of WS the paper cites: instead of tracking the
// exact window, per-page use bits are examined every sigma references.
// At each sampling point, pages whose use bit is clear are released and
// all use bits are cleared; between samples the resident set only grows
// (by faults).
//
// The use bit of slot s is the epoch stamp useEpoch[s] == epoch, so
// "clear all use bits" at a sampling point is a counter increment.
type SWS struct {
	noDirectives
	sigma int64
	name  string

	now      int64
	nextSamp int64
	idx      pageIndex
	resident []bool
	useEpoch []int64
	epoch    int64
	nres     int
}

// NewSWS returns a Sampled WS policy with sampling interval sigma.
func NewSWS(sigma int) *SWS {
	if sigma < 1 {
		sigma = 1
	}
	s := &SWS{sigma: int64(sigma)}
	s.name = fmt.Sprintf("SWS(sigma=%d)", sigma)
	s.Reset()
	return s
}

// Name implements Policy.
func (p *SWS) Name() string { return p.name }

// HintPages implements PageHinter.
func (p *SWS) HintPages(maxPage mem.Page, distinct int) { p.idx.hint(maxPage, distinct) }

// slotOf returns pg's dense slot, growing the state arrays in step with
// the index.
func (p *SWS) slotOf(pg mem.Page) int32 {
	s := p.idx.slot(pg)
	if int(s) >= len(p.resident) {
		p.resident = append(p.resident, false)
		p.useEpoch = append(p.useEpoch, -1)
	}
	return s
}

// Ref implements Policy.
func (p *SWS) Ref(pg mem.Page) bool {
	p.now++
	if p.now >= p.nextSamp {
		p.sample()
		p.nextSamp = p.now + p.sigma
	}
	s := p.slotOf(pg)
	if p.resident[s] {
		p.useEpoch[s] = p.epoch
		return false
	}
	p.resident[s] = true
	p.useEpoch[s] = p.epoch
	p.nres++
	return true
}

// sample releases unreferenced pages and clears the use bits.
func (p *SWS) sample() {
	for s := range p.resident {
		if p.resident[s] && p.useEpoch[s] != p.epoch {
			p.resident[s] = false
			p.nres--
		}
	}
	p.epoch++
}

// Resident implements Policy.
func (p *SWS) Resident() int { return p.nres }

// Reset implements Policy.
func (p *SWS) Reset() {
	p.now = 0
	p.nextSamp = p.sigma
	p.epoch = 0
	for i := range p.resident {
		p.resident[i] = false
		p.useEpoch[i] = -1
	}
	p.nres = 0
}

// VSWS is the Variable-Interval Sampled Working Set policy (Ferrari &
// Yih, 1983), proposed "to reduce both implementation cost and
// transitional page faults": the use bits are sampled when Q page faults
// have accumulated since the last sample, but never sooner than MinIS
// references and never later than MaxIS references after it.
type VSWS struct {
	noDirectives
	minIS, maxIS int64
	q            int
	name         string

	now         int64
	lastSample  int64
	faultsSince int
	idx         pageIndex
	resident    []bool
	useEpoch    []int64
	epoch       int64
	nres        int
}

// NewVSWS returns a VSWS policy with the (MinIS, MaxIS, Q) parameters.
func NewVSWS(minIS, maxIS, q int) *VSWS {
	if minIS < 1 {
		minIS = 1
	}
	if maxIS < minIS {
		maxIS = minIS
	}
	if q < 1 {
		q = 1
	}
	v := &VSWS{minIS: int64(minIS), maxIS: int64(maxIS), q: q}
	v.name = fmt.Sprintf("VSWS(min=%d,max=%d,Q=%d)", v.minIS, v.maxIS, v.q)
	v.Reset()
	return v
}

// Name implements Policy.
func (p *VSWS) Name() string { return p.name }

// HintPages implements PageHinter.
func (p *VSWS) HintPages(maxPage mem.Page, distinct int) { p.idx.hint(maxPage, distinct) }

// slotOf returns pg's dense slot, growing the state arrays in step with
// the index.
func (p *VSWS) slotOf(pg mem.Page) int32 {
	s := p.idx.slot(pg)
	if int(s) >= len(p.resident) {
		p.resident = append(p.resident, false)
		p.useEpoch = append(p.useEpoch, -1)
	}
	return s
}

// Ref implements Policy.
func (p *VSWS) Ref(pg mem.Page) bool {
	p.now++
	elapsed := p.now - p.lastSample
	if (p.faultsSince >= p.q && elapsed >= p.minIS) || elapsed >= p.maxIS {
		p.sample()
	}
	s := p.slotOf(pg)
	if p.resident[s] {
		p.useEpoch[s] = p.epoch
		return false
	}
	p.resident[s] = true
	p.useEpoch[s] = p.epoch
	p.nres++
	p.faultsSince++
	return true
}

func (p *VSWS) sample() {
	for s := range p.resident {
		if p.resident[s] && p.useEpoch[s] != p.epoch {
			p.resident[s] = false
			p.nres--
		}
	}
	p.epoch++
	p.lastSample = p.now
	p.faultsSince = 0
}

// Resident implements Policy.
func (p *VSWS) Resident() int { return p.nres }

// Reset implements Policy.
func (p *VSWS) Reset() {
	p.now = 0
	p.lastSample = 0
	p.faultsSince = 0
	p.epoch = 0
	for i := range p.resident {
		p.resident[i] = false
		p.useEpoch[i] = -1
	}
	p.nres = 0
}

// DWS is the Damped Working Set policy (Smith, 1976), which the paper
// cites as handling WS's transitional faulting ("the DWS outperforms WS
// by less than 10%"): it behaves exactly like WS except that departures
// from the resident set are rate-limited — at most one page may leave per
// Damping references — so the set deflates gradually across interlocality
// transitions instead of collapsing.
//
// The damper's held set is a ring buffer of (slot, seq) records over the
// inner WS's page slots. A record is live iff its slot is currently held
// AND its seq matches the slot's latest hold; records orphaned by a
// re-reference (or by hold-release-hold cycles, which would otherwise put
// a page back at its stale ring position) are skipped as tombstones when
// the damper releases the oldest held page.
type DWS struct {
	noDirectives
	ws       *WS
	damping  int64
	name     string
	lastDrop int64
	now      int64

	held              []dwsRecord
	heldHead, heldLen int
	heldIn            []bool
	heldSeq           []int64
	seq               int64
	heldCount         int
}

type dwsRecord struct {
	slot int32
	seq  int64
}

// NewDWS returns a Damped WS with window tau and the given damping
// interval (references per allowed departure).
func NewDWS(tau, damping int) *DWS {
	if damping < 1 {
		damping = 1
	}
	p := &DWS{ws: NewWS(tau), damping: int64(damping)}
	p.name = fmt.Sprintf("DWS(tau=%d,d=%d)", p.ws.Tau(), p.damping)
	p.ws.onExpire = p.hold
	return p
}

// Name implements Policy.
func (p *DWS) Name() string { return p.name }

// HintPages implements PageHinter.
func (p *DWS) HintPages(maxPage mem.Page, distinct int) { p.ws.HintPages(maxPage, distinct) }

// grow keeps the per-slot held arrays in step with the inner WS's index.
func (p *DWS) grow(s int32) {
	for int(s) >= len(p.heldIn) {
		p.heldIn = append(p.heldIn, false)
		p.heldSeq = append(p.heldSeq, 0)
	}
}

// pushHeld appends a record at the ring's tail, doubling when full.
func (p *DWS) pushHeld(r dwsRecord) {
	if p.heldLen == len(p.held) {
		grown := make([]dwsRecord, max(2*len(p.held), 64))
		for i := 0; i < p.heldLen; i++ {
			grown[i] = p.held[(p.heldHead+i)&(len(p.held)-1)]
		}
		p.held = grown
		p.heldHead = 0
	}
	p.held[(p.heldHead+p.heldLen)&(len(p.held)-1)] = r
	p.heldLen++
}

// hold receives slots expiring from the true working set.
func (p *DWS) hold(s int32) {
	p.grow(s)
	if p.heldIn[s] {
		return
	}
	p.seq++
	p.heldIn[s] = true
	p.heldSeq[s] = p.seq
	p.heldCount++
	p.pushHeld(dwsRecord{slot: s, seq: p.seq})
}

// Ref implements Policy.
func (p *DWS) Ref(pg mem.Page) bool {
	p.now++
	fault := p.ws.Ref(pg)
	s := p.ws.slotOf(pg)
	p.grow(s)
	if p.heldIn[s] {
		// The page expired from the true WS but the damper still holds
		// it: re-entry is not a real fault. Its ring record becomes a
		// tombstone (seq no longer matches on a later re-hold).
		p.heldIn[s] = false
		p.heldCount--
		fault = false
	}
	// Damping: release at most one held page per damping interval.
	if p.heldCount > 0 && p.now-p.lastDrop >= p.damping {
		for p.heldLen > 0 {
			rec := p.held[p.heldHead]
			p.heldHead = (p.heldHead + 1) & (len(p.held) - 1)
			p.heldLen--
			if p.heldIn[rec.slot] && p.heldSeq[rec.slot] == rec.seq {
				p.heldIn[rec.slot] = false
				p.heldCount--
				p.lastDrop = p.now
				break
			}
		}
	}
	return fault
}

// Resident implements Policy.
func (p *DWS) Resident() int { return p.ws.Resident() + p.heldCount }

// Reset implements Policy.
func (p *DWS) Reset() {
	p.ws.Reset()
	p.now = 0
	p.lastDrop = 0
	p.heldHead, p.heldLen = 0, 0
	for i := range p.heldIn {
		p.heldIn[i] = false
		p.heldSeq[i] = 0
	}
	p.seq = 0
	p.heldCount = 0
}

var (
	_ Policy = (*SWS)(nil)
	_ Policy = (*VSWS)(nil)
	_ Policy = (*DWS)(nil)
)
