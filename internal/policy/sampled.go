package policy

import (
	"fmt"

	"cdmm/internal/mem"
)

// SWS is the Sampled Working Set policy (Rodriguez-Rosell & Dupuy, 1973),
// the cheaper realization of WS the paper cites: instead of tracking the
// exact window, per-page use bits are examined every sigma references.
// At each sampling point, pages whose use bit is clear are released and
// all use bits are cleared; between samples the resident set only grows
// (by faults).
type SWS struct {
	noDirectives
	sigma int64

	now      int64
	nextSamp int64
	resident map[mem.Page]bool
	useBit   map[mem.Page]bool
}

// NewSWS returns a Sampled WS policy with sampling interval sigma.
func NewSWS(sigma int) *SWS {
	if sigma < 1 {
		sigma = 1
	}
	s := &SWS{sigma: int64(sigma)}
	s.Reset()
	return s
}

// Name implements Policy.
func (p *SWS) Name() string { return fmt.Sprintf("SWS(sigma=%d)", p.sigma) }

// Ref implements Policy.
func (p *SWS) Ref(pg mem.Page) bool {
	p.now++
	if p.now >= p.nextSamp {
		p.sample()
		p.nextSamp = p.now + p.sigma
	}
	if p.resident[pg] {
		p.useBit[pg] = true
		return false
	}
	p.resident[pg] = true
	p.useBit[pg] = true
	return true
}

// sample releases unreferenced pages and clears the use bits.
func (p *SWS) sample() {
	for q := range p.resident {
		if !p.useBit[q] {
			delete(p.resident, q)
		}
	}
	p.useBit = map[mem.Page]bool{}
}

// Resident implements Policy.
func (p *SWS) Resident() int { return len(p.resident) }

// Reset implements Policy.
func (p *SWS) Reset() {
	p.now = 0
	p.nextSamp = p.sigma
	p.resident = map[mem.Page]bool{}
	p.useBit = map[mem.Page]bool{}
}

// VSWS is the Variable-Interval Sampled Working Set policy (Ferrari &
// Yih, 1983), proposed "to reduce both implementation cost and
// transitional page faults": the use bits are sampled when Q page faults
// have accumulated since the last sample, but never sooner than MinIS
// references and never later than MaxIS references after it.
type VSWS struct {
	noDirectives
	minIS, maxIS int64
	q            int

	now         int64
	lastSample  int64
	faultsSince int
	resident    map[mem.Page]bool
	useBit      map[mem.Page]bool
}

// NewVSWS returns a VSWS policy with the (MinIS, MaxIS, Q) parameters.
func NewVSWS(minIS, maxIS, q int) *VSWS {
	if minIS < 1 {
		minIS = 1
	}
	if maxIS < minIS {
		maxIS = minIS
	}
	if q < 1 {
		q = 1
	}
	v := &VSWS{minIS: int64(minIS), maxIS: int64(maxIS), q: q}
	v.Reset()
	return v
}

// Name implements Policy.
func (p *VSWS) Name() string {
	return fmt.Sprintf("VSWS(min=%d,max=%d,Q=%d)", p.minIS, p.maxIS, p.q)
}

// Ref implements Policy.
func (p *VSWS) Ref(pg mem.Page) bool {
	p.now++
	elapsed := p.now - p.lastSample
	if (p.faultsSince >= p.q && elapsed >= p.minIS) || elapsed >= p.maxIS {
		p.sample()
	}
	if p.resident[pg] {
		p.useBit[pg] = true
		return false
	}
	p.resident[pg] = true
	p.useBit[pg] = true
	p.faultsSince++
	return true
}

func (p *VSWS) sample() {
	for q := range p.resident {
		if !p.useBit[q] {
			delete(p.resident, q)
		}
	}
	p.useBit = map[mem.Page]bool{}
	p.lastSample = p.now
	p.faultsSince = 0
}

// Resident implements Policy.
func (p *VSWS) Resident() int { return len(p.resident) }

// Reset implements Policy.
func (p *VSWS) Reset() {
	p.now = 0
	p.lastSample = 0
	p.faultsSince = 0
	p.resident = map[mem.Page]bool{}
	p.useBit = map[mem.Page]bool{}
}

// DWS is the Damped Working Set policy (Smith, 1976), which the paper
// cites as handling WS's transitional faulting ("the DWS outperforms WS
// by less than 10%"): it behaves exactly like WS except that departures
// from the resident set are rate-limited — at most one page may leave per
// Damping references — so the set deflates gradually across interlocality
// transitions instead of collapsing.
type DWS struct {
	noDirectives
	ws       *WS
	damping  int64
	lastDrop int64
	now      int64

	// held are pages that expired from the true WS but are retained by
	// the damper, in expiry order.
	held    []mem.Page
	heldSet map[mem.Page]bool
}

// NewDWS returns a Damped WS with window tau and the given damping
// interval (references per allowed departure).
func NewDWS(tau, damping int) *DWS {
	if damping < 1 {
		damping = 1
	}
	p := &DWS{ws: NewWS(tau), damping: int64(damping), heldSet: map[mem.Page]bool{}}
	p.ws.onExpire = p.hold
	return p
}

// Name implements Policy.
func (p *DWS) Name() string {
	return fmt.Sprintf("DWS(tau=%d,d=%d)", p.ws.Tau(), p.damping)
}

// hold receives pages expiring from the true working set.
func (p *DWS) hold(pg mem.Page) {
	if !p.heldSet[pg] {
		p.held = append(p.held, pg)
		p.heldSet[pg] = true
	}
}

// Ref implements Policy.
func (p *DWS) Ref(pg mem.Page) bool {
	p.now++
	fault := p.ws.Ref(pg)
	if p.heldSet[pg] {
		// The page expired from the true WS but the damper still holds
		// it: re-entry is not a real fault.
		p.removeHeld(pg)
		fault = false
	}
	// Damping: release at most one held page per damping interval.
	if len(p.held) > 0 && p.now-p.lastDrop >= p.damping {
		drop := p.held[0]
		p.held = p.held[1:]
		delete(p.heldSet, drop)
		p.lastDrop = p.now
	}
	return fault
}

func (p *DWS) removeHeld(pg mem.Page) {
	delete(p.heldSet, pg)
	for i, q := range p.held {
		if q == pg {
			p.held = append(p.held[:i], p.held[i+1:]...)
			break
		}
	}
}

// Resident implements Policy.
func (p *DWS) Resident() int { return p.ws.Resident() + len(p.held) }

// Reset implements Policy.
func (p *DWS) Reset() {
	p.ws.Reset()
	p.now = 0
	p.lastDrop = 0
	p.held = nil
	p.heldSet = map[mem.Page]bool{}
}

var (
	_ Policy = (*SWS)(nil)
	_ Policy = (*VSWS)(nil)
	_ Policy = (*DWS)(nil)
)
