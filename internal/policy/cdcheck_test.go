package policy

import (
	"strings"
	"testing"

	"cdmm/internal/directive"
	"cdmm/internal/mem"
	"cdmm/internal/trace"
)

// alloc builds an AllocDirective literal for tests.
func alloc(label string, arms ...directive.Arm) trace.AllocDirective {
	return trace.AllocDirective{Label: label, Arms: arms}
}

// TestCheckCleanStreamIdentical drives two CD policies — one validating,
// one trusting — through the same well-formed directive/reference stream
// and requires identical behavior: with injection disabled, checked paths
// must be invisible.
func TestCheckCleanStreamIdentical(t *testing.T) {
	trusting := NewCD(SelectLevel(2), 2)
	checked := NewCD(SelectLevel(2), 2)
	checked.Check = &CheckConfig{MaxPage: 32}

	step := func(f func(p *CD)) {
		f(trusting)
		f(checked)
		if a, b := trusting.Resident(), checked.Resident(); a != b {
			t.Fatalf("resident diverged: trusting %d, checked %d", a, b)
		}
		if a, b := trusting.LockedPages(), checked.LockedPages(); a != b {
			t.Fatalf("locked diverged: trusting %d, checked %d", a, b)
		}
	}

	step(func(p *CD) { p.Alloc(alloc("10", directive.Arm{PI: 2, X: 8}, directive.Arm{PI: 1, X: 3})) })
	for i := 0; i < 20; i++ {
		pg := mem.Page(i % 6)
		fa := trusting.Ref(pg)
		fb := checked.Ref(pg)
		if fa != fb {
			t.Fatalf("ref %d: fault diverged: trusting %v, checked %v", i, fa, fb)
		}
	}
	step(func(p *CD) { p.Lock(trace.LockSet{PJ: 2, Site: 0, Pages: []mem.Page{0, 1}}) })
	step(func(p *CD) { p.Alloc(alloc("20", directive.Arm{PI: 1, X: 2})) })
	step(func(p *CD) { p.Unlock([]mem.Page{0, 1}) })

	if checked.Degraded() {
		t.Fatalf("clean stream degraded the policy: %s", checked.DegradedReason())
	}
	if err := checked.AuditLocks(); err != nil {
		t.Fatalf("lock audit on clean stream: %v", err)
	}
}

// TestDegradeOnContractViolations exercises one representative violation
// per directive kind and checks the policy lands in degraded mode with a
// descriptive reason.
func TestDegradeOnContractViolations(t *testing.T) {
	cases := []struct {
		name string
		feed func(p *CD)
		want string // substring of the degradation reason
	}{
		{
			name: "priority not decreasing",
			feed: func(p *CD) {
				p.Alloc(alloc("10", directive.Arm{PI: 2, X: 8}, directive.Arm{PI: 9, X: 3}))
			},
			want: "does not decrease",
		},
		{
			name: "allocation beyond address space",
			feed: func(p *CD) {
				p.Alloc(alloc("10", directive.Arm{PI: 1, X: 999}))
			},
			want: "addresses only",
		},
		{
			name: "empty else-chain",
			feed: func(p *CD) { p.Alloc(alloc("10")) },
			want: "empty else-chain",
		},
		{
			name: "lock page out of range",
			feed: func(p *CD) {
				p.Lock(trace.LockSet{PJ: 1, Site: 0, Pages: []mem.Page{500}})
			},
			want: "unknown page",
		},
		{
			name: "lock priority below one",
			feed: func(p *CD) {
				p.Lock(trace.LockSet{PJ: 0, Site: 0, Pages: []mem.Page{1}})
			},
			want: "priority",
		},
		{
			name: "unlock page out of range",
			feed: func(p *CD) { p.Unlock([]mem.Page{-3}) },
			want: "page",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := NewCD(SelectLevel(2), 2)
			p.Check = &CheckConfig{MaxPage: 16}
			for i := 0; i < 4; i++ {
				p.Ref(mem.Page(i))
			}
			tc.feed(p)
			if !p.Degraded() {
				t.Fatal("violation did not degrade the policy")
			}
			if !strings.Contains(p.DegradedReason(), tc.want) {
				t.Errorf("reason %q does not mention %q", p.DegradedReason(), tc.want)
			}
		})
	}
}

// TestDegradeReleasesLocksAndWarmsFallback verifies the degradation
// transition itself: locks drop, the resident set carries over into the
// WS fallback (no refault storm), and later directives are ignored.
func TestDegradeReleasesLocksAndWarmsFallback(t *testing.T) {
	p := NewCD(SelectLevel(2), 2)
	p.Check = &CheckConfig{MaxPage: 16, FallbackTau: 100}
	p.Alloc(alloc("10", directive.Arm{PI: 1, X: 8}))
	for i := 0; i < 5; i++ {
		p.Ref(mem.Page(i))
	}
	p.Lock(trace.LockSet{PJ: 1, Site: 0, Pages: []mem.Page{0, 1}})
	if p.LockedPages() != 2 {
		t.Fatalf("locked = %d, want 2", p.LockedPages())
	}
	before := p.Resident()

	p.Alloc(alloc("BAD", directive.Arm{PI: 1, X: 99})) // violates MaxPage
	if !p.Degraded() {
		t.Fatal("expected degradation")
	}
	if p.LockedPages() != 0 {
		t.Errorf("degradation left %d pages locked", p.LockedPages())
	}
	if p.Resident() != before {
		t.Errorf("resident changed across degradation: %d -> %d", before, p.Resident())
	}
	// Warmed pages are hits, new pages fault.
	for i := 0; i < 5; i++ {
		if p.Ref(mem.Page(i)) {
			t.Errorf("page %d refaulted after warm handoff", i)
		}
	}
	if !p.Ref(mem.Page(9)) {
		t.Error("unseen page did not fault in fallback")
	}
	// Further directives are no-ops in degraded mode.
	p.Alloc(alloc("10", directive.Arm{PI: 1, X: 2}))
	p.Lock(trace.LockSet{PJ: 1, Site: 1, Pages: []mem.Page{2}})
	if p.LockedPages() != 0 {
		t.Error("degraded policy accepted a LOCK")
	}
}

// TestDegradeIdempotentAndHook checks the Degrade hook fires exactly once
// with the first reason.
func TestDegradeIdempotentAndHook(t *testing.T) {
	p := NewCD(SelectLevel(2), 2)
	p.Check = &CheckConfig{MaxPage: 16}
	var reasons []string
	p.Hooks = &CDHooks{Degrade: func(r string) { reasons = append(reasons, r) }}

	p.Alloc(alloc("A"))                                // first violation: empty chain
	p.Alloc(alloc("B", directive.Arm{PI: 1, X: 9999})) // would be a second
	if len(reasons) != 1 {
		t.Fatalf("Degrade hook fired %d times, want 1", len(reasons))
	}
	if p.DegradedReason() != reasons[0] {
		t.Errorf("reason mismatch: %q vs hook %q", p.DegradedReason(), reasons[0])
	}
	if !strings.Contains(reasons[0], "empty else-chain") {
		t.Errorf("kept reason %q is not the first violation", reasons[0])
	}
}

// TestResetClearsDegradation verifies a degraded policy is reusable for a
// fresh run after Reset, with checking still armed.
func TestResetClearsDegradation(t *testing.T) {
	p := NewCD(SelectLevel(2), 2)
	p.Check = &CheckConfig{MaxPage: 16}
	p.Alloc(alloc("A")) // degrade
	if !p.Degraded() {
		t.Fatal("setup: expected degradation")
	}
	p.Reset()
	if p.Degraded() || p.DegradedReason() != "" {
		t.Error("Reset did not clear degradation")
	}
	if p.Check == nil {
		t.Error("Reset dropped the CheckConfig")
	}
	// Valid directives are honored again...
	p.Alloc(alloc("10", directive.Arm{PI: 1, X: 4}))
	if p.Allocation() != 4 {
		t.Errorf("allocation = %d, want 4", p.Allocation())
	}
	// ...and violations degrade again.
	p.Alloc(alloc("B"))
	if !p.Degraded() {
		t.Error("checking disarmed after Reset")
	}
}

// TestWSWarm verifies the warm handoff primitive: warmed pages count as
// resident exactly once and expire like normally referenced pages.
func TestWSWarm(t *testing.T) {
	p := NewWS(2)
	p.Warm([]mem.Page{1, 2, 1}) // duplicate must not double-count
	if p.Resident() != 2 {
		t.Fatalf("resident after warm = %d, want 2", p.Resident())
	}
	if p.Ref(1) {
		t.Error("warmed page faulted")
	}
	// One more reference ages page 2 (warmed, never re-referenced) out of
	// the τ=2 window; the re-referenced page 1 survives.
	p.Ref(3)
	if p.Resident() != 2 { // {1, 3} — page 2 expired
		t.Errorf("resident after expiry = %d, want 2", p.Resident())
	}
	if !p.Ref(2) {
		t.Error("expired warmed page did not refault")
	}
}

// TestReclaim verifies the capacity-shrink path used by the chaos
// machine-pressure fault: unlocked pages go first, then locked pages via
// forced release, and a degraded policy refuses to reclaim.
func TestReclaim(t *testing.T) {
	p := NewCD(SelectLevel(2), 2)
	p.Alloc(alloc("10", directive.Arm{PI: 1, X: 8}))
	for i := 0; i < 6; i++ {
		p.Ref(mem.Page(i))
	}
	p.Lock(trace.LockSet{PJ: 1, Site: 0, Pages: []mem.Page{0, 1}})

	if got := p.Reclaim(5); got != 5 {
		t.Fatalf("Reclaim(5) = %d, want 5", got)
	}
	if p.Resident() != 1 {
		t.Errorf("resident after reclaim = %d, want 1", p.Resident())
	}
	if p.LockReleases != 1 {
		t.Errorf("LockReleases = %d, want 1 (4 unlocked + 1 forced)", p.LockReleases)
	}
	// Reclaim beyond what is held returns what it got.
	if got := p.Reclaim(10); got != 1 {
		t.Errorf("Reclaim(10) = %d, want 1", got)
	}

	d := NewCD(SelectLevel(2), 2)
	d.Check = &CheckConfig{MaxPage: 16}
	d.Ref(0)
	d.Alloc(alloc("X")) // degrade
	if got := d.Reclaim(3); got != 0 {
		t.Errorf("degraded Reclaim = %d, want 0", got)
	}
}
