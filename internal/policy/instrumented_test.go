package policy

import (
	"sync"
	"testing"

	"cdmm/internal/mem"
	"cdmm/internal/obs"
	"cdmm/internal/trace"
)

func TestInstrumentedCounters(t *testing.T) {
	reg := obs.NewRegistry()
	p := Instrument(NewLRU(2), reg)

	for _, pg := range []mem.Page{1, 2, 3, 1} {
		p.Ref(pg)
	}
	p.Lock(trace.LockSet{PJ: 1, Site: 1, Pages: []mem.Page{1}})
	p.Unlock([]mem.Page{1})
	p.Reset()

	// Fault count comes from an identical uninstrumented run so the test
	// asserts wrapper bookkeeping, not LRU behavior.
	q := NewLRU(2)
	faults := int64(0)
	for _, pg := range []mem.Page{1, 2, 3, 1} {
		if q.Ref(pg) {
			faults++
		}
	}
	want := map[string]int64{
		"policy_lru_m_2_refs":    4,
		"policy_lru_m_2_faults":  faults,
		"policy_lru_m_2_locks":   1,
		"policy_lru_m_2_unlocks": 1,
		"policy_lru_m_2_resets":  1,
	}
	for name, w := range want {
		if got := reg.Counter(name).Value(); got != w {
			t.Errorf("%s = %d, want %d", name, got, w)
		}
	}
}

func TestInstrumentedPreservesCharging(t *testing.T) {
	reg := obs.NewRegistry()
	// LRU is a fixed-partition policy: charged the full partition even
	// when fewer pages are resident. The wrapper must not change that.
	bare := NewLRU(8)
	wrapped := Instrument(NewLRU(8), reg)
	bare.Ref(1)
	wrapped.Ref(1)
	if Charge(wrapped) != Charge(bare) {
		t.Errorf("wrapped charge %d != bare charge %d", Charge(wrapped), Charge(bare))
	}
	if Charge(wrapped) != 8 {
		t.Errorf("LRU(8) with 1 resident page must be charged 8, got %d", Charge(wrapped))
	}

	// WS is variable-partition: charged its resident set.
	ws := Instrument(NewWS(100), reg)
	ws.Ref(1)
	ws.Ref(2)
	if Charge(ws) != 2 {
		t.Errorf("WS with 2 resident pages must be charged 2, got %d", Charge(ws))
	}
}

func TestInstrumentedUnwrapAndAsCD(t *testing.T) {
	reg := obs.NewRegistry()
	cd := NewCD(SelectLevel(1), 2)
	wrapped := Instrument(cd, reg)
	if got := AsCD(wrapped); got != cd {
		t.Errorf("AsCD through wrapper = %v, want the inner CD", got)
	}
	if got := AsCD(Instrument(NewLRU(4), reg)); got != nil {
		t.Errorf("AsCD on wrapped LRU = %v, want nil", got)
	}
	if wrapped.Unwrap() != Policy(cd) {
		t.Error("Unwrap must return the inner policy")
	}
}

func TestInstrumentedBehavesIdentically(t *testing.T) {
	reg := obs.NewRegistry()
	bare := NewWS(3)
	wrapped := Instrument(NewWS(3), reg)
	pages := []mem.Page{1, 2, 3, 4, 1, 2, 5, 1}
	for _, pg := range pages {
		bf := bare.Ref(pg)
		wf := wrapped.Ref(pg)
		if bf != wf {
			t.Fatalf("page %d: bare fault=%v wrapped fault=%v", pg, bf, wf)
		}
		if bare.Resident() != wrapped.Resident() {
			t.Fatalf("page %d: resident %d vs %d", pg, bare.Resident(), wrapped.Resident())
		}
	}
	if wrapped.Name() != bare.Name() {
		t.Errorf("wrapper must not change the policy name: %q vs %q", wrapped.Name(), bare.Name())
	}
}

// TestInstrumentedConcurrent drives several Instrumented wrappers (each
// with its own inner policy, sharing one registry and therefore one set
// of counters) from parallel goroutines and checks the counters sum
// exactly — the atomic-counter guarantee the engine's parallel runs rely
// on. Run with -race to also prove the wrapper adds no unsynchronized
// state.
func TestInstrumentedConcurrent(t *testing.T) {
	reg := obs.NewRegistry()
	const workers = 8
	const refs = 5000

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := Instrument(NewLRU(4), reg)
			p.Reset()
			for i := 0; i < refs; i++ {
				p.Ref(mem.Page(i % 16))
			}
			p.Lock(trace.LockSet{PJ: 1, Site: 1, Pages: []mem.Page{1}})
			p.Unlock([]mem.Page{1})
		}()
	}
	wg.Wait()

	// Every worker's inner LRU(4) over the 16-page cycle faults on every
	// reference (distance 16 > 4), so the fault counter is exact too.
	want := map[string]int64{
		"policy_lru_m_4_refs":    workers * refs,
		"policy_lru_m_4_faults":  workers * refs,
		"policy_lru_m_4_locks":   workers,
		"policy_lru_m_4_unlocks": workers,
		"policy_lru_m_4_resets":  workers,
	}
	for name, w := range want {
		if got := reg.Counter(name).Value(); got != w {
			t.Errorf("%s = %d, want %d", name, got, w)
		}
	}
}
