package policy

import (
	"fmt"

	"cdmm/internal/mem"
)

// WS is Denning's Working Set policy: the resident set at virtual time t
// is exactly the set of pages referenced in the window (t-τ, t], where
// virtual time advances one unit per reference. A reference to a page
// outside the working set faults; pages leave the set when unreferenced
// for τ time units.
//
// Per-page state is kept in dense slot arrays and the expiry window in a
// ring buffer, so the steady-state reference path touches no maps and
// allocates nothing.
type WS struct {
	noDirectives
	tau  int64
	name string
	now  int64
	idx  pageIndex
	// seenAt[s] is 1 + the latest reference time of slot s while its page
	// is in the working set, 0 when it is not.
	seenAt []int64
	// win is a ring buffer of (time, slot) reference records used to
	// expire pages lazily; resident tracks |W(t, τ)| incrementally.
	win             []wsRecord
	winHead, winLen int
	resident        int

	// onExpire, when set, is called with the slot of each page that
	// leaves the working set (used by the Damped WS wrapper).
	onExpire func(int32)
	// onEvict is the page-granular expiry hook (see EvictObserver).
	onEvict func(mem.Page)
}

type wsRecord struct {
	t    int64
	slot int32
}

// NewWS returns a Working Set policy with window size tau (in references).
func NewWS(tau int) *WS {
	if tau < 1 {
		tau = 1
	}
	return &WS{tau: int64(tau), name: fmt.Sprintf("WS(tau=%d)", tau)}
}

// Name implements Policy.
func (p *WS) Name() string { return p.name }

// Tau returns the window size.
func (p *WS) Tau() int { return int(p.tau) }

// HintPages implements PageHinter.
func (p *WS) HintPages(maxPage mem.Page, distinct int) { p.idx.hint(maxPage, distinct) }

// SetEvictHook implements EvictObserver: the hook fires when a page
// expires out of the working set.
func (p *WS) SetEvictHook(fn func(mem.Page)) { p.onEvict = fn }

// slotOf returns pg's dense slot, growing the state array in step with
// the index.
func (p *WS) slotOf(pg mem.Page) int32 {
	s := p.idx.slot(pg)
	if int(s) >= len(p.seenAt) {
		p.seenAt = append(p.seenAt, 0)
	}
	return s
}

// pushWin appends a record at the ring's tail, doubling when full.
func (p *WS) pushWin(t int64, s int32) {
	if p.winLen == len(p.win) {
		grown := make([]wsRecord, max(2*len(p.win), 64))
		for i := 0; i < p.winLen; i++ {
			grown[i] = p.win[(p.winHead+i)&(len(p.win)-1)]
		}
		p.win = grown
		p.winHead = 0
	}
	p.win[(p.winHead+p.winLen)&(len(p.win)-1)] = wsRecord{t: t, slot: s}
	p.winLen++
}

// Ref implements Policy. A reference at time t faults iff its page is not
// in W(t-1, τ), i.e. iff the backward inter-reference interval exceeds τ
// (Denning's definition); after the reference, the resident set is W(t, τ).
//
// The membership test needs the window expired to time t-1, which the
// trailing expireTo of the previous reference already established: both
// use the cutoff (t-1)-τ, and the only records pushed in between (Warm's,
// stamped at the current instant) can never be that old.
func (p *WS) Ref(pg mem.Page) bool {
	p.now++
	s := p.slotOf(pg)
	resident := p.seenAt[s] != 0
	if !resident {
		p.resident++
	}
	p.seenAt[s] = p.now + 1
	p.pushWin(p.now, s)
	p.expireTo(p.now) // establish W(t, τ) for Resident()
	return !resident
}

// Warm seeds the working set with pages treated as referenced at the
// current virtual time without advancing the clock or counting faults. A
// degraded CD policy uses it to hand its resident set to the WS fallback
// so the hand-off itself charges no refault storm. Pages already recorded
// at the current instant are skipped (a duplicate window record for the
// same (t, page) pair would double-decrement the resident count when it
// expires).
func (p *WS) Warm(pages []mem.Page) {
	for _, pg := range pages {
		s := p.slotOf(pg)
		v := p.seenAt[s]
		if v == p.now+1 {
			continue
		}
		if v == 0 {
			p.resident++
		}
		p.seenAt[s] = p.now + 1
		p.pushWin(p.now, s)
	}
}

// expireTo removes pages whose last reference fell outside the window
// (x - τ, x].
func (p *WS) expireTo(x int64) {
	cutoff := x - p.tau // records with t <= cutoff are outside the window
	for p.winLen > 0 {
		rec := p.win[p.winHead]
		if rec.t > cutoff {
			break
		}
		p.winHead = (p.winHead + 1) & (len(p.win) - 1)
		p.winLen--
		if p.seenAt[rec.slot] == rec.t+1 {
			// No later reference kept the page in the working set.
			p.seenAt[rec.slot] = 0
			p.resident--
			if p.onExpire != nil {
				p.onExpire(rec.slot)
			}
			if p.onEvict != nil {
				p.onEvict(p.idx.pageOf(rec.slot))
			}
		}
	}
}

// Resident implements Policy.
func (p *WS) Resident() int { return p.resident }

// Reset implements Policy.
func (p *WS) Reset() {
	p.now = 0
	for i := range p.seenAt {
		p.seenAt[i] = 0
	}
	p.winHead, p.winLen = 0, 0
	p.resident = 0
}
