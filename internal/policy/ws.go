package policy

import (
	"fmt"

	"cdmm/internal/mem"
)

// WS is Denning's Working Set policy: the resident set at virtual time t
// is exactly the set of pages referenced in the window (t-τ, t], where
// virtual time advances one unit per reference. A reference to a page
// outside the working set faults; pages leave the set when unreferenced
// for τ time units.
type WS struct {
	noDirectives
	tau     int64
	now     int64
	lastRef map[mem.Page]int64
	// window is a FIFO of (time, page) reference records used to expire
	// pages lazily; resident tracks |W(t, τ)| incrementally.
	window   []wsRecord
	resident int

	// onExpire, when set, is called for each page that leaves the working
	// set (used by the Damped WS wrapper).
	onExpire func(mem.Page)
}

type wsRecord struct {
	t    int64
	page mem.Page
}

// NewWS returns a Working Set policy with window size tau (in references).
func NewWS(tau int) *WS {
	if tau < 1 {
		tau = 1
	}
	return &WS{tau: int64(tau), lastRef: map[mem.Page]int64{}}
}

// Name implements Policy.
func (p *WS) Name() string { return fmt.Sprintf("WS(tau=%d)", p.tau) }

// Tau returns the window size.
func (p *WS) Tau() int { return int(p.tau) }

// Ref implements Policy. A reference at time t faults iff its page is not
// in W(t-1, τ), i.e. iff the backward inter-reference interval exceeds τ
// (Denning's definition); after the reference, the resident set is W(t, τ).
func (p *WS) Ref(pg mem.Page) bool {
	p.now++
	p.expireTo(p.now - 1) // establish W(t-1, τ) for the membership test
	_, resident := p.lastRef[pg]
	if !resident {
		p.resident++
	}
	p.lastRef[pg] = p.now
	p.window = append(p.window, wsRecord{t: p.now, page: pg})
	p.expireTo(p.now) // establish W(t, τ) for Resident()
	return !resident
}

// Warm seeds the working set with pages treated as referenced at the
// current virtual time without advancing the clock or counting faults. A
// degraded CD policy uses it to hand its resident set to the WS fallback
// so the hand-off itself charges no refault storm. Pages already recorded
// at the current instant are skipped (a duplicate window record for the
// same (t, page) pair would double-decrement the resident count when it
// expires).
func (p *WS) Warm(pages []mem.Page) {
	for _, pg := range pages {
		last, ok := p.lastRef[pg]
		if ok && last == p.now {
			continue
		}
		if !ok {
			p.resident++
		}
		p.lastRef[pg] = p.now
		p.window = append(p.window, wsRecord{t: p.now, page: pg})
	}
}

// expireTo removes pages whose last reference fell outside the window
// (x - τ, x].
func (p *WS) expireTo(x int64) {
	cutoff := x - p.tau // records with t <= cutoff are outside the window
	for len(p.window) > 0 && p.window[0].t <= cutoff {
		rec := p.window[0]
		p.window = p.window[1:]
		if p.lastRef[rec.page] == rec.t {
			// No later reference kept the page in the working set.
			delete(p.lastRef, rec.page)
			p.resident--
			if p.onExpire != nil {
				p.onExpire(rec.page)
			}
		}
	}
}

// Resident implements Policy.
func (p *WS) Resident() int { return p.resident }

// Reset implements Policy.
func (p *WS) Reset() {
	p.now = 0
	p.lastRef = map[mem.Page]int64{}
	p.window = nil
	p.resident = 0
}
