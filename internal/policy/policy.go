// Package policy implements the memory-management policies the paper
// compares: LRU with fixed allocation, the Working Set policy (WS), and
// the Compiler Directed policy (CD) driven by ALLOCATE/LOCK/UNLOCK
// directives. FIFO and Belady's OPT are included as additional baselines
// for the ablation experiments.
//
// A Policy consumes the event stream of a trace: page references plus,
// for CD, the directive events. The vmsim package drives policies over
// traces and accumulates the paper's three performance indexes — page
// faults (PF), average memory (MEM) and space-time cost (ST).
package policy

import (
	"cdmm/internal/mem"
	"cdmm/internal/trace"
)

// FaultService is the page-fault service time in memory references,
// as assumed in the paper's §5 (2000 references per fault).
const FaultService = 2000

// Policy is a replacement/allocation policy processing one program's
// event stream.
type Policy interface {
	// Name identifies the policy for reports.
	Name() string
	// Ref processes a page reference and reports whether it faulted.
	Ref(p mem.Page) bool
	// Resident returns the current resident-set size in pages.
	Resident() int
	// Alloc processes an ALLOCATE directive (no-op for directive-blind
	// policies).
	Alloc(d trace.AllocDirective)
	// Lock processes a LOCK directive's resolved page set.
	Lock(ls trace.LockSet)
	// Unlock processes an UNLOCK directive's page set.
	Unlock(pages []mem.Page)
	// Reset returns the policy to its initial state so it can replay
	// another trace.
	Reset()
}

// Charger is implemented by policies whose space-time charge differs from
// their resident-set size. Fixed-partition policies (LRU, FIFO, OPT) are
// charged their whole partition for the program's entire virtual time —
// the frames are reserved whether or not they are filled. Variable-
// allocation policies (WS, CD) are charged what they actually hold: WS its
// working set, CD its demand-assigned resident set under the directive
// ceiling.
type Charger interface {
	// Charged returns the number of pages currently allocated to the
	// program for space-time accounting.
	Charged() int
}

// Charge returns the space-time charge for a policy: Charged() when
// implemented, the resident-set size otherwise.
func Charge(p Policy) int {
	if c, ok := p.(Charger); ok {
		return c.Charged()
	}
	return p.Resident()
}

// AsCD returns the CD policy underlying p, seeing through any chain of
// wrappers that expose Unwrap (e.g. Instrumented), or nil when p is not
// driven by a CD policy. The simulator uses it to surface CD-specific
// counters and hook points regardless of decoration.
func AsCD(p Policy) *CD {
	for p != nil {
		if cd, ok := p.(*CD); ok {
			return cd
		}
		u, ok := p.(interface{ Unwrap() Policy })
		if !ok {
			return nil
		}
		p = u.Unwrap()
	}
	return nil
}

// noDirectives provides no-op directive handling for LRU/FIFO/WS/OPT.
type noDirectives struct{}

func (noDirectives) Alloc(trace.AllocDirective) {}
func (noDirectives) Lock(trace.LockSet)         {}
func (noDirectives) Unlock([]mem.Page)          {}

// lruList is an intrusive doubly-linked LRU list over pages with O(1)
// lookup, used by the LRU and CD policies.
type lruList struct {
	nodes map[mem.Page]*lruNode
	head  *lruNode // most recently used
	tail  *lruNode // least recently used
}

type lruNode struct {
	page       mem.Page
	prev, next *lruNode
	locked     bool
	pj         int // lock priority (valid when locked)
	site       int // lock site (valid when locked)
}

func newLRUList() *lruList {
	return &lruList{nodes: map[mem.Page]*lruNode{}}
}

func (l *lruList) len() int { return len(l.nodes) }

func (l *lruList) contains(p mem.Page) bool {
	_, ok := l.nodes[p]
	return ok
}

func (l *lruList) get(p mem.Page) *lruNode { return l.nodes[p] }

// touch moves p to the MRU position, inserting it if absent.
func (l *lruList) touch(p mem.Page) *lruNode {
	n, ok := l.nodes[p]
	if ok {
		l.unlink(n)
	} else {
		n = &lruNode{page: p}
		l.nodes[p] = n
	}
	l.pushFront(n)
	return n
}

func (l *lruList) pushFront(n *lruNode) {
	n.prev = nil
	n.next = l.head
	if l.head != nil {
		l.head.prev = n
	}
	l.head = n
	if l.tail == nil {
		l.tail = n
	}
}

func (l *lruList) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

// remove deletes p from the list.
func (l *lruList) remove(p mem.Page) {
	if n, ok := l.nodes[p]; ok {
		l.unlink(n)
		delete(l.nodes, p)
	}
}

// evictLRU removes and returns the least recently used unlocked page.
// It returns false if every resident page is locked.
func (l *lruList) evictLRU() (mem.Page, bool) {
	for n := l.tail; n != nil; n = n.prev {
		if !n.locked {
			l.unlink(n)
			delete(l.nodes, n.page)
			return n.page, true
		}
	}
	return 0, false
}

// lowestPriorityLocked returns the locked node with the largest PJ
// ("pages with higher PJ values have lower priority and they are unlocked
// first by the operating system"), or nil if nothing is locked.
func (l *lruList) lowestPriorityLocked() *lruNode {
	var best *lruNode
	for n := l.tail; n != nil; n = n.prev {
		if n.locked && (best == nil || n.pj > best.pj) {
			best = n
		}
	}
	return best
}

func (l *lruList) reset() {
	l.nodes = map[mem.Page]*lruNode{}
	l.head, l.tail = nil, nil
}
