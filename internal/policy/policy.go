// Package policy implements the memory-management policies the paper
// compares: LRU with fixed allocation, the Working Set policy (WS), and
// the Compiler Directed policy (CD) driven by ALLOCATE/LOCK/UNLOCK
// directives. FIFO and Belady's OPT are included as additional baselines
// for the ablation experiments.
//
// A Policy consumes the event stream of a trace: page references plus,
// for CD, the directive events. The vmsim package drives policies over
// traces and accumulates the paper's three performance indexes — page
// faults (PF), average memory (MEM) and space-time cost (ST).
package policy

import (
	"cdmm/internal/mem"
	"cdmm/internal/trace"
)

// FaultService is the page-fault service time in memory references,
// as assumed in the paper's §5 (2000 references per fault).
const FaultService = 2000

// Policy is a replacement/allocation policy processing one program's
// event stream.
type Policy interface {
	// Name identifies the policy for reports.
	Name() string
	// Ref processes a page reference and reports whether it faulted.
	Ref(p mem.Page) bool
	// Resident returns the current resident-set size in pages.
	Resident() int
	// Alloc processes an ALLOCATE directive (no-op for directive-blind
	// policies).
	Alloc(d trace.AllocDirective)
	// Lock processes a LOCK directive's resolved page set.
	Lock(ls trace.LockSet)
	// Unlock processes an UNLOCK directive's page set.
	Unlock(pages []mem.Page)
	// Reset returns the policy to its initial state so it can replay
	// another trace.
	Reset()
}

// Charger is implemented by policies whose space-time charge differs from
// their resident-set size. Fixed-partition policies (LRU, FIFO, OPT) are
// charged their whole partition for the program's entire virtual time —
// the frames are reserved whether or not they are filled. Variable-
// allocation policies (WS, CD) are charged what they actually hold: WS its
// working set, CD its demand-assigned resident set under the directive
// ceiling.
type Charger interface {
	// Charged returns the number of pages currently allocated to the
	// program for space-time accounting.
	Charged() int
}

// Charge returns the space-time charge for a policy: Charged() when
// implemented, the resident-set size otherwise.
func Charge(p Policy) int {
	if c, ok := p.(Charger); ok {
		return c.Charged()
	}
	return p.Resident()
}

// AsCD returns the CD policy underlying p, seeing through any chain of
// wrappers that expose Unwrap (e.g. Instrumented), or nil when p is not
// driven by a CD policy. The simulator uses it to surface CD-specific
// counters and hook points regardless of decoration.
func AsCD(p Policy) *CD {
	for p != nil {
		if cd, ok := p.(*CD); ok {
			return cd
		}
		u, ok := p.(interface{ Unwrap() Policy })
		if !ok {
			return nil
		}
		p = u.Unwrap()
	}
	return nil
}

// Stepper is an optional hot-path interface: Step performs Ref and also
// returns the post-reference Resident and Charge values, so the
// simulation loop pays one dynamic dispatch per reference instead of
// three. Step must be exactly equivalent to calling Ref, then Resident,
// then Charge.
type Stepper interface {
	Step(pg mem.Page) (fault bool, resident, charged int)
}

// EvictObserver is implemented by policies that can report each page
// leaving the resident set to a hook. The fault-attribution runner
// installs a hook to charge evictions (and the faults they later cause)
// to the source site executing at eviction time; a nil hook — the
// default — costs one pointer check per eviction and nothing per
// reference, so the un-instrumented path is unaffected. The hook
// survives Reset; install nil to remove it.
type EvictObserver interface {
	SetEvictHook(func(pg mem.Page))
}

// PageHinter is implemented by policies whose dense page-indexed state
// benefits from knowing the trace's page universe before a replay: the
// simulator calls HintPages once per run so the first pass over a trace
// assigns page slots without growth reallocations. Hints are advisory —
// a policy must behave identically without one.
type PageHinter interface {
	// HintPages announces the largest page number the coming trace
	// references and its distinct-page count.
	HintPages(maxPage mem.Page, distinct int)
}

// noDirectives provides no-op directive handling for LRU/FIFO/WS/OPT.
type noDirectives struct{}

func (noDirectives) Alloc(trace.AllocDirective) {}
func (noDirectives) Lock(trace.LockSet)         {}
func (noDirectives) Unlock([]mem.Page)          {}

// lruList is an intrusive doubly-linked LRU list over dense page slots:
// prev/next are parallel int32 arrays indexed by slot, so a reference
// costs an array lookup and a few pointer-free writes instead of a map
// probe and a heap node. Used by the LRU and CD policies. Slot state
// (lock bit, PJ, site) lives in parallel arrays too; reset() clears
// per-run state while keeping every allocation for the next replay.
type lruList struct {
	idx        pageIndex
	prev, next []int32 // per slot; -1 terminates, prev == notIn marks non-resident
	locked     []bool
	pj         []int32 // lock priority (valid while locked)
	site       []int32 // lock site (valid while locked)
	head, tail int32   // most/least recently used; -1 when empty
	n          int     // resident count
}

// notIn in prev[s] marks slot s as not resident, so the residency test
// reads the same cache line the list operations are about to touch.
const notIn = -2

func newLRUList() *lruList {
	return &lruList{head: -1, tail: -1}
}

// hint pre-sizes the page index (see PageHinter).
func (l *lruList) hint(maxPage mem.Page, distinct int) {
	l.idx.hint(maxPage, distinct)
}

// slotOf returns p's dense slot, growing the per-slot arrays when the
// index assigns a fresh one (slot ids are handed out sequentially).
func (l *lruList) slotOf(p mem.Page) int32 {
	s := l.idx.slot(p)
	if int(s) >= len(l.prev) {
		l.prev = append(l.prev, notIn)
		l.next = append(l.next, -1)
		l.locked = append(l.locked, false)
		l.pj = append(l.pj, 0)
		l.site = append(l.site, 0)
	}
	return s
}

func (l *lruList) len() int { return l.n }

// lookupResident returns p's slot when p is resident, -1 otherwise.
func (l *lruList) lookupResident(p mem.Page) int32 {
	if s := l.idx.lookup(p); s >= 0 && l.prev[s] != notIn {
		return s
	}
	return -1
}

// touchSlot moves a resident slot to the MRU position.
func (l *lruList) touchSlot(s int32) {
	if l.head == s {
		return
	}
	// s is resident but not the head, so it has a predecessor and the
	// list stays non-empty: the head/tail branches of unlink/pushFront
	// collapse.
	prev, next := l.prev, l.next
	p := prev[s]
	nx := next[s]
	next[p] = nx
	if nx >= 0 {
		prev[nx] = p
	} else {
		l.tail = p
	}
	prev[s] = -1
	next[s] = l.head
	prev[l.head] = s
	l.head = s
}

// insert makes p resident at the MRU position with a clean lock state.
// p must not be resident.
func (l *lruList) insert(p mem.Page) int32 {
	s := l.slotOf(p)
	l.locked[s] = false
	l.pj[s] = 0
	l.site[s] = 0
	l.n++
	l.pushFront(s)
	return s
}

func (l *lruList) pushFront(s int32) {
	l.prev[s] = -1
	l.next[s] = l.head
	if l.head >= 0 {
		l.prev[l.head] = s
	}
	l.head = s
	if l.tail < 0 {
		l.tail = s
	}
}

func (l *lruList) unlink(s int32) {
	if p := l.prev[s]; p >= 0 {
		l.next[p] = l.next[s]
	} else {
		l.head = l.next[s]
	}
	if nx := l.next[s]; nx >= 0 {
		l.prev[nx] = l.prev[s]
	} else {
		l.tail = l.prev[s]
	}
	// prev[s]/next[s] are left stale: every caller either relinks the slot
	// (touchSlot) or marks it non-resident (removeSlot) immediately.
}

// removeSlot evicts a resident slot.
func (l *lruList) removeSlot(s int32) {
	l.unlink(s)
	l.prev[s] = notIn
	l.n--
}

// remove deletes p from the list if resident.
func (l *lruList) remove(p mem.Page) {
	if s := l.lookupResident(p); s >= 0 {
		l.removeSlot(s)
	}
}

// evictLRU removes and returns the least recently used unlocked page.
// It returns false if every resident page is locked.
func (l *lruList) evictLRU() (mem.Page, bool) {
	for s := l.tail; s >= 0; s = l.prev[s] {
		if !l.locked[s] {
			l.removeSlot(s)
			return l.idx.pageOf(s), true
		}
	}
	return 0, false
}

// lowestPriorityLocked returns the locked slot with the largest PJ
// ("pages with higher PJ values have lower priority and they are unlocked
// first by the operating system"), or -1 if nothing is locked. Ties keep
// the slot closest to the LRU end, matching the historical scan order.
func (l *lruList) lowestPriorityLocked() int32 {
	best := int32(-1)
	for s := l.tail; s >= 0; s = l.prev[s] {
		if l.locked[s] && (best < 0 || l.pj[s] > l.pj[best]) {
			best = s
		}
	}
	return best
}

// reset clears residency and lock state while keeping the page index and
// array capacity, so replaying another trace allocates nothing.
func (l *lruList) reset() {
	for i := range l.prev {
		l.prev[i] = notIn
	}
	for i := range l.locked {
		l.locked[i] = false
	}
	l.head, l.tail = -1, -1
	l.n = 0
}
