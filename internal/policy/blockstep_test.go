package policy

import (
	"fmt"
	"math/rand"
	"testing"

	"cdmm/internal/mem"
)

// Block-stepping differential: StepBlock must be *exactly* the fold of
// Step over the block — same faults, same eviction sequence, same
// MemSum/SpaceTime/VTime, same running MaxResident — and both must match
// the map-based oracle driven through the generic Ref/Resident/Charge
// path. The streams reuse the randomized op generator of
// differential_test.go (locality + wild sparse pages + CD directives)
// and the blocks are cut at every directive and at randomized caps, so
// short blocks, directive-only blocks and cap-split runs are all hit.

// accumGeneric advances out by one reference through the generic
// three-call path (the vmsim fallback loop for non-Stepper policies).
func accumGeneric(p Policy, pg mem.Page, out *BlockResult) {
	fault := p.Ref(pg)
	dt := int64(1)
	if fault {
		out.Faults++
		dt += FaultService
	}
	if r := p.Resident(); r > out.MaxResident {
		out.MaxResident = r
	}
	m := Charge(p)
	out.VTime += dt
	out.SpaceTime += int64(m) * dt
	out.MemSum += int64(m)
}

// accumStep advances out by one reference through the Stepper fast path.
func accumStep(st Stepper, pg mem.Page, out *BlockResult) {
	fault, r, m := st.Step(pg)
	dt := int64(1)
	if fault {
		out.Faults++
		dt += FaultService
	}
	if r > out.MaxResident {
		out.MaxResident = r
	}
	out.VTime += dt
	out.SpaceTime += int64(m) * dt
	out.MemSum += int64(m)
}

// collectEvictions installs an eviction recorder when the policy
// observes evictions; the returned slice pointer fills as the run goes.
func collectEvictions(p Policy) *[]mem.Page {
	seq := &[]mem.Page{}
	if eo, ok := p.(EvictObserver); ok {
		eo.SetEvictHook(func(pg mem.Page) { *seq = append(*seq, pg) })
	}
	return seq
}

// runBlockDiff replays ops through four instances — block-stepped with
// an eviction recorder, block-stepped bare (no hooks, so policies with
// an observer-free fast path take it), single-stepped, and the map
// oracle — and asserts identical indexes and identical eviction
// sequences. maxBlock caps the reference runs handed to StepBlock (0 =
// cut only at directives), mirroring CursorOpts.MaxBlock.
func runBlockDiff(t *testing.T, blocked, bare, stepped, oracle Policy, ops []diffOp, maxBlock int, tag string) {
	t.Helper()
	bst := blocked.(BlockStepper)
	bareBst := bare.(BlockStepper)
	st := stepped.(Stepper)
	evB := collectEvictions(blocked)
	evS := collectEvictions(stepped)

	var rb, rbb, rs, ro BlockResult
	var pages []mem.Page
	flush := func() {
		if len(pages) == 0 {
			return
		}
		bst.StepBlock(pages, &rb)
		bareBst.StepBlock(pages, &rbb)
		pages = pages[:0]
	}
	for _, op := range ops {
		switch op.kind {
		case opRef:
			pages = append(pages, op.page)
			if maxBlock > 0 && len(pages) >= maxBlock {
				flush()
			}
			accumStep(st, op.page, &rs)
			accumGeneric(oracle, op.page, &ro)
		case opAlloc:
			flush()
			blocked.Alloc(op.alloc)
			bare.Alloc(op.alloc)
			stepped.Alloc(op.alloc)
			oracle.Alloc(op.alloc)
		case opLock:
			flush()
			blocked.Lock(op.lock)
			bare.Lock(op.lock)
			stepped.Lock(op.lock)
			oracle.Lock(op.lock)
		case opUnlock:
			flush()
			blocked.Unlock(op.unlock)
			bare.Unlock(op.unlock)
			stepped.Unlock(op.unlock)
			oracle.Unlock(op.unlock)
		}
	}
	flush()

	if rb != rs {
		t.Fatalf("%s: StepBlock %+v != Step %+v", tag, rb, rs)
	}
	if rb != ro {
		t.Fatalf("%s: StepBlock %+v != oracle %+v", tag, rb, ro)
	}
	if rbb != rb {
		t.Fatalf("%s: unhooked StepBlock %+v != hooked StepBlock %+v", tag, rbb, rb)
	}
	if len(*evB) != len(*evS) {
		t.Fatalf("%s: eviction counts differ: block=%d step=%d", tag, len(*evB), len(*evS))
	}
	for i := range *evB {
		if (*evB)[i] != (*evS)[i] {
			t.Fatalf("%s: eviction %d differs: block=%d step=%d", tag, i, (*evB)[i], (*evS)[i])
		}
	}
}

// blockCases are the policies implementing BlockStepper.
func blockCases() []diffCase {
	var cases []diffCase
	for _, tc := range diffCases() {
		if _, ok := tc.dense().(BlockStepper); ok {
			cases = append(cases, tc)
		}
	}
	return cases
}

// TestBlockStepCoversAllSteppers guards the case list: every Stepper in
// the differential suite must also block-step, or the hot path silently
// loses its batching for that policy.
func TestBlockStepCoversAllSteppers(t *testing.T) {
	if len(blockCases()) == 0 {
		t.Fatal("no BlockStepper policies in the differential suite")
	}
	for _, tc := range diffCases() {
		p := tc.dense()
		_, isStep := p.(Stepper)
		_, isBlock := p.(BlockStepper)
		if isBlock && !isStep {
			t.Errorf("%s: BlockStepper without Stepper (no single-step oracle)", tc.name)
		}
	}
}

// TestBlockStepMatchesStepAndOracle is the core randomized differential
// across seeds and block caps, including the degenerate one-reference
// blocks and directive-heavy CD streams.
func TestBlockStepMatchesStepAndOracle(t *testing.T) {
	for _, tc := range blockCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				r := rand.New(rand.NewSource(seed))
				pages := genPages(r, 20+r.Intn(40))
				ops := genOps(r, 3000, pages, tc.directives)
				for _, maxBlock := range []int{0, 1, 7, 256} {
					runBlockDiff(t, tc.dense(), tc.dense(), tc.dense(), tc.oracle(), ops, maxBlock,
						fmt.Sprintf("seed=%d/max=%d", seed, maxBlock))
				}
			}
		})
	}
}

// TestBlockStepResetReuse replays stream A block-stepped, Resets, and
// replays stream B — the engine's policy-reuse pattern — against fresh
// single-stepped and oracle twins.
func TestBlockStepResetReuse(t *testing.T) {
	for _, tc := range blockCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(99))
			opsA := genOps(r, 2000, genPages(r, 30), tc.directives)
			opsB := genOps(r, 2000, genPages(r, 50), tc.directives)

			used := tc.dense()
			usedBst := used.(BlockStepper)
			var warm BlockResult
			for _, op := range opsA {
				if op.kind == opRef {
					usedBst.StepBlock([]mem.Page{op.page}, &warm)
				}
			}
			used.Reset()
			runBlockDiff(t, used, tc.dense(), tc.dense(), tc.oracle(), opsB, 64, "B-after-Reset")
		})
	}
}

// TestBlockStepSparseDenseOverlap walks StepBlock through the pageIndex
// sparse-then-dense growth window (see TestPolicySparseDenseOverlap).
func TestBlockStepSparseDenseOverlap(t *testing.T) {
	for _, tc := range blockCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(23))
			ops := overlapOps(r, tc.directives)
			runBlockDiff(t, tc.dense(), tc.dense(), tc.dense(), tc.oracle(), ops, 0, "overlap")
		})
	}
}
