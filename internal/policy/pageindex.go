package policy

import "cdmm/internal/mem"

// pageIndex assigns small dense slot ids to pages on first touch so the
// policies can keep their per-page state in flat arrays instead of maps.
// Slot assignments are stable for the lifetime of the policy — Reset
// clears per-run state but keeps the page→slot mapping, so replaying the
// same trace reuses every allocation.
//
// Sparsity guard: the dense lookup table only grows while the page number
// stays within pageIndexFactor× the number of assigned slots (or
// pageIndexMinDense, whichever is larger). Pages beyond that window —
// e.g. chaos wild-pointer injections near 2^30 — take a compact map path
// instead, so one wild reference can never balloon the table to a
// MaxPage-sized array.
type pageIndex struct {
	dense  []int32            // page -> slot+1; 0 means unassigned
	sparse map[mem.Page]int32 // out-of-window pages -> slot
	pages  []mem.Page         // slot -> page
}

const (
	// pageIndexMinDense is the dense-table size always considered cheap
	// (4 KiB of int32s).
	pageIndexMinDense = 1 << 10
	// pageIndexFactor bounds how far the dense table may exceed the
	// number of assigned slots.
	pageIndexFactor = 8
)

// size returns the number of assigned slots.
func (x *pageIndex) size() int { return len(x.pages) }

// pageOf returns the page assigned to slot s.
func (x *pageIndex) pageOf(s int32) mem.Page { return x.pages[s] }

// lookup returns the slot of p, or -1 when p has never been indexed.
// A page covered by the dense table but unassigned there may still hold
// a sparse slot: it was first touched while outside the sparsity window,
// before growth extended the table past it. growDense migrates such
// entries, but the fallthrough keeps lookup correct on its own.
func (x *pageIndex) lookup(p mem.Page) int32 {
	if p >= 0 && int(p) < len(x.dense) {
		if v := x.dense[p]; v != 0 {
			return v - 1
		}
	}
	if s, ok := x.sparse[p]; ok {
		return s
	}
	return -1
}

// slot returns the slot of p, assigning the next free one on first use.
func (x *pageIndex) slot(p mem.Page) int32 {
	if s := x.lookup(p); s >= 0 {
		return s
	}
	s := int32(len(x.pages))
	x.pages = append(x.pages, p)
	if p >= 0 && (int(p) < len(x.dense) || int(p) < x.denseCap()) {
		if int(p) >= len(x.dense) {
			x.growDense(int(p) + 1)
		}
		x.dense[p] = s + 1
	} else {
		if x.sparse == nil {
			x.sparse = make(map[mem.Page]int32)
		}
		x.sparse[p] = s
	}
	return s
}

// denseCap is the largest dense table the current slot population
// justifies under the sparsity guard.
func (x *pageIndex) denseCap() int {
	c := pageIndexFactor * (len(x.pages) + 1)
	if c < pageIndexMinDense {
		c = pageIndexMinDense
	}
	return c
}

// growDense widens the dense table to hold at least need entries,
// doubling to amortize sequential first touches.
func (x *pageIndex) growDense(need int) {
	n := 2 * len(x.dense)
	if n < need {
		n = need
	}
	if n < pageIndexMinDense {
		n = pageIndexMinDense
	}
	nd := make([]int32, n)
	copy(nd, x.dense)
	x.dense = nd
	// Migrate sparse entries the wider table now covers, so pages that
	// arrived ahead of the growth keep taking the array path afterwards.
	for p, s := range x.sparse {
		if p >= 0 && int(p) < len(x.dense) {
			x.dense[p] = s + 1
			delete(x.sparse, p)
		}
	}
}

// hint pre-sizes the dense table for a trace whose largest page and
// distinct-page count are known, so the first replay assigns slots
// without growth reallocations. Hints outside the sparsity guard are
// ignored — such pages take the map path when they arrive.
func (x *pageIndex) hint(maxPage mem.Page, distinct int) {
	if maxPage < 0 || distinct <= 0 {
		return
	}
	need := int(maxPage) + 1
	limit := pageIndexFactor * distinct
	if limit < pageIndexMinDense {
		limit = pageIndexMinDense
	}
	if need <= limit && need > len(x.dense) {
		x.growDense(need)
	}
}
