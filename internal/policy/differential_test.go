package policy

import (
	"fmt"
	"math/rand"
	"testing"

	"cdmm/internal/directive"
	"cdmm/internal/mem"
	"cdmm/internal/trace"
)

// Randomized differential tests: every dense slot-array policy is driven
// in lockstep with its map-based oracle (oracle_test.go) over generated
// operation streams — references with locality plus wild sparse pages,
// and ALLOCATE/LOCK/UNLOCK directives for CD — asserting identical fault,
// Resident and Charge values after every single operation, across Reset
// reuse, and through the Stepper fast path.

const (
	opRef = iota
	opAlloc
	opLock
	opUnlock
)

type diffOp struct {
	kind   int
	page   mem.Page
	alloc  trace.AllocDirective
	lock   trace.LockSet
	unlock []mem.Page
}

// genPages builds a page universe: a contiguous dense core plus a few
// wild sparse page numbers that must take the pageIndex map path.
func genPages(r *rand.Rand, distinct int) []mem.Page {
	pages := make([]mem.Page, distinct)
	for i := range pages {
		pages[i] = mem.Page(i)
	}
	for i := 0; i < 3; i++ {
		pages = append(pages, mem.Page(1<<20+r.Intn(1<<12)))
	}
	return pages
}

// pickPage mixes locality (a sliding cluster) with uniform jumps so the
// streams exercise both hit-heavy and fault-heavy regimes.
func pickPage(r *rand.Rand, pages []mem.Page, base int) (mem.Page, int) {
	if r.Intn(10) == 0 {
		base = r.Intn(len(pages))
	}
	if r.Intn(10) < 7 {
		return pages[(base+r.Intn(8))%len(pages)], base
	}
	return pages[r.Intn(len(pages))], base
}

func genOps(r *rand.Rand, n int, pages []mem.Page, withDirectives bool) []diffOp {
	ops := make([]diffOp, 0, n)
	base := 0
	for i := 0; i < n; i++ {
		if withDirectives && r.Intn(12) == 0 {
			switch r.Intn(3) {
			case 0: // ALLOCATE with a 1-3 arm else-chain, outermost first
				nArms := 1 + r.Intn(3)
				arms := make([]directive.Arm, nArms)
				x := 2 + r.Intn(10) + 3*nArms
				for j := 0; j < nArms; j++ {
					arms[j] = directive.Arm{PI: nArms - j, X: x}
					x -= 1 + r.Intn(3)
					if x < 1 {
						x = 1
					}
				}
				ops = append(ops, diffOp{kind: opAlloc, alloc: trace.AllocDirective{
					Label: fmt.Sprintf("L%d", r.Intn(5)), Arms: arms,
				}})
			case 1:
				ps := make([]mem.Page, 1+r.Intn(4))
				for j := range ps {
					ps[j] = pages[r.Intn(len(pages))]
				}
				ops = append(ops, diffOp{kind: opLock, lock: trace.LockSet{
					PJ: 1 + r.Intn(4), Site: r.Intn(4), Pages: ps,
				}})
			case 2:
				ps := make([]mem.Page, 1+r.Intn(4))
				for j := range ps {
					ps[j] = pages[r.Intn(len(pages))]
				}
				ops = append(ops, diffOp{kind: opUnlock, unlock: ps})
			}
			continue
		}
		var pg mem.Page
		pg, base = pickPage(r, pages, base)
		ops = append(ops, diffOp{kind: opRef, page: pg})
	}
	return ops
}

// runDiff drives dense and oracle over the same stream, comparing after
// every operation. useStep additionally routes dense references through
// the Stepper fast path and checks its triple against the oracle.
func runDiff(t *testing.T, dense, oracle Policy, ops []diffOp, useStep bool, tag string) {
	t.Helper()
	stepper, _ := dense.(Stepper)
	for i, op := range ops {
		switch op.kind {
		case opRef:
			if useStep && stepper != nil {
				fault, res, chg := stepper.Step(op.page)
				if of := oracle.Ref(op.page); fault != of {
					t.Fatalf("%s: op %d ref %d: fault dense=%v oracle=%v", tag, i, op.page, fault, of)
				}
				if res != oracle.Resident() || chg != Charge(oracle) {
					t.Fatalf("%s: op %d ref %d: Step (res=%d chg=%d) != oracle (res=%d chg=%d)",
						tag, i, op.page, res, chg, oracle.Resident(), Charge(oracle))
				}
			} else if df, of := dense.Ref(op.page), oracle.Ref(op.page); df != of {
				t.Fatalf("%s: op %d ref %d: fault dense=%v oracle=%v", tag, i, op.page, df, of)
			}
		case opAlloc:
			dense.Alloc(op.alloc)
			oracle.Alloc(op.alloc)
		case opLock:
			dense.Lock(op.lock)
			oracle.Lock(op.lock)
		case opUnlock:
			dense.Unlock(op.unlock)
			oracle.Unlock(op.unlock)
		}
		if dr, or := dense.Resident(), oracle.Resident(); dr != or {
			t.Fatalf("%s: op %d: Resident dense=%d oracle=%d", tag, i, dr, or)
		}
		if dc, oc := Charge(dense), Charge(oracle); dc != oc {
			t.Fatalf("%s: op %d: Charge dense=%d oracle=%d", tag, i, dc, oc)
		}
		if cd, ok := dense.(*CD); ok {
			ocd := oracle.(*oracleCD)
			if cd.SwapSignals != ocd.SwapSignals || cd.LockReleases != ocd.LockReleases {
				t.Fatalf("%s: op %d: CD counters dense=(%d,%d) oracle=(%d,%d)",
					tag, i, cd.SwapSignals, cd.LockReleases, ocd.SwapSignals, ocd.LockReleases)
			}
			if cd.LockedPages() != ocd.locked {
				t.Fatalf("%s: op %d: LockedPages dense=%d oracle=%d", tag, i, cd.LockedPages(), ocd.locked)
			}
		}
	}
}

type diffCase struct {
	name       string
	dense      func() Policy
	oracle     func() Policy
	directives bool
}

func diffCases() []diffCase {
	var cases []diffCase
	for _, m := range []int{1, 4, 8, 32} {
		m := m
		cases = append(cases,
			diffCase{fmt.Sprintf("LRU/m=%d", m), func() Policy { return NewLRU(m) }, func() Policy { return newOracleLRU(m) }, false},
			diffCase{fmt.Sprintf("FIFO/m=%d", m), func() Policy { return NewFIFO(m) }, func() Policy { return newOracleFIFO(m) }, false},
		)
	}
	for _, tau := range []int{1, 7, 50, 400} {
		tau := tau
		cases = append(cases,
			diffCase{fmt.Sprintf("WS/tau=%d", tau), func() Policy { return NewWS(tau) }, func() Policy { return newOracleWS(tau) }, false})
	}
	for _, th := range []int{1, 10, 100} {
		th := th
		cases = append(cases,
			diffCase{fmt.Sprintf("PFF/T=%d", th), func() Policy { return NewPFF(th) }, func() Policy { return newOraclePFF(th) }, false})
	}
	for _, sg := range []int{1, 25} {
		sg := sg
		cases = append(cases,
			diffCase{fmt.Sprintf("SWS/sigma=%d", sg), func() Policy { return NewSWS(sg) }, func() Policy { return newOracleSWS(sg) }, false})
	}
	cases = append(cases,
		diffCase{"VSWS", func() Policy { return NewVSWS(5, 50, 3) }, func() Policy { return newOracleVSWS(5, 50, 3) }, false},
		diffCase{"DWS/tau=30,d=10", func() Policy { return NewDWS(30, 10) }, func() Policy { return newOracleDWS(30, 10) }, false},
		diffCase{"DWS/tau=7,d=1", func() Policy { return NewDWS(7, 1) }, func() Policy { return newOracleDWS(7, 1) }, false},
	)
	for _, lvl := range []int{1, 2, 3} {
		lvl := lvl
		cases = append(cases, diffCase{
			fmt.Sprintf("CD/level=%d", lvl),
			func() Policy { return NewCD(SelectLevel(lvl), 2) },
			func() Policy { return newOracleCD(SelectLevel(lvl), 2) },
			true,
		})
	}
	return cases
}

// TestDenseMatchesOracle is the core differential: dense vs oracle over
// several seeded random streams, via both the Ref and the Step paths.
func TestDenseMatchesOracle(t *testing.T) {
	for _, tc := range diffCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				r := rand.New(rand.NewSource(seed))
				pages := genPages(r, 20+r.Intn(40))
				ops := genOps(r, 3000, pages, tc.directives)
				runDiff(t, tc.dense(), tc.oracle(), ops, false, fmt.Sprintf("seed=%d/Ref", seed))
				runDiff(t, tc.dense(), tc.oracle(), ops, true, fmt.Sprintf("seed=%d/Step", seed))
			}
		})
	}
}

// TestDenseResetReuse asserts Reset returns a used dense policy to the
// exact fresh-policy behavior: replay stream A, Reset, then replay stream
// B against a *fresh* oracle.
func TestDenseResetReuse(t *testing.T) {
	for _, tc := range diffCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(99))
			pages := genPages(r, 30)
			opsA := genOps(r, 2000, pages, tc.directives)
			opsB := genOps(r, 2000, genPages(r, 50), tc.directives)

			dense := tc.dense()
			runDiff(t, dense, tc.oracle(), opsA, false, "A")
			dense.Reset()
			runDiff(t, dense, tc.oracle(), opsB, false, "B-after-Reset")
		})
	}
}

// TestPageIndexWildSparsity is the sparsity guard: a stream whose pages
// are wildly sparse (near 2^30) must not balloon the dense table to a
// MaxPage-sized array — wild pages take the compact map path.
func TestPageIndexWildSparsity(t *testing.T) {
	var idx pageIndex
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		idx.slot(mem.Page(1<<30 + r.Intn(1<<20)))
	}
	if len(idx.dense) > pageIndexMinDense {
		t.Fatalf("dense table grew to %d entries on wild pages (want <= %d)", len(idx.dense), pageIndexMinDense)
	}
	if idx.size() != len(idx.pages) || idx.size() == 0 {
		t.Fatalf("slot accounting broken: size=%d", idx.size())
	}
	// Every wild page must still resolve through the sparse map.
	for s, pg := range idx.pages {
		if got := idx.lookup(pg); got != int32(s) {
			t.Fatalf("lookup(%d)=%d, want %d", pg, got, s)
		}
	}
	// A hint describing a wild universe is ignored, not honored.
	idx.hint(1<<30, 10)
	if len(idx.dense) > pageIndexMinDense {
		t.Fatalf("wild hint grew dense table to %d entries", len(idx.dense))
	}
	// Dense pages arriving later still get dense-table service.
	s := idx.slot(5)
	if got := idx.lookup(5); got != s {
		t.Fatalf("dense page lookup=%d, want %d", got, s)
	}
}

// TestPageIndexSparseThenDenseGrowth reproduces the duplicate-slot
// hazard: a page first assigned via the sparse path (out of the window at
// the time) must keep its slot after growDense's doubling extends the
// dense table past it.
func TestPageIndexSparseThenDenseGrowth(t *testing.T) {
	var idx pageIndex
	s2000 := idx.slot(2000) // beyond pageIndexMinDense -> sparse path
	for p := 0; p <= 999; p++ {
		idx.slot(mem.Page(p)) // dense table settles at 1024
	}
	idx.slot(1500) // in window now -> doubling grows dense over page 2000
	if len(idx.dense) < 2001 {
		t.Fatalf("dense table is %d entries, expected growth past page 2000", len(idx.dense))
	}
	if got := idx.slot(2000); got != s2000 {
		t.Fatalf("page 2000 re-assigned slot %d after dense growth, want original %d", got, s2000)
	}
	if idx.size() != 1002 {
		t.Fatalf("size=%d, want 1002 distinct pages", idx.size())
	}
	for s, pg := range idx.pages {
		if got := idx.lookup(pg); got != int32(s) {
			t.Fatalf("lookup(%d)=%d, want %d", pg, got, s)
		}
	}
}

// TestPageIndexHintAfterSparse covers Reset-style reuse: a page assigned
// sparsely in one run must survive a later HintPages-driven growth that
// covers it densely.
func TestPageIndexHintAfterSparse(t *testing.T) {
	var idx pageIndex
	s2000 := idx.slot(2000)
	s5 := idx.slot(5)
	idx.hint(4096, 600) // next trace's universe covers page 2000 in-window
	if len(idx.dense) < 2001 {
		t.Fatalf("dense table is %d entries, expected hint growth past page 2000", len(idx.dense))
	}
	if got := idx.slot(2000); got != s2000 {
		t.Fatalf("page 2000 re-assigned slot %d after hint, want original %d", got, s2000)
	}
	if got := idx.slot(5); got != s5 {
		t.Fatalf("page 5 slot drifted to %d after hint, want %d", got, s5)
	}
	if idx.size() != 2 {
		t.Fatalf("size=%d, want 2", idx.size())
	}
}

// overlapOps builds a stream that walks straight through the
// sparse-then-dense overlap window: mid-range pages (a few x the initial
// dense table, well inside what growth can reach) are touched first and
// take the sparse path, then a sequential sweep of low pages doubles the
// dense table across them, then the mid-range pages are revisited while
// still resident, and a random tail mixes the full universe.
func overlapOps(r *rand.Rand, withDirectives bool) []diffOp {
	midPages := []mem.Page{1500, 2000, 3000, 4090}
	var ops []diffOp
	for _, pg := range midPages {
		ops = append(ops, diffOp{kind: opRef, page: pg})
	}
	for p := 0; p < 1200; p++ {
		ops = append(ops, diffOp{kind: opRef, page: mem.Page(p)})
	}
	for _, pg := range midPages {
		ops = append(ops, diffOp{kind: opRef, page: pg})
	}
	all := append([]mem.Page{0, 1, 5, 700, 1100}, midPages...)
	return append(ops, genOps(r, 2000, all, withDirectives)...)
}

// TestPolicySparseDenseOverlap is the policy-level differential for the
// overlap window. Capacities are sized so the mid-range pages are still
// resident when revisited after the growth — a duplicate slot then shows
// up as a spurious fault or a Resident drift against the oracle.
func TestPolicySparseDenseOverlap(t *testing.T) {
	cases := []diffCase{
		{"LRU/m=4000", func() Policy { return NewLRU(4000) }, func() Policy { return newOracleLRU(4000) }, false},
		{"FIFO/m=4000", func() Policy { return NewFIFO(4000) }, func() Policy { return newOracleFIFO(4000) }, false},
		{"WS/tau=100000", func() Policy { return NewWS(100000) }, func() Policy { return newOracleWS(100000) }, false},
		{"PFF/T=100000", func() Policy { return NewPFF(100000) }, func() Policy { return newOraclePFF(100000) }, false},
		{"SWS/sigma=100000", func() Policy { return NewSWS(100000) }, func() Policy { return newOracleSWS(100000) }, false},
		{"CD/level=2", func() Policy { return NewCD(SelectLevel(2), 2) }, func() Policy { return newOracleCD(SelectLevel(2), 2) }, true},
	}
	cases = append(cases, diffCases()...)
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(23))
			ops := overlapOps(r, tc.directives)
			runDiff(t, tc.dense(), tc.oracle(), ops, false, "overlap/Ref")
			runDiff(t, tc.dense(), tc.oracle(), overlapOps(r, tc.directives), true, "overlap/Step")
		})
	}
}

// TestPolicyHintAfterSparseReuse drives a policy through a run small
// enough to leave its mid-range pages on the sparse path, Resets it,
// hints a universe that covers those pages densely, and replays against
// a fresh oracle — the engine's Reset-reuse pattern.
func TestPolicyHintAfterSparseReuse(t *testing.T) {
	universe := []mem.Page{0, 1, 2, 5, 9, 1500, 2000, 3000, 4090}
	for _, tc := range diffCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(31))
			dense := tc.dense()
			runDiff(t, dense, tc.oracle(), genOps(r, 1500, universe, tc.directives), false, "pre-hint")
			dense.Reset()
			if h, ok := dense.(PageHinter); ok {
				h.HintPages(4096, 600)
			}
			runDiff(t, dense, tc.oracle(), overlapOps(r, tc.directives), false, "post-hint")
		})
	}
}

// TestPolicyWildPages drives each dense policy over a stream dominated by
// wild sparse pages and checks behavior still matches the oracle — the
// sparsity fallback must be semantically invisible.
func TestPolicyWildPages(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	pages := make([]mem.Page, 0, 24)
	for i := 0; i < 16; i++ {
		pages = append(pages, mem.Page(1<<30+r.Intn(1<<24)))
	}
	for i := 0; i < 8; i++ {
		pages = append(pages, mem.Page(i))
	}
	for _, tc := range diffCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ops := genOps(r, 1500, pages, tc.directives)
			runDiff(t, tc.dense(), tc.oracle(), ops, false, "wild")
		})
	}
}
