package policy

import (
	"fmt"

	"cdmm/internal/mem"
)

// PFF is the Page Fault Frequency policy of Chu & Opderbeck (1972), one of
// the §1 baselines ("cheaper to implement [than WS] but has poorer
// performance; also, it exhibits anomalous behavior"). The resident set is
// adjusted only at fault times: if the inter-fault interval is below the
// threshold T the process is faulting too often and the set grows; if the
// interval is at least T, pages unreferenced since the previous fault are
// released before the new page is added.
type PFF struct {
	noDirectives
	threshold int64

	now       int64
	lastFault int64
	resident  map[mem.Page]bool
	usedSince map[mem.Page]bool // referenced since the last fault
}

// NewPFF returns a PFF policy with inter-fault threshold T in references.
func NewPFF(threshold int) *PFF {
	if threshold < 1 {
		threshold = 1
	}
	return &PFF{
		threshold: int64(threshold),
		resident:  map[mem.Page]bool{},
		usedSince: map[mem.Page]bool{},
	}
}

// Name implements Policy.
func (p *PFF) Name() string { return fmt.Sprintf("PFF(T=%d)", p.threshold) }

// Ref implements Policy.
func (p *PFF) Ref(pg mem.Page) bool {
	p.now++
	if p.resident[pg] {
		p.usedSince[pg] = true
		return false
	}
	// Fault: apply the PFF rule.
	if p.now-p.lastFault >= p.threshold {
		// Faulting slowly: shrink to the pages referenced since the last
		// fault (they carry the current locality).
		for q := range p.resident {
			if !p.usedSince[q] {
				delete(p.resident, q)
			}
		}
	}
	// Faulting quickly (interval < T): grow without releasing anything.
	p.resident[pg] = true
	p.usedSince = map[mem.Page]bool{pg: true}
	p.lastFault = p.now
	return true
}

// Resident implements Policy.
func (p *PFF) Resident() int { return len(p.resident) }

// Reset implements Policy.
func (p *PFF) Reset() {
	p.now = 0
	p.lastFault = 0
	p.resident = map[mem.Page]bool{}
	p.usedSince = map[mem.Page]bool{}
}

var _ Policy = (*PFF)(nil)
