package policy

import (
	"fmt"

	"cdmm/internal/mem"
)

// PFF is the Page Fault Frequency policy of Chu & Opderbeck (1972), one of
// the §1 baselines ("cheaper to implement [than WS] but has poorer
// performance; also, it exhibits anomalous behavior"). The resident set is
// adjusted only at fault times: if the inter-fault interval is below the
// threshold T the process is faulting too often and the set grows; if the
// interval is at least T, pages unreferenced since the previous fault are
// released before the new page is added.
//
// Residency and use bits live in dense slot arrays; the "referenced since
// the last fault" bit is an epoch stamp, so clearing all use bits at a
// fault is a counter increment instead of a map rebuild.
type PFF struct {
	noDirectives
	threshold int64
	name      string

	now       int64
	lastFault int64
	idx       pageIndex
	resident  []bool
	// usedEpoch[s] == epoch means slot s was referenced since the last
	// fault; epoch increments at each fault.
	usedEpoch []int64
	epoch     int64
	nres      int
}

// NewPFF returns a PFF policy with inter-fault threshold T in references.
func NewPFF(threshold int) *PFF {
	if threshold < 1 {
		threshold = 1
	}
	return &PFF{threshold: int64(threshold), name: fmt.Sprintf("PFF(T=%d)", threshold)}
}

// Name implements Policy.
func (p *PFF) Name() string { return p.name }

// HintPages implements PageHinter.
func (p *PFF) HintPages(maxPage mem.Page, distinct int) { p.idx.hint(maxPage, distinct) }

// slotOf returns pg's dense slot, growing the state arrays in step with
// the index.
func (p *PFF) slotOf(pg mem.Page) int32 {
	s := p.idx.slot(pg)
	if int(s) >= len(p.resident) {
		p.resident = append(p.resident, false)
		p.usedEpoch = append(p.usedEpoch, -1)
	}
	return s
}

// Ref implements Policy.
func (p *PFF) Ref(pg mem.Page) bool {
	p.now++
	s := p.slotOf(pg)
	if p.resident[s] {
		p.usedEpoch[s] = p.epoch
		return false
	}
	// Fault: apply the PFF rule.
	if p.now-p.lastFault >= p.threshold {
		// Faulting slowly: shrink to the pages referenced since the last
		// fault (they carry the current locality).
		for q := range p.resident {
			if p.resident[q] && p.usedEpoch[q] != p.epoch {
				p.resident[q] = false
				p.nres--
			}
		}
	}
	// Faulting quickly (interval < T): grow without releasing anything.
	p.epoch++
	p.resident[s] = true
	p.usedEpoch[s] = p.epoch
	p.nres++
	p.lastFault = p.now
	return true
}

// Resident implements Policy.
func (p *PFF) Resident() int { return p.nres }

// Reset implements Policy.
func (p *PFF) Reset() {
	p.now = 0
	p.lastFault = 0
	p.epoch = 0
	for i := range p.resident {
		p.resident[i] = false
		p.usedEpoch[i] = -1
	}
	p.nres = 0
}

var _ Policy = (*PFF)(nil)
