package policy

import (
	"testing"
	"testing/quick"

	"cdmm/internal/mem"
)

func TestPFFGrowsUnderRapidFaulting(t *testing.T) {
	// Faults closer together than T grow the resident set without any
	// release: a fresh-page burst keeps everything.
	p := NewPFF(100)
	for i := 0; i < 10; i++ {
		if !p.Ref(mem.Page(i)) {
			t.Fatalf("page %d should fault", i)
		}
	}
	if p.Resident() != 10 {
		t.Errorf("resident = %d, want 10 (no shrink while faulting fast)", p.Resident())
	}
}

func TestPFFShrinksOnSlowFaulting(t *testing.T) {
	p := NewPFF(10)
	// Load pages 1..4 quickly.
	for i := 1; i <= 4; i++ {
		p.Ref(mem.Page(i))
	}
	// Reference only page 1 for > T references.
	for i := 0; i < 20; i++ {
		p.Ref(1)
	}
	// The next fault arrives after a long interval: pages unreferenced
	// since the last fault are released. Pages 2 and 3 go; page 4 stays
	// (its own fault counts as a reference) as do 1 and the new page.
	p.Ref(99)
	if p.Resident() != 3 {
		t.Errorf("resident = %d, want 3 ({1, 4, 99})", p.Resident())
	}
	if p.Ref(2) == false {
		t.Error("page 2 should have been released and must refault")
	}
}

func TestSWSSampleReleasesUnreferenced(t *testing.T) {
	p := NewSWS(8)
	// Touch 4 pages in the first window.
	for i := 1; i <= 4; i++ {
		p.Ref(mem.Page(i))
	}
	// Keep touching only page 1 past the sampling point.
	for i := 0; i < 8; i++ {
		p.Ref(1)
	}
	// After sampling, only recently-used pages survive the NEXT sample:
	// run into a second interval referencing page 1 only.
	for i := 0; i < 8; i++ {
		p.Ref(1)
	}
	if p.Resident() != 1 {
		t.Errorf("resident = %d, want 1 after two samples of page-1-only", p.Resident())
	}
}

func TestSWSApproximatesWS(t *testing.T) {
	// Over a cyclic trace, SWS(σ) faults should be within a small factor
	// of WS(τ=σ) faults.
	refs := cyclic(6, 50)
	wsF := replay(NewWS(12), refs)
	swsF := replay(NewSWS(12), refs)
	if swsF > wsF*3+10 || wsF > swsF*3+10 {
		t.Errorf("SWS faults %d too far from WS faults %d", swsF, wsF)
	}
}

func TestVSWSSamplingTriggers(t *testing.T) {
	// Q faults before MinIS must not trigger a sample; MaxIS must.
	p := NewVSWS(5, 20, 2)
	for i := 0; i < 4; i++ {
		p.Ref(mem.Page(i)) // 4 quick faults
	}
	if p.Resident() != 4 {
		t.Errorf("resident = %d, want 4 (no sample before MinIS)", p.Resident())
	}
	// Now reference one page for > MaxIS: a sample must fire and release
	// the unreferenced pages.
	for i := 0; i < 45; i++ {
		p.Ref(0)
	}
	if p.Resident() != 1 {
		t.Errorf("resident = %d, want 1 after MaxIS sample", p.Resident())
	}
}

func TestDWSNeverFaultsMoreThanWS(t *testing.T) {
	// Damping only retains pages longer, so DWS faults <= WS faults on
	// any string (a held page can only turn a fault into a hit).
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		refs := make([]mem.Page, len(raw))
		for i, b := range raw {
			refs[i] = mem.Page(b % 12)
		}
		for _, tau := range []int{2, 8, 32} {
			wsF := replay(NewWS(tau), refs)
			dwsF := replay(NewDWS(tau, 16), refs)
			if dwsF > wsF {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestDWSResidentAtLeastWS(t *testing.T) {
	refs := cyclic(8, 30)
	ws := NewWS(10)
	dws := NewDWS(10, 50)
	for _, pg := range refs {
		ws.Ref(pg)
		dws.Ref(pg)
		if dws.Resident() < ws.Resident() {
			t.Fatalf("DWS resident %d below WS resident %d", dws.Resident(), ws.Resident())
		}
	}
}

func TestDWSDampingReleasesEventually(t *testing.T) {
	p := NewDWS(4, 2)
	// Build a working set then abandon it.
	for i := 1; i <= 5; i++ {
		p.Ref(mem.Page(i))
	}
	for i := 0; i < 100; i++ {
		p.Ref(50)
	}
	if p.Resident() != 1 {
		t.Errorf("resident = %d, want 1 after damped drain", p.Resident())
	}
}

func TestNewPolicyResets(t *testing.T) {
	refs := cyclic(5, 10)
	pols := []Policy{NewPFF(20), NewSWS(8), NewVSWS(4, 32, 3), NewDWS(8, 4)}
	for _, p := range pols {
		f1 := replay(p, refs)
		p.Reset()
		f2 := replay(p, refs)
		if f1 != f2 {
			t.Errorf("%s: faults differ after reset: %d vs %d", p.Name(), f1, f2)
		}
		if f1 < 5 {
			t.Errorf("%s: fewer faults than compulsory: %d", p.Name(), f1)
		}
	}
}

func TestPFFAnomalyPossible(t *testing.T) {
	// PFF is known to exhibit anomalies (Franklin, Graham & Gupta 1978):
	// faults need not be monotone in T. We only check the policy is
	// well-defined across thresholds (no panics, compulsory lower bound).
	refs := cyclic(10, 20)
	for _, T := range []int{1, 5, 20, 100, 1000} {
		f := replay(NewPFF(T), refs)
		if f < 10 {
			t.Errorf("PFF(T=%d) faults %d below compulsory 10", T, f)
		}
	}
}
