package policy

import (
	"testing"

	"cdmm/internal/mem"
)

// refAll drives a page sequence through a policy and returns the fault
// count.
func refAll(p Policy, pages ...mem.Page) int {
	faults := 0
	for _, pg := range pages {
		if p.Ref(pg) {
			faults++
		}
	}
	return faults
}

func TestLRUEvictHook(t *testing.T) {
	p := NewLRU(2)
	var evicted []mem.Page
	p.SetEvictHook(func(pg mem.Page) { evicted = append(evicted, pg) })
	refAll(p, 1, 2, 3, 1)
	if len(evicted) != 2 || evicted[0] != 1 || evicted[1] != 2 {
		t.Fatalf("evicted = %v, want [1 2]", evicted)
	}
}

func TestFIFOEvictHook(t *testing.T) {
	p := NewFIFO(2)
	var evicted []mem.Page
	p.SetEvictHook(func(pg mem.Page) { evicted = append(evicted, pg) })
	refAll(p, 1, 2, 3)
	if len(evicted) != 1 || evicted[0] != 1 {
		t.Fatalf("evicted = %v, want [1]", evicted)
	}
}

func TestWSEvictHook(t *testing.T) {
	p := NewWS(1)
	var evicted []mem.Page
	p.SetEvictHook(func(pg mem.Page) { evicted = append(evicted, pg) })
	refAll(p, 1, 2, 3)
	// With τ = 1 each reference expires the previous page.
	if len(evicted) != 2 || evicted[0] != 1 || evicted[1] != 2 {
		t.Fatalf("evicted = %v, want [1 2]", evicted)
	}
}

// TestCDEvictConservation drives CD over a cyclic string and checks the
// residency balance: every faulted-in page is either still resident or
// was reported evicted (no silent departures).
func TestCDEvictConservation(t *testing.T) {
	p := NewCD(nil, 2)
	evictions := 0
	p.SetEvictHook(func(mem.Page) { evictions++ })
	faults := 0
	for round := 0; round < 5; round++ {
		faults += refAll(p, 1, 2, 3, 4, 5)
	}
	if got := faults - evictions; got != p.Resident() {
		t.Fatalf("faults(%d) - evictions(%d) = %d, want resident %d",
			faults, evictions, faults-evictions, p.Resident())
	}
}

// TestEvictHookNilByDefault pins that policies run hook-free by default
// and that installing nil removes a hook.
func TestEvictHookNilByDefault(t *testing.T) {
	p := NewLRU(1)
	refAll(p, 1, 2) // must not panic with no hook
	called := false
	p.SetEvictHook(func(mem.Page) { called = true })
	p.SetEvictHook(nil)
	refAll(p, 3, 4)
	if called {
		t.Fatal("removed hook still fired")
	}
}
