package policy

import (
	"sync/atomic"

	"cdmm/internal/directive"
	"cdmm/internal/mem"
	"cdmm/internal/trace"
)

// ArmSelector decides which arm of an ALLOCATE directive's else-chain the
// operating system grants, or reports that this directive is not part of
// the executed set (ok = false). The paper's §5 setup fixes "the set of
// directives to be executed" before each uniprogramming run; SelectLevel
// encodes those sets. In a multiprogramming system the grant additionally
// depends on the memory available at execution time (the Figure 6
// flowchart), which CD.Alloc applies on top of the selector when Avail is
// set.
type ArmSelector func(label string, arms []directive.Arm) (directive.Arm, bool)

// SelectLevel returns the selector for the directive set of stratum k:
// only the directives inserted before loops of priority index ≤ k execute
// (the "directives at the lower levels" of the paper's Table 1), and each
// grants the arm with the largest priority index not exceeding k — the
// outermost locality the set honors. SelectLevel(1) executes only the
// innermost-loop directives with their own smallest localities (least
// memory, most faults); SelectLevel(Δ) executes everything and grants the
// outermost locality (most memory, fewest faults).
func SelectLevel(level int) ArmSelector {
	return func(_ string, arms []directive.Arm) (directive.Arm, bool) {
		// Arms are ordered outermost→innermost with strictly decreasing
		// PI; the last arm is the loop's own (PI, X).
		if arms[len(arms)-1].PI > level {
			return directive.Arm{}, false // directive not in the executed set
		}
		for _, a := range arms {
			if a.PI <= level {
				return a, true
			}
		}
		return arms[len(arms)-1], true
	}
}

// SelectLevels builds a mixed directive set: loops whose key appears in
// overrides are honored at their own stratum, everything else at def.
// This models the paper's hand-chosen "sets of directives to be executed",
// which need not be uniform across a program's loop nests (Table 1 ran
// MAIN under four different such sets).
func SelectLevels(def int, overrides map[string]int) ArmSelector {
	base := SelectLevel(def)
	byLevel := map[int]ArmSelector{}
	return func(label string, arms []directive.Arm) (directive.Arm, bool) {
		lvl, ok := overrides[label]
		if !ok {
			return base(label, arms)
		}
		sel := byLevel[lvl]
		if sel == nil {
			sel = SelectLevel(lvl)
			byLevel[lvl] = sel
		}
		return sel(label, arms)
	}
}

// CD is the Compiler Directed memory management policy (§4): a variable-
// allocation policy whose resident-set ceiling tracks the executed
// ALLOCATE directives, with local-LRU replacement inside the allocation,
// soft page locks honored until memory pressure forces their release in
// increasing lock-priority order (largest PJ first), and a swap trigger
// when a PI = 1 request cannot be granted.
//
// Concurrency contract: a CD instance is not safe for concurrent use.
// In particular Reclaim — the operating system's pressure valve — must
// be serialized with StepBlock/Ref by the caller (the kernel and the
// multiprogramming driver run each tenant's policy on a single
// simulation thread; anything else needs an external mutex). The
// mutators enforce this with a cheap in-flight guard that panics with a
// clear message instead of corrupting the LRU list silently.
type CD struct {
	selector ArmSelector
	minAlloc int

	// Avail, when non-nil, reports how many pages the operating system can
	// currently grant this program (used by the multiprogramming driver).
	// When nil the memory is unbounded and the selector alone decides,
	// which is the paper's uniprogramming §5 setup.
	Avail func() int

	alloc  int // current allocation target in pages
	list   *lruList
	locked int // number of currently locked resident pages
	// locksBySite maps a LOCK site id to its currently locked pages so a
	// re-executed site replaces its previous locks.
	locksBySite map[int][]mem.Page

	// SwapSignals counts ALLOCATE executions where the innermost (PI = 1)
	// request could not be granted — the condition under which the §4
	// policy invokes the swapper. Under uniprogramming this stays 0.
	SwapSignals int
	// LockReleases counts locked pages the OS released under memory
	// pressure without an UNLOCK.
	LockReleases int

	// Hooks, when non-nil, receives CD-internal transitions as they
	// happen (the observability layer uses this to timestamp phase
	// changes, swap signals and forced lock releases with the exact
	// virtual time). Reset preserves Hooks.
	Hooks *CDHooks

	// Check, when non-nil, validates every directive against the §3
	// contract and degrades the policy to a WS fallback on the first
	// violation (see cdcheck.go). Reset preserves Check but clears any
	// degradation, so the policy can replay another trace.
	Check *CheckConfig

	degraded       bool
	degradedReason string
	fallback       *WS // WS policy serving references after degradation

	// onEvict is the eviction hook (see EvictObserver). It fires for
	// replacement and directive-shrink evictions; forced lock releases
	// report through Hooks.LockRelease instead so the attribution layer
	// can tell the two apart.
	onEvict func(mem.Page)

	// busy guards the list-mutating entry points (StepBlock, Reclaim)
	// against overlapping calls — see the concurrency contract above.
	busy atomic.Int32
}

// acquire marks a list-mutating operation in flight. Overlap — whether
// from another goroutine or from a hook reentering the policy — is a
// caller bug that would corrupt the LRU list, so it fails loudly and
// deterministically rather than racing.
func (p *CD) acquire(op string) {
	if !p.busy.CompareAndSwap(0, 1) {
		panic("policy: CD." + op + " called while another StepBlock/Reclaim is in flight: " +
			"CD is not safe for concurrent use; serialize access externally")
	}
}

func (p *CD) release() { p.busy.Store(0) }

// CDHooks are optional callbacks into CD's internal transitions. Any
// field may be nil.
type CDHooks struct {
	// AllocChange fires when an executed directive moves the allocation
	// target — the policy-visible signature of a locality transition.
	AllocChange func(prev, next int)
	// SwapSignal fires when an ungrantable PI = 1 request raises the
	// swapper.
	SwapSignal func()
	// LockRelease fires when the OS force-releases a locked page.
	LockRelease func(pg mem.Page)
	// Degrade fires when a directive-contract violation switches the
	// policy to its WS fallback (at most once per run).
	Degrade func(reason string)
}

// NewCD returns a CD policy. The selector chooses ALLOCATE arms (nil
// defaults to SelectLevel(1), the innermost stratum); minAlloc is the
// system-default minimum allocation in pages.
func NewCD(selector ArmSelector, minAlloc int) *CD {
	if selector == nil {
		selector = SelectLevel(1)
	}
	if minAlloc < 1 {
		minAlloc = 1
	}
	return &CD{
		selector:    selector,
		minAlloc:    minAlloc,
		alloc:       minAlloc,
		list:        newLRUList(),
		locksBySite: map[int][]mem.Page{},
	}
}

// Name implements Policy.
func (p *CD) Name() string { return "CD" }

// Allocation returns the current allocation target.
func (p *CD) Allocation() int { return p.alloc }

// HintPages implements PageHinter.
func (p *CD) HintPages(maxPage mem.Page, distinct int) { p.list.hint(maxPage, distinct) }

// SetEvictHook implements EvictObserver. A hook installed after
// degradation reaches the WS fallback too.
func (p *CD) SetEvictHook(fn func(mem.Page)) {
	p.onEvict = fn
	if p.fallback != nil {
		p.fallback.SetEvictHook(fn)
	}
}

// Alloc implements Policy: process an executed ALLOCATE directive
// following the Figure 6 flowchart. The selector first narrows the
// else-chain to the stratum being honored; if memory is bounded (Avail
// set) the request is granted only when it fits, falling through the
// chain to smaller requests. An ungrantable request whose innermost
// priority index is 1 raises the swap signal; with PI > 1 the program
// simply continues under its current allocation until the next directive.
func (p *CD) Alloc(d trace.AllocDirective) {
	if p.degraded {
		return // directives are no longer trusted
	}
	if p.Check != nil {
		if err := p.validateAlloc(d); err != nil {
			p.degrade(err.Error())
			return
		}
	}
	arms := d.Arms
	if len(arms) == 0 {
		return
	}
	chosen, ok := p.selector(d.Label, arms)
	if !ok {
		return // this directive is not part of the executed set
	}
	if p.Avail == nil {
		p.setTarget(chosen.X)
		return
	}
	avail := p.Avail() + p.list.len() // frames already held stay granted
	// Try the chain from the chosen arm inward (X non-increasing).
	start := 0
	for i, a := range arms {
		if a == chosen {
			start = i
			break
		}
	}
	for _, a := range arms[start:] {
		if a.X <= avail {
			p.setTarget(a.X)
			return
		}
	}
	// Nothing fits. PI = 1 at the innermost level means the program is
	// entering its smallest locality and cannot run: invoke the swapper.
	if arms[len(arms)-1].PI == 1 {
		p.SwapSignals++
		if p.Hooks != nil && p.Hooks.SwapSignal != nil {
			p.Hooks.SwapSignal()
		}
	}
	// Otherwise (or additionally), continue with the current allocation.
}

// setTarget applies a granted allocation.
func (p *CD) setTarget(x int) {
	if x < p.minAlloc {
		x = p.minAlloc
	}
	if x != p.alloc && p.Hooks != nil && p.Hooks.AllocChange != nil {
		p.Hooks.AllocChange(p.alloc, x)
	}
	p.alloc = x
	p.shrinkTo(p.alloc)
}

// shrinkTo evicts LRU unlocked pages until the unlocked resident set fits
// n pages. Locked pages ride above the allocation: the ALLOCATE request X
// sizes the loop's own locality, while LOCK pins pages of *outer* loop
// localities on top of it (LOCK exists precisely for when an outer
// request was not granted, §3.2).
func (p *CD) shrinkTo(n int) {
	for p.list.len()-p.locked > n {
		v, ok := p.list.evictLRU()
		if !ok {
			return // everything left is locked
		}
		if p.onEvict != nil {
			p.onEvict(v)
		}
	}
}

// Ref implements Policy.
func (p *CD) Ref(pg mem.Page) bool {
	if p.degraded {
		return p.fallback.Ref(pg)
	}
	if s := p.list.lookupResident(pg); s >= 0 {
		p.list.touchSlot(s)
		return false
	}
	p.refMiss(pg)
	return true
}

// refMiss faults pg into a healthy (non-degraded) CD policy, replacing
// under the directive ceiling. Shared by Ref and StepBlock so the two
// paths cannot drift.
func (p *CD) refMiss(pg mem.Page) {
	if p.list.len()-p.locked >= p.alloc {
		if v, ok := p.list.evictLRU(); ok {
			if p.onEvict != nil {
				p.onEvict(v)
			}
		} else {
			// Every resident page is locked: the OS releases the locked
			// page with the lowest priority (largest PJ) and replaces it.
			if s := p.list.lowestPriorityLocked(); s >= 0 {
				victim := p.list.idx.pageOf(s)
				p.releaseLock(s)
				p.list.removeSlot(s)
				p.LockReleases++
				if p.Hooks != nil && p.Hooks.LockRelease != nil {
					p.Hooks.LockRelease(victim)
				}
			}
		}
	}
	p.list.insert(pg)
}

// releaseLock clears the lock bookkeeping for a slot being force-released.
func (p *CD) releaseLock(s int32) {
	site := int(p.list.site[s])
	page := p.list.idx.pageOf(s)
	pages := p.locksBySite[site]
	for i, q := range pages {
		if q == page {
			p.locksBySite[site] = append(pages[:i], pages[i+1:]...)
			break
		}
	}
	p.list.locked[s] = false
	p.locked--
}

// Lock implements Policy: pin the pages of a LOCK execution. Pages locked
// earlier by the same site are unlocked first (the site has moved on to
// new indices). Locked pages that are not yet resident are faulted in by
// later references as usual; LOCK only pins pages already or subsequently
// resident.
func (p *CD) Lock(ls trace.LockSet) {
	if p.degraded {
		return
	}
	if p.Check != nil {
		if err := p.validateLock(ls); err != nil {
			p.degrade(err.Error())
			return
		}
	}
	prev := p.locksBySite[ls.Site]
	for _, old := range prev {
		if s := p.list.lookupResident(old); s >= 0 && p.list.locked[s] && int(p.list.site[s]) == ls.Site {
			p.list.locked[s] = false
			p.locked--
		}
	}
	// Truncate rather than nil the site's page list so re-executions
	// append into retained capacity.
	p.locksBySite[ls.Site] = prev[:0]
	for _, pg := range ls.Pages {
		s := p.list.lookupResident(pg)
		if s < 0 {
			// Pin-on-arrival: remember the page so that when it faults in
			// it is locked. To keep the model simple (and matching the
			// paper's "prevent some pages from being paged out"), we lock
			// only resident pages; a non-resident page will be locked at
			// its next LOCK execution if still wanted.
			continue
		}
		if !p.list.locked[s] {
			p.locked++
		}
		p.list.locked[s] = true
		p.list.pj[s] = int32(ls.PJ)
		p.list.site[s] = int32(ls.Site)
		p.locksBySite[ls.Site] = append(p.locksBySite[ls.Site], pg)
	}
}

// Unlock implements Policy: release any locks covering the given pages.
func (p *CD) Unlock(pages []mem.Page) {
	if p.degraded {
		return
	}
	if p.Check != nil {
		if err := p.validateUnlock(pages); err != nil {
			p.degrade(err.Error())
			return
		}
	}
	for _, pg := range pages {
		if s := p.list.lookupResident(pg); s >= 0 && p.list.locked[s] {
			p.releaseLock(s)
		}
	}
}

// ForceRelease makes the operating system reclaim up to k locked pages
// without waiting for UNLOCK, as §3.2 permits under high memory
// contention ("the operating system is entitled to release the locked
// pages"). Pages are released in increasing lock priority — largest PJ
// first. It returns how many pages were released (and evicted).
func (p *CD) ForceRelease(k int) int {
	released := 0
	for released < k {
		s := p.list.lowestPriorityLocked()
		if s < 0 {
			break
		}
		victim := p.list.idx.pageOf(s)
		p.releaseLock(s)
		p.list.removeSlot(s)
		p.LockReleases++
		if p.Hooks != nil && p.Hooks.LockRelease != nil {
			p.Hooks.LockRelease(victim)
		}
		released++
	}
	return released
}

// Reclaim makes the operating system take back up to k page frames from
// the program immediately (a capacity shrink under multiprogramming
// pressure): unlocked pages are evicted LRU-first, then locked pages are
// force-released in increasing lock priority. It returns the number of
// frames actually reclaimed. A degraded policy reclaims nothing — its WS
// fallback is variable-allocation and sizes itself.
//
// Reclaim must be serialized with StepBlock/Ref on the same instance
// (see the CD concurrency contract); an overlapping call panics.
func (p *CD) Reclaim(k int) int {
	p.acquire("Reclaim")
	defer p.release()
	if p.degraded {
		return 0
	}
	taken := 0
	for taken < k {
		v, ok := p.list.evictLRU()
		if !ok {
			break
		}
		if p.onEvict != nil {
			p.onEvict(v)
		}
		taken++
	}
	if taken < k {
		taken += p.ForceRelease(k - taken)
	}
	return taken
}

// Resident implements Policy.
//
// CD is charged its resident set (the default Charge rule): an ALLOCATE
// grant is a ceiling up to which the operating system assigns frames on
// demand, not a reserved partition — page frames are handed out as the
// program faults them in and returned as directives shrink the ceiling.
// This matches the paper's sub-2-page average CD allocations (e.g. MAIN3's
// MEM of 1.11 pages), which are only possible under demand assignment.
func (p *CD) Resident() int {
	if p.degraded {
		return p.fallback.Resident()
	}
	return p.list.len()
}

// Reset implements Policy.
func (p *CD) Reset() {
	p.alloc = p.minAlloc
	p.list.reset()
	p.locked = 0
	// Truncate the per-site lock lists in place so a replay reuses their
	// backing arrays instead of reallocating them on every run.
	for site, ps := range p.locksBySite {
		p.locksBySite[site] = ps[:0]
	}
	p.SwapSignals = 0
	p.LockReleases = 0
	p.degraded = false
	p.degradedReason = ""
	p.fallback = nil
}

// LockedPages returns the number of currently locked resident pages.
func (p *CD) LockedPages() int { return p.locked }

var _ Policy = (*CD)(nil)
var _ Policy = (*LRU)(nil)
var _ Policy = (*FIFO)(nil)
var _ Policy = (*WS)(nil)
var _ Policy = (*OPT)(nil)
