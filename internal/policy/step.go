package policy

import "cdmm/internal/mem"

// Step implements Stepper. LRU is charged its whole fixed partition.
func (p *LRU) Step(pg mem.Page) (bool, int, int) {
	fault := p.Ref(pg)
	return fault, p.list.n, p.frames
}

// Step implements Stepper. FIFO is charged its whole fixed partition.
func (p *FIFO) Step(pg mem.Page) (bool, int, int) {
	fault := p.Ref(pg)
	return fault, p.qlen, p.frames
}

// Step implements Stepper. WS is charged its working set.
func (p *WS) Step(pg mem.Page) (bool, int, int) {
	fault := p.Ref(pg)
	return fault, p.resident, p.resident
}

// Step implements Stepper. CD is charged its demand-assigned resident set.
func (p *CD) Step(pg mem.Page) (bool, int, int) {
	fault := p.Ref(pg)
	if p.degraded {
		r := p.fallback.Resident()
		return fault, r, r
	}
	return fault, p.list.n, p.list.n
}

// Step implements Stepper.
func (p *PFF) Step(pg mem.Page) (bool, int, int) {
	fault := p.Ref(pg)
	return fault, p.nres, p.nres
}

// Step implements Stepper.
func (p *SWS) Step(pg mem.Page) (bool, int, int) {
	fault := p.Ref(pg)
	return fault, p.nres, p.nres
}

// Step implements Stepper.
func (p *VSWS) Step(pg mem.Page) (bool, int, int) {
	fault := p.Ref(pg)
	return fault, p.nres, p.nres
}

// Step implements Stepper.
func (p *DWS) Step(pg mem.Page) (bool, int, int) {
	fault := p.Ref(pg)
	r := p.ws.resident + p.heldCount
	return fault, r, r
}

// Step implements Stepper. OPT is charged its whole fixed partition.
func (p *OPT) Step(pg mem.Page) (bool, int, int) {
	fault := p.Ref(pg)
	return fault, len(p.resident), p.frames
}

var (
	_ Stepper = (*LRU)(nil)
	_ Stepper = (*FIFO)(nil)
	_ Stepper = (*WS)(nil)
	_ Stepper = (*CD)(nil)
	_ Stepper = (*PFF)(nil)
	_ Stepper = (*SWS)(nil)
	_ Stepper = (*VSWS)(nil)
	_ Stepper = (*DWS)(nil)
	_ Stepper = (*OPT)(nil)
)
