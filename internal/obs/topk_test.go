package obs

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestTopKExactBelowCapacity(t *testing.T) {
	tk := NewTopK(8)
	tk.Add(3, 10)
	tk.Add(1, 30)
	tk.Add(2, 20)
	tk.Add(3, 5)
	got := tk.Entries()
	want := []TopEntry{{Key: 1, Count: 30}, {Key: 2, Count: 20}, {Key: 3, Count: 15}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("entries = %+v, want %+v", got, want)
	}
}

// TestTopKGuarantee checks the space-saving invariants against exact
// counts on a skewed random stream: every entry's true total lies in
// [Count-Err, Count], and any key with true total > N/k is tracked.
func TestTopKGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const k = 16
	tk := NewTopK(k)
	truth := map[int]int64{}
	var total int64
	for i := 0; i < 20000; i++ {
		// Zipf-ish: a few heavy keys over a long tail.
		var key int
		if rng.Intn(3) == 0 {
			key = rng.Intn(4)
		} else {
			key = 4 + rng.Intn(500)
		}
		inc := int64(1 + rng.Intn(5))
		tk.Add(key, inc)
		truth[key] += inc
		total += inc
	}
	tracked := map[int]TopEntry{}
	for _, e := range tk.Entries() {
		tracked[e.Key] = e
		if tr := truth[e.Key]; tr > e.Count || tr < e.Count-e.Err {
			t.Errorf("key %d: true %d outside [%d, %d]", e.Key, tr, e.Count-e.Err, e.Count)
		}
	}
	for key, tr := range truth {
		if tr > total/int64(k) {
			if _, ok := tracked[key]; !ok {
				t.Errorf("heavy hitter %d (true %d > N/k=%d) missing from sketch", key, tr, total/int64(k))
			}
		}
	}
}

// TestTopKMergeDisjointExact: shards partition the key space, so merging
// their sketches is an exact union and deterministic in any fixed order.
func TestTopKMergeDisjointExact(t *testing.T) {
	a, b := NewTopK(4), NewTopK(4)
	a.Add(1, 100)
	a.Add(2, 50)
	b.Add(10, 75)
	b.Add(11, 60)
	b.Add(12, 5)
	m := a.Clone()
	m.Merge(b)
	got := m.Entries()
	want := []TopEntry{{Key: 1, Count: 100}, {Key: 10, Count: 75}, {Key: 11, Count: 60}, {Key: 2, Count: 50}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged = %+v, want %+v", got, want)
	}
	// Merge must keep the slot index consistent for further Adds.
	m.Add(10, 30)
	if e := m.Entries()[0]; e.Key != 10 || e.Count != 105 {
		t.Fatalf("post-merge Add landed wrong: %+v", e)
	}
}

func TestTopKEvictionDeterministic(t *testing.T) {
	run := func() []TopEntry {
		tk := NewTopK(2)
		tk.Add(5, 3)
		tk.Add(7, 3) // tie with key 5: smaller key evicts first
		tk.Add(9, 1) // evicts key 5, inherits err=3
		return tk.Entries()
	}
	got := run()
	want := []TopEntry{{Key: 9, Count: 4, Err: 3}, {Key: 7, Count: 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("entries = %+v, want %+v", got, want)
	}
	for i := 0; i < 10; i++ {
		if again := run(); !reflect.DeepEqual(again, got) {
			t.Fatal("eviction is not deterministic across runs")
		}
	}
}

func TestTopKClone(t *testing.T) {
	tk := NewTopK(4)
	tk.Add(1, 5)
	c := tk.Clone()
	c.Add(1, 5)
	c.Add(2, 1)
	if tk.Entries()[0].Count != 5 || len(tk.Entries()) != 1 {
		t.Error("clone mutated the original")
	}
	if c.Entries()[0].Count != 10 {
		t.Error("clone lost state")
	}
}
