package obs

import "strconv"

// Event kinds emitted by the simulator. The stream of one run is framed
// by a KindRun event (policy name, trace length) and a KindEnd event
// (summary aggregates); in between, fault/res events carry enough state
// to reconstruct the run's performance indexes exactly (see Replay).
const (
	KindRun     = "run"     // run start: Label=policy, Refs=trace length
	KindFault   = "fault"   // page fault: T, I, Page, Res
	KindRes     = "res"     // space-time charge changed: T, I, Res
	KindAlloc   = "alloc"   // ALLOCATE directive executed: T, Label
	KindPhase   = "phase"   // CD allocation target changed: T, Prev, Alloc
	KindLock    = "lock"    // LOCK executed: T, PJ, Site, Pages
	KindUnlock  = "unlock"  // UNLOCK executed: T, Pages
	KindLockRel = "lockrel" // OS force-released a locked page: T, Page
	KindSwap    = "swap"    // swap signal / swap-out: T, Job, Why
	KindDegrade = "degrade" // CD directive-contract violation: T, Why (policy falls back to WS)
	KindJobDone = "jobdone" // multiprogramming job finished: T, Job, Refs, PF
	KindSweep   = "sweep"   // sweep point summary: Label, PF, Mem, ST
	KindEnd     = "end"     // run end: T, Refs, PF, Mem
)

// Event is one structured trace record. T is the virtual time at which
// the event completed (global ticks in multiprogramming runs); I is the
// number of page references executed so far. Which of the remaining
// fields are meaningful depends on Kind — see the Kind constants.
type Event struct {
	T      int64   `json:"t"`
	Kind   string  `json:"ev"`
	I      int     `json:"i,omitempty"`
	Page   int     `json:"page"`
	Res    int     `json:"res,omitempty"`
	Prev   int     `json:"prev,omitempty"`
	Alloc  int     `json:"alloc,omitempty"`
	PJ     int     `json:"pj,omitempty"`
	Site   int     `json:"site,omitempty"`
	Pages  int     `json:"pages,omitempty"`
	Refs   int     `json:"refs,omitempty"`
	Faults int     `json:"pf,omitempty"`
	Mem    float64 `json:"mem,omitempty"`
	ST     float64 `json:"st,omitempty"`
	Label  string  `json:"label,omitempty"`
	Job    string  `json:"job,omitempty"`
	Why    string  `json:"why,omitempty"`
}

// Tracer receives structured events. Implementations must not retain the
// event beyond the call unless they copy it (Event is a value type, so
// plain assignment copies).
type Tracer interface {
	Emit(e Event)
}

// Collector is an in-memory Tracer, used by tests and the timeline
// renderer.
type Collector struct {
	Events []Event
}

// Emit implements Tracer.
func (c *Collector) Emit(e Event) { c.Events = append(c.Events, e) }

// MultiTracer fans an event out to several tracers.
type MultiTracer []Tracer

// Emit implements Tracer.
func (m MultiTracer) Emit(e Event) {
	for _, t := range m {
		t.Emit(e)
	}
}

// AppendJSON renders the event as a single JSON object. Fields are
// emitted kind-aware: page is always present for fault/lockrel events
// (page 0 is a valid page number), other fields only when set — so the
// stream stays compact over multi-million-reference runs.
func (e Event) AppendJSON(b []byte) []byte {
	b = append(b, `{"t":`...)
	b = strconv.AppendInt(b, e.T, 10)
	b = append(b, `,"ev":`...)
	b = strconv.AppendQuote(b, e.Kind)
	if e.I != 0 {
		b = append(b, `,"i":`...)
		b = strconv.AppendInt(b, int64(e.I), 10)
	}
	if e.Page != 0 || e.Kind == KindFault || e.Kind == KindLockRel {
		b = append(b, `,"page":`...)
		b = strconv.AppendInt(b, int64(e.Page), 10)
	}
	if e.Res != 0 {
		b = append(b, `,"res":`...)
		b = strconv.AppendInt(b, int64(e.Res), 10)
	}
	if e.Prev != 0 {
		b = append(b, `,"prev":`...)
		b = strconv.AppendInt(b, int64(e.Prev), 10)
	}
	if e.Alloc != 0 {
		b = append(b, `,"alloc":`...)
		b = strconv.AppendInt(b, int64(e.Alloc), 10)
	}
	if e.PJ != 0 {
		b = append(b, `,"pj":`...)
		b = strconv.AppendInt(b, int64(e.PJ), 10)
	}
	if e.Site != 0 {
		b = append(b, `,"site":`...)
		b = strconv.AppendInt(b, int64(e.Site), 10)
	}
	if e.Pages != 0 {
		b = append(b, `,"pages":`...)
		b = strconv.AppendInt(b, int64(e.Pages), 10)
	}
	if e.Refs != 0 {
		b = append(b, `,"refs":`...)
		b = strconv.AppendInt(b, int64(e.Refs), 10)
	}
	if e.Faults != 0 {
		b = append(b, `,"pf":`...)
		b = strconv.AppendInt(b, int64(e.Faults), 10)
	}
	if e.Mem != 0 {
		b = append(b, `,"mem":`...)
		b = appendFloat(b, e.Mem)
	}
	if e.ST != 0 {
		b = append(b, `,"st":`...)
		b = appendFloat(b, e.ST)
	}
	if e.Label != "" {
		b = append(b, `,"label":`...)
		b = strconv.AppendQuote(b, e.Label)
	}
	if e.Job != "" {
		b = append(b, `,"job":`...)
		b = strconv.AppendQuote(b, e.Job)
	}
	if e.Why != "" {
		b = append(b, `,"why":`...)
		b = strconv.AppendQuote(b, e.Why)
	}
	return append(b, '}')
}

// Replay aggregates a single-run event stream back into the run's summary
// figures: the number of references executed, the fault count, and the
// space-time memory sum (Σ charge sampled after every reference) —
// exactly the quantities vmsim.Run accumulates, so a JSONL file can be
// audited against the printed Result. The stream must contain the run's
// KindEnd event (for the reference count) and the KindRes charge-change
// events the instrumented simulator emits.
func Replay(events []Event) (refs, faults int, memSum float64) {
	lastI := 0 // reference index of the latest charge change
	cur := 0   // charge in effect since lastI
	for _, e := range events {
		switch e.Kind {
		case KindFault:
			faults++
		case KindRes:
			// References lastI+1 .. e.I-1 were charged cur pages; the
			// reference at e.I established the new charge.
			memSum += float64(cur) * float64(e.I-1-lastI)
			memSum += float64(e.Res)
			lastI = e.I
			cur = e.Res
		case KindEnd:
			refs = e.Refs
		}
	}
	memSum += float64(cur) * float64(refs-lastI)
	return refs, faults, memSum
}
