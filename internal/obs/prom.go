package obs

import (
	"io"
	"math"
	"strconv"
	"strings"
)

// Prometheus text-format (version 0.0.4) export of a Registry snapshot.
//
// Every metric is prefixed with a namespace ("cdmm" for the telemetry
// server), counters gain the conventional `_total` suffix, and
// histograms render the cumulative `_bucket{le="..."}` series plus
// `_sum` and `_count`, ending with the mandatory `le="+Inf"` bucket.
// Names are emitted in sorted order per section, so consecutive scrapes
// of an idle registry are byte-identical — convenient for tests and for
// diffing scrapes by eye.

// PromContentType is the Content-Type a /metrics endpoint should serve:
// the Prometheus text exposition format this package writes.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders the registry in the Prometheus text exposition
// format under the given namespace prefix (pass "" for none). It takes
// one registry snapshot; the hot path is never touched.
func (r *Registry) WritePrometheus(w io.Writer, namespace string) error {
	return r.Snapshot().WritePrometheus(w, namespace)
}

// WritePrometheus renders an already-taken snapshot; see
// Registry.WritePrometheus.
func (s Snapshot) WritePrometheus(w io.Writer, namespace string) error {
	_, err := w.Write(s.AppendPrometheus(make([]byte, 0, 4096), namespace))
	return err
}

// AppendPrometheus appends the snapshot's exposition-format rendering to
// b and returns the extended slice. Callers that reuse b (and the
// Snapshot, via SnapshotInto) scrape without allocating.
func (s Snapshot) AppendPrometheus(b []byte, namespace string) []byte {
	// The sanitized metric name is rebuilt into a stack scratch buffer
	// per metric so the scrape loop performs no string allocation.
	var nameBuf [128]byte
	for _, c := range s.Counters {
		name := appendPromName(nameBuf[:0], namespace, c.Name, "_total")
		b = appendPromHeader(b, name, c.Name, "counter")
		b = append(b, name...)
		b = append(b, ' ')
		b = strconv.AppendInt(b, c.Value, 10)
		b = append(b, '\n')
	}
	for _, g := range s.Gauges {
		name := appendPromName(nameBuf[:0], namespace, g.Name, "")
		b = appendPromHeader(b, name, g.Name, "gauge")
		b = append(b, name...)
		b = append(b, ' ')
		b = appendPromFloat(b, g.Value)
		b = append(b, '\n')
	}
	for _, h := range s.Histograms {
		name := appendPromName(nameBuf[:0], namespace, h.Name, "")
		b = appendPromHeader(b, name, h.Name, "histogram")
		var cum int64
		for _, bk := range h.Buckets {
			cum += bk.N
			b = append(b, name...)
			b = append(b, `_bucket{le="`...)
			if bk.Infinite() {
				b = append(b, `+Inf`...)
			} else {
				b = appendPromFloat(b, bk.LE)
			}
			b = append(b, `"} `...)
			b = strconv.AppendInt(b, cum, 10)
			b = append(b, '\n')
		}
		b = append(b, name...)
		b = append(b, `_sum `...)
		b = appendPromFloat(b, h.Sum)
		b = append(b, '\n')
		b = append(b, name...)
		b = append(b, `_count `...)
		b = strconv.AppendInt(b, h.Count, 10)
		b = append(b, '\n')
	}
	return b
}

// appendPromHeader emits the # HELP and # TYPE comment lines. The help
// text is the registry-level metric name with exposition-format escaping
// (backslash and newline), which documents the mapping from the sanitized
// Prometheus name back to the simulator's own.
func appendPromHeader(b []byte, name []byte, origin, typ string) []byte {
	b = append(b, `# HELP `...)
	b = append(b, name...)
	b = append(b, ' ')
	b = append(b, `simulator metric `...)
	b = appendPromHelp(b, origin)
	b = append(b, '\n')
	b = append(b, `# TYPE `...)
	b = append(b, name...)
	b = append(b, ' ')
	b = append(b, typ...)
	b = append(b, '\n')
	return b
}

// appendPromHelp escapes a HELP text per the exposition format: backslash
// and line feed (double quotes are only escaped inside label values).
func appendPromHelp(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b = append(b, '\\', '\\')
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, s[i])
		}
	}
	return b
}

// EscapeLabelValue escapes a label value per the exposition format:
// backslash, double quote and line feed.
func EscapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// appendPromName builds the exported metric name into b: namespace_name
// with every character outside [a-zA-Z0-9_:] replaced by '_' (and a '_'
// prefix when the name would start with a digit), plus an optional
// suffix — which is not doubled when the metric name already carries it.
// Appending instead of returning a string keeps the scrape loop free of
// per-metric allocations.
func appendPromName(b []byte, namespace, name, suffix string) []byte {
	start := len(b)
	if namespace != "" {
		b = append(b, namespace...)
		b = append(b, '_')
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b = append(b, c)
		case c >= '0' && c <= '9':
			if len(b) == start {
				b = append(b, '_')
			}
			b = append(b, c)
		default:
			b = append(b, '_')
		}
	}
	if suffix != "" && !hasSuffix(b[start:], suffix) {
		b = append(b, suffix...)
	}
	return b
}

// hasSuffix is bytes.HasSuffix without the []byte(suffix) conversion.
func hasSuffix(b []byte, suffix string) bool {
	if len(b) < len(suffix) {
		return false
	}
	return string(b[len(b)-len(suffix):]) == suffix
}

// appendPromFloat renders a float the way Prometheus clients expect:
// shortest round-trip decimal, with +Inf/-Inf/NaN spelled out.
func appendPromFloat(b []byte, v float64) []byte {
	switch {
	case math.IsInf(v, 1):
		return append(b, `+Inf`...)
	case math.IsInf(v, -1):
		return append(b, `-Inf`...)
	case math.IsNaN(v):
		return append(b, `NaN`...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}
