package obs

import "slices"

// TopK is a space-saving heavy-hitter sketch over integer keys (tenant
// ids in the kernel). It tracks at most k entries in O(k) memory; Add is
// a map hit for tracked keys and an O(k) min-scan otherwise. The classic
// space-saving guarantees hold: any key whose true total exceeds N/k
// (N = sum of all increments) is present in the sketch, and for every
// entry the true total lies within [Count-Err, Count].
//
// Like Log2Hist, a TopK is NOT safe for concurrent use: one sketch per
// shard, merged at a barrier. All state is integral and every tie is
// broken deterministically (smallest count, then smallest key, evicts
// first), so sketches are byte-identical across runs at any parallelism.
type TopK struct {
	k       int
	slots   map[int]int // key -> index into entries
	entries []TopEntry
}

// TopEntry is one sketch entry: the key, its (over-)estimated total, and
// the maximum possible overestimate. True total ∈ [Count-Err, Count].
type TopEntry struct {
	Key   int   `json:"key"`
	Count int64 `json:"count"`
	Err   int64 `json:"err,omitempty"`
}

// NewTopK returns a sketch tracking at most k entries (k >= 1).
func NewTopK(k int) *TopK {
	if k < 1 {
		k = 1
	}
	return &TopK{k: k, slots: make(map[int]int, k)}
}

// K returns the sketch capacity.
func (t *TopK) K() int { return t.k }

// Add credits inc (> 0) to key. If the sketch is full and key is
// untracked, the minimum entry is evicted space-saving style: the new
// entry inherits the evictee's count as its error bound.
func (t *TopK) Add(key int, inc int64) {
	if i, ok := t.slots[key]; ok {
		t.entries[i].Count += inc
		return
	}
	if len(t.entries) < t.k {
		t.slots[key] = len(t.entries)
		t.entries = append(t.entries, TopEntry{Key: key, Count: inc})
		return
	}
	m := 0
	for i := 1; i < len(t.entries); i++ {
		if e, min := t.entries[i], t.entries[m]; e.Count < min.Count || (e.Count == min.Count && e.Key < min.Key) {
			m = i
		}
	}
	old := t.entries[m]
	delete(t.slots, old.Key)
	t.slots[key] = m
	t.entries[m] = TopEntry{Key: key, Count: old.Count + inc, Err: old.Count}
}

// Entries returns the tracked entries ranked best-first: count
// descending, then error ascending (better-attested first), then key
// ascending. The returned slice is freshly allocated.
func (t *TopK) Entries() []TopEntry {
	out := append([]TopEntry(nil), t.entries...)
	rankEntries(out)
	return out
}

func rankEntries(es []TopEntry) {
	slices.SortFunc(es, func(a, b TopEntry) int {
		switch {
		case a.Count != b.Count:
			if a.Count > b.Count {
				return -1
			}
			return 1
		case a.Err != b.Err:
			if a.Err < b.Err {
				return -1
			}
			return 1
		case a.Key != b.Key:
			if a.Key < b.Key {
				return -1
			}
			return 1
		}
		return 0
	})
}

// Merge folds o into t by exact union: counts and error bounds for
// shared keys add (the bounds stay valid), then only the top k entries
// by rank are kept. When key spaces are disjoint — the kernel's shards
// partition tenants — the union is exact and the result is independent
// of which sketch absorbed which.
func (t *TopK) Merge(o *TopK) {
	if o == nil || len(o.entries) == 0 {
		return
	}
	for _, e := range o.entries {
		if i, ok := t.slots[e.Key]; ok {
			t.entries[i].Count += e.Count
			t.entries[i].Err += e.Err
		} else {
			t.slots[e.Key] = len(t.entries)
			t.entries = append(t.entries, e)
		}
	}
	if len(t.entries) > t.k {
		rankEntries(t.entries)
		for _, e := range t.entries[t.k:] {
			delete(t.slots, e.Key)
		}
		t.entries = t.entries[:t.k]
		for i, e := range t.entries {
			t.slots[e.Key] = i
		}
	}
}

// Clone returns an independent deep copy.
func (t *TopK) Clone() *TopK {
	c := &TopK{k: t.k, slots: make(map[int]int, len(t.slots)), entries: append([]TopEntry(nil), t.entries...)}
	for k, v := range t.slots {
		c.slots[k] = v
	}
	return c
}
