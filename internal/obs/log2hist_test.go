package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

func TestLog2Buckets(t *testing.T) {
	cases := []struct {
		v      int64
		idx    int
		lo, hi int64
	}{
		{-5, 0, 0, 0},
		{0, 0, 0, 0},
		{1, 1, 1, 1},
		{2, 2, 2, 3},
		{3, 2, 2, 3},
		{4, 3, 4, 7},
		{1023, 10, 512, 1023},
		{1024, 11, 1024, 2047},
		{math.MaxInt64, 63, 1 << 62, math.MaxInt64},
	}
	for _, c := range cases {
		if got := log2Index(c.v); got != c.idx {
			t.Errorf("log2Index(%d) = %d, want %d", c.v, got, c.idx)
		}
		lo, hi := Log2BucketBounds(c.idx)
		if lo != c.lo || hi != c.hi {
			t.Errorf("bounds(%d) = [%d,%d], want [%d,%d]", c.idx, lo, hi, c.lo, c.hi)
		}
		if c.v >= 0 && (c.v < lo || c.v > hi) {
			t.Errorf("value %d outside its own bucket [%d,%d]", c.v, lo, hi)
		}
	}
}

// TestLog2QuantileBounds checks the exactness guarantee: for random data
// the true rank-quantile always lies within the returned bounds, and the
// bounds never span more than a factor of two (beyond min/max clamping).
func TestLog2QuantileBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var h Log2Hist
		n := 1 + rng.Intn(400)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = rng.Int63n(1 << uint(1+rng.Intn(40)))
			h.Observe(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 1} {
			rank := int(math.Ceil(q * float64(n)))
			if rank < 1 {
				rank = 1
			}
			truth := vals[rank-1]
			lo, hi := h.Quantile(q)
			if truth < lo || truth > hi {
				t.Fatalf("trial %d q=%g: true quantile %d outside [%d,%d]", trial, q, truth, lo, hi)
			}
			if lo > 0 && hi > 2*lo {
				t.Fatalf("trial %d q=%g: bounds [%d,%d] wider than 2x", trial, q, lo, hi)
			}
		}
	}
}

// TestLog2MergeOrderIndependent is the merge-commutativity property test:
// any merge order over the same shard histograms yields identical state.
func TestLog2MergeOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		shards := make([]*Log2Hist, 2+rng.Intn(6))
		for i := range shards {
			shards[i] = &Log2Hist{}
			for n := rng.Intn(200); n > 0; n-- {
				shards[i].Observe(rng.Int63n(1 << 30))
			}
		}
		merge := func(order []int) Log2Hist {
			var m Log2Hist
			for _, i := range order {
				m.Merge(shards[i])
			}
			return m
		}
		order := make([]int, len(shards))
		for i := range order {
			order[i] = i
		}
		want := merge(order)
		for p := 0; p < 10; p++ {
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			if got := merge(order); got != want {
				t.Fatalf("trial %d: merge order %v changed the result", trial, order)
			}
		}
		// Snapshot-level merge must agree with histogram-level merge
		// (Log2Snapshot holds a slice, so compare the JSON renderings).
		snap := shards[0].Snapshot()
		for _, sh := range shards[1:] {
			snap = snap.Merge(sh.Snapshot())
		}
		a, _ := json.Marshal(snap)
		b, _ := json.Marshal(want.Snapshot())
		if !bytes.Equal(a, b) {
			t.Fatalf("trial %d: snapshot merge disagrees with hist merge\n%s\n%s", trial, a, b)
		}
	}
}

func TestLog2EmptyAndAggregates(t *testing.T) {
	var h Log2Hist
	if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Error("empty histogram aggregates must be zero")
	}
	if lo, hi := h.Quantile(0.5); lo != 0 || hi != 0 {
		t.Errorf("empty quantile = [%d,%d], want [0,0]", lo, hi)
	}
	for _, v := range []int64{5, 9, 1200, 0} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 1214 || h.Min() != 0 || h.Max() != 1200 {
		t.Errorf("aggregates = %d/%d/%d/%d", h.Count(), h.Sum(), h.Min(), h.Max())
	}
	s := h.Snapshot()
	if s.Mean() != 1214.0/4 {
		t.Errorf("mean = %g", s.Mean())
	}
	var total int64
	for _, bk := range s.Buckets {
		total += bk.N
		if bk.N == 0 {
			t.Error("snapshot must only carry occupied buckets")
		}
	}
	if total != 4 {
		t.Errorf("bucket total = %d, want 4", total)
	}
	// Round-trip through the snapshot.
	if rt := s.Hist(); rt != h {
		t.Error("snapshot round-trip changed the histogram")
	}
}

func TestLog2PromGolden(t *testing.T) {
	var h Log2Hist
	for _, v := range []int64{0, 1, 1, 3, 7, 7, 7, 100, 5000} {
		h.Observe(v)
	}
	b := h.Snapshot().AppendProm(nil, "cdmm_kernel_fault_latency", "kernel fault-service virtual latency per quantum")
	golden := filepath.Join("testdata", "prom_log2.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -run Golden -update` to create it)", err)
	}
	if !bytes.Equal(b, want) {
		t.Errorf("log2 prometheus text drifted:\n--- got ---\n%s\n--- want ---\n%s", b, want)
	}
	// And it must satisfy the generic exposition checker.
	s := parseProm(t, string(b))
	if got := s[`cdmm_kernel_fault_latency_bucket{le="+Inf"}`]; got != 9 {
		t.Errorf("+Inf bucket = %g, want 9", got)
	}
	if got := s["cdmm_kernel_fault_latency_count"]; got != 9 {
		t.Errorf("_count = %g, want 9", got)
	}
	if got := s["cdmm_kernel_fault_latency_sum"]; got != 5126 {
		t.Errorf("_sum = %g, want 5126", got)
	}
	// le="1" covers the two 1s plus the single 0 (bucket 0 has hi=0,
	// rendered cumulatively before it).
	if got := s[`cdmm_kernel_fault_latency_bucket{le="7"}`]; got != 7 {
		t.Errorf("le=7 bucket = %g, want 7", got)
	}
}
