package obs

import (
	"cmp"
	"math"
	"slices"
)

// CounterSnapshot is one counter's name and value at snapshot time.
type CounterSnapshot struct {
	Name  string
	Value int64
}

// GaugeSnapshot is one gauge's name and last-set value.
type GaugeSnapshot struct {
	Name  string
	Value float64
}

// BucketSnapshot is one histogram bucket: the inclusive upper bound
// (math.Inf(1) for the overflow bucket) and the bucket's own count
// (non-cumulative; Prometheus rendering accumulates on the way out).
type BucketSnapshot struct {
	LE float64
	N  int64
}

// HistogramSnapshot is one histogram's aggregates and buckets.
type HistogramSnapshot struct {
	Name    string
	Count   int64
	Sum     float64
	Min     float64
	Max     float64
	Buckets []BucketSnapshot
}

// Snapshot is a point-in-time read of a whole registry with every
// section sorted by name, the single source every export path (JSON
// file, human rendering, Prometheus scrape) formats from.
type Snapshot struct {
	Counters   []CounterSnapshot
	Gauges     []GaugeSnapshot
	Histograms []HistogramSnapshot
}

// Snapshot reads all counters, gauges and histograms in one pass.
// Values observed concurrently with the snapshot land in it or in the
// next one; within a histogram the count, sum and buckets may be skewed
// by in-flight observations (each field is individually atomic), which
// is as consistent as a scrape of a live system can be without stopping
// the world.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	r.SnapshotInto(&s)
	return s
}

// SnapshotInto refills s from the registry, reusing s's slices (and each
// histogram entry's bucket slice) so a tight scrape loop that keeps one
// Snapshot around stays allocation-free once capacities have grown to
// fit. The handles' atomics are read under the registration lock, which
// only contends with registration of new metrics — never the hot path.
func (r *Registry) SnapshotInto(s *Snapshot) {
	r.mu.Lock()
	s.Counters = s.Counters[:0]
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterSnapshot{Name: name, Value: c.Value()})
	}
	s.Gauges = s.Gauges[:0]
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: name, Value: g.Value()})
	}
	// Truncating s.Histograms parks the previous entries — and their
	// bucket slices — in the backing array; entry i's old bucket slice
	// is captured before append overwrites slot i, so its capacity is
	// recycled for the new entry.
	old := s.Histograms
	s.Histograms = s.Histograms[:0]
	n := 0
	for name, h := range r.hists {
		var bks []BucketSnapshot
		if n < len(old) {
			bks = old[n].Buckets[:0]
		}
		for i := 0; i < h.NumBuckets(); i++ {
			le, cnt := h.Bucket(i)
			bks = append(bks, BucketSnapshot{LE: le, N: cnt})
		}
		s.Histograms = append(s.Histograms, HistogramSnapshot{
			Name:    name,
			Count:   h.Count(),
			Sum:     h.Sum(),
			Min:     h.Min(),
			Max:     h.Max(),
			Buckets: bks,
		})
		n++
	}
	r.mu.Unlock()
	slices.SortFunc(s.Counters, func(a, b CounterSnapshot) int { return cmp.Compare(a.Name, b.Name) })
	slices.SortFunc(s.Gauges, func(a, b GaugeSnapshot) int { return cmp.Compare(a.Name, b.Name) })
	slices.SortFunc(s.Histograms, func(a, b HistogramSnapshot) int { return cmp.Compare(a.Name, b.Name) })
}

// Infinite reports whether the bucket is the +Inf overflow bucket.
func (b BucketSnapshot) Infinite() bool { return math.IsInf(b.LE, 1) }
