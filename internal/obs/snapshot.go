package obs

import "math"

// CounterSnapshot is one counter's name and value at snapshot time.
type CounterSnapshot struct {
	Name  string
	Value int64
}

// GaugeSnapshot is one gauge's name and last-set value.
type GaugeSnapshot struct {
	Name  string
	Value float64
}

// BucketSnapshot is one histogram bucket: the inclusive upper bound
// (math.Inf(1) for the overflow bucket) and the bucket's own count
// (non-cumulative; Prometheus rendering accumulates on the way out).
type BucketSnapshot struct {
	LE float64
	N  int64
}

// HistogramSnapshot is one histogram's aggregates and buckets.
type HistogramSnapshot struct {
	Name    string
	Count   int64
	Sum     float64
	Min     float64
	Max     float64
	Buckets []BucketSnapshot
}

// Snapshot is a point-in-time read of a whole registry with every
// section sorted by name, the single source every export path (JSON
// file, human rendering, Prometheus scrape) formats from.
type Snapshot struct {
	Counters   []CounterSnapshot
	Gauges     []GaugeSnapshot
	Histograms []HistogramSnapshot
}

// Snapshot reads all counters, gauges and histograms in one pass:
// the registration maps are copied under the registry lock, then each
// handle's atomics are read outside it. Values observed concurrently
// with the snapshot land in it or in the next one; within a histogram
// the count, sum and buckets may be skewed by in-flight observations
// (each field is individually atomic), which is as consistent as a
// scrape of a live system can be without stopping the world.
func (r *Registry) Snapshot() Snapshot {
	counters, gauges, hists := r.snapshot()
	var s Snapshot
	s.Counters = make([]CounterSnapshot, 0, len(counters))
	for _, k := range sortedKeys(counters) {
		s.Counters = append(s.Counters, CounterSnapshot{Name: k, Value: counters[k].Value()})
	}
	s.Gauges = make([]GaugeSnapshot, 0, len(gauges))
	for _, k := range sortedKeys(gauges) {
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: k, Value: gauges[k].Value()})
	}
	s.Histograms = make([]HistogramSnapshot, 0, len(hists))
	for _, k := range sortedKeys(hists) {
		h := hists[k]
		hs := HistogramSnapshot{
			Name:    k,
			Count:   h.Count(),
			Sum:     h.Sum(),
			Min:     h.Min(),
			Max:     h.Max(),
			Buckets: make([]BucketSnapshot, h.NumBuckets()),
		}
		for i := range hs.Buckets {
			le, n := h.Bucket(i)
			hs.Buckets[i] = BucketSnapshot{LE: le, N: n}
		}
		s.Histograms = append(s.Histograms, hs)
	}
	return s
}

// Infinite reports whether the bucket is the +Inf overflow bucket.
func (b BucketSnapshot) Infinite() bool { return math.IsInf(b.LE, 1) }
