package obs

import (
	"fmt"
	"strings"
)

// ReplayError is a replay-audit failure that can say *where* the stream
// diverged, not just that it did: which quantity disagreed, the event
// index anchoring the divergence, and the events surrounding that index.
type ReplayError struct {
	// Field names the disagreeing quantity: "refs", "pf", "mem" or
	// "structure" for a malformed stream.
	Field string
	// Got is the value replayed from the stream, Want the value the
	// simulation reported.
	Got, Want string
	// Index is the event index anchoring the divergence (the first
	// surplus fault, the malformed event, ...); -1 when the divergence
	// has no single anchor (e.g. missing events).
	Index int
	// Window renders the events nearest the anchor, one per line.
	Window string
}

// Error implements error.
func (e *ReplayError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "replay mismatch: %s replays to %s, result has %s", e.Field, e.Got, e.Want)
	if e.Index >= 0 {
		fmt.Fprintf(&b, " (diverges at event %d)", e.Index)
	}
	if e.Window != "" {
		b.WriteString("\nnearest events:\n")
		b.WriteString(e.Window)
	}
	return b.String()
}

// window renders events [idx-2, idx+2] one per line, marking idx with
// '>'. An out-of-range idx renders the stream tail.
func window(events []Event, idx int) string {
	if len(events) == 0 {
		return "  (empty stream)"
	}
	if idx < 0 || idx >= len(events) {
		idx = len(events) - 1
	}
	lo, hi := idx-2, idx+2
	if lo < 0 {
		lo = 0
	}
	if hi > len(events)-1 {
		hi = len(events) - 1
	}
	var b strings.Builder
	for i := lo; i <= hi; i++ {
		mark := "  "
		if i == idx {
			mark = "> "
		}
		fmt.Fprintf(&b, "%s[%d] %s", mark, i, string(events[i].AppendJSON(nil)))
		if i < hi {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// nthFault returns the index of the n-th (1-based) fault event, or -1.
func nthFault(events []Event, n int) int {
	seen := 0
	for i, e := range events {
		if e.Kind == KindFault {
			seen++
			if seen == n {
				return i
			}
		}
	}
	return -1
}

// AuditReplay replays the stream like Replay and compares against the
// simulation's own figures, returning a *ReplayError that pinpoints the
// divergence: structural anomalies (a charge event rewinding the
// reference index, events after the end marker, a missing end marker)
// anchor at the offending event; a fault-count surplus anchors at the
// first fault the result does not account for; other mismatches anchor
// at the stream tail. A nil return means the stream reproduces the run
// exactly.
func AuditReplay(events []Event, refs, faults int, memSum float64) error {
	lastI := 0
	endAt := -1
	for i, e := range events {
		if endAt >= 0 {
			return &ReplayError{
				Field:  "structure",
				Got:    fmt.Sprintf("%q event after the end marker", e.Kind),
				Want:   "end-terminated stream",
				Index:  i,
				Window: window(events, i),
			}
		}
		switch e.Kind {
		case KindRes:
			if e.I < lastI {
				return &ReplayError{
					Field:  "structure",
					Got:    fmt.Sprintf("charge event rewinds reference index %d -> %d", lastI, e.I),
					Want:   "monotone reference index",
					Index:  i,
					Window: window(events, i),
				}
			}
			lastI = e.I
		case KindEnd:
			endAt = i
		}
	}
	if len(events) > 0 && endAt < 0 {
		return &ReplayError{
			Field:  "structure",
			Got:    "stream without an end marker",
			Want:   "end-terminated stream",
			Index:  -1,
			Window: window(events, len(events)-1),
		}
	}

	gotRefs, gotFaults, gotMem := Replay(events)
	if gotFaults != faults {
		idx := -1
		if gotFaults > faults {
			// The first fault the result does not account for.
			idx = nthFault(events, faults+1)
		} else {
			// Fewer fault events than faults: the gap is visible at the
			// end marker, where the stream's accounting closes.
			idx = endAt
		}
		return &ReplayError{
			Field:  "pf",
			Got:    fmt.Sprintf("%d", gotFaults),
			Want:   fmt.Sprintf("%d", faults),
			Index:  idx,
			Window: window(events, idx),
		}
	}
	if gotRefs != refs {
		return &ReplayError{
			Field:  "refs",
			Got:    fmt.Sprintf("%d", gotRefs),
			Want:   fmt.Sprintf("%d", refs),
			Index:  endAt,
			Window: window(events, endAt),
		}
	}
	if gotMem != memSum {
		return &ReplayError{
			Field:  "mem",
			Got:    fmt.Sprintf("%g", gotMem),
			Want:   fmt.Sprintf("%g", memSum),
			Index:  endAt,
			Window: window(events, endAt),
		}
	}
	return nil
}
