package obs

import (
	"math"
	"math/bits"
	"strconv"
)

// Log2Hist is a fixed-size histogram of non-negative int64 values with
// power-of-two buckets: bucket 0 counts v <= 0, bucket i (i >= 1) counts
// 2^(i-1) <= v <= 2^i - 1. The bucket index is one bits.Len64 — no bound
// scan, no floats — which makes Observe cheap enough for a simulator hot
// loop, and because every field is an integer the histogram is exactly
// mergeable: merging shard-local histograms in a fixed order yields the
// same bytes at any worker count.
//
// Unlike Histogram, Log2Hist is deliberately NOT safe for concurrent
// use: the intended discipline is one histogram per shard, owned by the
// shard's goroutine, merged at a barrier. That keeps atomics (and their
// cross-core traffic) out of the hot loop entirely.
type Log2Hist struct {
	counts [log2Buckets]int64
	count  int64
	sum    int64
	min    int64 // valid only when count > 0
	max    int64 // valid only when count > 0
}

// log2Buckets covers bucket 0 (v <= 0) plus bits.Len64 outputs 1..64.
const log2Buckets = 65

// log2Index returns the bucket index for v.
func log2Index(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Log2BucketBounds returns the inclusive [lo, hi] value range of bucket i.
func Log2BucketBounds(i int) (lo, hi int64) {
	if i <= 0 {
		return 0, 0
	}
	if i >= 64 {
		// 2^63 is not representable in int64; the bucket is unreachable
		// for int64 observations but keep the bounds well-formed.
		return math.MaxInt64, math.MaxInt64
	}
	if i == 63 {
		return 1 << 62, math.MaxInt64
	}
	return 1 << (i - 1), 1<<i - 1
}

// Observe records one value.
func (h *Log2Hist) Observe(v int64) {
	h.counts[log2Index(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *Log2Hist) Count() int64 { return h.count }

// Sum returns the sum of observations.
func (h *Log2Hist) Sum() int64 { return h.sum }

// Min returns the smallest observation, or 0 when empty.
func (h *Log2Hist) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation, or 0 when empty.
func (h *Log2Hist) Max() int64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Mean returns the average observation, or 0 when empty.
func (h *Log2Hist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Merge adds o's observations into h. Because every field is an integer,
// merging is exact and commutative: any merge order over the same set of
// histograms produces identical state.
func (h *Log2Hist) Merge(o *Log2Hist) {
	if o == nil || o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.count == 0 || o.max > h.max {
		h.max = o.max
	}
	for i, n := range o.counts {
		h.counts[i] += n
	}
	h.count += o.count
	h.sum += o.sum
}

// Quantile returns the inclusive value bounds [lo, hi] of the bucket
// containing the q-quantile (0 < q <= 1) by observation rank. The true
// quantile is guaranteed to lie within the returned bounds — an exact
// error bar, not an estimate — and the bounds are at worst a factor of
// two apart. Returns (0, 0) when empty.
func (h *Log2Hist) Quantile(q float64) (lo, hi int64) {
	if h.count == 0 {
		return 0, 0
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum int64
	for i, n := range h.counts {
		cum += n
		if cum >= rank {
			lo, hi = Log2BucketBounds(i)
			// Tighten with the exact extremes: no observation lies
			// outside [min, max], so neither does any quantile.
			if h.min > lo {
				lo = h.min
			}
			if h.max < hi {
				hi = h.max
			}
			return lo, hi
		}
	}
	return h.min, h.max // unreachable: cum reaches count
}

// Snapshot returns the histogram's current state with only the occupied
// buckets, suitable for JSON export and for merging with other snapshots.
func (h *Log2Hist) Snapshot() Log2Snapshot {
	s := Log2Snapshot{Count: h.count, Sum: h.sum, Min: h.Min(), Max: h.Max()}
	for i, n := range h.counts {
		if n == 0 {
			continue
		}
		lo, hi := Log2BucketBounds(i)
		s.Buckets = append(s.Buckets, Log2Bucket{Idx: i, Lo: lo, Hi: hi, N: n})
	}
	return s
}

// Log2Bucket is one occupied bucket of a Log2Snapshot: its index, its
// inclusive value bounds and its (non-cumulative) count.
type Log2Bucket struct {
	Idx int   `json:"idx"`
	Lo  int64 `json:"lo"`
	Hi  int64 `json:"hi"`
	N   int64 `json:"n"`
}

// Log2Snapshot is a point-in-time copy of a Log2Hist with sparse buckets
// (only occupied ones, in ascending index order). Snapshots merge exactly
// like the histograms they were taken from.
type Log2Snapshot struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Min     int64        `json:"min"`
	Max     int64        `json:"max"`
	Buckets []Log2Bucket `json:"buckets,omitempty"`
}

// Hist rebuilds a Log2Hist from the snapshot.
func (s Log2Snapshot) Hist() Log2Hist {
	var h Log2Hist
	h.count, h.sum, h.min, h.max = s.Count, s.Sum, s.Min, s.Max
	for _, bk := range s.Buckets {
		if bk.Idx >= 0 && bk.Idx < log2Buckets {
			h.counts[bk.Idx] = bk.N
		}
	}
	return h
}

// Merge returns the exact merge of two snapshots.
func (s Log2Snapshot) Merge(o Log2Snapshot) Log2Snapshot {
	h := s.Hist()
	oh := o.Hist()
	h.Merge(&oh)
	return h.Snapshot()
}

// Mean returns the average observation, or 0 when empty.
func (s Log2Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns the bucket bounds containing the q-quantile; see
// Log2Hist.Quantile.
func (s Log2Snapshot) Quantile(q float64) (lo, hi int64) {
	h := s.Hist()
	return h.Quantile(q)
}

// AppendProm renders the snapshot as a Prometheus histogram under the
// given (already namespaced and sanitized) metric name: cumulative
// `_bucket{le="..."}` series for every occupied bucket plus the
// mandatory +Inf bucket, then `_sum` and `_count`. Log2 buckets use
// their inclusive integer upper bound as the `le` value, which is exact
// for integer observations.
func (s Log2Snapshot) AppendProm(b []byte, name, help string) []byte {
	b = append(b, `# HELP `...)
	b = append(b, name...)
	b = append(b, ' ')
	b = appendPromHelp(b, help)
	b = append(b, '\n')
	b = append(b, `# TYPE `...)
	b = append(b, name...)
	b = append(b, ` histogram`...)
	b = append(b, '\n')
	var cum int64
	for _, bk := range s.Buckets {
		cum += bk.N
		b = append(b, name...)
		b = append(b, `_bucket{le="`...)
		b = strconv.AppendInt(b, bk.Hi, 10)
		b = append(b, `"} `...)
		b = strconv.AppendInt(b, cum, 10)
		b = append(b, '\n')
	}
	b = append(b, name...)
	b = append(b, `_bucket{le="+Inf"} `...)
	b = strconv.AppendInt(b, s.Count, 10)
	b = append(b, '\n')
	b = append(b, name...)
	b = append(b, `_sum `...)
	b = strconv.AppendInt(b, s.Sum, 10)
	b = append(b, '\n')
	b = append(b, name...)
	b = append(b, `_count `...)
	b = strconv.AppendInt(b, s.Count, 10)
	b = append(b, '\n')
	return b
}
