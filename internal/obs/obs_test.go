package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("faults")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if r.Counter("faults") != c {
		t.Error("re-registration must return the same counter")
	}
	g := r.Gauge("mem")
	g.Set(3.5)
	if g.Value() != 3.5 {
		t.Errorf("gauge = %g, want 3.5", g.Value())
	}
	if r.Gauge("mem") != g {
		t.Error("re-registration must return the same gauge")
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 5} {
		h.Observe(v)
	}
	// Upper bounds are inclusive: bucket i counts bounds[i-1] < v <= bounds[i].
	want := []int64{2, 2, 2, 1}
	if h.NumBuckets() != len(want) {
		t.Fatalf("buckets = %d, want %d", h.NumBuckets(), len(want))
	}
	for i, w := range want {
		le, n := h.Bucket(i)
		if n != w {
			t.Errorf("bucket %d (le %g) = %d, want %d", i, le, n, w)
		}
	}
	if le, _ := h.Bucket(3); !math.IsInf(le, 1) {
		t.Errorf("last bucket bound = %g, want +Inf", le)
	}
	if h.Count() != 7 || h.Sum() != 17 {
		t.Errorf("count=%d sum=%g, want 7/17", h.Count(), h.Sum())
	}
	if h.Mean() != 17.0/7 {
		t.Errorf("mean = %g", h.Mean())
	}
}

func TestBoundsBuilders(t *testing.T) {
	if got := ExpBounds(1, 2, 4); !reflect.DeepEqual(got, []float64{1, 2, 4, 8}) {
		t.Errorf("ExpBounds = %v", got)
	}
	if got := LinearBounds(2, 3, 3); !reflect.DeepEqual(got, []float64{2, 5, 8}) {
		t.Errorf("LinearBounds = %v", got)
	}
}

func TestRegistryJSONAndRender(t *testing.T) {
	r := NewRegistry()
	r.Counter("faults").Add(12)
	r.Gauge("mem").Set(7.25)
	h := r.Histogram("dist", []float64{10, 100})
	h.Observe(3)
	h.Observe(250)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]int64   `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
		Hists    map[string]struct {
			Count   int64 `json:"count"`
			Buckets []struct {
				N int64 `json:"n"`
			} `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	if snap.Counters["faults"] != 12 || snap.Gauges["mem"] != 7.25 {
		t.Errorf("snapshot = %+v", snap)
	}
	d := snap.Hists["dist"]
	if d.Count != 2 || len(d.Buckets) != 3 || d.Buckets[0].N != 1 || d.Buckets[2].N != 1 {
		t.Errorf("histogram snapshot = %+v", d)
	}
	if out := r.Render(); out == "" {
		t.Error("Render returned nothing")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := []Event{
		{T: 0, Kind: KindRun, Label: "CD", Refs: 100},
		{T: 2001, Kind: KindFault, I: 1, Page: 0, Res: 1},
		{T: 2001, Kind: KindRes, I: 1, Res: 1},
		{T: 2005, Kind: KindAlloc, Label: "L10"},
		{T: 2005, Kind: KindPhase, Prev: 2, Alloc: 6},
		{T: 2010, Kind: KindLock, PJ: 2, Site: 3, Pages: 4},
		{T: 2500, Kind: KindUnlock, Pages: 4},
		{T: 2600, Kind: KindLockRel, Page: 7},
		{T: 2700, Kind: KindSwap, Job: "a", Why: "signal"},
		{T: 2800, Kind: KindJobDone, Job: "a", Refs: 100, Faults: 3},
		{T: 2900, Kind: KindSweep, Label: "LRU(m=3)", Faults: 9, Mem: 3, ST: 123.5},
		{T: 3000, Kind: KindEnd, Refs: 100, Faults: 3, Mem: 1.75},
	}
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	for _, e := range events {
		sink.Emit(e)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, events)
	}
}

func TestReplay(t *testing.T) {
	// 10 references: charge 2 for refs 1-3, charge 5 for refs 4-9,
	// charge 3 for ref 10. Two faults.
	events := []Event{
		{T: 1, Kind: KindRes, I: 1, Res: 2},
		{T: 2001, Kind: KindFault, I: 2, Page: 4, Res: 2},
		{T: 4004, Kind: KindFault, I: 4, Page: 5, Res: 5},
		{T: 4004, Kind: KindRes, I: 4, Res: 5},
		{T: 4010, Kind: KindRes, I: 10, Res: 3},
		{T: 4010, Kind: KindEnd, Refs: 10, Faults: 2},
	}
	refs, faults, memSum := Replay(events)
	if refs != 10 || faults != 2 {
		t.Errorf("refs=%d faults=%d, want 10/2", refs, faults)
	}
	want := 2.0*3 + 5.0*6 + 3.0*1
	if memSum != want {
		t.Errorf("memSum = %g, want %g", memSum, want)
	}
}

// TestRegistryConcurrent checks the satellite guarantee: parallel
// counter and histogram updates through one shared registry sum exactly.
// Run under -race to exercise the atomic paths.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Registration races with use on purpose: every goroutine
			// must get the same handles back.
			c := r.Counter("shared")
			h := r.Histogram("dist", []float64{10, 100, 1000})
			g := r.Gauge("last")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(float64(i % 2000))
				g.Set(float64(w))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	h := r.Histogram("dist", nil)
	if h.Count() != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
	var bucketSum int64
	for i := 0; i < h.NumBuckets(); i++ {
		_, n := h.Bucket(i)
		bucketSum += n
	}
	if bucketSum != h.Count() {
		t.Errorf("bucket sum %d != count %d", bucketSum, h.Count())
	}
	// Each worker observes 0..1999 repeatedly, so min/max are exact.
	if h.Min() != 0 || h.Max() != 1999 {
		t.Errorf("min/max = %g/%g, want 0/1999", h.Min(), h.Max())
	}
	wantSum := float64(workers) * float64(perWorker/2000) * (1999.0 * 2000.0 / 2)
	if h.Sum() != wantSum {
		t.Errorf("sum = %g, want %g", h.Sum(), wantSum)
	}
	if g := r.Gauge("last").Value(); g < 0 || g >= workers {
		t.Errorf("gauge = %g, want one of the written values", g)
	}
}

// TestHistogramEmptyMinMax pins the empty-histogram rendering contract:
// Min and Max report 0, not the +/-Inf initialization sentinels.
func TestHistogramEmptyMinMax(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("empty", []float64{1})
	if h.Min() != 0 || h.Max() != 0 {
		t.Errorf("empty min/max = %g/%g, want 0/0", h.Min(), h.Max())
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if s := buf.String(); !strings.Contains(s, `"min":0,"max":0`) {
		t.Errorf("empty histogram JSON should carry min/max 0: %s", s)
	}
}
