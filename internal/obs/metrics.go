package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds a run's named metrics. Registration (Counter, Gauge,
// Histogram) returns a stable handle that the hot path updates without
// any map lookup or allocation. The registry and every handle it returns
// are safe for concurrent use: the experiment engine shares one registry
// across parallel simulation runs, so counter and histogram updates are
// atomic and sum exactly regardless of interleaving. (Gauges are
// last-write-wins; concurrent writers race by definition of the type.)
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter is a monotonically increasing count. Safe for concurrent use.
type Counter struct {
	name string
	n    atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds d.
func (c *Counter) Add(d int64) { c.n.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Gauge is a last-value-wins measurement. Concurrent Sets are safe (no
// torn reads) but which value wins is unspecified.
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Set records v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last recorded value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// atomicFloat accumulates float64 values with compare-and-swap.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// minTo lowers the stored value to v if v is smaller.
func (f *atomicFloat) minTo(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// maxTo raises the stored value to v if v is larger.
func (f *atomicFloat) maxTo(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Histogram is a fixed-bucket distribution. Bucket i counts observations
// v with bounds[i-1] < v <= bounds[i]; one overflow bucket counts
// v > bounds[len-1]. Observe is allocation-free and safe for concurrent
// use: bucket counts and the sum are atomic, so totals are exact however
// observations interleave. (The float sum may differ in the last bits
// across runs at different parallelism, since float addition is not
// associative.)
type Histogram struct {
	name   string
	bounds []float64 // ascending upper bounds (inclusive)
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomicFloat
	min    atomicFloat // +Inf until the first observation
	max    atomicFloat // -Inf until the first observation
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
	h.min.minTo(v)
	h.max.maxTo(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// Min returns the smallest observation, or 0 when empty.
func (h *Histogram) Min() float64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.min.load()
}

// Max returns the largest observation, or 0 when empty.
func (h *Histogram) Max() float64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.max.load()
}

// Mean returns the average observation, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if n := h.count.Load(); n != 0 {
		return h.sum.load() / float64(n)
	}
	return 0
}

// Bucket returns the upper bound (math.Inf(1) for the overflow bucket)
// and count of bucket i.
func (h *Histogram) Bucket(i int) (float64, int64) {
	if i == len(h.bounds) {
		return math.Inf(1), h.counts[i].Load()
	}
	return h.bounds[i], h.counts[i].Load()
}

// NumBuckets returns the bucket count including the overflow bucket.
func (h *Histogram) NumBuckets() int { return len(h.counts) }

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given ascending bucket bounds on first use (later calls reuse the
// original bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	h := &Histogram{name: name, bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	h.min.bits.Store(math.Float64bits(math.Inf(1)))
	h.max.bits.Store(math.Float64bits(math.Inf(-1)))
	r.hists[name] = h
	return h
}

// ExpBounds builds n exponentially growing bucket bounds starting at
// start and multiplying by factor: start, start*factor, ...
func ExpBounds(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBounds builds n bounds start, start+step, ...
func LinearBounds(start, step float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*step
	}
	return out
}

// WriteJSON writes the registry snapshot as a single JSON object with
// stable key order, suitable for the CLI's -metrics file.
func (r *Registry) WriteJSON(w io.Writer) error {
	s := r.Snapshot()
	var b []byte
	b = append(b, `{"counters":{`...)
	for i, c := range s.Counters {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendQuote(b, c.Name)
		b = append(b, ':')
		b = strconv.AppendInt(b, c.Value, 10)
	}
	b = append(b, `},"gauges":{`...)
	for i, g := range s.Gauges {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendQuote(b, g.Name)
		b = append(b, ':')
		b = appendFloat(b, g.Value)
	}
	b = append(b, `},"histograms":{`...)
	for i, h := range s.Histograms {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendQuote(b, h.Name)
		b = append(b, `:{"count":`...)
		b = strconv.AppendInt(b, h.Count, 10)
		b = append(b, `,"sum":`...)
		b = appendFloat(b, h.Sum)
		b = append(b, `,"min":`...)
		b = appendFloat(b, h.Min)
		b = append(b, `,"max":`...)
		b = appendFloat(b, h.Max)
		b = append(b, `,"buckets":[`...)
		for j, bk := range h.Buckets {
			if j > 0 {
				b = append(b, ',')
			}
			b = append(b, `{"le":`...)
			if bk.Infinite() {
				b = append(b, `"+Inf"`...)
			} else {
				b = appendFloat(b, bk.LE)
			}
			b = append(b, `,"n":`...)
			b = strconv.AppendInt(b, bk.N, 10)
			b = append(b, '}')
		}
		b = append(b, `]}`...)
	}
	b = append(b, `}}`...)
	b = append(b, '\n')
	_, err := w.Write(b)
	return err
}

// appendFloat renders a float compactly, avoiding exponent noise for the
// integral values that dominate simulator metrics.
func appendFloat(b []byte, v float64) []byte {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.AppendInt(b, int64(v), 10)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// Render returns a human-readable snapshot: counters and gauges aligned,
// histograms with per-bucket bars.
func (r *Registry) Render() string {
	s := r.Snapshot()
	var b strings.Builder
	for _, c := range s.Counters {
		fmt.Fprintf(&b, "%-28s %d\n", c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(&b, "%-28s %g\n", g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		mean := 0.0
		if h.Count != 0 {
			mean = h.Sum / float64(h.Count)
		}
		fmt.Fprintf(&b, "%s: count=%d mean=%.3g min=%g max=%g\n", h.Name, h.Count, mean, h.Min, h.Max)
		var peak int64
		for _, bk := range h.Buckets {
			if bk.N > peak {
				peak = bk.N
			}
		}
		for _, bk := range h.Buckets {
			if bk.N == 0 {
				continue
			}
			le := "+Inf"
			if !bk.Infinite() {
				le = strconv.FormatFloat(bk.LE, 'g', -1, 64)
			}
			bar := ""
			if peak > 0 {
				bar = strings.Repeat("#", int(1+bk.N*29/peak))
			}
			fmt.Fprintf(&b, "  le %-10s %-10d %s\n", le, bk.N, bar)
		}
	}
	return b.String()
}
