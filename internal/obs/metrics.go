package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Registry holds a run's named metrics. Registration (Counter, Gauge,
// Histogram) returns a stable handle that the hot path updates without
// any map lookup or allocation. The registry is not safe for concurrent
// use; simulation runs are single-goroutine.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter is a monotonically increasing count.
type Counter struct {
	name string
	n    int64
}

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds d.
func (c *Counter) Add(d int64) { c.n += d }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// Gauge is a last-value-wins measurement.
type Gauge struct {
	name string
	v    float64
}

// Set records v.
func (g *Gauge) Set(v float64) { g.v = v }

// Value returns the last recorded value.
func (g *Gauge) Value() float64 { return g.v }

// Histogram is a fixed-bucket distribution. Bucket i counts observations
// v with bounds[i-1] < v <= bounds[i]; one overflow bucket counts
// v > bounds[len-1]. Observe is allocation-free.
type Histogram struct {
	name   string
	bounds []float64 // ascending upper bounds (inclusive)
	counts []int64   // len(bounds)+1, last is overflow
	count  int64
	sum    float64
	min    float64
	max    float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if h.count == 1 || v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the average observation, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Bucket returns the upper bound (math.Inf(1) for the overflow bucket)
// and count of bucket i.
func (h *Histogram) Bucket(i int) (float64, int64) {
	if i == len(h.bounds) {
		return math.Inf(1), h.counts[i]
	}
	return h.bounds[i], h.counts[i]
}

// NumBuckets returns the bucket count including the overflow bucket.
func (h *Histogram) NumBuckets() int { return len(h.counts) }

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given ascending bucket bounds on first use (later calls reuse the
// original bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if h, ok := r.hists[name]; ok {
		return h
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	h := &Histogram{name: name, bounds: b, counts: make([]int64, len(b)+1)}
	r.hists[name] = h
	return h
}

// ExpBounds builds n exponentially growing bucket bounds starting at
// start and multiplying by factor: start, start*factor, ...
func ExpBounds(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBounds builds n bounds start, start+step, ...
func LinearBounds(start, step float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*step
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteJSON writes the registry snapshot as a single JSON object with
// stable key order, suitable for the CLI's -metrics file.
func (r *Registry) WriteJSON(w io.Writer) error {
	var b []byte
	b = append(b, `{"counters":{`...)
	for i, k := range sortedKeys(r.counters) {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendQuote(b, k)
		b = append(b, ':')
		b = strconv.AppendInt(b, r.counters[k].n, 10)
	}
	b = append(b, `},"gauges":{`...)
	for i, k := range sortedKeys(r.gauges) {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendQuote(b, k)
		b = append(b, ':')
		b = appendFloat(b, r.gauges[k].v)
	}
	b = append(b, `},"histograms":{`...)
	for i, k := range sortedKeys(r.hists) {
		h := r.hists[k]
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendQuote(b, k)
		b = append(b, `:{"count":`...)
		b = strconv.AppendInt(b, h.count, 10)
		b = append(b, `,"sum":`...)
		b = appendFloat(b, h.sum)
		b = append(b, `,"min":`...)
		b = appendFloat(b, h.min)
		b = append(b, `,"max":`...)
		b = appendFloat(b, h.max)
		b = append(b, `,"buckets":[`...)
		for j := range h.counts {
			if j > 0 {
				b = append(b, ',')
			}
			b = append(b, `{"le":`...)
			if j == len(h.bounds) {
				b = append(b, `"+Inf"`...)
			} else {
				b = appendFloat(b, h.bounds[j])
			}
			b = append(b, `,"n":`...)
			b = strconv.AppendInt(b, h.counts[j], 10)
			b = append(b, '}')
		}
		b = append(b, `]}`...)
	}
	b = append(b, `}}`...)
	b = append(b, '\n')
	_, err := w.Write(b)
	return err
}

// appendFloat renders a float compactly, avoiding exponent noise for the
// integral values that dominate simulator metrics.
func appendFloat(b []byte, v float64) []byte {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.AppendInt(b, int64(v), 10)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// Render returns a human-readable snapshot: counters and gauges aligned,
// histograms with per-bucket bars.
func (r *Registry) Render() string {
	var b strings.Builder
	for _, k := range sortedKeys(r.counters) {
		fmt.Fprintf(&b, "%-28s %d\n", k, r.counters[k].n)
	}
	for _, k := range sortedKeys(r.gauges) {
		fmt.Fprintf(&b, "%-28s %g\n", k, r.gauges[k].v)
	}
	for _, k := range sortedKeys(r.hists) {
		h := r.hists[k]
		fmt.Fprintf(&b, "%s: count=%d mean=%.3g min=%g max=%g\n", k, h.count, h.Mean(), h.min, h.max)
		var peak int64
		for _, c := range h.counts {
			if c > peak {
				peak = c
			}
		}
		for j, c := range h.counts {
			if c == 0 {
				continue
			}
			le := "+Inf"
			if j < len(h.bounds) {
				le = strconv.FormatFloat(h.bounds[j], 'g', -1, 64)
			}
			bar := ""
			if peak > 0 {
				bar = strings.Repeat("#", int(1+c*29/peak))
			}
			fmt.Fprintf(&b, "  le %-10s %-10d %s\n", le, c, bar)
		}
	}
	return b.String()
}
