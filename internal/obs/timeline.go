package obs

import (
	"math"
	"strings"
)

// Timeline buckets one run's event stream over virtual time: how many
// faults landed in each bucket, and the time-weighted mean space-time
// charge (resident pages) during each bucket. It is the data behind the
// CLI's `cdmm profile` sparklines and the report's timeline section.
type Timeline struct {
	Buckets int
	// Span is the run's total virtual time.
	Span int64
	// Faults is the per-bucket fault count.
	Faults []int
	// Resident is the per-bucket time-weighted mean charge in pages.
	Resident []float64
}

// NewTimeline builds a timeline with the given bucket count from a
// single-run event stream (KindFault and KindRes events, as emitted by
// the instrumented simulator).
func NewTimeline(events []Event, buckets int) *Timeline {
	if buckets < 1 {
		buckets = 1
	}
	var span int64
	for _, e := range events {
		if e.T > span {
			span = e.T
		}
	}
	// Never use more buckets than there are time units: a very short run
	// would otherwise scatter its few events over a mostly-empty strip
	// (and a single-unit run rendered one spike in a 64-wide void).
	if span > 0 && int64(buckets) > span {
		buckets = int(span)
	}
	tl := &Timeline{
		Buckets:  buckets,
		Span:     span,
		Faults:   make([]int, buckets),
		Resident: make([]float64, buckets),
	}
	if span == 0 {
		return tl
	}
	bw := float64(span) / float64(buckets)
	bucketOf := func(t int64) int {
		i := int(float64(t) / bw)
		if i >= buckets {
			i = buckets - 1
		}
		return i
	}
	// weight[i] accumulates ∫ charge dt over bucket i.
	weight := make([]float64, buckets)
	addSegment := func(t0, t1 int64, v float64) {
		if v == 0 || t1 <= t0 {
			return
		}
		for i := bucketOf(t0); i <= bucketOf(t1-1); i++ {
			lo := math.Max(float64(t0), float64(i)*bw)
			hi := math.Min(float64(t1), float64(i+1)*bw)
			if hi > lo {
				weight[i] += v * (hi - lo)
			}
		}
	}
	prevT := int64(0)
	cur := 0.0
	for _, e := range events {
		switch e.Kind {
		case KindFault:
			// A fault's T is the completion time of the faulting reference;
			// attribute it to the bucket where service began.
			tl.Faults[bucketOf(e.T-1)]++
		case KindRes:
			addSegment(prevT, e.T, cur)
			prevT, cur = e.T, float64(e.Res)
		}
	}
	addSegment(prevT, span, cur)
	for i := range tl.Resident {
		tl.Resident[i] = weight[i] / bw
	}
	return tl
}

// FaultsF returns the fault counts as floats, for Sparkline.
func (tl *Timeline) FaultsF() []float64 {
	out := make([]float64, len(tl.Faults))
	for i, n := range tl.Faults {
		out[i] = float64(n)
	}
	return out
}

// TotalFaults sums the per-bucket fault counts.
func (tl *Timeline) TotalFaults() int {
	n := 0
	for _, f := range tl.Faults {
		n += f
	}
	return n
}

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a fixed-width unicode bar strip scaled to
// the series maximum; exact zeros render as '·' so quiet stretches stand
// out from merely-low ones.
func Sparkline(vals []float64) string {
	max := 0.0
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		switch {
		case v <= 0 || max == 0:
			b.WriteRune('·')
		default:
			i := int(v / max * float64(len(sparkRunes)))
			if i >= len(sparkRunes) {
				i = len(sparkRunes) - 1
			}
			b.WriteRune(sparkRunes[i])
		}
	}
	return b.String()
}
