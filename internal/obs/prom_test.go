package obs

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// promRegistry builds the fixture registry the golden file pins down:
// counters (one with characters that need sanitizing), gauges, and a
// histogram exercising the bucket edges and the +Inf overflow bucket.
func promRegistry() *Registry {
	r := NewRegistry()
	r.Counter("faults").Add(42)
	r.Counter("lock.releases-per/run").Add(7) // sanitized to lock_releases_per_run_total
	r.Counter("swaps_total").Add(3)           // suffix must not double
	r.Gauge("max_resident").Set(24)
	r.Gauge("mem_avg").Set(12.25)
	h := r.Histogram("fault_interarrival", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 5, 2001} {
		h.Observe(v)
	}
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := promRegistry().WritePrometheus(&buf, "cdmm"); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prom.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -run Golden -update` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("prometheus text drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// parseProm is a miniature exposition-format checker: every non-comment
// line must be `name value` or `name{le="bound"} value`, histogram
// bucket series must be cumulative and end in the +Inf bucket matching
// _count. It returns the parsed samples keyed by full series name.
func parseProm(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	var lastBucketName string
	var lastCum float64
	for ln, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok || name == "" {
			t.Fatalf("line %d: malformed sample %q", ln+1, line)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("line %d: bad value in %q: %v", ln+1, line, err)
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			series, labels := name[:i], name[i:]
			if !strings.HasSuffix(series, "_bucket") {
				t.Fatalf("line %d: labels on non-bucket series %q", ln+1, line)
			}
			if !strings.HasPrefix(labels, `{le="`) || !strings.HasSuffix(labels, `"}`) {
				t.Fatalf("line %d: malformed le label %q", ln+1, labels)
			}
			le := labels[len(`{le="`) : len(labels)-len(`"}`)]
			if le != "+Inf" {
				if _, err := strconv.ParseFloat(le, 64); err != nil {
					t.Fatalf("line %d: bad le bound %q", ln+1, le)
				}
			}
			if series == lastBucketName && v < lastCum {
				t.Fatalf("line %d: bucket counts not cumulative (%g after %g)", ln+1, v, lastCum)
			}
			lastBucketName, lastCum = series, v
			samples[name] = v
			continue
		}
		for _, c := range name {
			if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == ':') {
				t.Fatalf("line %d: invalid metric name char %q in %q", ln+1, c, name)
			}
		}
		samples[name] = v
	}
	return samples
}

func TestWritePrometheusFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := promRegistry().WritePrometheus(&buf, "cdmm"); err != nil {
		t.Fatal(err)
	}
	s := parseProm(t, buf.String())
	if got := s["cdmm_faults_total"]; got != 42 {
		t.Errorf("cdmm_faults_total = %g, want 42", got)
	}
	if got := s["cdmm_lock_releases_per_run_total"]; got != 7 {
		t.Errorf("sanitized counter = %g, want 7", got)
	}
	if _, twice := s["cdmm_swaps_total_total"]; twice {
		t.Error("_total suffix was doubled")
	}
	if got := s["cdmm_swaps_total"]; got != 3 {
		t.Errorf("cdmm_swaps_total = %g, want 3", got)
	}
	if got := s["cdmm_mem_avg"]; got != 12.25 {
		t.Errorf("cdmm_mem_avg = %g, want 12.25", got)
	}
	// 8 observations; the +Inf cumulative bucket must equal _count.
	if got := s[`cdmm_fault_interarrival_bucket{le="+Inf"}`]; got != 8 {
		t.Errorf(`+Inf bucket = %g, want 8`, got)
	}
	if got := s["cdmm_fault_interarrival_count"]; got != 8 {
		t.Errorf("_count = %g, want 8", got)
	}
	wantSum := 0.5 + 1 + 1.5 + 2 + 3 + 4 + 5 + 2001
	if got := s["cdmm_fault_interarrival_sum"]; math.Abs(got-wantSum) > 1e-9 {
		t.Errorf("_sum = %g, want %g", got, wantSum)
	}
	// Inclusive upper bounds: le="2" counts 0.5, 1, 1.5, 2.
	if got := s[`cdmm_fault_interarrival_bucket{le="2"}`]; got != 4 {
		t.Errorf(`le=2 bucket = %g, want 4`, got)
	}
}

func TestEscapeLabelValue(t *testing.T) {
	cases := map[string]string{
		"plain":        "plain",
		`back\slash`:   `back\\slash`,
		`qu"ote`:       `qu\"ote`,
		"new\nline":    `new\nline`,
		`all\"` + "\n": `all\\\"\n`,
	}
	for in, want := range cases {
		if got := EscapeLabelValue(in); got != want {
			t.Errorf("EscapeLabelValue(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheusDuringConcurrentWrites(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("refs")
	h := r.Histogram("res", []float64{2, 4, 8})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Observe(float64(i % 10))
			}
		}()
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf, "cdmm"); err != nil {
			t.Fatal(err)
		}
		parseProm(t, buf.String()) // must stay well-formed mid-flight
	}
	close(stop)
	wg.Wait()
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	r := promRegistry()
	s := r.Snapshot()
	for i := 1; i < len(s.Counters); i++ {
		if s.Counters[i-1].Name >= s.Counters[i].Name {
			t.Errorf("counters not sorted: %q >= %q", s.Counters[i-1].Name, s.Counters[i].Name)
		}
	}
	if len(s.Counters) != 3 || len(s.Gauges) != 2 || len(s.Histograms) != 1 {
		t.Fatalf("snapshot sizes = %d/%d/%d, want 3/2/1", len(s.Counters), len(s.Gauges), len(s.Histograms))
	}
	h := s.Histograms[0]
	if h.Count != 8 {
		t.Errorf("hist count = %d, want 8", h.Count)
	}
	if n := len(h.Buckets); n != 4 {
		t.Fatalf("buckets = %d, want 4 (3 bounds + overflow)", n)
	}
	if !h.Buckets[3].Infinite() {
		t.Error("last bucket must be the +Inf overflow bucket")
	}
	var total int64
	for _, b := range h.Buckets {
		total += b.N
	}
	if total != h.Count {
		t.Errorf("bucket sum %d != count %d", total, h.Count)
	}
	if h.Min != 0.5 || h.Max != 2001 {
		t.Errorf("min/max = %g/%g, want 0.5/2001", h.Min, h.Max)
	}
}

func TestGateDisablesObserver(t *testing.T) {
	g := &toggleGate{}
	o := &Observer{Tracer: &Collector{}, Metrics: NewRegistry(), Gate: g}
	if o.Enabled() {
		t.Error("closed gate must disable the observer")
	}
	g.open.Store(true)
	if !o.Enabled() {
		t.Error("open gate must enable the observer")
	}
	if (&Observer{Gate: g}).Enabled() {
		t.Error("gate alone (no tracer/metrics) must not enable")
	}
	var nilObs *Observer
	if ProgressOf(nilObs) != nil {
		t.Error("ProgressOf(nil) must be nil")
	}
	called := false
	o.Progress = func(done, total int, vt int64) { called = true }
	ProgressOf(o)(1, 2, 3)
	if !called {
		t.Error("ProgressOf must return the observer's callback")
	}
}

type toggleGate struct{ open atomic.Bool }

func (g *toggleGate) Open() bool { return g.open.Load() }
