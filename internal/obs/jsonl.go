package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// JSONLSink is a Tracer writing one JSON object per line. Encoding is
// hand-rolled append-based into a reused buffer, so steady-state emission
// does not allocate. Close (or Flush) must be called to drain the
// underlying bufio writer.
type JSONLSink struct {
	w   *bufio.Writer
	c   io.Closer // closed by Close when the sink owns the destination
	buf []byte
	err error
}

// NewJSONLSink returns a sink writing to w. If w is an io.Closer, Close
// closes it after flushing.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{w: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 256)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit implements Tracer. Write errors are sticky and reported by Close.
func (s *JSONLSink) Emit(e Event) {
	if s.err != nil {
		return
	}
	s.buf = e.AppendJSON(s.buf[:0])
	s.buf = append(s.buf, '\n')
	if _, err := s.w.Write(s.buf); err != nil {
		s.err = err
	}
}

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error { return s.err }

// Flush drains buffered events to the destination.
func (s *JSONLSink) Flush() error {
	if s.err != nil {
		return s.err
	}
	s.err = s.w.Flush()
	return s.err
}

// Close flushes and, when the sink owns an io.Closer destination, closes
// it. It returns the first error encountered over the sink's lifetime.
func (s *JSONLSink) Close() error {
	ferr := s.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); ferr == nil {
			ferr = cerr
		}
	}
	return ferr
}

// ReadEvents decodes a JSONL event stream (as written by JSONLSink).
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
