package obs

import (
	"math"
	"strings"
	"testing"
)

func TestSparkline(t *testing.T) {
	if got := Sparkline([]float64{0, 0, 0}); got != "···" {
		t.Errorf("all-zero sparkline = %q", got)
	}
	got := Sparkline([]float64{0, 1, 4, 8})
	runes := []rune(got)
	if len(runes) != 4 {
		t.Fatalf("len = %d, want 4", len(runes))
	}
	if runes[0] != '·' {
		t.Errorf("zero cell = %q", runes[0])
	}
	if runes[3] != '█' {
		t.Errorf("max cell = %q, want full block", runes[3])
	}
}

func TestTimelineBucketsFaultsAndResidency(t *testing.T) {
	// Span 100, 10 buckets of width 10. Charge: 2 pages over [0,50),
	// 4 pages over [50,100). Faults at t=5 (bucket 0) and t=95 (bucket 9).
	events := []Event{
		{T: 0, Kind: KindRes, I: 1, Res: 2},
		{T: 5, Kind: KindFault, I: 2, Page: 1, Res: 2},
		{T: 50, Kind: KindRes, I: 10, Res: 4},
		{T: 95, Kind: KindFault, I: 20, Page: 2, Res: 4},
		{T: 100, Kind: KindEnd, Refs: 20, Faults: 2},
	}
	tl := NewTimeline(events, 10)
	if tl.Span != 100 {
		t.Fatalf("span = %d", tl.Span)
	}
	if tl.Faults[0] != 1 || tl.Faults[9] != 1 || tl.TotalFaults() != 2 {
		t.Errorf("faults = %v", tl.Faults)
	}
	for i := 0; i < 5; i++ {
		if math.Abs(tl.Resident[i]-2) > 1e-9 {
			t.Errorf("bucket %d resident = %g, want 2", i, tl.Resident[i])
		}
	}
	for i := 5; i < 10; i++ {
		if math.Abs(tl.Resident[i]-4) > 1e-9 {
			t.Errorf("bucket %d resident = %g, want 4", i, tl.Resident[i])
		}
	}
}

// TestTimelineShortRunClampsBuckets pins the short-run fix: a run whose
// virtual-time span is smaller than the requested bucket count gets one
// bucket per time unit, not a mostly-empty 64-wide strip with a single
// degenerate spike.
func TestTimelineShortRunClampsBuckets(t *testing.T) {
	// Span 3: three references, one fault.
	events := []Event{
		{T: 0, Kind: KindRes, I: 1, Res: 1},
		{T: 2, Kind: KindFault, I: 2, Page: 1, Res: 1},
		{T: 3, Kind: KindEnd, Refs: 3, Faults: 1},
	}
	tl := NewTimeline(events, 64)
	if tl.Buckets != 3 {
		t.Fatalf("buckets = %d, want clamped to span 3", tl.Buckets)
	}
	if len(tl.Faults) != 3 || len(tl.Resident) != 3 {
		t.Fatalf("series lengths = %d/%d, want 3/3", len(tl.Faults), len(tl.Resident))
	}
	if tl.TotalFaults() != 1 {
		t.Errorf("total faults = %d, want 1", tl.TotalFaults())
	}
	if got := len([]rune(Sparkline(tl.FaultsF()))); got != 3 {
		t.Errorf("sparkline width = %d, want 3", got)
	}
	// A single-time-unit run collapses to one bucket holding everything.
	one := NewTimeline([]Event{
		{T: 0, Kind: KindRes, I: 1, Res: 1},
		{T: 1, Kind: KindEnd, Refs: 1},
	}, 64)
	if one.Buckets != 1 {
		t.Errorf("single-unit run buckets = %d, want 1", one.Buckets)
	}
	// Requests below the span are honored unchanged.
	if tl := NewTimeline(events, 2); tl.Buckets != 2 {
		t.Errorf("small request clamped: %d buckets, want 2", tl.Buckets)
	}
}

func TestTimelineEmpty(t *testing.T) {
	tl := NewTimeline(nil, 8)
	if tl.Span != 0 || tl.TotalFaults() != 0 {
		t.Errorf("empty timeline = %+v", tl)
	}
	if s := Sparkline(tl.FaultsF()); s != strings.Repeat("·", 8) {
		t.Errorf("empty sparkline = %q", s)
	}
}
