package obs

import (
	"strings"
	"testing"
)

// goodStream is a well-formed single-run stream: 3 refs, 1 fault,
// memSum = 1 + 2 + 2 = 5.
func goodStream() []Event {
	return []Event{
		{T: 0, Kind: KindRun, Label: "LRU", Refs: 3},
		{T: 1, Kind: KindRes, I: 1, Res: 1},
		{T: 2002, Kind: KindFault, I: 2, Page: 7, Res: 2},
		{T: 2002, Kind: KindRes, I: 2, Res: 2},
		{T: 2003, Kind: KindEnd, Refs: 3, Faults: 1, Mem: 5},
	}
}

func TestAuditReplayAccepts(t *testing.T) {
	if err := AuditReplay(goodStream(), 3, 1, 5); err != nil {
		t.Fatalf("well-formed stream rejected: %v", err)
	}
}

func TestAuditReplaySurplusFaultAnchorsAtEvent(t *testing.T) {
	ev := goodStream()
	// Claim the run took 0 faults: the stream's single fault event (index
	// 2) is the first unaccounted one.
	err := AuditReplay(ev, 3, 0, 5)
	if err == nil {
		t.Fatal("surplus fault accepted")
	}
	re, ok := err.(*ReplayError)
	if !ok {
		t.Fatalf("error type %T, want *ReplayError", err)
	}
	if re.Field != "pf" || re.Index != 2 {
		t.Errorf("anchor = %s@%d, want pf@2", re.Field, re.Index)
	}
	msg := err.Error()
	for _, want := range []string{"diverges at event 2", "nearest events", `"ev":"fault"`, "> [2]"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error message missing %q:\n%s", want, msg)
		}
	}
	// The window must include the neighbors, not just the anchor.
	if !strings.Contains(msg, "[1]") || !strings.Contains(msg, "[3]") {
		t.Errorf("error message missing neighbor events:\n%s", msg)
	}
}

func TestAuditReplayMissingFaultAnchorsAtEnd(t *testing.T) {
	ev := goodStream()
	err := AuditReplay(ev, 3, 2, 5) // result claims 2 faults, stream has 1
	re, ok := err.(*ReplayError)
	if !ok {
		t.Fatalf("missing fault accepted (err=%v)", err)
	}
	if re.Field != "pf" || re.Index != 4 {
		t.Errorf("anchor = %s@%d, want pf@4 (the end marker)", re.Field, re.Index)
	}
}

func TestAuditReplayStructure(t *testing.T) {
	// A charge event that rewinds the reference index.
	ev := goodStream()
	ev[3].I = 0
	err := AuditReplay(ev, 3, 1, 5)
	re, ok := err.(*ReplayError)
	if !ok || re.Field != "structure" || re.Index != 3 {
		t.Errorf("rewind not caught at index 3: %v", err)
	}

	// An event after the end marker.
	ev = append(goodStream(), Event{T: 9999, Kind: KindFault, I: 4, Page: 1})
	err = AuditReplay(ev, 3, 1, 5)
	re, ok = err.(*ReplayError)
	if !ok || re.Field != "structure" || re.Index != 5 {
		t.Errorf("post-end event not caught at index 5: %v", err)
	}

	// A stream that never ends.
	ev = goodStream()[:4]
	err = AuditReplay(ev, 3, 1, 5)
	re, ok = err.(*ReplayError)
	if !ok || re.Field != "structure" {
		t.Errorf("missing end marker not caught: %v", err)
	}
}

func TestAuditReplayMemAndRefs(t *testing.T) {
	ev := goodStream()
	err := AuditReplay(ev, 3, 1, 6)
	re, ok := err.(*ReplayError)
	if !ok || re.Field != "mem" {
		t.Fatalf("memory drift not caught: %v", err)
	}
	if re.Got != "5" || re.Want != "6" {
		t.Errorf("mem got/want = %s/%s", re.Got, re.Want)
	}
	err = AuditReplay(ev, 4, 1, 5)
	if re, ok := err.(*ReplayError); !ok || re.Field != "refs" {
		t.Errorf("refs drift not caught: %v", err)
	}
}

func TestAuditReplayEmptyStream(t *testing.T) {
	if err := AuditReplay(nil, 0, 0, 0); err != nil {
		t.Errorf("empty stream with zero result rejected: %v", err)
	}
	err := AuditReplay(nil, 10, 2, 30)
	if err == nil {
		t.Fatal("empty stream with nonzero result accepted")
	}
	if !strings.Contains(err.Error(), "(empty stream)") {
		t.Errorf("empty-stream window not rendered: %v", err)
	}
}
