package obs

import (
	"bytes"
	"testing"
)

// TestSnapshotIntoAllocFlat pins the pooled-scrape contract: once a
// reused Snapshot and output buffer have grown to size, refilling and
// re-rendering them allocates nothing, so a tight scrape loop is
// allocation-flat no matter how long it runs.
func TestSnapshotIntoAllocFlat(t *testing.T) {
	r := promRegistry()
	var s Snapshot
	var b []byte
	// Warm up capacities.
	r.SnapshotInto(&s)
	b = s.AppendPrometheus(b[:0], "cdmm")
	allocs := testing.AllocsPerRun(100, func() {
		r.SnapshotInto(&s)
		b = s.AppendPrometheus(b[:0], "cdmm")
	})
	if allocs != 0 {
		t.Errorf("scrape loop allocates %v objects per snapshot, want 0", allocs)
	}
}

// TestSnapshotIntoMatchesSnapshot: the pooled path must render the same
// bytes as the allocating one, including after the registry grows.
func TestSnapshotIntoMatchesSnapshot(t *testing.T) {
	r := promRegistry()
	var s Snapshot
	for round := 0; round < 3; round++ {
		r.SnapshotInto(&s)
		got := s.AppendPrometheus(nil, "cdmm")
		var want bytes.Buffer
		if err := r.WritePrometheus(&want, "cdmm"); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("round %d: pooled scrape differs from fresh scrape\n--- pooled ---\n%s\n--- fresh ---\n%s", round, got, want.Bytes())
		}
		// Grow the registry between rounds: reuse must stay correct
		// when sections change size and sort order.
		r.Counter("aaa_first").Add(int64(round))
		r.Histogram("zz_tail", []float64{1, 10, 100}).Observe(float64(round))
	}
}
