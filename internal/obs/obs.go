// Package obs is the run-scoped observability subsystem of the simulator:
// a lightweight metrics registry (counters, gauges, fixed-bucket
// histograms) with an allocation-free hot path, and a structured event
// tracer whose JSONL sink records fault/alloc/lock/unlock/swap/phase
// events with virtual-time stamps so a simulation run can be replayed and
// audited offline.
//
// Everything is opt-in: a nil *Observer (or an Observer with neither a
// Tracer nor a Metrics registry) costs a single pointer comparison in the
// simulator, so instrumentation-off runs pay ~nothing.
//
// The package deliberately has no dependencies on the simulator packages —
// vmsim, policy and the CLI all depend on obs, never the reverse.
package obs

// Observer bundles the two observation channels of one simulation run.
// Either field may be nil; a nil Observer observes nothing.
type Observer struct {
	// Tracer receives structured events as the run progresses.
	Tracer Tracer
	// Metrics receives counters, gauges and histograms.
	Metrics *Registry
}

// Enabled reports whether the observer actually observes anything.
func (o *Observer) Enabled() bool {
	return o != nil && (o.Tracer != nil || o.Metrics != nil)
}

// Emit forwards an event to the tracer, if any. Safe on a nil Observer.
func (o *Observer) Emit(e Event) {
	if o != nil && o.Tracer != nil {
		o.Tracer.Emit(e)
	}
}
