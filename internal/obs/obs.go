// Package obs is the run-scoped observability subsystem of the simulator:
// a lightweight metrics registry (counters, gauges, fixed-bucket
// histograms) with an allocation-free hot path, and a structured event
// tracer whose JSONL sink records fault/alloc/lock/unlock/swap/phase
// events with virtual-time stamps so a simulation run can be replayed and
// audited offline.
//
// Everything is opt-in: a nil *Observer (or an Observer with neither a
// Tracer nor a Metrics registry) costs a single pointer comparison in the
// simulator, so instrumentation-off runs pay ~nothing.
//
// The package deliberately has no dependencies on the simulator packages —
// vmsim, policy and the CLI all depend on obs, never the reverse.
package obs

// Gate dynamically enables or disables an observer. It exists for
// attach-and-forget observation endpoints (the live telemetry server):
// the tracer and registry stay wired for the whole process lifetime, but
// while the gate reports closed the simulator treats the observer as
// disabled and runs its un-instrumented fast path. Open is consulted
// once per simulation run, never per reference, so implementations may
// take locks or read clocks.
type Gate interface {
	Open() bool
}

// ProgressFunc receives periodic in-run progress: done trace positions
// out of total (the unit — events or references — depends on the
// simulation path, so consume the ratio, not the absolute), and the
// virtual time reached. It is invoked from the simulation loop every few
// tens of thousands of references and once more at run end with
// done == total; implementations must be cheap and must not block.
type ProgressFunc func(done, total int, vt int64)

// Observer bundles the observation channels of one simulation run.
// Any field may be nil; a nil Observer observes nothing.
type Observer struct {
	// Tracer receives structured events as the run progresses.
	Tracer Tracer
	// Metrics receives counters, gauges and histograms.
	Metrics *Registry
	// Gate, when non-nil, can disable the tracer and metrics without
	// detaching them: while Gate.Open() is false the observer reports
	// not-Enabled and simulations take the fast path. Progress callbacks
	// are not gated — they are cheap enough to stay on.
	Gate Gate
	// Progress, when non-nil, receives periodic in-run progress even
	// when the rest of the observer is disabled (or the gate is closed);
	// the fast path delivers it from a chunked outer loop at zero
	// per-reference cost.
	Progress ProgressFunc
}

// Enabled reports whether the observer's tracer/metrics channels are
// live: at least one of them attached, and the gate (if any) open.
func (o *Observer) Enabled() bool {
	if o == nil || (o.Tracer == nil && o.Metrics == nil) {
		return false
	}
	return o.Gate == nil || o.Gate.Open()
}

// ProgressOf returns o's progress callback, tolerating a nil observer.
func ProgressOf(o *Observer) ProgressFunc {
	if o == nil {
		return nil
	}
	return o.Progress
}

// Emit forwards an event to the tracer, if any. Safe on a nil Observer.
func (o *Observer) Emit(e Event) {
	if o != nil && o.Tracer != nil {
		o.Tracer.Emit(e)
	}
}
