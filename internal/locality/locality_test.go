package locality

import (
	"strings"
	"testing"

	"cdmm/internal/fortran"
	"cdmm/internal/mem"
	"cdmm/internal/sem"
)

// figure1Src is the paper's Figure 1 code: arrays E and F referenced
// row-wise in loop 20, G and H column-wise in loop 30, all inside loop 10.
const figure1Src = `
PROGRAM FIG1
DIMENSION E(200,100), F(200,100), G(200,10), H(200,10)
DO 10 I = 1, 10
  DO 20 K = 1, 100
    E(I,K) = F(I,K) + 1.0
20  CONTINUE
  DO 30 K = 1, 200
    G(K,I) = H(K,I)
30  CONTINUE
10 CONTINUE
END
`

// figure5Src reconstructs the paper's Figure 5a loop structure: loop 4
// outermost containing vectors A and B, an inner leaf loop 2 with vectors
// C and D plus row-wise CC and column-wise DD, and loop 3 with vectors E
// and F enclosing innermost loop 1.
const figure5Src = `
PROGRAM FIG5
PARAMETER (N = 100)
DIMENSION A(N), B(N), C(N), D(N), E(N), F(N), CC(N,N), DD(N,N)
DO 4 I = 1, N
  A(I) = B(I) + 1.0
  DO 2 J = 1, N
    C(J) = D(J) + CC(I,J) + DD(J,I)
2 CONTINUE
  DO 3 K = 1, N
    E(K) = F(K) * 2.0
    DO 1 M = 1, N
      E(K) = E(K) + F(M)
1   CONTINUE
3 CONTINUE
4 CONTINUE
END
`

func analyzeSrc(t *testing.T, src string) *Analysis {
	t.Helper()
	prog, err := fortran.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	layout, err := mem.NewLayout(prog, mem.DefaultGeometry)
	if err != nil {
		t.Fatalf("layout: %v", err)
	}
	return Analyze(info, layout, DefaultParams)
}

func groupFor(a *Analysis, array string, loop *sem.Loop) *Group {
	for _, g := range a.Groups {
		if g.Array == array && g.Loop == loop {
			return g
		}
	}
	return nil
}

// TestFigure1ConceptualTree verifies the Figure 1 diagram: loop 10 forms
// the locality {E, F}; loop 20 forms no locality; loop 30 forms the
// column locality {G_i, H_i}.
func TestFigure1ConceptualTree(t *testing.T) {
	a := analyzeSrc(t, figure1Src)
	tree := a.Tree()
	loop10 := tree.Children[0]
	loop20, loop30 := loop10.Children[0], loop10.Children[1]

	if !loop10.FormsLocality() {
		t.Fatal("loop 10 should form a locality")
	}
	var names []string
	for _, s := range loop10.Sets {
		names = append(names, s.Array)
	}
	if got := strings.Join(names, ","); got != "E,F" {
		t.Errorf("loop 10 locality = {%s}, want {E,F}", got)
	}

	if loop20.FormsLocality() {
		t.Errorf("loop 20 should form no locality, got %+v", loop20.Sets)
	}

	if !loop30.FormsLocality() {
		t.Fatal("loop 30 should form a locality")
	}
	names = nil
	for _, s := range loop30.Sets {
		names = append(names, s.Array)
		// Each member is one column: CVS = ceil(200/64) = 4 pages.
		if s.Pages != 4 {
			t.Errorf("loop 30 member %s = %d pages, want CVS=4", s.Array, s.Pages)
		}
	}
	if got := strings.Join(names, ","); got != "G,H" {
		t.Errorf("loop 30 locality = {%s}, want {G,H}", got)
	}
}

// TestFigure5Contributions verifies the paper's worked example for the
// loop 4 locality size X1: vectors A and B contribute one page each;
// vectors C, D, E, F contribute their full AVS; row-wise CC contributes
// Xr·N = N pages; column-wise DD contributes a single page.
func TestFigure5Contributions(t *testing.T) {
	a := analyzeSrc(t, figure5Src)
	loop4 := a.Info.Root.Children[0]
	loop2 := loop4.Children[0]

	avsVec := a.Layout.AVS("C") // ceil(100/64) = 2

	cases := []struct {
		array string
		loop  *sem.Loop
		want  int
	}{
		{"A", loop4, 1}, // one indexed variable, pages abandoned
		{"B", loop4, 1},
		{"C", loop2, avsVec}, // entire virtual size spans the level-1 locality
		{"D", loop2, avsVec},
		{"CC", loop2, 100}, // row-wise: Xr × N = 1 × 100
		{"DD", loop2, 1},   // column-wise at the column-selecting loop: Xr × Xc = 1
	}
	for _, c := range cases {
		g := groupFor(a, c.array, c.loop)
		if g == nil {
			t.Fatalf("no group for %s", c.array)
		}
		if got := a.Contribution(g, loop4); got != c.want {
			t.Errorf("contribution(%s, loop4) = %d, want %d", c.array, got, c.want)
		}
	}
}

func TestFigure5TotalX1(t *testing.T) {
	a := analyzeSrc(t, figure5Src)
	loop4 := a.Info.Root.Children[0]
	// A(1) + B(1) + C(2) + D(2) + E(2) + F(2) + CC(100) + DD(1) = 111.
	if got := a.ActiveSize(loop4); got != 111 {
		t.Errorf("X1 = %d, want 111", got)
	}
}

func TestFigure5InnerLoopSizes(t *testing.T) {
	a := analyzeSrc(t, figure5Src)
	loop4 := a.Info.Root.Children[0]
	loop2, loop3 := loop4.Children[0], loop4.Children[1]
	loop1 := loop3.Children[0]

	// Loop 2: C(J), D(J) walk the vectors (1 page active each); CC active
	// pages 1; DD: column-wise, at the traversing loop the active set is
	// Xr·Xc = 1. Total 4, floored by nothing.
	if got := a.ActiveSize(loop2); got != 4 {
		t.Errorf("X(loop2) = %d, want 4", got)
	}
	// Loop 3: E,F walked (1 each) plus F spanned wholly by loop 1 (AVS=2)
	// -> E:1, F:max(1, AVS=2)=2 ... F is referenced both at loop 3 level
	// (F(K)) and fully inside loop 1 (F(M)); at loop 3 the inner group
	// re-references the whole vector every iteration -> AVS.
	if got := a.ActiveSize(loop3); got != 3 {
		t.Errorf("X(loop3) = %d, want 3 (E:1 + F:2)", got)
	}
	// Loop 1: E(K) invariant (1 page), F(M) walking (1 page) -> 2.
	if got := a.ActiveSize(loop1); got != 2 {
		t.Errorf("X(loop1) = %d, want 2", got)
	}
}

func TestMinResidentFloor(t *testing.T) {
	a := analyzeSrc(t, `
PROGRAM P
DIMENSION V(100)
DO I = 1, 100
  V(I) = 1.0
END DO
END
`)
	l := a.Info.Root.Children[0]
	// One walking vector = 1 page, floored at MinResident = 2.
	if got := a.ActiveSize(l); got != DefaultParams.MinResident {
		t.Errorf("ActiveSize = %d, want floor %d", got, DefaultParams.MinResident)
	}
}

func TestColumnWiseBetweenLevels(t *testing.T) {
	// Three-level nest: K selects columns, J re-traverses them, I walks
	// rows. At the middle loop the whole column is the locality.
	a := analyzeSrc(t, `
PROGRAM P
DIMENSION A(128,10)
DO K = 1, 10
  DO J = 1, 5
    DO I = 1, 128
      A(I,K) = A(I,K) + 1.0
    END DO
  END DO
END DO
END
`)
	loopK := a.Info.Root.Children[0]
	loopJ := loopK.Children[0]
	loopI := loopJ.Children[0]
	g := groupFor(a, "A", loopI)
	if g == nil {
		t.Fatal("no group for A")
	}
	if g.Order != sem.OrderColumnWise {
		t.Fatalf("order = %v, want column-wise", g.Order)
	}
	// CVS = 2 (128 elements / 64 per page).
	if got := a.Contribution(g, loopI); got != 1 { // traversing: Xr·Xc = 1
		t.Errorf("at I: %d, want 1", got)
	}
	if got := a.Contribution(g, loopJ); got != 2 { // re-traversal: Xc·CVS
		t.Errorf("at J: %d, want CVS=2", got)
	}
	if got := a.Contribution(g, loopK); got != 1 { // fresh columns: Xr·Xc
		t.Errorf("at K: %d, want 1", got)
	}
}

func TestColumnWiseTwoLevelsUpGetsAVS(t *testing.T) {
	a := analyzeSrc(t, `
PROGRAM P
DIMENSION A(128,10)
DO M = 1, 3
  DO K = 1, 10
    DO I = 1, 128
      A(I,K) = A(I,K) * 0.5
    END DO
  END DO
END DO
END
`)
	loopM := a.Info.Root.Children[0]
	loopK := loopM.Children[0]
	loopI := loopK.Children[0]
	g := groupFor(a, "A", loopI)
	if got, want := a.Contribution(g, loopM), a.Layout.AVS("A"); got != want {
		t.Errorf("two levels above traversal = %d, want AVS %d", got, want)
	}
	if got := a.Contribution(g, loopK); got != 1 {
		t.Errorf("at column selector = %d, want 1", got)
	}
}

func TestRowWiseAboveSelectorGetsAVS(t *testing.T) {
	a := analyzeSrc(t, `
PROGRAM P
DIMENSION A(128,10)
DO M = 1, 3
  DO I = 1, 128
    DO J = 1, 10
      A(I,J) = A(I,J) + 1.0
    END DO
  END DO
END DO
END
`)
	loopM := a.Info.Root.Children[0]
	loopI := loopM.Children[0]
	loopJ := loopI.Children[0]
	g := groupFor(a, "A", loopJ)
	if g.Order != sem.OrderRowWise {
		t.Fatalf("order = %v, want row-wise", g.Order)
	}
	if got := a.Contribution(g, loopJ); got != 1 {
		t.Errorf("at traversal loop = %d, want 1 (no locality)", got)
	}
	if got := a.Contribution(g, loopI); got != 10 { // Xr·N
		t.Errorf("at row selector = %d, want Xr·N = 10", got)
	}
	if got, want := a.Contribution(g, loopM), a.Layout.AVS("A"); got != want {
		t.Errorf("above row selector = %d, want AVS %d", got, want)
	}
}

func TestDiagonalContribution(t *testing.T) {
	a := analyzeSrc(t, `
PROGRAM P
DIMENSION A(100,100)
DO K = 1, 5
  DO I = 1, 100
    A(I,I) = 1.0
  END DO
END DO
END
`)
	loopK := a.Info.Root.Children[0]
	loopI := loopK.Children[0]
	g := groupFor(a, "A", loopI)
	if g.Order != sem.OrderDiagonal {
		t.Fatalf("order = %v, want diagonal", g.Order)
	}
	if got := a.Contribution(g, loopI); got != 1 {
		t.Errorf("at diagonal walk = %d, want 1", got)
	}
	if got := a.Contribution(g, loopK); got != 100 { // min(M,N) pages
		t.Errorf("above diagonal walk = %d, want 100", got)
	}
}

func TestContributionNeverExceedsAVS(t *testing.T) {
	for _, src := range []string{figure1Src, figure5Src} {
		a := analyzeSrc(t, src)
		for _, g := range a.Groups {
			avs := a.Layout.AVS(g.Array)
			for l := g.Loop; l != nil && l.Stmt != nil; l = l.Parent {
				if got := a.Contribution(g, l); got > avs || got < 1 {
					t.Errorf("%s at %s: contribution %d outside [1, AVS=%d]", g.Array, l.Label(), got, avs)
				}
			}
		}
	}
}

// TestMonotoneOuterNeverSmaller checks the paper's observation that outer
// localities are at least as large as inner ones along any nest path.
func TestMonotoneOuterNeverSmaller(t *testing.T) {
	for _, src := range []string{figure1Src, figure5Src} {
		a := analyzeSrc(t, src)
		for _, l := range a.Info.Loops {
			if l.Parent == nil || l.Parent.Stmt == nil {
				continue
			}
			inner := a.ActiveSize(l)
			outer := a.ActiveSize(l.Parent)
			if outer < inner {
				t.Errorf("%s: X(outer %s)=%d < X(inner %s)=%d", src[:20], l.Parent.Label(), outer, l.Label(), inner)
			}
		}
	}
}

func TestRenderTree(t *testing.T) {
	a := analyzeSrc(t, figure1Src)
	out := RenderTree(a.Tree())
	for _, want := range []string{"DO 10", "DO 20 (no locality)", "DO 30 locality {G:4, H:4}"} {
		if !strings.Contains(out, want) {
			t.Errorf("tree rendering missing %q:\n%s", want, out)
		}
	}
}
