// Package locality implements the paper's §2 analysis: computing the
// virtual size of program localities from the source code using the six
// parameters — page size P, array size Σ (AVS/CVS), loop nest depth Δ,
// number of distinct index expressions X, order of reference Θ, and
// reference level Λ.
//
// The paper applies these parameters "in a non-deterministic manner" (by
// hand) and notes a deterministic procedure was being developed; this
// package is that deterministic procedure, calibrated against the paper's
// two worked examples (Figure 1 and the Figure 5 discussion of arrays A,
// B, C, D, E, F, CC and DD).
//
// Two related quantities are computed per loop:
//
//   - ActiveSize: the number of pages the program needs resident while the
//     loop executes — the X argument of the ALLOCATE directive. This
//     follows the paper's upper-bound arithmetic (X = Xr·Xc for
//     column-wise arrays, X = Xr·N for row-wise arrays, full AVS for
//     arrays whose whole space is re-referenced at this level).
//   - Conceptual locality sets: the Figure 1 view of which arrays form a
//     locality at each loop level (e.g. loop 20 there forms no locality;
//     loop 30 forms {G_i, H_i}; loop 10 forms {E, F}).
package locality

import (
	"fmt"
	"sort"
	"strings"

	"cdmm/internal/mem"
	"cdmm/internal/sem"
)

// Params configures the analysis.
type Params struct {
	// MinResident is the system-default minimum allocation in pages, used
	// when a loop forms no locality ("X is evaluated to the minimum number
	// of pages which a program is allocated by system default").
	MinResident int
}

// DefaultParams matches the evaluation setup.
var DefaultParams = Params{MinResident: 2}

// Group aggregates all references to one array that share the same
// innermost loop, the unit over which the paper counts distinct index
// expressions.
type Group struct {
	Array string
	Loop  *sem.Loop // innermost loop containing the references
	Refs  []*sem.ArrayRef

	Order sem.RefOrder
	Keys  int // X: distinct subscript tuples
	Xr    int // distinct row-subscript expressions
	Xc    int // distinct column-subscript expressions

	// Deep is the deepest loop driving the fast-varying subscript (the
	// column-traversal loop for column-wise refs, the row-traversal loop
	// for row-wise refs, the single driver for vectors/diagonals).
	// Shallow is the loop driving the other subscript, or nil.
	Deep, Shallow *sem.Loop
}

// Analysis holds the per-loop locality sizes for one program.
type Analysis struct {
	Info   *sem.Info
	Layout *mem.Layout
	Params Params
	Groups []*Group

	active map[*sem.Loop]int
}

// Analyze computes locality sizes for every loop in the program.
func Analyze(info *sem.Info, layout *mem.Layout, params Params) *Analysis {
	a := &Analysis{
		Info:   info,
		Layout: layout,
		Params: params,
		active: make(map[*sem.Loop]int),
	}
	a.buildGroups()
	for _, l := range info.Loops {
		a.active[l] = a.computeActive(l)
	}
	// Enforce the paper's X₁ ≥ X₂ ≥ … property along every nest chain:
	// while an outer loop runs, its inner loops' localities will be needed,
	// so an outer allocation is at least the largest inner one.
	var raise func(l *sem.Loop) int
	raise = func(l *sem.Loop) int {
		x := a.active[l]
		for _, c := range l.Children {
			if cx := raise(c); cx > x {
				x = cx
			}
		}
		a.active[l] = x
		return x
	}
	for _, top := range info.Root.Children {
		raise(top)
	}
	return a
}

// buildGroups clusters references by (array, innermost loop).
func (a *Analysis) buildGroups() {
	type key struct {
		array string
		loop  *sem.Loop
	}
	idx := map[key]*Group{}
	var order []key
	collect := func(l *sem.Loop) {
		for _, r := range l.Refs {
			k := key{r.Array.Name, l}
			g := idx[k]
			if g == nil {
				g = &Group{Array: r.Array.Name, Loop: l}
				idx[k] = g
				order = append(order, k)
			}
			g.Refs = append(g.Refs, r)
		}
	}
	var walk func(l *sem.Loop)
	walk = func(l *sem.Loop) {
		collect(l)
		for _, c := range l.Children {
			walk(c)
		}
	}
	walk(a.Info.Root)

	for _, k := range order {
		g := idx[k]
		g.Keys = sem.DistinctKeys(g.Refs)
		g.Xr = sem.DistinctRowKeys(g.Refs)
		g.Xc = sem.DistinctColKeys(g.Refs)
		g.Order, g.Deep, g.Shallow = classifyGroup(g.Refs)
		a.Groups = append(a.Groups, g)
	}
}

// classifyGroup derives the group-level Θ and driver loops by merging the
// per-reference classification: the deepest drivers across all refs win.
func classifyGroup(refs []*sem.ArrayRef) (sem.RefOrder, *sem.Loop, *sem.Loop) {
	var rowD, colD *sem.Loop
	isVector := refs[0].Array.IsVector()
	for _, r := range refs {
		if r.RowDriver != nil && (rowD == nil || r.RowDriver.Depth > rowD.Depth) {
			rowD = r.RowDriver
		}
		if r.ColDriver != nil && (colD == nil || r.ColDriver.Depth > colD.Depth) {
			colD = r.ColDriver
		}
	}
	if isVector {
		if rowD == nil {
			return sem.OrderNone, nil, nil
		}
		return sem.OrderVector, rowD, nil
	}
	switch {
	case rowD == nil && colD == nil:
		return sem.OrderNone, nil, nil
	case rowD != nil && colD == nil:
		return sem.OrderColumnWise, rowD, nil
	case rowD == nil && colD != nil:
		return sem.OrderRowWise, colD, nil
	case rowD == colD:
		return sem.OrderDiagonal, rowD, nil
	case rowD.Depth > colD.Depth:
		return sem.OrderColumnWise, rowD, colD
	default:
		return sem.OrderRowWise, colD, rowD
	}
}

// ActiveSize returns the ALLOCATE X for the loop: the number of pages the
// program needs while the loop runs, floored at MinResident.
func (a *Analysis) ActiveSize(l *sem.Loop) int {
	if v, ok := a.active[l]; ok {
		return v
	}
	return a.Params.MinResident
}

// computeActive sums, over all arrays referenced in the loop's subtree,
// the maximum contribution among the array's reference groups.
func (a *Analysis) computeActive(l *sem.Loop) int {
	byArray := map[string]int{}
	for _, g := range a.Groups {
		if !l.Encloses(g.Loop) {
			continue
		}
		c := a.Contribution(g, l)
		if c > byArray[g.Array] {
			byArray[g.Array] = c
		}
	}
	total := 0
	for _, c := range byArray {
		total += c
	}
	if total < a.Params.MinResident {
		total = a.Params.MinResident
	}
	return total
}

// Contribution computes the number of pages group g contributes to the
// locality of loop l (which must enclose g.Loop). This encodes the §2
// parameter rules; see the package comment for the calibration sources.
func (a *Analysis) Contribution(g *Group, l *sem.Loop) int {
	avs := a.Layout.AVS(g.Array)
	cvs := a.Layout.CVS(g.Array)
	seg, _ := a.Layout.Segment(g.Array)
	capAVS := func(v int) int {
		if v < 1 {
			v = 1
		}
		if v > avs {
			return avs
		}
		return v
	}
	lam := l.Depth

	switch g.Order {
	case sem.OrderNone:
		// Loop-invariant reference: only the referenced pages themselves.
		return capAVS(g.Keys)

	case sem.OrderVector:
		d := g.Deep
		if lam < d.Depth {
			// "The entire virtual space of a vector referenced at level
			// λ ≠ 1 contributes to all higher level localities."
			return avs
		}
		// At or inside the driving loop: once a new page is referenced the
		// old one is abandoned (paper's arrays A and B in Figure 5).
		return capAVS(g.Keys)

	case sem.OrderColumnWise:
		d1, d2 := g.Deep, g.Shallow // d1 traverses the column; d2 selects it
		switch {
		case lam > d1.Depth:
			// Strictly inside the traversal loop: subscripts fixed.
			return capAVS(g.Keys)
		case l == d1:
			// Traversing: Xr·Xc active pages (paper's X = Xr × Xc; array
			// DD contributes one page while loops 2 and 4 execute).
			return capAVS(g.Xr * g.Xc)
		case d2 == nil || (lam > d2.Depth && lam < d1.Depth):
			// The same columns are re-traversed on every iteration of l:
			// the whole columns belong to the locality ("the referenced
			// columns participate in the formation of the locality
			// comprised by the loop containing the array").
			return capAVS(g.Xc * cvs)
		case l == d2:
			// Each iteration selects fresh columns; only the active pages.
			return capAVS(g.Xr * g.Xc)
		default: // lam < d2.Depth
			// "The entire virtual space of a column-wise referenced array
			// contributes to localities formed at least two levels higher."
			return avs
		}

	case sem.OrderRowWise:
		d1, d2 := g.Deep, g.Shallow // d1 traverses the row; d2 selects it
		switch {
		case lam >= d1.Depth:
			// At or inside the traversal loop: pages are abandoned as the
			// scan proceeds — "loop 20 does not form a locality".
			return capAVS(g.Keys)
		case d2 == nil || lam >= d2.Depth:
			// At the row-selecting loop (or between): X = Xr × N — the CC
			// example contributes N pages to the loop-4 locality. In
			// column-major storage consecutive rows share pages, so the
			// row-span stays live across iterations of d2.
			return capAVS(g.Xr * seg.Cols)
		default: // lam < d2.Depth
			return avs
		}

	case sem.OrderDiagonal:
		d := g.Deep
		if lam < d.Depth {
			diag := seg.Rows
			if seg.Cols < diag {
				diag = seg.Cols
			}
			return capAVS(diag)
		}
		return capAVS(g.Keys)
	}
	return a.Params.MinResident
}

// LocalitySet is one array's membership in a loop-level locality, for the
// conceptual (Figure 1) view.
type LocalitySet struct {
	Array string
	Pages int
	// Desc is a human-readable description such as "columns (CVS=4)" or
	// "whole array (AVS=313)".
	Desc string
}

// LocalityNode is a node of the conceptual locality tree.
type LocalityNode struct {
	Loop     *sem.Loop
	Sets     []LocalitySet // empty => the loop forms no locality
	Size     int           // sum of member pages
	Children []*LocalityNode
}

// FormsLocality reports whether the loop binds any re-referenced page set.
func (n *LocalityNode) FormsLocality() bool { return len(n.Sets) > 0 }

// Tree builds the conceptual locality tree rooted at the program.
func (a *Analysis) Tree() *LocalityNode {
	var build func(l *sem.Loop) *LocalityNode
	build = func(l *sem.Loop) *LocalityNode {
		n := &LocalityNode{Loop: l}
		if l.Stmt != nil {
			n.Sets = a.conceptualSets(l)
			for _, s := range n.Sets {
				n.Size += s.Pages
			}
		}
		for _, c := range l.Children {
			n.Children = append(n.Children, build(c))
		}
		return n
	}
	return build(a.Info.Root)
}

// conceptualSets lists the arrays whose pages are *re-referenced* across
// iterations of loop l — the Figure 1 notion of a locality member.
func (a *Analysis) conceptualSets(l *sem.Loop) []LocalitySet {
	byArray := map[string]LocalitySet{}
	for _, g := range a.Groups {
		if !l.Encloses(g.Loop) {
			continue
		}
		if set, ok := a.conceptualMember(g, l); ok {
			if prev, dup := byArray[g.Array]; !dup || set.Pages > prev.Pages {
				byArray[g.Array] = set
			}
		}
	}
	names := make([]string, 0, len(byArray))
	for n := range byArray {
		names = append(names, n)
	}
	sort.Strings(names)
	sets := make([]LocalitySet, len(names))
	for i, n := range names {
		sets[i] = byArray[n]
	}
	return sets
}

// conceptualMember decides whether group g makes array pages re-referenced
// at loop l, and with what footprint.
func (a *Analysis) conceptualMember(g *Group, l *sem.Loop) (LocalitySet, bool) {
	avs := a.Layout.AVS(g.Array)
	cvs := a.Layout.CVS(g.Array)
	seg, _ := a.Layout.Segment(g.Array)
	lam := l.Depth
	mk := func(pages int, desc string) (LocalitySet, bool) {
		if pages > avs {
			pages = avs
		}
		return LocalitySet{Array: g.Array, Pages: pages, Desc: desc}, true
	}

	switch g.Order {
	case sem.OrderVector:
		if lam < g.Deep.Depth {
			return mk(avs, fmt.Sprintf("whole vector (AVS=%d)", avs))
		}
	case sem.OrderColumnWise:
		d1, d2 := g.Deep, g.Shallow
		switch {
		case l == d1, d2 == nil && lam < d1.Depth, d2 != nil && lam > d2.Depth && lam < d1.Depth:
			return mk(g.Xc*cvs, fmt.Sprintf("%d column(s) (CVS=%d)", g.Xc, cvs))
		case d2 != nil && lam < d2.Depth:
			return mk(avs, fmt.Sprintf("whole array (AVS=%d)", avs))
		}
	case sem.OrderRowWise:
		d1, d2 := g.Deep, g.Shallow
		switch {
		case lam >= d1.Depth:
			// No locality at or inside the traversal loop.
		case d2 == nil || lam >= d2.Depth:
			return mk(g.Xr*seg.Cols, fmt.Sprintf("%d row span(s) (Xr·N=%d)", g.Xr, g.Xr*seg.Cols))
		default:
			return mk(avs, fmt.Sprintf("whole array (AVS=%d)", avs))
		}
	case sem.OrderDiagonal:
		if lam < g.Deep.Depth {
			diag := seg.Rows
			if seg.Cols < diag {
				diag = seg.Cols
			}
			return mk(diag, fmt.Sprintf("diagonal (%d pages)", diag))
		}
	}
	return LocalitySet{}, false
}

// RenderTree renders the conceptual locality tree as indented text, in the
// style of Figure 1's diagram.
func RenderTree(n *LocalityNode) string {
	var b strings.Builder
	var rec func(n *LocalityNode, depth int)
	rec = func(n *LocalityNode, depth int) {
		if n.Loop.Stmt != nil {
			pad := strings.Repeat("  ", depth)
			if n.FormsLocality() {
				parts := make([]string, len(n.Sets))
				for i, s := range n.Sets {
					parts[i] = fmt.Sprintf("%s:%d", s.Array, s.Pages)
				}
				fmt.Fprintf(&b, "%s%s locality {%s} size=%d pages\n", pad, n.Loop.Label(), strings.Join(parts, ", "), n.Size)
			} else {
				fmt.Fprintf(&b, "%s%s (no locality)\n", pad, n.Loop.Label())
			}
		}
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	rec(n, -1)
	return b.String()
}
