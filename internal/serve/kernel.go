// The kernel plane: /kernel serves the multiprogrammed kernel's live
// telemetry view (histograms with quantile brackets, heavy-hitter
// tables, SLO burn rates, incident counts), and the scrape gains the
// cdmm_kernel_* series. Both are gated on the store having seen a run —
// a server whose kernels never publish serves byte-identical scrapes to
// a pre-kernel server and pays nothing.
package serve

import (
	"bytes"
	"fmt"
	"net/http"

	"cdmm/internal/kernel"
	"cdmm/internal/obs"
)

// Kernel returns the telemetry store backing /kernel (never nil after
// New). Pass it as kernel.Config.Publish; the endpoint and the
// cdmm_kernel_* scrape series appear as soon as a run begins.
func (s *Server) Kernel() *kernel.TelemetryStore { return s.opt.Kernel }

// handleKernel serves the current kernel telemetry view: shard partials
// merged live mid-run, the final merged snapshot after the run.
func (s *Server) handleKernel(w http.ResponseWriter, r *http.Request) {
	v := s.opt.Kernel.Snapshot()
	if v == nil {
		writeJSON(w, http.StatusOK, map[string]any{"active": false})
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// kernelHistHelp documents each exported kernel histogram. All values
// are virtual ticks except occupancy (frames) and reclaim_yield
// (frames per pressure wave).
var kernelHistHelp = map[string]string{
	"fault_latency":    "virtual fault-service latency per quantum (ticks)",
	"admit_wait":       "admission-queue wait per admitted tenant (ticks)",
	"suspend_duration": "suspension duration per resume (ticks)",
	"reclaim_yield":    "frames recovered per pressure wave",
	"occupancy":        "resident frames of the stepped tenant per quantum",
}

// writeKernelMetrics appends the kernel telemetry series to a scrape:
// one Prometheus histogram (_bucket/_sum/_count on exact log2 bounds)
// per kernel distribution, the heavy-hitter tables as per-tenant
// gauges, and per-SLO good/bad/burn-rate series. An empty store writes
// nothing, keeping kernel-less scrapes byte-identical.
func (s *Server) writeKernelMetrics(buf *bytes.Buffer) {
	if s.opt.Kernel.Len() == 0 {
		return
	}
	v := s.opt.Kernel.Snapshot()
	if v == nil || v.Telemetry == nil {
		return
	}
	ns := s.opt.Namespace
	final := 0
	if v.Final {
		final = 1
	}
	fmt.Fprintf(buf, "# HELP %s_kernel_run_final whether the published kernel run has completed\n# TYPE %s_kernel_run_final gauge\n%s_kernel_run_final{run=%q} %d\n",
		ns, ns, ns, obs.EscapeLabelValue(v.Run), final)
	fmt.Fprintf(buf, "# HELP %s_kernel_incidents flight-recorder incidents captured\n# TYPE %s_kernel_incidents gauge\n%s_kernel_incidents %d\n",
		ns, ns, ns, v.Incidents)
	for i := range v.Telemetry.Hists {
		h := &v.Telemetry.Hists[i]
		s.scrapeRaw = h.AppendProm(s.scrapeRaw[:0], ns+"_kernel_"+h.Name, kernelHistHelp[h.Name])
		buf.Write(s.scrapeRaw)
	}
	for i := range v.Telemetry.Top {
		tbl := &v.Telemetry.Top[i]
		fmt.Fprintf(buf, "# HELP %s_kernel_top_%s heavy-hitter tenants by %s (space-saving; true count within err below)\n# TYPE %s_kernel_top_%s gauge\n",
			ns, tbl.Name, tbl.Name, ns, tbl.Name)
		for _, e := range tbl.Entries {
			fmt.Fprintf(buf, "%s_kernel_top_%s{tenant=%q} %d\n", ns, tbl.Name, e.Tenant, e.Count)
		}
	}
	fmt.Fprintf(buf, "# HELP %s_kernel_slo_good events within the objective\n# TYPE %s_kernel_slo_good counter\n", ns, ns)
	for _, sl := range v.Telemetry.SLOs {
		fmt.Fprintf(buf, "%s_kernel_slo_good{slo=%q} %d\n", ns, sl.Name, sl.Good)
	}
	fmt.Fprintf(buf, "# HELP %s_kernel_slo_bad events outside the objective\n# TYPE %s_kernel_slo_bad counter\n", ns, ns)
	for _, sl := range v.Telemetry.SLOs {
		fmt.Fprintf(buf, "%s_kernel_slo_bad{slo=%q} %d\n", ns, sl.Name, sl.Bad)
	}
	fmt.Fprintf(buf, "# HELP %s_kernel_slo_burn_rate error-budget burn rate (1.0 = exactly on budget)\n# TYPE %s_kernel_slo_burn_rate gauge\n", ns, ns)
	for _, sl := range v.Telemetry.SLOs {
		fmt.Fprintf(buf, "%s_kernel_slo_burn_rate{slo=%q} %g\n", ns, sl.Name, sl.BurnRate)
	}
}
