package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"cdmm/internal/engine"
	"cdmm/internal/kernel"
)

// runPublishedKernel runs a small chaotic kernel publishing into the
// server's telemetry store and returns the result.
func runPublishedKernel(t *testing.T, s *Server) *kernel.Result {
	t.Helper()
	cfg := kernel.Config{
		Tenants: 48,
		Seed:    1,
		Scale:   0.25,
		Checked: true,
		Chaos:   kernel.Chaos{Kill: true, Intensity: 1},
		Publish: s.Kernel(),
	}
	res, err := kernel.Run(cfg, engine.New(2))
	if err != nil {
		t.Fatalf("kernel.Run: %v", err)
	}
	return res
}

// TestKernelScrapeGatedWhileEmpty pins the gating: a server whose
// kernels never publish serves scrapes with no cdmm_kernel_* series at
// all — byte-identical to a pre-kernel server.
func TestKernelScrapeGatedWhileEmpty(t *testing.T) {
	s := startExplainServer(t)
	_, body := getURL(t, s.URL()+"/metrics")
	if strings.Contains(string(body), "kernel_") {
		t.Errorf("empty store leaked kernel series into the scrape:\n%s", body)
	}
	var buf bytes.Buffer
	s.writeKernelMetrics(&buf)
	if buf.Len() != 0 {
		t.Errorf("writeKernelMetrics wrote %d bytes for an empty store", buf.Len())
	}
	code, body := getURL(t, s.URL()+"/kernel")
	if code != http.StatusOK || !strings.Contains(string(body), `"active": false`) {
		t.Errorf("GET /kernel on empty store = %d %s", code, body)
	}
}

// TestKernelEndpointAndScrape runs a kernel publishing into the server,
// then checks /kernel serves the final merged view and /metrics carries
// well-formed cdmm_kernel_* histogram, heavy-hitter and SLO series whose
// values match the run's own telemetry snapshot.
func TestKernelEndpointAndScrape(t *testing.T) {
	s := startExplainServer(t)
	res := runPublishedKernel(t, s)
	if res.Telemetry == nil {
		t.Fatal("Publish set but Result.Telemetry is nil")
	}

	code, body := getURL(t, s.URL()+"/kernel")
	if code != http.StatusOK {
		t.Fatalf("GET /kernel = %d", code)
	}
	var view kernel.TelemetryView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatalf("/kernel not JSON: %v", err)
	}
	if !view.Final {
		t.Errorf("view not final after run completed: %s", body)
	}
	if view.Telemetry == nil || len(view.Telemetry.Hists) != 5 {
		t.Fatalf("view missing histograms: %s", body)
	}
	if fl := view.Telemetry.Hist("fault_latency"); fl == nil || fl.Count == 0 {
		t.Errorf("fault_latency empty in /kernel view")
	}

	_, mbody := getURL(t, s.URL()+"/metrics")
	vals := checkPromBody(t, string(mbody))
	fl := res.Telemetry.Hist("fault_latency")
	if got := vals["cdmm_kernel_fault_latency_count"]; got != float64(fl.Count) {
		t.Errorf("scraped fault_latency_count = %v, run recorded %d", got, fl.Count)
	}
	if got := vals["cdmm_kernel_fault_latency_sum"]; got != float64(fl.Sum) {
		t.Errorf("scraped fault_latency_sum = %v, run recorded %d", got, fl.Sum)
	}
	text := string(mbody)
	for _, want := range []string{
		`cdmm_kernel_fault_latency_bucket{le="+Inf"}`,
		`cdmm_kernel_admit_wait_count`,
		`cdmm_kernel_suspend_duration_bucket`,
		`cdmm_kernel_top_faults{tenant="t0`,
		`cdmm_kernel_slo_good{slo="admission_wait"}`,
		`cdmm_kernel_slo_burn_rate{slo="fault_rate"}`,
		`cdmm_kernel_run_final`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	// The top-faults gauge for the biggest faulter matches the table.
	top := res.Telemetry.Table("faults").Entries[0]
	series := fmt.Sprintf("cdmm_kernel_top_faults{tenant=%q}", top.Tenant)
	if got := vals[series]; got != float64(top.Count) {
		t.Errorf("%s = %v, table says %d", series, got, top.Count)
	}
}

// TestMetricsRenderAllocFlat pins the pooled scrape path: per-scrape
// allocations must not scale with registry size. The serve section has
// a small fixed cost (a progress snapshot and Fprintf operand boxing);
// the registry section — the part that grows with the simulation — goes
// through the pooled snapshot and buffers and must add nothing.
func TestMetricsRenderAllocFlat(t *testing.T) {
	measure := func(metrics int) float64 {
		s := New(Options{})
		for i := 0; i < metrics; i++ {
			s.Registry().Counter(fmt.Sprintf("load.metric-%03d", i)).Add(int64(i) * 977)
		}
		s.renderMetrics(&s.scrapeBuf) // warm up pooled snapshot and buffers
		return testing.AllocsPerRun(50, func() {
			s.renderMetrics(&s.scrapeBuf)
		})
	}
	empty, loaded := measure(0), measure(300)
	if loaded > empty {
		t.Errorf("renderMetrics allocates %.0f per scrape with 300 metrics vs %.0f with none; registry section is not pooled", loaded, empty)
	}
	if empty > 32 {
		t.Errorf("fixed scrape cost is %.0f allocations per hit; expected a small constant", empty)
	}
}
