package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cdmm/internal/engine"
	"cdmm/internal/experiments"
	"cdmm/internal/obs"
	"cdmm/internal/policy"
	"cdmm/internal/vmsim"
)

// waitNoLeak polls until the process goroutine count is back at (or
// below) the pre-test baseline, failing with full stacks otherwise: the
// serve-smoke CI job runs these tests with -race to prove handler and
// hub teardown leaks nothing.
func waitNoLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d goroutines, baseline %d\n%s", runtime.NumGoroutine(), baseline, buf[:n])
}

// checkPromBody sanity-checks a /metrics payload: every non-comment
// line is `name[{labels}] value` with a parseable value and a legal
// metric name. Returns the parsed values keyed by the full series name.
func checkPromBody(t *testing.T, body string) map[string]float64 {
	t.Helper()
	vals := map[string]float64{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("metrics line without value: %q", line)
		}
		series, valStr := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(valStr, 64); err != nil {
			t.Fatalf("metrics line %q: bad value: %v", line, err)
		}
		name := series
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		for _, c := range name {
			if !(c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')) {
				t.Fatalf("metrics name %q has illegal char %q", name, c)
			}
		}
		vals[series] = mustFloat(valStr)
	}
	return vals
}

func mustFloat(s string) float64 {
	f, _ := strconv.ParseFloat(s, 64)
	return f
}

func get(t *testing.T, client *http.Client, url string) (int, string) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, string(b)
}

func startServer(t *testing.T, opt Options) (*Server, *http.Client) {
	t.Helper()
	srv := New(opt)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	tr := &http.Transport{}
	t.Cleanup(tr.CloseIdleConnections)
	return srv, &http.Client{Transport: tr}
}

func TestServeSmokeEndToEnd(t *testing.T) {
	baseline := runtime.NumGoroutine()

	// A buffer big enough for the whole merged stream: the smoke run's
	// burst arrives faster than the socket drains, and this test wants
	// the complete run..end framing rather than the drop policy.
	srv, client := startServer(t, Options{EventBuffer: 1 << 16})
	eng := engine.New(2).WithObserver(srv.Observer()).WithProgress(srv.Progress())

	// Attach an SSE client before running so the gate is open and the
	// whole merged stream lands in its buffer.
	resp, err := client.Get(srv.URL() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	sseDone := make(chan string, 1)
	go func() {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		sseDone <- string(b)
	}()
	for i := 0; srv.hub.subscribers() == 0; i++ {
		if i > 500 {
			t.Fatal("SSE subscriber never registered")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !srv.Open() {
		t.Fatal("gate closed with a subscriber connected")
	}

	results, err := engine.MapNamed(eng, "smoke", []string{"CONDUCT"}, func(rc *engine.RunCtx, prog string) (vmsim.Result, error) {
		c, err := eng.Compiled(rc, prog)
		if err != nil {
			return vmsim.Result{}, err
		}
		rc.Describe(prog, "LRU")
		res := vmsim.RunObserved(c.Trace.RefsOnly(), policy.NewLRU(32), rc.Obs)
		rc.Report(res)
		return res, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	code, body := get(t, client, srv.URL()+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"status": "ok"`) {
		t.Fatalf("healthz = %d %q", code, body)
	}

	code, body = get(t, client, srv.URL()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status = %d", code)
	}
	vals := checkPromBody(t, body)
	if vals["cdmm_refs_total"] != float64(results[0].Refs) {
		t.Errorf("cdmm_refs_total = %v, want %d", vals["cdmm_refs_total"], results[0].Refs)
	}
	if vals["cdmm_serve_subscribers"] != 1 {
		t.Errorf("cdmm_serve_subscribers = %v, want 1", vals["cdmm_serve_subscribers"])
	}

	code, body = get(t, client, srv.URL()+"/progress")
	if code != http.StatusOK {
		t.Fatalf("progress status = %d", code)
	}
	var snap engine.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("progress body: %v", err)
	}
	if !snap.Idle || snap.Counts["done"] != 1 {
		t.Errorf("progress = idle=%v counts=%v, want idle with 1 done", snap.Idle, snap.Counts)
	}

	code, body = get(t, client, srv.URL()+"/runs/0")
	if code != http.StatusOK {
		t.Fatalf("runs/0 status = %d", code)
	}
	var rs engine.RunSnapshot
	if err := json.Unmarshal([]byte(body), &rs); err != nil {
		t.Fatal(err)
	}
	if rs.Label != "CONDUCT" || rs.State != "done" || rs.Faults != results[0].Faults {
		t.Errorf("runs/0 = %+v", rs)
	}
	if code, _ = get(t, client, srv.URL()+"/runs/99"); code != http.StatusNotFound {
		t.Errorf("runs/99 status = %d, want 404", code)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	stream := <-sseDone
	for _, want := range []string{"event: hello", "event: obs", `"ev":"run"`, `"ev":"end"`} {
		if !strings.Contains(stream, want) {
			t.Errorf("SSE stream missing %q", want)
		}
	}

	client.Transport.(*http.Transport).CloseIdleConnections()
	waitNoLeak(t, baseline)
}

func TestGateFollowsScrapesAndSubscribers(t *testing.T) {
	srv, client := startServer(t, Options{ScrapeWindow: 80 * time.Millisecond})
	defer srv.Shutdown(context.Background())

	if srv.Open() {
		t.Fatal("gate open with no clients")
	}
	if code, _ := get(t, client, srv.URL()+"/metrics"); code != http.StatusOK {
		t.Fatal("scrape failed")
	}
	if !srv.Open() {
		t.Fatal("gate closed immediately after a scrape")
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.Open() {
		if time.Now().After(deadline) {
			t.Fatal("gate never re-closed after the scrape window")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestHubDropPolicy pins the slow-subscriber contract: a full buffer
// drops the newest frames (the buffered prefix is untouched and stays
// in order) and the loss is counted per subscriber for the explicit
// dropped-notice frame.
func TestHubDropPolicy(t *testing.T) {
	h := newHub()
	fast := h.subscribe(16)
	slow := h.subscribe(2)
	for i := 1; i <= 10; i++ {
		h.Emit(obs.Event{Kind: obs.KindRes, I: i})
	}
	if got := len(fast.ch); got != 10 {
		t.Errorf("fast subscriber has %d frames, want 10", got)
	}
	if got := len(slow.ch); got != 2 {
		t.Errorf("slow subscriber has %d frames, want 2", got)
	}
	if got := slow.dropped.Load(); got != 8 {
		t.Errorf("slow subscriber dropped %d, want 8", got)
	}
	// The retained frames are the oldest, in order.
	f1, f2 := <-slow.ch, <-slow.ch
	if !strings.Contains(string(f1), `"i":1`) || !strings.Contains(string(f2), `"i":2`) {
		t.Errorf("slow subscriber kept %q, %q — drop-newest must keep the oldest frames", f1, f2)
	}
	if h.drops.Load() != 8 || h.total.Load() != 10 {
		t.Errorf("hub totals = %d sent, %d dropped", h.total.Load(), h.drops.Load())
	}
	h.unsubscribe(fast)
	h.unsubscribe(slow)
	if h.subscribers() != 0 {
		t.Errorf("subscribers = %d after unsubscribe", h.subscribers())
	}
	frame := appendFrame(nil, 7, "dropped", []byte(`{"dropped":8}`))
	if string(frame) != "id: 7\nevent: dropped\ndata: {\"dropped\":8}\n\n" {
		t.Errorf("dropped-notice frame = %q", frame)
	}
}

// TestScrapeDuringChaos is the exporter round-trip under load: while
// the chaos fault-injection matrix runs through a serve-attached
// engine, every concurrent /metrics scrape must be well-formed, and the
// final scrape must agree exactly with the registry's own snapshot.
func TestScrapeDuringChaos(t *testing.T) {
	baseline := runtime.NumGoroutine()
	srv, client := startServer(t, Options{ScrapeWindow: time.Minute})
	eng := engine.New(4).WithObserver(srv.Observer()).WithProgress(srv.Progress())

	// Open the gate via a scrape (no SSE client), as a Prometheus-only
	// deployment would.
	if code, _ := get(t, client, srv.URL()+"/metrics"); code != http.StatusOK {
		t.Fatal("initial scrape failed")
	}

	var stop atomic.Bool
	scraped := make(chan int, 1)
	go func() {
		n := 0
		for !stop.Load() {
			code, body := get(t, client, srv.URL()+"/metrics")
			if code != http.StatusOK {
				t.Errorf("scrape status = %d", code)
				break
			}
			checkPromBody(t, body)
			n++
		}
		scraped <- n
	}()

	rows, err := experiments.ChaosMatrix(eng, experiments.ChaosConfig{
		Variants:    []experiments.Variant{{Program: "MAIN", Set: "MAIN"}},
		Intensities: []float64{0.1},
	})
	stop.Store(true)
	n := <-scraped
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("chaos matrix produced no rows")
	}
	if n == 0 {
		t.Fatal("no scrapes completed during the chaos matrix")
	}

	_, body := get(t, client, srv.URL()+"/metrics")
	vals := checkPromBody(t, body)
	snap := srv.Registry().Snapshot()
	for _, c := range snap.Counters {
		series := "cdmm_" + strings.Map(sanitizeRune, c.Name)
		if !strings.HasSuffix(series, "_total") {
			series += "_total"
		}
		if got, ok := vals[series]; !ok || got != float64(c.Value) {
			t.Errorf("scrape %s = %v (present=%v), registry has %d", series, got, ok, c.Value)
		}
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	client.Transport.(*http.Transport).CloseIdleConnections()
	waitNoLeak(t, baseline)
}

func sanitizeRune(r rune) rune {
	switch {
	case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
		return r
	default:
		return '_'
	}
}

// TestServeObserverFastPathWhenUnwatched pins the no-client stance the
// perf harness budgets: with neither subscriber nor recent scrape the
// serve observer is disabled, runs take the fast path, and results are
// identical to a bare run.
func TestServeObserverFastPathWhenUnwatched(t *testing.T) {
	srv, _ := startServer(t, Options{})
	defer srv.Shutdown(context.Background())

	eng := engine.New(1).WithObserver(srv.Observer()).WithProgress(srv.Progress())
	out, err := engine.MapNamed(eng, "dark", []string{"CONDUCT"}, func(rc *engine.RunCtx, prog string) (vmsim.Result, error) {
		c, err := eng.Compiled(rc, prog)
		if err != nil {
			return vmsim.Result{}, err
		}
		return vmsim.RunObserved(c.Trace.RefsOnly(), policy.NewLRU(32), rc.Obs), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap := srv.Registry().Snapshot(); len(snap.Counters) != 0 {
		t.Errorf("unwatched run leaked %d counters into the registry", len(snap.Counters))
	}
	c, err := eng.Compiled(nil, "CONDUCT")
	if err != nil {
		t.Fatal(err)
	}
	if plain := vmsim.Run(c.Trace.RefsOnly(), policy.NewLRU(32)); out[0] != plain {
		t.Errorf("unwatched result drifted: got %+v want %+v", out[0], plain)
	}
	// Live position still flowed through the progress callback.
	rs, ok := srv.Progress().Run(0)
	if !ok || rs.Done == 0 || rs.Done != rs.Total {
		t.Errorf("dark run position = %+v", rs)
	}
}
