package serve

import (
	"strconv"
	"sync"
	"sync/atomic"

	"cdmm/internal/obs"
)

// hub fans the engine's merged, deterministic event stream out to SSE
// subscribers. Emit is called from the engine's merge path (one plan at
// a time, under the engine's flush lock), so the no-subscriber check is
// a single atomic load; with subscribers attached each event is
// rendered once into a shared SSE frame and offered to every
// subscriber's bounded buffer without ever blocking the simulation. A
// subscriber that cannot keep up loses the newest frames (the buffered
// prefix stays intact and in order) and is told about the gap with an
// explicit `event: dropped` frame carrying the loss count — clients
// never silently miss data.
type hub struct {
	nsubs atomic.Int32 // == len(subs); the Emit fast-path check
	seq   atomic.Int64 // global SSE frame id
	total atomic.Int64 // frames fanned out since start
	drops atomic.Int64 // frames dropped across all subscribers

	mu   sync.Mutex
	subs map[*subscriber]struct{}
}

// subscriber is one /events client. ch carries pre-rendered SSE frames;
// dropped counts frames lost since the client's writer last drained it
// (the writer swaps it to zero and emits the dropped-notice frame).
type subscriber struct {
	ch      chan []byte
	dropped atomic.Int64
}

func newHub() *hub { return &hub{subs: map[*subscriber]struct{}{}} }

// Emit implements obs.Tracer.
func (h *hub) Emit(e obs.Event) {
	if h.nsubs.Load() == 0 {
		return
	}
	frame := appendFrame(nil, h.seq.Add(1), "obs", e.AppendJSON(nil))
	h.total.Add(1)
	h.mu.Lock()
	for sub := range h.subs {
		select {
		case sub.ch <- frame:
		default:
			sub.dropped.Add(1)
			h.drops.Add(1)
		}
	}
	h.mu.Unlock()
}

func (h *hub) subscribe(buf int) *subscriber {
	sub := &subscriber{ch: make(chan []byte, buf)}
	h.mu.Lock()
	h.subs[sub] = struct{}{}
	h.mu.Unlock()
	h.nsubs.Add(1)
	return sub
}

func (h *hub) unsubscribe(sub *subscriber) {
	h.mu.Lock()
	if _, ok := h.subs[sub]; ok {
		delete(h.subs, sub)
		h.nsubs.Add(-1)
	}
	h.mu.Unlock()
}

func (h *hub) subscribers() int { return int(h.nsubs.Load()) }

// appendFrame renders one SSE frame (id, event name, single data line).
// Event JSON never contains raw newlines, so one data: line suffices.
func appendFrame(b []byte, id int64, event string, data []byte) []byte {
	b = append(b, "id: "...)
	b = strconv.AppendInt(b, id, 10)
	b = append(b, "\nevent: "...)
	b = append(b, event...)
	b = append(b, "\ndata: "...)
	b = append(b, data...)
	b = append(b, '\n', '\n')
	return b
}
