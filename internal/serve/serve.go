// Package serve is the simulator's live telemetry daemon: an HTTP
// server exposing the metrics registry in Prometheus text format
// (/metrics), engine plan/run lifecycle with live in-run trace position
// (/progress, /runs/{id}), the merged deterministic event stream over
// Server-Sent Events (/events), and a health probe (/healthz).
//
// The server is attach-and-forget: Observer() returns an observer whose
// Gate is the server itself, open only while a telemetry client is
// actually looking (an SSE subscriber is connected, or a Prometheus
// scrape happened within ScrapeWindow). While the gate is closed,
// simulations take the un-instrumented fast path and the only residual
// cost is one chunked progress callback per few tens of thousands of
// simulated events — the overhead guard in internal/perf holds the
// no-client total under 2% of the bare hot path. The gate is consulted
// once per run, so a client connecting mid-plan sees events from the
// next run onward.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cdmm/internal/attr"
	"cdmm/internal/engine"
	"cdmm/internal/kernel"
	"cdmm/internal/obs"
)

// Options configures a Server. The zero value is usable: a fresh
// registry and tracker are created on demand and defaults are applied
// by New.
type Options struct {
	// Registry is scraped at /metrics (a fresh one when nil). Share it
	// with the observers of the runs to be monitored.
	Registry *obs.Registry
	// Progress backs /progress and /runs/{id} (a fresh, empty tracker
	// when nil). Attach the same tracker to the engines to be monitored.
	Progress *engine.Progress
	// Log receives structured lifecycle records; nil logs nothing.
	Log *slog.Logger
	// Pprof exposes /debug/pprof/ when true.
	Pprof bool
	// EventBuffer is the per-subscriber frame buffer (default 256); a
	// subscriber whose buffer is full loses the newest frames and is
	// sent an explicit dropped-notice frame.
	EventBuffer int
	// ScrapeWindow is how long after a /metrics scrape the observer
	// gate stays open so the scraped series keep moving (default 15s).
	ScrapeWindow time.Duration
	// Namespace prefixes every exported metric name (default "cdmm").
	Namespace string
	// Explain is the fault-attribution ledger store behind /explain and
	// the per-site scrape series (a fresh, empty store when nil — an
	// empty store exports nothing and costs nothing).
	Explain *attr.Store
	// Kernel is the multiprogrammed kernel's telemetry store behind
	// /kernel and the cdmm_kernel_* scrape series (a fresh, empty store
	// when nil). Pass it as kernel.Config.Publish to watch a run live; an
	// empty store exports nothing and keeps scrapes byte-identical.
	Kernel *kernel.TelemetryStore
}

// Server is the telemetry daemon. Construct with New, then Start.
type Server struct {
	opt Options
	log *slog.Logger
	hub *hub

	ln      net.Listener
	srv     *http.Server
	started time.Time
	done    chan struct{}

	// lastScrape is the unix-nano time of the latest /metrics hit.
	lastScrape atomic.Int64

	// The scrape path reuses its snapshot and buffers across scrapes
	// (under scrapeMu), so a steady scraper costs no allocations per hit
	// in the registry section regardless of how many metrics exist.
	scrapeMu   sync.Mutex
	scrapeSnap obs.Snapshot
	scrapeRaw  []byte
	scrapeBuf  bytes.Buffer

	// ctx is canceled by Shutdown so SSE handlers unblock before
	// http.Server.Shutdown waits for them.
	ctx    context.Context
	cancel context.CancelFunc
}

// New builds a server (not yet listening) from opt.
func New(opt Options) *Server {
	if opt.Registry == nil {
		opt.Registry = obs.NewRegistry()
	}
	if opt.Progress == nil {
		opt.Progress = engine.NewProgress()
	}
	if opt.EventBuffer <= 0 {
		opt.EventBuffer = 256
	}
	if opt.ScrapeWindow <= 0 {
		opt.ScrapeWindow = 15 * time.Second
	}
	if opt.Namespace == "" {
		opt.Namespace = "cdmm"
	}
	if opt.Explain == nil {
		opt.Explain = attr.NewStore()
	}
	if opt.Kernel == nil {
		opt.Kernel = kernel.NewTelemetryStore()
	}
	log := opt.Log
	if log == nil {
		log = slog.New(discardHandler{})
	}
	s := &Server{opt: opt, log: log, hub: newHub(), started: time.Now()}
	s.ctx, s.cancel = context.WithCancel(context.Background())

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /progress", s.handleProgress)
	mux.HandleFunc("GET /runs/{id}", s.handleRun)
	mux.HandleFunc("GET /events", s.handleEvents)
	mux.HandleFunc("GET /explain", s.handleExplain)
	mux.HandleFunc("GET /kernel", s.handleKernel)
	if opt.Pprof {
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	}
	s.srv = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ErrorLog:          slog.NewLogLogger(log.Handler(), slog.LevelWarn),
	}
	return s
}

// Start listens on addr (host:port; port 0 picks an ephemeral port) and
// serves in the background until Shutdown.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("telemetry listen %s: %w", addr, err)
	}
	s.ln = ln
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.log.Error("telemetry server stopped", "err", err)
		}
	}()
	s.log.Info("telemetry server listening", "url", s.URL())
	return nil
}

// Addr returns the bound address (valid after Start).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL (valid after Start).
func (s *Server) URL() string { return "http://" + s.Addr() }

// Observer returns the attach-and-forget observer feeding this server:
// the SSE hub as tracer, the scrape registry as metrics, and the server
// itself as the gate, plus nothing else — callers layer file sinks on
// top with obs.MultiTracer when both are wanted.
func (s *Server) Observer() *obs.Observer {
	return &obs.Observer{Tracer: s.hub, Metrics: s.opt.Registry, Gate: s}
}

// Progress returns the tracker backing /progress (never nil after New).
func (s *Server) Progress() *engine.Progress { return s.opt.Progress }

// Registry returns the scraped registry (never nil after New).
func (s *Server) Registry() *obs.Registry { return s.opt.Registry }

// Open implements obs.Gate: instrumentation is live while someone is
// watching — an SSE subscriber connected, or a Prometheus scrape within
// the scrape window.
func (s *Server) Open() bool {
	if s.hub.subscribers() > 0 {
		return true
	}
	last := s.lastScrape.Load()
	return last != 0 && time.Since(time.Unix(0, last)) < s.opt.ScrapeWindow
}

// Shutdown stops the server: SSE streams are closed first (so Shutdown
// does not wait on them forever), then the listener drains gracefully
// within ctx.
func (s *Server) Shutdown(ctx context.Context) error {
	s.cancel()
	err := s.srv.Shutdown(ctx)
	if s.done != nil {
		<-s.done
	}
	s.log.Info("telemetry server stopped", "events", s.hub.total.Load(), "dropped_frames", s.hub.drops.Load())
	return err
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.opt.Progress.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"uptime_ms":   float64(time.Since(s.started)) / float64(time.Millisecond),
		"subscribers": s.hub.subscribers(),
		"gate_open":   s.Open(),
		"idle":        snap.Idle,
		"seq":         snap.Seq,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.lastScrape.Store(time.Now().UnixNano())
	s.scrapeMu.Lock()
	defer s.scrapeMu.Unlock()
	s.renderMetrics(&s.scrapeBuf)
	w.Header().Set("Content-Type", obs.PromContentType)
	w.Write(s.scrapeBuf.Bytes())
}

// renderMetrics assembles the full exposition into buf (reset first).
// The registry section goes through the pooled snapshot and byte slice,
// which the alloc test pins at zero per-scrape allocations; callers hold
// scrapeMu when using the server's pooled state.
func (s *Server) renderMetrics(buf *bytes.Buffer) {
	buf.Reset()
	s.opt.Registry.SnapshotInto(&s.scrapeSnap)
	s.scrapeRaw = s.scrapeSnap.AppendPrometheus(s.scrapeRaw[:0], s.opt.Namespace)
	buf.Write(s.scrapeRaw)
	s.writeServeMetrics(buf)
	s.writeExplainMetrics(buf)
	s.writeKernelMetrics(buf)
}

// writeServeMetrics appends the server's own series to a scrape.
func (s *Server) writeServeMetrics(buf *bytes.Buffer) {
	ns := s.opt.Namespace
	counts := s.opt.Progress.Snapshot().Counts
	fmt.Fprintf(buf, "# HELP %s_serve_subscribers connected SSE event subscribers\n# TYPE %s_serve_subscribers gauge\n%s_serve_subscribers %d\n", ns, ns, ns, s.hub.subscribers())
	fmt.Fprintf(buf, "# HELP %s_serve_events_total SSE frames fanned out\n# TYPE %s_serve_events_total counter\n%s_serve_events_total %d\n", ns, ns, ns, s.hub.total.Load())
	fmt.Fprintf(buf, "# HELP %s_serve_dropped_frames_total SSE frames dropped at slow subscribers\n# TYPE %s_serve_dropped_frames_total counter\n%s_serve_dropped_frames_total %d\n", ns, ns, ns, s.hub.drops.Load())
	fmt.Fprintf(buf, "# HELP %s_serve_runs engine runs by lifecycle state\n# TYPE %s_serve_runs gauge\n", ns, ns)
	for _, state := range []string{"queued", "running", "retrying", "done", "failed", "degraded"} {
		fmt.Fprintf(buf, "%s_serve_runs{state=%q} %d\n", ns, state, counts[state])
	}
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.opt.Progress.Snapshot())
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "run id must be an integer"})
		return
	}
	rs, ok := s.opt.Progress.Run(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such run"})
		return
	}
	writeJSON(w, http.StatusOK, rs)
}

// handleEvents streams the merged event stream as SSE. The subscriber
// counts toward the gate from before the hello frame is flushed, so a
// client that connects and then launches a run never misses it.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	sub := s.hub.subscribe(s.opt.EventBuffer)
	defer s.hub.unsubscribe(sub)
	s.log.Info("event subscriber connected", "remote", r.RemoteAddr, "subscribers", s.hub.subscribers())
	defer s.log.Info("event subscriber disconnected", "remote", r.RemoteAddr)

	if _, err := w.Write(appendFrame(nil, 0, "hello", []byte(`{"service":"cdmm","buffer":`+strconv.Itoa(s.opt.EventBuffer)+`}`))); err != nil {
		return
	}
	fl.Flush()

	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			return
		case <-heartbeat.C:
			if _, err := w.Write([]byte(": keepalive\n\n")); err != nil {
				return
			}
			fl.Flush()
		case frame := <-sub.ch:
			if _, err := w.Write(frame); err != nil {
				return
			}
			if n := sub.dropped.Swap(0); n > 0 {
				s.log.Warn("slow event subscriber dropped frames", "remote", r.RemoteAddr, "dropped", n)
				notice := appendFrame(nil, s.hub.seq.Add(1), "dropped",
					[]byte(`{"dropped":`+strconv.FormatInt(n, 10)+`}`))
				if _, err := w.Write(notice); err != nil {
					return
				}
			}
			fl.Flush()
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// discardHandler is a no-op slog handler (slog.DiscardHandler arrived
// after this module's Go baseline).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }
