// The explain plane: /explain serves the fault-attribution ledgers
// published by attributed runs, and the scrape gains per-site series.
// Both are gated on the store actually holding ledgers — a server whose
// runs never attribute serves byte-identical scrapes to a pre-attribution
// server and pays nothing.
package serve

import (
	"bytes"
	"fmt"
	"net/http"

	"cdmm/internal/attr"
	"cdmm/internal/obs"
	"cdmm/internal/trace"
)

// Explain returns the attribution store backing /explain (never nil
// after New). Publish ledgers into it with Put; the endpoint and the
// per-site scrape series appear as soon as the first ledger lands.
func (s *Server) Explain() *attr.Store { return s.opt.Explain }

// explainSummary is one run's row in the /explain listing.
type explainSummary struct {
	Run     string `json:"run"`
	Program string `json:"program"`
	Policy  string `json:"policy"`
	Refs    int    `json:"refs"`
	Faults  int    `json:"pf"`
	Sites   int    `json:"sites"`
	Hotspot string `json:"hotspot,omitempty"`
	HotPF   int    `json:"hotspotPF,omitempty"`
}

// handleExplain serves the attribution ledgers: the bare path lists a
// summary per published run; ?run=<key> returns that run's full ledger
// with its sites ranked by fault count.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	store := s.opt.Explain
	if key := r.URL.Query().Get("run"); key != "" {
		led := store.Get(key)
		if led == nil {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "no ledger for run " + key})
			return
		}
		ranked := led.Rank()
		rankedIDs := make([]int32, len(ranked))
		for i, st := range ranked {
			rankedIDs[i] = st.ID
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"run":    key,
			"ledger": led,
			"ranked": rankedIDs,
		})
		return
	}
	keys := store.SortedKeys()
	out := make([]explainSummary, 0, len(keys))
	for _, k := range keys {
		led := store.Get(k)
		if led == nil {
			continue
		}
		sum := explainSummary{
			Run:     k,
			Program: led.Program,
			Policy:  led.Policy,
			Refs:    led.Refs,
			Faults:  led.Faults,
			Sites:   len(led.Sites),
		}
		if hs := led.Hotspot(); hs != nil {
			sum.Hotspot = hs.Name()
			sum.HotPF = hs.Faults
		}
		out = append(out, sum)
	}
	writeJSON(w, http.StatusOK, map[string]any{"runs": out})
}

// writeExplainMetrics appends per-site attribution series to a scrape:
// faults, references and evictions per (run, site), plus the directive
// effectiveness counters where nonzero. Site identity is carried in
// nest/expr labels (escaped — loop labels can contain quotes and
// backslashes once real-FORTRAN ingestion lands). An empty store writes
// nothing, keeping unattributed scrapes byte-identical.
func (s *Server) writeExplainMetrics(buf *bytes.Buffer) {
	store := s.opt.Explain
	if store.Len() == 0 {
		return
	}
	ns := s.opt.Namespace
	type series struct {
		name, help string
		value      func(*attr.SiteStats) int64
	}
	all := []series{
		{"attr_site_faults", "page faults attributed to the source site", func(st *attr.SiteStats) int64 { return int64(st.Faults) }},
		{"attr_site_refs", "page references executed at the source site", func(st *attr.SiteStats) int64 { return st.Refs }},
		{"attr_site_evictions", "pages evicted while the source site was executing", func(st *attr.SiteStats) int64 { return int64(st.Evictions) }},
		{"attr_site_locked_hits", "reference hits on pages held under the site's LOCK", func(st *attr.SiteStats) int64 { return st.LockedHits }},
		{"attr_site_shrink_faults", "refaults on pages the site's ALLOCATE shrink evicted", func(st *attr.SiteStats) int64 { return int64(st.ShrinkFaults) }},
		{"attr_site_release_faults", "refaults on pages force-released from the site's locks", func(st *attr.SiteStats) int64 { return int64(st.ReleaseFaults) }},
	}
	keys := store.SortedKeys()
	for _, sr := range all {
		fmt.Fprintf(buf, "# HELP %s_%s %s\n# TYPE %s_%s gauge\n", ns, sr.name, sr.help, ns, sr.name)
		for _, k := range keys {
			led := store.Get(k)
			if led == nil {
				continue
			}
			for i := range led.Stats {
				st := &led.Stats[i]
				v := sr.value(st)
				if v == 0 {
					continue
				}
				nest := st.Site.Nest
				if st.ID == trace.NoSite {
					nest = "<unattributed>"
				}
				fmt.Fprintf(buf, "%s_%s{run=\"%s\",policy=\"%s\",site=\"%d\",nest=\"%s\",expr=\"%s\"} %d\n",
					ns, sr.name, obs.EscapeLabelValue(k), obs.EscapeLabelValue(led.Policy),
					st.ID, obs.EscapeLabelValue(nest), obs.EscapeLabelValue(st.Site.Expr), v)
			}
		}
	}
}
