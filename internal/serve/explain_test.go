package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"cdmm/internal/attr"
	"cdmm/internal/trace"
)

// hostileLedger carries site labels with every character the exposition
// format must escape: double quotes, backslashes and newlines — the
// shapes real-FORTRAN loop labels and expressions can take.
func hostileLedger() *attr.Ledger {
	sites := []trace.Site{
		{Nest: `DO "40" / DO \30`, Line: 12, Array: "A", Expr: `A("I",J\K)`},
		{Nest: "DO 40", Line: 10, Expr: "ALLOCATE"},
	}
	l := attr.NewLedger("CONDUCT", "CD", sites)
	l.Stats[0].Refs, l.Stats[0].Faults = 100, 7
	l.Stats[1].Refs, l.Stats[1].Faults = 10, 1
	l.Stats[1].Allocs = 1
	l.Stats[2].Refs, l.Stats[2].Faults = 5, 2 // unattributed bucket
	l.Refs, l.Faults = 115, 10
	return l
}

func startExplainServer(t *testing.T) *Server {
	t.Helper()
	s := New(Options{})
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Shutdown(t.Context()) })
	return s
}

func getURL(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestScrapeUnchangedWhileStoreEmpty pins the gating: a server with no
// published ledgers scrapes byte-identically whether or not the explain
// plane exists — no attr series, no headers.
func TestScrapeUnchangedWhileStoreEmpty(t *testing.T) {
	s := startExplainServer(t)
	_, body := getURL(t, s.URL()+"/metrics")
	if strings.Contains(string(body), "attr_site") {
		t.Errorf("empty store leaked attr series into the scrape:\n%s", body)
	}
	var before bytes.Buffer
	s.writeServeMetrics(&before)
	var withExplain bytes.Buffer
	s.writeServeMetrics(&withExplain)
	s.writeExplainMetrics(&withExplain)
	if !bytes.Equal(before.Bytes(), withExplain.Bytes()) {
		t.Error("writeExplainMetrics wrote bytes for an empty store")
	}
}

// TestScrapeEscapesSiteLabels is the satellite's escaping test: site
// labels containing `"` and `\` must arrive exposition-format escaped
// and parse back to the original strings.
func TestScrapeEscapesSiteLabels(t *testing.T) {
	s := startExplainServer(t)
	s.Explain().Put("CONDUCT/CD", hostileLedger())
	_, body := getURL(t, s.URL()+"/metrics")
	text := string(body)

	if !strings.Contains(text, `nest="DO \"40\" / DO \\30"`) {
		t.Errorf("nest label not escaped:\n%s", grepLines(text, "attr_site_faults"))
	}
	if !strings.Contains(text, `expr="A(\"I\",J\\K)"`) {
		t.Errorf("expr label not escaped:\n%s", grepLines(text, "attr_site_faults"))
	}
	// The raw (unescaped) label must NOT appear inside a label value:
	// an unescaped quote would truncate the value at the first `"`.
	if strings.Contains(text, `nest="DO "40"`) {
		t.Error("unescaped quote in nest label value")
	}
	// Per-site fault values are present for every active site including
	// the unattributed bucket.
	for _, want := range []string{
		`site="0"`, `site="1"`, `site="-1"`,
		"attr_site_faults", "attr_site_refs",
		`nest="<unattributed>"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestScrapeSiteFaultsConservation scrapes the per-site fault series and
// checks the values sum exactly to the ledger's total PF — conservation
// holds across the export boundary too.
func TestScrapeSiteFaultsConservation(t *testing.T) {
	s := startExplainServer(t)
	led := hostileLedger()
	s.Explain().Put("CONDUCT/CD", led)
	_, body := getURL(t, s.URL()+"/metrics")
	sum := 0
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, "cdmm_attr_site_faults{") {
			continue
		}
		v, err := strconv.Atoi(line[strings.LastIndexByte(line, ' ')+1:])
		if err != nil {
			t.Fatalf("bad series line %q: %v", line, err)
		}
		sum += v
	}
	if sum != led.Faults {
		t.Errorf("scraped per-site faults sum to %d, ledger has %d", sum, led.Faults)
	}
}

func TestExplainEndpoint(t *testing.T) {
	s := startExplainServer(t)
	led := hostileLedger()
	s.Explain().Put("CONDUCT/CD", led)

	// Listing.
	code, body := getURL(t, s.URL()+"/explain")
	if code != http.StatusOK {
		t.Fatalf("GET /explain = %d", code)
	}
	var listing struct {
		Runs []struct {
			Run     string `json:"run"`
			Policy  string `json:"policy"`
			Faults  int    `json:"pf"`
			Hotspot string `json:"hotspot"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatalf("listing not JSON: %v", err)
	}
	if len(listing.Runs) != 1 || listing.Runs[0].Run != "CONDUCT/CD" || listing.Runs[0].Faults != 10 {
		t.Errorf("listing = %+v", listing)
	}
	if !strings.Contains(listing.Runs[0].Hotspot, `DO "40"`) {
		t.Errorf("hotspot = %q, want the hostile nest", listing.Runs[0].Hotspot)
	}

	// Full ledger.
	code, body = getURL(t, s.URL()+"/explain?run=CONDUCT%2FCD")
	if code != http.StatusOK {
		t.Fatalf("GET /explain?run= = %d", code)
	}
	var full struct {
		Run    string  `json:"run"`
		Ledger any     `json:"ledger"`
		Ranked []int32 `json:"ranked"`
	}
	if err := json.Unmarshal(body, &full); err != nil {
		t.Fatalf("ledger not JSON: %v", err)
	}
	if len(full.Ranked) == 0 || full.Ranked[0] != 0 {
		t.Errorf("ranked = %v, want site 0 first", full.Ranked)
	}

	// Unknown run.
	if code, _ := getURL(t, s.URL()+"/explain?run=nope"); code != http.StatusNotFound {
		t.Errorf("unknown run returned %d, want 404", code)
	}
}

// grepLines returns the lines of text containing sub, for error output.
func grepLines(text, sub string) string {
	var out []string
	for _, l := range strings.Split(text, "\n") {
		if strings.Contains(l, sub) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
