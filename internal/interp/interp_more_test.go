package interp

import (
	"testing"

	"cdmm/internal/trace"
)

// countRefs runs a program and returns the reference count; used to make
// the interpreter's arithmetic observable through control flow.
func countRefs(t *testing.T, src string) int {
	t.Helper()
	info, cfg := setup(t, src, false)
	tr, err := Run(info, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr.Refs
}

func TestShortCircuitAnd(t *testing.T) {
	// With .AND. short-circuit, V(1) on the right must not be referenced
	// when the left side is false.
	refs := countRefs(t, `
PROGRAM P
DIMENSION V(64), W(64)
X = 0.0
IF (X .GT. 1.0 .AND. V(1) .GT. 0.0) W(1) = 1.0
END
`)
	if refs != 0 {
		t.Errorf("refs = %d, want 0 (short-circuited)", refs)
	}
}

func TestShortCircuitOr(t *testing.T) {
	refs := countRefs(t, `
PROGRAM P
DIMENSION V(64), W(64)
X = 2.0
IF (X .GT. 1.0 .OR. V(1) .GT. 0.0) W(1) = 1.0
END
`)
	// Only the W(1) write: the V(1) read is skipped.
	if refs != 1 {
		t.Errorf("refs = %d, want 1", refs)
	}
}

func TestElseIfChainEvaluation(t *testing.T) {
	// X = 1.5 selects the middle branch: exactly one write.
	refs := countRefs(t, `
PROGRAM P
DIMENSION A(64), B(64), C(64)
X = 1.5
IF (X .GT. 2.0) THEN
  A(1) = 1.0
ELSE IF (X .GT. 1.0) THEN
  B(1) = 1.0
ELSE
  C(1) = 1.0
ENDIF
END
`)
	if refs != 1 {
		t.Errorf("refs = %d, want 1 (middle branch only)", refs)
	}
}

func TestNotOperator(t *testing.T) {
	refs := countRefs(t, `
PROGRAM P
DIMENSION W(64)
X = 0.0
IF (.NOT. X .GT. 1.0) W(1) = 1.0
END
`)
	if refs != 1 {
		t.Errorf("refs = %d, want 1", refs)
	}
}

func TestIntTruncationAndFloat(t *testing.T) {
	refs := countRefs(t, `
PROGRAM P
DIMENSION W(64)
X = INT(2.9)
Y = FLOAT(3)
IF (X .EQ. 2.0 .AND. Y .EQ. 3.0) W(1) = 1.0
END
`)
	if refs != 1 {
		t.Errorf("refs = %d, want 1 (INT truncates, FLOAT converts)", refs)
	}
}

func TestNestedLoopVariablePersistence(t *testing.T) {
	// FORTRAN loop variables persist after the loop with the
	// first-out-of-range value.
	refs := countRefs(t, `
PROGRAM P
DIMENSION W(64)
DO I = 1, 5
  X = 1.0
END DO
IF (I .EQ. 6.0) W(1) = 1.0
END
`)
	if refs != 1 {
		t.Errorf("refs = %d, want 1 (I persists as 6)", refs)
	}
}

func TestExitFromNestedLoopOnlyInner(t *testing.T) {
	// EXIT leaves only the innermost loop: the outer completes 3 passes,
	// each writing once before the inner EXIT.
	refs := countRefs(t, `
PROGRAM P
DIMENSION W(64)
DO I = 1, 3
  DO J = 1, 100
    W(J) = 1.0
    EXIT
  END DO
END DO
END
`)
	if refs != 3 {
		t.Errorf("refs = %d, want 3", refs)
	}
}

func TestCycleSkipsRest(t *testing.T) {
	refs := countRefs(t, `
PROGRAM P
DIMENSION W(64)
DO I = 1, 10
  CYCLE
  W(I) = 1.0
END DO
END
`)
	if refs != 0 {
		t.Errorf("refs = %d, want 0 (CYCLE skips the write)", refs)
	}
}

func TestSignIntrinsicBothSigns(t *testing.T) {
	refs := countRefs(t, `
PROGRAM P
DIMENSION W(64)
A = SIGN(3.0, 2.0)
B = SIGN(3.0, -2.0)
IF (A .EQ. 3.0 .AND. B .EQ. -3.0) W(1) = 1.0
END
`)
	if refs != 1 {
		t.Errorf("refs = %d, want 1", refs)
	}
}

func TestLoopBoundsWithIntrinsics(t *testing.T) {
	refs := countRefs(t, `
PROGRAM P
DIMENSION W(64)
N = 10
DO I = 1, MIN(N, 4)
  W(I) = 1.0
END DO
END
`)
	if refs != 4 {
		t.Errorf("refs = %d, want 4", refs)
	}
}

func TestUnlockEventCoversArrays(t *testing.T) {
	tr := run(t, `
PROGRAM P
DIMENSION A(128), B(64)
DO I = 1, 4
  A(I) = 1.0
  DO J = 1, 2
    B(J) = A(I)
  END DO
END DO
END
`, true)
	var unlocks [][]int
	for _, e := range tr.Events {
		if e.Kind == trace.EvUnlock {
			pages := tr.Unlock(e)
			var ps []int
			for _, p := range pages {
				ps = append(ps, int(p))
			}
			unlocks = append(unlocks, ps)
		}
	}
	if len(unlocks) != 1 {
		t.Fatalf("unlock events = %d, want 1", len(unlocks))
	}
	// UNLOCK covers all pages of the locked array A (2 pages).
	if len(unlocks[0]) != 2 {
		t.Errorf("unlock pages = %v, want A's 2 pages", unlocks[0])
	}
}
