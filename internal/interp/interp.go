// Package interp executes programs of the FORTRAN subset, producing the
// page-reference trace the virtual memory simulator replays. Array element
// accesses (reads and writes) each contribute one page reference; scalar
// and constant accesses do not (the paper assumes constants and
// instructions are permanently resident). When a directive plan is
// supplied, the inserted ALLOCATE/LOCK/UNLOCK directives execute at their
// insertion points and appear in the trace with pages resolved under the
// current loop indices.
package interp

import (
	"fmt"
	"math"

	"cdmm/internal/directive"
	"cdmm/internal/fortran"
	"cdmm/internal/mem"
	"cdmm/internal/sem"
	"cdmm/internal/trace"
)

// Config controls an interpreter run.
type Config struct {
	Layout *mem.Layout
	// Plan, when non-nil, causes directive events to be emitted.
	Plan *directive.Plan
	// MaxRefs caps the trace length as a runaway guard. 0 means the
	// default of 20 million references.
	MaxRefs int
	// Sites, when true, records the source-site side-band: every emitted
	// event is attributed to its loop nest, statement and array (or
	// directive insertion point) via trace.SetSite. Off by default so
	// plain traces stay byte-identical on disk.
	Sites bool
}

// Run executes the program and returns its trace.
func Run(info *sem.Info, cfg Config) (*trace.Trace, error) {
	if cfg.Layout == nil {
		return nil, fmt.Errorf("interp: Config.Layout is required")
	}
	maxRefs := cfg.MaxRefs
	if maxRefs == 0 {
		maxRefs = 20_000_000
	}
	ex := &executor{
		info:    info,
		layout:  cfg.Layout,
		plan:    cfg.Plan,
		tr:      trace.New(info.Prog.Name),
		maxRefs: maxRefs,
		scalars: map[string]float64{},
		arrays:  map[string][]float64{},
	}
	for _, a := range info.Prog.Arrays {
		ex.arrays[a.Name] = make([]float64, a.Elems())
	}
	if cfg.Plan != nil {
		ex.loopOf = map[*fortran.DoStmt]*sem.Loop{}
		for _, l := range info.Loops {
			ex.loopOf[l.Stmt] = l
		}
	}
	if cfg.Sites {
		ex.buildSites()
	}
	if err := ex.stmts(info.Prog.Body); err != nil {
		if err == errTooLong {
			return nil, fmt.Errorf("interp: %s exceeded %d references", info.Prog.Name, maxRefs)
		}
		return nil, err
	}
	return ex.tr, nil
}

// control is the statement-level control-flow outcome.
type control int

const (
	ctrlNext control = iota
	ctrlExit
	ctrlCycle
)

var errTooLong = fmt.Errorf("trace too long")

type executor struct {
	info    *sem.Info
	layout  *mem.Layout
	plan    *directive.Plan
	tr      *trace.Trace
	maxRefs int
	scalars map[string]float64
	arrays  map[string][]float64
	loopOf  map[*fortran.DoStmt]*sem.Loop

	// Site threading (Config.Sites): siteOf maps every source array
	// reference to its trace site; dirSiteOf interns one site per
	// (loop, directive kind) insertion point. Both nil when sites are off.
	siteOf    map[*fortran.RefExpr]int32
	dirSiteOf map[dirSiteKey]int32
}

// dirSiteKey identifies a directive insertion point for site interning.
type dirSiteKey struct {
	loop *sem.Loop
	kind string
}

// buildSites registers a trace site for every array reference in the
// program up front, so site ids are stable in source preorder regardless
// of execution order.
func (ex *executor) buildSites() {
	ex.siteOf = map[*fortran.RefExpr]int32{}
	ex.dirSiteOf = map[dirSiteKey]int32{}
	var walk func(l *sem.Loop)
	walk = func(l *sem.Loop) {
		for _, ar := range l.Refs {
			ex.siteOf[ar.Ref] = ex.tr.AddSite(trace.Site{
				Nest:  l.Path(),
				Line:  ar.Ref.Line,
				Array: ar.Array.Name,
				Expr:  fortran.FormatExpr(ar.Ref),
			})
		}
		for _, c := range l.Children {
			walk(c)
		}
	}
	walk(ex.info.Root)
}

// directiveSite interns the site of a directive inserted at the given
// loop.
func (ex *executor) directiveSite(loop *sem.Loop, kind string) int32 {
	k := dirSiteKey{loop: loop, kind: kind}
	id, ok := ex.dirSiteOf[k]
	if !ok {
		line := 0
		if loop.Stmt != nil {
			line = loop.Stmt.Line
		}
		id = ex.tr.AddSite(trace.Site{Nest: loop.Path(), Line: line, Expr: kind})
		ex.dirSiteOf[k] = id
	}
	return id
}

func (ex *executor) stmts(list []fortran.Stmt) error {
	for _, s := range list {
		c, err := ex.stmt(s)
		if err != nil {
			return err
		}
		if c != ctrlNext {
			return fmt.Errorf("line %d: EXIT/CYCLE outside loop", s.Pos())
		}
	}
	return nil
}

// body executes a loop or branch body and propagates EXIT/CYCLE upward.
func (ex *executor) body(list []fortran.Stmt) (control, error) {
	for _, s := range list {
		c, err := ex.stmt(s)
		if err != nil {
			return ctrlNext, err
		}
		if c != ctrlNext {
			return c, nil
		}
	}
	return ctrlNext, nil
}

func (ex *executor) stmt(s fortran.Stmt) (control, error) {
	switch st := s.(type) {
	case *fortran.AssignStmt:
		return ctrlNext, ex.assign(st)
	case *fortran.DoStmt:
		return ctrlNext, ex.doLoop(st)
	case *fortran.IfStmt:
		cond, err := ex.eval(st.Cond)
		if err != nil {
			return ctrlNext, err
		}
		if cond != 0 {
			return ex.body(st.Then)
		}
		return ex.body(st.Else)
	case *fortran.ExitStmt:
		return ctrlExit, nil
	case *fortran.CycleStmt:
		return ctrlCycle, nil
	case *fortran.ContinueStmt:
		return ctrlNext, nil
	}
	return ctrlNext, fmt.Errorf("line %d: unknown statement %T", s.Pos(), s)
}

func (ex *executor) assign(st *fortran.AssignStmt) error {
	// FORTRAN evaluation order: RHS first, then the store.
	v, err := ex.eval(st.RHS)
	if err != nil {
		return err
	}
	return ex.store(st.LHS, v)
}

func (ex *executor) doLoop(st *fortran.DoStmt) error {
	// Directives textually precede the loop and execute every time control
	// reaches it.
	if ex.plan != nil {
		if err := ex.emitPreLoop(st); err != nil {
			return err
		}
	}
	from, err := ex.evalInt(st.From)
	if err != nil {
		return err
	}
	to, err := ex.evalInt(st.To)
	if err != nil {
		return err
	}
	step := 1
	if st.Step != nil {
		step, err = ex.evalInt(st.Step)
		if err != nil {
			return err
		}
		if step == 0 {
			return fmt.Errorf("line %d: zero DO step", st.Line)
		}
	}
	i := from
	for ; (step > 0 && i <= to) || (step < 0 && i >= to); i += step {
		ex.scalars[st.Var] = float64(i)
		c, err := ex.body(st.Body)
		if err != nil {
			return err
		}
		if c == ctrlExit {
			break
		}
	}
	// FORTRAN semantics: after normal completion the DO variable holds the
	// first out-of-range value; after EXIT it keeps its current value.
	ex.scalars[st.Var] = float64(i)
	if ex.plan != nil {
		if err := ex.emitPostLoop(st); err != nil {
			return err
		}
	}
	return nil
}

// emitPreLoop executes the LOCK and ALLOCATE directives preceding a loop.
func (ex *executor) emitPreLoop(st *fortran.DoStmt) error {
	loop := ex.loopOf[st]
	for _, d := range ex.plan.PreLoop[loop] {
		switch dir := d.(type) {
		case *directive.Lock:
			pages, err := ex.resolveLockPages(dir)
			if err != nil {
				return err
			}
			if ex.siteOf != nil {
				ex.tr.SetSite(ex.directiveSite(loop, "LOCK"))
			}
			ex.tr.AddLock(dir.PJ, dir.ID, pages)
		case *directive.Allocate:
			if ex.siteOf != nil {
				ex.tr.SetSite(ex.directiveSite(loop, "ALLOCATE"))
			}
			ex.tr.AddAlloc(dir)
		}
	}
	return nil
}

// emitPostLoop executes the UNLOCK directives following a loop.
func (ex *executor) emitPostLoop(st *fortran.DoStmt) error {
	loop := ex.loopOf[st]
	for _, d := range ex.plan.PostLoop[loop] {
		if ul, ok := d.(*directive.Unlock); ok {
			var pages []mem.Page
			for _, name := range ul.Arrays {
				seg, ok := ex.layout.Segment(name)
				if !ok {
					return fmt.Errorf("UNLOCK: unknown array %s", name)
				}
				for p := seg.Base; p < seg.End(); p++ {
					pages = append(pages, p)
				}
			}
			if ex.siteOf != nil {
				ex.tr.SetSite(ex.directiveSite(loop, "UNLOCK"))
			}
			ex.tr.AddUnlock(pages)
		}
	}
	return nil
}

// resolveLockPages evaluates the lock site's reference subscripts under
// the current indices to find the concrete pages to pin.
func (ex *executor) resolveLockPages(lk *directive.Lock) ([]mem.Page, error) {
	var pages []mem.Page
	seen := map[mem.Page]bool{}
	for _, ar := range lk.Refs {
		row, col, err := ex.subscripts(ar.Ref)
		if err != nil {
			// A subscript may use a variable not yet defined on the first
			// execution (e.g. locked before any assignment); skip the site.
			continue
		}
		p, err := ex.layout.PageOf(ar.Array.Name, row, col)
		if err != nil {
			continue // out-of-range current index: nothing to lock yet
		}
		if !seen[p] {
			seen[p] = true
			pages = append(pages, p)
		}
	}
	return pages, nil
}

// subscripts evaluates a reference's subscripts to (row, col).
func (ex *executor) subscripts(r *fortran.RefExpr) (row, col int, err error) {
	row, err = ex.evalInt(r.Subs[0])
	if err != nil {
		return 0, 0, err
	}
	col = 1
	if len(r.Subs) == 2 {
		col, err = ex.evalInt(r.Subs[1])
		if err != nil {
			return 0, 0, err
		}
	}
	return row, col, nil
}

// touch emits the page reference for an array element access and returns
// the element's linear index.
func (ex *executor) touch(r *fortran.RefExpr) (int, error) {
	row, col, err := ex.subscripts(r)
	if err != nil {
		return 0, err
	}
	p, err := ex.layout.PageOf(r.Name, row, col)
	if err != nil {
		return 0, fmt.Errorf("line %d: %v", r.Line, err)
	}
	if ex.tr.Refs >= ex.maxRefs {
		return 0, errTooLong
	}
	if ex.siteOf != nil {
		id, ok := ex.siteOf[r]
		if !ok {
			id = trace.NoSite
		}
		ex.tr.SetSite(id)
	}
	ex.tr.AddRef(p)
	seg, _ := ex.layout.Segment(r.Name)
	return (col-1)*seg.Rows + (row - 1), nil
}

func (ex *executor) store(r *fortran.RefExpr, v float64) error {
	if r.IsScalar() {
		ex.scalars[r.Name] = v
		return nil
	}
	idx, err := ex.touch(r)
	if err != nil {
		return err
	}
	ex.arrays[r.Name][idx] = v
	return nil
}

func (ex *executor) evalInt(e fortran.Expr) (int, error) {
	v, err := ex.eval(e)
	if err != nil {
		return 0, err
	}
	return int(math.Round(v)), nil
}

func (ex *executor) eval(e fortran.Expr) (float64, error) {
	switch x := e.(type) {
	case *fortran.NumExpr:
		return x.Value, nil
	case *fortran.RefExpr:
		if x.IsScalar() {
			v, ok := ex.scalars[x.Name]
			if !ok {
				return 0, fmt.Errorf("line %d: scalar %s used before assignment", x.Line, x.Name)
			}
			return v, nil
		}
		idx, err := ex.touch(x)
		if err != nil {
			return 0, err
		}
		return ex.arrays[x.Name][idx], nil
	case *fortran.UnExpr:
		v, err := ex.eval(x.X)
		if err != nil {
			return 0, err
		}
		if x.Op == ".NOT." {
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		}
		return -v, nil
	case *fortran.BinExpr:
		return ex.evalBin(x)
	case *fortran.CallExpr:
		return ex.call(x)
	}
	return 0, fmt.Errorf("unknown expression %T", e)
}

func (ex *executor) evalBin(x *fortran.BinExpr) (float64, error) {
	l, err := ex.eval(x.L)
	if err != nil {
		return 0, err
	}
	// Short-circuit logical operators (both sides are cheap here but this
	// keeps directive side effects in FORTRAN textual order regardless).
	switch x.Op {
	case ".AND.":
		if l == 0 {
			return 0, nil
		}
		r, err := ex.eval(x.R)
		if err != nil {
			return 0, err
		}
		return boolVal(r != 0), nil
	case ".OR.":
		if l != 0 {
			return 1, nil
		}
		r, err := ex.eval(x.R)
		if err != nil {
			return 0, err
		}
		return boolVal(r != 0), nil
	}
	r, err := ex.eval(x.R)
	if err != nil {
		return 0, err
	}
	switch x.Op {
	case "+":
		return l + r, nil
	case "-":
		return l - r, nil
	case "*":
		return l * r, nil
	case "/":
		if r == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return l / r, nil
	case "**":
		return math.Pow(l, r), nil
	case ".LT.":
		return boolVal(l < r), nil
	case ".LE.":
		return boolVal(l <= r), nil
	case ".GT.":
		return boolVal(l > r), nil
	case ".GE.":
		return boolVal(l >= r), nil
	case ".EQ.":
		return boolVal(l == r), nil
	case ".NE.":
		return boolVal(l != r), nil
	}
	return 0, fmt.Errorf("unknown operator %s", x.Op)
}

func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func (ex *executor) call(x *fortran.CallExpr) (float64, error) {
	args := make([]float64, len(x.Args))
	for i, a := range x.Args {
		v, err := ex.eval(a)
		if err != nil {
			return 0, err
		}
		args[i] = v
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s expects %d arguments, got %d", x.Name, n, len(args))
		}
		return nil
	}
	switch x.Name {
	case "ABS", "IABS":
		if err := need(1); err != nil {
			return 0, err
		}
		return math.Abs(args[0]), nil
	case "SQRT":
		if err := need(1); err != nil {
			return 0, err
		}
		if args[0] < 0 {
			return 0, fmt.Errorf("SQRT of negative %g", args[0])
		}
		return math.Sqrt(args[0]), nil
	case "EXP":
		if err := need(1); err != nil {
			return 0, err
		}
		return math.Exp(args[0]), nil
	case "LOG":
		if err := need(1); err != nil {
			return 0, err
		}
		if args[0] <= 0 {
			return 0, fmt.Errorf("LOG of non-positive %g", args[0])
		}
		return math.Log(args[0]), nil
	case "SIN":
		if err := need(1); err != nil {
			return 0, err
		}
		return math.Sin(args[0]), nil
	case "COS":
		if err := need(1); err != nil {
			return 0, err
		}
		return math.Cos(args[0]), nil
	case "ATAN":
		if err := need(1); err != nil {
			return 0, err
		}
		return math.Atan(args[0]), nil
	case "MAX", "AMAX1", "MAX0":
		if len(args) < 2 {
			return 0, fmt.Errorf("%s needs at least 2 arguments", x.Name)
		}
		m := args[0]
		for _, v := range args[1:] {
			if v > m {
				m = v
			}
		}
		return m, nil
	case "MIN", "AMIN1", "MIN0":
		if len(args) < 2 {
			return 0, fmt.Errorf("%s needs at least 2 arguments", x.Name)
		}
		m := args[0]
		for _, v := range args[1:] {
			if v < m {
				m = v
			}
		}
		return m, nil
	case "MOD":
		if err := need(2); err != nil {
			return 0, err
		}
		if args[1] == 0 {
			return 0, fmt.Errorf("MOD by zero")
		}
		return math.Mod(args[0], args[1]), nil
	case "SIGN":
		if err := need(2); err != nil {
			return 0, err
		}
		if args[1] < 0 {
			return -math.Abs(args[0]), nil
		}
		return math.Abs(args[0]), nil
	case "FLOAT", "REAL", "DBLE":
		if err := need(1); err != nil {
			return 0, err
		}
		return args[0], nil
	case "INT":
		if err := need(1); err != nil {
			return 0, err
		}
		return math.Trunc(args[0]), nil
	}
	return 0, fmt.Errorf("unknown intrinsic %s", x.Name)
}
