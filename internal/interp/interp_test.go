package interp

import (
	"testing"

	"cdmm/internal/directive"
	"cdmm/internal/fortran"
	"cdmm/internal/locality"
	"cdmm/internal/mem"
	"cdmm/internal/sem"
	"cdmm/internal/trace"
)

// setup compiles a source to the pieces the interpreter needs.
func setup(t *testing.T, src string, withPlan bool) (*sem.Info, Config) {
	t.Helper()
	prog, err := fortran.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	layout, err := mem.NewLayout(prog, mem.DefaultGeometry)
	if err != nil {
		t.Fatalf("layout: %v", err)
	}
	cfg := Config{Layout: layout}
	if withPlan {
		cfg.Plan = directive.Build(locality.Analyze(info, layout, locality.DefaultParams))
	}
	return info, cfg
}

func run(t *testing.T, src string, withPlan bool) *trace.Trace {
	t.Helper()
	info, cfg := setup(t, src, withPlan)
	tr, err := Run(info, cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return tr
}

func TestVectorScanTrace(t *testing.T) {
	// 128 elements = exactly 2 pages; one ref per element.
	tr := run(t, `
PROGRAM P
DIMENSION V(128)
DO I = 1, 128
  V(I) = 1.0
END DO
END
`, false)
	if tr.Refs != 128 {
		t.Errorf("refs = %d, want 128", tr.Refs)
	}
	if tr.Distinct != 2 {
		t.Errorf("distinct = %d, want 2", tr.Distinct)
	}
	pages := tr.Pages()
	if pages[0] != 0 || pages[63] != 0 || pages[64] != 1 || pages[127] != 1 {
		t.Errorf("page boundaries wrong: %v %v %v %v", pages[0], pages[63], pages[64], pages[127])
	}
}

func TestReadAndWriteBothCount(t *testing.T) {
	// V(I) = V(I) + 1.0 touches V twice per iteration (read then write).
	tr := run(t, `
PROGRAM P
DIMENSION V(64)
DO I = 1, 64
  V(I) = V(I) + 1.0
END DO
END
`, false)
	if tr.Refs != 128 {
		t.Errorf("refs = %d, want 128 (read+write per element)", tr.Refs)
	}
}

func TestEvaluationOrderRHSBeforeLHS(t *testing.T) {
	tr := run(t, `
PROGRAM P
DIMENSION A(64), B(64)
A(1) = B(1)
END
`, false)
	pages := tr.Pages()
	if len(pages) != 2 {
		t.Fatalf("refs = %d, want 2", len(pages))
	}
	// B occupies page 1 (declared second), A page 0; RHS read first.
	if pages[0] != 1 || pages[1] != 0 {
		t.Errorf("order = %v, want [B's page 1, A's page 0]", pages)
	}
}

func TestColumnMajorTraversal(t *testing.T) {
	// Column-wise walk: consecutive references stay on a page for 64
	// elements; row-wise walk strides across pages.
	colwise := run(t, `
PROGRAM P
DIMENSION A(64,4)
DO J = 1, 4
  DO I = 1, 64
    A(I,J) = 0.0
  END DO
END DO
END
`, false)
	pages := colwise.Pages()
	changes := 0
	for i := 1; i < len(pages); i++ {
		if pages[i] != pages[i-1] {
			changes++
		}
	}
	if changes != 3 {
		t.Errorf("column-wise page changes = %d, want 3", changes)
	}

	rowwise := run(t, `
PROGRAM P
DIMENSION A(64,4)
DO I = 1, 64
  DO J = 1, 4
    A(I,J) = 0.0
  END DO
END DO
END
`, false)
	pages = rowwise.Pages()
	changes = 0
	for i := 1; i < len(pages); i++ {
		if pages[i] != pages[i-1] {
			changes++
		}
	}
	if changes != 255 { // every reference hits a different page
		t.Errorf("row-wise page changes = %d, want 255", changes)
	}
}

func TestArithmeticCorrectness(t *testing.T) {
	// Sum 1..10 into V(1), then check the value via a conditional trace
	// effect: if the sum is wrong the second loop writes more pages.
	info, cfg := setup(t, `
PROGRAM P
DIMENSION V(64), W(64)
V(1) = 0.0
DO I = 1, 10
  V(1) = V(1) + FLOAT(I)
END DO
IF (V(1) .EQ. 55.0) THEN
  W(1) = 1.0
ENDIF
END
`, false)
	tr, err := Run(info, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 1 write + 10*(read+write) + 1 read (IF) + 1 write to W = 23 refs.
	if tr.Refs != 23 {
		t.Errorf("refs = %d, want 23 (implies V(1) == 55)", tr.Refs)
	}
}

func TestIntrinsics(t *testing.T) {
	info, cfg := setup(t, `
PROGRAM P
DIMENSION W(64)
X = SQRT(16.0) + ABS(-3.0) + MAX(1.0, 2.0, 7.0) + MIN(5.0, 2.0) + MOD(7.0, 3.0) + SIGN(4.0, -1.0)
IF (X .EQ. 13.0) W(1) = 1.0
END
`, false)
	tr, err := Run(info, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 4+3+7+2+1-4 = 13 -> W(1) written -> exactly 1 ref.
	if tr.Refs != 1 {
		t.Errorf("refs = %d, want 1 (X should equal 13)", tr.Refs)
	}
}

func TestExitAndCycle(t *testing.T) {
	tr := run(t, `
PROGRAM P
DIMENSION V(64)
DO I = 1, 100
  IF (I .GT. 10) EXIT
  IF (MOD(FLOAT(I), 2.0) .EQ. 0.0) CYCLE
  V(I) = 1.0
END DO
END
`, false)
	// Odd I in 1..10: 5 writes.
	if tr.Refs != 5 {
		t.Errorf("refs = %d, want 5", tr.Refs)
	}
}

func TestDoStepAndDownward(t *testing.T) {
	tr := run(t, `
PROGRAM P
DIMENSION V(64)
DO I = 10, 1, -2
  V(I) = 1.0
END DO
DO J = 1, 10, 3
  V(J) = 2.0
END DO
END
`, false)
	if tr.Refs != 9 { // 5 downward + 4 upward
		t.Errorf("refs = %d, want 9", tr.Refs)
	}
}

func TestDirectiveEventsEmitted(t *testing.T) {
	tr := run(t, `
PROGRAM P
DIMENSION A(64), B(64)
DO I = 1, 3
  A(I) = 1.0
  DO J = 1, 4
    B(J) = A(I)
  END DO
END DO
END
`, true)
	var allocs, locks, unlocks int
	for _, e := range tr.Events {
		switch e.Kind {
		case trace.EvAlloc:
			allocs++
		case trace.EvLock:
			locks++
		case trace.EvUnlock:
			unlocks++
		}
	}
	// ALLOCATE before the outer loop once, before the inner loop 3 times.
	if allocs != 4 {
		t.Errorf("alloc events = %d, want 4", allocs)
	}
	// LOCK (A) before the inner loop each outer iteration.
	if locks != 3 {
		t.Errorf("lock events = %d, want 3", locks)
	}
	// UNLOCK after the outer loop once.
	if unlocks != 1 {
		t.Errorf("unlock events = %d, want 1", unlocks)
	}
}

func TestLockPagesResolved(t *testing.T) {
	tr := run(t, `
PROGRAM P
DIMENSION A(128), B(64)
DO I = 1, 128
  A(I) = 1.0
  DO J = 1, 2
    B(J) = A(I)
  END DO
END DO
END
`, true)
	// The LOCK before the inner loop pins A's current page: page 0 for
	// I <= 64, page 1 after.
	var firstLock, lastLock trace.LockSet
	seen := false
	for _, e := range tr.Events {
		if e.Kind == trace.EvLock {
			ls := tr.Lock(e)
			if !seen {
				firstLock = ls
				seen = true
			}
			lastLock = ls
		}
	}
	if !seen {
		t.Fatal("no lock events")
	}
	if len(firstLock.Pages) != 1 || firstLock.Pages[0] != 0 {
		t.Errorf("first lock pages = %v, want [0]", firstLock.Pages)
	}
	if len(lastLock.Pages) != 1 || lastLock.Pages[0] != 1 {
		t.Errorf("last lock pages = %v, want [1]", lastLock.Pages)
	}
}

func TestStripDirectives(t *testing.T) {
	tr := run(t, `
PROGRAM P
DIMENSION A(64), B(64)
DO I = 1, 3
  A(I) = 1.0
  DO J = 1, 4
    B(J) = A(I)
  END DO
END DO
END
`, true)
	plain := tr.StripDirectives()
	if plain.Refs != tr.Refs {
		t.Errorf("stripped refs = %d, want %d", plain.Refs, tr.Refs)
	}
	if plain.Distinct != tr.Distinct {
		t.Errorf("stripped distinct = %d, want %d", plain.Distinct, tr.Distinct)
	}
	for _, e := range plain.Events {
		if e.Kind != trace.EvRef {
			t.Fatalf("stripped trace contains %v event", e.Kind)
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"out of bounds", "PROGRAM P\nDIMENSION V(10)\nDO I = 1, 11\nV(I) = 1.0\nEND DO\nEND\n"},
		{"undefined scalar", "PROGRAM P\nDIMENSION V(10)\nV(1) = X\nEND\n"},
		{"division by zero", "PROGRAM P\nX = 0.0\nY = 1.0 / X\nEND\n"},
		{"sqrt negative", "PROGRAM P\nX = SQRT(-1.0)\nEND\n"},
		{"zero step", "PROGRAM P\nN = 0\nDO I = 1, 5, N\nX = 1.0\nEND DO\nEND\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			info, cfg := setup(t, c.src, false)
			if _, err := Run(info, cfg); err == nil {
				t.Error("expected runtime error")
			}
		})
	}
}

func TestMaxRefsGuard(t *testing.T) {
	info, cfg := setup(t, `
PROGRAM P
DIMENSION V(64)
DO I = 1, 1000
  DO J = 1, 64
    V(J) = 1.0
  END DO
END DO
END
`, false)
	cfg.MaxRefs = 100
	if _, err := Run(info, cfg); err == nil {
		t.Error("expected max-refs error")
	}
}

func TestDeterminism(t *testing.T) {
	src := `
PROGRAM P
DIMENSION A(64,4), V(100)
DO J = 1, 4
  DO I = 1, 64
    A(I,J) = FLOAT(I) * 0.5
    V(MOD(I, 100) + 1) = A(I,J)
  END DO
END DO
END
`
	t1 := run(t, src, true)
	t2 := run(t, src, true)
	if len(t1.Events) != len(t2.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(t1.Events), len(t2.Events))
	}
	for i := range t1.Events {
		if t1.Events[i] != t2.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, t1.Events[i], t2.Events[i])
		}
	}
}
