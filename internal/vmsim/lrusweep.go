package vmsim

import (
	"cdmm/internal/policy"
	"cdmm/internal/trace"
)

// LRUSweep computes the full LRU allocation sweep m = 1..V in a single
// pass over the trace using LRU stack distances (Mattson's stack
// algorithm) with a Fenwick tree, O(R log R) total time. The results are
// exactly what replaying the trace under NewLRU(m) for every m would
// produce — page faults, MEM and space-time cost under the fixed-partition
// charging rule (the whole partition is allocated for the program's entire
// virtual time) — at a fraction of the cost; TestLRUSweepMatchesBrute
// cross-validates the equivalence.
type LRUSweep struct {
	V    int
	Refs int
	// faults[m] is PF under allocation m, for m in [1, V]; faults[0] is
	// unused. Allocations above V behave exactly like V.
	faults []int
}

// NewLRUSweep analyzes the trace's reference string.
func NewLRUSweep(tr *trace.Trace) *LRUSweep {
	uni := tr.Universe()
	refs := uni.IDs
	s := &LRUSweep{Refs: len(refs), V: uni.NumPages}

	// Single pass: the LRU stack distance of every reference. Pages are
	// addressed by their dense universe id, so the per-page bookkeeping is
	// array indexing instead of hashing.
	bit := newFenwick(len(refs) + 1)
	lastPos := make([]int, uni.NumPages) // id -> 1-based time of latest ref; 0 = unseen
	distSuffix := make([]int, s.V+2)     // stack distance -> count, then suffix sums

	for i, id := range refs {
		t := i + 1
		if prev := lastPos[id]; prev != 0 {
			// Distinct pages referenced strictly after prev: set bits in
			// (prev, t).
			d := bit.sum(t-1) - bit.sum(prev) + 1
			if d > s.V {
				d = s.V + 1 // cannot exceed V, defensive
			}
			distSuffix[d]++
			bit.add(prev, -1)
		}
		bit.add(t, 1)
		lastPos[id] = t
	}

	// Faults(m) = first touches (V) + #refs with stack distance > m.
	s.faults = make([]int, s.V+1)
	for d := s.V; d >= 1; d-- {
		distSuffix[d] += distSuffix[d+1]
	}
	for m := 1; m <= s.V; m++ {
		s.faults[m] = s.V + distSuffix[m+1]
	}
	return s
}

func (s *LRUSweep) clamp(m int) int {
	if m < 1 {
		return 1
	}
	if m > s.V {
		return s.V
	}
	return m
}

// Faults returns PF under allocation m.
func (s *LRUSweep) Faults(m int) int { return s.faults[s.clamp(m)] }

// MEM returns the memory allocated: the partition size itself.
func (s *LRUSweep) MEM(m int) float64 { return float64(s.clamp(m)) }

// ST returns the space-time cost under allocation m: the partition is
// held for the whole virtual time R + FaultService·PF(m).
func (s *LRUSweep) ST(m int) float64 {
	m = s.clamp(m)
	return float64(m) * (float64(s.Refs) + float64(policy.FaultService)*float64(s.faults[m]))
}

// Result converts one sweep point into the common Result form.
func (s *LRUSweep) Result(m int) Result {
	m = s.clamp(m)
	pf := s.faults[m]
	vt := int64(s.Refs) + int64(pf)*policy.FaultService
	return Result{
		Policy:      policy.NewLRU(m).Name(),
		Refs:        s.Refs,
		Faults:      pf,
		MemSum:      float64(m) * float64(s.Refs),
		SpaceTime:   float64(m) * float64(vt),
		VirtualTime: vt,
		MaxResident: m,
	}
}

// MinST returns the allocation minimizing space-time cost and that cost.
func (s *LRUSweep) MinST() (int, float64) {
	bestM, best := 1, s.ST(1)
	for m := 2; m <= s.V; m++ {
		if st := s.ST(m); st < best {
			bestM, best = m, st
		}
	}
	return bestM, best
}

// MinAllocationForFaults returns the smallest allocation whose fault count
// is at most target (faults are non-increasing in m for LRU). The second
// result is false if even m = V faults more than target.
func (s *LRUSweep) MinAllocationForFaults(target int) (int, bool) {
	if s.faults[s.V] > target {
		return s.V, false
	}
	lo, hi := 1, s.V
	for lo < hi {
		mid := (lo + hi) / 2
		if s.faults[mid] <= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, true
}

// fenwick is a basic binary indexed tree over 1..n.
type fenwick struct {
	tree []int
}

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int, n+1)} }

func (f *fenwick) add(i, delta int) {
	for ; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

// sum returns the prefix sum over [1, i].
func (f *fenwick) sum(i int) int {
	s := 0
	for ; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}
