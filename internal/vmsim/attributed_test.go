package vmsim

import (
	"testing"

	"cdmm/internal/directive"
	"cdmm/internal/mem"
	"cdmm/internal/policy"
	"cdmm/internal/trace"
	"cdmm/internal/workloads"
)

// sitedTrace stamps a random trace with a rotating set of fake sites so
// attribution tests exercise multi-run site columns without a compiler.
func sitedTrace(seed uint64, n, universe, nsites int) *trace.Trace {
	rng := func() uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed >> 33
	}
	tr := trace.New("sited")
	ids := make([]int32, nsites)
	for i := range ids {
		ids[i] = tr.AddSite(trace.Site{
			Nest:  "DO 10 / DO 20",
			Line:  10 + i,
			Array: "A",
			Expr:  "A(I,J)",
		})
	}
	base := 0
	for i := 0; i < n; i++ {
		if rng()%97 == 0 {
			base = int(rng()) % universe
		}
		if rng()%53 == 0 {
			tr.SetSite(ids[int(rng())%nsites])
		}
		span := 4 + int(rng()%8)
		tr.AddRef(mem.Page((base + int(rng())%span) % universe))
	}
	return tr
}

// sitedCDPhaseTrace is cdPhaseTrace with a site column: one site per
// phase loop plus directive sites.
func sitedCDPhaseTrace() *trace.Trace {
	tr := trace.New("cdphase")
	sLoop1 := tr.AddSite(trace.Site{Nest: "DO 10", Line: 10, Array: "A", Expr: "A(I)"})
	sLoop2 := tr.AddSite(trace.Site{Nest: "DO 20", Line: 20, Array: "B", Expr: "B(I)"})
	sLoop3 := tr.AddSite(trace.Site{Nest: "DO 30", Line: 30, Array: "A", Expr: "A(I)"})
	sAlloc1 := tr.AddSite(trace.Site{Nest: "DO 10", Line: 10, Expr: "ALLOCATE"})
	sAlloc2 := tr.AddSite(trace.Site{Nest: "DO 20", Line: 20, Expr: "ALLOCATE"})
	sLock := tr.AddSite(trace.Site{Nest: "DO 10", Line: 10, Expr: "LOCK"})
	sUnlock := tr.AddSite(trace.Site{Nest: "DO 20", Line: 20, Expr: "UNLOCK"})

	src := cdPhaseTrace()
	// Rebuild cdPhaseTrace event-for-event, stamping sites.
	ei := 0
	for _, e := range src.Events {
		switch e.Kind {
		case trace.EvRef:
			switch {
			case ei < 1+80: // first phase refs
				tr.SetSite(sLoop1)
			case ei < 1+80+2+40: // second phase refs
				tr.SetSite(sLoop2)
			default:
				tr.SetSite(sLoop3)
			}
			tr.AddRef(mem.Page(e.Arg))
		case trace.EvAlloc:
			if ei == 0 {
				tr.SetSite(sAlloc1)
			} else {
				tr.SetSite(sAlloc2)
			}
			tr.AddAlloc(&directive.Allocate{Arms: src.Alloc(e).Arms})
		case trace.EvLock:
			tr.SetSite(sLock)
			ls := src.Lock(e)
			tr.AddLock(ls.PJ, ls.Site, ls.Pages)
		case trace.EvUnlock:
			tr.SetSite(sUnlock)
			tr.AddUnlock(src.Unlock(e))
		}
		ei++
	}
	return tr
}

// TestAttributedMatchesRun pins the tentpole's core identity: the Result
// RunAttributed returns is bit-for-bit the Result Run returns, with and
// without a site column.
func TestAttributedMatchesRun(t *testing.T) {
	cases := []struct {
		name string
		tr   *trace.Trace
		mk   func() policy.Policy
	}{
		{"LRU/sited", sitedTrace(7, 5000, 40, 5), func() policy.Policy { return policy.NewLRU(8) }},
		{"WS/sited", sitedTrace(11, 5000, 40, 3), func() policy.Policy { return policy.NewWS(64) }},
		{"FIFO/sited", sitedTrace(13, 5000, 40, 4), func() policy.Policy { return policy.NewFIFO(8) }},
		{"CD/sited", sitedCDPhaseTrace(), func() policy.Policy { return policy.NewCD(policy.SelectLevel(2), 2) }},
		{"LRU/siteless", randomTrace(7, 5000, 40), func() policy.Policy { return policy.NewLRU(8) }},
		{"CD/siteless", cdPhaseTrace(), func() policy.Policy { return policy.NewCD(policy.SelectLevel(2), 2) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := Run(tc.tr, tc.mk())
			got, led := RunAttributed(tc.tr, tc.mk(), nil)
			if got != want {
				t.Errorf("attributed result diverged:\n run  %+v\n attr %+v", want, got)
			}
			if err := led.Conservation(); err != nil {
				t.Errorf("conservation: %v", err)
			}
		})
	}
}

// TestAttributedSitelessUnattributed checks a column-less trace lands
// everything in the unattributed bucket.
func TestAttributedSitelessUnattributed(t *testing.T) {
	tr := randomTrace(3, 2000, 20)
	res, led := RunAttributed(tr, policy.NewLRU(8), nil)
	slot := led.Slot(trace.NoSite)
	if slot.Refs != int64(res.Refs) || slot.Faults != res.Faults {
		t.Errorf("unattributed bucket = %d refs / %d faults, want %d / %d",
			slot.Refs, slot.Faults, res.Refs, res.Faults)
	}
	if err := led.Conservation(); err != nil {
		t.Errorf("conservation: %v", err)
	}
}

// TestAttributedGroundTruthLRU recomputes the per-site fault counts with
// an independent map-based LRU walked in lockstep with a SiteCursor and
// requires an exact match — the attribution pipeline against a second
// implementation, not against itself.
func TestAttributedGroundTruthLRU(t *testing.T) {
	tr := sitedTrace(17, 8000, 60, 6)
	const frames = 8
	_, led := RunAttributed(tr, policy.NewLRU(frames), nil)

	// Independent LRU: map + use-time, linear-scan eviction.
	type rec struct{ last int64 }
	resident := map[mem.Page]*rec{}
	var clock int64
	wantFaults := map[int32]int{}
	cur := tr.SiteCursor()
	for _, e := range tr.Events {
		site := cur.Next()
		if e.Kind != trace.EvRef {
			continue
		}
		clock++
		pg := mem.Page(e.Arg)
		if r, ok := resident[pg]; ok {
			r.last = clock
			continue
		}
		wantFaults[site]++
		if len(resident) >= frames {
			var victim mem.Page
			oldest := int64(1 << 62)
			for p, r := range resident {
				if r.last < oldest {
					oldest, victim = r.last, p
				}
			}
			delete(resident, victim)
		}
		resident[pg] = &rec{last: clock}
	}
	for i := range led.Stats {
		s := &led.Stats[i]
		if s.Faults != wantFaults[s.ID] {
			t.Errorf("site %d: ledger %d faults, ground truth %d", s.ID, s.Faults, wantFaults[s.ID])
		}
	}
}

// TestAttributedDirectiveCounters exercises the directive-effectiveness
// ledger: ALLOCATE/LOCK/UNLOCK execution counts land on their sites, and
// hits under a LOCK cover are credited to the locking site.
func TestAttributedDirectiveCounters(t *testing.T) {
	tr := sitedCDPhaseTrace()
	_, led := RunAttributed(tr, policy.NewCD(policy.SelectLevel(2), 2), nil)
	if err := led.Conservation(); err != nil {
		t.Fatalf("conservation: %v", err)
	}
	var allocs, locks, unlocks int
	var lockedHits int64
	for i := range led.Stats {
		s := &led.Stats[i]
		allocs += s.Allocs
		locks += s.Locks
		unlocks += s.Unlocks
		lockedHits += s.LockedHits
	}
	if allocs != 2 || locks != 1 || unlocks != 1 {
		t.Errorf("directive counts = %d allocs / %d locks / %d unlocks, want 2/1/1", allocs, locks, unlocks)
	}
	// Pages 0 and 1 are locked across the second phase and re-referenced
	// in the third while still locked? They are unlocked before phase 3,
	// so locked hits can only come from phase-2 references — the phase-2
	// loop touches pages 8..11, never 0..1, so no hits are required; just
	// check the counter is attributed to the lock site if present.
	for i := range led.Stats {
		s := &led.Stats[i]
		if s.LockedHits > 0 && s.Locks == 0 {
			t.Errorf("locked hits credited to non-lock site %d (%s)", s.ID, s.Name())
		}
	}
}

// TestAttributedShrinkRefault builds a trace where an ALLOCATE shrink
// evicts a page that is then re-referenced: the refault must be charged
// to the allocation site as a ShrinkFault.
func TestAttributedShrinkRefault(t *testing.T) {
	tr := trace.New("shrink")
	sLoop := tr.AddSite(trace.Site{Nest: "DO 10", Line: 10, Array: "A", Expr: "A(I)"})
	sAlloc := tr.AddSite(trace.Site{Nest: "DO 20", Line: 20, Expr: "ALLOCATE"})
	sLoop2 := tr.AddSite(trace.Site{Nest: "DO 30", Line: 30, Array: "A", Expr: "A(I)"})

	tr.SetSite(sLoop)
	tr.AddAlloc(&directive.Allocate{Arms: []directive.Arm{{PI: 1, X: 8}}})
	for i := 0; i < 8; i++ {
		tr.AddRef(mem.Page(i))
	}
	// Shrink the allocation to 2 pages: evicts 6 resident pages.
	tr.SetSite(sAlloc)
	tr.AddAlloc(&directive.Allocate{Arms: []directive.Arm{{PI: 1, X: 2}}})
	// Re-reference the evicted pages: refaults caused by the early free.
	tr.SetSite(sLoop2)
	for i := 0; i < 6; i++ {
		tr.AddRef(mem.Page(i))
	}

	_, led := RunAttributed(tr, policy.NewCD(policy.SelectLevel(1), 2), nil)
	if err := led.Conservation(); err != nil {
		t.Fatalf("conservation: %v", err)
	}
	st := led.Slot(sAlloc)
	if st.Allocs != 1 {
		t.Errorf("alloc site executed %d allocations, want 1", st.Allocs)
	}
	if st.ShrinkFaults == 0 {
		t.Error("no shrink refaults charged to the allocation site")
	}
	if st.Evictions == 0 {
		t.Error("no evictions charged to the allocation site")
	}
}

// TestAttributedConservationWorkloads is the attribution-conservation
// acceptance test: on every registered workload, per-site PF sums
// exactly equal total PF — under CD, LRU and WS — and the attributed
// Result matches the plain Run.
func TestAttributedConservationWorkloads(t *testing.T) {
	for _, p := range workloads.All() {
		c, err := workloads.Compile(p)
		if err != nil {
			t.Fatalf("%s: compile: %v", p.Name, err)
		}
		if !c.Trace.HasSites() {
			t.Fatalf("%s: compiled trace carries no site column", p.Name)
		}
		pols := []struct {
			name string
			mk   func() policy.Policy
			tr   *trace.Trace
		}{
			{"CD", func() policy.Policy { return policy.NewCD(c.Program.DefaultSet().Selector(), 2) }, c.Trace},
			{"LRU", func() policy.Policy { return policy.NewLRU(c.V()/2 + 1) }, c.Trace.StripDirectives()},
			{"WS", func() policy.Policy { return policy.NewWS(1000) }, c.Trace.StripDirectives()},
		}
		for _, pc := range pols {
			want := Run(pc.tr, pc.mk())
			res, led := RunAttributed(pc.tr, pc.mk(), nil)
			if res != want {
				t.Errorf("%s/%s: attributed result diverged:\n run  %+v\n attr %+v", p.Name, pc.name, want, res)
			}
			if err := led.Conservation(); err != nil {
				t.Errorf("%s/%s: %v", p.Name, pc.name, err)
			}
			var pf int
			for i := range led.Stats {
				pf += led.Stats[i].Faults
			}
			if pf != res.Faults {
				t.Errorf("%s/%s: per-site PF sums to %d, run took %d", p.Name, pc.name, pf, res.Faults)
			}
		}
	}
}

// TestAttributedHotspotIsLoopSite checks that on every workload the
// top-ranked fault site is a real source construct (a named loop nest),
// not the unattributed bucket — `cdmm explain` must name a loop, not
// shrug.
func TestAttributedHotspotIsLoopSite(t *testing.T) {
	for _, p := range workloads.All() {
		c, err := workloads.Compile(p)
		if err != nil {
			t.Fatalf("%s: compile: %v", p.Name, err)
		}
		_, led := RunAttributed(c.Trace, policy.NewCD(c.Program.DefaultSet().Selector(), 2), nil)
		hs := led.Hotspot()
		if hs == nil {
			continue // fault-free run
		}
		if hs.ID == trace.NoSite {
			t.Errorf("%s: hotspot is the unattributed bucket (%d faults)", p.Name, hs.Faults)
		}
	}
}
