package vmsim

import (
	"math"
	"testing"

	"cdmm/internal/directive"
	"cdmm/internal/mem"
	"cdmm/internal/policy"
	"cdmm/internal/trace"
)

// refTrace builds a trace from a raw page string.
func refTrace(pages ...mem.Page) *trace.Trace {
	tr := trace.New("t")
	for _, p := range pages {
		tr.AddRef(p)
	}
	return tr
}

func TestRunMetricsSingleFault(t *testing.T) {
	tr := refTrace(1, 1, 1)
	res := Run(tr, policy.NewLRU(4))
	if res.Faults != 1 {
		t.Fatalf("faults = %d, want 1", res.Faults)
	}
	// Virtual time: first ref 1+2000, then 1, 1 => 2003.
	if res.VirtualTime != 2003 {
		t.Errorf("virtual time = %d, want 2003", res.VirtualTime)
	}
	// A fixed partition is charged whole: ST = 4 * 2003, MEM = 4.
	if res.SpaceTime != 4*2003 {
		t.Errorf("ST = %v, want %v", res.SpaceTime, 4*2003)
	}
	if math.Abs(res.MEM()-4) > 1e-9 {
		t.Errorf("MEM = %v, want 4", res.MEM())
	}
}

func TestRunSpaceTimeGrowth(t *testing.T) {
	// Two pages, two faults, one hit under a fixed 4-page partition.
	tr := refTrace(1, 2, 1)
	res := Run(tr, policy.NewLRU(4))
	wantST := float64(4 * (2001 + 2001 + 1))
	if res.SpaceTime != wantST {
		t.Errorf("ST = %v, want %v", res.SpaceTime, wantST)
	}
	if res.MaxResident != 2 {
		t.Errorf("max resident = %d, want 2", res.MaxResident)
	}
}

func TestRunWSChargedResident(t *testing.T) {
	// WS is a variable-allocation policy: charged its working set.
	tr := refTrace(1, 1, 1)
	res := Run(tr, policy.NewWS(10))
	// One fault (2001) plus two hits, working set size 1 throughout.
	if res.SpaceTime != 2003 {
		t.Errorf("ST = %v, want 2003", res.SpaceTime)
	}
	if math.Abs(res.MEM()-1) > 1e-9 {
		t.Errorf("MEM = %v, want 1", res.MEM())
	}
}

func TestRunCDChargedResident(t *testing.T) {
	// CD's allocation is a demand-assignment ceiling: the charge is the
	// resident set, not the grant.
	tr := trace.New("t")
	d := &directive.Allocate{Arms: []directive.Arm{{PI: 1, X: 5}}}
	tr.AddAlloc(d)
	tr.AddRef(1)
	tr.AddRef(1)
	cd := policy.NewCD(policy.SelectLevel(1), 1)
	res := Run(tr, cd)
	if res.SpaceTime != 2002 {
		t.Errorf("ST = %v, want %v", res.SpaceTime, 2002)
	}
	if cd.Allocation() != 5 {
		t.Errorf("allocation ceiling = %d, want 5", cd.Allocation())
	}
}

func TestRunDirectivesReachCD(t *testing.T) {
	tr := trace.New("t")
	d := &directive.Allocate{Arms: []directive.Arm{{PI: 1, X: 1}}}
	tr.AddAlloc(d)
	tr.AddRef(1)
	tr.AddLock(2, 0, []mem.Page{1})
	tr.AddRef(2) // fills the single allocated frame; 1 rides above, locked
	tr.AddRef(3) // must evict 2 (1 locked)
	tr.AddRef(2) // faults again
	tr.AddUnlock([]mem.Page{1})

	cd := policy.NewCD(policy.SelectLevel(1), 1)
	res := Run(tr, cd)
	if res.Faults != 4 {
		t.Errorf("faults = %d, want 4", res.Faults)
	}
	if cd.Allocation() != 1 {
		t.Errorf("allocation = %d, want 1", cd.Allocation())
	}
}

func TestSweepLRUMonotone(t *testing.T) {
	// Cyclic string: faults should drop sharply at m = n.
	var pages []mem.Page
	for r := 0; r < 10; r++ {
		for i := 1; i <= 6; i++ {
			pages = append(pages, mem.Page(i))
		}
	}
	res := SweepLRU(refTrace(pages...), 8)
	if len(res) != 8 {
		t.Fatalf("results = %d, want 8", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Faults > res[i-1].Faults {
			t.Errorf("LRU faults not monotone: m=%d has %d > m=%d has %d", i+1, res[i].Faults, i, res[i-1].Faults)
		}
	}
	if res[5].Faults != 6 { // m=6 holds the whole loop
		t.Errorf("faults at m=6: %d, want 6", res[5].Faults)
	}
	if res[4].Faults != 60 { // m=5 thrashes: every ref faults
		t.Errorf("faults at m=5: %d, want 60", res[4].Faults)
	}
}

func TestSweepWS(t *testing.T) {
	var pages []mem.Page
	for r := 0; r < 5; r++ {
		for i := 1; i <= 4; i++ {
			pages = append(pages, mem.Page(i))
		}
	}
	tr := refTrace(pages...)
	res := SweepWS(tr, []int{1, 4, 16})
	if len(res) != 3 {
		t.Fatalf("results = %d", len(res))
	}
	// Larger windows: fewer or equal faults, larger or equal MEM.
	for i := 1; i < len(res); i++ {
		if res[i].Faults > res[i-1].Faults {
			t.Errorf("WS faults not monotone in tau")
		}
		if res[i].MEM() < res[i-1].MEM()-1e-9 {
			t.Errorf("WS MEM not monotone in tau")
		}
	}
}

func TestDefaultTaus(t *testing.T) {
	taus := DefaultTaus(1000)
	if taus[0] != 1 {
		t.Errorf("first tau = %d, want 1", taus[0])
	}
	for i := 1; i < len(taus); i++ {
		if taus[i] <= taus[i-1] {
			t.Fatalf("taus not strictly increasing at %d: %v", i, taus[i-3:i+1])
		}
		if taus[i] > 1000 {
			t.Fatalf("tau %d exceeds reference length", taus[i])
		}
	}
	if len(taus) < 20 {
		t.Errorf("ladder too sparse: %d entries", len(taus))
	}
}

func TestFaultRate(t *testing.T) {
	tr := refTrace(1, 2, 3, 1, 2, 3)
	res := Run(tr, policy.NewLRU(10))
	if got := res.FaultRate(); math.Abs(got-500) > 1e-9 {
		t.Errorf("fault rate = %v, want 500 per thousand", got)
	}
}

func TestRunIsRepeatable(t *testing.T) {
	tr := refTrace(1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5)
	p := policy.NewLRU(3)
	r1 := Run(tr, p)
	r2 := Run(tr, p) // Run resets the policy
	if r1.Faults != r2.Faults || r1.SpaceTime != r2.SpaceTime {
		t.Errorf("results differ across runs: %+v vs %+v", r1, r2)
	}
}
