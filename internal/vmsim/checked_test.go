package vmsim

import (
	"errors"
	"strings"
	"testing"

	"cdmm/internal/directive"
	"cdmm/internal/mem"
	"cdmm/internal/obs"
	"cdmm/internal/policy"
	"cdmm/internal/trace"
)

// cdTrace builds a small but structurally complete CD trace: directives,
// locks, and a reference pattern with reuse.
func cdTrace() *trace.Trace {
	tr := trace.New("checked")
	tr.AddAlloc(&directive.Allocate{Arms: []directive.Arm{{PI: 2, X: 6}, {PI: 1, X: 3}}})
	for i := 0; i < 30; i++ {
		tr.AddRef(mem.Page(i % 6))
	}
	tr.AddLock(1, 0, []mem.Page{0, 1})
	tr.AddAlloc(&directive.Allocate{Arms: []directive.Arm{{PI: 1, X: 2}}})
	for i := 0; i < 30; i++ {
		tr.AddRef(mem.Page(i % 3))
	}
	tr.AddUnlock([]mem.Page{0, 1})
	for i := 0; i < 10; i++ {
		tr.AddRef(mem.Page(i % 6))
	}
	return tr
}

// TestRunCheckedMatchesRun verifies checking is free of observable
// effect: same Result as the unchecked run, and no error, for both a
// fixed-partition and a CD policy.
func TestRunCheckedMatchesRun(t *testing.T) {
	tr := cdTrace()
	pols := map[string]func() policy.Policy{
		"LRU": func() policy.Policy { return policy.NewLRU(4) },
		"WS":  func() policy.Policy { return policy.NewWS(50) },
		"CD":  func() policy.Policy { return policy.NewCD(policy.SelectLevel(2), 2) },
	}
	for name, mk := range pols {
		t.Run(name, func(t *testing.T) {
			want := Run(tr, mk())
			got, err := RunChecked(tr, mk(), nil)
			if err != nil {
				t.Fatalf("RunChecked error on clean run: %v", err)
			}
			if got.Faults != want.Faults || got.Refs != want.Refs ||
				got.SpaceTime != want.SpaceTime || got.MemSum != want.MemSum {
				t.Errorf("checked result %+v differs from unchecked %+v", got, want)
			}
		})
	}
}

// brokenPolicy wraps a real policy but lies about its resident set after
// enough references — the kind of internal inconsistency the checker
// exists to catch.
type brokenPolicy struct {
	policy.Policy
	refs int
}

func (b *brokenPolicy) Ref(pg mem.Page) bool {
	b.refs++
	return b.Policy.Ref(pg)
}

func (b *brokenPolicy) Resident() int {
	if b.refs > 20 {
		return -1
	}
	return b.Policy.Resident()
}

func (b *brokenPolicy) Name() string { return "broken" }

// TestRunCheckedCatchesBadResident verifies the resident-bounds
// invariant trips with a structured error naming the policy and the
// reference index.
func TestRunCheckedCatchesBadResident(t *testing.T) {
	tr := cdTrace()
	_, err := RunChecked(tr, &brokenPolicy{Policy: policy.NewLRU(4)}, nil)
	var ie *InvariantError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v, want *InvariantError", err)
	}
	if ie.Invariant != "resident-bounds" {
		t.Errorf("invariant = %q, want resident-bounds", ie.Invariant)
	}
	if ie.Policy != "broken" || ie.I != 21 {
		t.Errorf("error context = policy %q after %d refs, want broken/21", ie.Policy, ie.I)
	}
	if !strings.Contains(ie.Error(), "negative") {
		t.Errorf("error text %q does not describe the violation", ie.Error())
	}
}

// TestRunCheckedDegradedStillConsistent runs a trace whose directives
// violate the contract under a checking CD: the run must complete, the
// policy must degrade (not crash), and the checker must find no
// inconsistency in the degraded execution.
func TestRunCheckedDegradedStillConsistent(t *testing.T) {
	tr := trace.New("bad")
	// Non-decreasing priority chain: a contract violation.
	tr.AddAlloc(&directive.Allocate{Arms: []directive.Arm{{PI: 1, X: 2}, {PI: 5, X: 8}}})
	for i := 0; i < 40; i++ {
		tr.AddRef(mem.Page(i % 5))
	}
	cd := policy.NewCD(policy.SelectLevel(2), 2)
	cd.Check = &policy.CheckConfig{MaxPage: 8}
	res, err := RunChecked(tr, cd, nil)
	if err != nil {
		t.Fatalf("degraded run failed the checker: %v", err)
	}
	if !res.Degraded {
		t.Error("Result does not record the degradation")
	}
	if !strings.Contains(res.DegradedReason, "does not decrease") {
		t.Errorf("degradation reason %q", res.DegradedReason)
	}
	if res.Refs != 40 {
		t.Errorf("refs = %d, want 40 (run must complete)", res.Refs)
	}
}

// TestRunCheckedEmitsDegradeEvent verifies the observer sees the
// degradation as a first-class event with the violation text.
func TestRunCheckedEmitsDegradeEvent(t *testing.T) {
	tr := trace.New("bad")
	tr.AddAlloc(&directive.Allocate{Arms: []directive.Arm{{PI: 1, X: 999}}})
	for i := 0; i < 10; i++ {
		tr.AddRef(mem.Page(i % 3))
	}
	cd := policy.NewCD(policy.SelectLevel(2), 2)
	cd.Check = &policy.CheckConfig{MaxPage: 8}
	col := &obs.Collector{}
	o := &obs.Observer{Tracer: col}
	if _, err := RunChecked(tr, cd, o); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range col.Events {
		if e.Kind == obs.KindDegrade {
			found = true
			if !strings.Contains(e.Why, "addresses only") {
				t.Errorf("degrade event Why = %q", e.Why)
			}
		}
	}
	if !found {
		t.Error("no degrade event reached the observer")
	}
}
