// Multiprogramming driver: the paper designs CD for multiprogramming (the
// priority-index machinery and the swapping mechanism of §4 exist for it)
// but evaluates only uniprogramming, noting "the performance of CD in a
// multiprogramming environment is still to be evaluated". This driver is
// that evaluation: several jobs share a fixed frame pool, page-fault
// service overlaps with the execution of other jobs, and the memory
// manager deactivates (swaps out) jobs under overcommitment — CD jobs by
// their own swap signal and lowest priority, WS jobs by the working-set
// principle (suspend when the working sets no longer fit).
package vmsim

import (
	"fmt"

	"cdmm/internal/obs"
	"cdmm/internal/policy"
	"cdmm/internal/trace"
)

// Job is one program in a multiprogramming mix. Trace names the job's
// reference stream; Source, when non-nil, overrides it so a job can
// replay a streamed (e.g. on-disk CDT3) trace instead of an in-memory
// one.
type Job struct {
	Name   string
	Trace  *trace.Trace
	Source trace.Source
	Policy policy.Policy

	// Stream position: the job consumes its cursor block by block,
	// pausing inside a block on faults and quantum expiry. Swap-outs
	// reset the policy, never the stream position.
	cur     trace.Cursor
	tables  *trace.SideTables
	blk     trace.Block
	bi      int  // next index into blk.Pages
	dirPend bool // blk's closing directive not yet applied
	eof     bool

	readyAt   int64 // global tick when the job can run again
	swappedIn bool
	done      bool
	// seenSignals tracks how many CD swap signals were already acted on.
	seenSignals int

	// Accumulated metrics.
	Faults   int
	Refs     int
	MemSum   float64
	Swaps    int // times this job was swapped out
	Finished int64
}

// MultiConfig configures the multiprogramming run.
type MultiConfig struct {
	// Frames is the size of the shared page-frame pool.
	Frames int
	// Quantum is the maximum references a job executes before the
	// round-robin scheduler rotates. Defaults to 500.
	Quantum int
	// SwapInDelay is the extra delay (in ticks) a swapped-out job pays
	// before resuming, on top of refaulting its pages. Defaults to
	// FaultService.
	SwapInDelay int64
	// Obs, when non-nil, receives job-tagged fault/swap/jobdone events
	// (T is the global clock) and mix-level metrics. Nil falls back to
	// DefaultObserver.
	Obs *obs.Observer
}

// MultiResult summarizes a multiprogramming run.
type MultiResult struct {
	Jobs      []*Job
	Makespan  int64 // global tick when the last job finished
	IdleTicks int64 // ticks with no job ready to run
	Swaps     int   // total swap-outs
}

// String renders a summary.
func (r *MultiResult) String() string {
	s := fmt.Sprintf("makespan=%d idle=%d swaps=%d", r.Makespan, r.IdleTicks, r.Swaps)
	for _, j := range r.Jobs {
		s += fmt.Sprintf("\n  %-10s PF=%-6d MEM=%6.2f finished@%d swaps=%d",
			j.Name, j.Faults, j.MEM(), j.Finished, j.Swaps)
	}
	return s
}

// MEM returns the job's average resident set over its executed references.
func (j *Job) MEM() float64 {
	if j.Refs == 0 {
		return 0
	}
	return j.MemSum / float64(j.Refs)
}

// RunMulti executes the job mix to completion over a shared frame pool.
// Each reference costs one global tick; a faulting job blocks for
// FaultService ticks while other jobs keep running (fault service
// overlaps). When the pool is overcommitted the driver swaps out the job
// holding the most frames (other than the one being served); CD jobs that
// raise their own swap signal (ungrantable PI = 1 request) are swapped out
// directly, as the Figure 6 flowchart prescribes.
func RunMulti(jobs []*Job, cfg MultiConfig) *MultiResult {
	if cfg.Quantum <= 0 {
		cfg.Quantum = 500
	}
	if cfg.SwapInDelay <= 0 {
		cfg.SwapInDelay = policy.FaultService
	}
	if cfg.Obs == nil {
		cfg.Obs = DefaultObserver
	}
	if !cfg.Obs.Enabled() {
		cfg.Obs = nil
	}
	for _, j := range jobs {
		j.Policy.Reset()
		src := j.Source
		if src == nil {
			src = j.Trace
		}
		j.cur = src.Blocks(trace.CursorOpts{})
		j.tables = src.Tables()
		j.blk = trace.Block{}
		j.bi = 0
		j.dirPend = false
		j.eof = false
		j.readyAt = 0
		j.swappedIn = true
		j.done = false
		if cd := policy.AsCD(j.Policy); cd != nil {
			cd.Avail = func() int { return cfg.Frames - totalResident(jobs) }
		}
	}
	defer func() {
		for _, j := range jobs {
			j.cur.Close()
		}
	}()

	res := &MultiResult{Jobs: jobs}
	var clock int64
	next := 0 // round-robin cursor

	for {
		j := pickReady(jobs, &next, clock)
		if j == nil {
			// Nobody ready: advance the clock to the earliest wake-up.
			t, any := earliestReady(jobs)
			if !any {
				break // all done
			}
			if t > clock {
				res.IdleTicks += t - clock
				clock = t
			}
			continue
		}
		clock = runQuantum(j, jobs, cfg, clock, res)
	}

	for _, j := range jobs {
		if j.Finished > res.Makespan {
			res.Makespan = j.Finished
		}
	}
	if cfg.Obs != nil {
		faults := 0
		for _, j := range jobs {
			faults += j.Faults
		}
		if reg := cfg.Obs.Metrics; reg != nil {
			reg.Counter("multi_faults").Add(int64(faults))
			reg.Counter("multi_swaps").Add(int64(res.Swaps))
			reg.Gauge("makespan").Set(float64(res.Makespan))
			reg.Gauge("idle_ticks").Set(float64(res.IdleTicks))
		}
		cfg.Obs.Emit(obs.Event{Kind: obs.KindEnd, T: res.Makespan, Faults: faults})
	}
	return res
}

// runQuantum executes up to cfg.Quantum references of job j, returning the
// updated clock. The job yields early on a fault (service overlaps with
// other jobs) or at trace end.
func runQuantum(j *Job, jobs []*Job, cfg MultiConfig, clock int64, res *MultiResult) int64 {
	if !j.swappedIn {
		// Swap-in: the delay was charged at swap-out time; the pages
		// refault on demand from here.
		j.swappedIn = true
	}
	executed := 0
	for {
		// Refill: advance the cursor when the current block is consumed.
		// Refilling before the quantum check means a quantum that expires
		// exactly at stream end still observes the end immediately.
		for j.bi >= len(j.blk.Pages) && !j.dirPend && !j.eof {
			if !j.cur.Next(&j.blk) {
				j.eof = true
				break
			}
			j.bi = 0
			j.dirPend = j.blk.HasDir
		}
		if j.eof || executed >= cfg.Quantum {
			break
		}
		if j.bi < len(j.blk.Pages) {
			pg := j.blk.Pages[j.bi]
			j.bi++
			// Admission control: if the pool is overcommitted, swap out
			// the largest other job before serving this reference.
			if totalResident(jobs) >= cfg.Frames {
				swapOutVictim(jobs, j, clock, cfg, res)
			}
			fault := j.Policy.Ref(pg)
			executed++
			j.Refs++
			j.MemSum += float64(j.Policy.Resident())
			clock++
			if fault {
				j.Faults++
				j.readyAt = clock + policy.FaultService
				if cfg.Obs != nil {
					cfg.Obs.Emit(obs.Event{Kind: obs.KindFault, T: clock, Job: j.Name,
						Page: int(pg), Res: j.Policy.Resident()})
				}
				return clock // yield: fault service overlaps
			}
			continue
		}
		// The block's closing directive. Directives cost no quantum.
		j.dirPend = false
		switch e := j.blk.Dir; e.Kind {
		case trace.EvAlloc:
			j.Policy.Alloc(j.tables.Alloc(e))
			if cd := policy.AsCD(j.Policy); cd != nil && cd.SwapSignals > j.seenSignals {
				j.seenSignals = cd.SwapSignals
				// The job's own PI = 1 request was ungrantable: swap out
				// this job (the §4 swapping mechanism).
				swapOut(j, clock, cfg, res, "signal")
				return clock
			}
		case trace.EvLock:
			j.Policy.Lock(j.tables.Lock(e))
		case trace.EvUnlock:
			j.Policy.Unlock(j.tables.Unlock(e))
		}
	}
	if j.eof && !j.done {
		j.done = true
		j.Finished = clock
		j.Policy.Reset() // release frames
		if cfg.Obs != nil {
			cfg.Obs.Emit(obs.Event{Kind: obs.KindJobDone, T: clock, Job: j.Name,
				Refs: j.Refs, Faults: j.Faults})
		}
	}
	return clock
}

// swapOutVictim deactivates the job (other than cur) holding the most
// frames. Ties are broken explicitly so the victim sequence is a stable
// function of the plan: fewest prior swap-outs first (rotating the
// burden instead of repeatedly deactivating one job), then declaration
// order. The strict better() comparison means equal candidates never
// displace an earlier choice.
func swapOutVictim(jobs []*Job, cur *Job, clock int64, cfg MultiConfig, res *MultiResult) {
	better := func(a, b *Job) bool {
		if ra, rb := a.Policy.Resident(), b.Policy.Resident(); ra != rb {
			return ra > rb
		}
		return a.Swaps < b.Swaps
	}
	var victim *Job
	for _, j := range jobs {
		if j == cur || j.done || !j.swappedIn {
			continue
		}
		if victim == nil || better(j, victim) {
			victim = j
		}
	}
	if victim != nil && victim.Policy.Resident() > 0 {
		swapOut(victim, clock, cfg, res, "victim")
	}
}

// swapOut releases a job's frames and delays it. why tags the emitted
// swap event: "signal" (the job's own PI = 1 swap signal) or "victim"
// (deactivated under pool overcommitment).
func swapOut(j *Job, clock int64, cfg MultiConfig, res *MultiResult, why string) {
	if cfg.Obs != nil {
		cfg.Obs.Emit(obs.Event{Kind: obs.KindSwap, T: clock, Job: j.Name,
			Res: j.Policy.Resident(), Why: why})
	}
	if cd := policy.AsCD(j.Policy); cd != nil {
		// Preserve the CD swap-signal count across the reset so repeated
		// signals keep triggering swaps.
		signals := cd.SwapSignals
		avail := cd.Avail
		cd.Reset()
		cd.SwapSignals = signals
		cd.Avail = avail
	} else {
		j.Policy.Reset()
	}
	j.swappedIn = false
	j.Swaps++
	res.Swaps++
	if t := clock + cfg.SwapInDelay; t > j.readyAt {
		j.readyAt = t
	}
}

func totalResident(jobs []*Job) int {
	n := 0
	for _, j := range jobs {
		if !j.done {
			n += j.Policy.Resident()
		}
	}
	return n
}

// pickReady returns the next ready job in round-robin order, or nil.
func pickReady(jobs []*Job, next *int, clock int64) *Job {
	for i := 0; i < len(jobs); i++ {
		j := jobs[(*next+i)%len(jobs)]
		if !j.done && j.readyAt <= clock {
			*next = (*next + i + 1) % len(jobs)
			return j
		}
	}
	return nil
}

// earliestReady returns the earliest wake-up among unfinished jobs.
func earliestReady(jobs []*Job) (int64, bool) {
	var t int64
	any := false
	for _, j := range jobs {
		if j.done {
			continue
		}
		if !any || j.readyAt < t {
			t = j.readyAt
			any = true
		}
	}
	return t, any
}
