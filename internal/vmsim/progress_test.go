package vmsim

import (
	"testing"

	"cdmm/internal/obs"
	"cdmm/internal/policy"
	"cdmm/internal/trace"
	"cdmm/internal/workloads"
)

// progressTrace compiles a real workload trace big enough to cross
// several progress chunks.
func progressTrace(t *testing.T) *trace.Trace {
	t.Helper()
	w, err := workloads.Get("CONDUCT")
	if err != nil {
		t.Fatal(err)
	}
	c, err := workloads.Compile(w)
	if err != nil {
		t.Fatal(err)
	}
	return c.Trace
}

type progressRecord struct {
	done, total int
	vt          int64
}

func TestFastPathProgressCallbacks(t *testing.T) {
	tr := progressTrace(t).RefsOnly()
	var calls []progressRecord
	o := &obs.Observer{Progress: func(done, total int, vt int64) {
		calls = append(calls, progressRecord{done, total, vt})
	}}
	res := RunObserved(tr, policy.NewLRU(32), o)

	plain := Run(tr, policy.NewLRU(32))
	if res != plain {
		t.Errorf("progress-observed result differs from plain run:\n got %+v\nwant %+v", res, plain)
	}
	if len(calls) < 2 {
		t.Fatalf("got %d progress calls over %d events, want several", len(calls), len(tr.Events))
	}
	for i, c := range calls {
		if c.total != len(tr.Events) {
			t.Fatalf("call %d: total = %d, want %d", i, c.total, len(tr.Events))
		}
		if i > 0 {
			prev := calls[i-1]
			if c.done < prev.done || c.vt < prev.vt {
				t.Fatalf("progress went backwards: %+v after %+v", c, prev)
			}
		}
	}
	last := calls[len(calls)-1]
	if last.done != len(tr.Events) {
		t.Errorf("final done = %d, want %d (the full trace)", last.done, len(tr.Events))
	}
	if last.vt != res.VirtualTime {
		t.Errorf("final vt = %d, want result virtual time %d", last.vt, res.VirtualTime)
	}
}

func TestInstrumentedProgressCallbacks(t *testing.T) {
	tr := progressTrace(t).RefsOnly()
	var calls []progressRecord
	o := &obs.Observer{
		Tracer: &obs.Collector{},
		Progress: func(done, total int, vt int64) {
			calls = append(calls, progressRecord{done, total, vt})
		},
	}
	res := RunObserved(tr, policy.NewLRU(32), o)
	plain := Run(tr, policy.NewLRU(32))
	if res != plain {
		t.Errorf("instrumented result drifted: got %+v want %+v", res, plain)
	}
	if len(calls) < 2 {
		t.Fatalf("got %d progress calls, want several", len(calls))
	}
	last := calls[len(calls)-1]
	if last.done != tr.Refs || last.total != tr.Refs {
		t.Errorf("final call = %d/%d, want %d/%d", last.done, last.total, tr.Refs, tr.Refs)
	}
}

// closedGate is a Gate that never opens: the telemetry server's no-client
// stance. A full observer behind it must still take the fast path (and
// still deliver progress).
type closedGate struct{}

func (closedGate) Open() bool { return false }

func TestClosedGateTakesFastPath(t *testing.T) {
	tr := progressTrace(t).RefsOnly()
	col := &obs.Collector{}
	calls := 0
	o := &obs.Observer{
		Tracer:   col,
		Metrics:  obs.NewRegistry(),
		Gate:     closedGate{},
		Progress: func(done, total int, vt int64) { calls++ },
	}
	res := RunObserved(tr, policy.NewLRU(32), o)
	if len(col.Events) != 0 {
		t.Errorf("closed gate leaked %d events into the tracer", len(col.Events))
	}
	if calls == 0 {
		t.Error("progress must keep flowing behind a closed gate")
	}
	if plain := Run(tr, policy.NewLRU(32)); res != plain {
		t.Errorf("gated result drifted: got %+v want %+v", res, plain)
	}
}

func TestProgressOnEmptyAndTinyTraces(t *testing.T) {
	// A trace smaller than one chunk must still get its terminal call.
	w, err := workloads.Get("MAIN")
	if err != nil {
		t.Fatal(err)
	}
	c, err := workloads.Compile(w)
	if err != nil {
		t.Fatal(err)
	}
	tr := c.Trace.RefsOnly()
	var last progressRecord
	calls := 0
	o := &obs.Observer{Progress: func(done, total int, vt int64) {
		calls++
		last = progressRecord{done, total, vt}
	}}
	RunObserved(tr, policy.NewLRU(8), o)
	if calls == 0 || last.done != last.total {
		t.Errorf("tiny trace: calls=%d last=%+v, want a terminal done==total call", calls, last)
	}
}
