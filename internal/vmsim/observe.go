// Observability integration: RunObserved drives a policy over a trace
// while emitting structured events (fault/res/alloc/phase/lock/unlock/
// swap) with virtual-time stamps into an obs.Tracer and updating an
// obs.Registry. The event stream is exact: obs.Replay over it
// reconstructs the run's fault count and memory sum bit-for-bit (see
// TestEventStreamMatchesResult), so a saved JSONL file audits the
// printed Result.
package vmsim

import (
	"cdmm/internal/mem"
	"cdmm/internal/obs"
	"cdmm/internal/policy"
	"cdmm/internal/trace"
)

// DefaultObserver, when non-nil, observes every simulation that was not
// handed an explicit observer — Run, the sweeps, and everything layered
// on top of them (experiments, tables, reports). The CLI sets it for the
// duration of a command when -events/-metrics are given; it is not safe
// to change concurrently with running simulations.
var DefaultObserver *obs.Observer

// RunObserved is Run with an explicit observer. A nil o falls back to
// DefaultObserver; if that is nil too (or observes nothing) the bare
// un-instrumented loop runs, so observability-off costs nothing. An
// observer whose Gate is closed (or that carries only a Progress
// callback) takes the chunked fast path: full hot-path speed with
// periodic progress delivery — the disabled-path pattern the live
// telemetry server relies on when no client is connected.
func RunObserved(tr *trace.Trace, pol policy.Policy, o *obs.Observer) Result {
	res, _ := RunSource(tr, pol, o) // in-memory cursors cannot fail
	return res
}

// runInstrumented is the observed simulation loop. It accumulates the
// exact same Result as the block-stepped fast path (same fault decisions,
// same space-time charging) while streaming events and metrics. Every
// reference takes the per-event Policy.Ref path here — instrumentation
// needs per-reference visibility — which doubles as the differential
// oracle the block-stepping tests compare against.
func runInstrumented(src trace.Source, pol policy.Policy, o *obs.Observer) (Result, error) {
	pol.Reset()
	meta := src.Meta()
	hintPages(meta, pol)
	tb := src.Tables()
	res := Result{Policy: pol.Name(), Refs: meta.Refs}
	charger, _ := pol.(policy.Charger) // hoisted from policy.Charge

	var (
		cRefs, cFaults, cSwapSig, cLockRel *obs.Counter
		hInter, hRes, hLock                *obs.Histogram
	)
	if reg := o.Metrics; reg != nil {
		cRefs = reg.Counter("refs")
		cFaults = reg.Counter("faults")
		cSwapSig = reg.Counter("swap_signals")
		cLockRel = reg.Counter("lock_releases")
		hInter = reg.Histogram("fault_interarrival_vtime", obs.ExpBounds(1, 4, 12))
		hRes = reg.Histogram("resident_pages", obs.LinearBounds(2, 2, 16))
		hLock = reg.Histogram("lock_hold_vtime", obs.ExpBounds(1, 4, 12))
	}

	// lockAt tracks when each page was locked (directive-level, virtual
	// time) to measure lock-hold durations.
	lockAt := map[mem.Page]int64{}
	closeHold := func(pg mem.Page) {
		if t0, ok := lockAt[pg]; ok {
			if hLock != nil {
				hLock.Observe(float64(res.VirtualTime - t0))
			}
			delete(lockAt, pg)
		}
	}

	// CD hook points stamp policy-internal transitions with the exact
	// virtual time of the directive that caused them.
	if cd := policy.AsCD(pol); cd != nil {
		saved := cd.Hooks
		cd.Hooks = &policy.CDHooks{
			AllocChange: func(prev, next int) {
				o.Emit(obs.Event{Kind: obs.KindPhase, T: res.VirtualTime, Prev: prev, Alloc: next})
			},
			SwapSignal: func() {
				if cSwapSig != nil {
					cSwapSig.Inc()
				}
				o.Emit(obs.Event{Kind: obs.KindSwap, T: res.VirtualTime, Why: "signal"})
			},
			LockRelease: func(pg mem.Page) {
				if cLockRel != nil {
					cLockRel.Inc()
				}
				o.Emit(obs.Event{Kind: obs.KindLockRel, T: res.VirtualTime, Page: int(pg)})
				closeHold(pg)
			},
			Degrade: func(reason string) {
				if o.Metrics != nil {
					o.Metrics.Counter("degradations").Inc()
				}
				o.Emit(obs.Event{Kind: obs.KindDegrade, T: res.VirtualTime, Why: reason})
			},
		}
		defer func() { cd.Hooks = saved }()
	}

	o.Emit(obs.Event{Kind: obs.KindRun, Label: res.Policy, Refs: meta.Refs})

	// The instrumented loop is already paying per-reference work, so
	// progress rides on a cheap counter check instead of a capped block
	// size; done/total are in references here.
	prog := obs.ProgressOf(o)

	cur := src.Blocks(trace.CursorOpts{})
	defer cur.Close()

	var lastFaultVT int64
	prevCharge := -1
	refIdx := 0
	var b trace.Block
	for cur.Next(&b) {
		for _, pg := range b.Pages {
			fault := pol.Ref(pg)
			refIdx++
			if prog != nil && refIdx%progressChunk == 0 {
				prog(refIdx, meta.Refs, res.VirtualTime)
			}
			dt := int64(1)
			if fault {
				res.Faults++
				dt += policy.FaultService
			}
			var m int
			if charger != nil {
				m = charger.Charged()
			} else {
				m = pol.Resident()
			}
			res.VirtualTime += dt
			res.SpaceTime += float64(m) * float64(dt)
			res.MemSum += float64(m)
			if r := pol.Resident(); r > res.MaxResident {
				res.MaxResident = r
			}
			if cRefs != nil {
				cRefs.Inc()
				hRes.Observe(float64(m))
			}
			if fault {
				if cFaults != nil {
					cFaults.Inc()
					hInter.Observe(float64(res.VirtualTime - lastFaultVT))
				}
				o.Emit(obs.Event{Kind: obs.KindFault, T: res.VirtualTime, I: refIdx, Page: int(pg), Res: m})
				lastFaultVT = res.VirtualTime
			}
			if m != prevCharge {
				o.Emit(obs.Event{Kind: obs.KindRes, T: res.VirtualTime, I: refIdx, Res: m})
				prevCharge = m
			}
		}
		if !b.HasDir {
			continue
		}
		switch e := b.Dir; e.Kind {
		case trace.EvAlloc:
			d := tb.Alloc(e)
			o.Emit(obs.Event{Kind: obs.KindAlloc, T: res.VirtualTime, Label: d.Label})
			pol.Alloc(d)
		case trace.EvLock:
			ls := tb.Lock(e)
			o.Emit(obs.Event{Kind: obs.KindLock, T: res.VirtualTime, PJ: ls.PJ, Site: ls.Site, Pages: len(ls.Pages)})
			for _, pg := range ls.Pages {
				if _, ok := lockAt[pg]; !ok {
					lockAt[pg] = res.VirtualTime
				}
			}
			pol.Lock(ls)
		case trace.EvUnlock:
			pages := tb.Unlock(e)
			o.Emit(obs.Event{Kind: obs.KindUnlock, T: res.VirtualTime, Pages: len(pages)})
			for _, pg := range pages {
				closeHold(pg)
			}
			pol.Unlock(pages)
		}
	}
	if cd := policy.AsCD(pol); cd != nil {
		res.SwapSignals = cd.SwapSignals
		res.LockReleases = cd.LockReleases
		res.Degraded = cd.Degraded()
		res.DegradedReason = cd.DegradedReason()
	}
	if reg := o.Metrics; reg != nil {
		reg.Gauge("max_resident").Set(float64(res.MaxResident))
		reg.Gauge("virtual_time").Set(float64(res.VirtualTime))
		reg.Gauge("mem_avg").Set(res.MEM())
	}
	if prog != nil {
		prog(refIdx, meta.Refs, res.VirtualTime)
	}
	o.Emit(obs.Event{Kind: obs.KindEnd, T: res.VirtualTime, Refs: res.Refs, Faults: res.Faults, Mem: res.MEM()})
	return res, cur.Err()
}

// SweepLRUObserved is SweepLRU emitting one summary event and metric
// point per allocation into the observer (per-reference events would dwarf
// the trace itself across V runs, so sweep points run un-instrumented).
func SweepLRUObserved(tr *trace.Trace, maxFrames int, o *obs.Observer) []Result {
	if o == nil {
		o = DefaultObserver
	}
	refs := tr.RefsOnly()
	out := make([]Result, maxFrames)
	for m := 1; m <= maxFrames; m++ {
		out[m-1] = runFast(refs, policy.NewLRU(m))
		emitSweepPoint(o, out[m-1])
	}
	return out
}

// SweepWSObserved is SweepWS emitting one summary event and metric point
// per window size into the observer.
func SweepWSObserved(tr *trace.Trace, taus []int, o *obs.Observer) []Result {
	if o == nil {
		o = DefaultObserver
	}
	refs := tr.RefsOnly()
	out := make([]Result, len(taus))
	for i, tau := range taus {
		out[i] = runFast(refs, policy.NewWS(tau))
		emitSweepPoint(o, out[i])
	}
	return out
}

func emitSweepPoint(o *obs.Observer, r Result) {
	if !o.Enabled() {
		return
	}
	o.Emit(obs.Event{Kind: obs.KindSweep, Label: r.Policy, Refs: r.Refs, Faults: r.Faults, Mem: r.MEM(), ST: r.ST()})
	if o.Metrics != nil {
		o.Metrics.Counter("sweep_points").Inc()
		o.Metrics.Histogram("sweep_st", obs.ExpBounds(1e3, 8, 12)).Observe(r.ST())
	}
}
