package vmsim

import (
	"sort"

	"cdmm/internal/obs"
	"cdmm/internal/policy"
	"cdmm/internal/trace"
)

// WSSweep answers working-set questions for every window size τ from two
// single-pass histograms, without replaying the trace per τ:
//
//   - Faults(τ): a reference faults iff the backward inter-reference
//     interval of its page exceeds τ (first references always fault), so
//     PF(τ) is a suffix count of the interval histogram.
//   - MemSum(τ): a reference at time u with forward re-reference distance
//     d (to the next reference of the same page, or to the end of the
//     trace) keeps its page in W(t,τ) for exactly min(τ, d) time steps, so
//     Σ_t |W(t,τ)| = Σ_u min(τ, d_u), a prefix-sum over the forward
//     distance histogram.
//
// Both identities are exact and are cross-validated against the brute
// replay in the tests. The space-time cost additionally depends on the
// working-set size at fault instants, which does not reduce to a
// histogram; ST is obtained by a brute replay at the (few) τ values the
// experiments actually report.
type WSSweep struct {
	Refs int
	tr   *trace.Trace

	// interval suffix counts: faultsGE[k] = #refs with interval >= k.
	faultsGE []int
	// forward-distance histogram prefix aggregates.
	fwdSorted []int
	fwdPrefix []float64 // prefix sums of fwdSorted
}

// NewWSSweep analyzes the trace's reference string.
func NewWSSweep(tr *trace.Trace) *WSSweep {
	uni := tr.Universe()
	refs := uni.IDs
	n := len(refs)
	s := &WSSweep{Refs: n, tr: tr}

	// Pages are addressed by their dense universe id, so the per-page
	// last/next bookkeeping is array indexing instead of hashing.
	last := make([]int, uni.NumPages) // id -> 1-based time of latest ref; 0 = unseen
	fwd := make([]int, n)
	nextOfSame := make([]int, uni.NumPages)

	s.faultsGE = make([]int, n+3)
	for i, id := range refs {
		t := i + 1
		if prev := last[id]; prev != 0 {
			s.faultsGE[t-prev]++ // backward interval; always <= n
		} else {
			s.faultsGE[n+1]++ // first ref
		}
		last[id] = t
	}
	for i := n - 1; i >= 0; i-- {
		t := i + 1
		if nxt := nextOfSame[refs[i]]; nxt != 0 {
			fwd[i] = nxt - t
		} else {
			fwd[i] = n - t + 1
		}
		nextOfSame[refs[i]] = t
	}

	for k := n + 1; k >= 1; k-- {
		s.faultsGE[k] += s.faultsGE[k+1]
	}

	sort.Ints(fwd)
	s.fwdSorted = fwd
	s.fwdPrefix = make([]float64, n+1)
	for i, d := range fwd {
		s.fwdPrefix[i+1] = s.fwdPrefix[i] + float64(d)
	}
	return s
}

// Faults returns PF under window size tau.
func (s *WSSweep) Faults(tau int) int {
	if tau < 1 {
		tau = 1
	}
	k := tau + 1
	if k > s.Refs+1 {
		k = s.Refs + 1
	}
	return s.faultsGE[k]
}

// MemSum returns Σ_t |W(t,τ)|.
func (s *WSSweep) MemSum(tau int) float64 {
	if tau < 1 {
		tau = 1
	}
	// Σ min(τ, d) = Σ_{d<=τ} d + τ·#{d>τ}.
	i := sort.SearchInts(s.fwdSorted, tau+1)
	return s.fwdPrefix[i] + float64(tau)*float64(len(s.fwdSorted)-i)
}

// MEM returns the average working-set size under window size tau.
func (s *WSSweep) MEM(tau int) float64 {
	if s.Refs == 0 {
		return 0
	}
	return s.MemSum(tau) / float64(s.Refs)
}

// Run replays the trace under WS(τ) for the exact result including ST.
func (s *WSSweep) Run(tau int) Result {
	return s.RunObserved(tau, nil)
}

// RunObserved is Run with an explicit observer, so concurrent callers
// (the experiment engine) can route events into per-run buffers instead
// of racing on the process-wide default observer. Unobserved replays run
// over the memoized directive-free view (WS ignores directives, so the
// result is identical); observed replays keep the full trace so the
// directive events still reach the event stream.
func (s *WSSweep) RunObserved(tau int, o *obs.Observer) Result {
	if o == nil {
		o = DefaultObserver
	}
	if !o.Enabled() {
		return runFast(s.tr.RefsOnly(), policy.NewWS(tau))
	}
	res, _ := runInstrumented(s.tr, policy.NewWS(tau), o) // in-memory cursors cannot fail
	return res
}

// TauForMEM returns the window size whose average working-set size is
// closest to target (MEM is non-decreasing in τ, so binary search).
func (s *WSSweep) TauForMEM(target float64) int {
	lo, hi := 1, s.Refs
	if hi < 1 {
		return 1
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if s.MEM(mid) < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// lo is the first τ with MEM >= target; τ-1 may be closer.
	if lo > 1 && target-s.MEM(lo-1) < s.MEM(lo)-target {
		return lo - 1
	}
	return lo
}

// MinTauForFaults returns the smallest window size whose fault count is at
// most target (faults are non-increasing in τ). The second result is false
// if no window achieves the target.
func (s *WSSweep) MinTauForFaults(target int) (int, bool) {
	if s.Faults(s.Refs) > target {
		return s.Refs, false
	}
	lo, hi := 1, s.Refs
	for lo < hi {
		mid := (lo + hi) / 2
		if s.Faults(mid) <= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, true
}

// MinST searches the τ ladder for the window minimizing the space-time
// cost, replaying the trace only at ladder points. It returns the best τ
// and its full result.
func (s *WSSweep) MinST() (int, Result) {
	return s.MinSTObserved(nil)
}

// MinSTObserved is MinST with an explicit observer for the ladder-point
// replays (nil falls back to the default observer, as in RunObserved).
func (s *WSSweep) MinSTObserved(o *obs.Observer) (int, Result) {
	taus := DefaultTaus(s.Refs)
	bestTau := taus[0]
	best := s.RunObserved(bestTau, o)
	for _, tau := range taus[1:] {
		// Histogram lower bound: ST >= MemSum + FaultService * faults * 1;
		// skip τ whose bound already exceeds the best (cheap pruning).
		lower := s.MemSum(tau) + float64(policy.FaultService)*float64(s.Faults(tau))
		if lower >= best.SpaceTime {
			continue
		}
		r := s.RunObserved(tau, o)
		if r.SpaceTime < best.SpaceTime {
			bestTau, best = tau, r
		}
	}
	return bestTau, best
}
