// Fault attribution: RunAttributed replays a trace exactly like Run —
// same fault decisions, same space-time charging, same Result — while
// walking the trace's site side-band in lockstep and charging every
// reference, fault, eviction and directive action to the source site
// executing at that instant. The aggregates land in an attr.Ledger whose
// per-site sums equal the run totals by construction. This is a separate
// loop from runFast, so the un-instrumented hot path never touches the
// side-band; like the observed loop it is only entered on request.
package vmsim

import (
	"cdmm/internal/attr"
	"cdmm/internal/mem"
	"cdmm/internal/obs"
	"cdmm/internal/policy"
	"cdmm/internal/trace"
)

// Eviction provenance classes, recorded per page so the fault that a
// past eviction causes can be charged back to the construct that evicted
// the page.
const (
	evictNone    = iota // never evicted (or provenance already consumed)
	evictReplace        // normal replacement / working-set expiry
	evictShrink         // evicted by a directive-driven allocation shrink
	evictRelease        // force-released from a LOCK under memory pressure
)

// setEvictHook installs fn on the first EvictObserver in pol's Unwrap
// chain and returns an uninstaller (a no-op when none is found).
func setEvictHook(pol policy.Policy, fn func(mem.Page)) func() {
	for p := pol; p != nil; {
		if eo, ok := p.(policy.EvictObserver); ok {
			eo.SetEvictHook(fn)
			return func() { eo.SetEvictHook(nil) }
		}
		u, ok := p.(interface{ Unwrap() policy.Policy })
		if !ok {
			break
		}
		p = u.Unwrap()
	}
	return func() {}
}

// RunAttributed is Run with fault attribution: the returned Result is
// identical to Run's, and the Ledger explains it site by site. The
// observer is used for progress delivery only (pass nil for none); event
// emission stays with RunObserved. A trace without a site side-band
// still works — everything lands in the ledger's unattributed bucket.
func RunAttributed(tr *trace.Trace, pol policy.Policy, o *obs.Observer) (Result, *attr.Ledger) {
	res, led, _ := RunAttributedSource(tr, pol, o) // in-memory cursors cannot fail
	return res, led
}

// RunAttributedSource is RunAttributed over any Source, streaming the
// reference and site columns in lockstep, so a chunked CDT3 file can be
// attributed without materializing the trace. The error is the cursor's,
// as in RunSource.
func RunAttributedSource(src trace.Source, pol policy.Policy, o *obs.Observer) (Result, *attr.Ledger, error) {
	pol.Reset()
	meta := src.Meta()
	hintPages(meta, pol)
	tb := src.Tables()
	led := attr.NewLedger(meta.Name, pol.Name(), tb.Sites)
	res := Result{Policy: pol.Name(), Refs: meta.Refs}
	charger, _ := pol.(policy.Charger) // hoisted from policy.Charge
	if o == nil {
		o = DefaultObserver
	}
	prog := obs.ProgressOf(o)

	// Per-page provenance, dense by page number. Pages outside the
	// reference universe (possible in directive page sets) are skipped.
	npages := int(meta.MaxPage) + 1
	evictKind := make([]uint8, npages)
	evictSite := make([]int32, npages) // valid while evictKind != evictNone
	lockSite := make([]int32, npages)  // site of the active LOCK covering the page
	for i := range lockSite {
		lockSite[i] = trace.NoSite
	}
	lockCover := map[int][]mem.Page{} // LockSet.Site → currently covered pages

	// curSite tracks the site of the event being processed; the hooks
	// close over it so policy-internal transitions inherit the site of
	// the directive or reference that triggered them.
	curSite := trace.NoSite
	evPendKind := uint8(evictReplace)
	unhook := setEvictHook(pol, func(pg mem.Page) {
		led.Slot(curSite).Evictions++
		if int(pg) < npages {
			evictKind[pg] = evPendKind
			evictSite[pg] = curSite
		}
	})
	defer unhook()

	clearLocks := func() {
		for i := range lockSite {
			lockSite[i] = trace.NoSite
		}
		for k := range lockCover {
			delete(lockCover, k)
		}
	}

	if cd := policy.AsCD(pol); cd != nil {
		saved := cd.Hooks
		hooks := &policy.CDHooks{}
		if saved != nil {
			*hooks = *saved
		}
		prevRel, prevDeg := hooks.LockRelease, hooks.Degrade
		hooks.LockRelease = func(pg mem.Page) {
			if prevRel != nil {
				prevRel(pg)
			}
			owner := trace.NoSite
			if int(pg) < npages {
				owner = lockSite[pg]
				lockSite[pg] = trace.NoSite
				evictKind[pg] = evictRelease
				evictSite[pg] = owner
			}
			led.Slot(owner).LockReleases++
		}
		hooks.Degrade = func(reason string) {
			if prevDeg != nil {
				prevDeg(reason)
			}
			// A degraded policy drops every lock; stop crediting covers.
			clearLocks()
		}
		cd.Hooks = hooks
		defer func() { cd.Hooks = saved }()
	}

	var (
		faults, maxRes        int
		vt, spaceTime, memSum int64
	)
	cur := src.Blocks(trace.CursorOpts{WithSites: true})
	defer cur.Close()
	refIdx := 0
	var b trace.Block
	for cur.Next(&b) {
		for i, pg := range b.Pages {
			site := trace.NoSite
			if b.Sites != nil {
				site = b.Sites[i]
			}
			curSite = site
			evPendKind = evictReplace
			fault := pol.Ref(pg)
			refIdx++
			if prog != nil && refIdx%progressChunk == 0 {
				prog(refIdx, meta.Refs, vt)
			}
			dt := int64(1)
			st := led.Slot(site)
			if fault {
				faults++
				dt += policy.FaultService
				st.Faults++
				led.FaultLog = append(led.FaultLog, attr.FaultPoint{VT: vt + dt, Site: site, Page: int32(pg)})
				if int(pg) < npages {
					switch evictKind[pg] {
					case evictShrink:
						led.Slot(evictSite[pg]).ShrinkFaults++
					case evictRelease:
						led.Slot(evictSite[pg]).ReleaseFaults++
					}
					evictKind[pg] = evictNone
				}
			} else if int(pg) < npages && lockSite[pg] != trace.NoSite {
				led.Slot(lockSite[pg]).LockedHits++
			}
			m := pol.Resident()
			if m > maxRes {
				maxRes = m
			}
			if charger != nil {
				m = charger.Charged()
			}
			vt += dt
			spaceTime += int64(m) * dt
			memSum += int64(m)
			st.Refs++
			st.VTime += dt
			st.MemSum += float64(m)
		}
		if !b.HasDir {
			continue
		}
		site := b.DirSite
		curSite = site
		switch e := b.Dir; e.Kind {
		case trace.EvAlloc:
			// Evictions during the directive are shrink evictions: the
			// allocation ceiling dropped and pushed pages out early.
			evPendKind = evictShrink
			led.Slot(site).Allocs++
			pol.Alloc(tb.Alloc(e))
			evPendKind = evictReplace
		case trace.EvLock:
			ls := tb.Lock(e)
			led.Slot(site).Locks++
			// A re-executed lock site replaces its previous cover.
			for _, pg := range lockCover[ls.Site] {
				if int(pg) < npages {
					lockSite[pg] = trace.NoSite
				}
			}
			lockCover[ls.Site] = append(lockCover[ls.Site][:0], ls.Pages...)
			for _, pg := range ls.Pages {
				if int(pg) < npages {
					lockSite[pg] = site
				}
			}
			pol.Lock(ls)
		case trace.EvUnlock:
			pages := tb.Unlock(e)
			led.Slot(site).Unlocks++
			for _, pg := range pages {
				if int(pg) < npages {
					lockSite[pg] = trace.NoSite
				}
			}
			pol.Unlock(pages)
		}
	}
	if prog != nil {
		prog(refIdx, meta.Refs, vt)
	}

	res.Faults = faults
	res.MaxResident = maxRes
	res.VirtualTime = vt
	res.SpaceTime = float64(spaceTime)
	res.MemSum = float64(memSum)
	if cd := policy.AsCD(pol); cd != nil {
		res.SwapSignals = cd.SwapSignals
		res.LockReleases = cd.LockReleases
		res.Degraded = cd.Degraded()
		res.DegradedReason = cd.DegradedReason()
	}
	led.Refs = res.Refs
	led.Faults = res.Faults
	led.MemSum = res.MemSum
	led.VirtualTime = res.VirtualTime
	return res, led, cur.Err()
}
