// Fault attribution: RunAttributed replays a trace exactly like Run —
// same fault decisions, same space-time charging, same Result — while
// walking the trace's site side-band in lockstep and charging every
// reference, fault, eviction and directive action to the source site
// executing at that instant. The aggregates land in an attr.Ledger whose
// per-site sums equal the run totals by construction. This is a separate
// loop from runFast, so the un-instrumented hot path never touches the
// side-band; like the observed loop it is only entered on request.
package vmsim

import (
	"cdmm/internal/attr"
	"cdmm/internal/mem"
	"cdmm/internal/obs"
	"cdmm/internal/policy"
	"cdmm/internal/trace"
)

// Eviction provenance classes, recorded per page so the fault that a
// past eviction causes can be charged back to the construct that evicted
// the page.
const (
	evictNone    = iota // never evicted (or provenance already consumed)
	evictReplace        // normal replacement / working-set expiry
	evictShrink         // evicted by a directive-driven allocation shrink
	evictRelease        // force-released from a LOCK under memory pressure
)

// setEvictHook installs fn on the first EvictObserver in pol's Unwrap
// chain and returns an uninstaller (a no-op when none is found).
func setEvictHook(pol policy.Policy, fn func(mem.Page)) func() {
	for p := pol; p != nil; {
		if eo, ok := p.(policy.EvictObserver); ok {
			eo.SetEvictHook(fn)
			return func() { eo.SetEvictHook(nil) }
		}
		u, ok := p.(interface{ Unwrap() policy.Policy })
		if !ok {
			break
		}
		p = u.Unwrap()
	}
	return func() {}
}

// RunAttributed is Run with fault attribution: the returned Result is
// identical to Run's, and the Ledger explains it site by site. The
// observer is used for progress delivery only (pass nil for none); event
// emission stays with RunObserved. A trace without a site side-band
// still works — everything lands in the ledger's unattributed bucket.
func RunAttributed(tr *trace.Trace, pol policy.Policy, o *obs.Observer) (Result, *attr.Ledger) {
	pol.Reset()
	hintPages(tr, pol)
	led := attr.NewLedger(tr.Name, pol.Name(), tr.Sites)
	res := Result{Policy: pol.Name(), Refs: tr.Refs}
	charger, _ := pol.(policy.Charger) // hoisted from policy.Charge
	if o == nil {
		o = DefaultObserver
	}
	prog := obs.ProgressOf(o)

	// Per-page provenance, dense by page number. Pages outside the
	// reference universe (possible in directive page sets) are skipped.
	npages := int(tr.MaxPage()) + 1
	evictKind := make([]uint8, npages)
	evictSite := make([]int32, npages) // valid while evictKind != evictNone
	lockSite := make([]int32, npages)  // site of the active LOCK covering the page
	for i := range lockSite {
		lockSite[i] = trace.NoSite
	}
	lockCover := map[int][]mem.Page{} // LockSet.Site → currently covered pages

	// curSite tracks the site of the event being processed; the hooks
	// close over it so policy-internal transitions inherit the site of
	// the directive or reference that triggered them.
	curSite := trace.NoSite
	evPendKind := uint8(evictReplace)
	unhook := setEvictHook(pol, func(pg mem.Page) {
		led.Slot(curSite).Evictions++
		if int(pg) < npages {
			evictKind[pg] = evPendKind
			evictSite[pg] = curSite
		}
	})
	defer unhook()

	clearLocks := func() {
		for i := range lockSite {
			lockSite[i] = trace.NoSite
		}
		for k := range lockCover {
			delete(lockCover, k)
		}
	}

	if cd := policy.AsCD(pol); cd != nil {
		saved := cd.Hooks
		hooks := &policy.CDHooks{}
		if saved != nil {
			*hooks = *saved
		}
		prevRel, prevDeg := hooks.LockRelease, hooks.Degrade
		hooks.LockRelease = func(pg mem.Page) {
			if prevRel != nil {
				prevRel(pg)
			}
			owner := trace.NoSite
			if int(pg) < npages {
				owner = lockSite[pg]
				lockSite[pg] = trace.NoSite
				evictKind[pg] = evictRelease
				evictSite[pg] = owner
			}
			led.Slot(owner).LockReleases++
		}
		hooks.Degrade = func(reason string) {
			if prevDeg != nil {
				prevDeg(reason)
			}
			// A degraded policy drops every lock; stop crediting covers.
			clearLocks()
		}
		cd.Hooks = hooks
		defer func() { cd.Hooks = saved }()
	}

	var (
		faults, maxRes        int
		vt, spaceTime, memSum int64
	)
	cur := tr.SiteCursor()
	refIdx := 0
	for _, e := range tr.Events {
		src := cur.Next()
		curSite = src
		switch e.Kind {
		case trace.EvRef:
			evPendKind = evictReplace
			pg := mem.Page(e.Arg)
			fault := pol.Ref(pg)
			refIdx++
			if prog != nil && refIdx%progressChunk == 0 {
				prog(refIdx, tr.Refs, vt)
			}
			dt := int64(1)
			st := led.Slot(src)
			if fault {
				faults++
				dt += policy.FaultService
				st.Faults++
				led.FaultLog = append(led.FaultLog, attr.FaultPoint{VT: vt + dt, Site: src, Page: e.Arg})
				if int(e.Arg) < npages {
					switch evictKind[e.Arg] {
					case evictShrink:
						led.Slot(evictSite[e.Arg]).ShrinkFaults++
					case evictRelease:
						led.Slot(evictSite[e.Arg]).ReleaseFaults++
					}
					evictKind[e.Arg] = evictNone
				}
			} else if int(e.Arg) < npages && lockSite[e.Arg] != trace.NoSite {
				led.Slot(lockSite[e.Arg]).LockedHits++
			}
			m := pol.Resident()
			if m > maxRes {
				maxRes = m
			}
			if charger != nil {
				m = charger.Charged()
			}
			vt += dt
			spaceTime += int64(m) * dt
			memSum += int64(m)
			st.Refs++
			st.VTime += dt
			st.MemSum += float64(m)
		case trace.EvAlloc:
			// Evictions during the directive are shrink evictions: the
			// allocation ceiling dropped and pushed pages out early.
			evPendKind = evictShrink
			led.Slot(src).Allocs++
			pol.Alloc(tr.Alloc(e))
			evPendKind = evictReplace
		case trace.EvLock:
			ls := tr.Lock(e)
			led.Slot(src).Locks++
			// A re-executed lock site replaces its previous cover.
			for _, pg := range lockCover[ls.Site] {
				if int(pg) < npages {
					lockSite[pg] = trace.NoSite
				}
			}
			lockCover[ls.Site] = append(lockCover[ls.Site][:0], ls.Pages...)
			for _, pg := range ls.Pages {
				if int(pg) < npages {
					lockSite[pg] = src
				}
			}
			pol.Lock(ls)
		case trace.EvUnlock:
			pages := tr.Unlock(e)
			led.Slot(src).Unlocks++
			for _, pg := range pages {
				if int(pg) < npages {
					lockSite[pg] = trace.NoSite
				}
			}
			pol.Unlock(pages)
		}
	}
	if prog != nil {
		prog(tr.Refs, tr.Refs, vt)
	}

	res.Faults = faults
	res.MaxResident = maxRes
	res.VirtualTime = vt
	res.SpaceTime = float64(spaceTime)
	res.MemSum = float64(memSum)
	if cd := policy.AsCD(pol); cd != nil {
		res.SwapSignals = cd.SwapSignals
		res.LockReleases = cd.LockReleases
		res.Degraded = cd.Degraded()
		res.DegradedReason = cd.DegradedReason()
	}
	led.Refs = res.Refs
	led.Faults = res.Faults
	led.MemSum = res.MemSum
	led.VirtualTime = res.VirtualTime
	return res, led
}
