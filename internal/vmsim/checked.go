// Checked-run mode: RunChecked replays a trace like RunObserved while
// asserting simulator invariants after every event and auditing the
// emitted event stream against the accumulated Result via obs.Replay.
// It exists for the fault-injection harness — a perturbed trace must
// never drive the simulator into silently inconsistent state — but works
// for any policy/trace pair.
package vmsim

import (
	"fmt"

	"cdmm/internal/mem"
	"cdmm/internal/obs"
	"cdmm/internal/policy"
	"cdmm/internal/trace"
)

// InvariantError reports a violated simulator invariant: which invariant,
// under which policy, after how many references, and what was observed.
type InvariantError struct {
	Invariant string // short invariant id, e.g. "resident-bounds"
	Policy    string
	I         int // references executed when the violation was detected
	Detail    string
}

// Error implements error.
func (e *InvariantError) Error() string {
	return fmt.Sprintf("invariant %s violated (policy %s, after %d refs): %s",
		e.Invariant, e.Policy, e.I, e.Detail)
}

// RunChecked replays the trace under the policy with invariant checking:
// the resident set must stay within [0, V] (resident pages can only come
// from the reference string), a locked page must be resident and the lock
// bookkeeping internally consistent (CD only, while not degraded), and
// the emitted event stream must replay — via obs.Replay — to exactly the
// fault count and memory sum of the returned Result. Events still reach o
// (or DefaultObserver) as in RunObserved. The Result is valid up to the
// point of failure even when an error is returned.
func RunChecked(tr *trace.Trace, pol policy.Policy, o *obs.Observer) (Result, error) {
	if o == nil {
		o = DefaultObserver
	}
	col := &obs.Collector{}
	tracers := obs.MultiTracer{col}
	checkedObs := &obs.Observer{Tracer: tracers}
	if o != nil {
		if o.Tracer != nil {
			tracers = append(tracers, o.Tracer)
			checkedObs.Tracer = tracers
		}
		checkedObs.Metrics = o.Metrics
	}

	cp := &checkedPolicy{
		inner:    pol,
		cd:       policy.AsCD(pol),
		maxPages: tr.Distinct,
	}
	res := RunObserved(tr, cp, checkedObs)
	if cp.err != nil {
		return res, cp.err
	}

	if err := obs.AuditReplay(col.Events, res.Refs, res.Faults, res.MemSum); err != nil {
		return res, &InvariantError{
			Invariant: "replay",
			Policy:    res.Policy,
			I:         res.Refs,
			Detail:    err.Error(),
		}
	}
	return res, nil
}

// checkedPolicy decorates a policy with per-event invariant assertions.
// Only the first violation is recorded; the run continues so the caller
// still gets a complete (if suspect) Result alongside the error.
type checkedPolicy struct {
	inner    policy.Policy
	cd       *policy.CD // non-nil when inner is (a wrapper around) CD
	maxPages int        // V: distinct pages in the trace
	refs     int
	err      *InvariantError
}

// Unwrap exposes the decorated policy so policy.AsCD sees through the
// checker (the observed loop installs CD hooks via AsCD).
func (c *checkedPolicy) Unwrap() policy.Policy { return c.inner }

// Name implements Policy.
func (c *checkedPolicy) Name() string { return c.inner.Name() }

// Charged keeps the inner policy's space-time charging rule.
func (c *checkedPolicy) Charged() int { return policy.Charge(c.inner) }

// fail records the first invariant violation.
func (c *checkedPolicy) fail(invariant, format string, args ...any) {
	if c.err != nil {
		return
	}
	c.err = &InvariantError{
		Invariant: invariant,
		Policy:    c.inner.Name(),
		I:         c.refs,
		Detail:    fmt.Sprintf(format, args...),
	}
}

// checkResident asserts the bounds every policy must maintain: a
// non-negative resident set that never exceeds the trace's distinct page
// count (pages become resident only by being referenced), and a
// well-defined space-time charge.
func (c *checkedPolicy) checkResident() {
	r := c.inner.Resident()
	if r < 0 {
		c.fail("resident-bounds", "resident set size %d is negative", r)
		return
	}
	if c.maxPages > 0 && r > c.maxPages {
		c.fail("resident-bounds", "resident set size %d exceeds the trace's %d distinct pages", r, c.maxPages)
		return
	}
	if ch := policy.Charge(c.inner); ch < 0 {
		c.fail("charge", "space-time charge %d is negative", ch)
	}
}

// checkLocks asserts CD's lock invariants while the directives are still
// trusted: locked pages are a subset of the resident set and the lock
// bookkeeping is internally consistent.
func (c *checkedPolicy) checkLocks() {
	if c.cd == nil || c.cd.Degraded() {
		return
	}
	if l, r := c.cd.LockedPages(), c.cd.Resident(); l < 0 || l > r {
		c.fail("locked-resident", "%d locked pages with %d resident", l, r)
		return
	}
	if err := c.cd.AuditLocks(); err != nil {
		c.fail("lock-audit", "%v", err)
	}
}

// Ref implements Policy.
func (c *checkedPolicy) Ref(pg mem.Page) bool {
	fault := c.inner.Ref(pg)
	c.refs++
	c.checkResident()
	if c.cd != nil && !c.cd.Degraded() {
		if l, r := c.cd.LockedPages(), c.cd.Resident(); l > r {
			c.fail("locked-resident", "%d locked pages with %d resident", l, r)
		}
	}
	return fault
}

// Resident implements Policy.
func (c *checkedPolicy) Resident() int { return c.inner.Resident() }

// Alloc implements Policy.
func (c *checkedPolicy) Alloc(d trace.AllocDirective) {
	c.inner.Alloc(d)
	c.checkResident()
	c.checkLocks()
}

// Lock implements Policy.
func (c *checkedPolicy) Lock(ls trace.LockSet) {
	c.inner.Lock(ls)
	c.checkResident()
	c.checkLocks()
}

// Unlock implements Policy.
func (c *checkedPolicy) Unlock(pages []mem.Page) {
	c.inner.Unlock(pages)
	c.checkResident()
	c.checkLocks()
}

// Reset implements Policy.
func (c *checkedPolicy) Reset() {
	c.inner.Reset()
	c.refs = 0
}

var _ policy.Policy = (*checkedPolicy)(nil)
var _ policy.Charger = (*checkedPolicy)(nil)
