package vmsim

import (
	"testing"

	"cdmm/internal/directive"
	"cdmm/internal/mem"
	"cdmm/internal/obs"
	"cdmm/internal/policy"
	"cdmm/internal/trace"
)

// cdPhaseTrace builds a trace with two ALLOCATE phases, a LOCK/UNLOCK
// pair, and a locality shift, exercising every event kind CD can emit.
func cdPhaseTrace() *trace.Trace {
	tr := trace.New("cdphase")
	d1 := &directive.Allocate{Arms: []directive.Arm{{PI: 2, X: 8}, {PI: 1, X: 4}}}
	d2 := &directive.Allocate{Arms: []directive.Arm{{PI: 1, X: 2}}}
	tr.AddAlloc(d1)
	for r := 0; r < 10; r++ {
		for i := 0; i < 8; i++ {
			tr.AddRef(mem.Page(i))
		}
	}
	tr.AddLock(2, 1, []mem.Page{0, 1})
	tr.AddAlloc(d2)
	for r := 0; r < 10; r++ {
		for i := 8; i < 12; i++ {
			tr.AddRef(mem.Page(i))
		}
	}
	tr.AddUnlock([]mem.Page{0, 1})
	for r := 0; r < 5; r++ {
		for i := 0; i < 4; i++ {
			tr.AddRef(mem.Page(i))
		}
	}
	return tr
}

// TestEventStreamMatchesResult is the audit guarantee: replaying the
// emitted event stream reconstructs the run's fault count and memory sum
// exactly — bit for bit, not approximately.
func TestEventStreamMatchesResult(t *testing.T) {
	cases := []struct {
		name string
		tr   *trace.Trace
		pol  policy.Policy
	}{
		{"LRU", randomTrace(7, 5000, 40).StripDirectives(), policy.NewLRU(8)},
		{"WS", randomTrace(11, 5000, 40).StripDirectives(), policy.NewWS(64)},
		{"CD", cdPhaseTrace(), policy.NewCD(policy.SelectLevel(2), 2)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			col := &obs.Collector{}
			reg := obs.NewRegistry()
			res := RunObserved(tc.tr, tc.pol, &obs.Observer{Tracer: col, Metrics: reg})

			refs, faults, memSum := obs.Replay(col.Events)
			if refs != res.Refs {
				t.Errorf("replayed refs = %d, result %d", refs, res.Refs)
			}
			if faults != res.Faults {
				t.Errorf("replayed faults = %d, result %d", faults, res.Faults)
			}
			if memSum != res.MemSum {
				t.Errorf("replayed memSum = %v, result %v", memSum, res.MemSum)
			}
			if got := reg.Counter("faults").Value(); got != int64(res.Faults) {
				t.Errorf("faults counter = %d, result %d", got, res.Faults)
			}
			if got := reg.Counter("refs").Value(); got != int64(res.Refs) {
				t.Errorf("refs counter = %d, result %d", got, res.Refs)
			}
			// The resident histogram observes the same per-reference charge
			// the memory sum accumulates, in the same order.
			h := reg.Histogram("resident_pages", nil)
			if h.Sum() != res.MemSum || h.Count() != int64(res.Refs) {
				t.Errorf("resident histogram sum/count = %v/%d, want %v/%d",
					h.Sum(), h.Count(), res.MemSum, res.Refs)
			}
		})
	}
}

// TestObservedMatchesFast verifies instrumentation changes nothing about
// the simulation itself.
func TestObservedMatchesFast(t *testing.T) {
	tr := cdPhaseTrace()
	fast := Run(tr, policy.NewCD(policy.SelectLevel(2), 2))
	obsd := RunObserved(tr, policy.NewCD(policy.SelectLevel(2), 2),
		&obs.Observer{Tracer: &obs.Collector{}, Metrics: obs.NewRegistry()})
	if fast != obsd {
		t.Errorf("observed run diverged:\n fast %+v\n obsd %+v", fast, obsd)
	}
}

// TestObservedCDEmitsDirectiveEvents checks the CD hook points: phase
// changes, lock/unlock framing, and run framing all appear in the stream.
func TestObservedCDEmitsDirectiveEvents(t *testing.T) {
	col := &obs.Collector{}
	RunObserved(cdPhaseTrace(), policy.NewCD(policy.SelectLevel(2), 2), &obs.Observer{Tracer: col})
	kinds := map[string]int{}
	for _, e := range col.Events {
		kinds[e.Kind]++
	}
	for _, k := range []string{obs.KindRun, obs.KindFault, obs.KindRes, obs.KindAlloc,
		obs.KindPhase, obs.KindLock, obs.KindUnlock, obs.KindEnd} {
		if kinds[k] == 0 {
			t.Errorf("no %q events in stream (kinds: %v)", k, kinds)
		}
	}
	if kinds[obs.KindRun] != 1 || kinds[obs.KindEnd] != 1 {
		t.Errorf("stream framing: %d run, %d end events", kinds[obs.KindRun], kinds[obs.KindEnd])
	}
	last := col.Events[len(col.Events)-1]
	if last.Kind != obs.KindEnd {
		t.Errorf("stream does not end with an end event: %+v", last)
	}
}

// TestDefaultObserver checks that Run picks up the process-wide observer
// the CLI installs.
func TestDefaultObserver(t *testing.T) {
	col := &obs.Collector{}
	DefaultObserver = &obs.Observer{Tracer: col}
	defer func() { DefaultObserver = nil }()
	res := Run(refTrace(1, 2, 3, 1, 2, 3), policy.NewLRU(2))
	if len(col.Events) == 0 {
		t.Fatal("default observer saw no events")
	}
	_, faults, _ := obs.Replay(col.Events)
	if faults != res.Faults {
		t.Errorf("default-observed faults = %d, want %d", faults, res.Faults)
	}
}

// TestSweepObserved checks per-point sweep summaries.
func TestSweepObserved(t *testing.T) {
	tr := randomTrace(3, 2000, 20)
	col := &obs.Collector{}
	reg := obs.NewRegistry()
	o := &obs.Observer{Tracer: col, Metrics: reg}
	lru := SweepLRUObserved(tr, 10, o)
	ws := SweepWSObserved(tr, []int{10, 100, 1000}, o)
	points := 0
	for _, e := range col.Events {
		if e.Kind != obs.KindSweep {
			t.Errorf("unexpected %q event in sweep stream", e.Kind)
			continue
		}
		points++
	}
	if want := len(lru) + len(ws); points != want {
		t.Errorf("sweep events = %d, want %d", points, want)
	}
	if got := reg.Counter("sweep_points").Value(); got != int64(points) {
		t.Errorf("sweep_points counter = %d, want %d", got, points)
	}
	// Sweep events carry the exact per-point aggregates.
	if e := col.Events[0]; e.Faults != lru[0].Faults || e.ST != lru[0].ST() {
		t.Errorf("sweep point 0 = %+v, want PF=%d ST=%g", e, lru[0].Faults, lru[0].ST())
	}
}

// TestMultiprogEvents checks job-tagged events from the multiprogramming
// driver under pool pressure.
func TestMultiprogEvents(t *testing.T) {
	col := &obs.Collector{}
	a := &Job{Name: "a", Trace: loopTrace("a", 0, 8, 200), Policy: policy.NewWS(1000)}
	b := &Job{Name: "b", Trace: loopTrace("b", 100, 8, 200), Policy: policy.NewWS(1000)}
	res := RunMulti([]*Job{a, b}, MultiConfig{Frames: 10, Obs: &obs.Observer{Tracer: col}})

	kinds := map[string]int{}
	jobs := map[string]bool{}
	for _, e := range col.Events {
		kinds[e.Kind]++
		if e.Job != "" {
			jobs[e.Job] = true
		}
		if e.Kind == obs.KindSwap && e.Why == "" {
			t.Error("swap event without a reason")
		}
	}
	if kinds[obs.KindFault] != a.Faults+b.Faults {
		t.Errorf("fault events = %d, want %d", kinds[obs.KindFault], a.Faults+b.Faults)
	}
	if kinds[obs.KindSwap] != res.Swaps {
		t.Errorf("swap events = %d, want %d", kinds[obs.KindSwap], res.Swaps)
	}
	if kinds[obs.KindJobDone] != 2 || kinds[obs.KindEnd] != 1 {
		t.Errorf("framing: %v", kinds)
	}
	if !jobs["a"] || !jobs["b"] {
		t.Errorf("events not job-tagged: %v", jobs)
	}
}
