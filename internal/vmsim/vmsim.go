// Package vmsim drives memory-management policies over page-reference
// traces and accumulates the paper's three performance indexes: the number
// of page faults (PF), the average memory allocated to the program (MEM),
// and the space-time cost (ST), with page-fault service time of 2000
// memory references (§5).
//
// Virtual time advances one unit per reference plus FaultService units per
// fault; the space-time integral accumulates resident-set-size × elapsed
// virtual time, so holding a large resident set across a fault is charged
// 2000× more than across a hit — exactly the trade-off the paper's ST
// index captures.
package vmsim

import (
	"fmt"
	"sync"

	"cdmm/internal/obs"
	"cdmm/internal/policy"
	"cdmm/internal/trace"
)

// Result holds the performance indexes of one simulation run.
type Result struct {
	Policy string
	Refs   int
	Faults int
	// MemSum is Σ resident-set-size sampled after every reference.
	MemSum float64
	// SpaceTime is the pages × virtual-time integral (the paper's ST).
	SpaceTime float64
	// VirtualTime is Refs + Faults × FaultService.
	VirtualTime int64
	// SwapSignals and LockReleases are CD-specific counters (0 otherwise).
	SwapSignals  int
	LockReleases int
	// MaxResident is the peak resident-set size.
	MaxResident int
	// Degraded reports that a CD policy hit a directive-contract
	// violation and served the rest of the run from its WS fallback;
	// DegradedReason is the first violation observed.
	Degraded       bool
	DegradedReason string
}

// MEM returns the average memory allocated, in pages, averaged over
// references.
func (r Result) MEM() float64 {
	if r.Refs == 0 {
		return 0
	}
	return r.MemSum / float64(r.Refs)
}

// ST returns the space-time cost.
func (r Result) ST() float64 { return r.SpaceTime }

// FaultRate returns faults per thousand references.
func (r Result) FaultRate() float64 {
	if r.Refs == 0 {
		return 0
	}
	return 1000 * float64(r.Faults) / float64(r.Refs)
}

// String summarizes the result. The CD-specific swap-signal and forced
// lock-release counters are included when nonzero.
func (r Result) String() string {
	s := fmt.Sprintf("%s: PF=%d MEM=%.2f ST=%.3g (R=%d)", r.Policy, r.Faults, r.MEM(), r.ST(), r.Refs)
	if r.SwapSignals > 0 {
		s += fmt.Sprintf(" swap-signals=%d", r.SwapSignals)
	}
	if r.LockReleases > 0 {
		s += fmt.Sprintf(" lock-releases=%d", r.LockReleases)
	}
	if r.Degraded {
		s += fmt.Sprintf(" DEGRADED(%s)", r.DegradedReason)
	}
	return s
}

// Run replays the trace under the policy. The policy is Reset first, so a
// single policy value can be reused across runs. When DefaultObserver is
// set the run is observed; otherwise this is the bare fast path.
//
// Run and RunObserved are safe for concurrent use with DISTINCT policy
// values over the same (immutable) trace: the simulation mutates only
// the policy and its own Result, never the trace. Concurrent runs that
// share one policy value race on its state; give each goroutine its own.
// Concurrent runs relying on the DefaultObserver fallback additionally
// race on its tracer — pass per-run observers (as the engine package
// does) when observing parallel runs.
func Run(tr *trace.Trace, pol policy.Policy) Result {
	return RunObserved(tr, pol, nil)
}

// RunSource replays any reference-stream Source — an in-memory trace or
// a chunked CDT3 file — under the policy, streaming block by block in
// O(chunk) memory. Observation works as in RunObserved (nil o falls back
// to DefaultObserver). The error is the cursor's: an on-disk source can
// fail mid-stream (truncation, corruption, IO), in which case the Result
// is valid up to the failure point. In-memory sources never fail.
func RunSource(src trace.Source, pol policy.Policy, o *obs.Observer) (Result, error) {
	if o == nil {
		o = DefaultObserver
	}
	if !o.Enabled() {
		return runBlocks(src, pol, obs.ProgressOf(o))
	}
	return runInstrumented(src, pol, o)
}

// hintPages pre-sizes a policy's dense page-indexed state from the
// stream's page universe, seeing through Unwrap wrappers, so the first
// replay assigns page slots without growth reallocations. Meta is O(1)
// for every source, so the hint never materializes trace views.
func hintPages(meta trace.Meta, pol policy.Policy) {
	for p := pol; p != nil; {
		if h, ok := p.(policy.PageHinter); ok {
			h.HintPages(meta.MaxPage, meta.Distinct)
			return
		}
		u, ok := p.(interface{ Unwrap() policy.Policy })
		if !ok {
			return
		}
		p = u.Unwrap()
	}
}

// runFast is the un-instrumented simulation loop — the hot path when
// observability is off.
func runFast(tr *trace.Trace, pol policy.Policy) Result {
	res, _ := runBlocks(tr, pol, nil) // in-memory cursors cannot fail
	return res
}

// progressChunk is how many trace events the fast path executes between
// progress callbacks. The chunk is large enough that the outer loop's
// bookkeeping amortizes to nothing (a chunk is a few hundred microseconds
// of simulation) while still giving a live /progress endpoint dozens of
// updates per second on big traces.
const progressChunk = 1 << 15

// blockResultPool recycles the accumulator runBlocks hands to
// BlockStepper policies. Passing &out through the interface makes the
// compiler heap-allocate it, so without the pool every Run costs one
// allocation even though the replay itself is allocation-free.
var blockResultPool = sync.Pool{New: func() any { return new(policy.BlockResult) }}

// applyDir feeds a block-closing directive event to the policy.
func applyDir(pol policy.Policy, tb *trace.SideTables, e trace.Event) {
	switch e.Kind {
	case trace.EvAlloc:
		pol.Alloc(tb.Alloc(e))
	case trace.EvLock:
		pol.Lock(tb.Lock(e))
	case trace.EvUnlock:
		pol.Unlock(tb.Unlock(e))
	}
}

// runBlocks is the un-instrumented simulation loop, streaming the source
// block by block with an optional periodic progress callback. Policies
// implementing policy.BlockStepper replay each directive-free run of
// references in one call — loop-invariant work (interface dispatch,
// fixed-partition charges, degraded checks) hoists out of the per-
// reference path; other policies fall back to per-reference stepping
// inside the same block loop, and the old per-reference accounting
// remains available as the differential oracle (see RunChecked and the
// blockstep tests).
//
// The indexes accumulate in int64: every charge and time step is an
// integer, so the sums are exact (the float64 Result fields would start
// rounding past 2^53). prog receives the event index reached (out of
// Meta().Events) and the virtual time; a nil prog leaves blocks at the
// source's natural size, a non-nil one caps them at progressChunk so
// callbacks fire at a steady cadence.
func runBlocks(src trace.Source, pol policy.Policy, prog obs.ProgressFunc) (Result, error) {
	pol.Reset()
	meta := src.Meta()
	hintPages(meta, pol)
	tb := src.Tables()
	res := Result{Policy: pol.Name(), Refs: meta.Refs}
	charger, _ := pol.(policy.Charger) // hoisted from policy.Charge
	bst, isBlock := pol.(policy.BlockStepper)
	st, isStepper := pol.(policy.Stepper)

	opts := trace.CursorOpts{}
	if prog != nil {
		opts.MaxBlock = progressChunk
	}

	// The accumulator is fed to StepBlock through the BlockStepper
	// interface, which forces it to the heap; pooling it keeps the
	// steady-state replay at zero allocations.
	out := blockResultPool.Get().(*policy.BlockResult)
	*out = policy.BlockResult{}
	defer blockResultPool.Put(out)
	done := 0 // events consumed, for progress reporting
	step := func(b trace.Block) bool {
		switch {
		case isBlock:
			bst.StepBlock(b.Pages, out)
		case isStepper:
			// One dynamic dispatch per reference instead of three.
			for _, pg := range b.Pages {
				fault, r, m := st.Step(pg)
				dt := int64(1)
				if fault {
					out.Faults++
					dt += policy.FaultService
				}
				if r > out.MaxResident {
					out.MaxResident = r
				}
				out.VTime += dt
				out.SpaceTime += int64(m) * dt
				out.MemSum += int64(m)
			}
		default:
			for _, pg := range b.Pages {
				fault := pol.Ref(pg)
				dt := int64(1)
				if fault {
					out.Faults++
					dt += policy.FaultService
				}
				m := pol.Resident()
				if m > out.MaxResident {
					out.MaxResident = m
				}
				if charger != nil {
					m = charger.Charged()
				}
				out.VTime += dt
				out.SpaceTime += int64(m) * dt
				out.MemSum += int64(m)
			}
		}
		if b.HasDir {
			applyDir(pol, tb, b.Dir)
		}
		if prog != nil {
			done += b.Events()
			prog(done, meta.Events, out.VTime)
		}
		return true
	}

	var walkErr error
	if tr, ok := src.(*trace.Trace); ok {
		// In-memory traces walk with the cursor on the stack: the whole
		// replay allocates nothing after the policy's Reset.
		walkErr = tr.WalkBlocks(opts, step)
	} else {
		cur := src.Blocks(opts)
		var b trace.Block
		for cur.Next(&b) {
			step(b)
		}
		walkErr = cur.Err()
		cur.Close()
	}
	if prog != nil && done < meta.Events {
		// The stream ended early (cursor error): report where it stopped.
		prog(done, meta.Events, out.VTime)
	}
	res.Faults = out.Faults
	res.MaxResident = out.MaxResident
	res.VirtualTime = out.VTime
	res.SpaceTime = float64(out.SpaceTime)
	res.MemSum = float64(out.MemSum)
	if cd := policy.AsCD(pol); cd != nil {
		res.SwapSignals = cd.SwapSignals
		res.LockReleases = cd.LockReleases
		res.Degraded = cd.Degraded()
		res.DegradedReason = cd.DegradedReason()
	}
	return res, walkErr
}

// SweepLRU runs LRU at every allocation in [1, maxFrames] and returns the
// results indexed by allocation-1. The paper varies the LRU allocation
// between 1 and V.
func SweepLRU(tr *trace.Trace, maxFrames int) []Result {
	return SweepLRUObserved(tr, maxFrames, nil)
}

// SweepWS runs the Working Set policy at each window size in taus.
func SweepWS(tr *trace.Trace, taus []int) []Result {
	return SweepWSObserved(tr, taus, nil)
}

// DefaultTaus builds the WS window-size sweep for a trace of length R:
// a geometric ladder from 1 to R covering the interesting range densely.
func DefaultTaus(refLen int) []int {
	var taus []int
	seen := map[int]bool{}
	add := func(t int) {
		if t >= 1 && t <= refLen && !seen[t] {
			seen[t] = true
			taus = append(taus, t)
		}
	}
	for t := 1; t <= refLen; {
		add(t)
		// ~12% steps give a dense enough ladder to match MEM targets.
		nt := t + t/8
		if nt == t {
			nt = t + 1
		}
		t = nt
	}
	return taus
}
