package vmsim

import (
	"cdmm/internal/mem"
	"cdmm/internal/trace"
)

// randomTrace builds a deterministic pseudo-random trace with locality
// phases (bursts around a moving base), a realistic shape for replay
// tests.
func randomTrace(seed uint64, n, universe int) *trace.Trace {
	rng := func() uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed >> 33
	}
	tr := trace.New("rand")
	base := 0
	for i := 0; i < n; i++ {
		if rng()%97 == 0 {
			base = int(rng()) % universe
		}
		span := 4 + int(rng()%8)
		tr.AddRef(mem.Page((base + int(rng())%span) % universe))
	}
	return tr
}
