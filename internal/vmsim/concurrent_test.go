package vmsim

import (
	"sync"
	"testing"

	"cdmm/internal/mem"
	"cdmm/internal/policy"
	"cdmm/internal/trace"
)

// syntheticTrace builds a looping reference string with enough distinct
// pages and re-reference structure to make every policy fault-interesting.
func syntheticTrace(pages, rounds int) *trace.Trace {
	tr := trace.New("concurrent")
	for r := 0; r < rounds; r++ {
		for p := 0; p < pages; p++ {
			tr.AddRef(mem.Page(p))
			if p%3 == 0 {
				tr.AddRef(mem.Page(p % 5)) // hot subset
			}
		}
	}
	return tr
}

// TestRunConcurrentDistinctPolicies exercises the documented concurrency
// contract: concurrent Run calls over one immutable trace with DISTINCT
// policy values must produce exactly the sequential results. Run under
// -race this also proves the simulation loop shares no hidden state.
func TestRunConcurrentDistinctPolicies(t *testing.T) {
	tr := syntheticTrace(40, 6)
	type mk struct {
		name string
		make func() policy.Policy
	}
	mks := []mk{
		{"LRU8", func() policy.Policy { return policy.NewLRU(8) }},
		{"LRU16", func() policy.Policy { return policy.NewLRU(16) }},
		{"FIFO8", func() policy.Policy { return policy.NewFIFO(8) }},
		{"WS50", func() policy.Policy { return policy.NewWS(50) }},
		{"WS200", func() policy.Policy { return policy.NewWS(200) }},
	}

	want := make([]Result, len(mks))
	for i, m := range mks {
		want[i] = Run(tr, m.make())
	}

	const replicas = 4
	got := make([]Result, len(mks)*replicas)
	var wg sync.WaitGroup
	for rep := 0; rep < replicas; rep++ {
		for i, m := range mks {
			wg.Add(1)
			go func(slot int, make func() policy.Policy) {
				defer wg.Done()
				got[slot] = Run(tr, make())
			}(rep*len(mks)+i, m.make)
		}
	}
	wg.Wait()

	for rep := 0; rep < replicas; rep++ {
		for i, m := range mks {
			g := got[rep*len(mks)+i]
			if g != want[i] {
				t.Errorf("%s replica %d: concurrent result %+v != sequential %+v", m.name, rep, g, want[i])
			}
		}
	}
}
