package vmsim

import (
	"testing"

	"cdmm/internal/directive"
	"cdmm/internal/mem"
	"cdmm/internal/obs"
	"cdmm/internal/policy"
	"cdmm/internal/trace"
)

// swapEvents filters a collected event stream down to swap-outs.
func swapEvents(events []obs.Event) []obs.Event {
	var out []obs.Event
	for _, e := range events {
		if e.Kind == obs.KindSwap {
			out = append(out, e)
		}
	}
	return out
}

// TestMultiOvercommitVictimSelection verifies the suspend path under
// capacity overcommitment: the driver deactivates the *largest* other
// job, tagged "victim", and the victim's frames are actually released.
func TestMultiOvercommitVictimSelection(t *testing.T) {
	// big grows to 10 resident pages, small to 3; pool of 12 overcommits
	// once both are warm, and big must be the victim. The traces run long
	// past warmup (fault service is 2000 ticks per fault) so the jobs
	// actually coexist fully resident.
	big := &Job{Name: "big", Trace: loopTrace("big", 0, 10, 3000), Policy: policy.NewWS(100000)}
	small := &Job{Name: "small", Trace: loopTrace("small", 100, 3, 10000), Policy: policy.NewWS(100000)}
	col := &obs.Collector{}
	res := RunMulti([]*Job{big, small}, MultiConfig{Frames: 12, Obs: &obs.Observer{Tracer: col}})

	swaps := swapEvents(col.Events)
	if len(swaps) == 0 {
		t.Fatal("overcommitted pool produced no swap events")
	}
	for _, e := range swaps {
		if e.Why != "victim" {
			t.Errorf("WS-only mix produced a %q swap; only pressure victims expected", e.Why)
		}
	}
	bigSwaps := 0
	for _, e := range swaps {
		if e.Job == "big" {
			bigSwaps++
			if e.Res <= 3 {
				t.Errorf("victim swapped out holding only %d frames; selection should pick the largest", e.Res)
			}
		}
	}
	if bigSwaps == 0 {
		t.Error("the 10-page job was never the victim")
	}
	if !jobDone(big) || !jobDone(small) {
		t.Error("jobs must run to completion despite overcommitment")
	}
	if res.Swaps != len(swaps) {
		t.Errorf("result counts %d swaps, events show %d", res.Swaps, len(swaps))
	}
}

// TestMultiCDSignalPrecedesPressureEviction pins down the ordering
// contract between CD's own swap signal and the driver's pressure
// eviction: a CD job whose PI=1 request cannot be granted is swapped by
// its *own* signal (tagged "signal") at directive-execution time — the
// driver does not wait for the pool to overcommit and evict it as a
// generic victim.
func TestMultiCDSignalPrecedesPressureEviction(t *testing.T) {
	// The CD job asks for 50 pages at PI=1 against a 16-frame pool: the
	// grant is impossible, so the Figure 6 path must raise the signal on
	// the ALLOCATE itself, before any reference faults pile up.
	cdTr := trace.New("cd")
	cdTr.AddAlloc(&directive.Allocate{Arms: []directive.Arm{{PI: 1, X: 50}}})
	for r := 0; r < 5; r++ {
		for i := 0; i < 12; i++ {
			cdTr.AddRef(mem.Page(i))
		}
	}
	cd := policy.NewCD(policy.SelectLevel(1), 2)
	cdJob := &Job{Name: "cd", Trace: cdTr, Policy: cd}
	ws := &Job{Name: "ws", Trace: loopTrace("ws", 100, 6, 200), Policy: policy.NewWS(2000)}
	col := &obs.Collector{}
	RunMulti([]*Job{cdJob, ws}, MultiConfig{Frames: 16, Obs: &obs.Observer{Tracer: col}})

	swaps := swapEvents(col.Events)
	var first *obs.Event
	for i := range swaps {
		if swaps[i].Job == "cd" {
			first = &swaps[i]
			break
		}
	}
	if first == nil {
		t.Fatal("CD job never swapped")
	}
	if first.Why != "signal" {
		t.Errorf("first CD swap tagged %q, want \"signal\" (own PI=1 signal, not pressure)", first.Why)
	}
	// The signal fires at directive execution: the job holds no frames yet.
	if first.Res != 0 {
		t.Errorf("signal swap with %d resident frames; the ungrantable ALLOCATE precedes any reference", first.Res)
	}
	if cdJob.Swaps == 0 {
		t.Error("job swap counter did not record the signal swap")
	}
	if !jobDone(cdJob) || !jobDone(ws) {
		t.Error("jobs must complete")
	}
}

// TestMultiWSJobsNeverSelfSignal is the complementary assertion: WS jobs
// have no directive machinery, so every WS swap under overcommitment is
// a pressure victim — the working-set principle evicts pages, and only
// the driver suspends whole jobs.
func TestMultiWSJobsNeverSelfSignal(t *testing.T) {
	jobs := []*Job{
		{Name: "a", Trace: loopTrace("a", 0, 7, 150), Policy: policy.NewWS(5000)},
		{Name: "b", Trace: loopTrace("b", 50, 7, 150), Policy: policy.NewWS(5000)},
		{Name: "c", Trace: loopTrace("c", 90, 7, 150), Policy: policy.NewWS(5000)},
	}
	col := &obs.Collector{}
	res := RunMulti(jobs, MultiConfig{Frames: 15, Obs: &obs.Observer{Tracer: col}})
	if res.Swaps == 0 {
		t.Fatal("three 7-page working sets over 15 frames must overcommit")
	}
	for _, e := range swapEvents(col.Events) {
		if e.Why == "signal" {
			t.Errorf("WS job %s raised a CD swap signal", e.Job)
		}
	}
}

// TestMultiDegradedCDJobCompletes ties the degraded-mode contract into
// the multiprogramming path: a CD job whose directive stream violates
// the contract degrades to its WS fallback mid-mix and still runs to
// completion under pool pressure, with its locks released.
func TestMultiDegradedCDJobCompletes(t *testing.T) {
	bad := trace.New("bad")
	bad.AddAlloc(&directive.Allocate{Arms: []directive.Arm{{PI: 1, X: 6}}})
	for i := 0; i < 30; i++ {
		bad.AddRef(mem.Page(i % 6))
	}
	bad.AddLock(1, 0, []mem.Page{0, 1})
	// Contract violation mid-trace: non-decreasing priority chain.
	bad.AddAlloc(&directive.Allocate{Arms: []directive.Arm{{PI: 2, X: 4}, {PI: 2, X: 4}}})
	for i := 0; i < 60; i++ {
		bad.AddRef(mem.Page(i % 6))
	}
	cd := policy.NewCD(policy.SelectLevel(2), 2)
	cd.Check = &policy.CheckConfig{MaxPage: 8, FallbackTau: 50}
	cdJob := &Job{Name: "bad-cd", Trace: bad, Policy: cd}
	filler := &Job{Name: "filler", Trace: loopTrace("f", 100, 6, 100), Policy: policy.NewWS(2000)}

	RunMulti([]*Job{cdJob, filler}, MultiConfig{Frames: 10})
	if !jobDone(cdJob) || !jobDone(filler) {
		t.Fatal("jobs must complete despite the degraded directive stream")
	}
	if cdJob.Refs != bad.Refs {
		t.Errorf("degraded job served %d of %d refs", cdJob.Refs, bad.Refs)
	}
	if cd.LockedPages() != 0 {
		t.Errorf("%d pages still locked after the run", cd.LockedPages())
	}
}
