package vmsim

import (
	"bytes"
	"testing"

	"cdmm/internal/policy"
	"cdmm/internal/trace"
	"cdmm/internal/workloads"
)

// Satellite guarantee of the streaming plane: the trace's memoized
// derived views recompute only on demand. A cursor replay of an
// in-memory trace builds the columnar view and nothing else; Meta and
// MaxPage (the O(1) hint surface) build none; and a streamed CDT3 replay
// never holds a *Trace at all, so it cannot touch any of them.
func TestRunMaterializesOnlyColumnarView(t *testing.T) {
	w, err := workloads.Get("CONDUCT")
	if err != nil {
		t.Fatal(err)
	}
	c, err := workloads.Compile(w)
	if err != nil {
		t.Fatal(err)
	}
	// Compilation itself consults the views (directive planning walks the
	// reference string), so round-trip through the codec for a trace whose
	// views are untouched.
	var buf bytes.Buffer
	if _, err := c.Trace.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if col, uni, ro := tr.ViewsMaterialized(); col || uni || ro {
		t.Fatalf("freshly decoded trace already has views (columnar=%v universe=%v refsOnly=%v)", col, uni, ro)
	}
	_ = tr.Meta()
	_ = tr.MaxPage()
	if col, uni, ro := tr.ViewsMaterialized(); col || uni || ro {
		t.Fatalf("Meta/MaxPage materialized views (columnar=%v universe=%v refsOnly=%v)", col, uni, ro)
	}

	Run(tr, policy.NewCD(c.Program.DefaultSet().Selector(), 2))
	col, uni, ro := tr.ViewsMaterialized()
	if !col {
		t.Fatal("cursor replay did not build the columnar view")
	}
	if uni || ro {
		t.Fatalf("cursor replay materialized extra views (universe=%v refsOnly=%v)", uni, ro)
	}

	// The CDT3 encoder also streams through the cursor: still no extra
	// views.
	cdt3 := writeCDT3Temp(t, tr)
	if _, uni, ro := tr.ViewsMaterialized(); uni || ro {
		t.Fatalf("CDT3 encode materialized extra views (universe=%v refsOnly=%v)", uni, ro)
	}

	// A streamed replay of the file involves no *Trace anywhere.
	src, err := trace.OpenCDT3(cdt3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSource(src, policy.NewLRU(c.V()/2+1), nil); err != nil {
		t.Fatal(err)
	}

	// The heavier views still come up on demand.
	if u := tr.Universe(); u == nil || u.NumPages == 0 {
		t.Fatal("Universe() returned nothing")
	}
	if _, uni, _ := tr.ViewsMaterialized(); !uni {
		t.Fatal("Universe() did not memoize")
	}
}
