package vmsim

import (
	"reflect"
	"testing"

	"cdmm/internal/directive"
	"cdmm/internal/mem"
	"cdmm/internal/obs"
	"cdmm/internal/policy"
	"cdmm/internal/trace"
)

// loopTrace builds a trace cycling over pages [base, base+n) for rounds.
func loopTrace(name string, base, n, rounds int) *trace.Trace {
	tr := trace.New(name)
	for r := 0; r < rounds; r++ {
		for i := 0; i < n; i++ {
			tr.AddRef(mem.Page(base + i))
		}
	}
	return tr
}

func TestMultiSingleJobMatchesUniprogramming(t *testing.T) {
	tr := loopTrace("a", 0, 4, 50)
	uni := Run(tr, policy.NewWS(64))

	job := &Job{Name: "a", Trace: tr, Policy: policy.NewWS(64)}
	res := RunMulti([]*Job{job}, MultiConfig{Frames: 100})
	if job.Faults != uni.Faults {
		t.Errorf("multi faults = %d, uni = %d", job.Faults, uni.Faults)
	}
	if job.Refs != tr.Refs {
		t.Errorf("refs = %d, want %d", job.Refs, tr.Refs)
	}
	if res.Swaps != 0 {
		t.Errorf("swaps = %d, want 0 (pool ample)", res.Swaps)
	}
	if !jobDone(job) {
		t.Error("job not finished")
	}
}

func jobDone(j *Job) bool { return j.Finished > 0 }

func TestMultiFaultServiceOverlaps(t *testing.T) {
	// Two jobs, ample frames: while one is in fault service the other
	// runs, so the makespan is far below the serial virtual time.
	a := &Job{Name: "a", Trace: loopTrace("a", 0, 8, 100), Policy: policy.NewWS(64)}
	b := &Job{Name: "b", Trace: loopTrace("b", 100, 8, 100), Policy: policy.NewWS(64)}
	res := RunMulti([]*Job{a, b}, MultiConfig{Frames: 64})

	serial := Run(a.Trace, policy.NewWS(64)).VirtualTime + Run(b.Trace, policy.NewWS(64)).VirtualTime
	if res.Makespan >= serial {
		t.Errorf("makespan %d not below serial %d: no overlap", res.Makespan, serial)
	}
	if a.Faults != 8 || b.Faults != 8 {
		t.Errorf("faults = %d/%d, want 8/8", a.Faults, b.Faults)
	}
}

func TestMultiPoolPressureCausesSwaps(t *testing.T) {
	// Two jobs each needing 8 pages, pool of 10: somebody must be swapped.
	a := &Job{Name: "a", Trace: loopTrace("a", 0, 8, 200), Policy: policy.NewWS(1000)}
	b := &Job{Name: "b", Trace: loopTrace("b", 100, 8, 200), Policy: policy.NewWS(1000)}
	res := RunMulti([]*Job{a, b}, MultiConfig{Frames: 10})
	if res.Swaps == 0 {
		t.Error("expected swaps under pool pressure")
	}
	if a.Faults+b.Faults <= 16 {
		t.Error("swapped jobs must refault their pages")
	}
	if !jobDone(a) || !jobDone(b) {
		t.Error("jobs must still run to completion")
	}
}

func TestMultiCDSwapSignal(t *testing.T) {
	// A CD job whose PI=1 request exceeds the whole pool raises the swap
	// signal and is swapped out rather than thrashing.
	tr2 := trace.New("cd")
	tr2.AddAlloc(&directive.Allocate{Arms: []directive.Arm{{PI: 1, X: 50}}})
	for r := 0; r < 3; r++ {
		for i := 0; i < 20; i++ {
			tr2.AddRef(mem.Page(i))
		}
	}
	cd := policy.NewCD(policy.SelectLevel(1), 2)
	job := &Job{Name: "cd", Trace: tr2, Policy: cd}
	filler := &Job{Name: "filler", Trace: loopTrace("f", 100, 4, 400), Policy: policy.NewWS(64)}
	res := RunMulti([]*Job{job, filler}, MultiConfig{Frames: 16})
	if job.Swaps == 0 {
		t.Errorf("CD job should have been swapped on its ungrantable PI=1 request; result: %v", res)
	}
	if !jobDone(job) {
		t.Error("CD job must finish after swap-in")
	}
}

func TestMultiDeterministic(t *testing.T) {
	mk := func() []*Job {
		return []*Job{
			{Name: "a", Trace: loopTrace("a", 0, 6, 100), Policy: policy.NewWS(500)},
			{Name: "b", Trace: loopTrace("b", 50, 6, 100), Policy: policy.NewWS(500)},
			{Name: "c", Trace: loopTrace("c", 90, 6, 100), Policy: policy.NewLRU(6)},
		}
	}
	r1 := RunMulti(mk(), MultiConfig{Frames: 14})
	r2 := RunMulti(mk(), MultiConfig{Frames: 14})
	if r1.Makespan != r2.Makespan || r1.Swaps != r2.Swaps {
		t.Errorf("nondeterministic: %v vs %v", r1, r2)
	}
}

// TestMultiJobAccountingInvariants checks that per-job accounting is
// internally consistent across a mixed CD/WS/LRU workload under pool
// pressure: every reference is served exactly once, memory integrals are
// sane, and global swap/makespan figures agree with the per-job ones.
func TestMultiJobAccountingInvariants(t *testing.T) {
	cdTr := trace.New("cd")
	cdTr.AddAlloc(&directive.Allocate{Arms: []directive.Arm{{PI: 1, X: 6}}})
	for r := 0; r < 120; r++ {
		for i := 0; i < 6; i++ {
			cdTr.AddRef(mem.Page(i))
		}
	}
	jobs := []*Job{
		{Name: "cd", Trace: cdTr, Policy: policy.NewCD(policy.SelectLevel(1), 2)},
		{Name: "ws", Trace: loopTrace("ws", 100, 8, 150), Policy: policy.NewWS(1000)},
		{Name: "lru", Trace: loopTrace("lru", 200, 8, 150), Policy: policy.NewLRU(6)},
	}
	res := RunMulti(jobs, MultiConfig{Frames: 12})

	swaps := 0
	var lastDone int64
	for _, j := range jobs {
		if j.Refs != j.Trace.Refs {
			t.Errorf("job %s served %d refs, trace has %d", j.Name, j.Refs, j.Trace.Refs)
		}
		if j.Faults < j.Trace.Distinct {
			t.Errorf("job %s faults=%d < distinct pages %d", j.Name, j.Faults, j.Trace.Distinct)
		}
		if j.MemSum <= 0 {
			t.Errorf("job %s MemSum=%g, want > 0", j.Name, j.MemSum)
		}
		if mean := j.MEM(); mean < 1 || mean > float64(j.Trace.Distinct) {
			t.Errorf("job %s mean resident %g outside [1, V=%d]", j.Name, mean, j.Trace.Distinct)
		}
		if !jobDone(j) {
			t.Errorf("job %s never finished", j.Name)
		}
		if j.Finished > res.Makespan {
			t.Errorf("job %s finished at %d after makespan %d", j.Name, j.Finished, res.Makespan)
		}
		if j.Finished > lastDone {
			lastDone = j.Finished
		}
		swaps += j.Swaps
	}
	if swaps != res.Swaps {
		t.Errorf("per-job swaps sum to %d, global counter %d", swaps, res.Swaps)
	}
	if res.Swaps == 0 {
		t.Error("workload was sized to force pool pressure but no swaps occurred")
	}
	if lastDone != res.Makespan {
		t.Errorf("last completion %d != makespan %d", lastDone, res.Makespan)
	}
}

// TestMultiVictimTieBreakStable pins the swap-victim sequence for jobs
// with equal resident sets: the tie-break is fewest prior swap-outs,
// then declaration order, so the burden rotates a->b->c->a->... instead
// of depending on incidental iteration details (regression for the
// overcommit path's victim selection).
func TestMultiVictimTieBreakStable(t *testing.T) {
	mk := func() []*Job {
		// Identical footprints (8 pages each, disjoint ranges) under a
		// pool that fits only two: every wave of pressure finds all
		// swapped-in bystanders holding the same resident count.
		return []*Job{
			{Name: "a", Trace: loopTrace("a", 0, 8, 3000), Policy: policy.NewWS(4000)},
			{Name: "b", Trace: loopTrace("b", 100, 8, 3000), Policy: policy.NewWS(4000)},
			{Name: "c", Trace: loopTrace("c", 200, 8, 3000), Policy: policy.NewWS(4000)},
		}
	}
	victims := func() []string {
		col := &obs.Collector{}
		RunMulti(mk(), MultiConfig{Frames: 17, Obs: &obs.Observer{Tracer: col}})
		var seq []string
		for _, e := range col.Events {
			if e.Kind == obs.KindSwap && e.Why == "victim" {
				seq = append(seq, e.Job)
			}
		}
		return seq
	}
	seq := victims()
	// Pinned: the first wave rotates through all three in declaration
	// order (equal residents, equal swap counts), after which a — swapped
	// first — stays resident while b and c alternate.
	want := []string{"a", "b", "c", "b", "c", "b", "c"}
	if !reflect.DeepEqual(seq, want) {
		t.Fatalf("victim sequence changed:\n got %v\nwant %v", seq, want)
	}
	// And stable across runs.
	if again := victims(); !reflect.DeepEqual(seq, again) {
		t.Fatalf("victim sequence not stable:\n%v\nvs\n%v", seq, again)
	}
}
