package vmsim

import (
	"math"
	"testing"
	"testing/quick"

	"cdmm/internal/mem"
	"cdmm/internal/policy"
	"cdmm/internal/trace"
)

// randomTrace builds a deterministic pseudo-random trace with locality
// phases (bursts around a moving base), a realistic shape for sweeps.
func randomTrace(seed uint64, n, universe int) *trace.Trace {
	rng := func() uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed >> 33
	}
	tr := trace.New("rand")
	base := 0
	for i := 0; i < n; i++ {
		if rng()%97 == 0 {
			base = int(rng()) % universe
		}
		span := 4 + int(rng()%8)
		tr.AddRef(mem.Page((base + int(rng())%span) % universe))
	}
	return tr
}

func TestLRUSweepMatchesBrute(t *testing.T) {
	tr := randomTrace(42, 3000, 40)
	sweep := NewLRUSweep(tr)
	brute := SweepLRU(tr, sweep.V)
	for m := 1; m <= sweep.V; m++ {
		b := brute[m-1]
		if got := sweep.Faults(m); got != b.Faults {
			t.Errorf("m=%d: faults %d != brute %d", m, got, b.Faults)
		}
		if got := sweep.MEM(m); math.Abs(got-b.MEM()) > 1e-6 {
			t.Errorf("m=%d: MEM %v != brute %v", m, got, b.MEM())
		}
		if got := sweep.ST(m); math.Abs(got-b.ST()) > 1e-3 {
			t.Errorf("m=%d: ST %v != brute %v", m, got, b.ST())
		}
	}
}

func TestLRUSweepPropertyRandom(t *testing.T) {
	f := func(seed uint16) bool {
		tr := randomTrace(uint64(seed)+1, 600, 24)
		sweep := NewLRUSweep(tr)
		for _, m := range []int{1, 2, 3, 5, 8, sweep.V} {
			b := Run(tr.StripDirectives(), policy.NewLRU(m))
			if sweep.Faults(m) != b.Faults {
				return false
			}
			if math.Abs(sweep.ST(m)-b.ST()) > 1e-3 {
				return false
			}
			if math.Abs(sweep.MEM(m)-b.MEM()) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLRUSweepMinST(t *testing.T) {
	tr := randomTrace(7, 4000, 30)
	sweep := NewLRUSweep(tr)
	m, st := sweep.MinST()
	for mm := 1; mm <= sweep.V; mm++ {
		if sweep.ST(mm) < st {
			t.Fatalf("MinST returned m=%d (%v) but m=%d has %v", m, st, mm, sweep.ST(mm))
		}
	}
}

func TestLRUSweepMinAllocationForFaults(t *testing.T) {
	tr := randomTrace(11, 3000, 25)
	sweep := NewLRUSweep(tr)
	target := sweep.Faults(sweep.V / 2)
	m, ok := sweep.MinAllocationForFaults(target)
	if !ok {
		t.Fatal("target not achievable but it must be (it equals a sweep point)")
	}
	if sweep.Faults(m) > target {
		t.Errorf("m=%d faults %d exceed target %d", m, sweep.Faults(m), target)
	}
	if m > 1 && sweep.Faults(m-1) <= target {
		t.Errorf("m=%d is not minimal: m-1 also achieves the target", m)
	}
	// Unachievable target.
	if _, ok := sweep.MinAllocationForFaults(sweep.V - 1 - sweep.Faults(sweep.V)); ok && sweep.Faults(sweep.V) > sweep.V-1-sweep.Faults(sweep.V) {
		t.Error("unachievable target reported achievable")
	}
}

func TestWSSweepMatchesBrute(t *testing.T) {
	tr := randomTrace(99, 2500, 30)
	sweep := NewWSSweep(tr)
	for _, tau := range []int{1, 2, 3, 5, 10, 25, 80, 300, 2500} {
		b := Run(tr.StripDirectives(), policy.NewWS(tau))
		if got := sweep.Faults(tau); got != b.Faults {
			t.Errorf("tau=%d: faults %d != brute %d", tau, got, b.Faults)
		}
		if got := sweep.MEM(tau); math.Abs(got-b.MEM()) > 1e-6 {
			t.Errorf("tau=%d: MEM %v != brute %v", tau, got, b.MEM())
		}
	}
}

func TestWSSweepPropertyRandom(t *testing.T) {
	f := func(seed uint16) bool {
		tr := randomTrace(uint64(seed)+777, 500, 16)
		sweep := NewWSSweep(tr)
		for _, tau := range []int{1, 3, 7, 20, 100} {
			b := Run(tr.StripDirectives(), policy.NewWS(tau))
			if sweep.Faults(tau) != b.Faults {
				return false
			}
			if math.Abs(sweep.MEM(tau)-b.MEM()) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestWSTauForMEM(t *testing.T) {
	tr := randomTrace(5, 3000, 30)
	sweep := NewWSSweep(tr)
	target := sweep.MEM(40)
	tau := sweep.TauForMEM(target)
	got := sweep.MEM(tau)
	// No other τ should be meaningfully closer.
	for _, other := range []int{tau - 1, tau + 1} {
		if other < 1 {
			continue
		}
		if math.Abs(sweep.MEM(other)-target) < math.Abs(got-target)-1e-12 {
			t.Errorf("τ=%d closer to target than chosen τ=%d", other, tau)
		}
	}
}

func TestWSMinTauForFaults(t *testing.T) {
	tr := randomTrace(13, 2000, 20)
	sweep := NewWSSweep(tr)
	target := sweep.Faults(50)
	tau, ok := sweep.MinTauForFaults(target)
	if !ok {
		t.Fatal("achievable target reported unachievable")
	}
	if sweep.Faults(tau) > target {
		t.Errorf("τ=%d faults %d exceed target %d", tau, sweep.Faults(tau), target)
	}
	if tau > 1 && sweep.Faults(tau-1) <= target {
		t.Errorf("τ=%d not minimal", tau)
	}
	// V first-touches can never be avoided: target below V is unachievable.
	if _, ok := sweep.MinTauForFaults(0); ok {
		t.Error("zero faults reported achievable")
	}
}

func TestWSMinST(t *testing.T) {
	tr := randomTrace(21, 2000, 20)
	sweep := NewWSSweep(tr)
	tau, res := sweep.MinST()
	if res.Faults != sweep.Faults(tau) {
		t.Errorf("result faults %d inconsistent with histogram %d", res.Faults, sweep.Faults(tau))
	}
	// Check a few other ladder points are not better.
	for _, other := range []int{1, 10, 100, 1000} {
		r := sweep.Run(other)
		if r.SpaceTime < res.SpaceTime-1e-9 {
			t.Errorf("τ=%d has ST %v < reported min %v (τ=%d)", other, r.SpaceTime, res.SpaceTime, tau)
		}
	}
}
