package vmsim

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"cdmm/internal/mem"
	"cdmm/internal/policy"
	"cdmm/internal/trace"
	"cdmm/internal/workloads"
)

// End-to-end differential for the block-stepped streaming plane: on every
// built-in workload (and randomized traces), the simulator must produce
// the identical Result — and the identical eviction sequence — whether
// the policy replays through StepBlock (the hot path), through the
// generic per-reference loop (the oracle, forced by a wrapper hiding the
// fast-path interfaces), or streamed chunk by chunk from an on-disk CDT3
// file.

// perRefOnly hides Stepper and BlockStepper so runBlocks takes the
// generic Ref/Resident/Charge path, while Unwrap keeps AsCD and the
// page hints seeing the real policy.
type perRefOnly struct {
	inner policy.Policy
}

func (w *perRefOnly) Name() string                 { return w.inner.Name() }
func (w *perRefOnly) Ref(pg mem.Page) bool         { return w.inner.Ref(pg) }
func (w *perRefOnly) Resident() int                { return w.inner.Resident() }
func (w *perRefOnly) Alloc(d trace.AllocDirective) { w.inner.Alloc(d) }
func (w *perRefOnly) Lock(ls trace.LockSet)        { w.inner.Lock(ls) }
func (w *perRefOnly) Unlock(pages []mem.Page)      { w.inner.Unlock(pages) }
func (w *perRefOnly) Reset()                       { w.inner.Reset() }
func (w *perRefOnly) Charged() int                 { return policy.Charge(w.inner) }
func (w *perRefOnly) Unwrap() policy.Policy        { return w.inner }
func (w *perRefOnly) SetEvictHook(fn func(pg mem.Page)) {
	w.inner.(policy.EvictObserver).SetEvictHook(fn)
}

// hookEvictions installs an eviction recorder when the policy supports
// one (the hook survives Reset, so installing before Run is safe).
func hookEvictions(p policy.Policy) *[]mem.Page {
	seq := &[]mem.Page{}
	if eo, ok := p.(policy.EvictObserver); ok {
		eo.SetEvictHook(func(pg mem.Page) { *seq = append(*seq, pg) })
	}
	return seq
}

// sameResult compares every index the simulator accumulates.
func sameResult(t *testing.T, tag string, got, want Result) {
	t.Helper()
	if got != want {
		t.Fatalf("%s:\n got %+v\nwant %+v", tag, got, want)
	}
}

func sameEvictions(t *testing.T, tag string, got, want []mem.Page) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d evictions, want %d", tag, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: eviction %d = %d, want %d", tag, i, got[i], want[i])
		}
	}
}

// writeCDT3Temp writes tr to a CDT3 file with small chunks, so the
// streamed replay crosses many chunk boundaries.
func writeCDT3Temp(t *testing.T, tr *trace.Trace) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), tr.Name+".cdt3")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.WriteCDT3(f, tr, 512); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// runThreeWays replays tr under three fresh policies from mk — block
// path, forced per-ref path, streamed CDT3 file — and asserts identical
// Results and eviction sequences.
func runThreeWays(t *testing.T, tag string, tr *trace.Trace, cdt3 string, mk func() policy.Policy) {
	t.Helper()
	pBlock := mk()
	evBlock := hookEvictions(pBlock)
	resBlock := Run(tr, pBlock)

	pRef := mk()
	wrapped := &perRefOnly{inner: pRef}
	var evRef *[]mem.Page
	if _, ok := pRef.(policy.EvictObserver); ok {
		evRef = hookEvictions(policy.Policy(wrapped))
	} else {
		evRef = &[]mem.Page{}
	}
	resRef := Run(tr, wrapped)

	src, err := trace.OpenCDT3(cdt3)
	if err != nil {
		t.Fatal(err)
	}
	pStream := mk()
	evStream := hookEvictions(pStream)
	resStream, err := RunSource(src, pStream, nil)
	if err != nil {
		t.Fatalf("%s: streamed replay failed: %v", tag, err)
	}

	sameResult(t, tag+": block vs per-ref", resBlock, resRef)
	sameResult(t, tag+": block vs streamed", resBlock, resStream)
	sameEvictions(t, tag+": block vs per-ref", *evBlock, *evRef)
	sameEvictions(t, tag+": block vs streamed", *evBlock, *evStream)
}

// TestBlockStepAllWorkloads runs the three-way differential on every
// built-in workload under CD, LRU, FIFO, WS and DWS.
func TestBlockStepAllWorkloads(t *testing.T) {
	progs := workloads.All()
	if len(progs) < 9 {
		t.Fatalf("workload suite shrank: %d programs", len(progs))
	}
	for _, p := range progs {
		c, err := workloads.Compile(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		tr := c.Trace
		cdt3 := writeCDT3Temp(t, tr)
		sel := c.Program.DefaultSet().Selector()
		v := c.V()
		for _, pc := range []struct {
			name string
			mk   func() policy.Policy
		}{
			{"CD", func() policy.Policy { return policy.NewCD(sel, 2) }},
			{"LRU", func() policy.Policy { return policy.NewLRU(v/2 + 1) }},
			{"FIFO", func() policy.Policy { return policy.NewFIFO(v/3 + 1) }},
			{"WS", func() policy.Policy { return policy.NewWS(200) }},
			{"DWS", func() policy.Policy { return policy.NewDWS(150, 10) }},
		} {
			runThreeWays(t, p.Name+"/"+pc.name, tr, cdt3, pc.mk)
		}
	}
}

// TestBlockStepRandomTraces repeats the differential on randomized
// reference strings (locality runs plus uniform jumps, no directives) at
// several allocations, so trace shapes the workload suite never produces
// are covered too.
func TestBlockStepRandomTraces(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		r := rand.New(rand.NewSource(seed))
		tr := trace.New(fmt.Sprintf("RAND%d", seed))
		pg := mem.Page(r.Intn(64))
		for i := 0; i < 5000; i++ {
			switch r.Intn(10) {
			case 0:
				pg = mem.Page(r.Intn(512)) // jump, possibly far
			case 1, 2:
				if pg > 0 {
					pg--
				}
			default:
				pg++ // sequential run
			}
			tr.AddRef(pg)
		}
		cdt3 := writeCDT3Temp(t, tr)
		// Draw the policy parameters once so all three paths replay the
		// identical configuration.
		frames := 1 + r.Intn(40)
		tau := 1 + r.Intn(400)
		damp := 1 + r.Intn(20)
		for _, pc := range []struct {
			name string
			mk   func() policy.Policy
		}{
			{"LRU", func() policy.Policy { return policy.NewLRU(frames) }},
			{"FIFO", func() policy.Policy { return policy.NewFIFO(frames) }},
			{"WS", func() policy.Policy { return policy.NewWS(tau) }},
			{"DWS", func() policy.Policy { return policy.NewDWS(tau, damp) }},
		} {
			runThreeWays(t, fmt.Sprintf("%s/%s", tr.Name, pc.name), tr, cdt3, pc.mk)
		}
	}
}
