package advisor

import (
	"strings"
	"testing"

	"cdmm/internal/fortran"
	"cdmm/internal/locality"
	"cdmm/internal/mem"
	"cdmm/internal/sem"
)

func analyze(t *testing.T, src string, opts Options) []Finding {
	t.Helper()
	prog, err := fortran.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	layout, err := mem.NewLayout(prog, mem.DefaultGeometry)
	if err != nil {
		t.Fatalf("layout: %v", err)
	}
	return Analyze(locality.Analyze(info, layout, locality.DefaultParams), opts)
}

func TestInterchangeCandidate(t *testing.T) {
	findings := analyze(t, `
PROGRAM P
DIMENSION A(128,16)
DO I = 1, 128
  DO J = 1, 16
    A(I,J) = 0.0
  END DO
END DO
END
`, Options{})
	if len(findings) != 1 {
		t.Fatalf("findings = %d, want 1: %+v", len(findings), findings)
	}
	f := findings[0]
	if f.Kind != InterchangeCandidate {
		t.Errorf("kind = %v, want interchange-candidate", f.Kind)
	}
	if f.Array != "A" {
		t.Errorf("array = %s, want A", f.Array)
	}
	if f.Inner == nil || f.Outer == nil || f.Inner.Parent != f.Outer {
		t.Error("inner/outer loops not identified")
	}
}

func TestColumnWiseCleanNest(t *testing.T) {
	findings := analyze(t, `
PROGRAM P
DIMENSION A(128,16)
DO J = 1, 16
  DO I = 1, 128
    A(I,J) = 0.0
  END DO
END DO
END
`, Options{})
	if len(findings) != 0 {
		t.Errorf("column-wise nest should be clean, got %+v", findings)
	}
}

func TestRowWiseNonAdjacent(t *testing.T) {
	// The row index comes from a loop two levels out: reported as a plain
	// row-wise traversal, not an interchange candidate.
	findings := analyze(t, `
PROGRAM P
DIMENSION A(128,16)
DO I = 1, 128
  DO K = 1, 2
    DO J = 1, 16
      A(I,J) = FLOAT(K)
    END DO
  END DO
END DO
END
`, Options{})
	if len(findings) != 1 {
		t.Fatalf("findings = %d, want 1: %+v", len(findings), findings)
	}
	if findings[0].Kind != RowWiseTraversal {
		t.Errorf("kind = %v, want row-wise-traversal", findings[0].Kind)
	}
}

func TestLargeLocalityBudget(t *testing.T) {
	// The K loop re-references the whole 157-page array every iteration.
	findings := analyze(t, `
PROGRAM P
DIMENSION A(100,100)
DO K = 1, 3
  DO J = 1, 100
    DO I = 1, 100
      A(I,J) = A(I,J) + 1.0
    END DO
  END DO
END DO
END
`, Options{LocalityBudget: 100})
	var large int
	for _, f := range findings {
		if f.Kind == LargeLocality {
			large++
			if f.Pages <= 100 {
				t.Errorf("large-locality finding with %d pages under budget", f.Pages)
			}
		}
	}
	if large == 0 {
		t.Errorf("expected a large-locality finding, got %+v", findings)
	}
}

func TestFindingsSortedByLine(t *testing.T) {
	findings := analyze(t, `
PROGRAM P
DIMENSION A(128,16), B(128,16)
DO I = 1, 128
  DO J = 1, 16
    A(I,J) = 0.0
  END DO
END DO
DO I2 = 1, 128
  DO J2 = 1, 16
    B(I2,J2) = 0.0
  END DO
END DO
END
`, Options{})
	if len(findings) != 2 {
		t.Fatalf("findings = %d, want 2", len(findings))
	}
	if findings[0].Line >= findings[1].Line {
		t.Errorf("findings not sorted by line: %d, %d", findings[0].Line, findings[1].Line)
	}
}

func TestRender(t *testing.T) {
	findings := analyze(t, `
PROGRAM P
DIMENSION A(128,16)
DO I = 1, 128
  DO J = 1, 16
    A(I,J) = 0.0
  END DO
END DO
END
`, Options{})
	out := Render(findings)
	if !strings.Contains(out, "interchange") {
		t.Errorf("rendering missing interchange advice:\n%s", out)
	}
	if got := Render(nil); got != "no findings\n" {
		t.Errorf("empty rendering = %q", got)
	}
}

// TestInterchangeActuallyHelps verifies the advice is sound: the suggested
// column-wise version of a flagged nest produces far fewer faults at a
// small allocation than the row-wise original.
func TestInterchangeActuallyHelps(t *testing.T) {
	rowwise := `
PROGRAM P
DIMENSION A(128,16)
DO I = 1, 128
  DO J = 1, 16
    A(I,J) = 1.0
  END DO
END DO
END
`
	colwise := `
PROGRAM P
DIMENSION A(128,16)
DO J = 1, 16
  DO I = 1, 128
    A(I,J) = 1.0
  END DO
END DO
END
`
	faults := func(src string) int {
		prog, err := fortran.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		layout, err := mem.NewLayout(prog, mem.DefaultGeometry)
		if err != nil {
			t.Fatal(err)
		}
		// Simulate with a 4-frame LRU directly over the element order.
		resident := map[mem.Page]int{}
		lru := 0
		pf := 0
		var touch func(row, col int)
		touch = func(row, col int) {
			p, err := layout.PageOf("A", row, col)
			if err != nil {
				t.Fatal(err)
			}
			lru++
			if _, ok := resident[p]; !ok {
				pf++
				if len(resident) >= 4 {
					// evict LRU
					var victim mem.Page
					best := 1 << 62
					for q, at := range resident {
						if at < best {
							best, victim = at, q
						}
					}
					delete(resident, victim)
				}
			}
			resident[p] = lru
		}
		if strings.Contains(src, "DO I = 1, 128\n  DO J") {
			for i := 1; i <= 128; i++ {
				for j := 1; j <= 16; j++ {
					touch(i, j)
				}
			}
		} else {
			for j := 1; j <= 16; j++ {
				for i := 1; i <= 128; i++ {
					touch(i, j)
				}
			}
		}
		return pf
	}
	rw, cw := faults(rowwise), faults(colwise)
	if cw*10 > rw {
		t.Errorf("interchange should cut faults by >10x: row-wise %d, column-wise %d", rw, cw)
	}
}
