// Package advisor turns the paper's §2 observations into compiler
// diagnostics: row-wise array references (the column-major storage
// anti-pattern whose pages are "not likely to be referenced during the
// next iteration") are flagged with a loop-interchange suggestion, and
// loops whose locality exceeds a memory budget are reported. The paper
// stops at describing localities to the operating system; this pass is the
// complementary compiler-side use of the same analysis — advising the
// programmer to restructure so the localities themselves shrink.
package advisor

import (
	"fmt"
	"sort"
	"strings"

	"cdmm/internal/locality"
	"cdmm/internal/sem"
)

// Kind classifies a finding.
type Kind int

const (
	// InterchangeCandidate: a 2-D array is traversed row-wise by an inner
	// loop while the row index comes from an outer loop in the same nest;
	// interchanging the two loops would make the traversal column-wise.
	InterchangeCandidate Kind = iota
	// RowWiseTraversal: a row-wise traversal whose loops cannot simply be
	// interchanged (the row subscript is loop-invariant or comes from a
	// non-adjacent level); flagged informationally.
	RowWiseTraversal
	// LargeLocality: a loop's locality exceeds the advisory budget.
	LargeLocality
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case InterchangeCandidate:
		return "interchange-candidate"
	case RowWiseTraversal:
		return "row-wise-traversal"
	case LargeLocality:
		return "large-locality"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Finding is one diagnostic.
type Finding struct {
	Kind  Kind
	Array string    // for the reference findings
	Loop  *sem.Loop // the loop the finding is attached to
	Inner *sem.Loop // for interchange: the traversal loop
	Outer *sem.Loop // for interchange: the row-selecting loop
	Pages int       // for LargeLocality: the locality size
	Line  int
	Msg   string
}

// Options configures the advisor.
type Options struct {
	// LocalityBudget is the page threshold above which a loop locality is
	// reported. 0 means 64 (one quarter of a era-typical 64 KiB memory at
	// 256-byte pages).
	LocalityBudget int
}

// Analyze produces the findings for an analyzed program, ordered by
// source line.
func Analyze(a *locality.Analysis, opts Options) []Finding {
	if opts.LocalityBudget == 0 {
		opts.LocalityBudget = 64
	}
	var out []Finding

	for _, g := range a.Groups {
		if g.Order != sem.OrderRowWise {
			continue
		}
		line := g.Refs[0].Ref.Line
		inner := g.Deep // drives the column subscript (the traversal)
		outer := g.Shallow
		if outer != nil && inner.Parent == outer && sameNestSimple(inner) {
			out = append(out, Finding{
				Kind:  InterchangeCandidate,
				Array: g.Array,
				Loop:  g.Loop,
				Inner: inner,
				Outer: outer,
				Line:  line,
				Msg: fmt.Sprintf(
					"line %d: %s is traversed row-wise by the %s/%s nest; interchanging the loops makes the traversal column-wise (stride 1)",
					line, g.Array, outer.Label(), inner.Label()),
			})
		} else {
			out = append(out, Finding{
				Kind:  RowWiseTraversal,
				Array: g.Array,
				Loop:  g.Loop,
				Inner: inner,
				Outer: outer,
				Line:  line,
				Msg: fmt.Sprintf(
					"line %d: %s is referenced row-wise in %s (column-major storage walks with stride M); consider restructuring",
					line, g.Array, g.Loop.Label()),
			})
		}
	}

	for _, l := range a.Info.Loops {
		if x := a.ActiveSize(l); x > opts.LocalityBudget {
			out = append(out, Finding{
				Kind:  LargeLocality,
				Loop:  l,
				Pages: x,
				Line:  l.Stmt.Line,
				Msg: fmt.Sprintf(
					"line %d: %s requires a %d-page locality (budget %d); its ALLOCATE request may be hard to grant under contention",
					l.Stmt.Line, l.Label(), x, opts.LocalityBudget),
			})
		}
	}

	sort.Slice(out, func(i, j int) bool {
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// sameNestSimple reports whether the loop is a plain innermost loop whose
// body carries no other nested loops — the easy interchange case. (A full
// dependence test is out of scope; the advisory is conservative about
// when it uses the word "interchange".)
func sameNestSimple(l *sem.Loop) bool { return l.IsLeaf() }

// Render formats the findings as compiler-style diagnostics.
func Render(findings []Finding) string {
	if len(findings) == 0 {
		return "no findings\n"
	}
	var b strings.Builder
	for _, f := range findings {
		fmt.Fprintf(&b, "[%s] %s\n", f.Kind, f.Msg)
	}
	return b.String()
}
