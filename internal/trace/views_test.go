package trace

import (
	"testing"

	"cdmm/internal/directive"
	"cdmm/internal/mem"
)

func buildMixedTrace() *Trace {
	tr := New("mixed")
	d := &directive.Allocate{Arms: []directive.Arm{{PI: 1, X: 3}}}
	tr.AddRef(5)
	tr.AddRef(2)
	tr.AddAlloc(d)
	tr.AddRef(5)
	tr.AddLock(1, 0, []mem.Page{5})
	tr.AddRef(9)
	tr.AddUnlock([]mem.Page{5})
	tr.AddRef(2)
	return tr
}

// TestPagesMemoized: repeated Pages() calls return the identical shared
// slice, and appending an event invalidates the memo.
func TestPagesMemoized(t *testing.T) {
	tr := buildMixedTrace()
	p1 := tr.Pages()
	p2 := tr.Pages()
	if len(p1) != 5 {
		t.Fatalf("Pages len=%d, want 5", len(p1))
	}
	if &p1[0] != &p2[0] {
		t.Fatal("Pages() returned distinct slices across calls")
	}
	if tr.MaxPage() != 9 {
		t.Fatalf("MaxPage=%d, want 9", tr.MaxPage())
	}

	tr.AddRef(11)
	p3 := tr.Pages()
	if len(p3) != 6 || p3[5] != 11 {
		t.Fatalf("Pages after AddRef = %v, want trailing 11", p3)
	}
	if tr.MaxPage() != 11 {
		t.Fatalf("MaxPage after AddRef=%d, want 11", tr.MaxPage())
	}
}

// TestUniverse checks the dense-id view: IDs parallel to the reference
// string, ByID in first-appearance order.
func TestUniverse(t *testing.T) {
	tr := buildMixedTrace()
	u := tr.Universe()
	if u.NumPages != 3 {
		t.Fatalf("NumPages=%d, want 3", u.NumPages)
	}
	if u.MaxPage != 9 {
		t.Fatalf("Universe MaxPage=%d, want 9", u.MaxPage)
	}
	wantByID := []mem.Page{5, 2, 9}
	for i, pg := range wantByID {
		if u.ByID[i] != pg {
			t.Fatalf("ByID=%v, want %v", u.ByID, wantByID)
		}
	}
	wantIDs := []int32{0, 1, 0, 2, 1}
	for i, id := range wantIDs {
		if u.IDs[i] != id {
			t.Fatalf("IDs=%v, want %v", u.IDs, wantIDs)
		}
	}
	if u2 := tr.Universe(); u2 != u {
		t.Fatal("Universe() not memoized")
	}
}

// TestRefsOnly: a trace with directives yields a shared directive-free
// view; a directive-free trace returns itself; the view shares the
// parent's memoized reference string.
func TestRefsOnly(t *testing.T) {
	tr := buildMixedTrace()
	ro := tr.RefsOnly()
	if ro == tr {
		t.Fatal("RefsOnly returned the original trace despite directives")
	}
	if ro.Refs != 5 || len(ro.Events) != 5 {
		t.Fatalf("RefsOnly Refs=%d events=%d, want 5/5", ro.Refs, len(ro.Events))
	}
	for _, e := range ro.Events {
		if e.Kind != EvRef {
			t.Fatalf("RefsOnly kept a directive event: %v", e)
		}
	}
	if ro.Distinct != tr.Distinct {
		t.Fatalf("RefsOnly Distinct=%d, want %d", ro.Distinct, tr.Distinct)
	}
	if ro2 := tr.RefsOnly(); ro2 != ro {
		t.Fatal("RefsOnly() not memoized")
	}
	// The child's view shares the parent's pages slice and universe.
	pp, cp := tr.Pages(), ro.Pages()
	if &pp[0] != &cp[0] {
		t.Fatal("RefsOnly view does not share the parent reference string")
	}
	if tr.Universe() != ro.Universe() {
		t.Fatal("RefsOnly view does not share the parent universe")
	}
	if ro.RefsOnly() != ro {
		t.Fatal("RefsOnly of a refs-only view should return itself")
	}

	pure := New("pure")
	pure.AddRef(1)
	pure.AddRef(2)
	if pure.RefsOnly() != pure {
		t.Fatal("directive-free trace should return itself from RefsOnly")
	}
}

// TestRefsOnlyMatchesStripDirectives pins the fast shared view to the
// slow private copy.
func TestRefsOnlyMatchesStripDirectives(t *testing.T) {
	tr := buildMixedTrace()
	ro, st := tr.RefsOnly(), tr.StripDirectives()
	if ro.Refs != st.Refs || ro.Distinct != st.Distinct {
		t.Fatalf("RefsOnly (R=%d V=%d) != StripDirectives (R=%d V=%d)",
			ro.Refs, ro.Distinct, st.Refs, st.Distinct)
	}
	for i := range st.Events {
		if ro.Events[i] != st.Events[i] {
			t.Fatalf("event %d: RefsOnly %v != StripDirectives %v", i, ro.Events[i], st.Events[i])
		}
	}
}

// TestViewsConcurrent hammers the memoized views from multiple goroutines
// (run under -race).
func TestViewsConcurrent(t *testing.T) {
	tr := buildMixedTrace()
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 100; j++ {
				_ = tr.Pages()
				_ = tr.MaxPage()
				_ = tr.Universe()
				_ = tr.RefsOnly()
			}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
}
