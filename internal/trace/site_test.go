package trace

import (
	"bytes"
	"testing"

	"cdmm/internal/mem"
)

// siteTrace builds a small trace with two sites and an unattributed
// prefix: 2 events before the column exists, then 3 refs at site A, a
// lock at site B, and 2 refs at site A again.
func siteTrace(t *testing.T) *Trace {
	t.Helper()
	tr := New("sited")
	tr.AddRef(1)
	tr.AddRef(2)
	a := tr.AddSite(Site{Nest: "DO 40 / DO 30", Line: 12, Array: "A", Expr: "A(I,J)"})
	b := tr.AddSite(Site{Nest: "DO 40", Line: 10, Expr: "LOCK"})
	tr.SetSite(a)
	tr.AddRef(3)
	tr.AddRef(3)
	tr.AddRef(4)
	tr.SetSite(b)
	tr.AddLock(1, 7, []mem.Page{3})
	tr.SetSite(a)
	tr.AddRef(5)
	tr.AddRef(1)
	return tr
}

// expectSites walks tr's cursor and compares against want, one id per
// event.
func expectSites(t *testing.T, tr *Trace, want []int32) {
	t.Helper()
	if len(want) != len(tr.Events) {
		t.Fatalf("want list has %d entries for %d events", len(want), len(tr.Events))
	}
	cur := tr.SiteCursor()
	for i, w := range want {
		if got := cur.Next(); got != w {
			t.Fatalf("event %d: site = %d, want %d", i, got, w)
		}
	}
	if got := cur.Next(); got != NoSite {
		t.Fatalf("cursor past the end returned %d, want NoSite", got)
	}
}

func TestSiteColumnRLEAndBackfill(t *testing.T) {
	tr := siteTrace(t)
	if !tr.HasSites() {
		t.Fatal("HasSites = false after SetSite")
	}
	expectSites(t, tr, []int32{NoSite, NoSite, 0, 0, 0, 1, 0, 0})
	// The column must have collapsed consecutive same-site events.
	if len(tr.siteRuns) != 4 {
		t.Fatalf("siteRuns = %v, want 4 runs", tr.siteRuns)
	}
}

func TestSiteColumnAbsentByDefault(t *testing.T) {
	tr := New("plain")
	tr.AddRef(1)
	tr.AddLock(1, 0, []mem.Page{1})
	if tr.HasSites() {
		t.Fatal("HasSites = true on a trace never given a site")
	}
	expectSites(t, tr, []int32{NoSite, NoSite})
	if len(tr.siteRuns) != 0 {
		t.Fatalf("siteRuns = %v on a column-less trace", tr.siteRuns)
	}
}

func TestSiteRoundTrip(t *testing.T) {
	tr := siteTrace(t)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.Bytes()[:4]; string(got) != traceMagicV2 {
		t.Fatalf("magic = %q, want %q", got, traceMagicV2)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.HasSites() {
		t.Fatal("decoded trace lost its site column")
	}
	if len(back.Sites) != len(tr.Sites) {
		t.Fatalf("decoded %d sites, want %d", len(back.Sites), len(tr.Sites))
	}
	for i := range tr.Sites {
		if back.Sites[i] != tr.Sites[i] {
			t.Fatalf("site %d = %+v, want %+v", i, back.Sites[i], tr.Sites[i])
		}
	}
	expectSites(t, back, []int32{NoSite, NoSite, 0, 0, 0, 1, 0, 0})
}

// TestSiteFreeEncodingUnchanged pins the byte-compat contract: a trace
// without a site column writes exactly the CDT1 bytes it always has,
// and the WithoutSites view of a sited trace writes those same bytes.
func TestSiteFreeEncodingUnchanged(t *testing.T) {
	plain := New("p")
	plain.AddRef(1)
	plain.AddRef(2)
	plain.AddRef(1)
	var want bytes.Buffer
	if _, err := plain.WriteTo(&want); err != nil {
		t.Fatal(err)
	}
	if got := want.Bytes()[:4]; string(got) != traceMagic {
		t.Fatalf("magic = %q, want %q", got, traceMagic)
	}

	sited := New("p")
	sited.SetSite(sited.AddSite(Site{Nest: "DO 1", Line: 1, Array: "A", Expr: "A(I)"}))
	sited.AddRef(1)
	sited.AddRef(2)
	sited.AddRef(1)
	var got bytes.Buffer
	if _, err := sited.WithoutSites().WriteTo(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("WithoutSites encoding differs from a never-sited trace")
	}
}

func TestSiteDecodeRejectsBadRuns(t *testing.T) {
	tr := siteTrace(t)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Truncate the last byte: the final run is cut short.
	raw := buf.Bytes()
	if _, err := Read(bytes.NewReader(raw[:len(raw)-1])); err == nil {
		t.Fatal("decoding a truncated site section succeeded")
	}
}

func TestRefsOnlyProjectsSites(t *testing.T) {
	tr := siteTrace(t)
	ro := tr.RefsOnly()
	if !ro.HasSites() {
		t.Fatal("RefsOnly dropped the site column")
	}
	if ro.Refs != 7 || len(ro.Events) != 7 {
		t.Fatalf("RefsOnly has %d refs / %d events, want 7/7", ro.Refs, len(ro.Events))
	}
	expectSites(t, ro, []int32{NoSite, NoSite, 0, 0, 0, 0, 0})
}

func TestStripDirectivesKeepsSites(t *testing.T) {
	tr := siteTrace(t)
	sd := tr.StripDirectives()
	if !sd.HasSites() {
		t.Fatal("StripDirectives dropped the site column")
	}
	expectSites(t, sd, []int32{NoSite, NoSite, 0, 0, 0, 0, 0})
	// The copy owns its site table.
	sd.Sites[0].Array = "B"
	if tr.Sites[0].Array != "A" {
		t.Fatal("StripDirectives shares the parent's site table")
	}
}

func TestWithoutSitesSharesEventsOnly(t *testing.T) {
	tr := siteTrace(t)
	bare := tr.WithoutSites()
	if bare.HasSites() {
		t.Fatal("WithoutSites still reports a site column")
	}
	if bare.Refs != tr.Refs || bare.Distinct != tr.Distinct || len(bare.Events) != len(tr.Events) {
		t.Fatal("WithoutSites changed the event stream")
	}
	expectSites(t, bare, []int32{NoSite, NoSite, NoSite, NoSite, NoSite, NoSite, NoSite, NoSite})
	plain := New("p")
	if plain.WithoutSites() != plain {
		t.Fatal("WithoutSites on a column-less trace did not return the trace itself")
	}
}
