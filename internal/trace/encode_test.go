package trace

import (
	"bytes"
	"strings"
	"testing"

	"cdmm/internal/directive"
	"cdmm/internal/mem"
)

func sampleTrace() *Trace {
	tr := New("SAMPLE")
	d1 := &directive.Allocate{Arms: []directive.Arm{{PI: 3, X: 111}, {PI: 1, X: 4}}}
	d2 := &directive.Allocate{Arms: []directive.Arm{{PI: 2, X: 40}}}
	tr.AddAlloc(d1)
	tr.AddRef(0)
	tr.AddRef(5)
	tr.AddLock(2, 7, []mem.Page{5, 6})
	tr.AddAlloc(d2)
	for i := 0; i < 100; i++ {
		tr.AddRef(mem.Page(i % 9))
	}
	tr.AddUnlock([]mem.Page{5, 6})
	return tr
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	n, err := tr.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo returned %d, wrote %d", n, buf.Len())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name {
		t.Errorf("name = %q, want %q", got.Name, tr.Name)
	}
	if got.Refs != tr.Refs || got.Distinct != tr.Distinct {
		t.Errorf("counters = %d/%d, want %d/%d", got.Refs, got.Distinct, tr.Refs, tr.Distinct)
	}
	if len(got.Events) != len(tr.Events) {
		t.Fatalf("events = %d, want %d", len(got.Events), len(tr.Events))
	}
	for i := range tr.Events {
		if got.Events[i] != tr.Events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got.Events[i], tr.Events[i])
		}
	}
	// Side tables.
	if len(got.Allocs) != 2 || got.Allocs[0].Arms[0].X != 111 {
		t.Errorf("alloc table wrong: %+v", got.Allocs)
	}
	if len(got.LockSets) != 1 || got.LockSets[0].PJ != 2 || got.LockSets[0].Pages[1] != 6 {
		t.Errorf("lock table wrong: %+v", got.LockSets)
	}
	if len(got.UnlockSets) != 1 || len(got.UnlockSets[0]) != 2 {
		t.Errorf("unlock table wrong: %+v", got.UnlockSets)
	}
}

func TestEncodeCompact(t *testing.T) {
	tr := New("C")
	for i := 0; i < 10000; i++ {
		tr.AddRef(mem.Page(i % 50))
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Pages < 128 cost 2 bytes per event (kind + 1-byte varint).
	if buf.Len() > 2*10000+200 {
		t.Errorf("encoding too large: %d bytes for 10000 refs", buf.Len())
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOPE1234"),
		"truncated": []byte("CDT1\x02AB\x00"),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Read(bytes.NewReader(data)); err == nil {
				t.Error("expected decode error")
			}
		})
	}
}

func TestDecodeRejectsBadEventIndex(t *testing.T) {
	tr := New("X")
	tr.AddRef(1)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt the final event into an EvAlloc pointing at an empty table.
	data := buf.Bytes()
	data[len(data)-2] = byte(EvAlloc)
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Error("expected out-of-range index error")
	}
}

func TestDecodeRejectsHugeString(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("CDT1")
	// A name length of 2^30.
	buf.Write([]byte{0x80, 0x80, 0x80, 0x80, 0x04})
	if _, err := Read(&buf); err == nil || !strings.Contains(err.Error(), "too large") {
		t.Errorf("expected length guard error, got %v", err)
	}
}
