package trace

import "fmt"

// Repeat returns a Source that replays src's page references n times,
// dropping directive events and the site column. The repetition opens a
// fresh cursor over src for every pass, so encoding a repeated source to
// CDT3 — or replaying it — stays O(chunk) in memory no matter how large
// the product stream is. That is its purpose: synthesizing multi-GB
// reference streams from a small base trace for streaming and
// memory-ceiling tests, where directives would make the concatenation
// semantics ambiguous (locks would pile up pass over pass) but a pure
// reference string concatenates cleanly.
func Repeat(src Source, n int) Source {
	if n < 1 {
		n = 1
	}
	return &repeatSource{src: src, n: n}
}

type repeatSource struct {
	src Source
	n   int
}

// Meta implements Source. The repeated stream is directive-free, so
// Events equals Refs; the page universe is src's reference universe.
func (r *repeatSource) Meta() Meta {
	m := r.src.Meta()
	return Meta{
		Name:     fmt.Sprintf("%sx%d", m.Name, r.n),
		Events:   m.Refs * r.n,
		Refs:     m.Refs * r.n,
		Distinct: m.Distinct,
		MaxPage:  m.MaxPage,
		HasSites: false,
	}
}

// Tables implements Source: a directive-free stream has empty tables.
func (r *repeatSource) Tables() *SideTables { return &SideTables{} }

// Blocks implements Source.
func (r *repeatSource) Blocks(opts CursorOpts) Cursor {
	return &repeatCursor{
		src:  r.src,
		opts: CursorOpts{MaxBlock: opts.MaxBlock},
		n:    r.n,
	}
}

// repeatCursor chains n single-pass cursors over the base source,
// stripping directive events and sites from every block.
type repeatCursor struct {
	src  Source
	opts CursorOpts
	n    int

	pass   int
	cur    Cursor
	err    error
	closed bool
}

// Next implements Cursor.
func (c *repeatCursor) Next(b *Block) bool {
	for {
		if c.err != nil || c.closed || c.pass >= c.n {
			return false
		}
		if c.cur == nil {
			c.cur = c.src.Blocks(c.opts)
		}
		if c.cur.Next(b) {
			b.Sites = nil
			b.HasDir = false
			b.DirSite = NoSite
			if len(b.Pages) == 0 {
				continue // was a directive-only block; nothing left
			}
			return true
		}
		err := c.cur.Err()
		_ = c.cur.Close()
		c.cur = nil
		if err != nil {
			c.err = err
			return false
		}
		c.pass++
	}
}

// Err implements Cursor.
func (c *repeatCursor) Err() error { return c.err }

// Close implements Cursor.
func (c *repeatCursor) Close() error {
	c.closed = true
	if c.cur != nil {
		err := c.cur.Close()
		c.cur = nil
		return err
	}
	return nil
}

var _ Source = (*repeatSource)(nil)
var _ Cursor = (*repeatCursor)(nil)
