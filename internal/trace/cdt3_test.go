package trace

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"cdmm/internal/directive"
	"cdmm/internal/mem"
)

// sitedSampleTrace is sampleTrace with a site column: attributed runs,
// unattributed stretches, and a directive site, so the RLE re-merge
// across chunk boundaries is exercised.
func sitedSampleTrace() *Trace {
	tr := New("SITED")
	sA := tr.AddSite(Site{Nest: "DO 10", Line: 10, Array: "A", Expr: "A(I)"})
	sB := tr.AddSite(Site{Nest: "DO 10 / DO 20", Line: 11, Array: "B", Expr: "B(I,J)"})
	sD := tr.AddSite(Site{Line: 5, Expr: "ALLOCATE"})
	d1 := &directive.Allocate{Arms: []directive.Arm{{PI: 3, X: 111}, {PI: 1, X: 4}}}
	tr.SetSite(sD)
	tr.AddAlloc(d1)
	tr.SetSite(sA)
	for i := 0; i < 40; i++ {
		tr.AddRef(mem.Page(i % 7))
	}
	tr.SetSite(NoSite)
	tr.AddRef(99)
	tr.AddLock(2, 7, []mem.Page{5, 6})
	tr.SetSite(sB)
	for i := 0; i < 60; i++ {
		tr.AddRef(mem.Page(i % 11))
	}
	tr.AddUnlock([]mem.Page{5, 6})
	return tr
}

// encodeCDT3 writes src at the given chunk size and fails the test on
// error.
func encodeCDT3(t *testing.T, src Source, chunk int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := WriteCDT3(&buf, src, chunk); err != nil {
		t.Fatalf("WriteCDT3: %v", err)
	}
	return buf.Bytes()
}

// flattenSource replays src through a cursor and rebuilds the row view:
// the event stream plus (when requested) the per-event site ids.
func flattenSource(t *testing.T, src Source, opts CursorOpts) (events []Event, sites []int32) {
	t.Helper()
	cur := src.Blocks(opts)
	defer cur.Close()
	var b Block
	for cur.Next(&b) {
		if opts.MaxBlock > 0 && len(b.Pages) > opts.MaxBlock {
			t.Fatalf("block of %d pages exceeds MaxBlock=%d", len(b.Pages), opts.MaxBlock)
		}
		for i, pg := range b.Pages {
			events = append(events, Event{Kind: EvRef, Arg: int32(pg)})
			if opts.WithSites {
				site := NoSite
				if b.Sites != nil {
					site = b.Sites[i]
				}
				sites = append(sites, site)
			}
		}
		if b.HasDir {
			events = append(events, b.Dir)
			if opts.WithSites {
				sites = append(sites, b.DirSite)
			}
		}
	}
	if err := cur.Err(); err != nil {
		t.Fatalf("cursor error: %v", err)
	}
	return events, sites
}

// rowSites walks the trace's own site column event by event.
func rowSites(tr *Trace) []int32 {
	c := tr.SiteCursor()
	out := make([]int32, len(tr.Events))
	for i := range out {
		out[i] = c.Next()
	}
	return out
}

func sameEvents(t *testing.T, got, want []Event, tag string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d events, want %d", tag, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: event %d = %+v, want %+v", tag, i, got[i], want[i])
		}
	}
}

func sameSites(t *testing.T, got, want []int32, tag string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d sites, want %d", tag, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: site %d = %d, want %d", tag, i, got[i], want[i])
		}
	}
}

// TestCDT3RoundTrip: encode → decode reproduces the event stream, the
// counters, the side tables and the site column, and re-encoding the
// decoded trace at the same chunk size is byte-identical (the contract
// `cdmm convert -check` relies on).
func TestCDT3RoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		tr   *Trace
	}{
		{"siteless", sampleTrace()},
		{"sited", sitedSampleTrace()},
		{"empty", New("EMPTY")},
	} {
		t.Run(tc.name, func(t *testing.T) {
			raw := encodeCDT3(t, tc.tr, 0)
			got, err := Read(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("Read: %v", err)
			}
			if got.Name != tc.tr.Name || got.Refs != tc.tr.Refs || got.Distinct != tc.tr.Distinct {
				t.Fatalf("decoded %s refs=%d distinct=%d, want %s %d %d",
					got.Name, got.Refs, got.Distinct, tc.tr.Name, tc.tr.Refs, tc.tr.Distinct)
			}
			sameEvents(t, got.Events, tc.tr.Events, "events")
			if got.HasSites() != tc.tr.HasSites() {
				t.Fatalf("HasSites=%v, want %v", got.HasSites(), tc.tr.HasSites())
			}
			if tc.tr.HasSites() {
				sameSites(t, rowSites(got), rowSites(tc.tr), "site column")
				if len(got.Sites) != len(tc.tr.Sites) || got.Sites[0] != tc.tr.Sites[0] {
					t.Fatalf("site table = %+v, want %+v", got.Sites, tc.tr.Sites)
				}
			}
			if len(got.Allocs) != len(tc.tr.Allocs) || len(got.LockSets) != len(tc.tr.LockSets) ||
				len(got.UnlockSets) != len(tc.tr.UnlockSets) {
				t.Fatalf("side tables %d/%d/%d, want %d/%d/%d",
					len(got.Allocs), len(got.LockSets), len(got.UnlockSets),
					len(tc.tr.Allocs), len(tc.tr.LockSets), len(tc.tr.UnlockSets))
			}
			again := encodeCDT3(t, got, 0)
			if !bytes.Equal(again, raw) {
				t.Fatalf("re-encode differs: %d bytes vs %d", len(again), len(raw))
			}
		})
	}
}

// TestCDT3ChunkSplit re-encodes at tiny chunk sizes: the delta column's
// predecessor must carry across chunk boundaries and split site runs
// must re-merge on decode, so every chunk size reproduces the same trace.
func TestCDT3ChunkSplit(t *testing.T) {
	for _, tr := range []*Trace{sampleTrace(), sitedSampleTrace()} {
		for _, chunk := range []int{1, 2, 3, 5, 17, 64} {
			raw := encodeCDT3(t, tr, chunk)
			got, err := Read(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("%s chunk=%d: %v", tr.Name, chunk, err)
			}
			sameEvents(t, got.Events, tr.Events, tr.Name)
			if tr.HasSites() {
				sameSites(t, rowSites(got), rowSites(tr), tr.Name)
			}
			// Determinism: same source, same chunk → same bytes.
			if !bytes.Equal(encodeCDT3(t, got, chunk), raw) {
				t.Fatalf("%s chunk=%d: re-encode differs", tr.Name, chunk)
			}
		}
	}
}

// writeTempCDT3 writes the trace as a CDT3 file under t.TempDir.
func writeTempCDT3(t *testing.T, tr *Trace, chunk int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), tr.Name+".cdt3")
	if err := os.WriteFile(path, encodeCDT3(t, tr, chunk), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCDT3FileSourceStreams: a FileSource cursor must reproduce the
// in-memory cursor's stream exactly — pages, directive order, site ids —
// across chunk sizes and MaxBlock caps, with Meta intact.
func TestCDT3FileSourceStreams(t *testing.T) {
	for _, tr := range []*Trace{sampleTrace(), sitedSampleTrace()} {
		for _, chunk := range []int{3, 64, 0} {
			src, err := OpenCDT3(writeTempCDT3(t, tr, chunk))
			if err != nil {
				t.Fatalf("%s chunk=%d: %v", tr.Name, chunk, err)
			}
			if m := src.Meta(); m != tr.Meta() {
				t.Fatalf("%s chunk=%d: Meta %+v, want %+v", tr.Name, chunk, m, tr.Meta())
			}
			for _, opts := range []CursorOpts{
				{},
				{WithSites: true},
				{MaxBlock: 1},
				{MaxBlock: 7, WithSites: true},
			} {
				wantEv, wantSites := flattenSource(t, tr, opts)
				gotEv, gotSites := flattenSource(t, src, opts)
				tag := tr.Name
				sameEvents(t, gotEv, wantEv, tag)
				sameSites(t, gotSites, wantSites, tag)
			}
		}
	}
}

// TestCDT3FileCursorIndependence: two cursors over one FileSource hold
// independent read positions.
func TestCDT3FileCursorIndependence(t *testing.T) {
	tr := sampleTrace()
	src, err := OpenCDT3(writeTempCDT3(t, tr, 16))
	if err != nil {
		t.Fatal(err)
	}
	c1 := src.Blocks(CursorOpts{MaxBlock: 1})
	defer c1.Close()
	var b Block
	for i := 0; i < 3; i++ {
		if !c1.Next(&b) {
			t.Fatal("c1 exhausted early")
		}
	}
	ev2, _ := flattenSource(t, src, CursorOpts{})
	sameEvents(t, ev2, tr.Events, "fresh cursor after partial read")
	if c1.Err() != nil {
		t.Fatalf("c1 disturbed: %v", c1.Err())
	}
}

// TestCDT3Truncation: every truncation of a valid file either fails to
// open or fails the cursor mid-stream with a *DecodeError — never a
// silent short stream (the trailing terminator chunk guarantees this).
func TestCDT3Truncation(t *testing.T) {
	tr := sitedSampleTrace()
	raw := encodeCDT3(t, tr, 16)
	dir := t.TempDir()
	for cut := 0; cut < len(raw); cut++ {
		path := filepath.Join(dir, "cut.cdt3")
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		src, err := OpenCDT3(path)
		if err != nil {
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("cut=%d: open error is not a *DecodeError: %v", cut, err)
			}
			continue
		}
		cur := src.Blocks(CursorOpts{})
		var b Block
		for cur.Next(&b) {
		}
		err = cur.Err()
		cur.Close()
		if err == nil {
			t.Fatalf("cut=%d/%d: truncated stream replayed without error", cut, len(raw))
		}
		var de *DecodeError
		if !errors.As(err, &de) {
			t.Fatalf("cut=%d: cursor error is not a *DecodeError: %v", cut, err)
		}
	}
}

// TestCDT3Corruption: targeted corruptions are rejected as *DecodeError
// by both the full decoder and the streaming cursor.
func TestCDT3Corruption(t *testing.T) {
	tr := sampleTrace()
	raw := encodeCDT3(t, tr, 16)
	corrupt := func(mut func(d []byte)) []byte {
		d := append([]byte(nil), raw...)
		mut(d)
		return d
	}
	cases := map[string][]byte{
		"bad magic": corrupt(func(d []byte) { d[3] = '9' }),
		"bad flags": corrupt(func(d []byte) { d[4+1+len(tr.Name)] = 0xff }),
		"events bumped": corrupt(func(d []byte) {
			// The events uvarint directly follows the flags byte.
			d[4+1+len(tr.Name)+1]++
		}),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := Read(bytes.NewReader(data))
			if err == nil {
				t.Fatal("full decode accepted corrupt stream")
			}
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("not a *DecodeError: %v", err)
			}

			path := filepath.Join(t.TempDir(), "bad.cdt3")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			src, err := OpenCDT3(path)
			if err != nil {
				if !errors.As(err, &de) {
					t.Fatalf("open error is not a *DecodeError: %v", err)
				}
				return
			}
			cur := src.Blocks(CursorOpts{})
			var b Block
			for cur.Next(&b) {
			}
			if err := cur.Err(); err == nil {
				t.Fatal("stream replayed corrupt file without error")
			} else if !errors.As(err, &de) {
				t.Fatalf("cursor error is not a *DecodeError: %v", err)
			}
			cur.Close()
		})
	}
}

// TestCDT3StatsAddUp: the per-section byte breakdown partitions the file.
func TestCDT3StatsAddUp(t *testing.T) {
	for _, tr := range []*Trace{sampleTrace(), sitedSampleTrace()} {
		for _, chunk := range []int{5, 0} {
			var buf bytes.Buffer
			var st CDT3Stats
			n, err := WriteCDT3Stats(&buf, tr, chunk, &st)
			if err != nil {
				t.Fatal(err)
			}
			if n != int64(buf.Len()) || st.TotalBytes != n {
				t.Fatalf("%s: wrote %d bytes, returned %d, stats total %d", tr.Name, buf.Len(), n, st.TotalBytes)
			}
			sum := st.HeaderBytes + st.TableBytes + st.PageBytes + st.DirBytes + st.SiteBytes + st.FrameBytes
			if sum != st.TotalBytes {
				t.Fatalf("%s chunk=%d: sections sum to %d, total %d (%+v)", tr.Name, chunk, sum, st.TotalBytes, st)
			}
			if st.Events != len(tr.Events) || st.Refs != tr.Refs {
				t.Fatalf("%s: stats events/refs %d/%d, want %d/%d", tr.Name, st.Events, st.Refs, len(tr.Events), tr.Refs)
			}
			if !tr.HasSites() && st.SiteBytes != 0 {
				t.Fatalf("%s: %d site bytes on a siteless trace", tr.Name, st.SiteBytes)
			}
		}
	}
}

// TestOpenSourceSniffs: OpenSource streams CDT3 files and fully decodes
// row-format files, both behind the same Source interface.
func TestOpenSourceSniffs(t *testing.T) {
	tr := sampleTrace()
	dir := t.TempDir()

	rowPath := filepath.Join(dir, "t.cdt")
	var row bytes.Buffer
	if _, err := tr.WriteTo(&row); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(rowPath, row.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := OpenSource(rowPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := src.(*Trace); !ok {
		t.Fatalf("row file opened as %T, want *Trace", src)
	}

	src, err = OpenSource(writeTempCDT3(t, tr, 0))
	if err != nil {
		t.Fatal(err)
	}
	fs, ok := src.(*FileSource)
	if !ok {
		t.Fatalf("CDT3 file opened as %T, want *FileSource", src)
	}
	ev, _ := flattenSource(t, fs, CursorOpts{})
	sameEvents(t, ev, tr.Events, "streamed")
}
