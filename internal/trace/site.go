// Source-site side-band: an optional column attributing every trace event
// to the source construct that produced it — the loop nest, statement and
// array reference for page references, the owning loop for directive
// events. The column is run-length encoded (consecutive events from the
// same statement collapse into one run) and indexes a small site table, so
// Event stays 8 bytes and a multi-million-reference trace carries full
// provenance in a few kilobytes. Traces built without SetSite carry no
// column at all and are byte-identical to pre-side-band traces on disk.
package trace

import (
	"fmt"
	"math"
)

// Site identifies one source construct: a statement-level array reference
// or a directive insertion point.
type Site struct {
	// Nest is the enclosing loop-nest path, outermost first, joined with
	// " / " (e.g. "DO 40 / DO 30"); "" for code outside any loop.
	Nest string
	// Line is the source line of the statement.
	Line int
	// Array is the referenced array name; "" for directive sites.
	Array string
	// Expr is the source text of the reference (e.g. "A(I,J)") or the
	// directive kind ("ALLOCATE", "LOCK", "UNLOCK") for directive sites.
	Expr string
}

// NoSite is the site id of events recorded while no site was current.
const NoSite int32 = -1

// siteRun is one run of the RLE site column: the next n events all carry
// the same site id (NoSite for unattributed stretches).
type siteRun struct {
	n    int32
	site int32
}

// AddSite appends a site to the table and returns its id. It enables the
// site column (see SetSite) but does not change the current site.
func (t *Trace) AddSite(s Site) int32 {
	t.enableSites()
	id := int32(len(t.Sites))
	t.Sites = append(t.Sites, s)
	return id
}

// SetSite makes id the current site: every subsequently appended event is
// attributed to it until the next SetSite. Passing NoSite marks the
// following events unattributed. The first SetSite (or AddSite) on a trace
// enables the site column; events appended before that point are
// backfilled as NoSite.
func (t *Trace) SetSite(id int32) {
	t.enableSites()
	t.curSite = id
}

// enableSites turns the site column on, backfilling events recorded
// before the column existed.
func (t *Trace) enableSites() {
	if t.sitesOn {
		return
	}
	t.sitesOn = true
	t.curSite = NoSite
	if n := len(t.Events); n > 0 {
		t.appendSiteRun(int32(n), NoSite)
	}
}

// noteSite extends the site column by one event carrying the current
// site. Called once per appended event; a no-op while the column is off.
func (t *Trace) noteSite() {
	if !t.sitesOn {
		return
	}
	t.appendSiteRun(1, t.curSite)
}

// appendSiteRun records n consecutive events at the given site, merging
// into the previous run when the site matches.
func (t *Trace) appendSiteRun(n, site int32) {
	if last := len(t.siteRuns) - 1; last >= 0 && t.siteRuns[last].site == site &&
		t.siteRuns[last].n <= math.MaxInt32-n {
		t.siteRuns[last].n += n
		return
	}
	t.siteRuns = append(t.siteRuns, siteRun{n: n, site: site})
}

// HasSites reports whether the trace carries a site column.
func (t *Trace) HasSites() bool { return t.sitesOn }

// Site returns the site table entry for id, or a zero Site for NoSite and
// out-of-range ids.
func (t *Trace) Site(id int32) Site {
	if id < 0 || int(id) >= len(t.Sites) {
		return Site{}
	}
	return t.Sites[id]
}

// SiteCursor walks the site column in lockstep with Events: the i-th Next
// call returns the site id of Events[i]. Events beyond the recorded runs
// (or any event of a column-less trace) yield NoSite.
type SiteCursor struct {
	runs []siteRun
	ri   int
	left int32
}

// SiteCursor returns a cursor positioned at the first event.
func (t *Trace) SiteCursor() SiteCursor {
	return SiteCursor{runs: t.siteRuns}
}

// Next returns the site id of the next event.
func (c *SiteCursor) Next() int32 {
	for c.left == 0 {
		if c.ri >= len(c.runs) {
			return NoSite
		}
		c.left = c.runs[c.ri].n
		c.ri++
	}
	c.left--
	return c.runs[c.ri-1].site
}

// WithoutSites returns a view of the trace with no site column, sharing
// the (read-only) events and side tables. A column-less trace returns
// itself. The view writes as CDT1 and simulates identically — it is the
// "attribution off" twin used for byte-compat output and overhead
// measurement.
func (t *Trace) WithoutSites() *Trace {
	if !t.sitesOn {
		return t
	}
	return &Trace{
		Name:       t.Name,
		Events:     t.Events,
		Allocs:     t.Allocs,
		LockSets:   t.LockSets,
		UnlockSets: t.UnlockSets,
		Refs:       t.Refs,
		Distinct:   t.Distinct,
		curSite:    NoSite,
		maxSeen:    t.maxPageSeen(),
		maxKnown:   true,
	}
}

// auditSiteRuns validates a decoded site column against the event stream.
func (t *Trace) auditSiteRuns() error {
	var total int64
	for i, r := range t.siteRuns {
		if r.n <= 0 {
			return fmt.Errorf("run %d has length %d", i, r.n)
		}
		if r.site != NoSite && (r.site < 0 || int(r.site) >= len(t.Sites)) {
			return fmt.Errorf("run %d references site %d of %d", i, r.site, len(t.Sites))
		}
		total += int64(r.n)
	}
	if total != int64(len(t.Events)) {
		return fmt.Errorf("runs cover %d events, trace has %d", total, len(t.Events))
	}
	return nil
}
